// stune_analyze CLI — loads every source file under src/ into one Program,
// loads the layering manifest (tools/analyze/layers.toml when present, the
// compiled-in default otherwise) and the FP pin manifest (parsed out of the
// repo's CMakeLists.txt tree when present, the compiled-in default
// otherwise), runs all six rule families and reports with the shared lint
// formatters.
//
// Usage: stune_analyze [--format=text|json] [--layers=<path>] <repo-root>
//        stune_analyze --list-rules
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"
#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

bool source_file(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string layers_arg;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : stune::analyze::rule_ids()) std::cout << rule << "\n";
      return 0;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--layers=", 0) == 0) {
      layers_arg = arg.substr(9);
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      root_arg.clear();
      break;
    }
  }
  if (root_arg.empty() || (format != "text" && format != "json")) {
    std::cerr << "usage: stune_analyze [--format=text|json] [--layers=<path>] <repo-root>\n"
                 "       stune_analyze --list-rules\n";
    return 2;
  }
  const fs::path root = root_arg;
  if (!fs::exists(root / "src")) {
    std::cerr << "stune_analyze: " << (root / "src").string() << " does not exist\n";
    return 2;
  }

  // The manifest: explicit flag, then the committed file, then the default.
  stune::analyze::LayerManifest manifest = stune::analyze::default_manifest();
  fs::path layers_path = layers_arg.empty()
                             ? root / "tools" / "analyze" / "layers.toml"
                             : fs::path(layers_arg);
  if (!layers_arg.empty() || fs::exists(layers_path)) {
    std::string toml;
    if (!read_file(layers_path, toml)) {
      std::cerr << "stune_analyze: cannot read " << layers_path.string() << "\n";
      return 2;
    }
    std::string error;
    if (!stune::analyze::parse_manifest(toml, manifest, error)) {
      std::cerr << "stune_analyze: " << layers_path.string() << ": " << error << "\n";
      return 2;
    }
  }

  // The FP pin manifest: parsed from the CMakeLists.txt tree when the build
  // files are present (the normal case), the compiled-in default otherwise.
  stune::analyze::FpManifest fp_manifest = stune::analyze::default_fp_manifest();
  {
    std::vector<fs::path> cmake_paths;
    if (fs::exists(root / "CMakeLists.txt")) cmake_paths.push_back(root / "CMakeLists.txt");
    for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
      if (entry.is_regular_file() && entry.path().filename() == "CMakeLists.txt") {
        cmake_paths.push_back(entry.path());
      }
    }
    std::sort(cmake_paths.begin(), cmake_paths.end());
    std::vector<stune::analyze::SourceFile> cmake_files;
    for (const fs::path& path : cmake_paths) {
      std::string contents;
      if (!read_file(path, contents)) {
        std::cerr << "stune_analyze: cannot read " << path.string() << "\n";
        return 2;
      }
      cmake_files.push_back({fs::relative(path, root).generic_string(), std::move(contents)});
    }
    if (!cmake_files.empty()) {
      stune::analyze::FpManifest parsed;
      std::string error;
      if (!stune::analyze::parse_fp_manifest(cmake_files, parsed, error)) {
        std::cerr << "stune_analyze: CMake parse: " << error << "\n";
        return 2;
      }
      fp_manifest = parsed;
    }
  }

  // Deterministic file order: sorted repo-relative paths.
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (entry.is_regular_file() && source_file(entry.path())) paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());

  stune::analyze::Program program;
  std::size_t files_scanned = 0;
  std::vector<stune::analyze::Violation> violations;
  for (const fs::path& path : paths) {
    std::string contents;
    if (!read_file(path, contents)) {
      violations.push_back({path.string(), 0, "io", "cannot open file"});
      continue;
    }
    ++files_scanned;
    program.add_file({fs::relative(path, root).generic_string(), std::move(contents)});
  }

  const auto found = program.check_all(manifest, fp_manifest);
  violations.insert(violations.end(), found.begin(), found.end());

  std::cout << (format == "json"
                    ? stune::lint::format_json(violations, files_scanned)
                    : stune::lint::format_text(violations, files_scanned, "stune_analyze"));
  return violations.empty() ? 0 : 1;
}
