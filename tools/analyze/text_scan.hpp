// Lexical helpers shared by the stune_analyze translation units. All of
// them operate on *stripped* source (lint::strip_comments_and_literals has
// already blanked comments and literal contents, preserving newlines), so a
// token match here is a real code token, never documentation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stune::analyze::text {

inline bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

inline bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

/// True when s[pos..] is exactly the token `tok` with identifier boundaries
/// on both sides.
inline bool token_at(const std::string& s, std::size_t pos, const std::string& tok) {
  if (s.compare(pos, tok.size(), tok) != 0) return false;
  if (pos > 0 && ident_char(s[pos - 1])) return false;
  const std::size_t end = pos + tok.size();
  return end >= s.size() || !ident_char(s[end]);
}

/// Next occurrence of `tok` as a whole token at or after `from`; npos if none.
inline std::size_t find_token(const std::string& s, const std::string& tok,
                              std::size_t from = 0) {
  for (std::size_t p = s.find(tok, from); p != std::string::npos; p = s.find(tok, p + 1)) {
    if (token_at(s, p, tok)) return p;
  }
  return std::string::npos;
}

inline std::size_t skip_ws(const std::string& s, std::size_t pos) {
  while (pos < s.size() &&
         (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' || s[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

/// Offset of the last non-whitespace character strictly before `pos`;
/// npos when only whitespace precedes it.
inline std::size_t rskip_ws(const std::string& s, std::size_t pos) {
  while (pos > 0) {
    const char c = s[--pos];
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return pos;
  }
  return std::string::npos;
}

/// With s[open_pos] == `open`, return the offset one past the matching
/// `close` (nesting-aware); npos when unbalanced.
inline std::size_t match_forward(const std::string& s, std::size_t open_pos, char open,
                                 char close) {
  std::size_t depth = 0;
  for (std::size_t p = open_pos; p < s.size(); ++p) {
    if (s[p] == open) {
      ++depth;
    } else if (s[p] == close) {
      if (--depth == 0) return p + 1;
    }
  }
  return std::string::npos;
}

/// Read an identifier starting at `pos`; advances pos past it. Empty string
/// when s[pos] does not start one.
inline std::string read_ident(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || !ident_start(s[pos])) return {};
  const std::size_t begin = pos;
  while (pos < s.size() && ident_char(s[pos])) ++pos;
  return s.substr(begin, pos - begin);
}

/// The identifier ending at (inclusive) `pos`, scanning backward; empty when
/// s[pos] is not an identifier character.
inline std::string read_ident_backward(const std::string& s, std::size_t pos) {
  if (pos >= s.size() || !ident_char(s[pos])) return {};
  std::size_t begin = pos;
  while (begin > 0 && ident_char(s[begin - 1])) --begin;
  return s.substr(begin, pos - begin + 1);
}

/// Offsets of each line start, for offset -> 1-based line mapping.
inline std::vector<std::size_t> line_starts(const std::string& s) {
  std::vector<std::size_t> starts{0};
  for (std::size_t p = 0; p < s.size(); ++p) {
    if (s[p] == '\n') starts.push_back(p + 1);
  }
  return starts;
}

inline std::size_t line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  std::size_t lo = 0;
  std::size_t hi = starts.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (starts[mid] <= pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

/// Last "::"/"."/"->"-separated segment of a qualified expression, with
/// surrounding whitespace trimmed (e.g. "owner_.mu_" -> "mu_").
inline std::string last_segment(const std::string& expr) {
  std::size_t cut = 0;
  for (std::size_t p = 0; p + 1 < expr.size(); ++p) {
    if ((expr[p] == ':' && expr[p + 1] == ':') || (expr[p] == '-' && expr[p + 1] == '>')) {
      cut = p + 2;
    }
  }
  for (std::size_t p = cut; p < expr.size(); ++p) {
    if (expr[p] == '.') cut = p + 1;
  }
  std::string out = expr.substr(cut);
  while (!out.empty() && (out.front() == ' ' || out.front() == '\t')) out.erase(0, 1);
  while (!out.empty() && (out.back() == ' ' || out.back() == '\t')) out.pop_back();
  return out;
}

}  // namespace stune::analyze::text
