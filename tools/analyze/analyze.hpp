// stune_analyze — the project's whole-program analyzer, the multi-TU
// complement of stune_lint's per-file passes. Usable as a library
// (tests/analyze_test.cpp drives every rule family on golden fixtures) and
// as the stune_analyze executable registered as a ctest.
//
// Where stune_lint judges each file in isolation, stune_analyze first loads
// the entire source tree into a Program — include edges, function bodies, a
// name-matched call graph, MutexLock acquisition scopes, and the
// STUNE_EXCLUDES/STUNE_ACQUIRE thread-safety annotations — and then runs
// three rule families over the whole:
//
//   Layering (the architecture DAG, declared in tools/analyze/layers.toml):
//     [layer-back-edge]      an #include from src/<a>/ into src/<b>/ that
//                            the manifest does not permit;
//     [layer-unknown-module] a src/ module the manifest does not declare;
//     [layer-cycle]          the declared manifest itself contains a cycle
//                            (a misdeclared architecture, caught before it
//                            can launder real back-edges).
//
//   Determinism (cross-TU reachability from the fingerprint entry points —
//   functions whose results feed cache keys, commit order, or reports):
//     [det-iter]             iteration over an unordered container inside a
//                            function reachable from a fingerprint/commit
//                            entry point (hash order is not part of any
//                            determinism contract);
//     [det-ptr-key]          pointer-keyed map/set or std::hash over a
//                            pointer type anywhere in the program — address
//                            order changes run to run under ASLR;
//     [det-rng]              default-constructed standard random engines
//                            (stochasticity flows through simcore::Rng);
//     [det-wall-clock]       a wall-clock read reachable from a fingerprint
//                            entry point — even inside simcore/, which the
//                            per-file rule exempts wholesale.
//
//   Lock order (MutexLock scopes + annotations -> static acquisition graph):
//     [lock-cycle]           a cycle in the may-acquire-while-holding graph
//                            (a potential deadlock schedule);
//     [lock-excludes]        a call to a function annotated
//                            STUNE_EXCLUDES(m) while m is held (guaranteed
//                            self-deadlock);
//     [lock-rank-order]      a static acquisition edge that contradicts the
//                            declared runtime ranks (simcore/lock_rank.hpp)
//                            — the static/dynamic cross-check.
//
//   Arena lifetime (dataflow over TrialArena::alloc<T>() results, whose
//   backing memory dies at the owning arena's reset()):
//     [arena-store-escape]   an arena span (or a value derived from one)
//                            stored into a class member, a member container,
//                            or a static — storage that outlives the trial;
//     [arena-return-escape]  an arena span returned out of the engine layer
//                            (the [arena] modules in layers.toml), either
//                            because the returning function lives outside it
//                            or because a caller outside it receives it;
//     [arena-alloc-layer]    a TrialArena::alloc call from a module the
//                            [arena] manifest does not permit.
//
//   FP determinism (the engine's bitwise report-parity contract; scoped to
//   the parity closure — everything reachable from the fingerprint entry
//   points plus SparkSimulator::run / run_wave_rescan):
//     [fp-contract]          a multiply-add-shaped FP expression or FP
//                            accumulation in a closure TU that is neither on
//                            the CMake -ffp-contract=off pin list (see
//                            parse_fp_manifest) nor written with the pinned
//                            fma_acc/fnma_acc helpers — GCC defaults to
//                            -ffp-contract=fast, so an unpinned TU's
//                            rounding depends on the toolchain;
//     [fp-compare]           raw ==/!= between two non-literal float/double
//                            expressions in the closure, outside the
//                            approved helpers (hash_double, bits_equal and
//                            the basis-hash validators); comparisons against
//                            literals (the exact-sentinel idiom, `x == 0.0`)
//                            stay legal — intentional exact identity is
//                            spelled simcore::bits_equal(a, b).
//
//   Retrieval hot path (reachability from RetrievalSnapshot::query* and the
//   scan kernel — the serving tier's zero-trial read path, DESIGN.md §15):
//     [retrieval-alloc]      a per-query allocation in the retrieval query
//                            closure: an allocating container method, a
//                            `new` expression, or a heap-owning local in the
//                            retrieval TUs, or Signature::as_vector() called
//                            from anywhere in the closure — the query path
//                            runs on fixed stack scratch only.
//
// Suppression: the shared `// stune-lint: allow(<rule>)` escape hatch (the
// `// stune-analyze: allow(<rule>)` spelling is equivalent), parsed by
// lint::allowed_rules and honored uniformly across every rule family.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace stune::analyze {

using lint::Violation;  // same shape, shared formatters

/// One source file, path relative to the repo root (e.g. "src/disc/engine.cpp").
struct SourceFile {
  std::string path;
  std::string content;
};

// ---------------------------------------------------------------------------
// Layering manifest
// ---------------------------------------------------------------------------

/// The declared architecture DAG: for each src/ module, the modules it may
/// #include from (itself always allowed, listed or not), plus the engine
/// layer — the modules permitted to bump-allocate from a TrialArena.
struct LayerManifest {
  std::vector<std::string> order;                         // declaration order
  std::map<std::string, std::set<std::string>> allowed;   // module -> deps
  std::set<std::string> arena_modules;                    // [arena] engine = [...]
};

/// The committed architecture (mirrors tools/analyze/layers.toml; the two
/// are asserted identical by analyze_test so neither can drift).
LayerManifest default_manifest();

/// Parse the layers.toml subset: a `[modules]` table whose entries are
/// `name = ["dep", ...]`, plus an optional `[arena]` table with a single
/// `engine = ["module", ...]` entry naming the modules that may call
/// TrialArena::alloc. Returns false and sets `error` on malformed input.
bool parse_manifest(const std::string& toml, LayerManifest& out, std::string& error);

// ---------------------------------------------------------------------------
// FP pin manifest
// ---------------------------------------------------------------------------

/// The CMake-declared FP determinism pins: the repo-relative TUs compiled
/// with -ffp-contract=off (via STUNE_ENGINE_KERNEL_OPTIONS or
/// STUNE_FP_PIN_OPTIONS). check_fp exempts these files from [fp-contract].
struct FpManifest {
  std::set<std::string> contract_off;
};

/// The committed pin set (mirrors the CMakeLists.txt tree; asserted
/// identical by analyze_test so the build and the analyzer cannot drift).
FpManifest default_fp_manifest();

/// Extract the pin set from CMake sources. Tracks which CMake variables
/// carry -ffp-contract=off (through ${X} references, to a fixpoint), then
/// collects every `set_source_files_properties(... COMPILE_OPTIONS <opts>)`
/// whose options contain the flag, resolving file names against the
/// directory of the CMakeLists that lists them. Returns false and sets
/// `error` on malformed input (an unbalanced command paren).
bool parse_fp_manifest(const std::vector<SourceFile>& cmake_files, FpManifest& out,
                       std::string& error);

// ---------------------------------------------------------------------------
// Whole-program model
// ---------------------------------------------------------------------------

/// A parsed function definition (textual: name, class context, body span).
struct FunctionInfo {
  std::string name;        // unqualified (last segment)
  std::string qualified;   // as written, e.g. "EvalCache::lookup"
  std::string class_name;  // innermost enclosing/explicit class, "" if free
  std::size_t file = 0;    // index into files()
  std::size_t line = 0;
  std::size_t body_begin = 0;  // offset of '{' in stripped content
  std::size_t body_end = 0;    // offset one past matching '}'
};

/// A MutexLock acquisition site inside a function body.
struct AcquisitionInfo {
  std::string mutex_id;    // canonical "Class::member" node id
  std::size_t file = 0;
  std::size_t line = 0;
  std::size_t pos = 0;        // offset of the declaration
  std::size_t scope_end = 0;  // offset where the RAII scope closes
  std::size_t function = 0;   // index into functions()
};

/// One edge of the static lock-acquisition graph: `held` is locked when
/// `acquired` is taken (directly nested or via a call chain).
struct LockEdge {
  std::string held;
  std::string acquired;
  std::string via;  // human-readable provenance for reports
  std::size_t file = 0;
  std::size_t line = 0;
};

class Program {
 public:
  /// Parse and add one file. Order of addition is the file index order.
  void add_file(SourceFile file);

  const std::vector<SourceFile>& files() const { return files_; }
  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// Acquisition sites with canonical mutex ids. Canonicalization needs the
  /// whole program (an expression in one TU may name a member declared in
  /// another), so it runs lazily on first query after all add_file calls.
  const std::vector<AcquisitionInfo>& acquisitions() const;

  /// The static lock-acquisition graph (deduplicated, deterministic order).
  std::vector<LockEdge> lock_graph() const;

  /// Functions reachable (by name-matched calls, transitively) from the
  /// determinism entry points; indices into functions().
  std::set<std::size_t> fingerprint_reachable() const;

  /// The FP-parity closure: fingerprint_reachable plus everything reachable
  /// from the engine parity surface (SparkSimulator::run, run_wave_rescan).
  std::set<std::size_t> parity_reachable() const;

  // Rule families. Each returns raw violations; check_all applies the
  // shared allow() suppressions and sorts.
  std::vector<Violation> check_layering(const LayerManifest& manifest) const;
  std::vector<Violation> check_determinism() const;
  std::vector<Violation> check_lock_order() const;
  std::vector<Violation> check_arena(const LayerManifest& manifest) const;
  std::vector<Violation> check_fp(const FpManifest& fp) const;
  std::vector<Violation> check_retrieval() const;
  std::vector<Violation> check_all(const LayerManifest& manifest,
                                   const FpManifest& fp = FpManifest{}) const;

 private:
  struct ClassSpan {
    std::string name;
    std::size_t begin = 0;  // offset of the opening '{'
    std::size_t end = 0;    // offset one past the matching '}'
  };
  // A call site inside a function body. `recv` is the textual receiver
  // ("pool_" in pool_->submit(...), "" for unqualified calls): when it
  // resolves to a class that defines the callee, dispatch is restricted to
  // that class; otherwise every same-named definition matches (which is what
  // makes virtual dispatch through a base reference visible).
  struct CallSite {
    std::string name;
    std::string recv;
    std::size_t pos = 0;
    std::size_t line = 0;
  };
  struct RawExclude {
    std::string function;       // unqualified declaring function name
    std::string expr;           // annotation argument as written
    std::string class_context;  // innermost class at the annotation
  };

  std::vector<SourceFile> files_;
  std::vector<std::string> stripped_;                  // comments/literals blanked
  std::vector<std::vector<std::size_t>> line_starts_;  // per file, per line offset
  std::vector<std::vector<ClassSpan>> class_spans_;    // per file
  std::vector<FunctionInfo> functions_;
  // function name -> indices of definitions with that unqualified name
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::vector<std::vector<CallSite>> calls_;  // parallel to functions_
  // unordered container variable names, program-wide (declared anywhere)
  std::set<std::string> unordered_names_;
  // names declared with type TrialArena (members, locals, ref parameters)
  std::set<std::string> arena_names_;
  // names declared float/double (variables, parameters, fp-returning fns)
  std::set<std::string> fp_names_;
  // mutex member name -> classes declaring a Mutex member with that name
  std::map<std::string, std::set<std::string>> mutex_members_;
  // canonical mutex id -> declared rank constant (from lock_rank:: refs)
  std::map<std::string, std::string> mutex_rank_name_;
  std::map<std::string, int> rank_values_;  // kName -> value
  std::vector<RawExclude> raw_excludes_;

  // Filled by finalize() on first query (see acquisitions()).
  mutable std::vector<AcquisitionInfo> acquisitions_;
  mutable std::vector<std::string> raw_acq_exprs_;  // parallel; cleared by finalize
  // callee name -> (declaring class, canonical mutex id it must not hold)
  mutable std::map<std::string, std::vector<std::pair<std::string, std::string>>> excludes_;
  mutable bool finalized_ = false;

  void parse_file(std::size_t file_index);
  void finalize() const;
  // Name-matched call-graph closure from the functions `entry` accepts.
  std::set<std::size_t> reachable_from(bool (*entry)(const FunctionInfo&)) const;
  std::string canonical_mutex(const std::string& expr, const std::string& class_context) const;
  // "" when `obj` cannot be resolved to a class in `candidates`.
  std::string resolve_object_class(const std::string& obj,
                                   const std::set<std::string>& candidates) const;
  int rank_of(const std::string& mutex_id) const;  // 0 when unranked
};

/// All analyzer rule ids, in reporting order.
const std::vector<std::string>& rule_ids();

}  // namespace stune::analyze
