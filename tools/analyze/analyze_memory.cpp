// The memory/FP rule families of stune_analyze: arena-lifetime escape
// analysis over TrialArena::alloc results, and the FP-determinism pass that
// cross-checks the parity closure against the CMake -ffp-contract=off pin
// lists. Both are textual dataflow in the same spirit as the lock-order
// pass in analyze_checks.cpp: an over-approximation with the shared allow()
// escape hatch, precise enough that the real tree runs clean.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze.hpp"
#include "text_scan.hpp"

namespace stune::analyze {

namespace {

namespace tx = stune::analyze::text;

/// src/ module of a repo-relative path ("" when not a module source file).
std::string arena_module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

/// End of the statement starting inside `pos` (offset of the ';' at bracket
/// depth zero, capped at `limit`).
std::size_t statement_end(const std::string& s, std::size_t pos, std::size_t limit) {
  std::size_t depth = 0;
  for (std::size_t p = pos; p < limit; ++p) {
    const char c = s[p];
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') {
      if (depth == 0) return p;  // malformed; stop at the scope close
      --depth;
    }
    if (c == ';' && depth == 0) return p;
  }
  return limit;
}

/// Start of the statement containing `pos`: one past the previous ';', '{'
/// or '}' at the same nesting level, floored at `begin`.
std::size_t statement_begin(const std::string& s, std::size_t pos, std::size_t begin) {
  std::size_t depth = 0;
  for (std::size_t p = pos; p > begin; --p) {
    const char c = s[p - 1];
    if (c == ')' || c == ']') ++depth;
    if (c == '(' || c == '[') {
      if (depth == 0) return p;
      --depth;
    }
    if (depth == 0 && (c == ';' || c == '{' || c == '}')) return p;
  }
  return begin;
}

/// Whether [begin, end) contains a floating-point literal (a numeric token
/// with a decimal point, e.g. 1.5 or 2.0e-3).
bool has_fp_literal(const std::string& s, std::size_t begin, std::size_t end) {
  for (std::size_t p = begin; p < end; ++p) {
    if (s[p] < '0' || s[p] > '9') continue;
    if (p > begin && (tx::ident_char(s[p - 1]) || s[p - 1] == '.')) continue;
    std::size_t q = p;
    while (q < end && s[q] >= '0' && s[q] <= '9') ++q;
    if (q < end && s[q] == '.') return true;
    p = q;
  }
  return false;
}

/// Whether [begin, end) mentions any name from `names` as a whole token.
bool mentions_name(const std::string& s, std::size_t begin, std::size_t end,
                   const std::set<std::string>& names) {
  std::size_t p = begin;
  while (p < end) {
    if (!tx::ident_start(s[p]) || (p > 0 && tx::ident_char(s[p - 1]))) {
      ++p;
      continue;
    }
    std::size_t q = p;
    const std::string word = tx::read_ident(s, q);
    if (names.count(word) != 0) return true;
    p = q;
  }
  return false;
}

/// Whether s[p] is a binary operator occurrence (its left neighbor ends a
/// value: an identifier, a close bracket, or a literal).
bool binary_op_at(const std::string& s, std::size_t p) {
  const std::size_t prev = tx::rskip_ws(s, p);
  if (prev == std::string::npos) return false;
  return tx::ident_char(s[prev]) || s[prev] == ')' || s[prev] == ']';
}

/// Lambda body spans inside a function body: a `return` inside one belongs
/// to the lambda, not the enclosing function.
std::vector<std::pair<std::size_t, std::size_t>> lambda_spans(const std::string& s,
                                                              std::size_t begin,
                                                              std::size_t end) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t p = s.find('[', begin); p != std::string::npos && p < end;
       p = s.find('[', p + 1)) {
    const std::size_t prev = tx::rskip_ws(s, p);
    if (prev != std::string::npos &&
        (tx::ident_char(s[prev]) || s[prev] == ')' || s[prev] == ']')) {
      continue;  // subscript, not a capture list
    }
    std::size_t cur = tx::match_forward(s, p, '[', ']');
    if (cur == std::string::npos || cur >= end) continue;
    cur = tx::skip_ws(s, cur);
    if (cur >= end || (s[cur] != '(' && s[cur] != '{')) continue;
    if (s[cur] == '(') {
      cur = tx::match_forward(s, cur, '(', ')');
      if (cur == std::string::npos) continue;
      // Skip `mutable`, `noexcept`, `-> Type` up to the body brace.
      while (cur < end && s[cur] != '{' && s[cur] != ';') ++cur;
    }
    if (cur >= end || s[cur] != '{') continue;
    const std::size_t close = tx::match_forward(s, cur, '{', '}');
    if (close == std::string::npos || close > end) continue;
    spans.emplace_back(cur, close);
  }
  return spans;
}

bool inside_any(const std::vector<std::pair<std::size_t, std::size_t>>& spans,
                std::size_t pos) {
  for (const auto& [b, e] : spans) {
    if (pos >= b && pos < e) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Arena lifetime
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_arena(const LayerManifest& manifest) const {
  finalize();
  std::vector<Violation> v;

  for (std::size_t fi = 0; fi < functions_.size(); ++fi) {
    const FunctionInfo& fn = functions_[fi];
    const std::string& s = stripped_[fn.file];
    const std::string module = arena_module_of(files_[fn.file].path);
    if (module.empty()) continue;  // arena rules cover src/ modules only
    const bool engine_layer = manifest.arena_modules.count(module) != 0;
    const std::vector<std::size_t>& starts = line_starts_[fn.file];
    const std::size_t body = fn.body_begin;
    const std::size_t body_end = fn.body_end;

    // Seed positions: `<arena>.alloc<T>(...)` / `<arena>->alloc<T>(...)`
    // where the receiver's last segment is a TrialArena-typed name.
    std::vector<std::size_t> alloc_sites;  // offset of the receiver chain start
    for (std::size_t p = tx::find_token(s, "alloc", body + 1);
         p != std::string::npos && p < body_end; p = tx::find_token(s, "alloc", p + 1)) {
      if (p + 5 >= s.size() || s[p + 5] != '<') continue;
      std::size_t recv_end = std::string::npos;
      if (p >= 1 && s[p - 1] == '.') {
        recv_end = p - 2;
      } else if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') {
        recv_end = p - 3;
      } else {
        continue;
      }
      const std::string recv = tx::read_ident_backward(s, recv_end);
      if (recv.empty() || arena_names_.count(recv) == 0) continue;
      // Walk back over the whole receiver chain (ctx.arena_.alloc -> "ctx").
      std::size_t chain = recv_end - recv.size() + 1;
      while (chain > body) {
        if (s[chain - 1] == '.' && chain >= 2 && tx::ident_char(s[chain - 2])) {
          chain = chain - 1 - tx::read_ident_backward(s, chain - 2).size();
        } else if (chain >= 2 && s[chain - 2] == '-' && s[chain - 1] == '>' && chain >= 3 &&
                   tx::ident_char(s[chain - 3])) {
          chain = chain - 2 - tx::read_ident_backward(s, chain - 3).size();
        } else {
          break;
        }
      }
      alloc_sites.push_back(chain);

      if (!engine_layer) {
        v.push_back({files_[fn.file].path, tx::line_of(starts, p), "arena-alloc-layer",
                     "TrialArena::alloc called from src/" + module + "/ (" + fn.qualified +
                         "); only the engine layer (" +
                         [&manifest] {
                           std::string joined;
                           for (const std::string& m : manifest.arena_modules) {
                             joined += joined.empty() ? m : ", " + m;
                           }
                           return joined.empty() ? std::string("none declared") : joined;
                         }() +
                         ") may bump-allocate trial scratch"});
      }
    }

    // Arena-derived names: variables assigned (directly or transitively)
    // from an alloc expression, to a fixpoint within the function body.
    const auto mentions_alloc = [&alloc_sites](std::size_t begin, std::size_t end) {
      for (const std::size_t site : alloc_sites) {
        if (site >= begin && site < end) return true;
      }
      return false;
    };
    std::set<std::string> derived;
    // Plain `=` positions (not ==, <=, !=, +=, ...), with their statements.
    struct Assign {
      std::size_t pos = 0;        // offset of '='
      std::size_t stmt_end = 0;   // offset of the closing ';'
      std::string lhs;            // identifier directly left of '='
      std::size_t lhs_begin = 0;  // chain start of that identifier
    };
    std::vector<Assign> assigns;
    for (std::size_t p = s.find('=', body + 1); p != std::string::npos && p < body_end;
         p = s.find('=', p + 1)) {
      if (p + 1 < s.size() && s[p + 1] == '=') {
        ++p;
        continue;
      }
      if (p > 0 && std::string("=!<>+-*/%&|^").find(s[p - 1]) != std::string::npos) continue;
      Assign a;
      a.pos = p;
      a.stmt_end = statement_end(s, p + 1, body_end);
      const std::size_t lhs_end = tx::rskip_ws(s, p);
      if (lhs_end == std::string::npos || !tx::ident_char(s[lhs_end])) continue;
      a.lhs = tx::read_ident_backward(s, lhs_end);
      a.lhs_begin = lhs_end - a.lhs.size() + 1;
      assigns.push_back(std::move(a));
    }
    bool changed = !alloc_sites.empty();
    while (changed) {
      changed = false;
      for (const Assign& a : assigns) {
        if (derived.count(a.lhs) != 0) continue;
        if (!mentions_alloc(a.pos, a.stmt_end) &&
            !mentions_name(s, a.pos, a.stmt_end, derived)) {
          continue;
        }
        derived.insert(a.lhs);
        changed = true;
      }
    }

    const auto arena_valued = [&](std::size_t begin, std::size_t end) {
      return mentions_alloc(begin, end) || mentions_name(s, begin, end, derived);
    };

    // arena-store-escape (a): member assignment. The repo convention makes
    // members recognizable: a trailing underscore, or an explicit `this->`.
    for (const Assign& a : assigns) {
      if (!arena_valued(a.pos, a.stmt_end)) continue;
      const bool member_name = !a.lhs.empty() && a.lhs.back() == '_';
      const bool via_this = a.lhs_begin >= 2 && s[a.lhs_begin - 1] == '>' &&
                            s[a.lhs_begin - 2] == '-' && a.lhs_begin >= 6 &&
                            s.compare(a.lhs_begin - 6, 6, "this->") == 0;
      if (!member_name && !via_this) continue;
      if (derived.count(a.lhs) != 0 && !via_this && arena_names_.count(a.lhs) == 0) {
        // A local whose name happens to end in '_' was classified derived;
        // assigning *to* it again is not a store into longer-lived storage.
        // Members are assigned before being read in these bodies, so the
        // first classification pass has already treated it as a local only
        // if it was introduced by a declaration — which `derived` tracks.
      }
      v.push_back({files_[fn.file].path, tx::line_of(starts, a.pos), "arena-store-escape",
                   "arena-backed value stored into " +
                       std::string(via_this ? "this->" : "member ") + a.lhs + " in " +
                       fn.qualified +
                       "; arena memory dies at reset(), members outlive the trial"});
    }

    // arena-store-escape (b): pushed/inserted into a member container.
    for (const char* op : {"push_back", "emplace_back", "insert", "push", "emplace"}) {
      for (std::size_t p = tx::find_token(s, op, body + 1);
           p != std::string::npos && p < body_end; p = tx::find_token(s, op, p + 1)) {
        const std::size_t open = p + std::string(op).size();
        if (open >= s.size() || s[open] != '(') continue;
        std::size_t recv_end = std::string::npos;
        if (p >= 1 && s[p - 1] == '.') {
          recv_end = p - 2;
        } else if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') {
          recv_end = p - 3;
        } else {
          continue;
        }
        const std::string recv = tx::read_ident_backward(s, recv_end);
        if (recv.empty() || recv.back() != '_' || derived.count(recv) != 0) continue;
        const std::size_t close = tx::match_forward(s, open, '(', ')');
        if (close == std::string::npos) continue;
        if (!arena_valued(open + 1, close - 1)) continue;
        v.push_back({files_[fn.file].path, tx::line_of(starts, p), "arena-store-escape",
                     "arena-backed value inserted into member container " + recv + " in " +
                         fn.qualified +
                         "; arena memory dies at reset(), the container outlives the trial"});
      }
    }

    // arena-store-escape (c): bound to a static.
    for (std::size_t p = tx::find_token(s, "static", body + 1);
         p != std::string::npos && p < body_end; p = tx::find_token(s, "static", p + 1)) {
      const std::size_t end = statement_end(s, p, body_end);
      if (!arena_valued(p, end)) continue;
      v.push_back({files_[fn.file].path, tx::line_of(starts, p), "arena-store-escape",
                   "arena-backed value bound to a static in " + fn.qualified +
                       "; arena memory dies at reset(), statics live forever"});
    }

    // arena-return-escape: a `return` whose value is arena-backed. Returns
    // inside lambda bodies belong to the lambda (local plumbing like the
    // engine's alloc_fn), not to the enclosing function.
    const auto lambdas = lambda_spans(s, body, body_end);
    bool returns_arena = false;
    for (std::size_t p = tx::find_token(s, "return", body + 1);
         p != std::string::npos && p < body_end; p = tx::find_token(s, "return", p + 1)) {
      if (inside_any(lambdas, p)) continue;
      const std::size_t end = statement_end(s, p, body_end);
      if (!arena_valued(p + 6, end)) continue;
      returns_arena = true;
      if (!engine_layer) {
        v.push_back({files_[fn.file].path, tx::line_of(starts, p), "arena-return-escape",
                     fn.qualified + " (src/" + module + "/) returns an arena-backed value; "
                     "spans must not leave the engine layer, whose reset() frees them"});
      }
    }
    // Inside the engine layer a returned span is fine as long as every
    // caller is also inside it: the escape is the cross-layer hand-off.
    if (returns_arena && engine_layer) {
      for (std::size_t gi = 0; gi < functions_.size(); ++gi) {
        if (gi == fi) continue;
        const std::string caller_module = arena_module_of(files_[functions_[gi].file].path);
        if (caller_module.empty() || manifest.arena_modules.count(caller_module) != 0) {
          continue;
        }
        for (const CallSite& call : calls_[gi]) {
          if (call.name != fn.name) continue;
          v.push_back({files_[functions_[gi].file].path, call.line, "arena-return-escape",
                       functions_[gi].qualified + " (src/" + caller_module +
                           "/) receives an arena-backed value returned by " + fn.qualified +
                           "; spans must not leave the engine layer, whose reset() frees "
                           "them"});
        }
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Retrieval hot path
// ---------------------------------------------------------------------------

namespace {

/// The retrieval tier's per-query entry points: RetrievalSnapshot::query*
/// and the scan kernel. Everything reachable from them is the zero-trial
/// serve path, which must not allocate (DESIGN.md §15).
bool retrieval_entry(const FunctionInfo& fn) {
  if (fn.class_name == "RetrievalSnapshot" && fn.name.rfind("query", 0) == 0) return true;
  return fn.name == "dist2" || fn.name == "dist2_scalar";
}

/// The TUs the retrieval query path lives in. Allocation tokens are flagged
/// only here: the name-matched closure over-approximates (a `begin()` call
/// reaches every `begin` in the program), so judging foreign files by it
/// would drown the rule in collisions. Cross-file callees are still covered
/// by the closure-wide as_vector ban below.
bool retrieval_file(const std::string& path) {
  return path == "src/service/retrieval_index.cpp" ||
         path == "src/service/retrieval_index.hpp" ||
         path == "src/service/signature_scan.cpp" ||
         path == "src/service/signature_scan.hpp";
}

}  // namespace

std::vector<Violation> Program::check_retrieval() const {
  finalize();
  std::vector<Violation> v;
  const std::set<std::size_t> closure = reachable_from(retrieval_entry);

  // Container methods that (may) allocate, and heap-owning local types.
  static const std::set<std::string> kAllocCalls = {
      "push_back", "emplace_back", "insert",    "emplace", "push",  "resize",
      "reserve",   "assign",       "make_shared", "make_unique"};
  static const std::set<std::string> kHeapTypes = {"vector", "deque",  "string",
                                                   "map",    "set",    "unordered_map",
                                                   "unordered_set",    "ostringstream"};

  for (const std::size_t fi : closure) {
    const FunctionInfo& fn = functions_[fi];
    const std::string& path = files_[fn.file].path;
    const std::string& s = stripped_[fn.file];
    const std::vector<std::size_t>& starts = line_starts_[fn.file];

    // Closure-wide: Signature::as_vector allocates a vector per call by
    // contract — hot-path consumers go through as_array().
    for (const CallSite& call : calls_[fi]) {
      if (call.name != "as_vector") continue;
      v.push_back({path, call.line, "retrieval-alloc",
                   "as_vector() called from " + fn.qualified +
                       " (retrieval query closure); it allocates per call — use "
                       "as_array()"});
    }

    if (!retrieval_file(path)) continue;

    for (const CallSite& call : calls_[fi]) {
      if (kAllocCalls.count(call.name) == 0) continue;
      v.push_back({path, call.line, "retrieval-alloc",
                   call.name + "() called from " + fn.qualified +
                       " (retrieval query closure); the zero-trial serve path must "
                       "not allocate per query"});
    }

    // `new` expressions and heap-owning local declarations in the body.
    for (std::size_t p = tx::find_token(s, "new", fn.body_begin + 1);
         p != std::string::npos && p < fn.body_end; p = tx::find_token(s, "new", p + 1)) {
      v.push_back({path, tx::line_of(starts, p), "retrieval-alloc",
                   "`new` expression in " + fn.qualified +
                       " (retrieval query closure); the zero-trial serve path must "
                       "not allocate per query"});
    }
    for (const std::string& type : kHeapTypes) {
      for (std::size_t p = tx::find_token(s, type, fn.body_begin + 1);
           p != std::string::npos && p < fn.body_end; p = tx::find_token(s, type, p + 1)) {
        v.push_back({path, tx::line_of(starts, p), "retrieval-alloc",
                     "heap-owning local (std::" + type + ") declared in " + fn.qualified +
                         " (retrieval query closure); use fixed stack scratch — the "
                         "zero-trial serve path must not allocate per query"});
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// FP determinism
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_fp(const FpManifest& fp) const {
  finalize();
  std::vector<Violation> v;
  const std::set<std::size_t> closure = parity_reachable();
  static const std::set<std::string> kFmaHelpers = {"fma_acc", "fnma_acc"};

  for (const std::size_t fi : closure) {
    const FunctionInfo& fn = functions_[fi];
    const std::string& path = files_[fn.file].path;
    const std::string& s = stripped_[fn.file];
    const std::vector<std::size_t>& starts = line_starts_[fn.file];
    const std::size_t body = fn.body_begin;
    const std::size_t body_end = fn.body_end;

    const auto fp_statement = [&](std::size_t begin, std::size_t end) {
      return mentions_name(s, begin, end, fp_names_) || has_fp_literal(s, begin, end);
    };

    // fp-contract: multiply-add shapes in TUs missing from the pin list.
    if (fp.contract_off.count(path) == 0) {
      std::set<std::size_t> reported_lines;
      const auto report = [&](std::size_t pos) {
        const std::size_t line = tx::line_of(starts, pos);
        if (!reported_lines.insert(line).second) return;
        v.push_back({path, line, "fp-contract",
                     "multiply-add FP expression in " + fn.qualified +
                         " (parity/fingerprint closure) but " + path +
                         " is not on the -ffp-contract=off pin list; contraction "
                         "rounds differently across toolchains — pin the TU in CMake "
                         "or use the fma_acc/fnma_acc helpers"});
      };
      // Accumulations: `x += a * b;` / `x -= a * b;`.
      for (std::size_t p = body + 1; p + 1 < body_end; ++p) {
        if ((s[p] != '+' && s[p] != '-') || s[p + 1] != '=') continue;
        if (!binary_op_at(s, p)) continue;
        const std::size_t end = statement_end(s, p + 2, body_end);
        const std::size_t begin = statement_begin(s, p, body + 1);
        if (mentions_name(s, begin, end, kFmaHelpers)) continue;
        bool has_mul = false;
        for (std::size_t q = p + 2; q < end; ++q) {
          if (s[q] == '*' && binary_op_at(s, q) && s[q + 1] != '=') has_mul = true;
        }
        if (has_mul && fp_statement(begin, end)) report(p);
      }
      // Plain assignments whose RHS mixes * with +/- inside one bracket
      // group — the shape -ffp-contract=fast fuses into an fma.
      for (std::size_t p = s.find('=', body + 1); p != std::string::npos && p < body_end;
           p = s.find('=', p + 1)) {
        if (p + 1 < s.size() && s[p + 1] == '=') {
          ++p;
          continue;
        }
        if (p > 0 && std::string("=!<>+-*/%&|^").find(s[p - 1]) != std::string::npos) continue;
        const std::size_t end = statement_end(s, p + 1, body_end);
        const std::size_t begin = statement_begin(s, p, body + 1);
        if (mentions_name(s, begin, end, kFmaHelpers)) continue;
        // Bracket-group id per offset: the innermost open-paren position.
        std::vector<std::size_t> open_stack;
        std::set<std::size_t> mul_groups;
        std::set<std::size_t> add_groups;
        for (std::size_t q = p + 1; q < end; ++q) {
          const char c = s[q];
          if (c == '(' || c == '[' || c == '{') {
            open_stack.push_back(q);
          } else if (c == ')' || c == ']' || c == '}') {
            if (!open_stack.empty()) open_stack.pop_back();
          } else if (c == '*' && q + 1 < end && s[q + 1] != '=' && binary_op_at(s, q)) {
            mul_groups.insert(open_stack.empty() ? 0 : open_stack.back());
          } else if ((c == '+' || c == '-') && s[q + 1] != '=' && s[q + 1] != c &&
                     s[q + 1] != '>' && binary_op_at(s, q)) {
            add_groups.insert(open_stack.empty() ? 0 : open_stack.back());
          }
        }
        bool muladd = false;
        for (const std::size_t g : mul_groups) muladd = muladd || add_groups.count(g) != 0;
        if (muladd && fp_statement(begin, end)) report(p);
      }
    }

    // fp-compare: raw ==/!= between two non-literal FP expressions. The
    // approved helpers — hash_double, bits_equal, and the basis-hash
    // validators — compare for exact identity on purpose.
    if (fn.name == "bits_equal" || fn.name.find("hash") != std::string::npos ||
        fn.name.find("basis") != std::string::npos ||
        fn.name.find("validate") != std::string::npos) {
      continue;
    }
    for (std::size_t p = body + 1; p + 1 < body_end; ++p) {
      const bool eq = s[p] == '=' && s[p + 1] == '=';
      const bool ne = s[p] == '!' && s[p + 1] == '=';
      if (!eq && !ne) continue;
      if (eq && p > 0 && std::string("=!<>").find(s[p - 1]) != std::string::npos) continue;
      if (p + 2 < body_end && s[p + 2] == '=') continue;

      // Left operand: walk back over one value chain.
      std::size_t lend = tx::rskip_ws(s, p);
      if (lend == std::string::npos) continue;
      std::size_t lbegin = lend + 1;
      while (lbegin > body) {
        const char c = s[lbegin - 1];
        if (tx::ident_char(c)) {
          lbegin -= tx::read_ident_backward(s, lbegin - 1).size();
        } else if (c == ')' || c == ']') {
          const char open_c = c == ')' ? '(' : '[';
          std::size_t depth = 0;
          std::size_t q = lbegin;
          while (q > body) {
            --q;
            if (s[q] == c) ++depth;
            if (s[q] == open_c && --depth == 0) break;
          }
          if (q == body) break;
          lbegin = q;
        } else if (c == '.') {
          --lbegin;
        } else if (lbegin >= 2 && ((s[lbegin - 2] == '-' && c == '>') ||
                                   (s[lbegin - 2] == ':' && c == ':'))) {
          lbegin -= 2;
        } else {
          break;
        }
      }
      // Right operand: the mirror walk forward.
      std::size_t rbegin = tx::skip_ws(s, p + 2);
      std::size_t rend = rbegin;
      if (rend < body_end && (s[rend] == '-' || s[rend] == '+')) ++rend;  // unary sign
      while (rend < body_end) {
        const char c = s[rend];
        if (tx::ident_char(c)) {
          ++rend;
        } else if (c == '(' || c == '[') {
          const std::size_t close = tx::match_forward(s, rend, c, c == '(' ? ')' : ']');
          if (close == std::string::npos || close > body_end) break;
          rend = close;
        } else if (c == '.') {
          ++rend;
        } else if (rend + 1 < body_end && ((c == '-' && s[rend + 1] == '>') ||
                                           (c == ':' && s[rend + 1] == ':'))) {
          rend += 2;
        } else {
          break;
        }
      }
      if (lbegin > lend || rbegin >= rend) continue;

      const auto literal_only = [&](std::size_t b, std::size_t e) {
        bool digit = false;
        for (std::size_t q = b; q < e; ++q) {
          const char c = s[q];
          if (c >= '0' && c <= '9') {
            digit = true;
          } else if (c != '.' && c != '+' && c != '-' && c != 'e' && c != 'E' && c != 'f' &&
                     c != 'F' && c != ' ') {
            return false;
          }
        }
        return digit;
      };
      // An operand is FP when its *head* value segment — the last top-level
      // identifier of the chain: `rows` in l.rows(), `total_slots` in
      // d.total_slots, `raw` in raw[d] — is a declared float/double name, or
      // when the operand carries an FP literal. Judging by any token in the
      // span would let an unrelated `double l;` elsewhere in the program
      // poison every `l.rows() == l.cols()` size comparison.
      const auto fp_side = [&](std::size_t b, std::size_t e) {
        if (has_fp_literal(s, b, e)) return true;
        std::string head;
        std::size_t depth = 0;
        for (std::size_t q = b; q < e; ++q) {
          const char c = s[q];
          if (c == '(' || c == '[' || c == '{') ++depth;
          if (c == ')' || c == ']' || c == '}') {
            if (depth > 0) --depth;
            continue;
          }
          if (depth != 0 || !tx::ident_start(c) || (q > b && tx::ident_char(s[q - 1]))) {
            continue;
          }
          std::size_t w = q;
          head = tx::read_ident(s, w);
          q = w - 1;
        }
        return !head.empty() && fp_names_.count(head) != 0;
      };
      if (literal_only(lbegin, lend + 1) || literal_only(rbegin, rend)) continue;
      if (!fp_side(lbegin, lend + 1) || !fp_side(rbegin, rend)) continue;
      v.push_back({path, tx::line_of(starts, p), "fp-compare",
                   std::string(eq ? "==" : "!=") + " between FP expressions in " +
                       fn.qualified + " (parity/fingerprint closure); exact FP equality "
                       "belongs in the approved helpers (hash_double, basis validators) "
                       "— compare against an explicit literal sentinel or a tolerance"});
    }
  }
  return v;
}

}  // namespace stune::analyze
