// The stune_analyze rule families: layering, determinism, and lock order,
// all computed over the whole-program model built in analyze.cpp.
#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyze.hpp"
#include "lint.hpp"
#include "text_scan.hpp"

namespace stune::analyze {

namespace {

namespace tx = stune::analyze::text;

/// src/ module of a repo-relative path ("" when not a module source file).
std::string module_of(const std::string& path) {
  if (path.rfind("src/", 0) != 0) return {};
  const std::size_t slash = path.find('/', 4);
  if (slash == std::string::npos) return {};
  return path.substr(4, slash - 4);
}

}  // namespace

// ---------------------------------------------------------------------------
// Call resolution, reachability, and the lock graph
// ---------------------------------------------------------------------------

namespace {

bool fingerprint_entry(const FunctionInfo& fn) {
  return fn.name.find("fingerprint") != std::string::npos || fn.name == "commit" ||
         fn.name == "record_to_kb";
}

bool parity_entry(const FunctionInfo& fn) {
  // The engine parity surface: the event-driven run() and the wave-rescan
  // reference it is bitwise-compared against, plus every fingerprint entry
  // (cache keys replay the same reports).
  return fingerprint_entry(fn) || (fn.name == "run" && fn.class_name == "SparkSimulator") ||
         fn.name == "run_wave_rescan";
}

}  // namespace

std::set<std::size_t> Program::reachable_from(bool (*entry)(const FunctionInfo&)) const {
  finalize();
  std::set<std::size_t> reachable;
  std::vector<std::size_t> frontier;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (entry(functions_[i])) {
      reachable.insert(i);
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const std::size_t fn = frontier.back();
    frontier.pop_back();
    for (const CallSite& call : calls_[fn]) {
      const auto defs = by_name_.find(call.name);
      if (defs == by_name_.end()) continue;
      std::set<std::string> classes;
      for (const std::size_t d : defs->second) classes.insert(functions_[d].class_name);
      const std::string resolved = resolve_object_class(call.recv, classes);
      for (const std::size_t d : defs->second) {
        if (!resolved.empty() && functions_[d].class_name != resolved) continue;
        if (reachable.insert(d).second) frontier.push_back(d);
      }
    }
  }
  return reachable;
}

std::set<std::size_t> Program::fingerprint_reachable() const {
  return reachable_from(fingerprint_entry);
}

std::set<std::size_t> Program::parity_reachable() const {
  return reachable_from(parity_entry);
}

std::vector<LockEdge> Program::lock_graph() const {
  finalize();

  // Which definitions a call site may dispatch to: every definition with the
  // callee's name, narrowed to one class when the receiver resolves to a
  // class that defines it (virtual calls through a base reference resolve to
  // nothing and so keep every override).
  const auto targets_of = [this](const CallSite& call) {
    std::vector<std::size_t> targets;
    const auto defs = by_name_.find(call.name);
    if (defs == by_name_.end()) return targets;
    std::set<std::string> classes;
    for (const std::size_t d : defs->second) classes.insert(functions_[d].class_name);
    const std::string resolved = resolve_object_class(call.recv, classes);
    for (const std::size_t d : defs->second) {
      if (!resolved.empty() && functions_[d].class_name != resolved) continue;
      targets.push_back(d);
    }
    return targets;
  };

  // May-acquire summaries, to a fixpoint: every mutex a function may take
  // directly or through any call chain.
  std::vector<std::set<std::string>> summary(functions_.size());
  for (const AcquisitionInfo& acq : acquisitions_) {
    summary[acq.function].insert(acq.mutex_id);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t fn = 0; fn < functions_.size(); ++fn) {
      for (const CallSite& call : calls_[fn]) {
        for (const std::size_t target : targets_of(call)) {
          for (const std::string& m : summary[target]) {
            if (summary[fn].insert(m).second) changed = true;
          }
        }
      }
    }
  }

  std::vector<LockEdge> edges;
  std::set<std::pair<std::string, std::string>> seen;
  const auto add_edge = [&edges, &seen](const std::string& held, const std::string& acquired,
                                        std::string via, std::size_t file, std::size_t line) {
    if (!seen.insert({held, acquired}).second) return;
    edges.push_back({held, acquired, std::move(via), file, line});
  };

  for (const AcquisitionInfo& outer : acquisitions_) {
    const FunctionInfo& fn = functions_[outer.function];
    // Directly nested scopes (same-id nesting is a self-deadlock and is kept
    // as a self-edge for check_lock_order to report).
    for (const AcquisitionInfo& inner : acquisitions_) {
      if (inner.function != outer.function) continue;
      if (inner.pos <= outer.pos || inner.pos >= outer.scope_end) continue;
      add_edge(outer.mutex_id, inner.mutex_id, "nested in " + fn.qualified,
               inner.file, inner.line);
    }
    // Call-derived edges. A call whose summary contains the held mutex
    // itself is not a self-edge here: name matching is an overapproximation
    // (same-named definitions on other classes), so only the distinct-mutex
    // consequences are kept.
    for (const CallSite& call : calls_[outer.function]) {
      if (call.pos <= outer.pos || call.pos >= outer.scope_end) continue;
      for (const std::size_t target : targets_of(call)) {
        for (const std::string& m : summary[target]) {
          if (m == outer.mutex_id) continue;
          add_edge(outer.mutex_id, m,
                   fn.qualified + " -> " + functions_[target].qualified, outer.file,
                   call.line);
        }
      }
    }
  }
  std::sort(edges.begin(), edges.end(), [](const LockEdge& a, const LockEdge& b) {
    if (a.held != b.held) return a.held < b.held;
    return a.acquired < b.acquired;
  });
  return edges;
}

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_layering(const LayerManifest& manifest) const {
  std::vector<Violation> v;

  // The declared architecture must itself be acyclic, else a back edge could
  // hide inside a "permitted" cycle.
  {
    std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
    std::vector<std::string> stack;
    std::string cycle;
    const auto dfs = [&](const std::string& node, const auto& self) -> bool {
      color[node] = 1;
      stack.push_back(node);
      const auto deps = manifest.allowed.find(node);
      if (deps != manifest.allowed.end()) {
        for (const std::string& dep : deps->second) {
          if (dep == node || manifest.allowed.count(dep) == 0) continue;
          if (color[dep] == 1) {
            cycle = dep;
            for (std::size_t i = stack.size(); i-- > 0;) {
              cycle += " -> " + stack[i];
              if (stack[i] == dep) break;
            }
            return true;
          }
          if (color[dep] == 0 && self(dep, self)) return true;
        }
      }
      stack.pop_back();
      color[node] = 2;
      return false;
    };
    for (const std::string& module : manifest.order) {
      if (color[module] == 0 && dfs(module, dfs)) {
        v.push_back({"<manifest>", 0, "layer-cycle",
                     "declared layering is cyclic: " + cycle});
        break;
      }
    }
  }

  std::set<std::string> reported_unknown;
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const std::string module = module_of(files_[f].path);
    if (module.empty()) continue;
    if (manifest.allowed.count(module) == 0) {
      if (reported_unknown.insert(module).second) {
        v.push_back({files_[f].path, 1, "layer-unknown-module",
                     "module src/" + module + "/ is not declared in the layering manifest"});
      }
      continue;
    }
    const std::set<std::string>& allowed = manifest.allowed.at(module);
    // Include directives come from the raw text: the stripped view blanks
    // string literals, and a header path is one.
    const std::string& raw = files_[f].content;
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos < raw.size()) {
      const std::size_t eol = raw.find('\n', pos);
      const std::string line =
          raw.substr(pos, eol == std::string::npos ? eol : eol - pos);
      pos = eol == std::string::npos ? raw.size() : eol + 1;
      ++line_no;
      std::size_t cur = tx::skip_ws(line, 0);
      if (line.compare(cur, 8, "#include") != 0) continue;
      cur = tx::skip_ws(line, cur + 8);
      if (cur >= line.size() || line[cur] != '"') continue;
      const std::size_t close = line.find('"', cur + 1);
      if (close == std::string::npos) continue;
      const std::string target = line.substr(cur + 1, close - cur - 1);
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // not a module-qualified include
      const std::string target_module = target.substr(0, slash);
      if (target_module == module) continue;
      if (manifest.allowed.count(target_module) == 0) {
        v.push_back({files_[f].path, line_no, "layer-unknown-module",
                     "#include \"" + target + "\" names module " + target_module +
                         ", which the layering manifest does not declare"});
      } else if (allowed.count(target_module) == 0) {
        v.push_back({files_[f].path, line_no, "layer-back-edge",
                     "src/" + module + "/ may not include from src/" + target_module +
                         "/ (#include \"" + target + "\"); permitted dependencies: " +
                         [&allowed] {
                           std::string joined;
                           for (const std::string& d : allowed) {
                             joined += joined.empty() ? d : ", " + d;
                           }
                           return joined.empty() ? std::string("none") : joined;
                         }()});
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_determinism() const {
  finalize();
  std::vector<Violation> v;
  const std::set<std::size_t> reachable = fingerprint_reachable();

  // det-iter: unordered iteration inside fingerprint-reachable functions.
  for (const std::size_t fi : reachable) {
    const FunctionInfo& fn = functions_[fi];
    const std::string& s = stripped_[fn.file];
    for (std::size_t p = tx::find_token(s, "for", fn.body_begin);
         p != std::string::npos && p < fn.body_end; p = tx::find_token(s, "for", p + 1)) {
      const std::size_t open = tx::skip_ws(s, p + 3);
      if (open >= s.size() || s[open] != '(') continue;
      const std::size_t close = tx::match_forward(s, open, '(', ')');
      if (close == std::string::npos) continue;
      // A range-for has a ':' at parenthesis depth one.
      std::size_t colon = std::string::npos;
      std::size_t depth = 1;
      for (std::size_t q = open + 1; q + 1 < close; ++q) {
        const char c = s[q];
        if (c == '(' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == ']' || c == '}') --depth;
        if (c == ':' && depth == 1 && s[q + 1] != ':' && s[q - 1] != ':') {
          colon = q;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      const std::string range = s.substr(colon + 1, close - 1 - (colon + 1));
      std::size_t last = range.size();
      while (last > 0 && !tx::ident_char(range[last - 1])) --last;
      if (last == 0) continue;
      const std::string name = tx::read_ident_backward(range, last - 1);
      if (unordered_names_.count(name) == 0) continue;
      v.push_back({files_[fn.file].path, tx::line_of(line_starts_[fn.file], p), "det-iter",
                   "iteration over unordered container '" + name + "' in " + fn.qualified +
                       ", which is reachable from a fingerprint/commit entry point; "
                       "hash order is not deterministic"});
    }
  }

  // det-ptr-key: address-ordered or address-hashed keys, anywhere.
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const std::string& s = stripped_[f];
    for (const char* kw : {"unordered_map", "unordered_set", "map", "set", "hash"}) {
      for (std::size_t p = tx::find_token(s, kw); p != std::string::npos;
           p = tx::find_token(s, kw, p + 1)) {
        const std::size_t open = tx::skip_ws(s, p + std::string(kw).size());
        if (open >= s.size() || s[open] != '<') continue;
        std::size_t depth = 1;
        std::size_t end = open + 1;
        while (end < s.size() && depth > 0) {
          if (s[end] == '<') ++depth;
          if (s[end] == '>') --depth;
          if (s[end] == ',' && depth == 1) break;
          ++end;
        }
        std::string key = s.substr(open + 1, end - open - 1);
        while (!key.empty() && (key.back() == ' ' || key.back() == '\t' ||
                                key.back() == '\n' || key.back() == '>')) {
          key.pop_back();
        }
        if (key.empty() || key.back() != '*') continue;
        v.push_back({files_[f].path, tx::line_of(line_starts_[f], p), "det-ptr-key",
                     std::string(kw) + "<" + key + ", ...> keys on an address; pointer "
                     "order and pointer hashes change run to run under ASLR"});
      }
    }
  }

  // det-rng: unseeded standard engines and ambient entropy sources.
  for (std::size_t f = 0; f < files_.size(); ++f) {
    const std::string& s = stripped_[f];
    const auto line_at = [&](std::size_t p) { return tx::line_of(line_starts_[f], p); };
    for (const char* engine :
         {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0", "default_random_engine",
          "ranlux24", "ranlux48", "knuth_b"}) {
      for (std::size_t p = tx::find_token(s, engine); p != std::string::npos;
           p = tx::find_token(s, engine, p + 1)) {
        std::size_t cur = tx::skip_ws(s, p + std::string(engine).size());
        if (cur >= s.size() || !tx::ident_start(s[cur])) continue;  // not a declaration
        tx::read_ident(s, cur);
        cur = tx::skip_ws(s, cur);
        bool unseeded = false;
        if (cur >= s.size() || s[cur] == ';') {
          unseeded = true;  // `std::mt19937 gen;` — default seed
        } else if (s[cur] == '(' || s[cur] == '{') {
          const char open_c = s[cur];
          const std::size_t close =
              tx::match_forward(s, cur, open_c, open_c == '(' ? ')' : '}');
          if (close != std::string::npos &&
              tx::skip_ws(s, cur + 1) == close - 1) {
            unseeded = true;  // empty initializer — still the default seed
          }
        }
        if (!unseeded) continue;
        v.push_back({files_[f].path, line_at(p), "det-rng",
                     "std::" + std::string(engine) + " constructed with its default seed; "
                     "route stochasticity through simcore::Rng"});
      }
    }
    for (std::size_t p = tx::find_token(s, "random_device"); p != std::string::npos;
         p = tx::find_token(s, "random_device", p + 1)) {
      v.push_back({files_[f].path, line_at(p), "det-rng",
                   "std::random_device draws ambient entropy; route stochasticity "
                   "through simcore::Rng"});
    }
    for (const char* fncall : {"rand", "srand"}) {
      for (std::size_t p = tx::find_token(s, fncall); p != std::string::npos;
           p = tx::find_token(s, fncall, p + 1)) {
        const std::size_t open = tx::skip_ws(s, p + std::string(fncall).size());
        if (open >= s.size() || s[open] != '(') continue;
        if (p > 0 && (s[p - 1] == '.' || s[p - 1] == ':')) continue;  // member/qualified
        v.push_back({files_[f].path, line_at(p), "det-rng",
                     std::string(fncall) + "() uses hidden global state; route "
                     "stochasticity through simcore::Rng"});
      }
    }
  }

  // det-wall-clock: real-time reads reachable from fingerprint entry points
  // (the per-file rule exempts simcore/ wholesale; reachability does not).
  for (const std::size_t fi : reachable) {
    const FunctionInfo& fn = functions_[fi];
    const std::string& s = stripped_[fn.file];
    for (const char* clock : {"system_clock", "steady_clock", "high_resolution_clock",
                              "gettimeofday", "clock_gettime", "timespec_get"}) {
      for (std::size_t p = tx::find_token(s, clock, fn.body_begin);
           p != std::string::npos && p < fn.body_end; p = tx::find_token(s, clock, p + 1)) {
        v.push_back({files_[fn.file].path, tx::line_of(line_starts_[fn.file], p),
                     "det-wall-clock",
                     std::string(clock) + " read in " + fn.qualified + ", which is "
                     "reachable from a fingerprint/commit entry point; fingerprints "
                     "must not depend on real time"});
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Lock order
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_lock_order() const {
  finalize();
  std::vector<Violation> v;
  const std::vector<LockEdge> edges = lock_graph();

  // Self-edges are direct nested re-acquisition: deadlock, unconditionally.
  std::map<std::string, std::vector<const LockEdge*>> adjacency;
  for (const LockEdge& e : edges) {
    if (e.held == e.acquired) {
      v.push_back({files_[e.file].path, e.line, "lock-cycle",
                   e.held + " re-acquired while already held (" + e.via + ")"});
      continue;
    }
    adjacency[e.held].push_back(&e);
  }

  // Cycles in the may-acquire-while-holding graph: any two threads entering
  // the cycle from different nodes can deadlock.
  {
    std::set<std::string> reported;  // canonical cycle keys
    std::map<std::string, int> color;
    std::vector<const LockEdge*> stack;
    const auto dfs = [&](const std::string& node, const auto& self) -> void {
      color[node] = 1;
      for (const LockEdge* e : adjacency[node]) {
        if (color[e->acquired] == 1) {
          // Unwind the stack to the cycle entry and canonicalize.
          std::vector<const LockEdge*> cycle{e};
          for (std::size_t i = stack.size(); i-- > 0;) {
            if (stack[i]->acquired != cycle.back()->held) continue;
            cycle.push_back(stack[i]);
            if (stack[i]->held == e->acquired) break;
          }
          std::set<std::string> nodes;
          for (const LockEdge* ce : cycle) nodes.insert(ce->held);
          std::string key;
          for (const std::string& n : nodes) key += n + "|";
          if (!reported.insert(key).second) continue;
          std::string path = e->acquired;
          for (const LockEdge* ce : cycle) path = ce->held + " -> " + path;
          std::string provenance;
          for (std::size_t i = cycle.size(); i-- > 0;) {
            provenance += (provenance.empty() ? "" : "; ") + cycle[i]->via;
          }
          v.push_back({files_[e->file].path, e->line, "lock-cycle",
                       "lock-order cycle " + path + " (" + provenance + ")"});
        } else if (color[e->acquired] == 0) {
          stack.push_back(e);
          self(e->acquired, self);
          stack.pop_back();
        }
      }
      color[node] = 2;
    };
    for (const auto& [node, unused] : adjacency) {
      (void)unused;
      if (color[node] == 0) dfs(node, dfs);
    }
  }

  // Rank contradictions: the static graph must agree with the runtime
  // validator's declared order (strictly increasing ranks).
  for (const LockEdge& e : edges) {
    if (e.held == e.acquired) continue;
    const int held_rank = rank_of(e.held);
    const int acquired_rank = rank_of(e.acquired);
    if (held_rank == 0 || acquired_rank == 0) continue;
    if (held_rank < acquired_rank) continue;
    v.push_back({files_[e.file].path, e.line, "lock-rank-order",
                 e.acquired + " (rank " + std::to_string(acquired_rank) +
                     ") acquired while holding " + e.held + " (rank " +
                     std::to_string(held_rank) + ") via " + e.via +
                     "; ranks must strictly increase"});
  }

  // STUNE_EXCLUDES contract: calling a function that excludes m with m held.
  for (const AcquisitionInfo& acq : acquisitions_) {
    for (const CallSite& call : calls_[acq.function]) {
      if (call.pos <= acq.pos || call.pos >= acq.scope_end) continue;
      const auto entry = excludes_.find(call.name);
      if (entry == excludes_.end()) continue;
      std::set<std::string> classes;
      for (const auto& [cls, unused] : entry->second) classes.insert(cls);
      const std::string resolved = resolve_object_class(call.recv, classes);
      for (const auto& [cls, mutex_id] : entry->second) {
        if (!resolved.empty() && cls != resolved) continue;
        if (mutex_id != acq.mutex_id) continue;
        v.push_back({files_[acq.file].path, call.line, "lock-excludes",
                     call.name + "() is annotated STUNE_EXCLUDES(" + mutex_id +
                         ") but is called from " + functions_[acq.function].qualified +
                         " with that mutex held"});
      }
    }
  }
  return v;
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

std::vector<Violation> Program::check_all(const LayerManifest& manifest,
                                          const FpManifest& fp) const {
  std::vector<Violation> v = check_layering(manifest);
  const std::vector<Violation> det = check_determinism();
  const std::vector<Violation> lock = check_lock_order();
  const std::vector<Violation> arena = check_arena(manifest);
  const std::vector<Violation> fpv = check_fp(fp);
  const std::vector<Violation> retrieval = check_retrieval();
  v.insert(v.end(), det.begin(), det.end());
  v.insert(v.end(), lock.begin(), lock.end());
  v.insert(v.end(), arena.begin(), arena.end());
  v.insert(v.end(), fpv.begin(), fpv.end());
  v.insert(v.end(), retrieval.begin(), retrieval.end());

  // The shared allow() escape hatch (`stune-lint:` or `stune-analyze:`).
  std::map<std::string, std::size_t> path_index;
  for (std::size_t f = 0; f < files_.size(); ++f) path_index[files_[f].path] = f;
  std::map<std::size_t, std::map<std::size_t, std::set<std::string>>> allow_cache;
  std::vector<Violation> kept;
  for (Violation& violation : v) {
    const auto file = path_index.find(violation.file);
    if (file != path_index.end()) {
      auto cached = allow_cache.find(file->second);
      if (cached == allow_cache.end()) {
        cached = allow_cache
                     .emplace(file->second, lint::allowed_rules(files_[file->second].content))
                     .first;
      }
      const auto line = cached->second.find(violation.line);
      if (line != cached->second.end() &&
          (line->second.count(violation.rule) != 0 || line->second.count("*") != 0)) {
        continue;
      }
    }
    kept.push_back(std::move(violation));
  }
  std::sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return kept;
}

}  // namespace stune::analyze
