// Program construction for stune_analyze: per-file textual parsing (class
// spans, function definitions, call sites, MutexLock acquisitions, mutex
// member declarations, annotations) plus the layering manifest. The rule
// families themselves live in analyze_checks.cpp.
#include "analyze.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"
#include "text_scan.hpp"

namespace stune::analyze {

namespace {

namespace tx = stune::analyze::text;

// Tokens that look like `name(...)` but never head a function definition or
// a call we care to resolve.
bool control_keyword(const std::string& w) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",  "switch",        "catch",  "return",
      "sizeof", "alignof",  "new",    "delete",        "throw",  "decltype",
      "else",   "do",       "case",   "static_assert", "assert", "defined",
      "alignas", "noexcept"};
  return kKeywords.count(w) > 0;
}

bool qualifier_word(const std::string& w) {
  return w == "const" || w == "noexcept" || w == "override" || w == "final" ||
         w == "mutable" || w == "throw" || w == "try" || w.rfind("STUNE_", 0) == 0;
}

// Backward '(' match for `name( ... ) STUNE_EXCLUDES(...)` style scans:
// with s[close_pos] == ')', returns the offset of the matching '('.
std::size_t match_backward_paren(const std::string& s, std::size_t close_pos) {
  std::size_t depth = 0;
  for (std::size_t p = close_pos + 1; p-- > 0;) {
    if (s[p] == ')') {
      ++depth;
    } else if (s[p] == '(') {
      if (--depth == 0) return p;
    }
  }
  return std::string::npos;
}

}  // namespace

// ---------------------------------------------------------------------------
// Layering manifest
// ---------------------------------------------------------------------------

LayerManifest default_manifest() {
  LayerManifest m;
  const auto add = [&m](const std::string& module, std::set<std::string> deps) {
    m.order.push_back(module);
    m.allowed.emplace(module, std::move(deps));
  };
  add("simcore", {});
  add("linalg", {"simcore"});
  add("model", {"linalg", "simcore"});
  add("dag", {"simcore"});
  add("config", {"simcore"});
  add("cluster", {"simcore"});
  add("disc", {"cluster", "config", "dag", "simcore"});
  add("workload", {"config", "dag", "disc", "simcore"});
  add("tuning", {"config", "linalg", "model", "simcore"});
  add("adaptive", {"simcore"});
  add("transfer", {"disc", "model", "simcore", "tuning"});
  add("service", {"adaptive", "cluster", "config", "dag", "disc", "model", "simcore",
                  "transfer", "tuning", "workload"});
  m.arena_modules = {"disc", "simcore"};
  return m;
}

bool parse_manifest(const std::string& toml, LayerManifest& out, std::string& error) {
  out = LayerManifest{};
  enum class Table { kNone, kModules, kArena };
  Table table = Table::kNone;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= toml.size()) {
    const std::size_t eol = toml.find('\n', pos);
    std::string line = toml.substr(pos, eol == std::string::npos ? eol : eol - pos);
    pos = eol == std::string::npos ? toml.size() + 1 : eol + 1;
    ++line_no;
    // Trim and drop comments.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t begin = 0;
    while (begin < line.size() && (line[begin] == ' ' || line[begin] == '\t')) ++begin;
    line.erase(0, begin);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line == "[modules]") {
        table = Table::kModules;
      } else if (line == "[arena]") {
        table = Table::kArena;
      } else {
        error = "line " + std::to_string(line_no) + ": unknown table " + line;
        return false;
      }
      continue;
    }
    if (table == Table::kNone) {
      error = "line " + std::to_string(line_no) + ": entry outside [modules]";
      return false;
    }
    std::size_t cur = 0;
    const std::string name = tx::read_ident(line, cur);
    cur = tx::skip_ws(line, cur);
    if (name.empty() || cur >= line.size() || line[cur] != '=') {
      error = "line " + std::to_string(line_no) + ": expected `module = [\"dep\", ...]`";
      return false;
    }
    cur = tx::skip_ws(line, cur + 1);
    if (cur >= line.size() || line[cur] != '[') {
      error = "line " + std::to_string(line_no) + ": expected a dependency array";
      return false;
    }
    ++cur;
    std::set<std::string> deps;
    while (true) {
      cur = tx::skip_ws(line, cur);
      if (cur < line.size() && line[cur] == ']') break;
      if (cur >= line.size() || line[cur] != '"') {
        error = "line " + std::to_string(line_no) + ": expected a quoted module name";
        return false;
      }
      const std::size_t close = line.find('"', cur + 1);
      if (close == std::string::npos) {
        error = "line " + std::to_string(line_no) + ": unterminated string";
        return false;
      }
      deps.insert(line.substr(cur + 1, close - cur - 1));
      cur = tx::skip_ws(line, close + 1);
      if (cur < line.size() && line[cur] == ',') ++cur;
    }
    if (table == Table::kArena) {
      if (name != "engine" || !out.arena_modules.empty()) {
        error = "line " + std::to_string(line_no) +
                ": [arena] holds a single `engine = [\"module\", ...]` entry";
        return false;
      }
      out.arena_modules = std::move(deps);
      continue;
    }
    if (out.allowed.count(name) != 0) {
      error = "line " + std::to_string(line_no) + ": duplicate module " + name;
      return false;
    }
    out.order.push_back(name);
    out.allowed.emplace(name, std::move(deps));
  }
  if (out.order.empty()) {
    error = "no [modules] table";
    return false;
  }
  return true;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "layer-back-edge", "layer-unknown-module", "layer-cycle",        "det-iter",
      "det-ptr-key",     "det-rng",              "det-wall-clock",     "lock-cycle",
      "lock-excludes",   "lock-rank-order",      "arena-store-escape",
      "arena-return-escape", "arena-alloc-layer", "fp-contract",       "fp-compare",
      "retrieval-alloc"};
  return kIds;
}

// ---------------------------------------------------------------------------
// FP pin manifest
// ---------------------------------------------------------------------------

FpManifest default_fp_manifest() {
  // The committed parity-closure pin set: every TU the fp-contract rule can
  // reach that carries multiply-add FP math. Mirrors the
  // set_source_files_properties lists in the CMakeLists tree (asserted
  // identical by analyze_test).
  FpManifest fp;
  fp.contract_off = {
      "src/adaptive/change_detector.cpp",
      "src/cluster/contention.cpp",
      "src/config/param.cpp",
      "src/config/spark_space.cpp",
      "src/dag/plan.cpp",
      "src/disc/cost_model.cpp",
      "src/disc/engine.cpp",
      "src/disc/whatif.cpp",
      "src/linalg/matrix.cpp",
      "src/model/additive_gp.cpp",
      "src/model/gp.cpp",
      "src/model/kmedoids.cpp",
      "src/model/linear.cpp",
      "src/model/tree.cpp",
      "src/service/retrieval_index.cpp",
      "src/service/signature_scan.cpp",
      "src/simcore/fault.cpp",
      "src/simcore/stats.cpp",
      "src/transfer/characterization.cpp",
      "src/tuning/bestconfig.cpp",
      "src/tuning/grid.cpp",
  };
  return fp;
}

namespace {

/// One `command( ... )` invocation in a CMake file, comments stripped.
struct CmakeCommand {
  std::string name;
  std::vector<std::string> args;  // quoted args keep their content, not the quotes
};

bool parse_cmake_commands(const SourceFile& file, std::vector<CmakeCommand>& out,
                          std::string& error) {
  // Strip comments (this repo's CMake files never put '#' inside a quoted
  // string, and the quoted strings we care about are compile options).
  std::string s;
  s.reserve(file.content.size());
  bool in_quote = false;
  for (std::size_t p = 0; p < file.content.size(); ++p) {
    const char c = file.content[p];
    if (c == '"') in_quote = !in_quote;
    if (c == '#' && !in_quote) {
      const std::size_t eol = file.content.find('\n', p);
      if (eol == std::string::npos) break;
      p = eol;
      s.push_back('\n');
      continue;
    }
    s.push_back(c);
  }

  std::size_t pos = 0;
  while (pos < s.size()) {
    if (!tx::ident_start(s[pos])) {
      ++pos;
      continue;
    }
    CmakeCommand cmd;
    cmd.name = tx::read_ident(s, pos);
    std::size_t cur = tx::skip_ws(s, pos);
    if (cur >= s.size() || s[cur] != '(') continue;  // not an invocation
    const std::size_t close = tx::match_forward(s, cur, '(', ')');
    if (close == std::string::npos) {
      error = file.path + ": unbalanced parenthesis in " + cmd.name + "(...)";
      return false;
    }
    // Tokenize the argument list: whitespace-separated, quotes group.
    std::size_t q = cur + 1;
    while (q < close - 1) {
      q = tx::skip_ws(s, q);
      if (q >= close - 1) break;
      std::string arg;
      if (s[q] == '"') {
        const std::size_t end = s.find('"', q + 1);
        if (end == std::string::npos || end >= close) break;
        arg = s.substr(q + 1, end - q - 1);
        q = end + 1;
      } else {
        const std::size_t begin = q;
        while (q < close - 1 && s[q] != ' ' && s[q] != '\t' && s[q] != '\n' &&
               s[q] != '\r') {
          ++q;
        }
        arg = s.substr(begin, q - begin);
      }
      cmd.args.push_back(std::move(arg));
    }
    out.push_back(std::move(cmd));
    pos = close;
  }
  return true;
}

/// Whether an options value carries -ffp-contract=off, literally or through
/// a ${X} reference to a variable in `pinned_vars`.
bool carries_contract_off(const std::string& value, const std::set<std::string>& pinned_vars) {
  if (value.find("-ffp-contract=off") != std::string::npos) return true;
  for (std::size_t p = value.find("${"); p != std::string::npos; p = value.find("${", p + 1)) {
    const std::size_t end = value.find('}', p + 2);
    if (end == std::string::npos) break;
    if (pinned_vars.count(value.substr(p + 2, end - p - 2)) != 0) return true;
  }
  return false;
}

}  // namespace

bool parse_fp_manifest(const std::vector<SourceFile>& cmake_files, FpManifest& out,
                       std::string& error) {
  out = FpManifest{};
  std::vector<std::pair<std::string, std::vector<CmakeCommand>>> parsed;  // dir, commands
  for (const SourceFile& file : cmake_files) {
    std::vector<CmakeCommand> commands;
    if (!parse_cmake_commands(file, commands, error)) return false;
    const std::size_t slash = file.path.rfind('/');
    const std::string dir = slash == std::string::npos ? "" : file.path.substr(0, slash + 1);
    parsed.emplace_back(dir, std::move(commands));
  }

  // Which variables carry the flag, through ${X} references to a fixpoint
  // (STUNE_ENGINE_KERNEL_OPTIONS is built from STUNE_FP_PIN_OPTIONS).
  std::set<std::string> pinned_vars;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [dir, commands] : parsed) {
      (void)dir;
      for (const CmakeCommand& cmd : commands) {
        if (cmd.name != "set" || cmd.args.size() < 2) continue;
        if (pinned_vars.count(cmd.args[0]) != 0) continue;
        for (std::size_t a = 1; a < cmd.args.size(); ++a) {
          if (!carries_contract_off(cmd.args[a], pinned_vars)) continue;
          pinned_vars.insert(cmd.args[0]);
          changed = true;
          break;
        }
      }
    }
  }

  for (const auto& [dir, commands] : parsed) {
    for (const CmakeCommand& cmd : commands) {
      if (cmd.name != "set_source_files_properties") continue;
      std::vector<std::string> sources;
      bool pinned = false;
      for (std::size_t a = 0; a < cmd.args.size(); ++a) {
        if (cmd.args[a] == "PROPERTIES") {
          sources.assign(cmd.args.begin(), cmd.args.begin() + static_cast<long>(a));
          continue;
        }
        if (cmd.args[a] == "COMPILE_OPTIONS" && a + 1 < cmd.args.size() &&
            carries_contract_off(cmd.args[a + 1], pinned_vars)) {
          pinned = true;
        }
      }
      if (!pinned) continue;
      for (const std::string& source : sources) out.contract_off.insert(dir + source);
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Program construction
// ---------------------------------------------------------------------------

void Program::add_file(SourceFile file) {
  files_.push_back(std::move(file));
  stripped_.push_back(lint::strip_comments_and_literals(files_.back().content));
  line_starts_.push_back(tx::line_starts(stripped_.back()));
  class_spans_.emplace_back();
  calls_.emplace_back();  // resized by parse_file as functions are found
  finalized_ = false;     // new declarations may re-resolve old expressions
  parse_file(files_.size() - 1);
}

void Program::parse_file(std::size_t file_index) {
  const std::string& s = stripped_[file_index];
  const std::vector<std::size_t>& starts = line_starts_[file_index];
  std::vector<ClassSpan>& spans = class_spans_[file_index];

  const auto innermost_class = [&spans](std::size_t pos) -> std::string {
    std::string best;
    std::size_t best_size = 0;
    for (const ClassSpan& c : spans) {
      if (pos < c.begin || pos >= c.end) continue;
      const std::size_t size = c.end - c.begin;
      if (best.empty() || size < best_size) {
        best = c.name;
        best_size = size;
      }
    }
    return best;
  };

  // -- class/struct spans ---------------------------------------------------
  for (const char* kw : {"class", "struct"}) {
    for (std::size_t p = tx::find_token(s, kw); p != std::string::npos;
         p = tx::find_token(s, kw, p + 1)) {
      const std::size_t prev = tx::rskip_ws(s, p);
      if (prev != std::string::npos && tx::ident_char(s[prev]) &&
          tx::read_ident_backward(s, prev) == "enum") {
        continue;  // `enum class` is not a scope we attribute members to
      }
      // Attribute macros may precede the name; `final` may follow it.
      std::size_t cur = p + std::string(kw).size();
      std::vector<std::string> idents;
      while (true) {
        cur = tx::skip_ws(s, cur);
        if (cur >= s.size() || !tx::ident_start(s[cur])) break;
        idents.push_back(tx::read_ident(s, cur));
      }
      while (!idents.empty() && idents.back() == "final") idents.pop_back();
      if (idents.empty()) continue;  // `template <class T>` and friends
      const std::string name = idents.back();
      cur = tx::skip_ws(s, cur);
      if (cur >= s.size()) continue;
      if (s[cur] == ':' && cur + 1 < s.size() && s[cur + 1] != ':') {
        const std::size_t brace = s.find('{', cur);  // base clauses hold no braces
        if (brace == std::string::npos) continue;
        cur = brace;
      }
      if (s[cur] != '{') continue;  // forward declaration or template parameter
      const std::size_t end = tx::match_forward(s, cur, '{', '}');
      if (end == std::string::npos) continue;
      spans.push_back({name, cur, end});
    }
  }

  // -- mutex member declarations (and their lock_rank:: rank refs) ----------
  for (std::size_t p = tx::find_token(s, "Mutex"); p != std::string::npos;
       p = tx::find_token(s, "Mutex", p + 1)) {
    std::size_t cur = tx::skip_ws(s, p + 5);
    if (cur >= s.size() || !tx::ident_start(s[cur])) continue;  // MutexLock ctor params etc.
    const std::string member = tx::read_ident(s, cur);
    cur = tx::skip_ws(s, cur);
    if (cur >= s.size() || (s[cur] != ';' && s[cur] != '{')) continue;
    const std::string owner = innermost_class(p);
    if (owner.empty()) continue;  // locals are canonicalized by use site
    mutex_members_[member].insert(owner);
    if (s[cur] == '{') {
      const std::size_t end = tx::match_forward(s, cur, '{', '}');
      if (end == std::string::npos) continue;
      const std::string init = s.substr(cur, end - cur);
      const std::size_t rank_ref = init.find("lock_rank::");
      if (rank_ref != std::string::npos) {
        std::size_t rp = rank_ref + 11;
        const std::string rank = tx::read_ident(init, rp);
        if (!rank.empty()) mutex_rank_name_[owner + "::" + member] = rank;
      }
    }
  }

  // -- rank constants: `constexpr int kName = N;` ---------------------------
  for (std::size_t p = tx::find_token(s, "constexpr"); p != std::string::npos;
       p = tx::find_token(s, "constexpr", p + 1)) {
    std::size_t cur = tx::skip_ws(s, p + 9);
    if (tx::read_ident(s, cur) != "int") continue;
    cur = tx::skip_ws(s, cur);
    const std::string name = tx::read_ident(s, cur);
    cur = tx::skip_ws(s, cur);
    if (name.empty() || cur >= s.size() || s[cur] != '=') continue;
    cur = tx::skip_ws(s, cur + 1);
    int value = 0;
    bool any = false;
    while (cur < s.size() && s[cur] >= '0' && s[cur] <= '9') {
      value = value * 10 + (s[cur] - '0');
      any = true;
      ++cur;
    }
    if (any) rank_values_[name] = value;
  }

  // -- STUNE_EXCLUDES annotations -------------------------------------------
  for (std::size_t p = tx::find_token(s, "STUNE_EXCLUDES"); p != std::string::npos;
       p = tx::find_token(s, "STUNE_EXCLUDES", p + 1)) {
    const std::size_t open = tx::skip_ws(s, p + 14);
    if (open >= s.size() || s[open] != '(') continue;
    const std::size_t close = tx::match_forward(s, open, '(', ')');
    if (close == std::string::npos) continue;
    // Walk back over trailing qualifiers to the parameter list, then to the
    // declared function's name.
    std::size_t cur = tx::rskip_ws(s, p);
    while (cur != std::string::npos && tx::ident_char(s[cur])) {
      const std::string w = tx::read_ident_backward(s, cur);
      if (!qualifier_word(w)) break;
      cur = tx::rskip_ws(s, cur - w.size() + 1);
    }
    if (cur == std::string::npos || s[cur] != ')') continue;
    const std::size_t params_open = match_backward_paren(s, cur);
    if (params_open == std::string::npos || params_open == 0) continue;
    const std::size_t name_end = tx::rskip_ws(s, params_open);
    if (name_end == std::string::npos) continue;
    const std::string function = tx::read_ident_backward(s, name_end);
    if (function.empty()) continue;
    const std::string cls = innermost_class(p);
    // Each top-level comma-separated argument is one excluded mutex.
    const std::string args = s.substr(open + 1, close - open - 2);
    int depth = 0;
    std::size_t arg_begin = 0;
    for (std::size_t q = 0; q <= args.size(); ++q) {
      if (q < args.size()) {
        const char c = args[q];
        if (c == '(' || c == '<' || c == '[') ++depth;
        if (c == ')' || c == '>' || c == ']') --depth;
        if (c != ',' || depth != 0) continue;
      }
      std::string expr = args.substr(arg_begin, q - arg_begin);
      arg_begin = q + 1;
      if (!tx::last_segment(expr).empty()) {
        raw_excludes_.push_back({function, std::move(expr), cls});
      }
    }
  }

  // -- arena-typed names: `TrialArena a;`, `TrialArena& arena`, members ------
  for (std::size_t p = tx::find_token(s, "TrialArena"); p != std::string::npos;
       p = tx::find_token(s, "TrialArena", p + 1)) {
    std::size_t cur = tx::skip_ws(s, p + 10);
    while (cur < s.size() && (s[cur] == '&' || s[cur] == '*')) cur = tx::skip_ws(s, cur + 1);
    const std::string name = tx::read_ident(s, cur);
    if (!name.empty()) arena_names_.insert(name);
  }

  // -- float/double names: variables, parameters, fp-returning functions ----
  for (const char* kw : {"double", "float"}) {
    for (std::size_t p = tx::find_token(s, kw); p != std::string::npos;
         p = tx::find_token(s, kw, p + 1)) {
      std::size_t cur = tx::skip_ws(s, p + std::string(kw).size());
      while (cur < s.size() && (s[cur] == '&' || s[cur] == '*')) cur = tx::skip_ws(s, cur + 1);
      const std::string name = tx::read_ident(s, cur);
      if (!name.empty() && !qualifier_word(name) && name != "operator") {
        fp_names_.insert(name);
      }
    }
  }

  // -- unordered container variable names -----------------------------------
  for (const char* kw : {"unordered_map", "unordered_set"}) {
    for (std::size_t p = tx::find_token(s, kw); p != std::string::npos;
         p = tx::find_token(s, kw, p + 1)) {
      std::size_t cur = tx::skip_ws(s, p + std::string(kw).size());
      if (cur >= s.size() || s[cur] != '<') continue;
      cur = tx::match_forward(s, cur, '<', '>');
      if (cur == std::string::npos) continue;
      cur = tx::skip_ws(s, cur);
      const std::string name = tx::read_ident(s, cur);
      if (!name.empty()) unordered_names_.insert(name);
    }
  }

  // -- function definitions -------------------------------------------------
  for (std::size_t p = s.find('('); p != std::string::npos; p = s.find('(', p + 1)) {
    const std::size_t name_end = tx::rskip_ws(s, p);
    if (name_end == std::string::npos || !tx::ident_char(s[name_end])) continue;
    std::string name = tx::read_ident_backward(s, name_end);
    if (name.empty() || control_keyword(name)) continue;
    std::size_t name_begin = name_end - name.size() + 1;
    if (name_begin > 0 && s[name_begin - 1] == '~') {
      name.insert(name.begin(), '~');
      --name_begin;
    }
    // Qualified definitions: Class::name (collect the full chain).
    std::string qualified = name;
    std::string class_name;
    {
      std::size_t qp = name_begin;
      while (qp >= 2 && s[qp - 1] == ':' && s[qp - 2] == ':') {
        const std::size_t seg_end = qp >= 3 ? qp - 3 : std::string::npos;
        if (seg_end == std::string::npos || !tx::ident_char(s[seg_end])) break;
        const std::string seg = tx::read_ident_backward(s, seg_end);
        if (seg.empty()) break;
        class_name = seg;  // innermost explicit qualifier wins
        qualified = seg + "::" + qualified;
        qp = seg_end - seg.size() + 1;
      }
    }
    const std::size_t params_end = tx::match_forward(s, p, '(', ')');
    if (params_end == std::string::npos) continue;

    // Skip qualifiers/annotations until the body '{' (or bail: declaration).
    std::size_t cur = params_end;
    std::size_t body = std::string::npos;
    bool rejected = false;
    while (!rejected && body == std::string::npos) {
      cur = tx::skip_ws(s, cur);
      if (cur >= s.size()) {
        rejected = true;
      } else if (s[cur] == '{') {
        body = cur;
      } else if (s[cur] == '&') {
        ++cur;
      } else if (s[cur] == '(') {  // noexcept(...), operator() parameter list
        cur = tx::match_forward(s, cur, '(', ')');
        rejected = cur == std::string::npos;
      } else if (s[cur] == '-' && cur + 1 < s.size() && s[cur + 1] == '>') {
        cur += 2;  // trailing return type: scan to the body
        while (cur < s.size() && s[cur] != '{' && s[cur] != ';') {
          if (s[cur] == '(') {
            cur = tx::match_forward(s, cur, '(', ')');
            if (cur == std::string::npos) break;
          } else {
            ++cur;
          }
        }
        rejected = cur == std::string::npos || cur >= s.size() || s[cur] == ';';
      } else if (s[cur] == ':' && (cur + 1 >= s.size() || s[cur + 1] != ':')) {
        // Constructor initializer list: `ident(...)` / `ident{...}` items.
        ++cur;
        while (!rejected) {
          cur = tx::skip_ws(s, cur);
          if (tx::read_ident(s, cur).empty()) {
            rejected = true;
            break;
          }
          cur = tx::skip_ws(s, cur);
          if (cur < s.size() && s[cur] == '<') cur = tx::match_forward(s, cur, '<', '>');
          cur = cur == std::string::npos ? std::string::npos : tx::skip_ws(s, cur);
          if (cur == std::string::npos || cur >= s.size() ||
              (s[cur] != '(' && s[cur] != '{')) {
            rejected = true;
            break;
          }
          cur = tx::match_forward(s, cur, s[cur], s[cur] == '(' ? ')' : '}');
          if (cur == std::string::npos) {
            rejected = true;
            break;
          }
          cur = tx::skip_ws(s, cur);
          if (cur < s.size() && s[cur] == ',') {
            ++cur;
            continue;
          }
          if (cur < s.size() && s[cur] == '{') body = cur;
          break;
        }
        rejected = rejected || body == std::string::npos;
      } else if (tx::ident_start(s[cur])) {
        const std::string w = tx::read_ident(s, cur);
        if (!qualifier_word(w)) rejected = true;
      } else {
        rejected = true;  // ';', '=', ',', ')': a declaration or expression
      }
    }
    if (rejected || body == std::string::npos) continue;
    const std::size_t body_end = tx::match_forward(s, body, '{', '}');
    if (body_end == std::string::npos) continue;

    if (class_name.empty()) class_name = innermost_class(body);
    FunctionInfo fn;
    fn.name = name;
    fn.qualified = qualified;
    fn.class_name = class_name;
    fn.file = file_index;
    fn.line = tx::line_of(starts, name_begin);
    fn.body_begin = body;
    fn.body_end = body_end;
    const std::size_t fn_index = functions_.size();
    functions_.push_back(fn);
    by_name_[name].push_back(fn_index);
    calls_.resize(functions_.size());

    // -- call sites inside the body ----------------------------------------
    std::vector<CallSite>& sites = calls_[fn_index];
    for (std::size_t cp = s.find('(', body + 1);
         cp != std::string::npos && cp < body_end; cp = s.find('(', cp + 1)) {
      const std::size_t ce = tx::rskip_ws(s, cp);
      if (ce == std::string::npos || !tx::ident_char(s[ce])) continue;
      const std::string callee = tx::read_ident_backward(s, ce);
      if (callee.empty() || control_keyword(callee) || qualifier_word(callee)) continue;
      const std::size_t cb = ce - callee.size() + 1;
      std::string recv;
      bool member_access = true;
      if (cb >= 1 && s[cb - 1] == '.') {
        recv = tx::read_ident_backward(s, cb - 2);
      } else if (cb >= 2 && s[cb - 2] == '-' && s[cb - 1] == '>') {
        recv = tx::read_ident_backward(s, cb - 3);
      } else if (cb >= 2 && s[cb - 2] == ':' && s[cb - 1] == ':') {
        recv = cb >= 3 ? tx::read_ident_backward(s, cb - 3) : std::string();
      } else {
        member_access = false;
      }
      if (!member_access) {
        // `Type name(args)` is a declaration, not a call: skip when the
        // token before the name is an identifier (a type) or the '>' of a
        // template argument list. Control keywords still head real calls
        // (`return f(x)`, `new Foo(x)`).
        const std::size_t prev = tx::rskip_ws(s, cb);
        if (prev != std::string::npos) {
          if (tx::ident_char(s[prev]) &&
              !control_keyword(tx::read_ident_backward(s, prev))) {
            continue;
          }
          if (s[prev] == '>' && (prev == 0 || s[prev - 1] != '-')) continue;
        }
      }
      sites.push_back({callee, recv, cb, tx::line_of(starts, cb)});
    }

    // -- MutexLock acquisitions inside the body -----------------------------
    for (std::size_t mp = tx::find_token(s, "MutexLock", body + 1);
         mp != std::string::npos && mp < body_end;
         mp = tx::find_token(s, "MutexLock", mp + 1)) {
      std::size_t cur2 = tx::skip_ws(s, mp + 9);
      if (cur2 >= s.size() || !tx::ident_start(s[cur2])) continue;  // not a guard decl
      tx::read_ident(s, cur2);  // the guard variable's name
      cur2 = tx::skip_ws(s, cur2);
      if (cur2 >= s.size() || (s[cur2] != '(' && s[cur2] != '{')) continue;
      const char open_c = s[cur2];
      const std::size_t arg_close =
          tx::match_forward(s, cur2, open_c, open_c == '(' ? ')' : '}');
      if (arg_close == std::string::npos) continue;
      const std::string expr = s.substr(cur2 + 1, arg_close - cur2 - 2);
      // The RAII scope ends where the innermost enclosing brace closes.
      std::size_t depth = 0;
      std::size_t scope_end = body_end;
      for (std::size_t q = arg_close; q < body_end; ++q) {
        if (s[q] == '{') ++depth;
        if (s[q] == '}') {
          if (depth == 0) {
            scope_end = q;
            break;
          }
          --depth;
        }
      }
      AcquisitionInfo acq;
      acq.mutex_id = tx::last_segment(expr);  // canonicalized by finalize()
      acq.file = file_index;
      acq.line = tx::line_of(starts, mp);
      acq.pos = mp;
      acq.scope_end = scope_end;
      acq.function = fn_index;
      acquisitions_.push_back(acq);
      raw_acq_exprs_.push_back(expr);
    }
  }
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

std::string Program::resolve_object_class(const std::string& obj,
                                          const std::set<std::string>& candidates) const {
  if (obj.empty() || candidates.empty()) return {};
  if (candidates.count(obj) != 0) return obj;  // Class::member / explicit qualifier
  const auto declaration_like = [](const std::string& s, std::size_t after) {
    const std::size_t nxt = tx::skip_ws(s, after);
    if (nxt >= s.size()) return false;
    const char c = s[nxt];
    return c == ';' || c == '=' || c == '{' || c == '(' || c == ')' || c == ',';
  };
  for (const std::string& s : stripped_) {
    for (std::size_t p = tx::find_token(s, obj); p != std::string::npos;
         p = tx::find_token(s, obj, p + 1)) {
      std::size_t prev = tx::rskip_ws(s, p);
      if (prev == std::string::npos) continue;
      if (s[prev] == '&' || s[prev] == '*') {
        prev = tx::rskip_ws(s, prev);
        if (prev == std::string::npos) continue;
      }
      if (tx::ident_char(s[prev])) {
        const std::string type = tx::read_ident_backward(s, prev);
        if (candidates.count(type) != 0 && declaration_like(s, p + obj.size())) {
          return type;
        }
      } else if (s[prev] == '>') {
        // `unique_ptr<simcore::ThreadPool> pool_` — search the template
        // argument list for exactly one candidate class.
        std::size_t depth = 1;
        std::size_t q = prev;
        while (q > 0 && depth > 0) {
          --q;
          if (s[q] == '>') ++depth;
          if (s[q] == '<') --depth;
        }
        if (depth != 0) continue;
        const std::string inner = s.substr(q + 1, prev - q - 1);
        std::string found;
        bool ambiguous = false;
        for (const std::string& cand : candidates) {
          if (tx::find_token(inner, cand) == std::string::npos) continue;
          if (!found.empty() && found != cand) ambiguous = true;
          found = cand;
        }
        if (!found.empty() && !ambiguous && declaration_like(s, p + obj.size())) {
          return found;
        }
      }
    }
  }
  return {};
}

std::string Program::canonical_mutex(const std::string& expr,
                                     const std::string& class_context) const {
  const std::string member = tx::last_segment(expr);
  if (member.empty()) return "?::?";
  static const std::set<std::string> kNoDeclarers;
  const auto it = mutex_members_.find(member);
  const std::set<std::string>& declaring = it == mutex_members_.end() ? kNoDeclarers : it->second;
  if (declaring.size() == 1) return *declaring.begin() + "::" + member;

  // Object part of the expression (everything before the member segment).
  std::string object;
  const std::size_t member_at = expr.rfind(member);
  if (member_at != std::string::npos && member_at > 0) {
    object = expr.substr(0, member_at);
    while (!object.empty() &&
           (object.back() == '.' || object.back() == '>' || object.back() == '-' ||
            object.back() == ':' || object.back() == ' ' || object.back() == '\t')) {
      object.pop_back();
    }
    while (!object.empty() && object.back() == ']') {  // drop subscripts
      const std::size_t open = object.rfind('[');
      if (open == std::string::npos) break;
      object.erase(open);
    }
  }
  if (!object.empty() && object != "this" && object != "(*this)" && object != "*this") {
    std::size_t tail = object.size();
    const std::string base = tx::read_ident_backward(object, tail - 1);
    const std::string cls = resolve_object_class(base, declaring);
    if (!cls.empty()) return cls + "::" + member;
  } else if (!class_context.empty() &&
             (declaring.empty() || declaring.count(class_context) != 0)) {
    return class_context + "::" + member;
  }
  if (!class_context.empty() && declaring.count(class_context) != 0) {
    return class_context + "::" + member;
  }
  return "?::" + member;
}

void Program::finalize() const {
  if (finalized_) return;
  for (std::size_t i = 0; i < acquisitions_.size(); ++i) {
    const std::string& cls = functions_[acquisitions_[i].function].class_name;
    acquisitions_[i].mutex_id = canonical_mutex(raw_acq_exprs_[i], cls);
  }
  excludes_.clear();
  for (const RawExclude& raw : raw_excludes_) {
    excludes_[raw.function].push_back(
        {raw.class_context, canonical_mutex(raw.expr, raw.class_context)});
  }
  finalized_ = true;
}

const std::vector<AcquisitionInfo>& Program::acquisitions() const {
  finalize();
  return acquisitions_;
}

int Program::rank_of(const std::string& mutex_id) const {
  const auto name = mutex_rank_name_.find(mutex_id);
  if (name == mutex_rank_name_.end()) return 0;
  const auto value = rank_values_.find(name->second);
  return value == rank_values_.end() ? 0 : value->second;
}

}  // namespace stune::analyze
