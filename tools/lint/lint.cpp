#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace stune::lint {

namespace {

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t line_of(const std::string& code, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(code.begin(), code.begin() + static_cast<long>(pos), '\n'));
}

/// Find calls of `name`: an identifier immediately before '(' (allowing
/// spaces) that is not part of a longer identifier.
std::vector<std::size_t> find_calls(const std::string& code, const std::string& name) {
  std::vector<std::size_t> lines;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    const bool starts_ident = pos > 0 && ident_char(code[pos - 1]);
    std::size_t after = end;
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0 &&
           code[after] != '\n') {
      ++after;
    }
    const bool is_call = after < code.size() && code[after] == '(';
    if (!starts_ident && is_call && (end >= code.size() || !ident_char(code[end]))) {
      lines.push_back(line_of(code, pos));
    }
    pos = end;
  }
  return lines;
}

/// Find `token` with identifier boundaries on both sides.
std::vector<std::size_t> find_token(const std::string& code, const std::string& token) {
  std::vector<std::size_t> lines;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool starts_ident = pos > 0 && ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool ends_ident = end < code.size() && ident_char(code[end]);
    if (!starts_ident && !ends_ident) lines.push_back(line_of(code, pos));
    pos = end;
  }
  return lines;
}

/// First line on which `token` occurs (0 if absent).
std::size_t first_token_line(const std::string& code, const std::string& token) {
  const auto lines = find_token(code, token);
  return lines.empty() ? 0 : lines.front();
}

/// Headers named in #include directives (the bare name, no brackets).
std::set<std::string> included_headers(const std::string& raw) {
  std::set<std::string> headers;
  std::istringstream in(raw);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos || line[i] != '#') continue;
    i = line.find_first_not_of(" \t", i + 1);
    if (i == std::string::npos || line.compare(i, 7, "include") != 0) continue;
    i = line.find_first_of("<\"", i + 7);
    if (i == std::string::npos) continue;
    const char closer = line[i] == '<' ? '>' : '"';
    const std::size_t end = line.find(closer, i + 1);
    if (end == std::string::npos) continue;
    headers.insert(line.substr(i + 1, end - i - 1));
  }
  return headers;
}

/// Line number of the `#include <name>` directive (for violation anchoring).
std::size_t include_line(const std::string& raw, const std::string& name) {
  std::istringstream in(raw);
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.find("#include") != std::string::npos &&
        line.find("<" + name + ">") != std::string::npos) {
      return number;
    }
  }
  return 1;
}

// ---------------------------------------------------------------------------
// Passes. Each receives the same pre-lexed input and appends violations.
// ---------------------------------------------------------------------------

struct LintInput {
  const std::string& file;           // display path
  const std::string& raw;            // original contents
  const std::string& code;           // comments/literals stripped
  const FileClass& cls;
  const std::set<std::string>& includes;
};

void pass_pragma_once(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.header) return;
  if (in.raw.find("#pragma once") == std::string::npos) {
    out.push_back({in.file, 1, "pragma-once", "header does not use #pragma once"});
  }
}

void pass_no_bare_assert(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.library_code) return;
  for (const std::size_t line : find_calls(in.code, "assert")) {
    out.push_back({in.file, line, "no-bare-assert",
                   "use STUNE_CHECK/STUNE_DCHECK/STUNE_INVARIANT from simcore/check.hpp"});
  }
}

void pass_no_unseeded_rng(const LintInput& in, std::vector<Violation>& out) {
  for (const auto* banned : {"rand", "srand"}) {
    for (const std::size_t line : find_calls(in.code, banned)) {
      out.push_back({in.file, line, "no-unseeded-rng",
                     std::string(banned) + "() bypasses simcore::Rng; simulations must be "
                                           "deterministic in their seed"});
    }
  }
  for (const std::size_t line : find_token(in.code, "random_device")) {
    out.push_back({in.file, line, "no-unseeded-rng",
                   "std::random_device is unseedable; derive streams from simcore::Rng::fork"});
  }
}

void pass_no_stdout(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.library_code) return;
  for (const auto* stream : {"std::cout", "std::cerr"}) {
    for (const std::size_t line : find_token(in.code, stream)) {
      out.push_back({in.file, line, "no-stdout",
                     std::string(stream) + " in library code; report through metrics/returns"});
    }
  }
  for (const std::size_t line : find_calls(in.code, "puts")) {
    out.push_back({in.file, line, "no-stdout", "puts() in library code"});
  }
}

/// The curated symbol→header table for include-what-you-use. Deliberately
/// vocabulary types and their factories — symbols whose owning header is
/// unambiguous — rather than an exhaustive std index.
struct SymbolHeader {
  const char* symbol;
  const char* header;
};

constexpr SymbolHeader kSymbolTable[] = {
    {"std::string", "string"},
    {"std::string_view", "string_view"},
    {"std::vector", "vector"},
    {"std::array", "array"},
    {"std::deque", "deque"},
    {"std::map", "map"},
    {"std::set", "set"},
    {"std::unordered_map", "unordered_map"},
    {"std::unordered_set", "unordered_set"},
    {"std::optional", "optional"},
    {"std::nullopt", "optional"},
    {"std::unique_ptr", "memory"},
    {"std::shared_ptr", "memory"},
    {"std::weak_ptr", "memory"},
    {"std::make_unique", "memory"},
    {"std::make_shared", "memory"},
    {"std::function", "functional"},
    {"std::thread", "thread"},
    {"std::mutex", "mutex"},
    {"std::lock_guard", "mutex"},
    {"std::unique_lock", "mutex"},
    {"std::scoped_lock", "mutex"},
    {"std::condition_variable", "condition_variable"},
    {"std::condition_variable_any", "condition_variable"},
    {"std::atomic", "atomic"},
    {"std::future", "future"},
    {"std::promise", "future"},
    {"std::packaged_task", "future"},
    {"std::async", "future"},
    {"std::uint8_t", "cstdint"},
    {"std::uint16_t", "cstdint"},
    {"std::uint32_t", "cstdint"},
    {"std::uint64_t", "cstdint"},
    {"std::int32_t", "cstdint"},
    {"std::int64_t", "cstdint"},
    {"std::size_t", "cstddef"},
    {"std::ptrdiff_t", "cstddef"},
    {"std::ostringstream", "sstream"},
    {"std::istringstream", "sstream"},
    {"std::stringstream", "sstream"},
    {"std::ofstream", "fstream"},
    {"std::ifstream", "fstream"},
    {"std::cout", "iostream"},
    {"std::cerr", "iostream"},
    {"std::cin", "iostream"},
    {"std::chrono", "chrono"},
    {"std::filesystem", "filesystem"},
    {"std::span", "span"},
    {"std::bit_cast", "bit"},
    {"std::clamp", "algorithm"},
    {"std::numeric_limits", "limits"},
    {"std::priority_queue", "queue"},
    {"std::queue", "queue"},
    {"std::greater", "functional"},
    {"std::less", "functional"},
    {"std::byte", "cstddef"},
    {"std::pop_heap", "algorithm"},
    {"std::push_heap", "algorithm"},
    {"std::make_heap", "algorithm"},
    {"std::max_element", "algorithm"},
    {"std::min_element", "algorithm"},
};

void pass_include_what_you_use(const LintInput& in, std::vector<Violation>& out) {
  std::set<std::string> reported;  // one violation per missing header
  for (const auto& entry : kSymbolTable) {
    if (in.includes.count(entry.header) != 0) continue;
    const std::size_t line = first_token_line(in.code, entry.symbol);
    if (line == 0) continue;
    if (!reported.insert(entry.header).second) continue;
    out.push_back({in.file, line, "include-what-you-use",
                   std::string("uses ") + entry.symbol + " but does not include <" +
                       entry.header + "> directly"});
  }
}

void pass_no_iostream_in_header(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.header) return;
  if (in.includes.count("iostream") != 0) {
    out.push_back({in.file, include_line(in.raw, "iostream"), "no-iostream-in-header",
                   "headers must not include <iostream>; stream types come from <ostream> "
                   "or <sstream>, and library code reports through returns anyway"});
  }
}

void pass_no_wall_clock(const LintInput& in, std::vector<Violation>& out) {
  if (in.cls.wall_clock_exempt) return;
  for (const auto* clock : {"system_clock", "steady_clock", "high_resolution_clock"}) {
    for (const std::size_t line : find_token(in.code, clock)) {
      out.push_back({in.file, line, "no-wall-clock",
                     std::string("std::chrono::") + clock + " reads the wall clock; simulated "
                         "time is virtual (simcore), so results would depend on the host"});
    }
  }
  for (const auto* fn : {"time", "gettimeofday", "clock_gettime", "localtime", "gmtime"}) {
    for (const std::size_t line : find_calls(in.code, fn)) {
      out.push_back({in.file, line, "no-wall-clock",
                     std::string(fn) + "() reads the wall clock; use virtual time"});
    }
  }
}

void pass_no_swallowed_exception(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.library_code) return;
  const std::string& code = in.code;
  std::size_t pos = 0;
  while ((pos = code.find("catch", pos)) != std::string::npos) {
    const std::size_t kw_end = pos + 5;
    if ((pos > 0 && ident_char(code[pos - 1])) ||
        (kw_end < code.size() && ident_char(code[kw_end]))) {
      pos = kw_end;
      continue;
    }
    // Only catch-all handlers: catch (...) — a typed catch states what it
    // expects and is allowed to absorb it.
    std::size_t i = kw_end;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) ++i;
    if (i >= code.size() || code[i] != '(') {
      pos = kw_end;
      continue;
    }
    const std::size_t close = code.find(')', i);
    if (close == std::string::npos) break;
    std::string decl = code.substr(i + 1, close - i - 1);
    decl.erase(std::remove_if(decl.begin(), decl.end(),
                              [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; }),
               decl.end());
    if (decl != "...") {
      pos = kw_end;
      continue;
    }
    // Brace-match the handler body.
    std::size_t open = code.find('{', close);
    if (open == std::string::npos) break;
    int depth = 0;
    std::size_t end = open;
    for (; end < code.size(); ++end) {
      if (code[end] == '{') ++depth;
      else if (code[end] == '}' && --depth == 0) break;
    }
    const std::string body = code.substr(open, end - open);
    // The handler must do *something* with the exception: rethrow it, or
    // capture it for someone who will (std::current_exception).
    const bool handles = !find_token(body, "throw").empty() ||
                         !find_token(body, "rethrow_exception").empty() ||
                         !find_token(body, "current_exception").empty();
    if (!handles) {
      out.push_back({in.file, line_of(code, pos), "no-swallowed-exception",
                     "catch (...) neither rethrows nor captures the exception "
                     "(std::current_exception); a silently swallowed error turns a crash "
                     "into wrong results"});
    }
    pos = end == code.size() ? end : end + 1;
  }
}

void pass_lock_discipline(const LintInput& in, std::vector<Violation>& out) {
  if (!in.cls.library_code) return;
  for (const auto* pattern : {".lock(", "->lock(", ".unlock(", "->unlock(", ".try_lock(",
                              "->try_lock("}) {
    std::size_t pos = 0;
    while ((pos = in.code.find(pattern, pos)) != std::string::npos) {
      out.push_back({in.file, line_of(in.code, pos), "lock-discipline",
                     "raw mutex lock/unlock call; critical sections are RAII "
                     "(simcore::MutexLock) so early returns and exceptions cannot leak a "
                     "held lock"});
      pos += std::string(pattern).size();
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

std::string strip_comments_and_literals(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = in[i];
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
          state = State::kLineComment;
          blank(i);
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
          state = State::kBlockComment;
          blank(i);
        } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                               in[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < n && in[j] != '(') raw_delim += in[j++];
          state = State::kRawString;
          i = j;  // keep the prefix; contents get blanked from here
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        else blank(i);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && in[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          ++i;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (in.compare(i, closer.size(), closer) == 0) {
          i += closer.size() - 1;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
    }
    ++i;
  }
  return out;
}

// Suppression comments: `// stune-lint: allow(rule-a, rule-b)` or allow(*).
// The `// stune-analyze: allow(...)` spelling is equivalent — both tools
// honor both, so a suppression reads naturally next to whichever tool
// reported it. Parsed from the raw text (they live inside comments by
// construction).
std::map<std::size_t, std::set<std::string>> allowed_rules(const std::string& raw) {
  std::map<std::size_t, std::set<std::string>> allow;
  std::istringstream in(raw);
  std::string line;
  std::size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    std::size_t tag = line.find("stune-lint:");
    if (tag == std::string::npos) tag = line.find("stune-analyze:");
    if (tag == std::string::npos) continue;
    const std::size_t open = line.find("allow(", tag);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find(')', open);
    if (close == std::string::npos) continue;
    std::string list = line.substr(open + 6, close - open - 6);
    std::string rule;
    std::istringstream rules(list);
    while (std::getline(rules, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) allow[number].insert(rule.substr(b, e - b + 1));
    }
  }
  return allow;
}

std::optional<IncludeFix> fix_include_what_you_use(const std::string& raw) {
  const std::string code = strip_comments_and_literals(raw);
  const std::set<std::string> includes = included_headers(raw);

  // Same detection as the pass: one missing header per symbol-table entry.
  std::set<std::string> missing;
  for (const auto& entry : kSymbolTable) {
    if (includes.count(entry.header) != 0) continue;
    if (first_token_line(code, entry.symbol) == 0) continue;
    missing.insert(entry.header);
  }
  if (missing.empty()) return std::nullopt;

  // Split into lines (preserving a missing trailing newline as-is).
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const std::size_t nl = raw.find('\n', start);
    if (nl == std::string::npos) {
      if (start < raw.size()) lines.push_back(raw.substr(start));
      break;
    }
    lines.push_back(raw.substr(start, nl - start));
    start = nl + 1;
  }

  // Insertion point: after the last #include; else after #pragma once; else
  // the top of the file.
  std::size_t insert_after = 0;  // 1-based line to insert after; 0 = at top
  std::size_t pragma_line = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '#') continue;
    if (line.compare(first, 8, "#include") == 0) insert_after = i + 1;
    if (line.compare(first, 12, "#pragma once") == 0) pragma_line = i + 1;
  }
  if (insert_after == 0) insert_after = pragma_line;

  IncludeFix fix;
  fix.added_headers.assign(missing.begin(), missing.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << '\n';
    if (i + 1 == insert_after) {
      for (const auto& header : missing) out << "#include <" << header << ">\n";
    }
  }
  if (insert_after == 0) {
    std::ostringstream top;
    for (const auto& header : missing) top << "#include <" << header << ">\n";
    fix.fixed = top.str() + out.str();
  } else {
    fix.fixed = out.str();
  }
  return fix;
}

FileClass classify(const std::string& relative_path) {
  FileClass cls;
  cls.header = relative_path.size() >= 4 &&
               relative_path.compare(relative_path.size() - 4, 4, ".hpp") == 0;
  cls.library_code = relative_path.rfind("src/", 0) == 0;
  cls.wall_clock_exempt = relative_path.rfind("src/simcore/", 0) == 0 ||
                          relative_path.rfind("bench/", 0) == 0;
  return cls;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "pragma-once",        "no-bare-assert",         "no-unseeded-rng",
      "no-stdout",          "include-what-you-use",   "no-iostream-in-header",
      "no-wall-clock",      "lock-discipline",        "no-swallowed-exception",
  };
  return ids;
}

std::vector<Violation> lint_content(const std::string& display_path, const std::string& raw,
                                    const FileClass& cls) {
  const std::string code = strip_comments_and_literals(raw);
  const std::set<std::string> includes = included_headers(raw);
  const LintInput in{display_path, raw, code, cls, includes};

  std::vector<Violation> found;
  pass_pragma_once(in, found);
  pass_no_bare_assert(in, found);
  pass_no_unseeded_rng(in, found);
  pass_no_stdout(in, found);
  pass_include_what_you_use(in, found);
  pass_no_iostream_in_header(in, found);
  pass_no_wall_clock(in, found);
  pass_lock_discipline(in, found);
  pass_no_swallowed_exception(in, found);

  const auto allow = allowed_rules(raw);
  std::vector<Violation> kept;
  kept.reserve(found.size());
  for (auto& v : found) {
    const auto it = allow.find(v.line);
    if (it != allow.end() && (it->second.count(v.rule) != 0 || it->second.count("*") != 0)) {
      continue;
    }
    kept.push_back(std::move(v));
  }
  std::stable_sort(kept.begin(), kept.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    return a.line < b.line;
  });
  return kept;
}

std::string format_text(const std::vector<Violation>& violations, std::size_t files_scanned,
                        const std::string& tool) {
  std::ostringstream out;
  for (const auto& v : violations) {
    out << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
  out << tool << ": scanned " << files_scanned << " files, " << violations.size()
      << " violation" << (violations.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf] << "0123456789abcdef"[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  return out.str();
}

}  // namespace

std::string format_json(const std::vector<Violation>& violations, std::size_t files_scanned) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << files_scanned
      << ",\n  \"violation_count\": " << violations.size() << ",\n  \"violations\": [";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const auto& v = violations[i];
    out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << json_escape(v.file)
        << "\", \"line\": " << v.line << ", \"rule\": \"" << json_escape(v.rule)
        << "\", \"message\": \"" << json_escape(v.message) << "\"}";
  }
  out << (violations.empty() ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

}  // namespace stune::lint
