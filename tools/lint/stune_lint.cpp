// stune_lint CLI — walks the tree, classifies each file by path, runs the
// lint library's passes (see lint.hpp for the rule catalogue) and reports.
//
// Usage: stune_lint [--format=text|json] [--fix] <repo-root>
//        stune_lint --list-rules
// --fix rewrites files in place to repair include-what-you-use violations
// (the missing #include is inserted after the last existing include) before
// linting, so the report and exit status reflect the fixed tree.
// Exit status: 0 clean, 1 violations found, 2 usage/IO error.
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;

bool source_file(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

void lint_tree(const fs::path& root, const fs::path& subtree, bool fix,
               std::vector<stune::lint::Violation>& out, std::size_t& files_scanned,
               std::size_t& files_fixed) {
  if (!fs::exists(root / subtree)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root / subtree)) {
    if (!entry.is_regular_file() || !source_file(entry.path())) continue;
    ++files_scanned;
    std::ifstream f(entry.path());
    if (!f) {
      out.push_back({entry.path().string(), 0, "io", "cannot open file"});
      continue;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string contents = buf.str();
    const std::string relative =
        fs::relative(entry.path(), root).generic_string();
    if (fix) {
      if (auto repaired = stune::lint::fix_include_what_you_use(contents)) {
        std::ofstream rewrite(entry.path(), std::ios::trunc);
        if (rewrite) {
          rewrite << repaired->fixed;
          contents = std::move(repaired->fixed);
          ++files_fixed;
        }
      }
    }
    const auto violations =
        stune::lint::lint_content(relative, contents, stune::lint::classify(relative));
    out.insert(out.end(), violations.begin(), violations.end());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string root_arg;
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : stune::lint::rule_ids()) std::cout << rule << "\n";
      return 0;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg == "--fix") {
      fix = true;
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      root_arg.clear();
      break;
    }
  }
  if (root_arg.empty() || (format != "text" && format != "json")) {
    std::cerr << "usage: stune_lint [--format=text|json] [--fix] <repo-root>\n"
                 "       stune_lint --list-rules\n";
    return 2;
  }
  const fs::path root = root_arg;
  if (!fs::exists(root / "src")) {
    std::cerr << "stune_lint: " << (root / "src").string() << " does not exist\n";
    return 2;
  }

  std::vector<stune::lint::Violation> violations;
  std::size_t files_scanned = 0;
  std::size_t files_fixed = 0;
  for (const auto* dir : {"src", "tests", "bench", "examples", "tools"}) {
    lint_tree(root, dir, fix, violations, files_scanned, files_fixed);
  }

  std::cout << (format == "json" ? stune::lint::format_json(violations, files_scanned)
                                 : stune::lint::format_text(violations, files_scanned));
  if (fix && format == "text") {
    std::cout << "stune_lint: rewrote " << files_fixed << " file"
              << (files_fixed == 1 ? "" : "s") << " (include-what-you-use)\n";
  }
  return violations.empty() ? 0 : 1;
}
