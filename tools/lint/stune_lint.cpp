// stune_lint: the project's source-tree lint pass, registered as a ctest.
//
// Enforces rules the compiler cannot:
//   [no-bare-assert]   library code under src/ must use STUNE_CHECK /
//                      STUNE_DCHECK / STUNE_INVARIANT (simcore/check.hpp),
//                      never bare assert() — assert vanishes under NDEBUG,
//                      and the simulator substrate must fail loudly in
//                      release builds too;
//   [no-unseeded-rng]  no rand()/srand()/std::random_device anywhere: all
//                      stochasticity flows through simcore::Rng so runs are
//                      deterministic in their seed (the determinism every
//                      tuner A/B comparison rests on);
//   [no-stdout]        no std::cout / std::cerr / puts in library code
//                      under src/ — libraries report through return values
//                      and metrics, not a global stream;
//   [pragma-once]      every header uses #pragma once.
//
// Comments and string/char literals are stripped before token scanning, so
// documentation may mention the banned constructs.
//
// Usage: stune_lint <repo-root>
// Exit status: 0 clean, 1 violations found (printed file:line: [rule] msg),
// 2 usage/IO error.
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

/// Replace comment bodies and string/char literal contents with spaces,
/// preserving newlines so line numbers survive. Handles //, /*...*/,
/// "...", '...', and R"delim(...)delim" raw strings.
std::string strip_comments_and_literals(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto blank = [&](std::size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  while (i < n) {
    const char c = in[i];
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && in[i + 1] == '/') {
          state = State::kLineComment;
          blank(i);
        } else if (c == '/' && i + 1 < n && in[i + 1] == '*') {
          state = State::kBlockComment;
          blank(i);
        } else if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(in[i - 1])) &&
                               in[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < n && in[j] != '(') raw_delim += in[j++];
          state = State::kRawString;
          i = j;  // keep the prefix; contents get blanked from here
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') state = State::kCode;
        else blank(i);
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && in[i + 1] == '/') {
          blank(i);
          blank(i + 1);
          ++i;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      case State::kRawString: {
        const std::string closer = ")" + raw_delim + "\"";
        if (in.compare(i, closer.size(), closer) == 0) {
          i += closer.size() - 1;
          state = State::kCode;
        } else {
          blank(i);
        }
        break;
      }
    }
    ++i;
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Find calls of `name` (identifier immediately before a '(' allowing
/// whitespace) that are not part of a longer identifier. `allow_scoped`
/// controls whether a preceding "::" still counts (std::rand does; there is
/// no std::assert).
std::vector<std::size_t> find_calls(const std::string& code, const std::string& name) {
  std::vector<std::size_t> lines;
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    const bool starts_ident = pos > 0 && ident_char(code[pos - 1]);
    std::size_t after = end;
    while (after < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after])) != 0 &&
           code[after] != '\n') {
      ++after;
    }
    const bool is_call = after < code.size() && code[after] == '(';
    if (!starts_ident && is_call && (end >= code.size() || !ident_char(code[end]))) {
      lines.push_back(1 + static_cast<std::size_t>(
                              std::count(code.begin(), code.begin() + static_cast<long>(pos), '\n')));
    }
    pos = end;
  }
  return lines;
}

std::vector<std::size_t> find_token(const std::string& code, const std::string& token) {
  std::vector<std::size_t> lines;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool starts_ident = pos > 0 && ident_char(code[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool ends_ident = end < code.size() && ident_char(code[end]);
    if (!starts_ident && !ends_ident) {
      lines.push_back(1 + static_cast<std::size_t>(
                              std::count(code.begin(), code.begin() + static_cast<long>(pos), '\n')));
    }
    pos = end;
  }
  return lines;
}

void lint_file(const fs::path& path, bool library_code, std::vector<Violation>& out) {
  std::ifstream f(path);
  if (!f) {
    out.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string raw = buf.str();
  const std::string code = strip_comments_and_literals(raw);
  const std::string file = path.string();

  if (path.extension() == ".hpp" && raw.find("#pragma once") == std::string::npos) {
    out.push_back({file, 1, "pragma-once", "header does not use #pragma once"});
  }

  for (const auto& banned : {"rand", "srand"}) {
    for (const std::size_t line : find_calls(code, banned)) {
      out.push_back({file, line, "no-unseeded-rng",
                     std::string(banned) + "() bypasses simcore::Rng; simulations must be "
                                           "deterministic in their seed"});
    }
  }
  for (const std::size_t line : find_token(code, "random_device")) {
    out.push_back({file, line, "no-unseeded-rng",
                   "std::random_device is unseedable; derive streams from simcore::Rng::fork"});
  }

  if (library_code) {
    for (const std::size_t line : find_calls(code, "assert")) {
      out.push_back({file, line, "no-bare-assert",
                     "use STUNE_CHECK/STUNE_DCHECK/STUNE_INVARIANT from simcore/check.hpp"});
    }
    for (const auto& stream : {"std::cout", "std::cerr"}) {
      std::size_t pos = 0;
      while ((pos = code.find(stream, pos)) != std::string::npos) {
        out.push_back({file,
                       1 + static_cast<std::size_t>(std::count(
                               code.begin(), code.begin() + static_cast<long>(pos), '\n')),
                       "no-stdout",
                       std::string(stream) + " in library code; report through metrics/returns"});
        pos += std::string(stream).size();
      }
    }
    for (const std::size_t line : find_calls(code, "puts")) {
      out.push_back({file, line, "no-stdout", "puts() in library code"});
    }
  }
}

bool source_file(const fs::path& p) {
  return p.extension() == ".cpp" || p.extension() == ".hpp";
}

void lint_tree(const fs::path& root, bool library_code, std::vector<Violation>& out,
               std::size_t& files_scanned) {
  if (!fs::exists(root)) return;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && source_file(entry.path())) {
      lint_file(entry.path(), library_code, out);
      ++files_scanned;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: stune_lint <repo-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::exists(root / "src")) {
    std::cerr << "stune_lint: " << (root / "src").string() << " does not exist\n";
    return 2;
  }

  std::vector<Violation> violations;
  std::size_t files_scanned = 0;
  lint_tree(root / "src", /*library_code=*/true, violations, files_scanned);
  for (const auto* dir : {"tests", "bench", "examples", "tools"}) {
    lint_tree(root / dir, /*library_code=*/false, violations, files_scanned);
  }

  for (const auto& v : violations) {
    std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
  }
  std::cout << "stune_lint: scanned " << files_scanned << " files, " << violations.size()
            << " violation" << (violations.size() == 1 ? "" : "s") << "\n";
  return violations.empty() ? 0 : 1;
}
