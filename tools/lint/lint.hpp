// stune_lint v2 — the project's multi-pass source analyzer, usable as a
// library (tests/lint_test.cpp drives each rule on golden fixtures) and as
// the stune_lint executable registered as a ctest.
//
// Passes (rule ids):
//   [pragma-once]            every header uses #pragma once;
//   [no-bare-assert]         library code uses STUNE_CHECK/STUNE_DCHECK/
//                            STUNE_INVARIANT, never assert();
//   [no-unseeded-rng]        no rand()/srand()/std::random_device anywhere —
//                            stochasticity flows through simcore::Rng;
//   [no-stdout]              no std::cout/std::cerr/puts in library code;
//   [include-what-you-use]   a file using a symbol from the curated
//                            symbol→header table must include that header
//                            directly, not lean on transitive includes;
//   [no-iostream-in-header]  headers never include <iostream> (it drags a
//                            static-init fiasco guard into every TU);
//   [no-wall-clock]          system_clock/steady_clock/time() are banned
//                            outside simcore/ and bench/ — simulation
//                            determinism rests on virtual time;
//   [lock-discipline]        no raw .lock()/.unlock() member calls in
//                            library code: critical sections are RAII
//                            (simcore::MutexLock), the textual complement
//                            to the Clang thread-safety analysis for
//                            non-Clang builds;
//   [no-swallowed-exception] a `catch (...)` in library code must rethrow
//                            or capture (std::current_exception) — a
//                            silently swallowed error turns crashes into
//                            wrong results.
//
// Suppression: append `// stune-lint: allow(<rule>)` (comma-separated list,
// or `allow(*)`) to a line to exempt that line; the `// stune-analyze:
// allow(<rule>)` spelling is equivalent and honored by both tools. Comments
// and string/char literals are stripped before token scanning, so
// documentation may mention banned constructs freely.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace stune::lint {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Which rule groups apply to a file, derived from its path.
struct FileClass {
  bool header = false;            // *.hpp: pragma-once, no-iostream-in-header
  bool library_code = false;      // src/**: no-bare-assert, no-stdout, lock-discipline
  bool wall_clock_exempt = false; // src/simcore/** and bench/**: own the clock
};

/// Classify by path relative to the repo root (e.g. "src/disc/engine.cpp").
FileClass classify(const std::string& relative_path);

/// Run every applicable pass over one file's contents. `display_path` is
/// used verbatim in violations (tests pass synthetic names).
std::vector<Violation> lint_content(const std::string& display_path, const std::string& raw,
                                    const FileClass& cls);

/// Replace comment bodies and string/char literal contents with spaces,
/// preserving newlines so line numbers survive. Exposed for tests.
std::string strip_comments_and_literals(const std::string& in);

/// Parse `// stune-lint: allow(rule-a, rule-b)` / `allow(*)` suppression
/// comments: line number -> allowed rule ids. Shared with stune_analyze
/// (tools/analyze), whose rules use the same escape hatch.
std::map<std::size_t, std::set<std::string>> allowed_rules(const std::string& raw);

/// Result of an include-what-you-use auto-fix (the `--fix` mode).
struct IncludeFix {
  std::string fixed;                        // full rewritten file contents
  std::vector<std::string> added_headers;   // bare names, sorted
};

/// Compute the IWYU fix for one file: every `#include <h>` the rule would
/// demand is inserted after the last existing include directive (after
/// `#pragma once` when the file has no includes, else at the top). Returns
/// nullopt when the file is already clean for the rule.
std::optional<IncludeFix> fix_include_what_you_use(const std::string& raw);

/// All rule ids, in reporting order.
const std::vector<std::string>& rule_ids();

/// Render violations as "file:line: [rule] message" lines plus a summary.
/// `tool` names the reporting binary in the summary line (stune_analyze
/// shares these formatters).
std::string format_text(const std::vector<Violation>& violations, std::size_t files_scanned,
                        const std::string& tool = "stune_lint");

/// Render as a machine-readable JSON document:
///   {"files_scanned": N, "violation_count": M, "violations": [
///     {"file": "...", "line": L, "rule": "...", "message": "..."}, ...]}
std::string format_json(const std::vector<Violation>& violations, std::size_t files_scanned);

}  // namespace stune::lint
