# Header self-containment check: every header under src/ must compile on
# its own, with nothing included before it. For each src/**/*.hpp we
# generate a one-line translation unit `#include "<header>"` and compile
# them all into an OBJECT library — a header that leans on a transitive
# include (or on being included after something else) fails the build
# right here instead of in whichever TU happens to reorder its includes.
#
# The generated TUs live under the build tree and are only rewritten when
# missing or stale, so incremental builds don't churn.
function(stune_add_self_containment_check)
  find_package(Threads REQUIRED)
  file(GLOB_RECURSE _stune_headers CONFIGURE_DEPENDS
       ${CMAKE_SOURCE_DIR}/src/*.hpp)

  set(_stune_tus "")
  foreach(_header IN LISTS _stune_headers)
    file(RELATIVE_PATH _rel ${CMAKE_SOURCE_DIR}/src ${_header})
    set(_tu ${CMAKE_BINARY_DIR}/self_containment/${_rel}.cpp)
    set(_body "#include \"${_rel}\"  // self-containment check\n")
    if(EXISTS ${_tu})
      file(READ ${_tu} _existing)
    else()
      set(_existing "")
    endif()
    if(NOT _existing STREQUAL _body)
      file(WRITE ${_tu} "${_body}")
    endif()
    list(APPEND _stune_tus ${_tu})
  endforeach()

  add_library(stune_self_containment OBJECT ${_stune_tus})
  target_include_directories(stune_self_containment PRIVATE ${CMAKE_SOURCE_DIR}/src)
  target_link_libraries(stune_self_containment PRIVATE Threads::Threads)
endfunction()
