// A command-line driver over the public API: run any workload on any
// cluster under any tuner, print the Spark-style event log or the tuned
// configuration. Handy for exploring the simulator without writing code.
//
//   stune_cli run   <workload> <GiB> [instance] [vms]          one execution
//   stune_cli tune  <workload> <GiB> <tuner> <budget>          DISC tuning
//   stune_cli serve <workload> <GiB> <runs>                    seamless service
//   stune_cli list                                             catalogs
//
// tune/serve accept --jobs N (N = 0 means hardware concurrency): trials of
// a batch evaluate on N threads. Results are identical for every N.
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "disc/eventlog.hpp"
#include "service/tuning_service.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/eval_cache.hpp"
#include "workload/execute.hpp"

namespace {

using namespace stune;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  stune_cli run   <workload> <GiB> [instance] [vms]\n"
               "  stune_cli tune  <workload> <GiB> <tuner> <budget> [--jobs N]\n"
               "  stune_cli serve <workload> <GiB> <runs> [--jobs N]\n"
               "  stune_cli list\n"
               "options:\n"
               "  --jobs N   evaluate tuning trials on N threads (0 = all cores;\n"
               "             default 1; identical results for every N)\n");
  return 2;
}

simcore::Bytes parse_gib(const char* arg) {
  const double gib = std::strtod(arg, nullptr);
  if (gib <= 0.0) throw std::invalid_argument("input size must be positive GiB");
  return static_cast<simcore::Bytes>(gib * 1024.0 * 1024.0 * 1024.0);
}

/// Extract `--jobs N` anywhere after the positional arguments; removes the
/// pair from argv so positional indexing stays simple. Defaults to 1.
std::size_t parse_jobs(int& argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    if (i + 1 >= argc) throw std::invalid_argument("--jobs requires a value");
    const long n = std::strtol(argv[i + 1], nullptr, 10);
    if (n < 0) throw std::invalid_argument("--jobs must be >= 0");
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return static_cast<std::size_t>(n);
  }
  return 1;
}

int cmd_list() {
  std::printf("workloads:");
  for (const auto& w : workload::workload_names()) std::printf(" %s", w.c_str());
  std::printf("\ntuners:   ");
  for (const auto& t : tuning::tuner_names()) std::printf(" %s", t.c_str());
  std::printf("\ninstances:");
  for (const auto& i : cluster::instance_catalog()) std::printf(" %s", i.name.c_str());
  std::printf("\n");
  return 0;
}

int cmd_run(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto w = workload::make_workload(argv[2]);
  const auto input = parse_gib(argv[3]);
  const cluster::ClusterSpec spec{argc > 4 ? argv[4] : "h1.4xlarge",
                                  argc > 5 ? std::atoi(argv[5]) : 4};
  const auto cl = cluster::Cluster::from_spec(spec);
  const disc::SparkSimulator sim(cl);
  const auto report =
      workload::execute(*w, input, sim, service::provider_auto_config(cl));
  std::printf("%s", disc::to_event_log(report).c_str());
  std::fprintf(stderr, "# %s on %s: %s\n", w->name().c_str(), spec.to_string().c_str(),
               report.summary().c_str());
  return report.success ? 0 : 1;
}

int cmd_tune(int argc, char** argv) {
  const std::size_t jobs = parse_jobs(argc, argv);
  if (argc < 6) return usage();
  const auto w = workload::make_workload(argv[2]);
  const auto input = parse_gib(argv[3]);
  const auto tuner = tuning::make_tuner(argv[4]);
  const auto cl = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  const disc::SparkSimulator sim(cl);

  workload::EvalCache cache;
  tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
    const auto r = workload::execute(*w, input, sim, c, cache);
    return {r.runtime, !r.success};
  };
  tuning::TuneOptions opts;
  opts.budget = static_cast<std::size_t>(std::atoi(argv[5]));
  tuning::TrialExecutor executor(tuning::ExecutorOptions{.jobs = jobs});
  const auto result = executor.run(*tuner, config::spark_space(), obj, opts);

  const auto def = workload::execute(*w, input, sim, config::spark_space()->default_config());
  std::printf("tuner=%s budget=%zu jobs=%zu best=%.1fs default=%.1fs%s speedup=%.1fx\n",
              tuner->name().c_str(), opts.budget, executor.jobs(), result.best_runtime,
              def.runtime, def.success ? "" : "(crash)", def.runtime / result.best_runtime);
  std::printf("best configuration:\n%s", result.best.describe().c_str());
  return 0;
}

int cmd_serve(int argc, char** argv) {
  const std::size_t jobs = parse_jobs(argc, argv);
  if (argc < 5) return usage();
  service::ServiceOptions sopts;
  sopts.jobs = jobs;
  service::TuningService svc(sopts);
  const int h = svc.submit("cli", workload::make_workload(argv[2]), parse_gib(argv[3]));
  const int runs = std::atoi(argv[4]);
  for (int i = 0; i < runs; ++i) {
    std::printf("run %2d: %s\n", i + 1, svc.run_once(h).summary().c_str());
  }
  const auto s = svc.status(h);
  const auto cs = svc.eval_cache_stats();
  std::printf("cluster=%s tunings=%zu tuning_cost=$%.2f savings=$%.2f slo=%.0f%%\n",
              s.cluster.to_string().c_str(), s.tunings, s.tuning_cost, s.cumulative_savings,
              s.slo_attainment * 100.0);
  std::printf("eval cache: %llu hits / %llu misses (%.0f%% hit rate)\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses), cs.hit_rate() * 100.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list();
    if (cmd == "run") return cmd_run(argc, argv);
    if (cmd == "tune") return cmd_tune(argc, argv);
    if (cmd == "serve") return cmd_serve(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
