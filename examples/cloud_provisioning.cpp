// Cloud configuration selection in isolation (paper §II-A, Fig. 1 stage 1).
//
// "Who can tell me if scaling vertically, horizontally or both gives me the
// best benefit vs cost ratio?" (§IV-D). This example answers that question
// for one workload: it sweeps a family vertically and horizontally, then
// lets the CherryPick-style CloudTuner pick under different objectives.
//
//   $ ./examples/cloud_provisioning
#include <cstdio>

#include "service/cloud_tuner.hpp"
#include "workload/execute.hpp"

namespace {

using namespace stune;

double run_on(const workload::Workload& w, const cluster::ClusterSpec& spec,
              simcore::Bytes input, double* cost) {
  const auto cl = cluster::Cluster::from_spec(spec);
  const disc::SparkSimulator sim(cl);
  const auto r = workload::execute(w, input, sim, service::provider_auto_config(cl));
  *cost = r.cost;
  return r.success ? r.runtime : -1.0;
}

}  // namespace

int main() {
  const auto w = workload::make_workload("bayes");
  const simcore::Bytes input = 16ULL << 30;

  std::printf("workload: %s over %s, provider auto-config everywhere\n\n", w->name().c_str(),
              simcore::format_bytes(input).c_str());

  std::printf("scaling vertically (4 VMs, bigger boxes):\n");
  for (const char* type : {"m5.large", "m5.xlarge", "m5.2xlarge", "m5.4xlarge"}) {
    double cost = 0.0;
    const double rt = run_on(*w, {type, 4}, input, &cost);
    std::printf("  4x %-12s -> %7.1fs  $%.3f\n", type, rt, cost);
  }

  std::printf("\nscaling horizontally (m5.xlarge, more boxes):\n");
  for (const int vms : {2, 4, 8, 12}) {
    double cost = 0.0;
    const double rt = run_on(*w, {"m5.xlarge", vms}, input, &cost);
    std::printf("  %2dx m5.xlarge   -> %7.1fs  $%.3f\n", vms, rt, cost);
  }

  std::printf("\ncrossing families (4 VMs of each family's 2xlarge-ish size):\n");
  for (const char* type : {"m5.2xlarge", "c5.2xlarge", "r5.2xlarge", "h1.2xlarge", "i3.2xlarge"}) {
    double cost = 0.0;
    const double rt = run_on(*w, {type, 4}, input, &cost);
    std::printf("  4x %-12s -> %7.1fs  $%.3f\n", type, rt, cost);
  }

  std::printf("\nCherryPick-style search (10 trials) under each objective:\n");
  for (const auto objective : {service::CloudObjective::kRuntime, service::CloudObjective::kCost,
                               service::CloudObjective::kBalanced}) {
    service::CloudTunerOptions opts;
    opts.budget = 10;
    opts.objective = objective;
    const auto choice = service::CloudTuner(opts).choose(*w, input);
    std::printf("  objective=%-8s -> %-16s %7.1fs  $%.3f  (%zu trials, $%.2f spent searching)\n",
                service::to_string(objective).c_str(), choice.spec.to_string().c_str(),
                choice.runtime, choice.cost, choice.trials, choice.trial_cost);
  }

  std::printf("\nreading: vertical vs horizontal is not a fixed answer — it depends on the\n"
              "workload's resource profile and the objective, which is exactly why the paper\n"
              "wants this decision automated away from the end-user.\n");
  return 0;
}
