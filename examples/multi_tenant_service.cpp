// The cloud provider's vantage point (paper §IV-C / §V-B).
//
// Many tenants run workloads on the same provider. The knowledge base
// accumulates every execution across tenants; when a new tenant submits a
// workload *similar* to something the provider has already tuned for
// someone else, its tuning warm-starts from that knowledge — the
// cross-tenant amortization the paper argues only the provider can offer.
//
//   $ ./examples/multi_tenant_service
#include <cstdio>

#include "service/tuning_service.hpp"
#include "transfer/characterization.hpp"

int main() {
  using namespace stune;

  service::ServiceOptions options;
  options.tuning_budget = 20;
  options.tune_cloud = false;  // one shared cluster keeps the story simple
  options.default_cluster = {"h1.4xlarge", 6};
  service::TuningService provider(options);

  struct TenantJob {
    const char* tenant;
    const char* workload;
    simcore::Bytes input;
  };
  // Wave 1: three tenants with distinct workloads pay full tuning price.
  const TenantJob wave1[] = {
      {"ad-tech-co", "pagerank", 8ULL << 30},
      {"retail-co", "join", 8ULL << 30},
      {"biotech-lab", "kmeans", 8ULL << 30},
  };
  std::printf("wave 1: three tenants, cold knowledge base\n");
  for (const auto& j : wave1) {
    const int h = provider.submit(j.tenant, workload::make_workload(j.workload), j.input);
    for (int i = 0; i < 4; ++i) provider.run_once(h);
    const auto s = provider.status(h);
    std::printf("  %-12s %-9s best %.1fs   tuning runs %zu   spend $%.2f\n", j.tenant,
                j.workload, s.best_runtime, provider.ledger(h).tuning_runs(), s.tuning_cost);
  }

  std::printf("\nknowledge base now holds %zu execution records from %zu tenants\n",
              provider.knowledge_base().size(), provider.knowledge_base().tenant_count());

  // Wave 2: new tenants with *similar* workloads (same shapes, new data).
  const TenantJob wave2[] = {
      {"news-startup", "pagerank", 16ULL << 30},   // similar to ad-tech-co's
      {"logistics-co", "join", 16ULL << 30},       // similar to retail-co's
  };
  std::printf("\nwave 2: newcomers with similar workloads — tuning warm-starts from the KB\n");
  for (const auto& j : wave2) {
    const int h = provider.submit(j.tenant, workload::make_workload(j.workload), j.input);
    const auto first = provider.run_once(h);
    const auto s = provider.status(h);
    std::printf("  %-12s %-9s first production run already %.1fs (best %.1fs), "
                "tuning spend $%.2f\n",
                j.tenant, j.workload, first.runtime, s.best_runtime, s.tuning_cost);
  }

  std::printf("\nthe newcomers never paid the cold-start exploration their predecessors did —\n"
              "the provider's centralized history is the asset no single tenant could build.\n");
  return 0;
}
