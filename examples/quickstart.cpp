// Quickstart: the seamless-tuning experience from the tenant's side.
//
// The paper's vision (§IV): a user submits an analytics workload with a
// high-level objective and *never* touches a configuration parameter — the
// provider picks the cluster, tunes the framework, watches for drift, and
// re-tunes on its own.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "service/tuning_service.hpp"

int main() {
  using namespace stune;

  // The provider stands up the tuning service (this is cloud-side code;
  // tenants only see submit()/run_once()).
  service::ServiceOptions options;
  options.tuner = "bayesopt";      // CherryPick-style DISC tuning
  options.tuning_budget = 25;      // exploration runs the provider invests
  options.cloud.budget = 10;       // cluster-search trials (Fig. 1 stage 1)
  options.slo.within_fraction = 0.25;
  service::TuningService provider(options);

  // The tenant: "here is my recurring PageRank job, about 8 GiB of edges".
  const int job = provider.submit("quickstart-tenant", workload::make_workload("pagerank"),
                                  8ULL << 30);

  std::printf("running the recurring job 8 times — tuning happens invisibly on first run\n\n");
  for (int run = 1; run <= 8; ++run) {
    const auto report = provider.run_once(job);
    std::printf("run %d: %s\n", run, report.summary().c_str());
  }

  const auto status = provider.status(job);
  std::printf("\nwhat the provider did behind the scenes:\n");
  std::printf("  picked cluster       : %s\n", status.cluster.to_string().c_str());
  std::printf("  tuning rounds        : %zu\n", status.tunings);
  std::printf("  tuning spend         : $%.2f\n", status.tuning_cost);
  std::printf("  savings vs untuned   : $%.2f%s\n", status.cumulative_savings,
              status.break_even_run ? " (already amortized)" : "");
  std::printf("  SLO attainment       : %.0f%% of runs within %.0f%% of best-known\n",
              status.slo_attainment * 100.0, options.slo.within_fraction * 100.0);

  std::printf("\nchosen configuration (the tenant never sees this):\n%s",
              status.config.describe().c_str());
  return 0;
}
