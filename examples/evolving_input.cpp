// Resilience to input growth (paper §IV-B / Table I scenario).
//
// A recurring PageRank job's input grows DS1 -> DS2 -> DS3 over its
// lifetime. Without adaptation, the configuration tuned at DS1 degrades
// (or crashes) at DS3; the seamless service detects the drift from the
// runtime stream alone and re-tunes, restoring near-optimal runtimes.
//
//   $ ./examples/evolving_input
#include <cstdio>

#include "service/tuning_service.hpp"

int main() {
  using namespace stune;

  service::ServiceOptions options;
  options.tuning_budget = 30;
  options.retuning_budget = 20;
  options.detector = "cusum";          // §V-D: adaptive, not a fixed threshold
  options.reprovision_on_drift = true; // elasticity: rethink the cluster too
  service::TuningService provider(options);

  const int job =
      provider.submit("research-lab", workload::make_workload("pagerank"), 4ULL << 30);

  struct Phase {
    const char* label;
    simcore::Bytes input;
    int runs;
  };
  const Phase phases[] = {
      {"DS1 (4 GiB)", 4ULL << 30, 8},
      {"DS2 (16 GiB) — data grew 4x", 16ULL << 30, 8},
      {"DS3 (64 GiB) — data grew 16x", 64ULL << 30, 8},
  };

  for (const auto& phase : phases) {
    std::printf("\n--- %s ---\n", phase.label);
    for (int i = 0; i < phase.runs; ++i) {
      const auto before = provider.status(job).tunings;
      const auto report = provider.run_once(job, phase.input);
      const auto after = provider.status(job);
      std::printf("run: %-70s", report.summary().c_str());
      if (after.tunings > before) {
        std::printf(before == 0 ? "  <- initial tuning (cluster %s)"
                                : "  <- drift detected, re-tuned (cluster now %s)",
                    after.cluster.to_string().c_str());
      }
      std::printf("\n");
    }
  }

  const auto status = provider.status(job);
  std::printf("\nlifetime summary: %zu production runs, %zu tuning rounds, "
              "tuning spend $%.2f, savings vs untuned $%.2f\n",
              status.production_runs, status.tunings, status.tuning_cost,
              status.cumulative_savings);
  std::printf("the tenant changed nothing — the input grew and the service kept up.\n");
  return 0;
}
