// Engine invariants swept across the entire workload suite (parameterized
// property tests), including fault injection.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "disc/eventlog.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::disc {
namespace {

namespace k = config::spark;
using simcore::gib;

const cluster::Cluster& testbed() {
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

config::Configuration good_config() {
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorInstances, 16);
  c.set(k::kExecutorCores, 4);
  c.set(k::kExecutorMemoryGiB, 13.0);
  c.set(k::kDefaultParallelism, 256);
  c.set(k::kSqlShufflePartitions, 256);
  c.set(k::kSerializer, 1.0);
  c.set(k::kDriverMemoryGiB, 8.0);
  return c;
}

class EngineProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineProperties, DeterministicAcrossRepeatedRuns) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto a = workload::execute(*w, gib(8), sim, good_config());
  const auto b = workload::execute(*w, gib(8), sim, good_config());
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.total_spilled, b.total_spilled);
}

TEST_P(EngineProperties, AggregatesEqualStageSums) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  ASSERT_TRUE(r.success) << r.failure_reason;
  Seconds cpu = 0.0, gc = 0.0, disk = 0.0, net = 0.0;
  simcore::Bytes sread = 0, swrite = 0, spilled = 0;
  for (const auto& s : r.stages) {
    cpu += s.cpu_seconds;
    gc += s.gc_seconds;
    disk += s.disk_seconds;
    net += s.net_seconds;
    sread += s.shuffle_read_bytes;
    swrite += s.shuffle_write_bytes;
    spilled += s.spilled_bytes;
  }
  EXPECT_DOUBLE_EQ(cpu, r.total_cpu);
  EXPECT_DOUBLE_EQ(gc, r.total_gc);
  EXPECT_DOUBLE_EQ(disk, r.total_disk);
  EXPECT_DOUBLE_EQ(net, r.total_net);
  EXPECT_EQ(sread, r.total_shuffle_read);
  EXPECT_EQ(swrite, r.total_shuffle_write);
  EXPECT_EQ(spilled, r.total_spilled);
}

TEST_P(EngineProperties, CostEqualsClusterPriceTimesRuntime) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  EXPECT_NEAR(r.cost, testbed().cost_of(r.runtime), 1e-9);
}

TEST_P(EngineProperties, RuntimeIsMonotoneInInputSize) {
  // Averaged over seeds: a single straggler draw can dominate the makespan
  // of a small job (one wave), so the monotonicity margin is checked on
  // expected runtimes.
  const auto w = workload::make_workload(GetParam());
  auto mean_runtime = [&](simcore::Bytes size) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EngineOptions opts;
      opts.seed = seed;
      const SparkSimulator sim(testbed(), opts);
      const auto r = workload::execute(*w, size, sim, good_config());
      EXPECT_TRUE(r.success) << r.failure_reason;
      total += r.runtime;
    }
    return total / 3.0;
  };
  EXPECT_GT(mean_runtime(gib(32)), mean_runtime(gib(8)) * 1.3);
}

TEST_P(EngineProperties, StageStartsNeverPrecedeParents) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  const auto plan = w->plan(gib(8));
  ASSERT_EQ(plan.stages.size(), r.stages.size());
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    for (const int parent : plan.stages[i].parent_stages) {
      const auto& p = r.stages[static_cast<std::size_t>(parent)];
      EXPECT_GE(r.stages[i].start + 1e-9, p.start + p.duration) << r.stages[i].label;
    }
  }
}

TEST_P(EngineProperties, ExecutorFailuresSlowButDoNotCrashTheJob) {
  const auto w = workload::make_workload(GetParam());
  EngineOptions stormy;
  stormy.cost.executor_failure_rate = 0.05;
  const SparkSimulator calm_sim(testbed());
  const SparkSimulator stormy_sim(testbed(), stormy);
  const auto calm = workload::execute(*w, gib(8), calm_sim, good_config());
  const auto rough = workload::execute(*w, gib(8), stormy_sim, good_config());
  ASSERT_TRUE(calm.success);
  ASSERT_TRUE(rough.success);  // lineage makes failures transparent...
  EXPECT_GE(rough.runtime, calm.runtime);
  // ...but not free: whenever an executor actually died, time was lost.
  int rerun_tasks = 0;
  for (const auto& s : rough.stages) rerun_tasks += s.failed_tasks;
  if (rerun_tasks > 0) {
    EXPECT_GT(rough.runtime, calm.runtime);
  }
}

TEST_P(EngineProperties, EventLogRoundTripsEveryWorkloadShape) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  const auto parsed = from_event_log(to_event_log(r));
  EXPECT_EQ(parsed.stages.size(), r.stages.size());
  EXPECT_NEAR(parsed.runtime, r.runtime, 1e-6);
  EXPECT_EQ(parsed.success, r.success);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EngineProperties,
                         ::testing::ValuesIn(workload::workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(ExecutorFailures, HitCachedWorkloadsHarderThanStatelessOnes) {
  // Dying executors take cached partitions with them: the iterative,
  // cache-dependent workload should degrade proportionally more than the
  // stateless scan.
  EngineOptions stormy;
  stormy.cost.executor_failure_rate = 0.08;
  const SparkSimulator calm(testbed());
  const SparkSimulator rough(testbed(), stormy);
  auto slowdown = [&](const std::string& name) {
    const auto w = workload::make_workload(name);
    const auto a = workload::execute(*w, gib(8), calm, good_config());
    const auto b = workload::execute(*w, gib(8), rough, good_config());
    return b.runtime / a.runtime;
  };
  EXPECT_GT(slowdown("pagerank"), slowdown("scan"));
}

}  // namespace
}  // namespace stune::disc
