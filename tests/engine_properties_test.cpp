// Engine invariants swept across the entire workload suite (parameterized
// property tests), including fault injection — plus the golden-parity suite
// for the event-driven engine: run() must be bitwise identical to
// run_wave_rescan() whatever the TrialContext has cached.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "disc/eventlog.hpp"
#include "disc/trial_context.hpp"
#include "service/tuning_service.hpp"
#include "simcore/fault.hpp"
#include "simcore/rng.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::disc {
namespace {

namespace k = config::spark;
using simcore::gib;

const cluster::Cluster& testbed() {
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

config::Configuration good_config() {
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorInstances, 16);
  c.set(k::kExecutorCores, 4);
  c.set(k::kExecutorMemoryGiB, 13.0);
  c.set(k::kDefaultParallelism, 256);
  c.set(k::kSqlShufflePartitions, 256);
  c.set(k::kSerializer, 1.0);
  c.set(k::kDriverMemoryGiB, 8.0);
  return c;
}

class EngineProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineProperties, DeterministicAcrossRepeatedRuns) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto a = workload::execute(*w, gib(8), sim, good_config());
  const auto b = workload::execute(*w, gib(8), sim, good_config());
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.total_spilled, b.total_spilled);
}

TEST_P(EngineProperties, AggregatesEqualStageSums) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  ASSERT_TRUE(r.success) << r.failure_reason;
  Seconds cpu = 0.0, gc = 0.0, disk = 0.0, net = 0.0;
  simcore::Bytes sread = 0, swrite = 0, spilled = 0;
  for (const auto& s : r.stages) {
    cpu += s.cpu_seconds;
    gc += s.gc_seconds;
    disk += s.disk_seconds;
    net += s.net_seconds;
    sread += s.shuffle_read_bytes;
    swrite += s.shuffle_write_bytes;
    spilled += s.spilled_bytes;
  }
  EXPECT_DOUBLE_EQ(cpu, r.total_cpu);
  EXPECT_DOUBLE_EQ(gc, r.total_gc);
  EXPECT_DOUBLE_EQ(disk, r.total_disk);
  EXPECT_DOUBLE_EQ(net, r.total_net);
  EXPECT_EQ(sread, r.total_shuffle_read);
  EXPECT_EQ(swrite, r.total_shuffle_write);
  EXPECT_EQ(spilled, r.total_spilled);
}

TEST_P(EngineProperties, CostEqualsClusterPriceTimesRuntime) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  EXPECT_NEAR(r.cost, testbed().cost_of(r.runtime), 1e-9);
}

TEST_P(EngineProperties, RuntimeIsMonotoneInInputSize) {
  // Averaged over seeds: a single straggler draw can dominate the makespan
  // of a small job (one wave), so the monotonicity margin is checked on
  // expected runtimes.
  const auto w = workload::make_workload(GetParam());
  auto mean_runtime = [&](simcore::Bytes size) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      EngineOptions opts;
      opts.seed = seed;
      const SparkSimulator sim(testbed(), opts);
      const auto r = workload::execute(*w, size, sim, good_config());
      EXPECT_TRUE(r.success) << r.failure_reason;
      total += r.runtime;
    }
    return total / 3.0;
  };
  EXPECT_GT(mean_runtime(gib(32)), mean_runtime(gib(8)) * 1.3);
}

TEST_P(EngineProperties, StageStartsNeverPrecedeParents) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  const auto plan = w->plan(gib(8));
  ASSERT_EQ(plan.stages.size(), r.stages.size());
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    for (const int parent : plan.stages[i].parent_stages) {
      const auto& p = r.stages[static_cast<std::size_t>(parent)];
      EXPECT_GE(r.stages[i].start + 1e-9, p.start + p.duration) << r.stages[i].label;
    }
  }
}

TEST_P(EngineProperties, ExecutorFailuresSlowButDoNotCrashTheJob) {
  const auto w = workload::make_workload(GetParam());
  EngineOptions stormy;
  stormy.cost.executor_failure_rate = 0.05;
  const SparkSimulator calm_sim(testbed());
  const SparkSimulator stormy_sim(testbed(), stormy);
  const auto calm = workload::execute(*w, gib(8), calm_sim, good_config());
  const auto rough = workload::execute(*w, gib(8), stormy_sim, good_config());
  ASSERT_TRUE(calm.success);
  ASSERT_TRUE(rough.success);  // lineage makes failures transparent...
  EXPECT_GE(rough.runtime, calm.runtime);
  // ...but not free: whenever an executor actually died, time was lost.
  int rerun_tasks = 0;
  for (const auto& s : rough.stages) rerun_tasks += s.failed_tasks;
  if (rerun_tasks > 0) {
    EXPECT_GT(rough.runtime, calm.runtime);
  }
}

TEST_P(EngineProperties, EventLogRoundTripsEveryWorkloadShape) {
  const auto w = workload::make_workload(GetParam());
  const SparkSimulator sim(testbed());
  const auto r = workload::execute(*w, gib(8), sim, good_config());
  const auto parsed = from_event_log(to_event_log(r));
  EXPECT_EQ(parsed.stages.size(), r.stages.size());
  EXPECT_NEAR(parsed.runtime, r.runtime, 1e-6);
  EXPECT_EQ(parsed.success, r.success);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EngineProperties,
                         ::testing::ValuesIn(workload::workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(ExecutorFailures, HitCachedWorkloadsHarderThanStatelessOnes) {
  // Dying executors take cached partitions with them: the iterative,
  // cache-dependent workload should degrade proportionally more than the
  // stateless scan.
  EngineOptions stormy;
  stormy.cost.executor_failure_rate = 0.08;
  const SparkSimulator calm(testbed());
  const SparkSimulator rough(testbed(), stormy);
  auto slowdown = [&](const std::string& name) {
    const auto w = workload::make_workload(name);
    const auto a = workload::execute(*w, gib(8), calm, good_config());
    const auto b = workload::execute(*w, gib(8), rough, good_config());
    return b.runtime / a.runtime;
  };
  EXPECT_GT(slowdown("pagerank"), slowdown("scan"));
}

// ---------------------------------------------------------------------------
// Golden parity: the event-driven run() against the wave-rescan reference.
// The contract is bitwise equality — same doubles, not close doubles — for
// any (seed, chaos level, cluster size, configuration) and any TrialContext
// cache state, including a context shared across all of them in sequence.
// ---------------------------------------------------------------------------

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

::testing::AssertionResult reports_identical(const ExecutionReport& a,
                                             const ExecutionReport& b) {
  if (a.success != b.success || a.failure_reason != b.failure_reason ||
      a.infra_fault != b.infra_fault) {
    return ::testing::AssertionFailure()
           << "outcome diverged: [" << a.failure_reason << "] vs [" << b.failure_reason << "]";
  }
  if (!bits_equal(a.runtime, b.runtime) || !bits_equal(a.cost, b.cost) ||
      !bits_equal(a.cache_hit_fraction, b.cache_hit_fraction)) {
    return ::testing::AssertionFailure()
           << "runtime/cost bits diverged: " << a.runtime << " vs " << b.runtime;
  }
  if (a.executors != b.executors || a.total_slots != b.total_slots ||
      a.execution_memory_per_task != b.execution_memory_per_task ||
      a.storage_memory_total != b.storage_memory_total || a.stages.size() != b.stages.size()) {
    return ::testing::AssertionFailure() << "deployment or stage count diverged";
  }
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const auto& x = a.stages[i];
    const auto& y = b.stages[i];
    const bool same =
        x.stage_id == y.stage_id && x.label == y.label && x.tasks == y.tasks &&
        x.waves == y.waves && bits_equal(x.start, y.start) &&
        bits_equal(x.duration, y.duration) && bits_equal(x.cpu_seconds, y.cpu_seconds) &&
        bits_equal(x.gc_seconds, y.gc_seconds) && bits_equal(x.disk_seconds, y.disk_seconds) &&
        bits_equal(x.net_seconds, y.net_seconds) &&
        bits_equal(x.spill_seconds, y.spill_seconds) &&
        bits_equal(x.overhead_seconds, y.overhead_seconds) &&
        bits_equal(x.recovery_seconds, y.recovery_seconds) &&
        bits_equal(x.cache_hit_fraction, y.cache_hit_fraction) &&
        x.input_bytes == y.input_bytes && x.shuffle_read_bytes == y.shuffle_read_bytes &&
        x.shuffle_write_bytes == y.shuffle_write_bytes && x.spilled_bytes == y.spilled_bytes &&
        x.failed_tasks == y.failed_tasks && x.lost_executors == y.lost_executors &&
        x.lost_vms == y.lost_vms && x.speculative_tasks == y.speculative_tasks;
    if (!same) {
      return ::testing::AssertionFailure() << "stage " << x.stage_id << " (" << x.label
                                           << ") diverged bitwise";
    }
  }
  return ::testing::AssertionSuccess();
}

class GoldenParity : public ::testing::TestWithParam<std::string> {};

TEST_P(GoldenParity, EventPathMatchesWaveRescanAcrossSeedsAndChaos) {
  // 50 seeds x {calm, light chaos, heavy chaos}, all through ONE shared
  // context: every run revalidates the context's basis hashes against a
  // different master stream, so stale caches would show up immediately.
  const auto w = workload::make_workload(GetParam());
  const config::SparkConf conf(good_config());
  const auto plan = w->plan(gib(8), &conf);
  TrialContext ctx;
  for (const double level : {0.0, 0.05, 0.3}) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      EngineOptions opts;
      opts.seed = seed;
      if (level > 0.0) {
        opts.faults = simcore::FaultPlan(simcore::FaultProfile::chaos(level), seed * 977);
      }
      const SparkSimulator sim(testbed(), opts);
      const auto event = sim.run(plan, conf, ctx);
      const auto golden = sim.run_wave_rescan(plan, conf);
      ASSERT_TRUE(reports_identical(event, golden))
          << GetParam() << " seed=" << seed << " chaos=" << level;
    }
  }
}

TEST_P(GoldenParity, EventPathMatchesWaveRescanAcrossClusterSizes) {
  const auto w = workload::make_workload(GetParam());
  const config::SparkConf conf(good_config());
  const auto plan = w->plan(gib(8), &conf);
  TrialContext ctx;
  for (const int vms : {1, 2, 4, 16, 64}) {
    const cluster::Cluster c = cluster::Cluster::from_spec({"m5.2xlarge", vms});
    const SparkSimulator sim(c);
    ASSERT_TRUE(reports_identical(sim.run(plan, conf, ctx), sim.run_wave_rescan(plan, conf)))
        << GetParam() << " vms=" << vms;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenParity,
                         ::testing::ValuesIn(workload::workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(GoldenParityConfigs, SweepingConfigurationsThroughOneContextStaysBitwise) {
  // The stage-outcome key must fold every scalar the stage body reads; a
  // missing component would alias two configurations and replay the wrong
  // outcome. Hammer it: 120 random configurations (plus the default) for
  // two plan shapes through one shared context, each checked against the
  // live reference path.
  const SparkSimulator sim(testbed());
  TrialContext ctx;
  simcore::Rng rng(7);
  const auto space = config::spark_space();
  for (const char* name : {"join", "pagerank"}) {
    const auto w = workload::make_workload(name);
    for (int i = 0; i < 120; ++i) {
      const auto c = i == 0 ? space->default_config() : space->sample(rng);
      const config::SparkConf conf(c);
      const auto plan = w->plan(gib(8), &conf);
      ASSERT_TRUE(reports_identical(sim.run(plan, conf, ctx), sim.run_wave_rescan(plan, conf)))
          << name << " config #" << i;
    }
  }
}

TEST(GoldenParityContext, InterleavingWorkloadsNeverContaminatesAContext) {
  // Arena-reset + basis isolation: alternating plans, seeds and input sizes
  // through one context must equal fresh-context runs of the same sequence.
  const SparkSimulator sim(testbed());
  const config::SparkConf conf(good_config());
  TrialContext shared;
  const std::vector<std::string> names = {"scan", "join", "scan", "pagerank", "join", "scan"};
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto w = workload::make_workload(names[i]);
    const auto plan = w->plan(gib(i % 2 == 0 ? 4 : 8), &conf);
    const auto warm = sim.run(plan, conf, shared);
    TrialContext fresh;
    ASSERT_TRUE(reports_identical(warm, sim.run(plan, conf, fresh))) << names[i] << " #" << i;
  }
}

TEST(GoldenParityContext, ClearedContextReproducesWarmReports) {
  const SparkSimulator sim(testbed());
  const config::SparkConf conf(good_config());
  const auto w = workload::make_workload("join");
  const auto plan = w->plan(gib(8), &conf);
  TrialContext ctx;
  const auto cold = sim.run(plan, conf, ctx);
  const auto warm = sim.run(plan, conf, ctx);
  EXPECT_GT(ctx.outcome_hits() + ctx.draw_hits(), 0u);  // the warm run actually replayed
  ctx.clear();
  const auto reset = sim.run(plan, conf, ctx);
  ASSERT_TRUE(reports_identical(cold, warm));
  ASSERT_TRUE(reports_identical(cold, reset));
}

TEST(GoldenParityContext, ScratchContextOverloadMatchesTheGoldenPath) {
  // run(plan, conf) rides a thread_local scratch context; it must be just
  // as bitwise-stable as an explicitly managed one.
  const SparkSimulator sim(testbed());
  const config::SparkConf conf(good_config());
  for (const auto& name : workload::workload_names()) {
    const auto w = workload::make_workload(name);
    const auto plan = w->plan(gib(8), &conf);
    ASSERT_TRUE(reports_identical(sim.run(plan, conf), sim.run_wave_rescan(plan, conf))) << name;
  }
}

TEST(TrialContextPoolTest, LeasesAreExclusiveAndRecycled) {
  TrialContextPool pool(2);
  EXPECT_EQ(pool.leased(), 0u);
  {
    auto a = pool.acquire();
    auto b = pool.acquire();
    EXPECT_EQ(pool.leased(), 2u);
    EXPECT_NE(&*a, &*b);
  }
  EXPECT_EQ(pool.leased(), 0u);
}

TEST(TrialContextPoolTest, AcquireBlocksUntilAContextIsReleased) {
  TrialContextPool pool(1);
  auto held = pool.acquire();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto lease = pool.acquire();
    got.store(true);
  });
  // The waiter must be parked on the empty pool, not acquiring a phantom
  // context; give it a moment to reach the wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  { auto drop = std::move(held); }  // release
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(TrialContextPoolTest, ConcurrentWorkersStayBitwiseCorrect) {
  // 8 threads x 25 trials through a 4-context pool, every result checked
  // against a reference report: hammers lease recycling and per-context
  // cache reuse under real contention.
  const auto w = workload::make_workload("join");
  const config::SparkConf conf(good_config());
  const auto plan = w->plan(gib(8), &conf);
  const SparkSimulator sim(testbed());
  const auto reference = sim.run_wave_rescan(plan, conf);

  TrialContextPool pool(4);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(8);
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto lease = pool.acquire();
        const auto r = sim.run(plan, conf, *lease);
        if (!reports_identical(r, reference)) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.leased(), 0u);
}

TEST(GoldenParityService, JobsCountNeverChangesServiceReports) {
  // The TrialContextPool hands each executor worker its own context; jobs=8
  // must reproduce jobs=1 bitwise through the whole tuning service.
  auto run_service = [](std::size_t jobs) {
    service::ServiceOptions so;
    so.jobs = jobs;
    so.tune_cloud = false;
    so.tuning_budget = 10;
    so.seed = 11;
    service::TuningService svc(so);
    const int h = svc.submit("tenant", workload::make_workload("join"), gib(8));
    std::vector<double> runtimes;
    for (int i = 0; i < 3; ++i) runtimes.push_back(svc.run_once(h).runtime);
    return runtimes;
  };
  const auto serial = run_service(1);
  const auto parallel = run_service(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bits_equal(serial[i], parallel[i])) << "run " << i;
  }
}

}  // namespace
}  // namespace stune::disc
