#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "model/additive_gp.hpp"
#include "simcore/rng.hpp"

namespace stune::model {
namespace {

/// y depends strongly on x0, weakly on x1, not at all on x2.
Dataset additive_data(std::size_t n, simcore::Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    const double x2 = rng.uniform();
    d.add({x0, x1, x2}, 5.0 * std::sin(3.0 * x0) + 0.5 * x1);
  }
  return d;
}

TEST(AdditiveGp, FitsAnAdditiveFunction) {
  simcore::Rng rng(1);
  const auto d = additive_data(80, rng);
  AdditiveGaussianProcess gp;
  gp.fit(d);
  double err = 0.0;
  for (int i = 0; i <= 20; ++i) {
    const double x0 = i / 20.0;
    const double truth = 5.0 * std::sin(3.0 * x0) + 0.25;
    err += std::abs(gp.predict({x0, 0.5, 0.5}).mean - truth) / 21.0;
  }
  EXPECT_LT(err, 0.5);
}

TEST(AdditiveGp, RelevanceIdentifiesTheDrivingDimension) {
  simcore::Rng rng(2);
  const auto d = additive_data(100, rng);
  AdditiveGaussianProcess gp;
  gp.fit(d);
  const auto rel = gp.relevance();
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_GT(rel[0], rel[1]);
  EXPECT_GT(rel[0], rel[2] + 0.1);
  EXPECT_GT(rel[0], 0.4);  // the sin(x0) term dominates
}

TEST(AdditiveGp, RelevanceIsANormalizedDistribution) {
  simcore::Rng rng(3);
  const auto d = additive_data(60, rng);
  AdditiveGaussianProcess gp;
  gp.fit(d);
  double total = 0.0;
  for (const double r : gp.relevance()) {
    EXPECT_GE(r, 0.0);
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdditiveGp, GroupsAggregateOneHotFeatures) {
  // Features 1 and 2 belong to the same group (a one-hot categorical).
  simcore::Rng rng(4);
  Dataset d;
  for (int i = 0; i < 80; ++i) {
    const double x0 = rng.uniform();
    const bool cat = rng.bernoulli(0.5);
    d.add({x0, cat ? 1.0 : 0.0, cat ? 0.0 : 1.0}, cat ? 3.0 : -3.0);
  }
  AdditiveGaussianProcess gp;
  gp.fit(d, {0, 1, 1});
  const auto rel = gp.relevance();
  ASSERT_EQ(rel.size(), 2u);
  EXPECT_GT(rel[1], rel[0]);  // the categorical drives everything
}

TEST(AdditiveGp, PredictionUncertaintyIsNonNegative) {
  simcore::Rng rng(5);
  const auto d = additive_data(50, rng);
  AdditiveGaussianProcess gp;
  gp.fit(d);
  for (int i = 0; i <= 10; ++i) {
    EXPECT_GE(gp.predict({i / 10.0, 0.2, 0.9}).variance, 0.0);
  }
}

TEST(AdditiveGp, MisuseThrows) {
  AdditiveGaussianProcess gp;
  EXPECT_THROW(gp.fit(Dataset{}), std::invalid_argument);
  EXPECT_THROW(gp.predict({0.5}), std::logic_error);
  EXPECT_THROW(gp.relevance(), std::logic_error);
  Dataset d;
  d.add({0.1, 0.2}, 1.0);
  d.add({0.3, 0.4}, 2.0);
  EXPECT_THROW(gp.fit(d, {0}), std::invalid_argument);  // owners size mismatch
}

TEST(AdditiveGp, HandlesConstantTargets) {
  Dataset d;
  simcore::Rng rng(6);
  for (int i = 0; i < 20; ++i) d.add({rng.uniform(), rng.uniform()}, 7.0);
  AdditiveGaussianProcess gp;
  gp.fit(d);
  EXPECT_NEAR(gp.predict({0.5, 0.5}).mean, 7.0, 0.5);
}

}  // namespace
}  // namespace stune::model
