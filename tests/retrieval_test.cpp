// Retrieval-tier tests (DESIGN.md §15): the SIMD flat-scan / IVF index
// itself (bitwise parity between kernels, exact-mode pruning, approximate
// recall, snapshot immutability), its wiring into SharedKnowledgeBase
// (ring retention, the masked-cellmate approximation the bounded
// similarity index documents), the lock-free reader/writer race (the TSan
// job runs every Retrieval* suite), and the end-to-end kRetrieved serve
// path. Suite names all start with "Retrieval" — CI's sanitizer regexes
// select them by that prefix.
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "config/spark_space.hpp"
#include "service/retrieval_index.hpp"
#include "service/shared_kb.hpp"
#include "service/tuning_service.hpp"
#include "simcore/units.hpp"
#include "transfer/characterization.hpp"
#include "workload/workload.hpp"

namespace stune::service {
namespace {

using simcore::gib;

/// Deterministic low-discrepancy signature stream: unique per index, spread
/// over a few dozen IVF cells (cell width 0.25) like a real fleet's handful
/// of workload shapes.
transfer::Signature sig_at(std::uint32_t i) {
  const auto frac = [](double x) { return x - static_cast<double>(static_cast<long>(x)); };
  transfer::Signature s;
  s.cpu_fraction = frac(0.13 + i * 0.6180339887498949);
  s.disk_fraction = 0.5 * frac(0.29 + i * 0.7548776662466927);
  s.net_fraction = 0.5 * frac(0.53 + i * 0.5698402909980532);
  s.gc_fraction = 0.25 * frac(0.71 + i * 0.3819660112501051);
  s.shuffle_per_input = 2.0 * frac(0.17 + i * 0.2548776662466927);
  s.spill_per_input = frac(0.41 + i * 0.1389769529409328);
  s.stage_depth = 3.0 * frac(0.07 + i * 0.9241388105448246);
  s.cache_pressure = frac(0.61 + i * 0.4678787748099796);
  return s;
}

config::Configuration config_at(std::uint32_t i) {
  auto c = config::spark_space()->default_config();
  c.set(config::spark::kExecutorMemoryGiB, 4.0 + static_cast<double>(i % 13));
  return c;
}

/// Populate an index with n entries; entry i gets sig_at(i), a runtime that
/// decreases with i modulo a small cycle (so "fastest qualifying neighbor"
/// is distinguishable from "nearest"), and one of 13 distinct configs.
void fill(RetrievalIndex& idx, std::uint32_t n) {
  for (std::uint32_t i = 0; i < n; ++i) {
    idx.append(sig_at(i), gib(1 + i % 8), 100.0 + static_cast<double>(i % 29), config_at(i));
  }
}

std::uint64_t bits(double d) { return std::bit_cast<std::uint64_t>(d); }

// -- The scan kernels --------------------------------------------------------------

TEST(RetrievalIndexScan, SimdAndScalarFlatScansAreBitwiseIdentical) {
  RetrievalIndex idx{RetrievalOptions{}};
  fill(idx, 3000);
  const auto snap = idx.retrieval_snapshot();
  ASSERT_EQ(snap->size(), 3000u);

  for (std::uint32_t probe = 0; probe < 40; ++probe) {
    RetrievalQuery q;
    q.signature = sig_at(probe * 131 + 7);
    q.input_bytes = gib(1 + probe % 8);
    q.size_tolerance = 2.0;
    RetrievalHit simd[RetrievalSnapshot::kMaxK];
    RetrievalHit scalar[RetrievalSnapshot::kMaxK];
    const std::size_t ns = snap->query_flat(q, 16, simd);
    const std::size_t nc = snap->query_flat_scalar(q, 16, scalar);
    ASSERT_EQ(ns, nc) << "probe " << probe;
    for (std::size_t j = 0; j < ns; ++j) {
      EXPECT_EQ(simd[j].entry, scalar[j].entry) << "probe " << probe << " rank " << j;
      EXPECT_EQ(bits(simd[j].dist2), bits(scalar[j].dist2))
          << "probe " << probe << " rank " << j;
    }
  }
}

TEST(RetrievalIndexScan, ExactIvfMatchesFlatScanBitwise) {
  RetrievalOptions o;
  o.block_capacity = 64;
  o.ivf_min_entries = 128;
  RetrievalIndex idx(o);
  fill(idx, 1024 + 17);  // 17 un-indexed tail entries exercise the flat tail
  const auto snap = idx.retrieval_snapshot();
  ASSERT_GT(snap->ivf_indexed(), 0u);
  ASSERT_LT(snap->ivf_indexed(), snap->size());
  ASSERT_GT(snap->ivf_cells(), 1u);

  for (const std::size_t k : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    for (std::uint32_t probe = 0; probe < 40; ++probe) {
      RetrievalQuery q;
      q.signature = sig_at(probe * 37 + 3);
      if (probe % 2 == 0) {
        q.input_bytes = gib(1 + probe % 8);  // half the probes exercise the size window
        q.size_tolerance = 2.0;
      }
      if (probe % 3 == 0) q.min_similarity = 0.3;  // and a third the similarity bar
      RetrievalHit ivf[RetrievalSnapshot::kMaxK];
      RetrievalHit flat[RetrievalSnapshot::kMaxK];
      const std::size_t ni = snap->query(q, k, ivf);  // probe_cells == 0: exact
      const std::size_t nf = snap->query_flat(q, k, flat);
      ASSERT_EQ(ni, nf) << "k " << k << " probe " << probe;
      for (std::size_t j = 0; j < ni; ++j) {
        EXPECT_EQ(ivf[j].entry, flat[j].entry) << "k " << k << " probe " << probe;
        EXPECT_EQ(bits(ivf[j].dist2), bits(flat[j].dist2)) << "k " << k << " probe " << probe;
      }
    }
  }
}

TEST(RetrievalIndexScan, ApproximateProbeHasPerfectSelfRecall) {
  RetrievalOptions o;
  o.block_capacity = 64;
  o.ivf_min_entries = 128;
  RetrievalIndex idx(o);
  fill(idx, 1024);
  const auto snap = idx.retrieval_snapshot();
  ASSERT_GT(snap->ivf_indexed(), 0u);

  // The home cell is always among the probed cells, so querying an entry's
  // own (unique) signature must return the entry itself at rank 0: recall@1
  // is 1.0 at any probe width.
  for (std::uint32_t i = 0; i < 1024; i += 16) {
    RetrievalQuery q;
    q.signature = sig_at(i);
    q.probe_cells = 4;
    RetrievalHit hits[RetrievalSnapshot::kMaxK];
    ASSERT_GE(snap->query(q, 1, hits), 1u) << "entry " << i;
    EXPECT_EQ(hits[i == 0 ? 0 : 0].entry, i) << "entry " << i;
    EXPECT_EQ(hits[0].dist2, 0.0) << "entry " << i;
  }
}

TEST(RetrievalIndexScan, HitsCarryTheAppendedPayload) {
  RetrievalIndex idx{RetrievalOptions{}};
  fill(idx, 100);
  const auto snap = idx.retrieval_snapshot();
  RetrievalQuery q;
  q.signature = sig_at(42);
  RetrievalHit hits[RetrievalSnapshot::kMaxK];
  ASSERT_GE(snap->query(q, 1, hits), 1u);
  EXPECT_EQ(hits[0].entry, 42u);
  EXPECT_EQ(hits[0].input_bytes, gib(1 + 42 % 8));
  EXPECT_DOUBLE_EQ(hits[0].runtime, 100.0 + 42 % 29);
  ASSERT_NE(hits[0].config, nullptr);
  EXPECT_EQ(hits[0].config->values(), config_at(42).values());
  // 13 distinct configs were appended 100 times: the dedup pool holds 13.
  EXPECT_EQ(idx.distinct_configs(), 13u);
}

// -- Snapshots ---------------------------------------------------------------------

TEST(RetrievalIndexSnapshot, PublishedSnapshotsAreImmutableAcrossAppends) {
  RetrievalIndex idx{RetrievalOptions{}};
  fill(idx, 10);
  const auto s1 = idx.retrieval_snapshot();
  EXPECT_EQ(s1->size(), 10u);
  const std::uint64_t e1 = s1->epoch();

  for (std::uint32_t i = 10; i < 20; ++i) {
    idx.append(sig_at(i), gib(1), 50.0, config_at(i));
  }
  const auto s2 = idx.retrieval_snapshot();
  EXPECT_EQ(s2->size(), 20u);
  EXPECT_GT(s2->epoch(), e1);

  // The old epoch still answers queries over its own 10 entries; entry 15
  // exists only in the new one.
  EXPECT_EQ(s1->size(), 10u);
  RetrievalQuery q;
  q.signature = sig_at(15);
  RetrievalHit hits[RetrievalSnapshot::kMaxK];
  ASSERT_GE(s1->query(q, 1, hits), 1u);
  EXPECT_NE(hits[0].entry, 15u);
  EXPECT_GT(hits[0].dist2, 0.0);
  ASSERT_GE(s2->query(q, 1, hits), 1u);
  EXPECT_EQ(hits[0].entry, 15u);
  EXPECT_EQ(hits[0].dist2, 0.0);
}

// Regression surface for the lock-free read path: a writer appending (and
// republishing the snapshot every append, rebuilding the IVF tier at block
// boundaries) races readers that grab snapshots and query them. TSan runs
// this under the Retrieval* regex; the assertions pin the memory-ordering
// contract (epochs never go backwards, a grabbed snapshot never mutates).
TEST(RetrievalConcurrency, ReadersRaceWriterOnTheLiveIndex) {
  RetrievalOptions o;
  o.block_capacity = 64;
  o.ivf_min_entries = 128;
  RetrievalIndex idx(o);
  constexpr std::uint32_t kTotal = 4000;

  std::thread writer([&idx] { fill(idx, kTotal); });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&idx] {
      std::uint64_t last_epoch = 0;
      std::size_t last_size = 0;
      while (true) {
        const auto snap = idx.retrieval_snapshot();
        EXPECT_GE(snap->epoch(), last_epoch);
        EXPECT_GE(snap->size(), last_size);
        last_epoch = snap->epoch();
        last_size = snap->size();
        if (snap->size() > 0) {
          RetrievalQuery q;
          q.signature = sig_at(static_cast<std::uint32_t>(snap->size() / 2));
          RetrievalHit hits[RetrievalSnapshot::kMaxK];
          const std::size_t n = snap->query(q, 4, hits);
          EXPECT_GE(n, 1u);
          EXPECT_LT(hits[0].entry, snap->size());
        }
        if (snap->size() == kTotal) break;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(idx.retrieval_snapshot()->size(), kTotal);
}

// -- SharedKnowledgeBase wiring ----------------------------------------------------

ExecutionRecord make_record(const std::string& tenant, double runtime, simcore::Bytes input,
                            transfer::Signature sig) {
  ExecutionRecord r;
  r.tenant = tenant;
  r.workload_label = "w";
  r.config = config::spark_space()->default_config();
  r.input_bytes = input;
  r.runtime = runtime;
  r.signature = sig;
  return r;
}

TEST(RetrievalSharedKb, RingRetentionKeepsTheRetrievalTierComplete) {
  SharedKnowledgeBaseOptions o;
  o.max_records = 4;
  SharedKnowledgeBase kb(o);
  for (std::uint32_t i = 0; i < 10; ++i) {
    kb.record_execution(make_record("t", 10.0 + i, gib(4), sig_at(i)));
  }
  // The ring dropped six full records; the retrieval tier (like the
  // similarity index) keeps everything ever recorded.
  EXPECT_EQ(kb.total_records(), 10u);
  EXPECT_EQ(kb.retained_records(), 4u);
  EXPECT_EQ(kb.snapshot().size(), 4u);
  EXPECT_EQ(kb.retrieval_snapshot()->size(), 10u);
  // All ten records carried the same (default) configuration: the dedup
  // pool holds exactly one.
  EXPECT_EQ(kb.retrieval_distinct_configs(), 1u);

  // Entry 2 was dropped from the ring but is still retrievable.
  RetrievalQuery q;
  q.signature = sig_at(2);
  RetrievalHit hits[RetrievalSnapshot::kMaxK];
  ASSERT_GE(kb.retrieval_snapshot()->query(q, 1, hits), 1u);
  EXPECT_EQ(hits[0].entry, 2u);
  EXPECT_DOUBLE_EQ(hits[0].runtime, 12.0);
}

TEST(RetrievalSharedKb, FailedRecordsNeverEnterTheIndex) {
  SharedKnowledgeBase kb;
  kb.record_execution(make_record("t", 10.0, gib(4), sig_at(0)));
  auto failed = make_record("t", 1.0, gib(4), sig_at(1));
  failed.failed = true;
  kb.record_execution(std::move(failed));
  EXPECT_EQ(kb.total_records(), 2u);
  EXPECT_EQ(kb.retrieval_snapshot()->size(), 1u);
}

// The documented approximation of the bounded similarity index (shared_kb.hpp
// header): best_similar_runtime keeps one representative per (cell,
// size-bucket) — the best runtime — so a similar-but-slower run is masked
// when a faster, dissimilar cellmate owns the slot. The retrieval tier scans
// actual entries, so it still finds the similar run.
TEST(RetrievalSharedKb, MaskedCellmateIsInvisibleToTheIndexButRetrievable) {
  transfer::Signature target;  // all zeros
  transfer::Signature similar_slow;  // identical to the target
  transfer::Signature dissimilar_fast;
  dissimilar_fast.cpu_fraction = 0.2;  // same 0.25-wide cell, similarity exp(-0.2) < 0.9

  SharedKnowledgeBase with_similar_only;
  with_similar_only.record_execution(make_record("a", 100.0, gib(4), similar_slow));
  const auto visible = with_similar_only.best_similar_runtime(target, gib(4), 0.9);
  ASSERT_TRUE(visible.has_value());
  EXPECT_DOUBLE_EQ(*visible, 100.0);

  SharedKnowledgeBase kb;
  kb.record_execution(make_record("a", 100.0, gib(4), similar_slow));
  kb.record_execution(make_record("b", 10.0, gib(4), dissimilar_fast));
  // The faster cellmate takes over the (cell, bucket) slot; its stored
  // signature fails the 0.9 bar at query time, so the reference goes dark
  // even though the similar 100 s run is still indexed — the masking the
  // header documents.
  EXPECT_FALSE(kb.best_similar_runtime(target, gib(4), 0.9).has_value());

  // The retrieval tier holds both entries and applies the bar per entry.
  RetrievalQuery q;
  q.signature = target;
  q.min_similarity = 0.9;
  RetrievalHit hits[RetrievalSnapshot::kMaxK];
  const std::size_t n = kb.retrieval_snapshot()->query(q, 8, hits);
  ASSERT_EQ(n, 1u);  // the dissimilar cellmate fails the bar
  EXPECT_EQ(hits[0].entry, 0u);
  EXPECT_DOUBLE_EQ(hits[0].runtime, 100.0);
}

// -- End-to-end serve --------------------------------------------------------------

ServiceOptions retrieval_service_options() {
  ServiceOptions o;
  o.tuning_budget = 15;
  o.retuning_budget = 8;
  o.tune_cloud = false;
  o.default_cluster = {"h1.4xlarge", 4};
  o.retrieval.enabled = true;
  return o;
}

TEST(RetrievalServe, DegradedTenantIsAnsweredFromTheIndexOnItsNextServe) {
  auto opts = retrieval_service_options();
  opts.admission.tuning_tokens_per_s = 0.0;  // fixed stock:
  opts.admission.tuning_burst = 1.0;         // exactly one tuning session
  TuningService svc(opts);

  const int ha = svc.submit("acme", workload::make_workload("sort"), gib(8));
  EXPECT_EQ(svc.serve(ha).outcome, ServeOutcome::kServed);

  // The tuning stock is gone. The next tenant's first serve has no
  // signature yet (retrieval fallback) and degrades; the run it executes
  // lands in the index, so the second serve retrieves — zero trials.
  const int hb = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  EXPECT_EQ(svc.serve(hb).outcome, ServeOutcome::kDegraded);
  EXPECT_FALSE(svc.status(hb).tuned);

  const auto second = svc.serve(hb);
  EXPECT_EQ(second.outcome, ServeOutcome::kRetrieved);
  EXPECT_TRUE(second.report.success);
  EXPECT_TRUE(svc.status(hb).tuned);
  EXPECT_EQ(svc.status(hb).tunings, 0u);  // adopted, never tuned

  // Now tuned: later serves are plain kServed production runs.
  EXPECT_EQ(svc.serve(hb).outcome, ServeOutcome::kServed);

  const auto health = svc.health();
  EXPECT_EQ(health.retrieved, 1u);
  EXPECT_GE(health.retrieval_fallbacks, 1u);
  EXPECT_GT(health.retrieval_entries, 0u);
  EXPECT_GT(health.retrieval_epoch, 0u);
  std::uint64_t shard_hits = 0;
  for (const auto& s : health.per_shard) shard_hits += s.retrieval_hits;
  EXPECT_EQ(shard_hits, health.retrieved);
}

TEST(RetrievalServe, DisabledPolicyCountsNothingAndNeverRetrieves) {
  auto opts = retrieval_service_options();
  opts.retrieval.enabled = false;
  opts.admission.tuning_tokens_per_s = 0.0;
  opts.admission.tuning_burst = 0.0;  // nobody ever tunes
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(8));
  EXPECT_EQ(svc.serve(h).outcome, ServeOutcome::kDegraded);
  EXPECT_EQ(svc.serve(h).outcome, ServeOutcome::kDegraded);
  const auto health = svc.health();
  EXPECT_EQ(health.retrieved, 0u);
  EXPECT_EQ(health.retrieval_misses, 0u);
  EXPECT_EQ(health.retrieval_fallbacks, 0u);
}

// With no tuning capacity anywhere, every tenant follows the same
// degrade-once-then-retrieve path; admission state never diverges between
// shard layouts (the bucket is empty everywhere), so per-tenant runtimes,
// configurations and outcome sequences must be bitwise identical whatever
// the shard count — the retrieval tier preserves the sharding determinism
// contract.
TEST(RetrievalServe, ShardCountPreservesRetrievalResultsBitwise) {
  const std::vector<std::string> workloads = {"sort", "wordcount", "terasort", "join"};
  constexpr int kRuns = 3;

  struct TenantTrace {
    std::vector<double> runtimes;
    std::vector<ServeOutcome> outcomes;
    std::vector<double> config;
  };
  const auto drive = [&](std::size_t shards) {
    auto opts = retrieval_service_options();
    opts.shards = shards;
    opts.admission.tuning_tokens_per_s = 0.0;
    opts.admission.tuning_burst = 0.0;
    TuningService svc(opts);
    std::vector<int> handles;
    for (std::size_t t = 0; t < workloads.size(); ++t) {
      handles.push_back(svc.submit("tenant-" + std::to_string(t),
                                   workload::make_workload(workloads[t]), gib(4)));
    }
    std::vector<TenantTrace> traces(workloads.size());
    for (int i = 0; i < kRuns; ++i) {
      for (std::size_t t = 0; t < handles.size(); ++t) {
        const auto r = svc.serve(handles[t]);
        traces[t].runtimes.push_back(r.report.runtime);
        traces[t].outcomes.push_back(r.outcome);
      }
    }
    for (std::size_t t = 0; t < handles.size(); ++t) {
      traces[t].config = svc.status(handles[t]).config.values();
    }
    // The path itself: first serve degraded (no signature), second retrieved.
    EXPECT_EQ(traces[0].outcomes[0], ServeOutcome::kDegraded);
    EXPECT_EQ(traces[0].outcomes[1], ServeOutcome::kRetrieved);
    return traces;
  };

  const auto reference = drive(1);
  for (const std::size_t shards : {4u, 16u}) {
    const auto got = drive(shards);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t t = 0; t < reference.size(); ++t) {
      EXPECT_EQ(got[t].runtimes, reference[t].runtimes)
          << "tenant " << t << " diverged at shards=" << shards;
      EXPECT_EQ(got[t].outcomes, reference[t].outcomes)
          << "tenant " << t << " outcomes diverged at shards=" << shards;
      EXPECT_EQ(got[t].config, reference[t].config)
          << "tenant " << t << " config diverged at shards=" << shards;
    }
  }
}

}  // namespace
}  // namespace stune::service
