#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "config/config_space.hpp"
#include "config/param.hpp"

namespace stune::config {
namespace {

std::shared_ptr<const ConfigSpace> test_space() {
  std::vector<ParamDef> params;
  params.push_back(ParamDef::integer("cores", 1, 16, 2));
  params.push_back(ParamDef::real("memory", 1.0, 64.0, 4.0, /*log_scale=*/true, "GiB"));
  params.push_back(ParamDef::boolean("compress", true));
  params.push_back(ParamDef::categorical("codec", {"lz4", "snappy", "zstd"}, 0));
  params.push_back(ParamDef::real("fraction", 0.0, 1.0, 0.5));
  return ConfigSpace::create(std::move(params));
}

// -- ParamDef -------------------------------------------------------------------

TEST(ParamDef, SanitizeClampsAndRounds) {
  const auto p = ParamDef::integer("x", 2, 10, 5);
  EXPECT_DOUBLE_EQ(p.sanitize(-3.0), 2.0);
  EXPECT_DOUBLE_EQ(p.sanitize(99.0), 10.0);
  EXPECT_DOUBLE_EQ(p.sanitize(6.4), 6.0);
  EXPECT_DOUBLE_EQ(p.sanitize(6.6), 7.0);
}

TEST(ParamDef, FloatSanitizeDoesNotRound) {
  const auto p = ParamDef::real("x", 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(p.sanitize(0.123), 0.123);
}

TEST(ParamDef, Cardinality) {
  EXPECT_EQ(ParamDef::boolean("b", false).cardinality(), 2u);
  EXPECT_EQ(ParamDef::categorical("c", {"a", "b", "c"}, 0).cardinality(), 3u);
  EXPECT_EQ(ParamDef::integer("i", 3, 7, 3).cardinality(), 5u);
  EXPECT_EQ(ParamDef::real("f", 0, 1, 0).cardinality(), 0u);
}

TEST(ParamDef, RejectsBadRanges) {
  EXPECT_THROW(ParamDef::integer("x", 10, 2, 5), std::invalid_argument);
  EXPECT_THROW(ParamDef::real("x", 1.0, 0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(ParamDef::categorical("x", {}, 0), std::invalid_argument);
  EXPECT_THROW(ParamDef::categorical("x", {"a"}, 5), std::invalid_argument);
}

class UnitRoundTrip : public ::testing::TestWithParam<ParamDef> {};

TEST_P(UnitRoundTrip, ToUnitFromUnitIsIdentityOnGrid) {
  const auto& p = GetParam();
  for (int i = 0; i <= 10; ++i) {
    const double u = i / 10.0;
    const double v = p.from_unit(u);
    // from_unit(to_unit(v)) must be a fixed point.
    EXPECT_DOUBLE_EQ(p.from_unit(p.to_unit(v)), v);
    EXPECT_GE(v, p.min_value);
    EXPECT_LE(v, p.max_value);
  }
}

TEST_P(UnitRoundTrip, ToUnitIsMonotone) {
  const auto& p = GetParam();
  double prev = -1.0;
  for (int i = 0; i <= 20; ++i) {
    const double u = p.to_unit(p.from_unit(i / 20.0));
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnitRoundTrip,
    ::testing::Values(ParamDef::integer("lin_int", 1, 100, 10),
                      ParamDef::integer("log_int", 8, 2048, 64, true),
                      ParamDef::real("lin_float", 0.1, 0.9, 0.5),
                      ParamDef::real("log_float", 1.0, 48.0, 2.0, true),
                      ParamDef::boolean("flag", false),
                      ParamDef::categorical("cat", {"a", "b", "c", "d"}, 1)),
    [](const ::testing::TestParamInfo<ParamDef>& param_info) { return param_info.param.name; });

TEST(ParamDef, FormatValue) {
  EXPECT_EQ(ParamDef::boolean("b", true).format_value(1.0), "true");
  EXPECT_EQ(ParamDef::categorical("c", {"lz4", "zstd"}, 0).format_value(1.0), "zstd");
  EXPECT_EQ(ParamDef::integer("i", 0, 100, 0).format_value(42.0), "42");
  EXPECT_EQ(ParamDef::real("f", 0, 100, 0, false, "GiB").format_value(2.0), "2 GiB");
}

// -- ConfigSpace -----------------------------------------------------------------

TEST(ConfigSpace, RejectsDuplicateNames) {
  std::vector<ParamDef> params;
  params.push_back(ParamDef::boolean("x", false));
  params.push_back(ParamDef::boolean("x", true));
  EXPECT_THROW(ConfigSpace::create(std::move(params)), std::invalid_argument);
}

TEST(ConfigSpace, DefaultConfigUsesDefaults) {
  const auto space = test_space();
  const auto c = space->default_config();
  EXPECT_EQ(c.get_int("cores"), 2);
  EXPECT_DOUBLE_EQ(c.get("memory"), 4.0);
  EXPECT_TRUE(c.get_bool("compress"));
  EXPECT_EQ(c.get_label("codec"), "lz4");
}

TEST(ConfigSpace, SampleStaysInDomain) {
  const auto space = test_space();
  simcore::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto c = space->sample(rng);
    EXPECT_GE(c.get("cores"), 1);
    EXPECT_LE(c.get("cores"), 16);
    EXPECT_GE(c.get("memory"), 1.0);
    EXPECT_LE(c.get("memory"), 64.0);
    const double codec = c.get("codec");
    EXPECT_DOUBLE_EQ(codec, std::round(codec));
  }
}

TEST(ConfigSpace, LatinHypercubeStratifiesContinuousDims) {
  const auto space = test_space();
  simcore::Rng rng(2);
  const std::size_t n = 10;
  const auto samples = space->latin_hypercube(n, rng);
  ASSERT_EQ(samples.size(), n);
  // The "fraction" dimension (linear [0,1]) must have one sample per decile.
  std::set<int> strata;
  for (const auto& s : samples) {
    strata.insert(std::min(9, static_cast<int>(s.get("fraction") * 10.0)));
  }
  EXPECT_EQ(strata.size(), n);
}

TEST(ConfigSpace, DivideAndDivergeSamplesDifferInEveryContinuousDim) {
  const auto space = test_space();
  simcore::Rng rng(3);
  const auto samples = space->divide_and_diverge(8, rng);
  ASSERT_EQ(samples.size(), 8u);
  const std::size_t frac = space->require_index("fraction");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    for (std::size_t j = i + 1; j < samples.size(); ++j) {
      EXPECT_NE(samples[i][frac], samples[j][frac]);
    }
  }
}

TEST(ConfigSpace, EncodeOneHotExpandsCategoricals) {
  const auto space = test_space();
  // 4 scalar params + 3 codec categories.
  EXPECT_EQ(space->encoded_size(), 4u + 3u);
  auto c = space->default_config();
  c.set("codec", 2.0);  // zstd
  const auto f = space->encode(c);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // lz4
  EXPECT_DOUBLE_EQ(f[4], 0.0);  // snappy
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // zstd
  for (const double v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ConfigSpace, UnitRoundTripThroughSpace) {
  const auto space = test_space();
  simcore::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto c = space->sample(rng);
    const auto c2 = space->from_unit(space->to_unit(c));
    EXPECT_EQ(c.values(), c2.values());
  }
}

TEST(ConfigSpace, NeighborChangesRequestedNumberOfParams) {
  const auto space = test_space();
  simcore::Rng rng(5);
  const auto base = space->default_config();
  for (int i = 0; i < 100; ++i) {
    const auto n = space->neighbor(base, 0.2, 1, rng);
    int changed = 0;
    for (std::size_t d = 0; d < space->size(); ++d) changed += (n[d] != base[d]) ? 1 : 0;
    EXPECT_GE(changed, 1);
    EXPECT_LE(changed, 1);
  }
}

TEST(ConfigSpace, NeighborStaysInDomain) {
  const auto space = test_space();
  simcore::Rng rng(6);
  auto c = space->default_config();
  for (int i = 0; i < 500; ++i) {
    c = space->neighbor(c, 0.3, 2, rng);
    for (std::size_t d = 0; d < space->size(); ++d) {
      EXPECT_GE(c[d], space->param(d).min_value);
      EXPECT_LE(c[d], space->param(d).max_value);
    }
  }
}

// -- Configuration -----------------------------------------------------------------

TEST(Configuration, SetSanitizes) {
  const auto space = test_space();
  auto c = space->default_config();
  c.set("cores", 99.0);
  EXPECT_EQ(c.get_int("cores"), 16);
  c.set("fraction", -1.0);
  EXPECT_DOUBLE_EQ(c.get("fraction"), 0.0);
}

TEST(Configuration, UnknownNameThrows) {
  const auto space = test_space();
  auto c = space->default_config();
  EXPECT_THROW(c.get("nope"), std::out_of_range);
  EXPECT_THROW(c.set("nope", 1.0), std::out_of_range);
}

TEST(Configuration, FingerprintStableAndSensitive) {
  const auto space = test_space();
  const auto a = space->default_config();
  auto b = space->default_config();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.set("cores", 3.0);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Configuration, DescribeMentionsEveryParam) {
  const auto space = test_space();
  const auto text = space->default_config().describe();
  for (std::size_t d = 0; d < space->size(); ++d) {
    EXPECT_NE(text.find(space->param(d).name), std::string::npos);
  }
}

TEST(Configuration, EqualityRequiresSameSpaceAndValues) {
  const auto space = test_space();
  const auto a = space->default_config();
  auto b = space->default_config();
  EXPECT_TRUE(a == b);
  b.set("compress", 0.0);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace stune::config
