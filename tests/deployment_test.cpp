#include <gtest/gtest.h>

#include <string>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/deployment.hpp"

namespace stune::disc {
namespace {

namespace k = config::spark;

config::SparkConf conf_with(std::initializer_list<std::pair<const char*, double>> overrides) {
  auto c = config::spark_space()->default_config();
  for (const auto& [name, value] : overrides) c.set(name, value);
  return config::SparkConf(c);
}

const cluster::Cluster& testbed() {
  // The paper's Table I cluster: 4x h1.4xlarge (16 vcpus, 64 GiB each).
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

TEST(Deployment, PacksByCoresWhenMemoryIsPlentiful) {
  // 4 cores each, small heap: 16/4 = 4 executors per VM.
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 4}, {k::kExecutorMemoryGiB, 4.0},
                 {k::kExecutorInstances, 48}}),
      testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.executors_per_vm, 4);
  EXPECT_EQ(d.executors, 16);
  EXPECT_EQ(d.total_slots, 64);
}

TEST(Deployment, PacksByMemoryWhenHeapIsLarge) {
  // 26 GiB heap * 1.1 overhead = 28.6 GiB container; ~61 GiB usable -> 2/VM.
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 2}, {k::kExecutorMemoryGiB, 26.0},
                 {k::kExecutorInstances, 48}}),
      testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.executors_per_vm, 2);
  EXPECT_EQ(d.executors, 8);
}

TEST(Deployment, RequestBelowCapacityIsHonored) {
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 2}, {k::kExecutorMemoryGiB, 2.0},
                 {k::kExecutorInstances, 3}}),
      testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.executors, 3);
  // 3 executors spread over 4 VMs: at most 1 per VM.
  EXPECT_EQ(d.executors_per_vm, 1);
}

TEST(Deployment, DynamicAllocationFillsCapacity) {
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 4}, {k::kExecutorMemoryGiB, 4.0},
                 {k::kExecutorInstances, 1}, {k::kDynamicAllocation, 1.0}}),
      testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.executors, 16);
}

TEST(Deployment, TaskCpusDividesSlots) {
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 8}, {k::kTaskCpus, 2},
                 {k::kExecutorMemoryGiB, 4.0}, {k::kExecutorInstances, 48}}),
      testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.slots_per_executor, 4);
}

TEST(Deployment, MemoryRegionsFollowSparkModel) {
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorMemoryGiB, 8.0}, {k::kMemoryFraction, 0.6},
                 {k::kMemoryStorageFraction, 0.5}}),
      testbed());
  ASSERT_TRUE(d.viable);
  const double heap = 8.0 * 1024 * 1024 * 1024;
  const double reserved = 300.0 * 1024 * 1024;
  EXPECT_NEAR(static_cast<double>(d.unified_per_executor), (heap - reserved) * 0.6, 1e6);
  EXPECT_NEAR(static_cast<double>(d.storage_target_per_executor), (heap - reserved) * 0.3, 1e6);
}

TEST(Deployment, FailsWhenCoresExceedVm) {
  const auto small = cluster::Cluster::from_spec({"m5.large", 2});  // 2 vcpus
  const auto d = resolve_deployment(conf_with({{k::kExecutorCores, 8}}), small);
  EXPECT_FALSE(d.viable);
  EXPECT_NE(d.failure.find("vCPU"), std::string::npos);
}

TEST(Deployment, FailsWhenContainerExceedsVmMemory) {
  const auto small = cluster::Cluster::from_spec({"c5.large", 2});  // 4 GiB
  const auto d = resolve_deployment(conf_with({{k::kExecutorMemoryGiB, 16.0}}), small);
  EXPECT_FALSE(d.viable);
  EXPECT_NE(d.failure.find("memory"), std::string::npos);
}

TEST(Deployment, FailsWhenTaskCpusExceedExecutorCores) {
  const auto d = resolve_deployment(
      conf_with({{k::kExecutorCores, 2}, {k::kTaskCpus, 4}}), testbed());
  EXPECT_FALSE(d.viable);
}

TEST(Deployment, OverheadFactorReducesPacking) {
  const auto lean = resolve_deployment(
      conf_with({{k::kExecutorCores, 1}, {k::kExecutorMemoryGiB, 7.0},
                 {k::kExecutorInstances, 48}, {k::kMemoryOverheadFactor, 0.06}}),
      testbed());
  const auto fat = resolve_deployment(
      conf_with({{k::kExecutorCores, 1}, {k::kExecutorMemoryGiB, 7.0},
                 {k::kExecutorInstances, 48}, {k::kMemoryOverheadFactor, 0.25}}),
      testbed());
  ASSERT_TRUE(lean.viable);
  ASSERT_TRUE(fat.viable);
  EXPECT_GE(lean.executors_per_vm, fat.executors_per_vm);
}

TEST(Deployment, DefaultSparkConfigIsViableButTiny) {
  // The out-of-the-box configuration deploys (2 executors, 1 core, 1 GiB) —
  // the paper's motivating misconfiguration scenario.
  const auto d = resolve_deployment(config::SparkConf(config::spark_space()->default_config()),
                                    testbed());
  ASSERT_TRUE(d.viable);
  EXPECT_EQ(d.executors, 2);
  EXPECT_EQ(d.total_slots, 2);
}

}  // namespace
}  // namespace stune::disc
