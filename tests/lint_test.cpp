// Golden-fixture tests for every stune_lint rule (tools/lint/lint.hpp).
// Each fixture is a tiny synthetic source whose banned construct lives in
// real code position; the expected rule id and line are asserted exactly.
// Fixture text is held in string literals, which the linter strips before
// scanning — so this file is itself lint-clean despite naming every banned
// construct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "lint.hpp"

namespace stune::lint {
namespace {

std::vector<Violation> lint_as(const std::string& path, const std::string& src) {
  return lint_content(path, src, classify(path));
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

const Violation& only(const std::vector<Violation>& vs, const std::string& rule) {
  const Violation* found = nullptr;
  for (const auto& v : vs) {
    if (v.rule == rule) {
      EXPECT_EQ(found, nullptr) << "more than one [" << rule << "] violation";
      found = &v;
    }
  }
  EXPECT_NE(found, nullptr) << "no [" << rule << "] violation";
  static const Violation none{};
  return found != nullptr ? *found : none;
}

// ---------------------------------------------------------------------------
// classify
// ---------------------------------------------------------------------------

TEST(LintClassify, PathDrivesRuleGroups) {
  const FileClass lib_header = classify("src/disc/engine.hpp");
  EXPECT_TRUE(lib_header.header);
  EXPECT_TRUE(lib_header.library_code);
  EXPECT_FALSE(lib_header.wall_clock_exempt);

  const FileClass simcore_src = classify("src/simcore/thread_pool.cpp");
  EXPECT_TRUE(simcore_src.library_code);
  EXPECT_TRUE(simcore_src.wall_clock_exempt);

  const FileClass bench = classify("bench/bench_table1.cpp");
  EXPECT_FALSE(bench.library_code);
  EXPECT_TRUE(bench.wall_clock_exempt);

  const FileClass test = classify("tests/engine_test.cpp");
  EXPECT_FALSE(test.header);
  EXPECT_FALSE(test.library_code);
  EXPECT_FALSE(test.wall_clock_exempt);
}

// ---------------------------------------------------------------------------
// strip_comments_and_literals
// ---------------------------------------------------------------------------

TEST(LintStrip, BlanksCommentsAndLiteralsButKeepsLines) {
  const std::string src =
      "int a; // assert(x)\n"
      "/* rand() */ int b;\n"
      "const char* s = \"std::cout\";\n";
  const std::string code = strip_comments_and_literals(src);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'), 3);
  EXPECT_EQ(code.find("assert"), std::string::npos);
  EXPECT_EQ(code.find("rand"), std::string::npos);
  EXPECT_EQ(code.find("cout"), std::string::npos);
  EXPECT_NE(code.find("int b;"), std::string::npos);
}

TEST(LintStrip, HandlesRawStringsAndEscapes) {
  const std::string src =
      "auto r = R\"(rand() \" still a string)\";\n"
      "char c = '\\''; int rand_free = 0;\n";
  const std::string code = strip_comments_and_literals(src);
  EXPECT_EQ(code.find("rand()"), std::string::npos);
  EXPECT_NE(code.find("rand_free"), std::string::npos);
}

// ---------------------------------------------------------------------------
// One fixture per rule
// ---------------------------------------------------------------------------

TEST(LintRules, PragmaOnce) {
  const auto vs = lint_as("src/x/x.hpp", "#ifndef X_HPP\n#define X_HPP\n#endif\n");
  EXPECT_EQ(only(vs, "pragma-once").line, 1u);
  EXPECT_TRUE(lint_as("src/x/x.hpp", "#pragma once\n").empty());
  // .cpp files are not headers; no pragma needed.
  EXPECT_FALSE(has_rule(lint_as("src/x/x.cpp", "int x;\n"), "pragma-once"));
}

TEST(LintRules, NoBareAssert) {
  const std::string src = "#include <cassert>\nvoid f(int x) {\n  assert(x > 0);\n}\n";
  EXPECT_EQ(only(lint_as("src/x/x.cpp", src), "no-bare-assert").line, 3u);
  // Test code may assert freely (gtest macros aside, it is not library code).
  EXPECT_FALSE(has_rule(lint_as("tests/x_test.cpp", src), "no-bare-assert"));
  // Identifiers containing 'assert' are not calls of assert.
  EXPECT_FALSE(has_rule(lint_as("src/x/x.cpp", "void my_assert_like(int);\n"),
                        "no-bare-assert"));
}

TEST(LintRules, NoUnseededRng) {
  EXPECT_EQ(only(lint_as("src/x/x.cpp", "int r() { return rand(); }\n"),
                 "no-unseeded-rng").line, 1u);
  // random_device is banned even in tests — determinism is repo-wide.
  EXPECT_TRUE(has_rule(lint_as("tests/x_test.cpp", "std::random_device rd;\n"),
                       "no-unseeded-rng"));
  EXPECT_FALSE(has_rule(lint_as("src/x/x.cpp", "int grand(); int x = grand();\n"),
                        "no-unseeded-rng"));
}

TEST(LintRules, NoStdout) {
  const std::string src = "#include <iostream>\nvoid f() { std::cout << 1; }\n";
  const auto vs = lint_as("src/x/x.cpp", src);
  EXPECT_EQ(only(vs, "no-stdout").line, 2u);
  // CLI/bench/test code prints by design.
  EXPECT_FALSE(has_rule(lint_as("examples/cli.cpp", src), "no-stdout"));
}

TEST(LintRules, IncludeWhatYouUse) {
  const std::string src = "#include <memory>\nstd::vector<std::unique_ptr<int>> v;\n";
  const auto vs = lint_as("src/x/x.cpp", src);  // keep alive past only()
  const auto& v = only(vs, "include-what-you-use");
  EXPECT_EQ(v.line, 2u);  // anchored at first use of std::vector
  EXPECT_NE(v.message.find("<vector>"), std::string::npos);
  EXPECT_TRUE(lint_as("src/x/x.cpp",
                      "#include <memory>\n#include <vector>\n"
                      "std::vector<std::unique_ptr<int>> v;\n")
                  .empty());
}

TEST(LintRules, IncludeWhatYouUseReportsEachMissingHeaderOnce) {
  const std::string src =
      "std::string a;\nstd::string b;\nstd::vector<int> c;\n";
  const auto vs = lint_as("src/x/x.cpp", src);
  std::size_t iwyu = 0;
  for (const auto& v : vs) iwyu += v.rule == "include-what-you-use" ? 1 : 0;
  EXPECT_EQ(iwyu, 2u);  // one for <string>, one for <vector>, not one per use
}

TEST(LintRules, NoIostreamInHeader) {
  const std::string src = "#pragma once\n#include <iostream>\n";
  const auto vs = lint_as("src/x/x.hpp", src);  // keep alive past only()
  const auto& v = only(vs, "no-iostream-in-header");
  EXPECT_EQ(v.line, 2u);  // anchored at the #include directive
  EXPECT_FALSE(has_rule(lint_as("src/x/x.cpp", "#include <iostream>\n"),
                        "no-iostream-in-header"));
}

TEST(LintRules, NoWallClock) {
  const std::string src =
      "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n";
  EXPECT_EQ(only(lint_as("src/disc/x.cpp", src), "no-wall-clock").line, 2u);
  // simcore owns the clock; bench code times real executions.
  EXPECT_FALSE(has_rule(lint_as("src/simcore/x.cpp", src), "no-wall-clock"));
  EXPECT_FALSE(has_rule(lint_as("bench/bench_x.cpp", src), "no-wall-clock"));
  // time() the call is banned; 'time' the identifier is not.
  EXPECT_TRUE(has_rule(lint_as("src/x/x.cpp", "auto t = time(nullptr);\n"),
                       "no-wall-clock"));
  EXPECT_FALSE(has_rule(lint_as("src/x/x.cpp", "double time = 0.0;\n"),
                        "no-wall-clock"));
}

TEST(LintRules, LockDiscipline) {
  const std::string src =
      "#include <mutex>\nvoid f(std::mutex& m) {\n  m.lock();\n  m.unlock();\n}\n";
  const auto vs = lint_as("src/x/x.cpp", src);
  std::vector<std::size_t> lines;
  for (const auto& v : vs) {
    if (v.rule == "lock-discipline") lines.push_back(v.line);
  }
  EXPECT_EQ(lines, (std::vector<std::size_t>{3, 4}));
  // RAII guards are the sanctioned form.
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "#include <mutex>\nvoid f(std::mutex& m) { std::lock_guard<std::mutex> l(m); }\n"),
      "lock-discipline"));
  // Tests and benches may drive locks directly.
  EXPECT_FALSE(has_rule(lint_as("tests/x_test.cpp", src), "lock-discipline"));
}

TEST(LintRules, NoSwallowedException) {
  // A catch-all that does nothing with the exception is a bug factory.
  const std::string swallow =
      "void f() {\n  try {\n    g();\n  } catch (...) {\n    count++;\n  }\n}\n";
  EXPECT_EQ(only(lint_as("src/x/x.cpp", swallow), "no-swallowed-exception").line, 4u);
  // Rethrowing or capturing for later rethrow is sanctioned.
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "void f() {\n  try {\n    g();\n  } catch (...) {\n    throw;\n  }\n}\n"),
      "no-swallowed-exception"));
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "void f() {\n  try {\n    g();\n  } catch (...) {\n"
              "    err = std::current_exception();\n  }\n}\n"),
      "no-swallowed-exception"));
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "void f(std::exception_ptr e) {\n  try {\n    g();\n  } catch (...) {\n"
              "    std::rethrow_exception(e);\n  }\n}\n"),
      "no-swallowed-exception"));
  // Typed handlers state what they expect and may absorb it.
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "void f() {\n  try {\n    g();\n  } catch (const std::exception& e) {\n"
              "    note(e);\n  }\n}\n"),
      "no-swallowed-exception"));
  // Library-only: tests and benches may swallow freely (EXPECT_THROW et al).
  EXPECT_FALSE(has_rule(lint_as("tests/x_test.cpp", swallow), "no-swallowed-exception"));
  // Nested braces inside the handler do not confuse the matcher.
  EXPECT_TRUE(has_rule(
      lint_as("src/x/x.cpp",
              "void f() {\n  try {\n    g();\n  } catch (...) {\n"
              "    if (q) {\n      count++;\n    }\n  }\n}\n"),
      "no-swallowed-exception"));
  // The escape hatch works like every other rule's.
  EXPECT_FALSE(has_rule(
      lint_as("src/x/x.cpp",
              "void f() {\n  try {\n    g();\n"
              "  } catch (...) {  // stune-lint: allow(no-swallowed-exception)\n"
              "    count++;\n  }\n}\n"),
      "no-swallowed-exception"));
}

// ---------------------------------------------------------------------------
// fix_include_what_you_use (--fix mode): golden before/after fixtures
// ---------------------------------------------------------------------------

TEST(LintFix, InsertsAfterLastExistingInclude) {
  const std::string before =
      "#pragma once\n"
      "#include <memory>\n"
      "#include <vector>\n"
      "\n"
      "std::vector<std::string> names(std::unique_ptr<int> p);\n";
  const auto fix = fix_include_what_you_use(before);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->added_headers, (std::vector<std::string>{"string"}));
  EXPECT_EQ(fix->fixed,
            "#pragma once\n"
            "#include <memory>\n"
            "#include <vector>\n"
            "#include <string>\n"
            "\n"
            "std::vector<std::string> names(std::unique_ptr<int> p);\n");
  // The fixed file is clean: applying the fix twice is a no-op.
  EXPECT_FALSE(fix_include_what_you_use(fix->fixed).has_value());
}

TEST(LintFix, InsertsAfterPragmaOnceWhenNoIncludesExist) {
  const std::string before =
      "#pragma once\n"
      "\n"
      "std::string greeting();\n";
  const auto fix = fix_include_what_you_use(before);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->fixed,
            "#pragma once\n"
            "#include <string>\n"
            "\n"
            "std::string greeting();\n");
}

TEST(LintFix, InsertsAtTopOfBareFile) {
  const auto fix = fix_include_what_you_use("std::string s;\n");
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->fixed, "#include <string>\nstd::string s;\n");
}

TEST(LintFix, AddsEveryMissingHeaderOnceInSortedOrder) {
  const std::string before =
      "#include <cstddef>\n"
      "std::vector<std::string> v;\n"
      "std::string extra;\n"
      "std::atomic<std::size_t> n;\n";
  const auto fix = fix_include_what_you_use(before);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->added_headers,
            (std::vector<std::string>{"atomic", "string", "vector"}));
  EXPECT_EQ(fix->fixed,
            "#include <cstddef>\n"
            "#include <atomic>\n"
            "#include <string>\n"
            "#include <vector>\n"
            "std::vector<std::string> v;\n"
            "std::string extra;\n"
            "std::atomic<std::size_t> n;\n");
}

TEST(LintFix, CleanFileNeedsNoFix) {
  EXPECT_FALSE(fix_include_what_you_use("#include <string>\nstd::string s;\n")
                   .has_value());
  EXPECT_FALSE(fix_include_what_you_use("int plain = 0;\n").has_value());
}

TEST(LintFix, SymbolsInsideCommentsAndLiteralsDoNotTriggerAFix) {
  EXPECT_FALSE(
      fix_include_what_you_use("// std::vector\nconst char* s = \"std::string\";\n")
          .has_value());
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(LintSuppress, AllowExemptsThatRuleOnThatLine) {
  const std::string src =
      "int a = rand();  // stune-lint: allow(no-unseeded-rng)\n"
      "int b = rand();\n";
  const auto vs = lint_as("src/x/x.cpp", src);
  EXPECT_EQ(only(vs, "no-unseeded-rng").line, 2u);
}

TEST(LintSuppress, AllowListAndWildcard) {
  EXPECT_TRUE(lint_as("src/x/x.cpp",
                      "int a = rand(); std::cout << a;  "
                      "// stune-lint: allow(no-unseeded-rng, no-stdout, include-what-you-use)\n")
                  .empty());
  EXPECT_TRUE(lint_as("src/x/x.cpp",
                      "int a = rand(); std::cout << a;  // stune-lint: allow(*)\n")
                  .empty());
}

TEST(LintSuppress, AllowDoesNotCoverOtherRules) {
  const auto vs = lint_as(
      "src/x/x.cpp", "int a = rand();  // stune-lint: allow(no-stdout)\n");
  EXPECT_TRUE(has_rule(vs, "no-unseeded-rng"));
}

// ---------------------------------------------------------------------------
// Output formats and ordering
// ---------------------------------------------------------------------------

TEST(LintOutput, ViolationsSortedByFileThenLine) {
  const auto vs = lint_as("src/x/x.cpp",
                          "void f(std::mutex& m) {\n  m.unlock();\n  m.lock();\n}\n");
  ASSERT_GE(vs.size(), 2u);
  for (std::size_t i = 1; i < vs.size(); ++i) {
    EXPECT_LE(vs[i - 1].line, vs[i].line);
  }
}

TEST(LintOutput, TextFormat) {
  const std::vector<Violation> vs = {{"src/a.cpp", 3, "no-stdout", "msg"}};
  const std::string text = format_text(vs, 7);
  EXPECT_NE(text.find("src/a.cpp:3: [no-stdout] msg"), std::string::npos);
  EXPECT_NE(text.find("stune_lint: scanned 7 files, 1 violation"), std::string::npos);
  // Other tools reuse the formatter under their own name.
  const std::string as_analyze = format_text(vs, 7, "stune_analyze");
  EXPECT_NE(as_analyze.find("stune_analyze: scanned 7 files"), std::string::npos);
}

TEST(LintOutput, JsonShape) {
  const std::vector<Violation> vs = {
      {"src/a.cpp", 3, "no-stdout", "say \"hi\""},
      {"src/b.hpp", 1, "pragma-once", "header does not use #pragma once"},
  };
  const std::string json = format_json(vs, 9);
  EXPECT_NE(json.find("\"files_scanned\": 9"), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"pragma-once\""), std::string::npos);
  // Quotes in messages are escaped.
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
  // Balanced braces/brackets at top level.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(LintOutput, JsonEmptyViolations) {
  const std::string json = format_json({}, 4);
  EXPECT_NE(json.find("\"violation_count\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": []"), std::string::npos);
}

TEST(LintRules, CatalogueListsNineRules) {
  EXPECT_EQ(rule_ids().size(), 9u);
}

}  // namespace
}  // namespace stune::lint
