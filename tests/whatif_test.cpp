#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "disc/whatif.hpp"
#include "simcore/rng.hpp"
#include "simcore/stats.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::disc {
namespace {

namespace k = config::spark;
using simcore::gib;

const cluster::Cluster& testbed() {
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

config::Configuration base_config() {
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorInstances, 16);
  c.set(k::kExecutorCores, 4);
  c.set(k::kExecutorMemoryGiB, 13.0);
  c.set(k::kDefaultParallelism, 256);
  c.set(k::kSerializer, 1.0);
  c.set(k::kDriverMemoryGiB, 8.0);
  return c;
}

struct Profiled {
  ExecutionReport report;
  config::SparkConf conf;
};

Profiled profile(const std::string& workload, simcore::Bytes input,
                 const config::Configuration& c) {
  const SparkSimulator sim(testbed());
  return Profiled{workload::execute(*workload::make_workload(workload), input, sim, c),
                  config::SparkConf(c)};
}

double actual_runtime(const std::string& workload, simcore::Bytes input,
                      const config::Configuration& c) {
  const SparkSimulator sim(testbed());
  return workload::execute(*workload::make_workload(workload), input, sim, c).runtime;
}

TEST(WhatIf, SelfPredictionIsClose) {
  // Predicting A from A's own profile only reshuffles observed numbers; it
  // must land near the observed runtime.
  const auto p = profile("sort", gib(16), base_config());
  ASSERT_TRUE(p.report.success);
  const WhatIfEngine engine(testbed());
  const auto pred = engine.predict(p.report, p.conf, p.conf);
  EXPECT_TRUE(pred.feasible);
  EXPECT_NEAR(pred.runtime, p.report.runtime, 0.35 * p.report.runtime);
}

TEST(WhatIf, PredictsDirectionOfSlotChanges) {
  const auto p = profile("wordcount", gib(16), base_config());
  const WhatIfEngine engine(testbed());
  auto fewer = base_config();
  fewer.set(k::kExecutorInstances, 2);
  fewer.set(k::kExecutorCores, 1);
  const auto pred = engine.predict(p.report, p.conf, config::SparkConf(fewer));
  // 2 slots instead of 64: predicted much slower.
  EXPECT_GT(pred.runtime, p.report.runtime * 4.0);
}

TEST(WhatIf, PredictsSerializerEffectDirection) {
  const auto p = profile("sort", gib(16), base_config());  // kryo
  const WhatIfEngine engine(testbed());
  auto java = base_config();
  java.set(k::kSerializer, 0.0);
  const auto pred = engine.predict(p.report, p.conf, config::SparkConf(java));
  EXPECT_GT(pred.runtime, p.report.runtime);
}

TEST(WhatIf, FlagsInfeasibleTargets) {
  const auto p = profile("sort", gib(8), base_config());
  const WhatIfEngine engine(testbed());
  auto bad = base_config();
  bad.set(k::kExecutorMemoryGiB, 48.0);
  bad.set(k::kMemoryOverheadFactor, 0.25);
  const WhatIfEngine small_engine(cluster::Cluster::from_spec({"c5.large", 2}));
  const auto small_profile = [&] {
    auto c = config::spark_space()->default_config();
    const SparkSimulator sim(cluster::Cluster::from_spec({"c5.large", 2}));
    return workload::execute(*workload::make_workload("wordcount"), gib(1), sim, c);
  }();
  const auto pred = small_engine.predict(small_profile, config::SparkConf(base_config()),
                                         config::SparkConf(bad));
  EXPECT_FALSE(pred.feasible);
}

TEST(WhatIf, PredictsOomForAbsurdMemoryStarvation) {
  const auto p = profile("sort", gib(64), base_config());
  ASSERT_TRUE(p.report.success);
  const WhatIfEngine engine(testbed());
  auto starved = base_config();
  starved.set(k::kExecutorMemoryGiB, 1.0);
  starved.set(k::kMemoryFraction, 0.3);
  starved.set(k::kDefaultParallelism, 8);
  const auto pred = engine.predict(p.report, p.conf, config::SparkConf(starved));
  EXPECT_TRUE(pred.predicted_oom);
}

TEST(WhatIf, RefusesFailedProfiles) {
  auto fatal = config::spark_space()->default_config();
  fatal.set(k::kExecutorInstances, 8);
  fatal.set(k::kExecutorCores, 8);
  fatal.set(k::kMemoryFraction, 0.3);
  fatal.set(k::kDefaultParallelism, 8);
  const auto p = profile("sort", gib(64), fatal);
  ASSERT_FALSE(p.report.success);
  const WhatIfEngine engine(testbed());
  const auto pred = engine.predict(p.report, p.conf, config::SparkConf(base_config()));
  EXPECT_FALSE(pred.feasible);
}

TEST(WhatIf, RanksConfigurationsUsefully) {
  // Starfish's job: given one profile, order candidate configurations.
  // Require rank correlation with ground truth over a random candidate set.
  const auto p = profile("sort", gib(16), base_config());
  const WhatIfEngine engine(testbed());
  const auto space = config::spark_space();
  simcore::Rng rng(3);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 30; ++i) {
    const auto c = space->sample(rng);
    const auto pred = engine.predict(p.report, p.conf, config::SparkConf(c));
    if (!pred.feasible || pred.predicted_oom) continue;
    const double truth = actual_runtime("sort", gib(16), c);
    predicted.push_back(pred.runtime);
    actual.push_back(truth);
  }
  ASSERT_GT(predicted.size(), 10u);
  EXPECT_GT(simcore::pearson(predicted, actual), 0.5);
}

TEST(WhatIf, AccuracyDegradesFarFromTheProfiledConfig) {
  // The paper's Starfish criticism: what-if accuracy suffers under
  // configurations unlike the profiled one. Compare relative error for
  // near neighbours vs. far-away random configs.
  const auto p = profile("bayes", gib(16), base_config());
  const WhatIfEngine engine(testbed());
  const auto space = config::spark_space();
  simcore::Rng rng(7);
  auto mean_error = [&](bool near) {
    double total = 0.0;
    int n = 0;
    for (int i = 0; i < 40; ++i) {
      const auto c = near ? space->neighbor(base_config(), 0.05, 1, rng) : space->sample(rng);
      const auto pred = engine.predict(p.report, p.conf, config::SparkConf(c));
      if (!pred.feasible || pred.predicted_oom) continue;
      const double truth = actual_runtime("bayes", gib(16), c);
      total += std::abs(pred.runtime - truth) / truth;
      ++n;
    }
    return n > 0 ? total / n : 1e9;
  };
  EXPECT_LT(mean_error(true), mean_error(false));
}

}  // namespace
}  // namespace stune::disc
