#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::transfer {
namespace {

namespace k = config::spark;
using simcore::gib;

disc::ExecutionReport run(const std::string& name, simcore::Bytes input) {
  auto conf = config::spark_space()->default_config();
  conf.set(k::kExecutorInstances, 16);
  conf.set(k::kExecutorCores, 4);
  conf.set(k::kExecutorMemoryGiB, 13.0);
  conf.set(k::kDefaultParallelism, 256);
  conf.set(k::kDriverMemoryGiB, 8.0);
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  return workload::execute(*workload::make_workload(name), input, sim, conf);
}

TEST(Signature, SameWorkloadDifferentSizesAreSimilar) {
  const auto s1 = characterize(run("wordcount", gib(4)));
  const auto s2 = characterize(run("wordcount", gib(16)));
  EXPECT_GT(similarity(s1, s2), 0.6);
}

TEST(Signature, DifferentWorkloadProfilesAreDistant) {
  const auto wc = characterize(run("wordcount", gib(8)));
  const auto pr = characterize(run("pagerank", gib(8)));
  const auto so = characterize(run("sort", gib(8)));
  EXPECT_LT(similarity(wc, pr), similarity(wc, wc));
  // Wordcount (scan) must be farther from sort (shuffle) than sort is from
  // itself at another size.
  const auto so2 = characterize(run("sort", gib(16)));
  EXPECT_GT(similarity(so, so2), similarity(so, wc));
}

TEST(Signature, ComponentsAreScaleFreeFractions) {
  const auto s = characterize(run("bayes", gib(8)));
  EXPECT_GE(s.cpu_fraction, 0.0);
  EXPECT_LE(s.cpu_fraction, 1.0);
  EXPECT_GE(s.cache_pressure, 0.0);
  EXPECT_LE(s.cache_pressure, 1.0);
  EXPECT_GE(s.shuffle_per_input, 0.0);
}

TEST(Signature, ShuffleHeavyWorkloadScoresHighShuffleRatio) {
  const auto so = characterize(run("sort", gib(8)));
  const auto wc = characterize(run("wordcount", gib(8)));
  EXPECT_GT(so.shuffle_per_input, wc.shuffle_per_input * 3.0);
}

TEST(Signature, DescribeAndVectorAgree) {
  const auto s = characterize(run("kmeans", gib(4)));
  EXPECT_EQ(s.as_vector().size(), Signature::kDims);
  EXPECT_FALSE(s.describe().empty());
}

TEST(Distance, IdentityAndSymmetry) {
  const auto a = characterize(run("join", gib(4)));
  const auto b = characterize(run("sort", gib(4)));
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
  EXPECT_NEAR(similarity(a, a), 1.0, 1e-12);
}

// -- warm-start selection ----------------------------------------------------------

DonorObservation donor(const Signature& sig, double runtime, double a_value) {
  DonorObservation d;
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorMemoryGiB, a_value);
  d.observation.config = c;
  d.observation.runtime = runtime;
  d.observation.objective = runtime;
  d.signature = sig;
  return d;
}

TEST(WarmStart, FiltersByNegativeTransferGuard) {
  const auto target = characterize(run("sort", gib(8)));
  const auto similar = characterize(run("sort", gib(16)));
  const auto dissimilar = characterize(run("wordcount", gib(8)));

  const std::vector<DonorObservation> donors = {donor(similar, 100.0, 2.0),
                                                donor(dissimilar, 50.0, 3.0)};
  TransferPolicy policy;
  policy.min_similarity = 0.7;
  const auto picked = select_warm_start(target, donors, policy);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_DOUBLE_EQ(picked[0].runtime, 100.0);
}

TEST(WarmStart, RespectsMaxObservations) {
  const auto target = characterize(run("sort", gib(8)));
  std::vector<DonorObservation> donors;
  for (int i = 0; i < 30; ++i) {
    donors.push_back(donor(target, 100.0 + i, 1.0 + 0.5 * i));
  }
  TransferPolicy policy;
  policy.max_observations = 5;
  EXPECT_EQ(select_warm_start(target, donors, policy).size(), 5u);
}

TEST(WarmStart, DeduplicatesIdenticalConfigs) {
  const auto target = characterize(run("sort", gib(8)));
  const std::vector<DonorObservation> donors = {donor(target, 100.0, 2.0),
                                                donor(target, 90.0, 2.0)};
  EXPECT_EQ(select_warm_start(target, donors).size(), 1u);
}

TEST(WarmStart, SkipsFailedDonorsByDefault) {
  const auto target = characterize(run("sort", gib(8)));
  auto failed = donor(target, 10.0, 2.0);
  failed.observation.failed = true;
  EXPECT_TRUE(select_warm_start(target, {failed}).empty());
}

TEST(WarmStart, EmptyDonorsGiveEmptyResult) {
  const auto target = characterize(run("sort", gib(8)));
  EXPECT_TRUE(select_warm_start(target, {}).empty());
}

}  // namespace
}  // namespace stune::transfer
