// The ask/tell contract: the TrialExecutor owns evaluation, tuners only
// suggest and observe. The load-bearing property is that the worker count
// is invisible — observations commit in suggestion order, so every tuner's
// decision stream is a pure function of its committed history and jobs=N
// reproduces jobs=1 bitwise.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simcore/rng.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {
namespace {

std::shared_ptr<const config::ConfigSpace> synthetic_space() {
  static const auto space = [] {
    std::vector<config::ParamDef> params;
    params.push_back(config::ParamDef::real("a", 0.0, 1.0, 0.1));
    params.push_back(config::ParamDef::real("b", 0.0, 1.0, 0.9));
    params.push_back(config::ParamDef::integer("c", 0, 100, 0));
    params.push_back(config::ParamDef::boolean("flag", false));
    params.push_back(config::ParamDef::categorical("mode", {"x", "y", "z"}, 0));
    return config::ConfigSpace::create(std::move(params));
  }();
  return space;
}

/// Thread-safe bowl objective; crashes in a configuration-determined band
/// so failure paths are exercised identically at every jobs count.
Objective bowl(bool with_failures = false) {
  return [with_failures](const config::Configuration& c) -> EvalOutcome {
    const double a = c.get("a"), b = c.get("b");
    const double cc = c.get("c") / 100.0;
    double v = 1.0 + 40.0 * ((a - 0.7) * (a - 0.7) + (b - 0.3) * (b - 0.3) +
                             (cc - 0.4) * (cc - 0.4));
    if (!c.get_bool("flag")) v += 3.0;
    if (c.get_label("mode") != "y") v += 2.0;
    const bool failed = with_failures && a > 0.85 && b > 0.85;
    return {v, failed};
  };
}

TuneResult run_with_jobs(const std::string& tuner_name, std::size_t jobs, bool with_failures) {
  TuneOptions opts;
  opts.budget = 40;
  opts.seed = 7;
  TrialExecutor executor(ExecutorOptions{.jobs = jobs});
  const auto tuner = make_tuner(tuner_name);
  return executor.run(*tuner, synthetic_space(), bowl(with_failures), opts);
}

class ExecutorDeterminism : public ::testing::TestWithParam<std::string> {};

// The tentpole guarantee: for EVERY tuner, evaluating batches on 8 threads
// yields the same TuneResult, observation for observation, as 1 thread.
TEST_P(ExecutorDeterminism, JobsCountNeverChangesResults) {
  for (const bool with_failures : {false, true}) {
    const TuneResult serial = run_with_jobs(GetParam(), 1, with_failures);
    const TuneResult parallel = run_with_jobs(GetParam(), 8, with_failures);

    ASSERT_EQ(serial.history.size(), parallel.history.size());
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      EXPECT_EQ(serial.history[i].config.values(), parallel.history[i].config.values())
          << "trial " << i;
      EXPECT_EQ(serial.history[i].runtime, parallel.history[i].runtime) << "trial " << i;
      EXPECT_EQ(serial.history[i].failed, parallel.history[i].failed) << "trial " << i;
      EXPECT_EQ(serial.history[i].objective, parallel.history[i].objective) << "trial " << i;
    }
    EXPECT_EQ(serial.best_curve(), parallel.best_curve());
    EXPECT_EQ(serial.best.values(), parallel.best.values());
    EXPECT_EQ(serial.best_runtime, parallel.best_runtime);
    EXPECT_EQ(serial.found_feasible, parallel.found_feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTuners, ExecutorDeterminism, ::testing::ValuesIn(tuner_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

/// The bowl with deterministic weather: a slice of configurations infra-
/// faults on early attempts (clearing after a retry), another slice
/// config-faults outright. Pure in (config, attempt), so every jobs count
/// sees the same storms.
TrialObjective chaotic_bowl() {
  const Objective base = bowl(false);
  return [base](const config::Configuration& c, int attempt) -> EvalOutcome {
    EvalOutcome out = base(c);
    const std::uint64_t roll = simcore::hash_combine(c.fingerprint(), 0xBADC10ULL);
    if (roll % 5 == 0 && attempt < static_cast<int>(roll % 3)) {
      out.failed = true;
      out.fault = FaultClass::kInfra;
    } else if (roll % 11 == 0) {
      out.failed = true;  // config fault (left unclassified on purpose)
    }
    return out;
  };
}

class ExecutorChaosDeterminism : public ::testing::TestWithParam<std::string> {};

// Under fault injection plus retry/backoff, the worker count must STILL be
// invisible: histories (including fault classes, attempt counts and backoff
// charges) and the aggregate resilience stats match bitwise.
TEST_P(ExecutorChaosDeterminism, JobsCountNeverChangesResultsUnderChaos) {
  auto run_chaotic = [&](std::size_t jobs) {
    TuneOptions opts;
    opts.budget = 40;
    opts.seed = 7;
    opts.retry.max_attempts = 3;
    TrialExecutor executor(ExecutorOptions{.jobs = jobs});
    const auto tuner = make_tuner(GetParam());
    return executor.run(*tuner, synthetic_space(), chaotic_bowl(), opts);
  };
  const TuneResult serial = run_chaotic(1);
  const TuneResult parallel = run_chaotic(8);

  ASSERT_EQ(serial.history.size(), parallel.history.size());
  bool saw_infra = false, saw_retry = false;
  for (std::size_t i = 0; i < serial.history.size(); ++i) {
    const Observation& s = serial.history[i];
    const Observation& p = parallel.history[i];
    EXPECT_EQ(s.config.values(), p.config.values()) << "trial " << i;
    EXPECT_EQ(s.runtime, p.runtime) << "trial " << i;
    EXPECT_EQ(s.failed, p.failed) << "trial " << i;
    EXPECT_EQ(s.fault, p.fault) << "trial " << i;
    EXPECT_EQ(s.attempts, p.attempts) << "trial " << i;
    EXPECT_EQ(s.backoff_seconds, p.backoff_seconds) << "trial " << i;
    EXPECT_EQ(s.objective, p.objective) << "trial " << i;
    saw_infra = saw_infra || s.fault == FaultClass::kInfra;
    saw_retry = saw_retry || s.attempts > 1;
  }
  EXPECT_TRUE(serial.resilience == parallel.resilience);
  EXPECT_EQ(serial.best.values(), parallel.best.values());
  EXPECT_EQ(serial.best_runtime, parallel.best_runtime);
  EXPECT_EQ(serial.found_feasible, parallel.found_feasible);
  // The fixture must actually exercise the machinery it claims to cover.
  EXPECT_TRUE(saw_retry) << "chaotic_bowl produced no retries at budget 40";
}

INSTANTIATE_TEST_SUITE_P(AllTuners, ExecutorChaosDeterminism,
                         ::testing::ValuesIn(tuner_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

// A tuner that emits one distinctive batch and checks observation order.
class OrderProbeTuner final : public Tuner {
 public:
  std::string name() const override { return "order-probe"; }

  void begin(std::shared_ptr<const config::ConfigSpace> space, const TuneOptions&) override {
    space_ = std::move(space);
    emitted_ = 0;
  }

  std::vector<config::Configuration> suggest(std::size_t max_batch) override {
    std::vector<config::Configuration> batch;
    for (std::size_t i = 0; i < max_batch; ++i) {
      auto c = space_->default_config();
      c.set(2, static_cast<double>(emitted_++));  // "c" tags suggestion order
      batch.push_back(std::move(c));
    }
    return batch;
  }

  void observe(const std::vector<Observation>& trials) override {
    for (const auto& o : trials) observed_.push_back(o.config.get("c"));
  }

  const std::vector<double>& observed() const { return observed_; }

 private:
  std::shared_ptr<const config::ConfigSpace> space_;
  std::size_t emitted_ = 0;
  std::vector<double> observed_;
};

// Trials that finish out of order (later suggestions sleep less) must still
// be committed and observed in suggestion order.
TEST(TrialExecutor, CommitsInSuggestionOrderDespiteCompletionOrder) {
  OrderProbeTuner tuner;
  Objective obj = [](const config::Configuration& c) -> EvalOutcome {
    const auto tag = static_cast<int>(c.get("c"));
    std::this_thread::sleep_for(std::chrono::milliseconds((16 - tag % 16) * 2));
    return {1.0 + tag, false};
  };
  TuneOptions opts;
  opts.budget = 16;
  TrialExecutor executor(ExecutorOptions{.jobs = 8});
  const auto result = executor.run(tuner, synthetic_space(), obj, opts);

  ASSERT_EQ(tuner.observed().size(), 16u);
  for (std::size_t i = 0; i < tuner.observed().size(); ++i) {
    EXPECT_EQ(tuner.observed()[i], static_cast<double>(i));
  }
  ASSERT_EQ(result.history.size(), 16u);
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(result.history[i].runtime, 1.0 + static_cast<double>(i));
  }
}

// The commit hook fires once per observation, in order, on the driver.
TEST(TrialExecutor, CommitHookSeesEveryObservationInOrder) {
  std::vector<double> seen;
  TrialExecutor::CommitHook hook = [&](const Observation& o) { seen.push_back(o.objective); };
  TuneOptions opts;
  opts.budget = 20;
  opts.seed = 3;
  TrialExecutor executor(ExecutorOptions{.jobs = 4});
  RandomSearchTuner tuner;
  const auto result = executor.run(tuner, synthetic_space(), bowl(), opts, hook);
  ASSERT_EQ(seen.size(), result.history.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], result.history[i].objective);
  }
}

// An objective that throws must not deadlock or leak threads; the error
// surfaces to the caller.
TEST(TrialExecutor, ObjectiveExceptionPropagates) {
  Objective obj = [](const config::Configuration&) -> EvalOutcome {
    throw std::runtime_error("objective blew up");
  };
  TuneOptions opts;
  opts.budget = 8;
  TrialExecutor executor(ExecutorOptions{.jobs = 4});
  RandomSearchTuner tuner;
  EXPECT_THROW(executor.run(tuner, synthetic_space(), obj, opts), std::runtime_error);
}

// Serial-adapter tuners must survive an early teardown: an executor run
// that throws mid-session leaves the body thread parked; the next begin()
// (or destruction) must cancel it cleanly. This is the hang-regression test
// for SequentialAdapter.
TEST(TrialExecutor, SerialAdapterSurvivesAbortedRunAndReuse) {
  HillClimbTuner tuner;
  int calls = 0;
  Objective flaky = [&calls](const config::Configuration& c) -> EvalOutcome {
    if (++calls == 5) throw std::runtime_error("transient");
    return {c.get("a") + 1.0, false};
  };
  TuneOptions opts;
  opts.budget = 12;
  TrialExecutor executor(ExecutorOptions{.jobs = 1});
  EXPECT_THROW(executor.run(tuner, synthetic_space(), flaky, opts), std::runtime_error);

  // Reuse after the aborted session must restart cleanly and complete.
  const auto result = executor.run(tuner, synthetic_space(), bowl(), opts);
  EXPECT_EQ(result.history.size(), opts.budget);
  EXPECT_TRUE(result.found_feasible);
}

TEST(TrialExecutor, JobsZeroMeansHardwareConcurrency) {
  TrialExecutor executor(ExecutorOptions{.jobs = 0});
  EXPECT_EQ(executor.jobs(), simcore::ThreadPool::hardware_threads());
  EXPECT_GE(executor.jobs(), 1u);
}

// Regression: the shared executor used to create its worker pool lazily with
// no synchronization, so two sessions starting together could race the
// construction and interleave their batches on one pool. Sessions are now
// serialized under the executor mutex: running two sessions concurrently on
// one executor must give exactly the results each session gets alone.
TEST(TrialExecutor, SharedExecutorSerializesConcurrentSessions) {
  TrialExecutor shared(ExecutorOptions{.jobs = 2});
  auto session = [&](std::uint64_t seed) {
    TuneOptions opts;
    opts.budget = 24;
    opts.seed = seed;
    const auto tuner = make_tuner("bayesopt");
    return shared.run(*tuner, synthetic_space(), bowl(true), opts);
  };
  const TuneResult solo_a = session(3);
  const TuneResult solo_b = session(11);

  for (int round = 0; round < 4; ++round) {
    TuneResult a, b;
    std::thread ta([&] { a = session(3); });
    std::thread tb([&] { b = session(11); });
    ta.join();
    tb.join();
    ASSERT_EQ(a.history.size(), solo_a.history.size());
    ASSERT_EQ(b.history.size(), solo_b.history.size());
    for (std::size_t i = 0; i < a.history.size(); ++i) {
      EXPECT_EQ(a.history[i].config.values(), solo_a.history[i].config.values());
      EXPECT_EQ(a.history[i].objective, solo_a.history[i].objective);
    }
    EXPECT_EQ(a.best_runtime, solo_a.best_runtime);
    EXPECT_EQ(b.best_runtime, solo_b.best_runtime);
    EXPECT_EQ(b.best.values(), solo_b.best.values());
  }
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  simcore::ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&done] { done.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, ExceptionsSurfaceThroughFutures) {
  simcore::ThreadPool pool(2);
  auto f = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

}  // namespace
}  // namespace stune::tuning
