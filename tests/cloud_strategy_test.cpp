// Stage-1 strategy tests: CherryPick-BO vs Ernest vs random (paper §II-A,
// including "Ernest ... has poor adaptivity to other types of workloads").
#include <gtest/gtest.h>

#include <limits>

#include "service/cloud_tuner.hpp"
#include "workload/execute.hpp"

namespace stune::service {
namespace {

using simcore::gib;

double runtime_on(const workload::Workload& w, const cluster::ClusterSpec& spec,
                  simcore::Bytes input) {
  const auto cl = cluster::Cluster::from_spec(spec);
  const disc::SparkSimulator sim(cl);
  const auto r = workload::execute(w, input, sim, provider_auto_config(cl));
  return r.success ? r.runtime : std::numeric_limits<double>::infinity();
}

CloudChoice choose_with(CloudStrategy strategy, const workload::Workload& w,
                        simcore::Bytes input, CloudObjective objective) {
  CloudTunerOptions opts;
  opts.strategy = strategy;
  opts.objective = objective;
  opts.budget = 12;
  opts.seed = 3;
  return CloudTuner(opts).choose(w, input);
}

TEST(CloudStrategy, AllStrategiesReturnRunnableClusters) {
  const auto w = workload::make_workload("kmeans");
  for (const auto strategy :
       {CloudStrategy::kBayesOpt, CloudStrategy::kErnest, CloudStrategy::kRandom}) {
    const auto choice = choose_with(strategy, *w, gib(8), CloudObjective::kRuntime);
    EXPECT_NO_THROW(cluster::find_instance(choice.spec.instance)) << to_string(strategy);
    EXPECT_GT(choice.runtime, 0.0) << to_string(strategy);
    EXPECT_GT(choice.trials, 0u) << to_string(strategy);
  }
}

TEST(CloudStrategy, ErnestSuitsCleanScaleOutWorkloads) {
  // kmeans is compute dominated: t(m) ~ w0 + w1 d/m — the Ernest basis fits
  // and its analytic pick should rival the search-based ones.
  const auto w = workload::make_workload("kmeans");
  const auto ernest = choose_with(CloudStrategy::kErnest, *w, gib(16), CloudObjective::kRuntime);
  const auto bo = choose_with(CloudStrategy::kBayesOpt, *w, gib(16), CloudObjective::kRuntime);
  const double ernest_rt = runtime_on(*w, ernest.spec, gib(16));
  const double bo_rt = runtime_on(*w, bo.spec, gib(16));
  EXPECT_LT(ernest_rt, bo_rt * 1.5);
}

TEST(CloudStrategy, ErnestAdaptsPoorlyToCacheCliffWorkloads) {
  // pagerank's runtime has a memory cliff (cache fits / doesn't fit) that
  // the smooth Ernest basis cannot express — the paper's §II-A criticism.
  // BO, which observes actual runtimes everywhere it probes, should find a
  // cluster at least as good.
  const auto w = workload::make_workload("pagerank");
  const auto ernest = choose_with(CloudStrategy::kErnest, *w, gib(32), CloudObjective::kRuntime);
  const auto bo = choose_with(CloudStrategy::kBayesOpt, *w, gib(32), CloudObjective::kRuntime);
  const double ernest_rt = runtime_on(*w, ernest.spec, gib(32));
  const double bo_rt = runtime_on(*w, bo.spec, gib(32));
  EXPECT_LE(bo_rt, ernest_rt * 1.05);
}

TEST(CloudStrategy, ToStringCoversAll) {
  EXPECT_EQ(to_string(CloudStrategy::kBayesOpt), "bayesopt");
  EXPECT_EQ(to_string(CloudStrategy::kErnest), "ernest");
  EXPECT_EQ(to_string(CloudStrategy::kRandom), "random");
}

TEST(CloudStrategy, DeterministicGivenSeed) {
  const auto w = workload::make_workload("sort");
  const auto a = choose_with(CloudStrategy::kRandom, *w, gib(8), CloudObjective::kCost);
  const auto b = choose_with(CloudStrategy::kRandom, *w, gib(8), CloudObjective::kCost);
  EXPECT_EQ(a.spec, b.spec);
}

}  // namespace
}  // namespace stune::service
