#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "simcore/rng.hpp"

namespace stune::linalg {
namespace {

Matrix random_spd(std::size_t n, simcore::Rng& rng) {
  // A^T A + n I is symmetric positive definite.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd = a.gram();
  spd.add_to_diagonal(static_cast<double>(n));
  return spd;
}

TEST(Matrix, MatvecAndTranspose) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  const Vector y = m.matvec({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const Vector z = m.matvec_transposed({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, GramEqualsExplicitProduct) {
  simcore::Rng rng(3);
  Matrix m(4, 3);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) m(i, j) = rng.normal();
  const Matrix g = m.gram();
  const Matrix g2 = m.transposed().multiply(m);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(g(i, j), g2(i, j), 1e-12);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
}

TEST(VectorOps, DotNormAxpy) {
  Vector a = {1.0, 2.0, 3.0};
  const Vector b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  axpy(2.0, b, a);
  EXPECT_DOUBLE_EQ(a[0], 9.0);
  EXPECT_DOUBLE_EQ(subtract(a, b)[1], 7.0);
  EXPECT_DOUBLE_EQ(scaled(b, 0.5)[2], 3.0);
}

TEST(Cholesky, ReconstructsMatrix) {
  simcore::Rng rng(7);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky(a);
  const Matrix llt = l.multiply(l.transposed());
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = 0; j < 6; ++j) EXPECT_NEAR(llt(i, j), a(i, j), 1e-9);
}

TEST(Cholesky, LowerTriangular) {
  simcore::Rng rng(7);
  const Matrix l = cholesky(random_spd(5, rng));
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(m), std::runtime_error);
}

TEST(CholeskySolve, SolvesLinearSystem) {
  simcore::Rng rng(11);
  const Matrix a = random_spd(8, rng);
  Vector x_true(8);
  for (auto& v : x_true) v = rng.normal();
  const Vector b = a.matvec(x_true);
  const Vector x = cholesky_solve(cholesky(a), b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(TriangularSolves, ForwardBackwardRoundtrip) {
  simcore::Rng rng(13);
  const Matrix l = cholesky(random_spd(5, rng));
  Vector y_true(5);
  for (auto& v : y_true) v = rng.normal();
  const Vector b = l.matvec(y_true);
  const Vector y = solve_lower(l, b);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(y[i], y_true[i], 1e-10);
  // L^T x = y roundtrip
  const Vector bt = l.transposed().matvec(y_true);
  const Vector x = solve_lower_transposed(l, bt);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(x[i], y_true[i], 1e-10);
}

TEST(Ridge, RecoversLinearModelAtSmallLambda) {
  simcore::Rng rng(17);
  const std::size_t n = 60, d = 4;
  Matrix x(n, d);
  Vector w_true = {2.0, -1.0, 0.5, 3.0};
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.normal();
      acc += x(i, j) * w_true[j];
    }
    y[i] = acc;
  }
  const Vector w = ridge_solve(x, y, 1e-8);
  for (std::size_t j = 0; j < d; ++j) EXPECT_NEAR(w[j], w_true[j], 1e-5);
}

TEST(Ridge, LargeLambdaShrinksTowardZero) {
  simcore::Rng rng(19);
  Matrix x(20, 2);
  Vector y(20);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = 3.0 * x(i, 0);
  }
  const Vector small = ridge_solve(x, y, 1e-6);
  const Vector big = ridge_solve(x, y, 1e6);
  EXPECT_LT(std::abs(big[0]), std::abs(small[0]) * 0.01);
}

TEST(Nnls, ExactRecoveryOfNonnegativeWeights) {
  simcore::Rng rng(23);
  const std::size_t n = 50;
  Matrix x(n, 3);
  const Vector w_true = {1.5, 0.0, 2.5};
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      x(i, j) = std::abs(rng.normal());
      acc += x(i, j) * w_true[j];
    }
    y[i] = acc;
  }
  const Vector w = nnls(x, y);
  EXPECT_NEAR(w[0], 1.5, 1e-4);
  EXPECT_NEAR(w[1], 0.0, 1e-4);
  EXPECT_NEAR(w[2], 2.5, 1e-4);
}

TEST(Nnls, ClampsNegativeComponents) {
  // y = -2 * x: best nonnegative weight is 0.
  Matrix x(10, 1);
  Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i + 1);
    y[i] = -2.0 * x(i, 0);
  }
  const Vector w = nnls(x, y);
  EXPECT_GE(w[0], 0.0);
  EXPECT_NEAR(w[0], 0.0, 1e-9);
}

}  // namespace
}  // namespace stune::linalg
