#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::disc {
namespace {

namespace k = config::spark;
using simcore::gib;

const cluster::Cluster& testbed() {
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

/// A reasonable configuration that uses the testbed well.
config::Configuration tuned_config() {
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorInstances, 16);
  c.set(k::kExecutorCores, 4);
  c.set(k::kExecutorMemoryGiB, 13.0);
  c.set(k::kDefaultParallelism, 256);
  c.set(k::kSerializer, 1.0);  // kryo
  c.set(k::kDriverMemoryGiB, 4.0);
  return c;
}

ExecutionReport run(const std::string& workload, simcore::Bytes input,
                    const config::Configuration& conf,
                    EngineOptions opts = {}) {
  const SparkSimulator sim(testbed(), opts);
  return workload::execute(*workload::make_workload(workload), input, sim, conf);
}

TEST(Engine, DeterministicForSameInputs) {
  const auto a = run("pagerank", gib(4), tuned_config());
  const auto b = run("pagerank", gib(4), tuned_config());
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.total_shuffle_read, b.total_shuffle_read);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.stages[i].duration, b.stages[i].duration);
  }
}

TEST(Engine, DifferentSeedsVaryMildly) {
  EngineOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const auto a = run("sort", gib(8), tuned_config(), o1);
  const auto b = run("sort", gib(8), tuned_config(), o2);
  EXPECT_NE(a.runtime, b.runtime);
  EXPECT_NEAR(a.runtime / b.runtime, 1.0, 0.3);
}

TEST(Engine, RuntimeGrowsWithInputSize) {
  // 8 GiB fills the 64 slots exactly once; 64 GiB needs 8 waves. Growth is
  // sublinear (the tail of the single wave is straggler-bound) but must be
  // clearly super-3x for an 8x input.
  const auto small = run("wordcount", gib(8), tuned_config());
  const auto big = run("wordcount", gib(64), tuned_config());
  ASSERT_TRUE(small.success);
  ASSERT_TRUE(big.success);
  EXPECT_GT(big.runtime, small.runtime * 3.0);
  EXPECT_LT(big.runtime, small.runtime * 10.0);
}

TEST(Engine, MoreSlotsHelpLargeScans) {
  auto two_slots = tuned_config();
  two_slots.set(k::kExecutorInstances, 2);
  two_slots.set(k::kExecutorCores, 1);
  const auto narrow = run("wordcount", gib(16), two_slots);
  const auto wide = run("wordcount", gib(16), tuned_config());
  ASSERT_TRUE(narrow.success);
  ASSERT_TRUE(wide.success);
  EXPECT_GT(narrow.runtime, wide.runtime * 4.0);
}

TEST(Engine, DefaultConfigIsFarFromTuned) {
  // The paper's §III-B claim territory: untouched defaults can be order(s)
  // of magnitude slower.
  const auto def = run("pagerank", gib(16), config::spark_space()->default_config());
  const auto tuned = run("pagerank", gib(16), tuned_config());
  ASSERT_TRUE(tuned.success);
  EXPECT_GT(def.runtime, tuned.runtime * 5.0);
}

TEST(Engine, ContentionSlowsExecution) {
  EngineOptions quiet, noisy;
  noisy.contention = cluster::ContentionParams::heavy();
  const auto a = run("sort", gib(8), tuned_config(), quiet);
  const auto b = run("sort", gib(8), tuned_config(), noisy);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_GT(b.runtime, a.runtime * 1.15);
}

TEST(Engine, SmallExecutorMemorySpills) {
  auto starved = tuned_config();
  starved.set(k::kExecutorMemoryGiB, 3.0);
  starved.set(k::kDefaultParallelism, 64);
  const auto r = run("sort", gib(32), starved);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.total_spilled, 0u);
  const auto roomy = run("sort", gib(32), tuned_config());
  EXPECT_LT(roomy.total_spilled, r.total_spilled);
}

TEST(Engine, SpillCostsTime) {
  auto starved = tuned_config();
  starved.set(k::kExecutorMemoryGiB, 3.0);
  starved.set(k::kDefaultParallelism, 64);
  const auto spilled = run("sort", gib(32), starved);
  const auto clean = run("sort", gib(32), tuned_config());
  ASSERT_TRUE(spilled.success);
  ASSERT_TRUE(clean.success);
  EXPECT_GT(spilled.runtime, clean.runtime);
}

TEST(Engine, ExtremeMemoryStarvationOoms) {
  // Tiny heap, tiny parallelism, giant aggregation working set per task.
  auto fatal = config::spark_space()->default_config();
  fatal.set(k::kExecutorInstances, 8);
  fatal.set(k::kExecutorCores, 8);
  fatal.set(k::kExecutorMemoryGiB, 1.0);
  fatal.set(k::kMemoryFraction, 0.3);
  fatal.set(k::kDefaultParallelism, 8);
  const auto r = run("sort", gib(64), fatal);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("OOM"), std::string::npos);
  EXPECT_GT(r.runtime, 0.0);  // failures still burn time (and money)
  EXPECT_GT(r.cost, 0.0);
}

TEST(Engine, OomRetriesBurnMonotonicTimeAndFailDeterministically) {
  // Adversarial retry coverage: when every task attempt OOMs, raising
  // spark.task.maxFailures only burns more time — success never comes, the
  // burned runtime is monotone in the attempt budget, and the failure path
  // is exactly as deterministic as the success path.
  auto fatal = config::spark_space()->default_config();
  fatal.set(k::kExecutorInstances, 8);
  fatal.set(k::kExecutorCores, 8);
  fatal.set(k::kExecutorMemoryGiB, 1.0);
  fatal.set(k::kMemoryFraction, 0.3);
  fatal.set(k::kDefaultParallelism, 8);
  double burned_so_far = 0.0;
  for (const int max_failures : {1, 2, 4, 8}) {
    fatal.set(k::kTaskMaxFailures, max_failures);
    const auto first = run("sort", gib(64), fatal);
    const auto second = run("sort", gib(64), fatal);
    ASSERT_FALSE(first.success) << "retries-all-fail must stay failed";
    EXPECT_NE(first.failure_reason.find("OOM"), std::string::npos);
    // Run-twice determinism on the failure path.
    EXPECT_DOUBLE_EQ(first.runtime, second.runtime);
    EXPECT_EQ(first.failure_reason, second.failure_reason);
    ASSERT_EQ(first.stages.size(), second.stages.size());
    for (std::size_t i = 0; i < first.stages.size(); ++i) {
      EXPECT_DOUBLE_EQ(first.stages[i].duration, second.stages[i].duration);
      EXPECT_EQ(first.stages[i].failed_tasks, second.stages[i].failed_tasks);
    }
    // More permitted attempts strictly burn more time (and money).
    EXPECT_GT(first.runtime, burned_so_far);
    burned_so_far = first.runtime;
  }
}

TEST(Engine, InfeasibleDeploymentFailsFast) {
  auto bad = tuned_config();
  bad.set(k::kExecutorMemoryGiB, 48.0);
  bad.set(k::kMemoryOverheadFactor, 0.25);
  const auto small_cluster = cluster::Cluster::from_spec({"c5.large", 2});
  const SparkSimulator sim(small_cluster);
  const auto r =
      workload::execute(*workload::make_workload("wordcount"), gib(1), sim, bad);
  EXPECT_FALSE(r.success);
  EXPECT_LT(r.runtime, 60.0);
}

TEST(Engine, CollectWithTinyDriverOoms) {
  auto c = tuned_config();
  c.set(k::kDriverMemoryGiB, 1.0);
  // bayes collects a model whose size grows with input.
  const auto r = run("bayes", gib(64), c);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("driver"), std::string::npos);
  auto big_driver = tuned_config();
  big_driver.set(k::kDriverMemoryGiB, 8.0);
  EXPECT_TRUE(run("bayes", gib(64), big_driver).success);
}

TEST(Engine, CacheHitFractionDropsWhenCacheOutgrowsStorage) {
  const auto small = run("pagerank", gib(4), tuned_config());
  const auto large = run("pagerank", gib(64), tuned_config());
  EXPECT_GT(small.cache_hit_fraction, 0.95);
  EXPECT_LT(large.cache_hit_fraction, 0.9);
}

TEST(Engine, RddCompressionRaisesCacheHitUnderPressure) {
  auto compressed = tuned_config();
  compressed.set(k::kRddCompress, 1.0);
  const auto plain = run("pagerank", gib(64), tuned_config());
  const auto packed = run("pagerank", gib(64), compressed);
  EXPECT_GT(packed.cache_hit_fraction, plain.cache_hit_fraction);
}

TEST(Engine, KryoBeatsJavaOnShuffleHeavyWork) {
  auto java = tuned_config();
  java.set(k::kSerializer, 0.0);
  const auto with_java = run("sort", gib(32), java);
  const auto with_kryo = run("sort", gib(32), tuned_config());
  ASSERT_TRUE(with_java.success);
  ASSERT_TRUE(with_kryo.success);
  EXPECT_GT(with_java.runtime, with_kryo.runtime);
}

TEST(Engine, ParallelismHasAnInteriorOptimum) {
  // pagerank has many shuffle stages, so both extremes hurt hard: too few
  // partitions spill on every join, too many pay per-task overhead on
  // every one of the ~18 stages.
  auto lo = tuned_config();
  lo.set(k::kDefaultParallelism, 8);
  auto hi = tuned_config();
  hi.set(k::kDefaultParallelism, 2048);
  const auto r_lo = run("pagerank", gib(8), lo);
  const auto r_mid = run("pagerank", gib(8), tuned_config());  // 256
  const auto r_hi = run("pagerank", gib(8), hi);
  ASSERT_TRUE(r_mid.success);
  EXPECT_LT(r_mid.runtime, r_lo.runtime);
  EXPECT_LT(r_mid.runtime, r_hi.runtime);
}

TEST(Engine, SpeculationTamesStragglersUnderSkew) {
  EngineOptions opts;
  opts.cost.straggler_prob = 0.2;  // stormy cluster
  auto spec = tuned_config();
  spec.set(k::kSpeculation, 1.0);
  const auto without = run("sort", gib(16), tuned_config(), opts);
  const auto with = run("sort", gib(16), spec, opts);
  ASSERT_TRUE(without.success);
  ASSERT_TRUE(with.success);
  EXPECT_LT(with.runtime, without.runtime);
}

TEST(Engine, ShuffleCompressionTradesCpuForIo) {
  auto off = tuned_config();
  off.set(k::kShuffleCompress, 0.0);
  off.set(k::kShuffleSpillCompress, 0.0);
  const auto with = run("sort", gib(32), tuned_config());
  const auto without = run("sort", gib(32), off);
  ASSERT_TRUE(with.success);
  ASSERT_TRUE(without.success);
  // On an HDD-heavy testbed, compression must win for shuffle-heavy sort.
  EXPECT_LT(with.runtime, without.runtime);
  // And the CPU share must be higher when compressing.
  EXPECT_GT(with.total_cpu, without.total_cpu * 0.9);
}

TEST(Engine, ReportAggregatesAreConsistent) {
  const auto r = run("bayes", gib(8), tuned_config());
  ASSERT_TRUE(r.success);
  Seconds cpu = 0.0;
  simcore::Bytes shuffle = 0;
  for (const auto& s : r.stages) {
    cpu += s.cpu_seconds;
    shuffle += s.shuffle_read_bytes;
  }
  EXPECT_DOUBLE_EQ(cpu, r.total_cpu);
  EXPECT_EQ(shuffle, r.total_shuffle_read);
  const double fraction_sum = r.cpu_fraction() + r.gc_fraction() + r.disk_fraction() +
                              r.net_fraction() + r.spill_fraction();
  EXPECT_LE(fraction_sum, 1.0 + 1e-9);
}

TEST(Engine, StageStartsRespectDependencies) {
  const auto r = run("pagerank", gib(4), tuned_config());
  ASSERT_TRUE(r.success);
  for (std::size_t i = 1; i < r.stages.size(); ++i) {
    EXPECT_GE(r.stages[i].start + 1e-9, r.stages[0].start);
  }
  EXPECT_GT(r.stages.size(), 10u);  // iterative job: many stages (Fig. 2)
}

TEST(Engine, CostTracksRuntimeAndClusterPrice) {
  const auto r = run("wordcount", gib(8), tuned_config());
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.cost, testbed().cost_of(r.runtime), 1e-9);
}

TEST(Engine, WavesReflectSlotCount) {
  const auto r = run("sort", gib(16), tuned_config());
  ASSERT_TRUE(r.success);
  for (const auto& s : r.stages) {
    if (s.tasks > 0) {
      EXPECT_EQ(s.waves, (s.tasks + r.total_slots - 1) / r.total_slots);
    }
  }
}

}  // namespace
}  // namespace stune::disc
