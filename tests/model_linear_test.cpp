#include <cmath>

#include <gtest/gtest.h>

#include "model/linear.hpp"
#include "simcore/rng.hpp"

namespace stune::model {
namespace {

TEST(Dataset, RejectsInconsistentDimensions) {
  Dataset d;
  d.add({1.0, 2.0}, 3.0);
  EXPECT_THROW(d.add({1.0}, 2.0), std::invalid_argument);
}

TEST(Dataset, DesignMatrixWithBias) {
  Dataset d;
  d.add({2.0, 3.0}, 1.0);
  const auto m = d.design_matrix(true);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(TargetScaler, NormalizesRoundTrip) {
  const auto s = TargetScaler::fit({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_NEAR(s.to_raw(s.to_normalized(25.0)), 25.0, 1e-12);
}

TEST(TargetScaler, ConstantTargetsAreSafe) {
  const auto s = TargetScaler::fit({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(s.stddev, 1.0);
  EXPECT_DOUBLE_EQ(s.to_normalized(5.0), 0.0);
}

TEST(RidgeRegression, RecoversAffineFunction) {
  simcore::Rng rng(1);
  Dataset d;
  for (int i = 0; i < 80; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    d.add({x0, x1}, 4.0 + 2.0 * x0 - 3.0 * x1);
  }
  RidgeRegression model(1e-8);
  model.fit(d);
  EXPECT_NEAR(model.predict({0.5, 0.5}), 4.0 + 1.0 - 1.5, 1e-4);
  EXPECT_NEAR(model.weights()[0], 4.0, 1e-3);
  EXPECT_NEAR(model.weights()[1], 2.0, 1e-3);
  EXPECT_NEAR(model.weights()[2], -3.0, 1e-3);
}

TEST(RidgeRegression, ErrorsOnMisuse) {
  RidgeRegression model;
  EXPECT_THROW(model.predict({1.0}), std::logic_error);
  EXPECT_THROW(model.fit(Dataset{}), std::invalid_argument);
  Dataset d;
  d.add({1.0}, 2.0);
  d.add({2.0}, 4.0);
  model.fit(d);
  EXPECT_THROW(model.predict({1.0, 2.0}), std::invalid_argument);
}

TEST(ErnestModel, RecoversItsOwnBasis) {
  // t(d, m) = 5 + 3 d/m + 2 log m + 0.5 m
  ErnestModel model;
  simcore::Rng rng(2);
  for (int i = 0; i < 60; ++i) {
    const double data = rng.uniform(1.0, 64.0);
    const double machines = static_cast<double>(rng.uniform_int(1, 16));
    const double t = 5.0 + 3.0 * data / machines + 2.0 * std::log(machines) + 0.5 * machines;
    model.add_observation(data, machines, t);
  }
  model.fit();
  for (int i = 0; i < 10; ++i) {
    const double data = rng.uniform(1.0, 64.0);
    const double machines = static_cast<double>(rng.uniform_int(1, 16));
    const double truth = 5.0 + 3.0 * data / machines + 2.0 * std::log(machines) + 0.5 * machines;
    EXPECT_NEAR(model.predict(data, machines), truth, 0.05 * truth);
  }
}

TEST(ErnestModel, WeightsAreNonNegative) {
  ErnestModel model;
  simcore::Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    const double data = rng.uniform(1.0, 32.0);
    const double machines = static_cast<double>(rng.uniform_int(1, 8));
    // Pure parallel work: the log/machine terms should get ~zero weight,
    // never negative.
    model.add_observation(data, machines, 10.0 * data / machines);
  }
  model.fit();
  for (const double w : model.weights()) EXPECT_GE(w, 0.0);
}

TEST(ErnestModel, CapturesDiminishingReturnsOfScaleOut) {
  ErnestModel model;
  for (int m = 1; m <= 16; ++m) {
    model.add_observation(32.0, m, 4.0 + 32.0 * 6.0 / m + 1.5 * m);
  }
  model.fit();
  // More machines help at small scale...
  EXPECT_LT(model.predict(32.0, 8), model.predict(32.0, 2));
  // ...but the per-machine coordination term eventually dominates.
  EXPECT_GT(model.predict(32.0, 128), model.predict(32.0, 8));
}

TEST(ErnestModel, ThrowsBeforeFit) {
  ErnestModel model;
  EXPECT_THROW(model.predict(1.0, 1.0), std::logic_error);
  EXPECT_THROW(model.fit(), std::logic_error);
}

}  // namespace
}  // namespace stune::model
