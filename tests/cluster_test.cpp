#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "cluster/cluster.hpp"
#include "cluster/contention.hpp"
#include "cluster/instance_type.hpp"
#include "simcore/stats.hpp"

namespace stune::cluster {
namespace {

// Every catalog entry must be internally consistent.
class CatalogInvariants : public ::testing::TestWithParam<InstanceType> {};

TEST_P(CatalogInvariants, ResourcesArePositiveAndSane) {
  const auto& t = GetParam();
  EXPECT_FALSE(t.name.empty());
  EXPECT_FALSE(t.family.empty());
  EXPECT_GT(t.vcpus, 0);
  EXPECT_GT(t.memory_gib, 0.0);
  EXPECT_GT(t.core_speed, 0.5);
  EXPECT_LT(t.core_speed, 2.0);
  EXPECT_GT(t.disk_bw, 0.0);
  EXPECT_GT(t.net_bw, 0.0);
  EXPECT_GT(t.price_per_hour, 0.0);
  EXPECT_LT(t.usable_memory_bytes(), t.memory_bytes());
  EXPECT_GT(t.usable_memory_bytes(), t.memory_bytes() / 2);
}

TEST_P(CatalogInvariants, NameBeginsWithFamily) {
  const auto& t = GetParam();
  EXPECT_EQ(t.name.rfind(t.family + ".", 0), 0u) << t.name;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, CatalogInvariants,
                         ::testing::ValuesIn(instance_catalog()),
                         [](const ::testing::TestParamInfo<InstanceType>& param_info) {
                           std::string n = param_info.param.name;
                           for (auto& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

TEST(Catalog, ContainsThePapersTestbedInstance) {
  const auto& h1 = find_instance("h1.4xlarge");
  EXPECT_EQ(h1.vcpus, 16);
  EXPECT_DOUBLE_EQ(h1.memory_gib, 64.0);
  EXPECT_EQ(h1.storage, StorageKind::kHdd);
}

TEST(Catalog, WithinFamilyPriceScalesWithSize) {
  for (const auto& family : catalog_families()) {
    const auto types = family_types(family);
    for (std::size_t i = 1; i < types.size(); ++i) {
      EXPECT_GT(types[i]->price_per_hour, types[i - 1]->price_per_hour) << family;
      EXPECT_GT(types[i]->vcpus, types[i - 1]->vcpus) << family;
    }
  }
}

TEST(Catalog, UnknownInstanceThrows) {
  EXPECT_THROW(find_instance("z9.mega"), std::invalid_argument);
}

TEST(Catalog, FamiliesAreDistinctAndNonEmpty) {
  const auto fams = catalog_families();
  EXPECT_GE(fams.size(), 5u);
  for (const auto& f : fams) EXPECT_FALSE(family_types(f).empty());
}

TEST(Cluster, TotalsScaleWithVmCount) {
  const Cluster c4 = Cluster::from_spec({"m5.2xlarge", 4});
  const Cluster c8 = Cluster::from_spec({"m5.2xlarge", 8});
  EXPECT_EQ(c4.total_vcpus() * 2, c8.total_vcpus());
  EXPECT_EQ(c4.total_memory() * 2, c8.total_memory());
  EXPECT_DOUBLE_EQ(c4.cost_per_hour() * 2, c8.cost_per_hour());
}

TEST(Cluster, CostOfRuntime) {
  const Cluster c = Cluster::from_spec({"m5.large", 10});  // $0.96/h
  EXPECT_NEAR(c.cost_of(3600.0), 0.96, 1e-9);
  EXPECT_NEAR(c.cost_of(1800.0), 0.48, 1e-9);
}

TEST(Cluster, RejectsNonPositiveCount) {
  EXPECT_THROW(Cluster::from_spec({"m5.large", 0}), std::invalid_argument);
}

TEST(ClusterSpec, ToString) {
  EXPECT_EQ((ClusterSpec{"h1.4xlarge", 4}).to_string(), "4x h1.4xlarge");
}

TEST(Contention, NoLoadMeansNoSlowdown) {
  ContentionProcess p(ContentionParams::none(), simcore::Rng(1));
  for (int i = 0; i < 50; ++i) {
    const auto s = p.next();
    EXPECT_DOUBLE_EQ(s.cpu_factor, 1.0);
    EXPECT_DOUBLE_EQ(s.disk_factor, 1.0);
    EXPECT_DOUBLE_EQ(s.net_factor, 1.0);
  }
}

TEST(Contention, FactorsBoundedAndOrdered) {
  ContentionProcess p(ContentionParams::heavy(), simcore::Rng(2));
  for (int i = 0; i < 200; ++i) {
    const auto s = p.next();
    EXPECT_GT(s.cpu_factor, 0.0);
    EXPECT_LE(s.cpu_factor, 1.0);
    // Network suffers most from co-location, CPU least.
    EXPECT_LE(s.net_factor, s.disk_factor + 1e-12);
    EXPECT_LE(s.disk_factor, s.cpu_factor + 1e-12);
  }
}

TEST(Contention, LoadRevertsToMean) {
  ContentionParams params = ContentionParams::moderate();
  ContentionProcess p(params, simcore::Rng(3));
  simcore::RunningStats loads;
  for (int i = 0; i < 5000; ++i) {
    p.next();
    loads.add(p.current_load());
  }
  EXPECT_NEAR(loads.mean(), params.mean_load, 0.05);
}

TEST(Contention, HigherLoadSlowsMore) {
  ContentionProcess light(ContentionParams::light(), simcore::Rng(4));
  ContentionProcess heavy(ContentionParams::heavy(), simcore::Rng(4));
  simcore::RunningStats lf, hf;
  for (int i = 0; i < 500; ++i) {
    lf.add(light.next().net_factor);
    hf.add(heavy.next().net_factor);
  }
  EXPECT_GT(lf.mean(), hf.mean());
}

}  // namespace
}  // namespace stune::cluster
