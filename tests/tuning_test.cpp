#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <limits>

#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {
namespace {

std::shared_ptr<const config::ConfigSpace> synthetic_space() {
  // One shared instance, like the real spark_space(): configurations are
  // bound to their space by identity, and tuners encode warm-start
  // observations against the space they are handed (STUNE_CHECK enforces
  // this — a fresh space per call trips it).
  static const auto space = [] {
    std::vector<config::ParamDef> params;
    params.push_back(config::ParamDef::real("a", 0.0, 1.0, 0.1));
    params.push_back(config::ParamDef::real("b", 0.0, 1.0, 0.9));
    params.push_back(config::ParamDef::integer("c", 0, 100, 0));
    params.push_back(config::ParamDef::boolean("flag", false));
    params.push_back(config::ParamDef::categorical("mode", {"x", "y", "z"}, 0));
    return config::ConfigSpace::create(std::move(params));
  }();
  return space;
}

/// A smooth bowl with a known optimum plus discrete bonuses: minimum at
/// a=0.7, b=0.3, c=40, flag=true, mode=y, value 1.
Objective bowl() {
  return [](const config::Configuration& c) -> EvalOutcome {
    const double a = c.get("a"), b = c.get("b");
    const double cc = c.get("c") / 100.0;
    double v = 1.0 + 40.0 * ((a - 0.7) * (a - 0.7) + (b - 0.3) * (b - 0.3) +
                             (cc - 0.4) * (cc - 0.4));
    if (!c.get_bool("flag")) v += 3.0;
    if (c.get_label("mode") != "y") v += 2.0;
    return {v, false};
  };
}

/// Like bowl(), but a quarter of the space "crashes".
Objective bowl_with_failures() {
  return [](const config::Configuration& c) -> EvalOutcome {
    if (c.get("a") > 0.85 || c.get("b") > 0.85) return {5.0, true};
    return bowl()(c);
  };
}

class TunerContract : public ::testing::TestWithParam<std::string> {};

TEST_P(TunerContract, RespectsBudgetExactly) {
  const auto tuner = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 37;
  const auto r = tuner->tune(synthetic_space(), bowl(), opts);
  EXPECT_EQ(r.history.size(), 37u);
}

TEST_P(TunerContract, FindsANearOptimalPoint) {
  const auto tuner = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 120;
  opts.seed = 7;
  const auto r = tuner->tune(synthetic_space(), bowl(), opts);
  ASSERT_TRUE(r.found_feasible);
  // Optimum is 1.0; random gets ~4-6 on this bowl with this budget. Every
  // strategy must land clearly below naive expectations.
  EXPECT_LT(r.best_runtime, 6.0);
}

TEST_P(TunerContract, BestMatchesHistory) {
  const auto tuner = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 40;
  const auto r = tuner->tune(synthetic_space(), bowl(), opts);
  double best = std::numeric_limits<double>::infinity();
  for (const auto& o : r.history) {
    if (!o.failed) best = std::min(best, o.runtime);
  }
  EXPECT_DOUBLE_EQ(r.best_runtime, best);
}

TEST_P(TunerContract, DeterministicGivenSeed) {
  const auto tuner_a = make_tuner(GetParam());
  const auto tuner_b = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 30;
  opts.seed = 99;
  const auto a = tuner_a->tune(synthetic_space(), bowl(), opts);
  const auto b = tuner_b->tune(synthetic_space(), bowl(), opts);
  EXPECT_DOUBLE_EQ(a.best_runtime, b.best_runtime);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.history[i].runtime, b.history[i].runtime);
  }
}

TEST_P(TunerContract, SurvivesFailuresAndReturnsAFeasiblePoint) {
  const auto tuner = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 60;
  const auto r = tuner->tune(synthetic_space(), bowl_with_failures(), opts);
  ASSERT_TRUE(r.found_feasible);
  // The returned best must be a non-crashing configuration.
  EXPECT_LE(r.best.get("a"), 0.85);
  EXPECT_LE(r.best.get("b"), 0.85);
}

TEST_P(TunerContract, WarmStartIsNotWorse) {
  const auto space = synthetic_space();
  // Donate the near-optimal configuration.
  auto donated = space->default_config();
  donated.set("a", 0.7);
  donated.set("b", 0.3);
  donated.set("c", 40.0);
  donated.set("flag", 1.0);
  donated.set("mode", 1.0);
  Observation warm;
  warm.config = donated;
  warm.runtime = 1.0;
  warm.objective = 1.0;

  TuneOptions cold_opts;
  cold_opts.budget = 15;
  cold_opts.seed = 3;
  TuneOptions warm_opts = cold_opts;
  warm_opts.warm_start = {warm};

  const auto cold = make_tuner(GetParam())->tune(space, bowl(), cold_opts);
  const auto warmed = make_tuner(GetParam())->tune(space, bowl(), warm_opts);
  EXPECT_LE(warmed.best_runtime, cold.best_runtime + 1e-9);
  EXPECT_LT(warmed.best_runtime, 1.5);  // the donated point must be exploited
}

TEST_P(TunerContract, BestCurveIsMonotoneNonIncreasing) {
  const auto tuner = make_tuner(GetParam());
  TuneOptions opts;
  opts.budget = 50;
  const auto r = tuner->tune(synthetic_space(), bowl(), opts);
  const auto curve = r.best_curve();
  ASSERT_EQ(curve.size(), r.history.size());
  for (std::size_t i = 1; i < curve.size(); ++i) EXPECT_LE(curve[i], curve[i - 1]);
}

TEST_P(TunerContract, SurvivesATinyBudget) {
  for (const std::size_t budget : {1ul, 2ul, 3ul}) {
    const auto tuner = make_tuner(GetParam());
    TuneOptions opts;
    opts.budget = budget;
    const auto r = tuner->tune(synthetic_space(), bowl(), opts);
    EXPECT_EQ(r.history.size(), budget) << "budget " << budget;
    EXPECT_TRUE(r.found_feasible);
  }
}

TEST_P(TunerContract, WorksOnASingleParameterSpace) {
  std::vector<config::ParamDef> params;
  params.push_back(config::ParamDef::real("x", 0.0, 1.0, 0.0));
  const auto space = config::ConfigSpace::create(std::move(params));
  Objective parabola = [](const config::Configuration& c) -> EvalOutcome {
    const double x = c.get("x");
    return {1.0 + 30.0 * (x - 0.6) * (x - 0.6), false};
  };
  TuneOptions opts;
  opts.budget = 40;
  const auto r = make_tuner(GetParam())->tune(space, parabola, opts);
  ASSERT_TRUE(r.found_feasible);
  EXPECT_LT(r.best_runtime, 1.5);
}

TEST_P(TunerContract, IgnoresAllFailedWarmStarts) {
  TuneOptions opts;
  opts.budget = 20;
  Observation bad;
  bad.config = synthetic_space()->default_config();
  bad.runtime = 0.1;  // suspiciously great...
  bad.failed = true;  // ...but it crashed
  bad.objective = 0.1;
  opts.warm_start = {bad, bad};
  const auto r = make_tuner(GetParam())->tune(synthetic_space(), bowl(), opts);
  EXPECT_TRUE(r.found_feasible);
  EXPECT_EQ(r.history.size(), 20u);
}

INSTANTIATE_TEST_SUITE_P(AllTuners, TunerContract, ::testing::ValuesIn(tuner_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(TunerRegistry, AllNamesConstructAndMatch) {
  for (const auto& name : tuner_names()) {
    EXPECT_EQ(make_tuner(name)->name(), name);
  }
  EXPECT_THROW(make_tuner("simulated-annealing"), std::invalid_argument);
  EXPECT_EQ(all_tuners().size(), tuner_names().size());
}

TEST(SessionLedger, PenalizesFailuresAboveWorstSuccess) {
  TuneOptions opts;
  opts.budget = 10;
  opts.failure_penalty_factor = 3.0;
  SessionLedger ledger(opts);
  const auto space = synthetic_space();
  simcore::Rng rng(1);
  ledger.commit(space->sample(rng), EvalOutcome{10.0, false});
  const auto& failed = ledger.commit(space->sample(rng), EvalOutcome{1.0, true});  // fast crash
  EXPECT_TRUE(failed.failed);
  EXPECT_GE(failed.objective, 30.0);  // 3x worst success, not 1 second
}

TEST(SessionLedger, ThrowsWhenBudgetExceeded) {
  TuneOptions opts;
  opts.budget = 1;
  SessionLedger ledger(opts);
  const auto space = synthetic_space();
  simcore::Rng rng(1);
  ledger.commit(space->sample(rng), EvalOutcome{1.0, false});
  EXPECT_TRUE(ledger.exhausted());
  EXPECT_THROW(ledger.commit(space->sample(rng), EvalOutcome{1.0, false}), std::logic_error);
}

TEST(SessionLedger, AllFailuresStillProducesAResult) {
  TuneOptions opts;
  opts.budget = 5;
  SessionLedger ledger(opts);
  const auto space = synthetic_space();
  simcore::Rng rng(1);
  while (!ledger.exhausted()) ledger.commit(space->sample(rng), EvalOutcome{2.0, true});
  const auto r = ledger.result();
  EXPECT_FALSE(r.found_feasible);
  EXPECT_FALSE(r.best.empty());
}

TEST(BayesOpt, BeatsRandomOnTheBowlAtEqualBudget) {
  // The CherryPick premise: model-guided search is more sample-efficient.
  // Compare mean best-found over several seeds.
  double random_total = 0.0, bo_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    TuneOptions opts;
    opts.budget = 40;
    opts.seed = seed;
    random_total += RandomSearchTuner().tune(synthetic_space(), bowl(), opts).best_runtime;
    bo_total += BayesOptTuner().tune(synthetic_space(), bowl(), opts).best_runtime;
  }
  EXPECT_LT(bo_total, random_total);
}

}  // namespace
}  // namespace stune::tuning
