#include <cstddef>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/cloud_tuner.hpp"
#include "service/cost_ledger.hpp"
#include "service/knowledge_base.hpp"
#include "service/slo.hpp"
#include "service/tuning_service.hpp"
#include "workload/workload.hpp"

namespace stune::service {
namespace {

using simcore::gib;

ExecutionRecord make_record(const std::string& tenant, const std::string& label, double runtime,
                            simcore::Bytes input, transfer::Signature sig = {}) {
  ExecutionRecord r;
  r.tenant = tenant;
  r.workload_label = label;
  r.config = config::spark_space()->default_config();
  r.input_bytes = input;
  r.runtime = runtime;
  r.signature = sig;
  return r;
}

// -- KnowledgeBase -----------------------------------------------------------------

TEST(KnowledgeBase, AssignsMonotonicSequences) {
  KnowledgeBase kb;
  const auto s1 = kb.record(make_record("a", "w", 10.0, gib(1)));
  const auto s2 = kb.record(make_record("a", "w", 11.0, gib(1)));
  EXPECT_LT(s1, s2);
  EXPECT_EQ(kb.size(), 2u);
}

TEST(KnowledgeBase, DonorsExcludeFailuresAndLabel) {
  KnowledgeBase kb;
  kb.record(make_record("a", "w1", 10.0, gib(1)));
  auto failed = make_record("a", "w2", 5.0, gib(1));
  failed.failed = true;
  kb.record(std::move(failed));
  EXPECT_EQ(kb.donors_for().size(), 1u);
  EXPECT_TRUE(kb.donors_for(std::optional<std::string>("w1")).empty());
}

TEST(KnowledgeBase, BestSimilarRuntimeFiltersBySize) {
  KnowledgeBase kb;
  transfer::Signature sig;  // all-zero signatures are identical -> similarity 1
  kb.record(make_record("a", "w", 100.0, gib(4), sig));
  kb.record(make_record("a", "w", 40.0, gib(4), sig));
  kb.record(make_record("a", "w", 5.0, gib(64), sig));  // wrong scale
  const auto best = kb.best_similar_runtime(sig, gib(4));
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 40.0);
  EXPECT_FALSE(kb.best_similar_runtime(sig, gib(1024)).has_value());
}

TEST(KnowledgeBase, BestSimilarRuntimeFiltersBySimilarity) {
  KnowledgeBase kb;
  transfer::Signature near_sig;
  transfer::Signature far_sig;
  far_sig.cpu_fraction = 1.0;
  far_sig.shuffle_per_input = 3.0;
  kb.record(make_record("a", "w", 40.0, gib(4), far_sig));
  transfer::Signature target;
  EXPECT_FALSE(kb.best_similar_runtime(target, gib(4), 0.9).has_value());
  kb.record(make_record("a", "w", 70.0, gib(4), near_sig));
  const auto best = kb.best_similar_runtime(target, gib(4), 0.9);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 70.0);
}

TEST(KnowledgeBase, SaveLoadRoundTrip) {
  KnowledgeBase kb;
  transfer::Signature sig;
  sig.cpu_fraction = 0.42;
  sig.shuffle_per_input = 1.5;
  auto rec = make_record("acme", "pagerank", 123.5, gib(8), sig);
  rec.cost = 0.25;
  rec.from_tuning = true;
  rec.config.set(config::spark::kExecutorMemoryGiB, 13.0);
  kb.record(std::move(rec));
  kb.record(make_record("globex", "sort", 55.0, gib(16)));

  std::stringstream buffer;
  kb.save(buffer);
  const auto loaded = KnowledgeBase::load(buffer, config::spark_space());

  ASSERT_EQ(loaded.size(), 2u);
  const auto& r0 = loaded.records()[0];
  EXPECT_EQ(r0.tenant, "acme");
  EXPECT_EQ(r0.workload_label, "pagerank");
  EXPECT_DOUBLE_EQ(r0.runtime, 123.5);
  EXPECT_DOUBLE_EQ(r0.cost, 0.25);
  EXPECT_TRUE(r0.from_tuning);
  EXPECT_DOUBLE_EQ(r0.signature.cpu_fraction, 0.42);
  EXPECT_DOUBLE_EQ(r0.signature.shuffle_per_input, 1.5);
  EXPECT_DOUBLE_EQ(r0.config.get(config::spark::kExecutorMemoryGiB), 13.0);
  EXPECT_EQ(loaded.tenant_count(), 2u);
}

TEST(KnowledgeBase, SaveRejectsSeparatorInLabels) {
  KnowledgeBase kb;
  kb.record(make_record("bad|tenant", "w", 1.0, gib(1)));
  std::stringstream buffer;
  EXPECT_THROW(kb.save(buffer), std::invalid_argument);
}

TEST(KnowledgeBase, LoadValidatesInput) {
  std::stringstream bad("not|enough|fields\n");
  EXPECT_THROW(KnowledgeBase::load(bad, config::spark_space()), std::invalid_argument);
  std::stringstream empty;
  EXPECT_EQ(KnowledgeBase::load(empty, config::spark_space()).size(), 0u);
  std::stringstream any;
  EXPECT_THROW(KnowledgeBase::load(any, nullptr), std::invalid_argument);
}

TEST(KnowledgeBase, CountsTenants) {
  KnowledgeBase kb;
  kb.record(make_record("a", "w", 1.0, gib(1)));
  kb.record(make_record("b", "w", 1.0, gib(1)));
  kb.record(make_record("a", "w", 1.0, gib(1)));
  EXPECT_EQ(kb.tenant_count(), 2u);
}

// -- Slo --------------------------------------------------------------------------

TEST(Slo, AttainmentAgainstReference) {
  Slo slo;
  slo.within_fraction = 0.10;
  EXPECT_TRUE(evaluate_slo(slo, 105.0, 1.0, 100.0).attained);
  EXPECT_FALSE(evaluate_slo(slo, 115.0, 1.0, 100.0).attained);
}

TEST(Slo, NoReferenceIsVacuouslyAttainedButFlagged) {
  const auto e = evaluate_slo(Slo{}, 500.0, 1.0, std::nullopt);
  EXPECT_TRUE(e.attained);
  EXPECT_FALSE(e.had_reference);
}

TEST(Slo, AbsoluteCeilingsApply) {
  Slo slo;
  slo.max_runtime_s = 60.0;
  EXPECT_FALSE(evaluate_slo(slo, 90.0, 1.0, 100.0).attained);
  Slo cost_slo;
  cost_slo.max_cost_dollars = 0.5;
  EXPECT_FALSE(evaluate_slo(cost_slo, 10.0, 1.0, std::nullopt).attained);
}

TEST(SloTracker, AggregatesStrictAttainment) {
  Slo slo_spec;
  slo_spec.within_fraction = 0.10;
  SloTracker t(slo_spec);
  t.observe(100.0, 1.0, 100.0);          // attained
  t.observe(150.0, 1.0, 100.0);          // violated
  t.observe(42.0, 1.0, std::nullopt);    // vacuous
  EXPECT_EQ(t.runs(), 3u);
  EXPECT_EQ(t.runs_with_reference(), 2u);
  EXPECT_DOUBLE_EQ(t.attainment(), 0.5);
  EXPECT_NEAR(t.mean_excess_fraction(), 0.25, 1e-12);
}

// -- CostLedger ----------------------------------------------------------------------

TEST(CostLedger, BreakEvenAccounting) {
  CostLedger l;
  l.add_tuning_run(100.0, 3.0);
  l.add_tuning_run(100.0, 3.0);
  EXPECT_EQ(l.tuning_runs(), 2u);
  EXPECT_DOUBLE_EQ(l.tuning_cost(), 6.0);
  EXPECT_FALSE(l.amortized());
  l.add_production_run(10.0, 1.0, 50.0, 5.0);  // saves $4
  EXPECT_FALSE(l.amortized());
  l.add_production_run(10.0, 1.0, 50.0, 5.0);  // cumulative $8 >= $6
  EXPECT_TRUE(l.amortized());
  ASSERT_TRUE(l.break_even_run().has_value());
  EXPECT_EQ(*l.break_even_run(), 2u);
}

TEST(CostLedger, NegativeSavingsNeverAmortize) {
  CostLedger l;
  l.add_tuning_run(10.0, 1.0);
  for (int i = 0; i < 5; ++i) l.add_production_run(10.0, 2.0, 10.0, 1.0);
  EXPECT_FALSE(l.amortized());
  EXPECT_FALSE(l.break_even_run().has_value());
}

// -- CloudTuner ------------------------------------------------------------------------

TEST(CloudSpace, EncodesCatalogAndCount) {
  const auto space = cloud_space(2, 8);
  EXPECT_EQ(space->size(), 2u);
  const auto spec = to_cluster_spec(space->default_config());
  EXPECT_GE(spec.vm_count, 2);
  EXPECT_LE(spec.vm_count, 8);
  EXPECT_NO_THROW(cluster::find_instance(spec.instance));
  EXPECT_THROW(cloud_space(4, 2), std::invalid_argument);
}

TEST(ProviderAutoConfig, IsViableOnEveryCatalogType) {
  for (const auto& t : cluster::instance_catalog()) {
    const cluster::Cluster c(t, 4);
    const auto conf = provider_auto_config(c);
    const auto dep =
        disc::resolve_deployment(config::SparkConf(conf), c);
    EXPECT_TRUE(dep.viable) << t.name << ": " << dep.failure;
    EXPECT_GT(dep.total_slots, 0) << t.name;
  }
}

TEST(CloudTuner, PicksAClusterThatRunsTheWorkload) {
  CloudTunerOptions opts;
  opts.budget = 8;
  const CloudTuner tuner(opts);
  const auto choice = tuner.choose(*workload::make_workload("wordcount"), gib(8));
  EXPECT_GT(choice.runtime, 0.0);
  EXPECT_GT(choice.cost, 0.0);
  EXPECT_EQ(choice.trials, 8u);
  EXPECT_GT(choice.trial_cost, 0.0);
  EXPECT_NO_THROW(cluster::find_instance(choice.spec.instance));
}

TEST(CloudTuner, MemoryHungryWorkloadAvoidsTinyMemoryFamilies) {
  CloudTunerOptions opts;
  opts.budget = 14;
  opts.objective = CloudObjective::kRuntime;
  const CloudTuner tuner(opts);
  const auto choice = tuner.choose(*workload::make_workload("pagerank"), gib(32));
  const auto& t = cluster::find_instance(choice.spec.instance);
  // PageRank at 32 GiB caches ~54 GiB of objects: a c5.large fleet cannot
  // win on runtime.
  EXPECT_GT(t.memory_gib * choice.spec.vm_count, 64.0);
}

// -- TuningService end-to-end --------------------------------------------------------------

ServiceOptions fast_options() {
  ServiceOptions o;
  o.tuning_budget = 15;
  o.retuning_budget = 8;
  o.cloud.budget = 6;
  return o;
}

TEST(TuningService, ValidatesSubmissions) {
  TuningService svc(fast_options());
  EXPECT_THROW(svc.submit("t", nullptr, gib(1)), std::invalid_argument);
  EXPECT_THROW(svc.submit("t", workload::make_workload("sort"), 0), std::invalid_argument);
  EXPECT_THROW(svc.run_once(99), std::out_of_range);
}

TEST(TuningService, FirstRunTunesThenReusesConfiguration) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(8));
  svc.run_once(h);
  const auto after_first = svc.status(h);
  EXPECT_TRUE(after_first.tuned);
  EXPECT_EQ(after_first.tunings, 1u);
  const auto tuning_runs = svc.ledger(h).tuning_runs();
  svc.run_once(h);
  svc.run_once(h);
  // Stable input: no re-tuning, no extra tuning spend.
  EXPECT_EQ(svc.status(h).tunings, 1u);
  EXPECT_EQ(svc.ledger(h).tuning_runs(), tuning_runs);
  EXPECT_EQ(svc.status(h).production_runs, 3u);
}

TEST(TuningService, TunedRunsBeatTheUntunedBaseline) {
  auto opts = fast_options();
  opts.ledger_baseline = ServiceOptions::Baseline::kSparkDefault;
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("pagerank"), gib(8));
  for (int i = 0; i < 5; ++i) svc.run_once(h);
  EXPECT_GT(svc.status(h).cumulative_savings, 0.0);
}

TEST(TuningService, InputGrowthTriggersRetuning) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("pagerank"), gib(4));
  for (int i = 0; i < 6; ++i) svc.run_once(h);
  const auto before = svc.status(h).tunings;
  for (int i = 0; i < 8; ++i) svc.run_once(h, gib(64));
  EXPECT_GT(svc.status(h).tunings, before);
}

TEST(TuningService, KnowledgeAccumulatesAcrossTenants) {
  TuningService svc(fast_options());
  const int h1 = svc.submit("acme", workload::make_workload("sort"), gib(8));
  svc.run_once(h1);
  const auto kb_after_one = svc.knowledge_base().size();
  EXPECT_GT(kb_after_one, 0u);
  const int h2 = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  svc.run_once(h2);
  EXPECT_GT(svc.knowledge_base().size(), kb_after_one);
  EXPECT_EQ(svc.knowledge_base().tenant_count(), 2u);
}

TEST(TuningService, SloTrackerSeesEveryProductionRun) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("wordcount"), gib(4));
  for (int i = 0; i < 4; ++i) svc.run_once(h);
  EXPECT_EQ(svc.slo_tracker(h).runs(), 4u);
}

TEST(TuningService, DeterministicGivenSeed) {
  auto opts = fast_options();
  opts.seed = 1234;
  TuningService a(opts), b(opts);
  const int ha = a.submit("t", workload::make_workload("bayes"), gib(8));
  const int hb = b.submit("t", workload::make_workload("bayes"), gib(8));
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.run_once(ha).runtime, b.run_once(hb).runtime);
  }
}

TEST(TuningService, AromaTransferStrategyWorksEndToEnd) {
  auto opts = fast_options();
  opts.transfer_strategy = ServiceOptions::TransferStrategy::kAroma;
  opts.tune_cloud = false;
  opts.default_cluster = {"h1.4xlarge", 4};
  TuningService svc(opts);
  const int h1 = svc.submit("acme", workload::make_workload("sort"), gib(8));
  for (int i = 0; i < 3; ++i) svc.run_once(h1);
  const int h2 = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  const auto r = svc.run_once(h2);
  EXPECT_TRUE(r.success);
  EXPECT_GT(svc.status(h2).best_runtime, 0.0);
}

// Regression: submit/run_once/status used to mutate entries_, the knowledge
// base and the tuning counter with no lock, so concurrent tenants corrupted
// the handle map. Every public entry point now takes the service mutex; this
// drives all of them from concurrent threads (TSan job covers the schedule
// space) and checks the per-tenant results are intact.
TEST(TuningService, ConcurrentTenantsSubmitAndRunSafely) {
  auto opts = fast_options();
  opts.tune_cloud = false;  // keep each thread's work small
  opts.default_cluster = {"h1.4xlarge", 4};
  opts.tuning_budget = 6;
  TuningService svc(opts);

  constexpr int kTenants = 4;
  constexpr int kRuns = 3;
  std::vector<int> handles(kTenants, -1);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&svc, &handles, t] {
      const int h = svc.submit("tenant-" + std::to_string(t),
                               workload::make_workload("sort"), gib(4));
      handles[static_cast<std::size_t>(t)] = h;
      for (int i = 0; i < kRuns; ++i) {
        const auto r = svc.run_once(h);
        EXPECT_TRUE(r.success);
        (void)svc.status(h);
      }
    });
  }
  for (auto& th : tenants) th.join();

  std::set<int> distinct(handles.begin(), handles.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kTenants));
  for (const int h : handles) {
    const auto s = svc.status(h);
    EXPECT_TRUE(s.tuned);
    EXPECT_EQ(s.production_runs, static_cast<std::size_t>(kRuns));
    EXPECT_GT(s.best_runtime, 0.0);
  }
  EXPECT_EQ(svc.knowledge_base().tenant_count(), static_cast<std::size_t>(kTenants));
}

TEST(TuningService, StatusReflectsClusterChoice) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.default_cluster = {"r5.2xlarge", 6};
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("kmeans"), gib(8));
  svc.run_once(h);
  EXPECT_EQ(svc.status(h).cluster, (cluster::ClusterSpec{"r5.2xlarge", 6}));
}

}  // namespace
}  // namespace stune::service
