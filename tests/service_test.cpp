#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/admission.hpp"
#include "service/cloud_tuner.hpp"
#include "service/cost_ledger.hpp"
#include "service/knowledge_base.hpp"
#include "service/shared_kb.hpp"
#include "service/slo.hpp"
#include "service/tuning_service.hpp"
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"
#include "workload/workload.hpp"

namespace stune::service {
namespace {

using simcore::gib;

ExecutionRecord make_record(const std::string& tenant, const std::string& label, double runtime,
                            simcore::Bytes input, transfer::Signature sig = {}) {
  ExecutionRecord r;
  r.tenant = tenant;
  r.workload_label = label;
  r.config = config::spark_space()->default_config();
  r.input_bytes = input;
  r.runtime = runtime;
  r.signature = sig;
  return r;
}

// -- KnowledgeBase -----------------------------------------------------------------

TEST(KnowledgeBase, AssignsMonotonicSequences) {
  KnowledgeBase kb;
  const auto s1 = kb.record(make_record("a", "w", 10.0, gib(1)));
  const auto s2 = kb.record(make_record("a", "w", 11.0, gib(1)));
  EXPECT_LT(s1, s2);
  EXPECT_EQ(kb.size(), 2u);
}

TEST(KnowledgeBase, DonorsExcludeFailuresAndLabel) {
  KnowledgeBase kb;
  kb.record(make_record("a", "w1", 10.0, gib(1)));
  auto failed = make_record("a", "w2", 5.0, gib(1));
  failed.failed = true;
  kb.record(std::move(failed));
  EXPECT_EQ(kb.donors_for().size(), 1u);
  EXPECT_TRUE(kb.donors_for(std::optional<std::string>("w1")).empty());
}

TEST(KnowledgeBase, BestSimilarRuntimeFiltersBySize) {
  KnowledgeBase kb;
  transfer::Signature sig;  // all-zero signatures are identical -> similarity 1
  kb.record(make_record("a", "w", 100.0, gib(4), sig));
  kb.record(make_record("a", "w", 40.0, gib(4), sig));
  kb.record(make_record("a", "w", 5.0, gib(64), sig));  // wrong scale
  const auto best = kb.best_similar_runtime(sig, gib(4));
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 40.0);
  EXPECT_FALSE(kb.best_similar_runtime(sig, gib(1024)).has_value());
}

TEST(KnowledgeBase, BestSimilarRuntimeFiltersBySimilarity) {
  KnowledgeBase kb;
  transfer::Signature near_sig;
  transfer::Signature far_sig;
  far_sig.cpu_fraction = 1.0;
  far_sig.shuffle_per_input = 3.0;
  kb.record(make_record("a", "w", 40.0, gib(4), far_sig));
  transfer::Signature target;
  EXPECT_FALSE(kb.best_similar_runtime(target, gib(4), 0.9).has_value());
  kb.record(make_record("a", "w", 70.0, gib(4), near_sig));
  const auto best = kb.best_similar_runtime(target, gib(4), 0.9);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 70.0);
}

TEST(KnowledgeBase, SaveLoadRoundTrip) {
  KnowledgeBase kb;
  transfer::Signature sig;
  sig.cpu_fraction = 0.42;
  sig.shuffle_per_input = 1.5;
  auto rec = make_record("acme", "pagerank", 123.5, gib(8), sig);
  rec.cost = 0.25;
  rec.from_tuning = true;
  rec.config.set(config::spark::kExecutorMemoryGiB, 13.0);
  kb.record(std::move(rec));
  kb.record(make_record("globex", "sort", 55.0, gib(16)));

  std::stringstream buffer;
  kb.save(buffer);
  const auto loaded = KnowledgeBase::load(buffer, config::spark_space());

  ASSERT_EQ(loaded.size(), 2u);
  const auto& r0 = loaded.records()[0];
  EXPECT_EQ(r0.tenant, "acme");
  EXPECT_EQ(r0.workload_label, "pagerank");
  EXPECT_DOUBLE_EQ(r0.runtime, 123.5);
  EXPECT_DOUBLE_EQ(r0.cost, 0.25);
  EXPECT_TRUE(r0.from_tuning);
  EXPECT_DOUBLE_EQ(r0.signature.cpu_fraction, 0.42);
  EXPECT_DOUBLE_EQ(r0.signature.shuffle_per_input, 1.5);
  EXPECT_DOUBLE_EQ(r0.config.get(config::spark::kExecutorMemoryGiB), 13.0);
  EXPECT_EQ(loaded.tenant_count(), 2u);
}

TEST(KnowledgeBase, SaveRejectsSeparatorInLabels) {
  KnowledgeBase kb;
  kb.record(make_record("bad|tenant", "w", 1.0, gib(1)));
  std::stringstream buffer;
  EXPECT_THROW(kb.save(buffer), std::invalid_argument);
}

TEST(KnowledgeBase, LoadValidatesInput) {
  std::stringstream bad("not|enough|fields\n");
  EXPECT_THROW(KnowledgeBase::load(bad, config::spark_space()), std::invalid_argument);
  std::stringstream empty;
  EXPECT_EQ(KnowledgeBase::load(empty, config::spark_space()).size(), 0u);
  std::stringstream any;
  EXPECT_THROW(KnowledgeBase::load(any, nullptr), std::invalid_argument);
}

TEST(KnowledgeBase, CountsTenants) {
  KnowledgeBase kb;
  kb.record(make_record("a", "w", 1.0, gib(1)));
  kb.record(make_record("b", "w", 1.0, gib(1)));
  kb.record(make_record("a", "w", 1.0, gib(1)));
  EXPECT_EQ(kb.tenant_count(), 2u);
}

// -- Slo --------------------------------------------------------------------------

TEST(Slo, AttainmentAgainstReference) {
  Slo slo;
  slo.within_fraction = 0.10;
  EXPECT_TRUE(evaluate_slo(slo, 105.0, 1.0, 100.0).attained);
  EXPECT_FALSE(evaluate_slo(slo, 115.0, 1.0, 100.0).attained);
}

TEST(Slo, NoReferenceIsVacuouslyAttainedButFlagged) {
  const auto e = evaluate_slo(Slo{}, 500.0, 1.0, std::nullopt);
  EXPECT_TRUE(e.attained);
  EXPECT_FALSE(e.had_reference);
}

TEST(Slo, AbsoluteCeilingsApply) {
  Slo slo;
  slo.max_runtime_s = 60.0;
  EXPECT_FALSE(evaluate_slo(slo, 90.0, 1.0, 100.0).attained);
  Slo cost_slo;
  cost_slo.max_cost_dollars = 0.5;
  EXPECT_FALSE(evaluate_slo(cost_slo, 10.0, 1.0, std::nullopt).attained);
}

TEST(SloTracker, AggregatesStrictAttainment) {
  Slo slo_spec;
  slo_spec.within_fraction = 0.10;
  SloTracker t(slo_spec);
  t.observe(100.0, 1.0, 100.0);          // attained
  t.observe(150.0, 1.0, 100.0);          // violated
  t.observe(42.0, 1.0, std::nullopt);    // vacuous
  EXPECT_EQ(t.runs(), 3u);
  EXPECT_EQ(t.runs_with_reference(), 2u);
  EXPECT_DOUBLE_EQ(t.attainment(), 0.5);
  EXPECT_NEAR(t.mean_excess_fraction(), 0.25, 1e-12);
}

// -- CostLedger ----------------------------------------------------------------------

TEST(CostLedger, BreakEvenAccounting) {
  CostLedger l;
  l.add_tuning_run(100.0, 3.0);
  l.add_tuning_run(100.0, 3.0);
  EXPECT_EQ(l.tuning_runs(), 2u);
  EXPECT_DOUBLE_EQ(l.tuning_cost(), 6.0);
  EXPECT_FALSE(l.amortized());
  l.add_production_run(10.0, 1.0, 50.0, 5.0);  // saves $4
  EXPECT_FALSE(l.amortized());
  l.add_production_run(10.0, 1.0, 50.0, 5.0);  // cumulative $8 >= $6
  EXPECT_TRUE(l.amortized());
  ASSERT_TRUE(l.break_even_run().has_value());
  EXPECT_EQ(*l.break_even_run(), 2u);
}

TEST(CostLedger, NegativeSavingsNeverAmortize) {
  CostLedger l;
  l.add_tuning_run(10.0, 1.0);
  for (int i = 0; i < 5; ++i) l.add_production_run(10.0, 2.0, 10.0, 1.0);
  EXPECT_FALSE(l.amortized());
  EXPECT_FALSE(l.break_even_run().has_value());
}

// -- CloudTuner ------------------------------------------------------------------------

TEST(CloudSpace, EncodesCatalogAndCount) {
  const auto space = cloud_space(2, 8);
  EXPECT_EQ(space->size(), 2u);
  const auto spec = to_cluster_spec(space->default_config());
  EXPECT_GE(spec.vm_count, 2);
  EXPECT_LE(spec.vm_count, 8);
  EXPECT_NO_THROW(cluster::find_instance(spec.instance));
  EXPECT_THROW(cloud_space(4, 2), std::invalid_argument);
}

TEST(ProviderAutoConfig, IsViableOnEveryCatalogType) {
  for (const auto& t : cluster::instance_catalog()) {
    const cluster::Cluster c(t, 4);
    const auto conf = provider_auto_config(c);
    const auto dep =
        disc::resolve_deployment(config::SparkConf(conf), c);
    EXPECT_TRUE(dep.viable) << t.name << ": " << dep.failure;
    EXPECT_GT(dep.total_slots, 0) << t.name;
  }
}

TEST(CloudTuner, PicksAClusterThatRunsTheWorkload) {
  CloudTunerOptions opts;
  opts.budget = 8;
  const CloudTuner tuner(opts);
  const auto choice = tuner.choose(*workload::make_workload("wordcount"), gib(8));
  EXPECT_GT(choice.runtime, 0.0);
  EXPECT_GT(choice.cost, 0.0);
  EXPECT_EQ(choice.trials, 8u);
  EXPECT_GT(choice.trial_cost, 0.0);
  EXPECT_NO_THROW(cluster::find_instance(choice.spec.instance));
}

TEST(CloudTuner, MemoryHungryWorkloadAvoidsTinyMemoryFamilies) {
  CloudTunerOptions opts;
  opts.budget = 14;
  opts.objective = CloudObjective::kRuntime;
  const CloudTuner tuner(opts);
  const auto choice = tuner.choose(*workload::make_workload("pagerank"), gib(32));
  const auto& t = cluster::find_instance(choice.spec.instance);
  // PageRank at 32 GiB caches ~54 GiB of objects: a c5.large fleet cannot
  // win on runtime.
  EXPECT_GT(t.memory_gib * choice.spec.vm_count, 64.0);
}

// -- TuningService end-to-end --------------------------------------------------------------

ServiceOptions fast_options() {
  ServiceOptions o;
  o.tuning_budget = 15;
  o.retuning_budget = 8;
  o.cloud.budget = 6;
  return o;
}

TEST(TuningService, ValidatesSubmissions) {
  TuningService svc(fast_options());
  EXPECT_THROW(svc.submit("t", nullptr, gib(1)), std::invalid_argument);
  EXPECT_THROW(svc.submit("t", workload::make_workload("sort"), 0), std::invalid_argument);
  EXPECT_THROW(svc.run_once(99), std::out_of_range);
}

TEST(TuningService, FirstRunTunesThenReusesConfiguration) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(8));
  svc.run_once(h);
  const auto after_first = svc.status(h);
  EXPECT_TRUE(after_first.tuned);
  EXPECT_EQ(after_first.tunings, 1u);
  const auto tuning_runs = svc.ledger(h).tuning_runs();
  svc.run_once(h);
  svc.run_once(h);
  // Stable input: no re-tuning, no extra tuning spend.
  EXPECT_EQ(svc.status(h).tunings, 1u);
  EXPECT_EQ(svc.ledger(h).tuning_runs(), tuning_runs);
  EXPECT_EQ(svc.status(h).production_runs, 3u);
}

TEST(TuningService, TunedRunsBeatTheUntunedBaseline) {
  auto opts = fast_options();
  opts.ledger_baseline = ServiceOptions::Baseline::kSparkDefault;
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("pagerank"), gib(8));
  for (int i = 0; i < 5; ++i) svc.run_once(h);
  EXPECT_GT(svc.status(h).cumulative_savings, 0.0);
}

TEST(TuningService, InputGrowthTriggersRetuning) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("pagerank"), gib(4));
  for (int i = 0; i < 6; ++i) svc.run_once(h);
  const auto before = svc.status(h).tunings;
  for (int i = 0; i < 8; ++i) svc.run_once(h, gib(64));
  EXPECT_GT(svc.status(h).tunings, before);
}

TEST(TuningService, KnowledgeAccumulatesAcrossTenants) {
  TuningService svc(fast_options());
  const int h1 = svc.submit("acme", workload::make_workload("sort"), gib(8));
  svc.run_once(h1);
  const auto kb_after_one = svc.knowledge_base().size();
  EXPECT_GT(kb_after_one, 0u);
  const int h2 = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  svc.run_once(h2);
  EXPECT_GT(svc.knowledge_base().size(), kb_after_one);
  EXPECT_EQ(svc.knowledge_base().tenant_count(), 2u);
}

TEST(TuningService, SloTrackerSeesEveryProductionRun) {
  TuningService svc(fast_options());
  const int h = svc.submit("acme", workload::make_workload("wordcount"), gib(4));
  for (int i = 0; i < 4; ++i) svc.run_once(h);
  EXPECT_EQ(svc.slo_tracker(h).runs(), 4u);
}

TEST(TuningService, DeterministicGivenSeed) {
  auto opts = fast_options();
  opts.seed = 1234;
  TuningService a(opts), b(opts);
  const int ha = a.submit("t", workload::make_workload("bayes"), gib(8));
  const int hb = b.submit("t", workload::make_workload("bayes"), gib(8));
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.run_once(ha).runtime, b.run_once(hb).runtime);
  }
}

TEST(TuningService, AromaTransferStrategyWorksEndToEnd) {
  auto opts = fast_options();
  opts.transfer_strategy = ServiceOptions::TransferStrategy::kAroma;
  opts.tune_cloud = false;
  opts.default_cluster = {"h1.4xlarge", 4};
  TuningService svc(opts);
  const int h1 = svc.submit("acme", workload::make_workload("sort"), gib(8));
  for (int i = 0; i < 3; ++i) svc.run_once(h1);
  const int h2 = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  const auto r = svc.run_once(h2);
  EXPECT_TRUE(r.success);
  EXPECT_GT(svc.status(h2).best_runtime, 0.0);
}

// Regression: submit/run_once/status used to mutate entries_, the knowledge
// base and the tuning counter with no lock, so concurrent tenants corrupted
// the handle map. Every public entry point now takes the service mutex; this
// drives all of them from concurrent threads (TSan job covers the schedule
// space) and checks the per-tenant results are intact.
TEST(TuningService, ConcurrentTenantsSubmitAndRunSafely) {
  auto opts = fast_options();
  opts.tune_cloud = false;  // keep each thread's work small
  opts.default_cluster = {"h1.4xlarge", 4};
  opts.tuning_budget = 6;
  TuningService svc(opts);

  constexpr int kTenants = 4;
  constexpr int kRuns = 3;
  std::vector<int> handles(kTenants, -1);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&svc, &handles, t] {
      const int h = svc.submit("tenant-" + std::to_string(t),
                               workload::make_workload("sort"), gib(4));
      handles[static_cast<std::size_t>(t)] = h;
      for (int i = 0; i < kRuns; ++i) {
        const auto r = svc.run_once(h);
        EXPECT_TRUE(r.success);
        (void)svc.status(h);
      }
    });
  }
  for (auto& th : tenants) th.join();

  std::set<int> distinct(handles.begin(), handles.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kTenants));
  for (const int h : handles) {
    const auto s = svc.status(h);
    EXPECT_TRUE(s.tuned);
    EXPECT_EQ(s.production_runs, static_cast<std::size_t>(kRuns));
    EXPECT_GT(s.best_runtime, 0.0);
  }
  EXPECT_EQ(svc.knowledge_base().tenant_count(), static_cast<std::size_t>(kTenants));
}

TEST(TuningService, StatusReflectsClusterChoice) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.default_cluster = {"r5.2xlarge", 6};
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("kmeans"), gib(8));
  svc.run_once(h);
  EXPECT_EQ(svc.status(h).cluster, (cluster::ClusterSpec{"r5.2xlarge", 6}));
}

// -- AdmissionController -----------------------------------------------------------

TEST(AdmissionController, InflightBudgetSaturatesAndReleases) {
  AdmissionOptions o;
  o.max_inflight = 2;
  AdmissionController adm(o);
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kShedSaturated);
  EXPECT_EQ(adm.inflight(), 2u);
  EXPECT_EQ(adm.peak_inflight(), 2u);
  adm.release();
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
}

TEST(AdmissionController, TokenBucketShedsBurstsAndRefills) {
  AdmissionOptions o;
  o.tokens_per_s = 1.0;
  o.burst = 2.0;
  AdmissionController adm(o);
  EXPECT_EQ(adm.try_admit(0.0), AdmitDecision::kAdmit);
  adm.release();
  EXPECT_EQ(adm.try_admit(0.0), AdmitDecision::kAdmit);
  adm.release();
  EXPECT_EQ(adm.try_admit(0.0), AdmitDecision::kShedRateLimited);
  // Virtual time passes: the bucket refills and the shard re-admits.
  EXPECT_EQ(adm.try_admit(5.0), AdmitDecision::kAdmit);
}

TEST(AdmissionController, NegativeArrivalPassesNoVirtualTime) {
  AdmissionOptions o;
  o.tokens_per_s = 100.0;
  o.burst = 1.0;
  AdmissionController adm(o);
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
  adm.release();
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kShedRateLimited);
}

TEST(AdmissionController, ClockIsMonotoneUnderOutOfOrderArrivals) {
  AdmissionOptions o;
  o.tokens_per_s = 1.0;
  o.burst = 10.0;
  AdmissionController adm(o);
  EXPECT_EQ(adm.try_admit(10.0), AdmitDecision::kAdmit);
  EXPECT_DOUBLE_EQ(adm.clock_s(), 10.0);
  adm.release();
  EXPECT_EQ(adm.try_admit(4.0), AdmitDecision::kAdmit);  // stale timestamp
  EXPECT_DOUBLE_EQ(adm.clock_s(), 10.0);                 // no rewind
}

TEST(AdmissionController, TuningBucketFixedStockRunsDry) {
  AdmissionOptions o;
  o.tuning_tokens_per_s = 0.0;  // fixed stock, never refills
  o.tuning_burst = 2.0;
  AdmissionController adm(o);
  EXPECT_TRUE(adm.try_take_tuning());
  EXPECT_TRUE(adm.try_take_tuning());
  EXPECT_FALSE(adm.try_take_tuning());
}

TEST(AdmissionController, DegradeAboveInflightSkipsTuningUnderLoad) {
  AdmissionOptions o;
  o.degrade_above_inflight = 1;
  AdmissionController adm(o);
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
  EXPECT_TRUE(adm.try_take_tuning());  // 1 in flight: at, not above, the bar
  EXPECT_EQ(adm.try_admit(-1.0), AdmitDecision::kAdmit);
  EXPECT_FALSE(adm.try_take_tuning());  // 2 in flight: drain first
  adm.release();
  EXPECT_TRUE(adm.try_take_tuning());
}

// -- SharedKnowledgeBase -----------------------------------------------------------

TEST(SharedKnowledgeBase, CountsAreMonotoneAcrossRetention) {
  SharedKnowledgeBaseOptions o;
  o.max_records = 2;
  SharedKnowledgeBase kb(o);
  for (int i = 0; i < 5; ++i) {
    kb.record_execution(make_record("t" + std::to_string(i), "w", 10.0 + i, gib(1)));
  }
  EXPECT_EQ(kb.total_records(), 5u);
  EXPECT_EQ(kb.retained_records(), 2u);
  EXPECT_EQ(kb.distinct_tenants(), 5u);  // the index survives retention
  EXPECT_EQ(kb.snapshot().size(), 2u);
}

TEST(SharedKnowledgeBase, IndexedDonorsAreCappedBestFirst) {
  SharedKnowledgeBaseOptions o;
  o.donors_per_cell = 2;
  SharedKnowledgeBase kb(o);
  kb.record_execution(make_record("a", "w", 30.0, gib(1)));
  kb.record_execution(make_record("a", "w", 10.0, gib(1)));
  kb.record_execution(make_record("a", "w", 20.0, gib(1)));
  const auto donors = kb.indexed_donors();
  ASSERT_EQ(donors.size(), 2u);
  EXPECT_DOUBLE_EQ(donors[0].observation.runtime, 10.0);
  EXPECT_DOUBLE_EQ(donors[1].observation.runtime, 20.0);
}

TEST(SharedKnowledgeBase, FailedRecordsNeverDonate) {
  SharedKnowledgeBase kb;
  auto r = make_record("a", "w", 10.0, gib(1));
  r.failed = true;
  kb.record_execution(r);
  EXPECT_TRUE(kb.indexed_donors().empty());
  EXPECT_FALSE(kb.best_similar_runtime({}, gib(1)).has_value());
}

TEST(SharedKnowledgeBase, BestSimilarRuntimeFiltersBySizeAndSimilarity) {
  SharedKnowledgeBase kb;
  transfer::Signature near{};
  near.cpu_fraction = 0.1;
  transfer::Signature far{};
  far.cpu_fraction = 4.0;
  far.gc_fraction = 4.0;
  kb.record_execution(make_record("a", "w", 50.0, gib(8), near));
  kb.record_execution(make_record("a", "w", 5.0, gib(8), far));     // dissimilar
  kb.record_execution(make_record("a", "w", 7.0, gib(512), near));  // wrong size
  const auto best = kb.best_similar_runtime({}, gib(8), 0.6, 1.5);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(*best, 50.0);
}

// -- Serving tier: sharding, admission, shedding, degradation ----------------------

TEST(TuningServiceServing, ServeDefaultRequestMatchesRunOnceBitwise) {
  auto opts = fast_options();
  TuningService a(opts), b(opts);
  const int ha = a.submit("t", workload::make_workload("join"), gib(8));
  const int hb = b.submit("t", workload::make_workload("join"), gib(8));
  for (int i = 0; i < 3; ++i) {
    const auto ra = a.run_once(ha);
    const auto rb = b.serve(hb);
    EXPECT_EQ(rb.outcome, ServeOutcome::kServed);
    EXPECT_FALSE(rb.deadline_exceeded);
    EXPECT_DOUBLE_EQ(ra.runtime, rb.report.runtime);
    EXPECT_DOUBLE_EQ(ra.cost, rb.report.cost);
  }
}

TEST(TuningServiceServing, RateLimitShedsWithReasonThenReadmits) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.admission.tokens_per_s = 1.0;
  opts.admission.burst = 2.0;
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(4));

  ServeRequest req;
  req.arrival_s = 0.0;
  EXPECT_EQ(svc.serve(h, req).outcome, ServeOutcome::kServed);
  EXPECT_EQ(svc.serve(h, req).outcome, ServeOutcome::kServed);
  const auto shed = svc.serve(h, req);
  EXPECT_EQ(shed.outcome, ServeOutcome::kShed);
  EXPECT_EQ(shed.shed_reason, ShedReason::kRateLimited);
  // A shed request runs nothing: production count unchanged.
  EXPECT_EQ(svc.status(h).production_runs, 2u);

  const auto health = svc.health();
  ASSERT_EQ(health.per_shard.size(), 1u);
  EXPECT_EQ(health.per_shard[0].shed_rate_limited, 1u);
  EXPECT_EQ(health.served + health.degraded, 2u);
  EXPECT_EQ(health.shed, 1u);

  // Load drops (virtual time passes): the bucket refills and serves again.
  req.arrival_s = 10.0;
  EXPECT_EQ(svc.serve(h, req).outcome, ServeOutcome::kServed);
  EXPECT_EQ(svc.status(h).production_runs, 3u);
}

TEST(TuningServiceServing, ExpiredDeadlineIsShedBeforeRunning) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(4));
  ServeRequest req;
  req.deadline_s = 0.0;
  const auto r = svc.serve(h, req);
  EXPECT_EQ(r.outcome, ServeOutcome::kShed);
  EXPECT_EQ(r.shed_reason, ShedReason::kDeadlineInfeasible);
  EXPECT_EQ(svc.status(h).production_runs, 0u);
  EXPECT_EQ(svc.health().per_shard[0].shed_deadline, 1u);
}

TEST(TuningServiceServing, OverrunDeadlineIsFlaggedOnTheResult) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(4));
  ServeRequest req;
  req.deadline_s = 1e-6;  // feasible on paper, overrun by any real run
  const auto r = svc.serve(h, req);
  EXPECT_NE(r.outcome, ServeOutcome::kShed);
  EXPECT_TRUE(r.deadline_exceeded);
  EXPECT_GT(r.report.runtime, req.deadline_s);
  EXPECT_EQ(svc.health().per_shard[0].deadline_exceeded, 1u);
}

TEST(TuningServiceServing, TuningCapacityShedDegradesToBestKnownGood) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.default_cluster = {"h1.4xlarge", 4};
  opts.admission.tuning_tokens_per_s = 0.0;  // fixed stock:
  opts.admission.tuning_burst = 1.0;         // exactly one tuning session
  TuningService svc(opts);

  const int ha = svc.submit("acme", workload::make_workload("sort"), gib(8));
  EXPECT_EQ(svc.serve(ha).outcome, ServeOutcome::kServed);
  EXPECT_TRUE(svc.status(ha).tuned);

  // The stock is gone: the next tenant is answered degraded, not queued.
  const int hb = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  const auto first = svc.serve(hb);
  EXPECT_EQ(first.outcome, ServeOutcome::kDegraded);
  EXPECT_FALSE(svc.status(hb).tuned);
  EXPECT_EQ(svc.status(hb).degraded_runs, 1u);

  // From the second degraded run on, the service answers from the
  // best-known-good path: the config must equal — bitwise — the best
  // successful donor the transfer policy selects for this workload's
  // signature from the shared knowledge base.
  const auto donors = svc.knowledge_donors();
  const auto sig = transfer::characterize(first.report);
  const auto second = svc.serve(hb);
  EXPECT_EQ(second.outcome, ServeOutcome::kDegraded);
  const auto picks = transfer::select_warm_start(sig, donors, svc.options().transfer);
  const tuning::Observation* best = nullptr;
  for (const auto& o : picks) {
    if (o.failed) continue;
    if (best == nullptr || o.runtime < best->runtime) best = &o;
  }
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(svc.status(hb).config.values(), best->config.values());
  EXPECT_EQ(svc.health().degraded, 2u);
}

TEST(TuningServiceServing, TuningCapacityRefillReadmitsTuning) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.admission.tuning_tokens_per_s = 1.0;
  opts.admission.tuning_burst = 1.0;
  TuningService svc(opts);

  const int ha = svc.submit("acme", workload::make_workload("sort"), gib(8));
  ServeRequest req;
  req.arrival_s = 0.0;
  EXPECT_EQ(svc.serve(ha, req).outcome, ServeOutcome::kServed);

  const int hb = svc.submit("globex", workload::make_workload("terasort"), gib(8));
  req.arrival_s = 0.1;  // bucket still (almost) empty
  EXPECT_EQ(svc.serve(hb, req).outcome, ServeOutcome::kDegraded);
  req.arrival_s = 10.0;  // capacity recovered
  EXPECT_EQ(svc.serve(hb, req).outcome, ServeOutcome::kServed);
  EXPECT_TRUE(svc.status(hb).tuned);
}

TEST(TuningServiceServing, SaturatedShardShedsInsteadOfQueueing) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.tuning_budget = 200;  // pin the shard long enough to observe it busy
  opts.admission.max_inflight = 1;
  TuningService svc(opts);
  const int slow = svc.submit("acme", workload::make_workload("sort"), gib(8));
  const int fast = svc.submit("acme", workload::make_workload("wordcount"), gib(1));

  std::thread holder([&svc, slow] {
    EXPECT_EQ(svc.serve(slow).outcome, ServeOutcome::kServed);
  });
  // The in-flight count rises at admission, before tuning starts; wait for
  // it so the shed below races only against the (long) tuning session.
  while (svc.health(false).per_shard[0].inflight == 0) std::this_thread::yield();

  const auto shed = svc.serve(fast);
  EXPECT_EQ(shed.outcome, ServeOutcome::kShed);
  EXPECT_EQ(shed.shed_reason, ShedReason::kShardSaturated);
  holder.join();

  // Load dropped: the shard re-admits.
  EXPECT_NE(svc.serve(fast).outcome, ServeOutcome::kShed);
  const auto health = svc.health();
  EXPECT_GE(health.per_shard[0].shed_saturated, 1u);
  EXPECT_EQ(health.per_shard[0].peak_inflight, 1u);
  EXPECT_EQ(health.per_shard[0].inflight, 0u);
}

TEST(TuningServiceServing, HealthAnswersConcurrentlyUnderStress) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.shards = 4;
  opts.tuning_budget = 40;
  opts.admission.max_inflight = 8;
  TuningService svc(opts);

  constexpr int kTenants = 6;
  std::vector<std::thread> workers;
  workers.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    workers.emplace_back([&svc, t] {
      const int h = svc.submit("tenant-" + std::to_string(t),
                               workload::make_workload(t % 2 == 0 ? "sort" : "wordcount"),
                               gib(2));
      for (int i = 0; i < 3; ++i) (void)svc.serve(h);
    });
  }
  // health() must answer promptly while every shard is tuning: it touches
  // only control mutexes, never a shard's main mutex.
  std::uint64_t observed_ops = 0;
  for (int i = 0; i < 400; ++i) {
    const auto h = svc.health(i % 2 == 0);
    EXPECT_EQ(h.per_shard.size(), 4u);
    const std::uint64_t ops = h.served + h.degraded + h.shed;
    EXPECT_GE(ops, observed_ops);  // counters are monotone
    observed_ops = ops;
  }
  for (auto& w : workers) w.join();

  const auto final_health = svc.health();
  EXPECT_EQ(final_health.tenants, static_cast<std::size_t>(kTenants));
  EXPECT_EQ(final_health.served + final_health.degraded, 3u * kTenants);
  EXPECT_EQ(final_health.per_tenant.size(), static_cast<std::size_t>(kTenants));
}

TEST(TuningServiceServing, ShardCountAndJobsPreservePerTenantResultsBitwise) {
  const std::vector<std::string> workloads = {"sort", "wordcount", "terasort",
                                              "join", "kmeans", "bayes"};
  constexpr int kRuns = 3;

  // Reference: the pre-sharding single-lane service.
  struct TenantTrace {
    std::vector<double> runtimes;
    std::vector<double> config;
  };
  const auto drive = [&](std::size_t shards, std::size_t jobs) {
    auto opts = fast_options();
    opts.tune_cloud = false;
    opts.shards = shards;
    opts.jobs = jobs;
    TuningService svc(opts);
    std::vector<int> handles;
    for (std::size_t t = 0; t < workloads.size(); ++t) {
      handles.push_back(svc.submit("tenant-" + std::to_string(t),
                                   workload::make_workload(workloads[t]), gib(4)));
    }
    std::vector<TenantTrace> traces(workloads.size());
    for (int i = 0; i < kRuns; ++i) {
      for (std::size_t t = 0; t < handles.size(); ++t) {
        const auto r = svc.serve(handles[t]);
        EXPECT_NE(r.outcome, ServeOutcome::kShed);
        traces[t].runtimes.push_back(r.report.runtime);
      }
    }
    for (std::size_t t = 0; t < handles.size(); ++t) {
      traces[t].config = svc.status(handles[t]).config.values();
    }
    return traces;
  };

  const auto reference = drive(1, 1);
  for (const std::size_t shards : {4u, 16u}) {
    for (const std::size_t jobs : {1u, 3u}) {
      const auto got = drive(shards, jobs);
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t t = 0; t < reference.size(); ++t) {
        EXPECT_EQ(got[t].runtimes, reference[t].runtimes)
            << "tenant " << t << " diverged at shards=" << shards << " jobs=" << jobs;
        EXPECT_EQ(got[t].config, reference[t].config)
            << "tenant " << t << " config diverged at shards=" << shards
            << " jobs=" << jobs;
      }
    }
  }
}

TEST(TuningServiceServing, TenantLocalScopeIsolatesTenantsFromFleetActivity) {
  // Under TransferScope::kTenantLocal a tenant's results are a pure function
  // of its own request stream: a service shared with a noisy fleet and a
  // private service must agree bitwise.
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.transfer_scope = ServiceOptions::TransferScope::kTenantLocal;
  opts.shards = 4;

  TuningService solo(opts);
  const int hs = solo.submit("observer", workload::make_workload("join"), gib(8));

  TuningService fleet(opts);
  const int hf = fleet.submit("observer", workload::make_workload("join"), gib(8));
  for (int t = 0; t < 5; ++t) {
    const int noisy = fleet.submit("noisy-" + std::to_string(t),
                                   workload::make_workload("sort"), gib(2));
    fleet.run_once(noisy);  // interleaved fleet activity
  }

  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(solo.run_once(hs).runtime, fleet.run_once(hf).runtime);
  }
  EXPECT_EQ(solo.status(hs).config.values(), fleet.status(hf).config.values());
}

TEST(TuningServiceServing, HandlesEncodeShardsAndRejectUnknowns) {
  auto opts = fast_options();
  opts.tune_cloud = false;
  opts.shards = 4;
  TuningService svc(opts);
  EXPECT_EQ(svc.shard_count(), 4u);
  std::set<int> handles;
  for (int t = 0; t < 8; ++t) {
    const int h = svc.submit("tenant-" + std::to_string(t),
                             workload::make_workload("wordcount"), gib(1));
    EXPECT_TRUE(handles.insert(h).second) << "duplicate handle " << h;
    EXPECT_EQ(svc.status(h).tenant, "tenant-" + std::to_string(t));
  }
  EXPECT_THROW(svc.run_once(99991), std::out_of_range);
  EXPECT_THROW(svc.serve(99990), std::out_of_range);
  EXPECT_THROW(svc.status(-7), std::out_of_range);
}

}  // namespace
}  // namespace stune::service
