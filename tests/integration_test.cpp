// Cross-module integration tests that pin the *shapes* the paper reports —
// the same properties the benchmarks regenerate, asserted at reduced scale
// so they stay fast.
#include <gtest/gtest.h>

#include <limits>

#include <chrono>
#include <cstdint>
#include <string>

#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "service/tuning_service.hpp"
#include "simcore/rng.hpp"
#include "tuning/tuners.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune {
namespace {

using simcore::gib;

const cluster::Cluster& testbed() {
  static const cluster::Cluster c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  return c;
}

/// Mean runtime over a few engine seeds (run-to-run environmental noise);
/// failed if any seed fails.
struct AvgOutcome {
  double runtime = 0.0;
  bool success = true;
};

AvgOutcome averaged_runtime(const workload::Workload& w, simcore::Bytes size,
                            const config::Configuration& c) {
  AvgOutcome out;
  for (std::uint64_t seed = 42; seed < 45; ++seed) {
    disc::EngineOptions opts;
    opts.seed = seed;
    const disc::SparkSimulator sim(testbed(), opts);
    const auto r = workload::execute(w, size, sim, c);
    out.runtime += r.runtime / 3.0;
    out.success &= r.success;
  }
  return out;
}

/// Best mean runtime over n random configurations (the paper's Table I
/// protocol), plus the best configuration itself.
std::pair<double, config::Configuration> best_of_random(const workload::Workload& w,
                                                        simcore::Bytes size, int n,
                                                        std::uint64_t seed) {
  const auto space = config::spark_space();
  simcore::Rng rng(seed);
  double best = std::numeric_limits<double>::infinity();
  config::Configuration best_config = space->default_config();
  for (int i = 0; i < n; ++i) {
    const auto c = space->sample(rng);
    const auto r = averaged_runtime(w, size, c);
    if (r.success && r.runtime < best) {
      best = r.runtime;
      best_config = c;
    }
  }
  return {best, best_config};
}

TEST(TableOne, RetuningSavingsGrowWithInputAndDependOnWorkload) {
  // The paper's protocol: 100 random configs, DS1 vs DS3. A reused
  // configuration that crashes at the larger scale counts as 100% potential
  // saving (re-tuning is then not merely faster but necessary).
  const int kConfigs = 100;
  auto savings = [&](const std::string& name) {
    const auto w = workload::make_workload(name);
    const auto [best1, config1] = best_of_random(*w, gib(4), kConfigs, 11);
    const auto [best3, config3] = best_of_random(*w, gib(64), kConfigs, 11);
    const auto reused = averaged_runtime(*w, gib(64), config1);
    if (!reused.success) return 1.0;
    return (reused.runtime - best3) / reused.runtime;
  };
  const double pagerank = savings("pagerank");
  const double wordcount = savings("wordcount");
  // Paper Table I: Pagerank 56%, Wordcount 3% at DS3. We require the
  // qualitative ordering and rough magnitudes.
  EXPECT_GT(pagerank, 0.15);
  EXPECT_LT(wordcount, 0.15);
  EXPECT_GT(pagerank, wordcount);
}

TEST(Misconfiguration, DefaultsCostAnOrderOfMagnitude) {
  // §I: "suboptimal framework configurations can lead to 89X performance
  // degradation"; we require >= 5x at this reduced scale.
  const auto w = workload::make_workload("pagerank");
  const auto [best, config] = best_of_random(*w, gib(16), 40, 23);
  const auto def = averaged_runtime(*w, gib(16), config::spark_space()->default_config());
  ASSERT_TRUE(def.success);
  EXPECT_GT(def.runtime / best, 5.0);
}

TEST(Misconfiguration, SomeConfigurationsCrash) {
  const disc::SparkSimulator sim(testbed());
  const auto space = config::spark_space();
  simcore::Rng rng(31);
  const auto w = workload::make_workload("sort");
  int failures = 0;
  for (int i = 0; i < 60; ++i) {
    const auto r = workload::execute(*w, gib(64), sim, space->sample(rng));
    failures += r.success ? 0 : 1;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 60);
}

TEST(Transfer, WarmStartAcceleratesConvergence) {
  // §V-B: knowledge from a similar workload makes tuning more data
  // efficient. Tune sort at DS2 with knowledge from DS1.
  const auto w = workload::make_workload("sort");
  const disc::SparkSimulator sim(testbed());
  const auto space = config::spark_space();

  tuning::Objective obj_small = [&](const config::Configuration& c) -> tuning::EvalOutcome {
    const auto r = workload::execute(*w, gib(4), sim, c);
    return {r.runtime, !r.success};
  };
  tuning::Objective obj_big = [&](const config::Configuration& c) -> tuning::EvalOutcome {
    const auto r = workload::execute(*w, gib(16), sim, c);
    return {r.runtime, !r.success};
  };

  tuning::TuneOptions donor_opts;
  donor_opts.budget = 30;
  donor_opts.seed = 5;
  const auto donor = tuning::BayesOptTuner().tune(space, obj_small, donor_opts);

  tuning::TuneOptions cold;
  cold.budget = 8;
  cold.seed = 6;
  tuning::TuneOptions warm = cold;
  for (const auto& o : donor.history) {
    if (!o.failed && warm.warm_start.size() < 5) warm.warm_start.push_back(o);
  }
  double cold_best = 0.0, warm_best = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    cold.seed = s;
    warm.seed = s;
    cold_best += tuning::BayesOptTuner().tune(space, obj_big, cold).best_runtime;
    warm_best += tuning::BayesOptTuner().tune(space, obj_big, warm).best_runtime;
  }
  EXPECT_LE(warm_best, cold_best * 1.05);
}

TEST(Service, AmortizesTuningForFrequentlyRunWorkloads) {
  // §IV-C: tuning pays for itself within the workload's lifetime when the
  // baseline is what an untuned user would run.
  service::ServiceOptions opts;
  opts.tuning_budget = 15;
  opts.cloud.budget = 6;
  opts.ledger_baseline = service::ServiceOptions::Baseline::kSparkDefault;
  service::TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("pagerank"), gib(8));
  for (int i = 0; i < 30; ++i) svc.run_once(h);
  EXPECT_TRUE(svc.ledger(h).amortized());
  ASSERT_TRUE(svc.status(h).break_even_run.has_value());
  EXPECT_LE(*svc.status(h).break_even_run, 30u);
}

TEST(Service, CrossTenantTransferHelpsUnderTightBudgets) {
  // §V-B's payoff shows when the new tenant cannot afford much exploration:
  // a tight tuning budget plus knowledge from a similar tenant must reach a
  // configuration at least as good as the same budget cold.
  service::ServiceOptions opts;
  opts.tuning_budget = 8;
  opts.tune_cloud = false;  // same cluster for both tenants
  opts.default_cluster = {"h1.4xlarge", 4};
  service::TuningService with_transfer(opts);
  auto no_transfer_opts = opts;
  no_transfer_opts.enable_transfer = false;
  service::TuningService without_transfer(no_transfer_opts);

  // Tenant 1 accumulates knowledge; tenant 2 runs the same workload type.
  auto tuned_quality_of_second_tenant = [&](service::TuningService& svc) {
    const int h1 = svc.submit("acme", workload::make_workload("pagerank"), gib(8));
    for (int i = 0; i < 4; ++i) svc.run_once(h1);
    const int h2 = svc.submit("globex", workload::make_workload("pagerank"), gib(8));
    svc.run_once(h2);
    return svc.status(h2).best_runtime;
  };
  const double with = tuned_quality_of_second_tenant(with_transfer);
  const double without = tuned_quality_of_second_tenant(without_transfer);
  EXPECT_LE(with, without * 1.05);
  EXPECT_EQ(with_transfer.knowledge_base().tenant_count(), 2u);
}

TEST(SloMetric, TunedServiceStaysNearTheBestKnownRuntime) {
  // §IV-D's caveat applies to us too: the reference is the *luckiest* run
  // of a similar workload, so per-run attainment at a tight fraction is
  // noisy by construction. We require the service to attain 25% most of
  // the time and to stay well under 30% excess on average.
  service::ServiceOptions opts;
  opts.tuning_budget = 20;
  opts.cloud.budget = 8;
  opts.slo.within_fraction = 0.25;
  opts.seed = 7;
  service::TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("bayes"), gib(8));
  for (int i = 0; i < 12; ++i) svc.run_once(h);
  EXPECT_GE(svc.slo_tracker(h).attainment(), 0.6);
  EXPECT_LT(svc.slo_tracker(h).mean_excess_fraction(), 0.3);
  EXPECT_EQ(svc.slo_tracker(h).runs_with_reference(), 12u);
}

TEST(Engine, ThroughputIsFastEnoughForTuningResearch) {
  // The whole point of the simulator substrate: an "execution" must cost
  // microseconds, not minutes, or the 100-config protocols are unusable.
  const auto w = workload::make_workload("bayes");
  const disc::SparkSimulator sim(testbed());
  const auto conf = config::spark_space()->default_config();
  const auto start = std::chrono::steady_clock::now();  // stune-lint: allow(no-wall-clock)
  for (int i = 0; i < 200; ++i) {
    (void)workload::execute(*w, gib(8), sim, conf);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;  // stune-lint: allow(no-wall-clock)
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 2000);
}

}  // namespace
}  // namespace stune
