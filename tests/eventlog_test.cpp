#include <cstddef>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "disc/eventlog.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::disc {
namespace {

using simcore::gib;

ExecutionReport sample_report(const std::string& workload = "bayes", bool crash = false) {
  auto conf = config::spark_space()->default_config();
  if (!crash) {
    conf.set(config::spark::kExecutorInstances, 16);
    conf.set(config::spark::kExecutorCores, 4);
    conf.set(config::spark::kExecutorMemoryGiB, 13.0);
    conf.set(config::spark::kDefaultParallelism, 256);
    conf.set(config::spark::kDriverMemoryGiB, 8.0);
  } else {
    conf.set(config::spark::kExecutorInstances, 8);
    conf.set(config::spark::kExecutorCores, 8);
    conf.set(config::spark::kMemoryFraction, 0.3);
    conf.set(config::spark::kDefaultParallelism, 8);
  }
  const SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  return workload::execute(*workload::make_workload(workload), gib(crash ? 64 : 8), sim, conf);
}

TEST(EventLog, RoundTripsASuccessfulRun) {
  const auto original = sample_report();
  ASSERT_TRUE(original.success);
  const auto parsed = from_event_log(to_event_log(original));

  EXPECT_EQ(parsed.success, original.success);
  EXPECT_NEAR(parsed.runtime, original.runtime, 1e-6);
  EXPECT_NEAR(parsed.cost, original.cost, 1e-9);
  EXPECT_EQ(parsed.executors, original.executors);
  EXPECT_EQ(parsed.total_slots, original.total_slots);
  ASSERT_EQ(parsed.stages.size(), original.stages.size());
  for (std::size_t i = 0; i < parsed.stages.size(); ++i) {
    EXPECT_EQ(parsed.stages[i].label, original.stages[i].label);
    EXPECT_EQ(parsed.stages[i].tasks, original.stages[i].tasks);
    EXPECT_NEAR(parsed.stages[i].duration, original.stages[i].duration, 1e-6);
    EXPECT_EQ(parsed.stages[i].shuffle_read_bytes, original.stages[i].shuffle_read_bytes);
    EXPECT_EQ(parsed.stages[i].spilled_bytes, original.stages[i].spilled_bytes);
  }
  // Aggregates must be rebuilt on parse.
  EXPECT_NEAR(parsed.total_cpu, original.total_cpu, 1e-6);
  EXPECT_EQ(parsed.total_shuffle_read, original.total_shuffle_read);
}

TEST(EventLog, RoundTripsAFailedRunWithReason) {
  const auto original = sample_report("sort", /*crash=*/true);
  ASSERT_FALSE(original.success);
  const auto parsed = from_event_log(to_event_log(original));
  EXPECT_FALSE(parsed.success);
  EXPECT_EQ(parsed.failure_reason, original.failure_reason);
}

TEST(EventLog, LogIsOneJsonObjectPerLine) {
  const auto log = to_event_log(sample_report());
  std::size_t lines = 0;
  std::istringstream in(log);
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"event\":"), std::string::npos);
  }
  // job_start + stages + job_end
  EXPECT_EQ(lines, sample_report().stages.size() + 2);
}

TEST(EventLog, EscapesSpecialCharactersInLabels) {
  ExecutionReport r;
  r.success = true;
  r.runtime = 1.0;
  StageMetrics s;
  s.stage_id = 0;
  s.label = "weird \"label\" with \\ and\nnewline";
  s.tasks = 1;
  r.stages.push_back(s);
  const auto parsed = from_event_log(to_event_log(r));
  EXPECT_EQ(parsed.stages[0].label, s.label);
}

TEST(EventLog, RejectsMalformedInput) {
  EXPECT_THROW(from_event_log(""), std::invalid_argument);
  EXPECT_THROW(from_event_log("{\"event\":\"job_start\"}"), std::invalid_argument);
  EXPECT_THROW(from_event_log("{\"event\":\"alien\"}\n"), std::invalid_argument);
  // Stage line with a missing required key.
  const std::string bad =
      "{\"event\":\"job_start\",\"executors\":1,\"total_slots\":1,"
      "\"exec_mem_per_task\":1,\"storage_mem_total\":1,\"cache_hit\":1}\n"
      "{\"event\":\"stage_completed\",\"stage_id\":0}\n"
      "{\"event\":\"job_end\",\"success\":1,\"runtime\":1,\"cost\":0}\n";
  EXPECT_THROW(from_event_log(bad), std::invalid_argument);
}

TEST(EventLog, ParseIsIdempotentThroughASecondRoundTrip) {
  const auto original = sample_report("pagerank");
  const auto once = to_event_log(from_event_log(to_event_log(original)));
  EXPECT_EQ(once, to_event_log(original));
}

}  // namespace
}  // namespace stune::disc
