// Golden-fixture tests for every stune_analyze rule family (tools/analyze).
// Each fixture is a tiny synthetic program — usually two or three files, so
// the cross-TU machinery (include graph, call graph, reachability, lock
// graph) is actually exercised — with the violation in real code position.
// Fixture text lives in string literals, which both analyzers strip before
// scanning, so this file stays lint- and analyze-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

#ifndef STUNE_SOURCE_ROOT
#define STUNE_SOURCE_ROOT "."
#endif

namespace stune::analyze {
namespace {

Program make_program(std::vector<SourceFile> files) {
  Program p;
  for (SourceFile& f : files) p.add_file(std::move(f));
  return p;
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

const Violation& only(const std::vector<Violation>& vs, const std::string& rule) {
  const Violation* found = nullptr;
  for (const auto& v : vs) {
    if (v.rule == rule) {
      EXPECT_EQ(found, nullptr) << "more than one [" << rule << "] violation";
      found = &v;
    }
  }
  EXPECT_NE(found, nullptr) << "no [" << rule << "] violation";
  static const Violation none{};
  return found != nullptr ? *found : none;
}

// ---------------------------------------------------------------------------
// Layering manifest
// ---------------------------------------------------------------------------

TEST(AnalyzeManifest, ParsesTheTomlSubset) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_manifest(
      "# comment\n[modules]\nbase = []\nupper = [\"base\", \"other\"]\nother = [\"base\"]\n",
      m, error))
      << error;
  EXPECT_EQ(m.order, (std::vector<std::string>{"base", "upper", "other"}));
  EXPECT_EQ(m.allowed.at("upper"), (std::set<std::string>{"base", "other"}));
  EXPECT_TRUE(m.allowed.at("base").empty());
}

TEST(AnalyzeManifest, RejectsMalformedInput) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(parse_manifest("base = []\n", m, error));  // entry outside [modules]
  EXPECT_FALSE(parse_manifest("[modules]\nbase\n", m, error));
  EXPECT_FALSE(parse_manifest("[modules]\nbase = [unquoted]\n", m, error));
  EXPECT_FALSE(parse_manifest("[modules]\na = []\na = []\n", m, error));  // duplicate
  EXPECT_FALSE(parse_manifest("", m, error));
}

TEST(AnalyzeManifest, CommittedTomlMatchesCompiledDefault) {
  // tools/analyze/layers.toml and default_manifest() must describe the same
  // architecture, or the CLI (which prefers the file) and any embedded user
  // (which gets the default) would enforce different rules.
  std::ifstream f(std::string(STUNE_SOURCE_ROOT) + "/tools/analyze/layers.toml");
  ASSERT_TRUE(f.is_open()) << "cannot open layers.toml under " << STUNE_SOURCE_ROOT;
  std::ostringstream buf;
  buf << f.rdbuf();
  LayerManifest committed;
  std::string error;
  ASSERT_TRUE(parse_manifest(buf.str(), committed, error)) << error;
  const LayerManifest compiled = default_manifest();
  EXPECT_EQ(committed.order, compiled.order);
  EXPECT_EQ(committed.allowed, compiled.allowed);
}

TEST(AnalyzeManifest, DefaultManifestIsAcyclic) {
  const Program empty;
  EXPECT_TRUE(empty.check_layering(default_manifest()).empty());
}

// ---------------------------------------------------------------------------
// Layering checks
// ---------------------------------------------------------------------------

TEST(AnalyzeLayering, ReportsBackEdges) {
  const Program p = make_program({
      {"src/simcore/clock.hpp", "#pragma once\n#include \"tuning/tuner.hpp\"\n"},
  });
  const auto vs = p.check_layering(default_manifest());
  const Violation& v = only(vs, "layer-back-edge");
  EXPECT_EQ(v.file, "src/simcore/clock.hpp");
  EXPECT_EQ(v.line, 2u);
  EXPECT_NE(v.message.find("tuning"), std::string::npos);
}

TEST(AnalyzeLayering, PermittedIncludesAndSelfIncludesAreClean) {
  const Program p = make_program({
      {"src/disc/engine.hpp",
       "#pragma once\n#include \"config/space.hpp\"\n#include \"disc/plan.hpp\"\n"},
  });
  EXPECT_TRUE(p.check_layering(default_manifest()).empty());
}

TEST(AnalyzeLayering, ReportsUndeclaredModules) {
  const Program p = make_program({
      {"src/rogue/widget.cpp", "int f() { return 1; }\n"},
      {"src/disc/engine.cpp", "#include \"rogue/widget.hpp\"\n"},
  });
  const auto vs = p.check_layering(default_manifest());
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_TRUE(has_rule(vs, "layer-unknown-module"));
  EXPECT_FALSE(has_rule(vs, "layer-back-edge"));
}

TEST(AnalyzeLayering, ReportsCyclicManifests) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_manifest("[modules]\na = [\"b\"]\nb = [\"a\"]\n", m, error)) << error;
  const Program empty;
  const auto vs = empty.check_layering(m);
  const Violation& v = only(vs, "layer-cycle");
  EXPECT_EQ(v.file, "<manifest>");
  EXPECT_NE(v.message.find(" -> "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism checks
// ---------------------------------------------------------------------------

// A two-file fixture: the fingerprint entry point lives in one TU, the
// unordered iteration in another, so only cross-TU reachability can see it.
const char* const kRegistryHeader =
    "#pragma once\n"
    "#include <string>\n"
    "#include <unordered_map>\n"
    "struct Registry { std::unordered_map<std::string, int> names; };\n"
    "std::string join_names(const Registry& r);\n";

TEST(AnalyzeDeterminism, FlagsUnorderedIterationReachableFromFingerprint) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/fingerprint.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string fingerprint(const Registry& r) { return join_names(r); }\n"},
      {"src/config/registry.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string join_names(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;\n"
       "  return out;\n"
       "}\n"},
  });
  const auto vs = p.check_determinism();
  const Violation& v = only(vs, "det-iter");
  EXPECT_EQ(v.file, "src/config/registry.cpp");
  EXPECT_EQ(v.line, 4u);
  EXPECT_NE(v.message.find("names"), std::string::npos);
}

TEST(AnalyzeDeterminism, IgnoresUnorderedIterationOffTheFingerprintPaths) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/debug.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string debug_dump(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;\n"
       "  return out;\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(p.check_determinism(), "det-iter"));
}

TEST(AnalyzeDeterminism, AllowCommentSuppressesDetIter) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/fingerprint.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string fingerprint(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;  // stune-lint: allow(det-iter)\n"
       "  return out;\n"
       "}\n"},
  });
  EXPECT_TRUE(has_rule(p.check_determinism(), "det-iter"));  // raw pass still sees it
  EXPECT_FALSE(has_rule(p.check_all(default_manifest()), "det-iter"));  // check_all honors allow()
}

TEST(AnalyzeDeterminism, FlagsPointerKeyedContainers) {
  const Program p = make_program({
      {"src/dag/index.hpp",
       "#pragma once\n"
       "#include <map>\n"
       "#include <unordered_map>\n"
       "struct Node;\n"
       "struct Index {\n"
       "  std::unordered_map<Node*, int> by_node;\n"
       "  std::map<const Node*, int> ordered_by_address;\n"
       "};\n"},
  });
  const auto vs = p.check_determinism();
  EXPECT_EQ(std::count_if(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.rule == "det-ptr-key"; }),
            2);
}

TEST(AnalyzeDeterminism, FlagsDefaultSeededEnginesAndAmbientEntropy) {
  const Program p = make_program({
      {"src/model/sampler.cpp",
       "#include <random>\n"
       "int draw() {\n"
       "  std::mt19937 gen;\n"
       "  std::random_device rd;\n"
       "  return static_cast<int>(gen() + rd());\n"
       "}\n"},
      {"src/model/seeded.cpp",
       "#include <random>\n"
       "int draw_seeded(unsigned seed) {\n"
       "  std::mt19937 gen(seed);\n"
       "  return static_cast<int>(gen());\n"
       "}\n"},
  });
  const auto vs = p.check_determinism();
  const auto in_file = [&vs](const std::string& file) {
    return std::count_if(vs.begin(), vs.end(), [&](const Violation& v) {
      return v.rule == "det-rng" && v.file == file;
    });
  };
  EXPECT_EQ(in_file("src/model/sampler.cpp"), 2);  // default seed + random_device
  EXPECT_EQ(in_file("src/model/seeded.cpp"), 0);   // explicitly seeded is fine
}

TEST(AnalyzeDeterminism, FlagsWallClockReachableFromFingerprint) {
  const Program p = make_program({
      {"src/simcore/stamp.cpp",
       "#include <chrono>\n"
       "long stamp_now() {\n"
       "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
       "}\n"
       "long fingerprint_stamp() { return stamp_now(); }\n"},
  });
  const auto vs = p.check_determinism();
  const Violation& v = only(vs, "det-wall-clock");
  EXPECT_EQ(v.file, "src/simcore/stamp.cpp");
  EXPECT_EQ(v.line, 3u);  // in the callee, reached from the entry point
}

// ---------------------------------------------------------------------------
// Lock-order checks
// ---------------------------------------------------------------------------

TEST(AnalyzeLockOrder, ReportsCrossClassCycles) {
  const Program p = make_program({
      {"src/service/pair.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class B;\n"
       "class A {\n"
       " public:\n"
       "  void f() { const simcore::MutexLock lock(mu_); other_->g(); }\n"
       "  simcore::Mutex mu_;\n"
       "  B* other_;\n"
       "};\n"
       "class B {\n"
       " public:\n"
       "  void g() { const simcore::MutexLock lock(mu_); first_->f(); }\n"
       "  simcore::Mutex mu_;\n"
       "  A* first_;\n"
       "};\n"},
  });
  const auto edges = p.lock_graph();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].held, "A::mu_");
  EXPECT_EQ(edges[0].acquired, "B::mu_");
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-cycle");
  EXPECT_NE(v.message.find("A::mu_"), std::string::npos);
  EXPECT_NE(v.message.find("B::mu_"), std::string::npos);
}

TEST(AnalyzeLockOrder, ReportsDirectNestedReacquisition) {
  const Program p = make_program({
      {"src/workload/self.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class Cache {\n"
       " public:\n"
       "  void touch() {\n"
       "    const simcore::MutexLock outer(mu_);\n"
       "    { const simcore::MutexLock inner(mu_); }\n"
       "  }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-cycle");
  EXPECT_EQ(v.line, 6u);
  EXPECT_NE(v.message.find("re-acquired"), std::string::npos);
}

TEST(AnalyzeLockOrder, ReportsRankOrderContradictions) {
  const Program p = make_program({
      {"src/simcore/ranks.hpp",
       "#pragma once\n"
       "namespace lock_rank {\n"
       "inline constexpr int kFirst = 10;\n"
       "inline constexpr int kSecond = 20;\n"
       "}\n"},
      {"src/service/backwards.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "#include \"simcore/ranks.hpp\"\n"
       "class Low;\n"
       "class High {\n"
       " public:\n"
       "  void f();\n"
       "  simcore::Mutex mu_{lock_rank::kSecond};\n"
       "  Low* low_;\n"
       "};\n"
       "class Low {\n"
       " public:\n"
       "  void g() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_{lock_rank::kFirst};\n"
       "};\n"
       "void High::f() { const simcore::MutexLock lock(mu_); low_->g(); }\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-rank-order");
  EXPECT_NE(v.message.find("rank 10"), std::string::npos);
  EXPECT_NE(v.message.find("rank 20"), std::string::npos);
  EXPECT_FALSE(has_rule(p.check_lock_order(), "lock-cycle"));  // one-directional
}

TEST(AnalyzeLockOrder, ReportsExcludesCalledWithMutexHeld) {
  const Program p = make_program({
      {"src/tuning/reentry.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "#include \"simcore/thread_annotations.hpp\"\n"
       "class Q {\n"
       " public:\n"
       "  void outer() { const simcore::MutexLock lock(mu_); helper(); }\n"
       "  void helper() STUNE_EXCLUDES(mu_);\n"
       " private:\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-excludes");
  EXPECT_EQ(v.line, 5u);
  EXPECT_NE(v.message.find("helper"), std::string::npos);
  EXPECT_NE(v.message.find("Q::mu_"), std::string::npos);
}

TEST(AnalyzeLockOrder, LocalDeclarationsAreNotCalls) {
  // `Widget ledger(opts);` must not look like a call to Store::ledger() —
  // the regression that once wove a phantom edge through the real tree.
  const Program p = make_program({
      {"src/service/decl.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "struct Widget { explicit Widget(int); };\n"
       "class Store {\n"
       " public:\n"
       "  void ledger() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"
       "class User {\n"
       " public:\n"
       "  void run() {\n"
       "    const simcore::MutexLock lock(mu_);\n"
       "    Widget ledger(42);\n"
       "  }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  EXPECT_TRUE(p.lock_graph().empty());
  EXPECT_TRUE(p.check_lock_order().empty());
}

TEST(AnalyzeLockOrder, CanonicalizesForeignObjectExpressions) {
  // SerialSession-style: a helper class locks its owner's mutex through a
  // reference member; both ids must land on the owning class.
  const Program p = make_program({
      {"src/tuning/owner.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class Owner {\n"
       " public:\n"
       "  void direct() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"
       "class Helper {\n"
       " public:\n"
       "  void indirect() { const simcore::MutexLock lock(owner_.mu_); }\n"
       "  Owner& owner_;\n"
       "};\n"},
  });
  ASSERT_EQ(p.acquisitions().size(), 2u);
  EXPECT_EQ(p.acquisitions()[0].mutex_id, "Owner::mu_");
  EXPECT_EQ(p.acquisitions()[1].mutex_id, "Owner::mu_");
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST(AnalyzeCheckAll, MergesSortsAndSuppresses) {
  const Program p = make_program({
      {"src/simcore/bad.hpp",
       "#pragma once\n"
       "#include \"tuning/tuner.hpp\"  // stune-lint: allow(layer-back-edge)\n"
       "#include \"service/api.hpp\"\n"},
  });
  const auto vs = p.check_all(default_manifest());
  ASSERT_EQ(vs.size(), 1u);  // the allow() line is suppressed, line 3 is not
  EXPECT_EQ(vs[0].rule, "layer-back-edge");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(AnalyzeRuleIds, CoversEveryFamily) {
  const auto& ids = rule_ids();
  for (const char* id : {"layer-back-edge", "layer-unknown-module", "layer-cycle",
                         "det-iter", "det-ptr-key", "det-rng", "det-wall-clock",
                         "lock-cycle", "lock-excludes", "lock-rank-order"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

}  // namespace
}  // namespace stune::analyze
