// Golden-fixture tests for every stune_analyze rule family (tools/analyze).
// Each fixture is a tiny synthetic program — usually two or three files, so
// the cross-TU machinery (include graph, call graph, reachability, lock
// graph) is actually exercised — with the violation in real code position.
// Fixture text lives in string literals, which both analyzers strip before
// scanning, so this file stays lint- and analyze-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

#ifndef STUNE_SOURCE_ROOT
#define STUNE_SOURCE_ROOT "."
#endif

namespace stune::analyze {
namespace {

Program make_program(std::vector<SourceFile> files) {
  Program p;
  for (SourceFile& f : files) p.add_file(std::move(f));
  return p;
}

bool has_rule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

const Violation& only(const std::vector<Violation>& vs, const std::string& rule) {
  const Violation* found = nullptr;
  for (const auto& v : vs) {
    if (v.rule == rule) {
      EXPECT_EQ(found, nullptr) << "more than one [" << rule << "] violation";
      found = &v;
    }
  }
  EXPECT_NE(found, nullptr) << "no [" << rule << "] violation";
  static const Violation none{};
  return found != nullptr ? *found : none;
}

// ---------------------------------------------------------------------------
// Layering manifest
// ---------------------------------------------------------------------------

TEST(AnalyzeManifest, ParsesTheTomlSubset) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_manifest(
      "# comment\n[modules]\nbase = []\nupper = [\"base\", \"other\"]\nother = [\"base\"]\n",
      m, error))
      << error;
  EXPECT_EQ(m.order, (std::vector<std::string>{"base", "upper", "other"}));
  EXPECT_EQ(m.allowed.at("upper"), (std::set<std::string>{"base", "other"}));
  EXPECT_TRUE(m.allowed.at("base").empty());
}

TEST(AnalyzeManifest, RejectsMalformedInput) {
  LayerManifest m;
  std::string error;
  EXPECT_FALSE(parse_manifest("base = []\n", m, error));  // entry outside [modules]
  EXPECT_FALSE(parse_manifest("[modules]\nbase\n", m, error));
  EXPECT_FALSE(parse_manifest("[modules]\nbase = [unquoted]\n", m, error));
  EXPECT_FALSE(parse_manifest("[modules]\na = []\na = []\n", m, error));  // duplicate
  EXPECT_FALSE(parse_manifest("", m, error));
}

TEST(AnalyzeManifest, CommittedTomlMatchesCompiledDefault) {
  // tools/analyze/layers.toml and default_manifest() must describe the same
  // architecture, or the CLI (which prefers the file) and any embedded user
  // (which gets the default) would enforce different rules.
  std::ifstream f(std::string(STUNE_SOURCE_ROOT) + "/tools/analyze/layers.toml");
  ASSERT_TRUE(f.is_open()) << "cannot open layers.toml under " << STUNE_SOURCE_ROOT;
  std::ostringstream buf;
  buf << f.rdbuf();
  LayerManifest committed;
  std::string error;
  ASSERT_TRUE(parse_manifest(buf.str(), committed, error)) << error;
  const LayerManifest compiled = default_manifest();
  EXPECT_EQ(committed.order, compiled.order);
  EXPECT_EQ(committed.allowed, compiled.allowed);
  EXPECT_EQ(committed.arena_modules, compiled.arena_modules);
}

TEST(AnalyzeManifest, ParsesTheArenaTable) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_manifest(
      "[modules]\ndisc = []\n[arena]\nengine = [\"disc\", \"simcore\"]\n", m, error))
      << error;
  EXPECT_EQ(m.arena_modules, (std::set<std::string>{"disc", "simcore"}));
  // Only the single `engine` entry is legal inside [arena].
  EXPECT_FALSE(parse_manifest("[modules]\ndisc = []\n[arena]\nother = [\"disc\"]\n", m, error));
}

TEST(AnalyzeManifest, DefaultManifestIsAcyclic) {
  const Program empty;
  EXPECT_TRUE(empty.check_layering(default_manifest()).empty());
}

// ---------------------------------------------------------------------------
// Layering checks
// ---------------------------------------------------------------------------

TEST(AnalyzeLayering, ReportsBackEdges) {
  const Program p = make_program({
      {"src/simcore/clock.hpp", "#pragma once\n#include \"tuning/tuner.hpp\"\n"},
  });
  const auto vs = p.check_layering(default_manifest());
  const Violation& v = only(vs, "layer-back-edge");
  EXPECT_EQ(v.file, "src/simcore/clock.hpp");
  EXPECT_EQ(v.line, 2u);
  EXPECT_NE(v.message.find("tuning"), std::string::npos);
}

TEST(AnalyzeLayering, PermittedIncludesAndSelfIncludesAreClean) {
  const Program p = make_program({
      {"src/disc/engine.hpp",
       "#pragma once\n#include \"config/space.hpp\"\n#include \"disc/plan.hpp\"\n"},
  });
  EXPECT_TRUE(p.check_layering(default_manifest()).empty());
}

TEST(AnalyzeLayering, ReportsUndeclaredModules) {
  const Program p = make_program({
      {"src/rogue/widget.cpp", "int f() { return 1; }\n"},
      {"src/disc/engine.cpp", "#include \"rogue/widget.hpp\"\n"},
  });
  const auto vs = p.check_layering(default_manifest());
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_TRUE(has_rule(vs, "layer-unknown-module"));
  EXPECT_FALSE(has_rule(vs, "layer-back-edge"));
}

TEST(AnalyzeLayering, ReportsCyclicManifests) {
  LayerManifest m;
  std::string error;
  ASSERT_TRUE(parse_manifest("[modules]\na = [\"b\"]\nb = [\"a\"]\n", m, error)) << error;
  const Program empty;
  const auto vs = empty.check_layering(m);
  const Violation& v = only(vs, "layer-cycle");
  EXPECT_EQ(v.file, "<manifest>");
  EXPECT_NE(v.message.find(" -> "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism checks
// ---------------------------------------------------------------------------

// A two-file fixture: the fingerprint entry point lives in one TU, the
// unordered iteration in another, so only cross-TU reachability can see it.
const char* const kRegistryHeader =
    "#pragma once\n"
    "#include <string>\n"
    "#include <unordered_map>\n"
    "struct Registry { std::unordered_map<std::string, int> names; };\n"
    "std::string join_names(const Registry& r);\n";

TEST(AnalyzeDeterminism, FlagsUnorderedIterationReachableFromFingerprint) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/fingerprint.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string fingerprint(const Registry& r) { return join_names(r); }\n"},
      {"src/config/registry.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string join_names(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;\n"
       "  return out;\n"
       "}\n"},
  });
  const auto vs = p.check_determinism();
  const Violation& v = only(vs, "det-iter");
  EXPECT_EQ(v.file, "src/config/registry.cpp");
  EXPECT_EQ(v.line, 4u);
  EXPECT_NE(v.message.find("names"), std::string::npos);
}

TEST(AnalyzeDeterminism, IgnoresUnorderedIterationOffTheFingerprintPaths) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/debug.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string debug_dump(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;\n"
       "  return out;\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(p.check_determinism(), "det-iter"));
}

TEST(AnalyzeDeterminism, AllowCommentSuppressesDetIter) {
  const Program p = make_program({
      {"src/config/registry.hpp", kRegistryHeader},
      {"src/config/fingerprint.cpp",
       "#include \"config/registry.hpp\"\n"
       "std::string fingerprint(const Registry& r) {\n"
       "  std::string out;\n"
       "  for (const auto& kv : r.names) out += kv.first;  // stune-lint: allow(det-iter)\n"
       "  return out;\n"
       "}\n"},
  });
  EXPECT_TRUE(has_rule(p.check_determinism(), "det-iter"));  // raw pass still sees it
  EXPECT_FALSE(has_rule(p.check_all(default_manifest()), "det-iter"));  // check_all honors allow()
}

TEST(AnalyzeDeterminism, FlagsPointerKeyedContainers) {
  const Program p = make_program({
      {"src/dag/index.hpp",
       "#pragma once\n"
       "#include <map>\n"
       "#include <unordered_map>\n"
       "struct Node;\n"
       "struct Index {\n"
       "  std::unordered_map<Node*, int> by_node;\n"
       "  std::map<const Node*, int> ordered_by_address;\n"
       "};\n"},
  });
  const auto vs = p.check_determinism();
  EXPECT_EQ(std::count_if(vs.begin(), vs.end(),
                          [](const Violation& v) { return v.rule == "det-ptr-key"; }),
            2);
}

TEST(AnalyzeDeterminism, FlagsDefaultSeededEnginesAndAmbientEntropy) {
  const Program p = make_program({
      {"src/model/sampler.cpp",
       "#include <random>\n"
       "int draw() {\n"
       "  std::mt19937 gen;\n"
       "  std::random_device rd;\n"
       "  return static_cast<int>(gen() + rd());\n"
       "}\n"},
      {"src/model/seeded.cpp",
       "#include <random>\n"
       "int draw_seeded(unsigned seed) {\n"
       "  std::mt19937 gen(seed);\n"
       "  return static_cast<int>(gen());\n"
       "}\n"},
  });
  const auto vs = p.check_determinism();
  const auto in_file = [&vs](const std::string& file) {
    return std::count_if(vs.begin(), vs.end(), [&](const Violation& v) {
      return v.rule == "det-rng" && v.file == file;
    });
  };
  EXPECT_EQ(in_file("src/model/sampler.cpp"), 2);  // default seed + random_device
  EXPECT_EQ(in_file("src/model/seeded.cpp"), 0);   // explicitly seeded is fine
}

TEST(AnalyzeDeterminism, FlagsWallClockReachableFromFingerprint) {
  const Program p = make_program({
      {"src/simcore/stamp.cpp",
       "#include <chrono>\n"
       "long stamp_now() {\n"
       "  return std::chrono::system_clock::now().time_since_epoch().count();\n"
       "}\n"
       "long fingerprint_stamp() { return stamp_now(); }\n"},
  });
  const auto vs = p.check_determinism();
  const Violation& v = only(vs, "det-wall-clock");
  EXPECT_EQ(v.file, "src/simcore/stamp.cpp");
  EXPECT_EQ(v.line, 3u);  // in the callee, reached from the entry point
}

// ---------------------------------------------------------------------------
// Lock-order checks
// ---------------------------------------------------------------------------

TEST(AnalyzeLockOrder, ReportsCrossClassCycles) {
  const Program p = make_program({
      {"src/service/pair.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class B;\n"
       "class A {\n"
       " public:\n"
       "  void f() { const simcore::MutexLock lock(mu_); other_->g(); }\n"
       "  simcore::Mutex mu_;\n"
       "  B* other_;\n"
       "};\n"
       "class B {\n"
       " public:\n"
       "  void g() { const simcore::MutexLock lock(mu_); first_->f(); }\n"
       "  simcore::Mutex mu_;\n"
       "  A* first_;\n"
       "};\n"},
  });
  const auto edges = p.lock_graph();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].held, "A::mu_");
  EXPECT_EQ(edges[0].acquired, "B::mu_");
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-cycle");
  EXPECT_NE(v.message.find("A::mu_"), std::string::npos);
  EXPECT_NE(v.message.find("B::mu_"), std::string::npos);
}

TEST(AnalyzeLockOrder, ReportsDirectNestedReacquisition) {
  const Program p = make_program({
      {"src/workload/self.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class Cache {\n"
       " public:\n"
       "  void touch() {\n"
       "    const simcore::MutexLock outer(mu_);\n"
       "    { const simcore::MutexLock inner(mu_); }\n"
       "  }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-cycle");
  EXPECT_EQ(v.line, 6u);
  EXPECT_NE(v.message.find("re-acquired"), std::string::npos);
}

TEST(AnalyzeLockOrder, ReportsRankOrderContradictions) {
  const Program p = make_program({
      {"src/simcore/ranks.hpp",
       "#pragma once\n"
       "namespace lock_rank {\n"
       "inline constexpr int kFirst = 10;\n"
       "inline constexpr int kSecond = 20;\n"
       "}\n"},
      {"src/service/backwards.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "#include \"simcore/ranks.hpp\"\n"
       "class Low;\n"
       "class High {\n"
       " public:\n"
       "  void f();\n"
       "  simcore::Mutex mu_{lock_rank::kSecond};\n"
       "  Low* low_;\n"
       "};\n"
       "class Low {\n"
       " public:\n"
       "  void g() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_{lock_rank::kFirst};\n"
       "};\n"
       "void High::f() { const simcore::MutexLock lock(mu_); low_->g(); }\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-rank-order");
  EXPECT_NE(v.message.find("rank 10"), std::string::npos);
  EXPECT_NE(v.message.find("rank 20"), std::string::npos);
  EXPECT_FALSE(has_rule(p.check_lock_order(), "lock-cycle"));  // one-directional
}

TEST(AnalyzeLockOrder, ReportsExcludesCalledWithMutexHeld) {
  const Program p = make_program({
      {"src/tuning/reentry.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "#include \"simcore/thread_annotations.hpp\"\n"
       "class Q {\n"
       " public:\n"
       "  void outer() { const simcore::MutexLock lock(mu_); helper(); }\n"
       "  void helper() STUNE_EXCLUDES(mu_);\n"
       " private:\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  const auto vs = p.check_lock_order();
  const Violation& v = only(vs, "lock-excludes");
  EXPECT_EQ(v.line, 5u);
  EXPECT_NE(v.message.find("helper"), std::string::npos);
  EXPECT_NE(v.message.find("Q::mu_"), std::string::npos);
}

TEST(AnalyzeLockOrder, LocalDeclarationsAreNotCalls) {
  // `Widget ledger(opts);` must not look like a call to Store::ledger() —
  // the regression that once wove a phantom edge through the real tree.
  const Program p = make_program({
      {"src/service/decl.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "struct Widget { explicit Widget(int); };\n"
       "class Store {\n"
       " public:\n"
       "  void ledger() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"
       "class User {\n"
       " public:\n"
       "  void run() {\n"
       "    const simcore::MutexLock lock(mu_);\n"
       "    Widget ledger(42);\n"
       "  }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"},
  });
  EXPECT_TRUE(p.lock_graph().empty());
  EXPECT_TRUE(p.check_lock_order().empty());
}

TEST(AnalyzeLockOrder, CanonicalizesForeignObjectExpressions) {
  // SerialSession-style: a helper class locks its owner's mutex through a
  // reference member; both ids must land on the owning class.
  const Program p = make_program({
      {"src/tuning/owner.cpp",
       "#include \"simcore/mutex.hpp\"\n"
       "class Owner {\n"
       " public:\n"
       "  void direct() { const simcore::MutexLock lock(mu_); }\n"
       "  simcore::Mutex mu_;\n"
       "};\n"
       "class Helper {\n"
       " public:\n"
       "  void indirect() { const simcore::MutexLock lock(owner_.mu_); }\n"
       "  Owner& owner_;\n"
       "};\n"},
  });
  ASSERT_EQ(p.acquisitions().size(), 2u);
  EXPECT_EQ(p.acquisitions()[0].mutex_id, "Owner::mu_");
  EXPECT_EQ(p.acquisitions()[1].mutex_id, "Owner::mu_");
}

// ---------------------------------------------------------------------------
// Arena lifetime checks
// ---------------------------------------------------------------------------

TEST(AnalyzeArena, FlagsAllocOutsideTheEngineLayer) {
  const Program p = make_program({
      {"src/tuning/scratch.cpp",
       "#include \"simcore/arena.hpp\"\n"
       "double first(simcore::TrialArena& arena) {\n"
       "  auto s = arena.alloc<double>(4);\n"
       "  return s[0];\n"
       "}\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-alloc-layer");
  EXPECT_EQ(v.file, "src/tuning/scratch.cpp");
  EXPECT_EQ(v.line, 3u);
  EXPECT_NE(v.message.find("tuning"), std::string::npos);
}

TEST(AnalyzeArena, LocalUseInsideTheEngineLayerIsClean) {
  const Program p = make_program({
      {"src/disc/stage.cpp",
       "#include \"simcore/arena.hpp\"\n"
       "double total(simcore::TrialArena& arena, unsigned long n) {\n"
       "  auto s = arena.alloc<double>(n);\n"
       "  double acc = 0.0;\n"
       "  for (unsigned long i = 0; i < n; ++i) acc = acc + s[i];\n"
       "  return acc;\n"
       "}\n"},
  });
  EXPECT_TRUE(p.check_arena(default_manifest()).empty());
}

TEST(AnalyzeArena, FlagsSpanStoredIntoMember) {
  const Program p = make_program({
      {"src/disc/keeper.cpp",
       "#include <span>\n"
       "#include \"simcore/arena.hpp\"\n"
       "class Keeper {\n"
       " public:\n"
       "  void lease(simcore::TrialArena& arena) { cache_ = arena.alloc<double>(8); }\n"
       " private:\n"
       "  std::span<double> cache_;\n"
       "};\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-store-escape");
  EXPECT_EQ(v.line, 5u);
  EXPECT_NE(v.message.find("cache_"), std::string::npos);
}

TEST(AnalyzeArena, FlagsDerivedValueStoredThroughTwoHops) {
  // The escape travels alloc -> s -> d -> this->slot: only the transitive
  // derived-set can see it.
  const Program p = make_program({
      {"src/disc/hops.cpp",
       "#include \"simcore/arena.hpp\"\n"
       "class Hops {\n"
       " public:\n"
       "  void lease(simcore::TrialArena& arena) {\n"
       "    auto s = arena.alloc<double>(8);\n"
       "    auto d = s;\n"
       "    this->slot = d.data();\n"
       "  }\n"
       " private:\n"
       "  double* slot;\n"
       "};\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-store-escape");
  EXPECT_EQ(v.line, 7u);
  EXPECT_NE(v.message.find("this->"), std::string::npos);
}

TEST(AnalyzeArena, FlagsSpanPushedIntoMemberContainer) {
  const Program p = make_program({
      {"src/disc/collector.cpp",
       "#include <span>\n"
       "#include <vector>\n"
       "#include \"simcore/arena.hpp\"\n"
       "class Collector {\n"
       " public:\n"
       "  void lease(simcore::TrialArena& arena) {\n"
       "    auto s = arena.alloc<double>(8);\n"
       "    spans_.push_back(s);\n"
       "  }\n"
       " private:\n"
       "  std::vector<std::span<double>> spans_;\n"
       "};\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-store-escape");
  EXPECT_EQ(v.line, 8u);
  EXPECT_NE(v.message.find("spans_"), std::string::npos);
}

TEST(AnalyzeArena, FlagsSpanBoundToAStatic) {
  const Program p = make_program({
      {"src/simcore/memo.cpp",
       "#include <span>\n"
       "#include \"simcore/arena.hpp\"\n"
       "double memoized(simcore::TrialArena& arena) {\n"
       "  static std::span<double> cached = arena.alloc<double>(8);\n"
       "  return cached[0];\n"
       "}\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-store-escape");
  EXPECT_EQ(v.line, 4u);
  EXPECT_NE(v.message.find("static"), std::string::npos);
}

TEST(AnalyzeArena, FlagsReturnEscapeFromOutsideTheEngineLayer) {
  const Program p = make_program({
      {"src/workload/lease.cpp",
       "#include <span>\n"
       "#include \"simcore/arena.hpp\"\n"
       "std::span<double> lease(simcore::TrialArena& arena) {\n"
       "  auto s = arena.alloc<double>(4);\n"
       "  return s;\n"
       "}\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-return-escape");
  EXPECT_EQ(v.line, 5u);
  EXPECT_TRUE(has_rule(vs, "arena-alloc-layer"));  // the alloc itself is also foreign
}

TEST(AnalyzeArena, FlagsEngineReturnReceivedOutsideTheEngineLayer) {
  // The return is legal inside disc; the violation is the workload caller
  // receiving the span — reported at the call site, cross-TU.
  const Program p = make_program({
      {"src/disc/lease.cpp",
       "#include <span>\n"
       "#include \"simcore/arena.hpp\"\n"
       "std::span<double> lease_scratch(simcore::TrialArena& arena) {\n"
       "  return arena.alloc<double>(4);\n"
       "}\n"},
      {"src/workload/use.cpp",
       "#include \"disc/lease.hpp\"\n"
       "double consume(simcore::TrialArena& arena) {\n"
       "  auto s = lease_scratch(arena);\n"
       "  return s[0];\n"
       "}\n"},
  });
  const auto vs = p.check_arena(default_manifest());
  const Violation& v = only(vs, "arena-return-escape");
  EXPECT_EQ(v.file, "src/workload/use.cpp");
  EXPECT_EQ(v.line, 3u);
  EXPECT_NE(v.message.find("lease_scratch"), std::string::npos);
}

TEST(AnalyzeArena, EngineReturnWithEngineCallersIsClean) {
  const Program p = make_program({
      {"src/disc/lease.cpp",
       "#include <span>\n"
       "#include \"simcore/arena.hpp\"\n"
       "std::span<double> lease_scratch(simcore::TrialArena& arena) {\n"
       "  return arena.alloc<double>(4);\n"
       "}\n"},
      {"src/disc/use.cpp",
       "#include \"disc/lease.hpp\"\n"
       "double consume(simcore::TrialArena& arena) {\n"
       "  auto s = lease_scratch(arena);\n"
       "  return s[0];\n"
       "}\n"},
  });
  EXPECT_TRUE(p.check_arena(default_manifest()).empty());
}

TEST(AnalyzeArena, LambdaReturnsAreLocalPlumbing) {
  // The engine's alloc_fn idiom: a lambda that returns freshly allocated
  // spans to its enclosing function is not an escape.
  const Program p = make_program({
      {"src/disc/plumbing.cpp",
       "#include \"simcore/arena.hpp\"\n"
       "double run_stage(simcore::TrialArena& arena) {\n"
       "  auto alloc_fn = [&](unsigned long n) { return arena.alloc<double>(n); };\n"
       "  auto s = alloc_fn(4);\n"
       "  return s[0];\n"
       "}\n"},
  });
  EXPECT_TRUE(p.check_arena(default_manifest()).empty());
}

TEST(AnalyzeArena, AllowCommentSuppressesThroughCheckAll) {
  const Program p = make_program({
      {"src/tuning/scratch.cpp",
       "#include \"simcore/arena.hpp\"\n"
       "double first(simcore::TrialArena& arena) {\n"
       "  auto s = arena.alloc<double>(4);  // stune-analyze: allow(arena-alloc-layer)\n"
       "  return s[0];\n"
       "}\n"},
  });
  EXPECT_TRUE(has_rule(p.check_arena(default_manifest()), "arena-alloc-layer"));
  EXPECT_FALSE(has_rule(p.check_all(default_manifest()), "arena-alloc-layer"));
}

// ---------------------------------------------------------------------------
// FP determinism checks
// ---------------------------------------------------------------------------

// Two files: the fingerprint entry in one TU, the accumulation loop in the
// other, so the flag depends on cross-TU closure membership.
const char* const kWeightedSum =
    "double weighted(const double* a, const double* b, unsigned long n) {\n"
    "  double acc = 0.0;\n"
    "  for (unsigned long i = 0; i < n; ++i) acc += a[i] * b[i];\n"
    "  return acc;\n"
    "}\n";

TEST(AnalyzeFp, FlagsAccumulationLoopInUnpinnedClosureTU) {
  const Program p = make_program({
      {"src/model/score.cpp", kWeightedSum},
      {"src/disc/fp.cpp",
       "double fingerprint_score(const double* a, const double* b, unsigned long n) {\n"
       "  return weighted(a, b, n);\n"
       "}\n"},
  });
  const auto vs = p.check_fp(FpManifest{});
  const Violation& v = only(vs, "fp-contract");
  EXPECT_EQ(v.file, "src/model/score.cpp");
  EXPECT_EQ(v.line, 3u);
}

TEST(AnalyzeFp, PinnedTUIsClean) {
  const Program p = make_program({
      {"src/model/score.cpp", kWeightedSum},
      {"src/disc/fp.cpp",
       "double fingerprint_score(const double* a, const double* b, unsigned long n) {\n"
       "  return weighted(a, b, n);\n"
       "}\n"},
  });
  FpManifest fp;
  fp.contract_off = {"src/model/score.cpp"};
  EXPECT_TRUE(p.check_fp(fp).empty());
}

TEST(AnalyzeFp, SameMathOutsideTheClosureIsClean) {
  const Program p = make_program({
      {"src/model/score.cpp", kWeightedSum},
  });
  EXPECT_TRUE(p.check_fp(FpManifest{}).empty());  // nothing reaches it
}

TEST(AnalyzeFp, PinnedFmaHelpersAreClean) {
  const Program p = make_program({
      {"src/model/score.cpp",
       "double fma_acc(double acc, double a, double b);\n"
       "double weighted(const double* a, const double* b, unsigned long n) {\n"
       "  double acc = 0.0;\n"
       "  for (unsigned long i = 0; i < n; ++i) acc = fma_acc(acc, a[i], b[i]);\n"
       "  return acc;\n"
       "}\n"
       "double fingerprint_score(const double* a, const double* b, unsigned long n) {\n"
       "  return weighted(a, b, n);\n"
       "}\n"},
  });
  EXPECT_TRUE(p.check_fp(FpManifest{}).empty());
}

TEST(AnalyzeFp, FlagsMulAddAssignmentShape) {
  const Program p = make_program({
      {"src/disc/fp.cpp",
       "double fingerprint_cost(double cpu, double rate, double base) {\n"
       "  double total = base + cpu * rate;\n"
       "  return total;\n"
       "}\n"},
  });
  const auto vs = p.check_fp(FpManifest{});
  const Violation& v = only(vs, "fp-contract");
  EXPECT_EQ(v.line, 2u);
}

TEST(AnalyzeFp, ClosureReachesThroughSimulatorRun) {
  // SparkSimulator::run is a parity entry point even though nothing named
  // "fingerprint" appears: the engine's bitwise report contract hangs off it.
  const Program p = make_program({
      {"src/model/score.cpp", kWeightedSum},
      {"src/disc/sim.cpp",
       "class SparkSimulator {\n"
       " public:\n"
       "  double run(const double* a, const double* b, unsigned long n) {\n"
       "    return weighted(a, b, n);\n"
       "  }\n"
       "};\n"},
  });
  EXPECT_TRUE(has_rule(p.check_fp(FpManifest{}), "fp-contract"));
}

TEST(AnalyzeFp, FlagsRawEqualityBetweenFpExpressions) {
  const Program p = make_program({
      {"src/disc/cmp.cpp",
       "bool fingerprint_same(double a, double b) {\n"
       "  return a == b;\n"
       "}\n"},
  });
  const auto vs = p.check_fp(FpManifest{});
  const Violation& v = only(vs, "fp-compare");
  EXPECT_EQ(v.line, 2u);
}

TEST(AnalyzeFp, LiteralSentinelComparisonsStayLegal) {
  const Program p = make_program({
      {"src/disc/cmp.cpp",
       "bool fingerprint_unset(double x) {\n"
       "  return x == 0.0;\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(p.check_fp(FpManifest{}), "fp-compare"));
}

TEST(AnalyzeFp, HashHelpersAreExemptFromFpCompare) {
  const Program p = make_program({
      {"src/simcore/hash.cpp",
       "unsigned long hash_double_pair(double a, double b) {\n"
       "  return a == b ? 1ul : 2ul;\n"
       "}\n"
       "unsigned long fingerprint_pair(double a, double b) {\n"
       "  return hash_double_pair(a, b);\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(p.check_fp(FpManifest{}), "fp-compare"));
}

TEST(AnalyzeFp, IntegerComparisonsWithCollidingNamesAreClean) {
  // `l` is a double elsewhere in the program; `l.rows() == l.cols()` must be
  // judged by the head segment (`rows`), not poisoned by the name pool.
  const Program p = make_program({
      {"src/simcore/other.cpp", "double shadow() { double l = 1.5; return l; }\n"},
      {"src/disc/shape.cpp",
       "struct M { unsigned long rows() const; unsigned long cols() const; };\n"
       "bool fingerprint_square(const M& l) {\n"
       "  return l.rows() == l.cols();\n"
       "}\n"},
  });
  EXPECT_FALSE(has_rule(p.check_fp(FpManifest{}), "fp-compare"));
}

// ---------------------------------------------------------------------------
// Retrieval hot path
// ---------------------------------------------------------------------------

TEST(AnalyzeRetrieval, FlagsAllocatingContainerCallInQueryClosure) {
  const Program p = make_program({
      {"src/service/retrieval_index.cpp",
       "struct RetrievalSnapshot {\n"
       "  unsigned long query(double d) const {\n"
       "    hits_.push_back(d);\n"
       "    return 0;\n"
       "  }\n"
       "};\n"},
  });
  const auto vs = p.check_retrieval();
  const Violation& v = only(vs, "retrieval-alloc");
  EXPECT_EQ(v.line, 3u);
}

TEST(AnalyzeRetrieval, FlagsAsVectorAnywhereInTheClosure) {
  // as_vector allocates per call by contract; the ban follows the closure
  // across files, not just the retrieval TUs.
  const Program p = make_program({
      {"src/service/retrieval_index.cpp",
       "struct RetrievalSnapshot {\n"
       "  unsigned long query(double d) const { return widths(d); }\n"
       "};\n"},
      {"src/transfer/helper.cpp",
       "unsigned long widths(double d) {\n"
       "  return sig.as_vector().size();\n"
       "}\n"},
  });
  const auto vs = p.check_retrieval();
  const Violation& v = only(vs, "retrieval-alloc");
  EXPECT_EQ(v.file, "src/transfer/helper.cpp");
  EXPECT_EQ(v.line, 2u);
}

TEST(AnalyzeRetrieval, FlagsHeapOwningLocalInScanKernel) {
  const Program p = make_program({
      {"src/service/signature_scan.cpp",
       "void dist2(const double* q, double* out) {\n"
       "  std::vector<double> scratch(8);\n"
       "  out[0] = scratch[0] + q[0];\n"
       "}\n"},
  });
  const auto vs = p.check_retrieval();
  const Violation& v = only(vs, "retrieval-alloc");
  EXPECT_EQ(v.line, 2u);
}

TEST(AnalyzeRetrieval, FixedStackScratchIsClean) {
  const Program p = make_program({
      {"src/service/retrieval_index.cpp",
       "struct RetrievalSnapshot {\n"
       "  unsigned long query(double d) const {\n"
       "    double dbuf[256];\n"
       "    dbuf[0] = d * d;\n"
       "    return accumulate(dbuf[0]);\n"
       "  }\n"
       "  unsigned long accumulate(double d) const { return d < 1.0 ? 0 : 1; }\n"
       "};\n"},
  });
  EXPECT_TRUE(p.check_retrieval().empty());
}

TEST(AnalyzeRetrieval, WriterSideAllocationIsOutsideTheClosure) {
  // append() allocates freely (blocks, the cell map); only the query path
  // is bound to fixed scratch.
  const Program p = make_program({
      {"src/service/retrieval_index.cpp",
       "struct RetrievalSnapshot {\n"
       "  unsigned long query(double d) const { return d < 1.0 ? 0 : 1; }\n"
       "};\n"
       "struct RetrievalIndex {\n"
       "  void append(double d) { cells_.push_back(d); }\n"
       "};\n"},
  });
  EXPECT_TRUE(p.check_retrieval().empty());
}

// ---------------------------------------------------------------------------
// FP pin manifest (CMake parsing)
// ---------------------------------------------------------------------------

TEST(AnalyzeFpManifest, ParsesPinListsOutOfCmake) {
  FpManifest fp;
  std::string error;
  ASSERT_TRUE(parse_fp_manifest(
      {
          {"CMakeLists.txt",
           "# top level\n"
           "set(STUNE_FP_PIN_OPTIONS \"-ffp-contract=off\" CACHE INTERNAL \"pin\")\n"
           "set(HOT \"-O3;${STUNE_FP_PIN_OPTIONS}\")\n"},
          {"src/alpha/CMakeLists.txt",
           "set_source_files_properties(one.cpp two.cpp PROPERTIES\n"
           "  COMPILE_OPTIONS \"${HOT}\")\n"},
          {"src/beta/CMakeLists.txt",
           "set_source_files_properties(three.cpp PROPERTIES COMPILE_OPTIONS \"-O2\")\n"},
      },
      fp, error))
      << error;
  EXPECT_EQ(fp.contract_off,
            (std::set<std::string>{"src/alpha/one.cpp", "src/alpha/two.cpp"}));
}

TEST(AnalyzeFpManifest, RejectsUnbalancedCommands) {
  FpManifest fp;
  std::string error;
  EXPECT_FALSE(parse_fp_manifest({{"CMakeLists.txt", "set(X \"-ffp-contract=off\"\n"}}, fp, error));
  EXPECT_FALSE(error.empty());
}

TEST(AnalyzeFpManifest, CommittedCmakePinsMatchCompiledDefault) {
  // The CMakeLists tree and default_fp_manifest() must agree, or the CLI
  // (which parses the build files) and embedded users (who get the default)
  // would exempt different TUs from [fp-contract].
  namespace fs = std::filesystem;
  const fs::path root = STUNE_SOURCE_ROOT;
  std::vector<SourceFile> cmake_files;
  const auto load = [&cmake_files, &root](const fs::path& path) {
    std::ifstream f(path);
    ASSERT_TRUE(f.is_open()) << path;
    std::ostringstream buf;
    buf << f.rdbuf();
    cmake_files.push_back({fs::relative(path, root).generic_string(), buf.str()});
  };
  load(root / "CMakeLists.txt");
  for (const auto& entry : fs::recursive_directory_iterator(root / "src")) {
    if (entry.is_regular_file() && entry.path().filename() == "CMakeLists.txt") {
      load(entry.path());
    }
  }
  FpManifest committed;
  std::string error;
  ASSERT_TRUE(parse_fp_manifest(cmake_files, committed, error)) << error;
  EXPECT_EQ(committed.contract_off, default_fp_manifest().contract_off);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST(AnalyzeCheckAll, MergesSortsAndSuppresses) {
  const Program p = make_program({
      {"src/simcore/bad.hpp",
       "#pragma once\n"
       "#include \"tuning/tuner.hpp\"  // stune-lint: allow(layer-back-edge)\n"
       "#include \"service/api.hpp\"\n"},
  });
  const auto vs = p.check_all(default_manifest());
  ASSERT_EQ(vs.size(), 1u);  // the allow() line is suppressed, line 3 is not
  EXPECT_EQ(vs[0].rule, "layer-back-edge");
  EXPECT_EQ(vs[0].line, 3u);
}

TEST(AnalyzeRuleIds, CoversEveryFamily) {
  const auto& ids = rule_ids();
  for (const char* id : {"layer-back-edge", "layer-unknown-module", "layer-cycle",
                         "det-iter", "det-ptr-key", "det-rng", "det-wall-clock",
                         "lock-cycle", "lock-excludes", "lock-rank-order",
                         "arena-store-escape", "arena-return-escape", "arena-alloc-layer",
                         "fp-contract", "fp-compare", "retrieval-alloc"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), id), ids.end()) << id;
  }
}

}  // namespace
}  // namespace stune::analyze
