// Tests for the correctness tooling layer: the STUNE_CHECK contract macros,
// the per-subsystem invariant auditors (exercised by injecting violations),
// the engine's STUNE_AUDIT stage-boundary hook, and the run-twice
// determinism regression the sanitizers cannot see.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/audit.hpp"
#include "cluster/cluster.hpp"
#include "config/audit.hpp"
#include "config/spark_space.hpp"
#include "dag/audit.hpp"
#include "disc/audit.hpp"
#include "disc/engine.hpp"
#include "simcore/check.hpp"
#include "simcore/rng.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune {
namespace {

namespace k = config::spark;
using simcore::CheckError;
using simcore::gib;

// -- contract macros -----------------------------------------------------------

TEST(Check, PassingChecksAreSilent) {
  EXPECT_NO_THROW(STUNE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(STUNE_CHECK_EQ(4, 4));
  EXPECT_NO_THROW(STUNE_CHECK_LE(1.0, 2.0));
  EXPECT_NO_THROW(STUNE_INVARIANT(true));
}

TEST(Check, FailureCapturesExpressionAndLocation) {
  try {
    STUNE_CHECK(2 + 2 == 5);
    FAIL() << "STUNE_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("2 + 2 == 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("audit_test.cpp"), std::string::npos) << msg;
    EXPECT_NE(msg.find("STUNE_CHECK"), std::string::npos) << msg;
  }
}

TEST(Check, StreamedContextIsAppended) {
  try {
    const int executors = 3;
    STUNE_CHECK(executors > 7) << " fleet too small: " << executors;
    FAIL() << "STUNE_CHECK did not throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("fleet too small: 3"), std::string::npos) << e.what();
  }
}

TEST(Check, BinaryFormsCaptureOperandValues) {
  try {
    STUNE_CHECK_LE(10 * 10, 99);
    FAIL() << "STUNE_CHECK_LE did not throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("[100 vs 99]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("10 * 10 <= 99"), std::string::npos) << msg;
  }
}

TEST(Check, BinaryFormsEvaluateOperandsOnce) {
  int calls = 0;
  const auto count = [&calls] { return ++calls; };
  STUNE_CHECK_GE(count(), 1);
  EXPECT_EQ(calls, 1);
}

TEST(Check, EnforceInvariantsListsEveryViolation) {
  EXPECT_NO_THROW(simcore::enforce_invariants({}, "clean subsystem"));
  try {
    simcore::enforce_invariants({"first law broken", "second law broken"}, "engine");
    FAIL() << "enforce_invariants did not throw";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("engine"), std::string::npos);
    EXPECT_NE(msg.find("first law broken"), std::string::npos);
    EXPECT_NE(msg.find("second law broken"), std::string::npos);
  }
}

// -- DAG auditor ---------------------------------------------------------------

dag::PhysicalPlan tiny_valid_plan() {
  dag::PhysicalPlan p;
  p.workload = "synthetic";
  p.input_bytes = gib(1);
  dag::StagePlan s0;
  s0.id = 0;
  s0.source_read_bytes = gib(1);
  s0.shuffle_write_bytes = gib(0.5);
  s0.cpu_ref_seconds = 10.0;
  dag::StagePlan s1;
  s1.id = 1;
  s1.parent_stages = {0};
  s1.shuffle_inputs = {{0, gib(0.5)}};
  s1.cpu_ref_seconds = 5.0;
  s1.result_bytes = 1;
  p.stages = {s0, s1};
  return p;
}

bool mentions(const std::vector<std::string>& violations, std::string_view needle) {
  for (const auto& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(DagAudit, ValidPlanIsClean) {
  EXPECT_TRUE(dag::audit(tiny_valid_plan()).empty());
  for (const auto& name : workload::workload_names()) {
    const auto plan = workload::make_workload(name)->plan(gib(4));
    EXPECT_TRUE(dag::audit(plan).empty()) << name;
  }
}

TEST(DagAudit, DetectsCycle) {
  auto p = tiny_valid_plan();
  p.stages[0].parent_stages = {1};  // 0 <- 1 <- 0
  const auto v = dag::audit(p);
  ASSERT_FALSE(v.empty());
  EXPECT_TRUE(mentions(v, "back edge")) << v.front();
}

TEST(DagAudit, DetectsSelfLoop) {
  auto p = tiny_valid_plan();
  p.stages[1].parent_stages = {1, 0};
  EXPECT_TRUE(mentions(dag::audit(p), "self-loop"));
}

TEST(DagAudit, ToleratesBroadcastBackEdges) {
  // The broadcast-join planner parents a pipelined consumer on a later
  // broadcast-source stage; build_topology drops the edge, so the auditor
  // must accept it on a broadcast-receiving stage (and only there).
  auto p = tiny_valid_plan();
  p.stages[0].parent_stages = {1};
  p.stages[0].broadcast_bytes = gib(0.1);
  EXPECT_TRUE(dag::audit(p).empty());
  p.stages[0].broadcast_bytes = 0;
  EXPECT_TRUE(mentions(dag::audit(p), "back edge"));
}

TEST(DagAudit, DetectsBarrierViolation) {
  auto p = tiny_valid_plan();
  p.stages[1].parent_stages.clear();  // reads stage 0's shuffle without waiting for it
  EXPECT_TRUE(mentions(dag::audit(p), "stage barrier violation"));
}

TEST(DagAudit, DetectsShuffleConservationViolation) {
  auto p = tiny_valid_plan();
  p.stages[1].shuffle_inputs[0].bytes = gib(0.25);  // reads less than stage 0 wrote
  EXPECT_TRUE(mentions(dag::audit(p), "shuffle conservation violation"));
}

TEST(DagAudit, DetectsBrokenTopologicalIds) {
  auto p = tiny_valid_plan();
  p.stages[0].id = 7;
  EXPECT_TRUE(mentions(dag::audit(p), "topologically ordered"));
}

// -- config auditor ------------------------------------------------------------

TEST(ConfigAudit, SparkSpaceIsClean) {
  EXPECT_TRUE(config::audit(*config::spark_space()).empty());
  EXPECT_TRUE(config::audit(config::spark_space()->default_config()).empty());
}

TEST(ConfigAudit, DetectsInvertedBounds) {
  auto def = config::ParamDef::real("broken", 0.0, 1.0, 0.5);
  def.min_value = 2.0;
  EXPECT_TRUE(mentions(config::audit(def), "inverted bounds"));
}

TEST(ConfigAudit, DetectsNonPositiveLogRange) {
  auto def = config::ParamDef::real("mem", 1.0, 64.0, 4.0, /*log_scale=*/true);
  def.min_value = 0.0;
  EXPECT_TRUE(mentions(config::audit(def), "log-scale"));
}

TEST(ConfigAudit, DetectsDefaultOutsideRange) {
  auto def = config::ParamDef::integer("cores", 1, 8, 4);
  def.default_value = 12.0;
  EXPECT_TRUE(mentions(config::audit(def), "outside"));
}

TEST(ConfigAudit, DetectsBadCategoricalDefault) {
  auto def = config::ParamDef::categorical("codec", {"lz4", "zstd"}, 0);
  def.default_value = 5.0;
  EXPECT_TRUE(mentions(config::audit(def), "not a valid index"));
}

TEST(ConfigAudit, DetectsOutOfBoundsRawValues) {
  // Raw vectors are how configurations arrive from outside the process
  // (event logs, service requests); audit_values is the validation gate.
  const auto space = config::spark_space();
  auto values = space->default_config().values();
  values[space->require_index(k::kExecutorCores)] = 1e9;
  EXPECT_TRUE(mentions(config::audit_values(*space, values), "out-of-domain"));
  values[space->require_index(k::kExecutorCores)] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(mentions(config::audit_values(*space, values), "non-finite"));
  values.pop_back();
  EXPECT_TRUE(mentions(config::audit_values(*space, values), "parameters"));
}

TEST(ConfigAudit, ConstructorSanitizesSoConfigurationsStayClean) {
  // Defense in depth: the Configuration constructor clamps raw values, so a
  // corrupt vector that slips past validation still yields a clean config.
  const auto space = config::spark_space();
  auto values = space->default_config().values();
  values[space->require_index(k::kExecutorCores)] = 1e9;
  const config::Configuration clamped(space, std::move(values));
  EXPECT_TRUE(config::audit(clamped).empty());
}

// -- cluster auditor -----------------------------------------------------------

TEST(ClusterAudit, CatalogClustersAreClean) {
  for (const auto& t : cluster::instance_catalog()) {
    const cluster::Cluster c(t, 4);
    EXPECT_TRUE(cluster::audit(c).empty()) << t.name;
  }
}

TEST(ClusterAudit, DetectsCoreOversubscription) {
  const auto c = cluster::Cluster::from_spec({"h1.4xlarge", 4});  // 16 vcpus
  const auto v = cluster::audit_packing(c, /*executors_per_vm=*/5, /*cores_per_executor=*/4,
                                        simcore::gib(8));
  EXPECT_TRUE(mentions(v, "core oversubscription"));
}

TEST(ClusterAudit, DetectsMemoryOversubscription) {
  const auto c = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  const auto v = cluster::audit_packing(c, /*executors_per_vm=*/4, /*cores_per_executor=*/4,
                                        c.usable_memory_per_vm());
  EXPECT_TRUE(mentions(v, "memory oversubscription"));
}

// -- deployment auditor --------------------------------------------------------

config::SparkConf default_spark_conf() {
  return config::SparkConf(config::spark_space()->default_config());
}

TEST(DeploymentAudit, ResolvedDeploymentsAreClean) {
  const auto cluster = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  simcore::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const config::SparkConf conf(config::spark_space()->sample(rng));
    const auto d = disc::resolve_deployment(conf, cluster);
    EXPECT_TRUE(disc::audit(d, conf, cluster).empty());
  }
}

TEST(DeploymentAudit, DetectsBrokenSlotArithmetic) {
  const auto cluster = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  const auto conf = default_spark_conf();
  auto d = disc::resolve_deployment(conf, cluster);
  ASSERT_TRUE(d.viable);
  d.total_slots += 3;
  EXPECT_TRUE(mentions(disc::audit(d, conf, cluster), "slot arithmetic"));
}

TEST(DeploymentAudit, DetectsMemoryConservationViolation) {
  const auto cluster = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  const auto conf = default_spark_conf();
  auto d = disc::resolve_deployment(conf, cluster);
  ASSERT_TRUE(d.viable);
  d.unified_per_executor = d.heap_per_executor;  // no room left for the reserve
  EXPECT_TRUE(mentions(disc::audit(d, conf, cluster), "memory conservation violation"));
}

TEST(DeploymentAudit, DetectsOversubscribedFleet) {
  const auto cluster = cluster::Cluster::from_spec({"h1.4xlarge", 4});
  const auto conf = default_spark_conf();
  auto d = disc::resolve_deployment(conf, cluster);
  ASSERT_TRUE(d.viable);
  d.executors = d.executors_per_vm * cluster.vm_count() + 1;
  d.total_slots = d.executors * d.slots_per_executor;
  EXPECT_TRUE(mentions(disc::audit(d, conf, cluster), "exceeds per-VM packing"));
}

// -- report auditor ------------------------------------------------------------

disc::ExecutionReport healthy_report() {
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  const auto w = workload::make_workload("terasort");
  return workload::execute(*w, gib(8), sim, config::spark_space()->default_config());
}

TEST(ReportAudit, EngineReportsAreClean) {
  const auto r = healthy_report();
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(disc::audit(r).empty());
}

TEST(ReportAudit, DetectsAggregateDrift) {
  auto r = healthy_report();
  r.total_cpu += 100.0;  // aggregates no longer roll up from stages
  EXPECT_TRUE(mentions(disc::audit(r), "aggregate cpu"));
}

TEST(ReportAudit, DetectsTaskConservationViolation) {
  auto r = healthy_report();
  ASSERT_FALSE(r.stages.empty());
  r.stages[0].failed_tasks = r.stages[0].tasks + 1;
  EXPECT_TRUE(mentions(disc::audit(r), "task conservation violation"));
}

TEST(ReportAudit, DetectsImpossibleSpill) {
  auto r = healthy_report();
  ASSERT_FALSE(r.stages.empty());
  auto& first = r.stages[0];
  first.shuffle_read_bytes = 0;
  first.spilled_bytes = gib(1);
  r.finalize_aggregates();
  EXPECT_TRUE(mentions(disc::audit(r), "without reading any shuffle data"));
}

TEST(ReportAudit, DetectsStageOutrunningRuntime) {
  auto r = healthy_report();
  ASSERT_FALSE(r.stages.empty());
  r.stages.back().duration = r.runtime * 2.0;
  EXPECT_TRUE(mentions(disc::audit(r), "after the reported runtime"));
}

TEST(ReportAudit, ToleratesUnlaunchedStageOnFailedReports) {
  // A run aborted by an infra fault (whole spot fleet revoked) reports the
  // stage it died in with zero launched tasks; that is legitimate on a
  // failed report and a violation on a successful one.
  auto r = healthy_report();
  ASSERT_FALSE(r.stages.empty());
  auto& dying = r.stages.back();
  dying.tasks = 0;
  dying.failed_tasks = 0;
  dying.speculative_tasks = 0;
  r.success = false;
  r.infra_fault = true;
  r.failure_reason = "all spot VMs revoked";
  EXPECT_TRUE(disc::audit(r).empty());
  r.success = true;
  r.infra_fault = false;
  r.failure_reason.clear();
  EXPECT_TRUE(mentions(disc::audit(r), "launched 0 tasks"));
}

// -- engine STUNE_AUDIT hook ---------------------------------------------------

/// RAII guard so a failing test cannot leak audit mode into other tests.
struct AuditScope {
  explicit AuditScope(bool on) { simcore::set_audit_enabled(on); }
  ~AuditScope() { simcore::set_audit_enabled(false); }
};

TEST(EngineAudit, FullSuiteRunsCleanUnderAudit) {
  AuditScope audit(true);
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  for (const auto& name : workload::workload_names()) {
    const auto w = workload::make_workload(name);
    EXPECT_NO_THROW({
      const auto r = workload::execute(*w, gib(4), sim, config::spark_space()->default_config());
      (void)r;
    }) << name;
  }
}

TEST(EngineAudit, FailedExecutionsStillSatisfyInvariants) {
  AuditScope audit(true);
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorMemoryGiB, 1.0);  // OOM territory for a shuffle-heavy job
  c.set(k::kDefaultParallelism, 20);
  const auto w = workload::make_workload("terasort");
  disc::ExecutionReport r;
  EXPECT_NO_THROW(r = workload::execute(*w, gib(64), sim, c));
  // Whether or not this configuration survives, the report passed the audit
  // gate inside the engine; double-check from the outside too.
  EXPECT_TRUE(disc::audit(r).empty());
}

TEST(EngineAudit, RejectsCorruptPlanWhenEnabled) {
  AuditScope audit(true);
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  auto plan = tiny_valid_plan();
  plan.stages[1].parent_stages.clear();  // barrier violation
  EXPECT_THROW(sim.run(plan, default_spark_conf()), CheckError);
  // With auditing off the engine trusts its caller (no throw).
  simcore::set_audit_enabled(false);
  EXPECT_NO_THROW(sim.run(plan, default_spark_conf()));
}

// -- determinism regression ----------------------------------------------------

/// Order-sensitive 64-bit hash of every numeric field of a report, bit-exact
/// for doubles: two runs agree iff the simulated executions are identical.
std::uint64_t fingerprint(const disc::ExecutionReport& r) {
  std::uint64_t h = simcore::hash_string(r.failure_reason);
  const auto mix_u64 = [&h](std::uint64_t v) { h = simcore::hash_combine(h, v); };
  const auto mix_d = [&mix_u64](double v) { mix_u64(std::bit_cast<std::uint64_t>(v)); };
  mix_u64(r.success ? 1 : 0);
  mix_d(r.runtime);
  mix_d(r.cost);
  mix_u64(static_cast<std::uint64_t>(r.executors));
  mix_u64(static_cast<std::uint64_t>(r.total_slots));
  mix_d(r.cache_hit_fraction);
  for (const auto& s : r.stages) {
    mix_u64(static_cast<std::uint64_t>(s.tasks));
    mix_u64(static_cast<std::uint64_t>(s.waves));
    mix_u64(static_cast<std::uint64_t>(s.failed_tasks));
    mix_d(s.start);
    mix_d(s.duration);
    mix_d(s.cpu_seconds);
    mix_d(s.gc_seconds);
    mix_d(s.disk_seconds);
    mix_d(s.net_seconds);
    mix_d(s.spill_seconds);
    mix_d(s.overhead_seconds);
    mix_u64(s.input_bytes);
    mix_u64(s.shuffle_read_bytes);
    mix_u64(s.shuffle_write_bytes);
    mix_u64(s.spilled_bytes);
  }
  return h;
}

TEST(Determinism, IdenticalSeededRunsProduceBitIdenticalMetrics) {
  // Fresh simulator objects on purpose: determinism must hold across engine
  // instances, not just across calls on one instance. Sanitizers cannot see
  // this class of bug (uninitialized padding, iteration-order dependence,
  // hidden global state) — only a run-twice comparison can.
  for (const auto& name : {"pagerank", "terasort", "join"}) {
    disc::EngineOptions opts;
    opts.seed = 1234;
    const disc::SparkSimulator a(cluster::Cluster::from_spec({"h1.4xlarge", 4}), opts);
    const disc::SparkSimulator b(cluster::Cluster::from_spec({"h1.4xlarge", 4}), opts);
    const auto w = workload::make_workload(name);
    const auto ra = workload::execute(*w, gib(8), a, config::spark_space()->default_config());
    const auto rb = workload::execute(*w, gib(8), b, config::spark_space()->default_config());
    EXPECT_EQ(fingerprint(ra), fingerprint(rb)) << name;
  }
}

TEST(Determinism, DifferentSeedsProduceDifferentMetrics) {
  disc::EngineOptions o1, o2;
  o1.seed = 1;
  o2.seed = 2;
  const disc::SparkSimulator a(cluster::Cluster::from_spec({"h1.4xlarge", 4}), o1);
  const disc::SparkSimulator b(cluster::Cluster::from_spec({"h1.4xlarge", 4}), o2);
  const auto w = workload::make_workload("sort");
  const auto ra = workload::execute(*w, gib(8), a, config::spark_space()->default_config());
  const auto rb = workload::execute(*w, gib(8), b, config::spark_space()->default_config());
  EXPECT_NE(fingerprint(ra), fingerprint(rb));
}

}  // namespace
}  // namespace stune
