#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "adaptive/change_detector.hpp"
#include "adaptive/retuning_policy.hpp"
#include "simcore/rng.hpp"

namespace stune::adaptive {
namespace {

/// Feed a stationary stream; returns true if the detector ever fired.
bool fires_on_stationary(ChangeDetector& d, std::uint64_t seed, std::size_t n = 200) {
  simcore::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    if (d.add(100.0 + rng.normal(0.0, 3.0))) return true;
  }
  return false;
}

/// Feed stationary then shifted; returns detection delay (observations
/// after the shift), or -1 if missed.
int detection_delay(ChangeDetector& d, double shift_factor, std::uint64_t seed) {
  simcore::Rng rng(seed);
  for (int i = 0; i < 40; ++i) d.add(100.0 + rng.normal(0.0, 3.0));
  for (int i = 0; i < 100; ++i) {
    if (d.add(100.0 * shift_factor + rng.normal(0.0, 3.0))) return i + 1;
  }
  return -1;
}

class DetectorContract : public ::testing::TestWithParam<std::string> {};

TEST_P(DetectorContract, QuietOnStationaryStream) {
  const auto d = make_detector(GetParam());
  EXPECT_FALSE(fires_on_stationary(*d, 42));
}

TEST_P(DetectorContract, DetectsALargeSustainedShift) {
  const auto d = make_detector(GetParam());
  const int delay = detection_delay(*d, 1.5, 7);
  EXPECT_GT(delay, 0);
  EXPECT_LE(delay, 30);
}

TEST_P(DetectorContract, StaysTriggeredUntilReset) {
  const auto d = make_detector(GetParam());
  ASSERT_GT(detection_delay(*d, 2.0, 9), 0);
  EXPECT_TRUE(d->triggered());
  d->add(100.0);
  EXPECT_TRUE(d->triggered());
  d->reset();
  EXPECT_FALSE(d->triggered());
}

TEST_P(DetectorContract, UsableAgainAfterReset) {
  const auto d = make_detector(GetParam());
  ASSERT_GT(detection_delay(*d, 2.0, 11), 0);
  d->reset();
  EXPECT_FALSE(fires_on_stationary(*d, 13, 100));
  EXPECT_GT(detection_delay(*d, 2.0, 15), 0);
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorContract,
                         ::testing::ValuesIn(detector_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string n = param_info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(DetectorRegistry, UnknownThrows) {
  EXPECT_THROW(make_detector("adwin"), std::invalid_argument);
}

TEST(FixedThreshold, FiresOnASingleOutlier) {
  // The paper's §V-D criticism: a fixed percentual delta confuses one noisy
  // run with real drift. Demonstrate the false positive.
  FixedThresholdDetector d(0.2, 5);
  for (int i = 0; i < 5; ++i) d.add(100.0);
  EXPECT_FALSE(d.triggered());
  d.add(130.0);  // one transient hiccup
  EXPECT_TRUE(d.triggered());
}

TEST(Cusum, ToleratesASingleOutlierButCatchesSustainedDrift) {
  CusumDetector d;
  for (int i = 0; i < 10; ++i) d.add(100.0 + (i % 2 == 0 ? 2.0 : -2.0));
  d.add(130.0);  // same transient hiccup
  EXPECT_FALSE(d.triggered());
  // but a sustained 15% degradation is caught
  int fired_at = -1;
  for (int i = 0; i < 50 && fired_at < 0; ++i) {
    if (d.add(115.0 + (i % 2 == 0 ? 2.0 : -2.0))) fired_at = i;
  }
  EXPECT_GE(fired_at, 0);
}

TEST(Detectors, ValidateConstructionArguments) {
  EXPECT_THROW(FixedThresholdDetector(0.0), std::invalid_argument);
  EXPECT_THROW(FixedThresholdDetector(0.1, 0), std::invalid_argument);
  EXPECT_THROW(CusumDetector(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(PageHinkleyDetector(0.05, -1.0), std::invalid_argument);
}

TEST(RetuningController, SignalsAndCooldown) {
  RetuningController ctl(std::make_unique<CusumDetector>(),
                         RetuningController::Options{.cooldown = 3});
  simcore::Rng rng(1);
  bool fired = false;
  for (int i = 0; i < 20 && !fired; ++i) fired = ctl.observe(100.0 + rng.normal(0.0, 1.0));
  EXPECT_FALSE(fired);
  for (int i = 0; i < 50 && !fired; ++i) fired = ctl.observe(160.0 + rng.normal(0.0, 1.0));
  ASSERT_TRUE(fired);
  EXPECT_EQ(ctl.retunes_signalled(), 1u);

  ctl.notify_retuned();
  // During cooldown, even awful runtimes don't signal.
  EXPECT_FALSE(ctl.observe(500.0));
  EXPECT_FALSE(ctl.observe(500.0));
  EXPECT_FALSE(ctl.observe(500.0));
}

TEST(RetuningController, NullDetectorRejected) {
  EXPECT_THROW(RetuningController(nullptr), std::invalid_argument);
}

TEST(RetuningController, CountsObservations) {
  RetuningController ctl(std::make_unique<PageHinkleyDetector>());
  for (int i = 0; i < 7; ++i) ctl.observe(10.0);
  EXPECT_EQ(ctl.observations(), 7u);
}

}  // namespace
}  // namespace stune::adaptive
