#include <gtest/gtest.h>

#include <cstddef>

#include "service/tradeoff.hpp"

namespace stune::service {
namespace {

using simcore::gib;

TradeoffPoint pt(double runtime, double cost) {
  TradeoffPoint p;
  p.runtime = runtime;
  p.cost = cost;
  return p;
}

TEST(ParetoFrontier, KeepsOnlyNonDominatedPoints) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(pt(100.0, 1.0)));
  EXPECT_TRUE(f.insert(pt(50.0, 2.0)));   // faster, pricier: joins
  EXPECT_FALSE(f.insert(pt(120.0, 1.5))); // dominated by (100, 1)
  EXPECT_EQ(f.size(), 2u);
}

TEST(ParetoFrontier, NewPointEvictsDominated) {
  ParetoFrontier f;
  f.insert(pt(100.0, 1.0));
  f.insert(pt(50.0, 2.0));
  EXPECT_TRUE(f.insert(pt(40.0, 0.5)));  // dominates both
  EXPECT_EQ(f.size(), 1u);
  EXPECT_DOUBLE_EQ(f.points()[0].runtime, 40.0);
}

TEST(ParetoFrontier, PointsOrderedByRuntimeWithDescendingCost) {
  ParetoFrontier f;
  f.insert(pt(100.0, 1.0));
  f.insert(pt(50.0, 2.0));
  f.insert(pt(25.0, 4.0));
  const auto& pts = f.points();
  ASSERT_EQ(pts.size(), 3u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].runtime, pts[i - 1].runtime);
    EXPECT_LT(pts[i].cost, pts[i - 1].cost);
  }
}

TEST(ParetoFrontier, AnswersBudgetAndDeadlineQueries) {
  ParetoFrontier f;
  f.insert(pt(100.0, 1.0));
  f.insert(pt(50.0, 2.0));
  f.insert(pt(25.0, 4.0));

  const auto cheap_fast = f.fastest_under_cost(2.5);
  ASSERT_TRUE(cheap_fast.has_value());
  EXPECT_DOUBLE_EQ(cheap_fast->runtime, 50.0);

  const auto in_time = f.cheapest_under_runtime(60.0);
  ASSERT_TRUE(in_time.has_value());
  EXPECT_DOUBLE_EQ(in_time->cost, 2.0);

  EXPECT_FALSE(f.fastest_under_cost(0.1).has_value());
  EXPECT_FALSE(f.cheapest_under_runtime(10.0).has_value());
}

TEST(ParetoFrontier, EqualPointIsDominated) {
  ParetoFrontier f;
  EXPECT_TRUE(f.insert(pt(10.0, 1.0)));
  EXPECT_FALSE(f.insert(pt(10.0, 1.0)));
  EXPECT_EQ(f.size(), 1u);
}

TEST(ExploreTradeoff, ProducesADiverseValidFrontier) {
  TradeoffExplorerOptions opts;
  opts.budget = 40;
  const auto frontier = explore_tradeoff(*workload::make_workload("bayes"), gib(8), opts);
  ASSERT_GE(frontier.size(), 3u);
  for (const auto& p : frontier.points()) {
    EXPECT_GT(p.runtime, 0.0);
    EXPECT_GT(p.cost, 0.0);
    EXPECT_NO_THROW(cluster::find_instance(p.cluster.instance));
  }
  // The frontier must actually span a trade-off, not collapse to one point.
  const auto& pts = frontier.points();
  EXPECT_GT(pts.front().cost / pts.back().cost, 1.3);
  EXPECT_GT(pts.back().runtime / pts.front().runtime, 1.3);
}

TEST(ExploreTradeoff, DeterministicGivenSeed) {
  TradeoffExplorerOptions opts;
  opts.budget = 25;
  opts.seed = 77;
  const auto a = explore_tradeoff(*workload::make_workload("sort"), gib(8), opts);
  const auto b = explore_tradeoff(*workload::make_workload("sort"), gib(8), opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].runtime, b.points()[i].runtime);
  }
}

TEST(ExploreTradeoff, FastestPointUsesMoreExpensiveResourcesThanCheapest) {
  TradeoffExplorerOptions opts;
  opts.budget = 40;
  const auto frontier = explore_tradeoff(*workload::make_workload("pagerank"), gib(8), opts);
  ASSERT_GE(frontier.size(), 2u);
  const auto& fastest = frontier.points().front();
  const auto& cheapest = frontier.points().back();
  const auto fast_cluster = cluster::Cluster::from_spec(fastest.cluster);
  const auto cheap_cluster = cluster::Cluster::from_spec(cheapest.cluster);
  EXPECT_GE(fast_cluster.cost_per_hour(), cheap_cluster.cost_per_hour());
}

}  // namespace
}  // namespace stune::service
