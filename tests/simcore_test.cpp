#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "simcore/arena.hpp"
#include "simcore/check.hpp"
#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/rng.hpp"
#include "simcore/stats.hpp"
#include "simcore/units.hpp"

namespace stune::simcore {
namespace {

// -- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsDeterministicAndDoesNotAdvanceParent) {
  Rng parent(7);
  Rng f1 = parent.fork("stream");
  Rng f2 = parent.fork("stream");
  EXPECT_EQ(f1.next(), f2.next());
  Rng fresh(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(parent.next(), fresh.next());
}

TEST(Rng, ForksWithDifferentTagsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork("a");
  Rng b = parent.fork("b");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalWithMeanCorrectionHasUnitMean) {
  Rng rng(13);
  const double sigma = 0.4;
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.lognormal(-0.5 * sigma * sigma, sigma));
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[1] / 30000.0, 0.5, 0.02);
}

TEST(Rng, CategoricalRejectsAllZero) {
  Rng rng(23);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(HashString, StableAndDistinct) {
  EXPECT_EQ(hash_string("pagerank"), hash_string("pagerank"));
  EXPECT_NE(hash_string("pagerank"), hash_string("wordcount"));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

// -- RunningStats --------------------------------------------------------------

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats s;
  for (const double x : xs) s.add(x);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.mean(), 3.875, 1e-12);
  // Sample variance computed by hand.
  double sse = 0.0;
  for (const double x : xs) sse += (x - 3.875) * (x - 3.875);
  EXPECT_NEAR(s.variance(), sse / static_cast<double>(xs.size() - 1), 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(31);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
}

// -- Ewma ---------------------------------------------------------------------

TEST(Ewma, BiasCorrectedWarmup) {
  Ewma e(0.1);
  e.add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-12);  // first sample should not be shrunk
}

TEST(Ewma, ConvergesToStationaryMean) {
  Ewma e(0.2);
  for (int i = 0; i < 200; ++i) e.add(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, RejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

// -- percentile ------------------------------------------------------------------

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_NEAR(percentile(v, 25.0), 2.5, 1e-12);
}

TEST(Percentile, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Pearson, PerfectAndNone) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_EQ(pearson(x, flat), 0.0);
}

// -- units --------------------------------------------------------------------------

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2 * kMiB), "2.00 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(12.5), "12.50s");
  EXPECT_EQ(format_seconds(125.0), "2m 5.0s");
  EXPECT_EQ(format_seconds(3725.0), "1h 2m 5s");
}

TEST(Units, Conversions) {
  EXPECT_EQ(gib(2.0), 2ULL * kGiB);
  EXPECT_EQ(mib(1.5), kMiB + kMiB / 2);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
}

// -- TrialArena --------------------------------------------------------------

TEST(TrialArena, AllocReturnsZeroedAlignedSpans) {
  TrialArena arena;
  const auto d = arena.alloc<double>(37);
  const auto i = arena.alloc<std::uint32_t>(5);
  ASSERT_EQ(d.size(), 37u);
  ASSERT_EQ(i.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(i.data()) % alignof(std::uint32_t), 0u);
  for (const double v : d) EXPECT_EQ(v, 0.0);
  for (const std::uint32_t v : i) EXPECT_EQ(v, 0u);
}

TEST(TrialArena, ZeroCountAllocationConsumesNothing) {
  TrialArena arena;
  const std::size_t before = arena.used();
  const auto s = arena.alloc<double>(0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(arena.used(), before);
}

TEST(TrialArena, ResetReclaimsSpaceAndRezeroesReusedMemory) {
  TrialArena arena;
  auto first = arena.alloc<double>(64);
  for (auto& v : first) v = 3.25;  // scribble over the block
  const std::size_t used = arena.used();
  EXPECT_GE(used, 64 * sizeof(double));
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_GE(arena.high_water(), used);
  const auto second = arena.alloc<double>(64);
  for (const double v : second) EXPECT_EQ(v, 0.0);  // scribbles never leak
}

TEST(TrialArena, WarmedArenaNeverGrowsForSameSizedTrials) {
  TrialArena arena(1 << 8);  // tiny initial block forces warm-up growth
  for (int trial = 0; trial < 3; ++trial) {
    arena.alloc<double>(1000);
    arena.alloc<std::uint64_t>(500);
    arena.reset();
  }
  const std::size_t warm_capacity = arena.capacity();
  for (int trial = 0; trial < 10; ++trial) {
    arena.alloc<double>(1000);
    arena.alloc<std::uint64_t>(500);
    arena.reset();
  }
  EXPECT_EQ(arena.capacity(), warm_capacity);
}

TEST(TrialArena, SpillBlocksCoalesceIntoOneContiguousBlock) {
  TrialArena arena(1 << 8);
  // Many small allocations force several geometric spill blocks.
  for (int i = 0; i < 50; ++i) arena.alloc<double>(100);
  const std::size_t high = arena.high_water();
  arena.reset();
  EXPECT_GE(arena.capacity(), high);
  // After coalescing, the whole high-water mark fits one block: a single
  // allocation of that size must not grow capacity again.
  const std::size_t coalesced = arena.capacity();
  arena.alloc<std::byte>(high);
  EXPECT_EQ(arena.capacity(), coalesced);
}

TEST(TrialArena, HighWaterTracksLifetimeMaximum) {
  TrialArena arena;
  arena.alloc<double>(10);
  arena.reset();
  arena.alloc<double>(1000);
  const std::size_t peak = arena.high_water();
  arena.reset();
  arena.alloc<double>(5);
  EXPECT_EQ(arena.high_water(), peak);
}

TEST(TrialArena, OverAlignedTypesGetCorrectlyAlignedAddresses) {
  struct alignas(64) CacheLine {
    double lanes[8];
  };
  TrialArena arena(1 << 8);
  for (int i = 0; i < 20; ++i) {
    // A one-byte allocation in between knocks the bump offset off any
    // natural 64-byte stride, so each CacheLine span must re-align from an
    // arbitrary address (not just an arbitrary offset).
    arena.alloc<std::uint8_t>(1);
    const auto s = arena.alloc<CacheLine>(3);
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % 64u, 0u);
  }
}

TEST(TrialArena, CoalescingAtTheHighWaterMarkIsStable) {
  TrialArena arena(1 << 8);
  for (int i = 0; i < 50; ++i) arena.alloc<double>(100);
  arena.reset();  // coalesces the spill chain
  const std::size_t coalesced = arena.capacity();
  // A trial that allocates exactly the coalesced capacity in one shot sits
  // right at the high-water boundary: it must fit the single block, and the
  // following reset must not churn capacity again.
  arena.alloc<std::byte>(coalesced);
  EXPECT_EQ(arena.capacity(), coalesced);
  arena.reset();
  EXPECT_EQ(arena.capacity(), coalesced);
  EXPECT_EQ(arena.used(), 0u);
}

// -- TrialArena poisoning (STUNE_ARENA_POISON builds) ------------------------

TEST(TrialArenaPoison, RoundTripsCleanlyThroughResetAndRealloc) {
  // Valid usage must behave identically in every poison mode: spans are
  // handed out unpoisoned, scribbles die at reset, re-allocs come back
  // zeroed and checkable. Runs unconditionally so the plain build keeps the
  // coverage and the poisoned CI jobs exercise the poison/unpoison paths.
  TrialArena arena(1 << 8);
  for (int trial = 0; trial < 4; ++trial) {
    auto a = arena.alloc<double>(200);  // spills past the initial block
    auto b = arena.alloc<std::uint64_t>(33);
    for (auto& v : a) v = 1.5;
    for (auto& v : b) v = 0xDEADBEEFu;
    arena.reset();
  }
  const auto again = arena.alloc<double>(200);
  for (const double v : again) EXPECT_EQ(v, 0.0);
}

TEST(TrialArenaPoison, MagicModeThrowsOnStaleWriteThroughResetSpan) {
  if (TrialArena::poison_mode() != ArenaPoisonMode::kMagic) {
    GTEST_SKIP() << "needs a -DSTUNE_ARENA_POISON=ON build without ASan";
  }
  TrialArena arena;
  const auto stale = arena.alloc<std::uint64_t>(8);
  arena.reset();
  // Use-after-reset: in magic mode the memory is still owned, so the write
  // lands, but it destroys the 0xA5 fill that the next alloc verifies.
  stale[0] = 42;
  EXPECT_THROW(arena.alloc<std::uint64_t>(8), CheckError);
}

#if defined(STUNE_ARENA_POISON_ASAN)
TEST(TrialArenaPoisonDeathTest, AsanModeAbortsOnUseAfterReset) {
  // The deliberately injected use-after-reset the poisoned CI job must
  // catch: reading a span that reset() invalidated trips ASan's
  // use-after-poison report.
  EXPECT_DEATH(
      {
        TrialArena arena;
        const auto stale = arena.alloc<double>(16);
        arena.reset();
        volatile double sink = stale[0];
        (void)sink;
      },
      "use-after-poison");
}
#endif

// -- Lock-rank validator -----------------------------------------------------
//
// The validator functions are compiled in every build (only the Mutex wiring
// is behind STUNE_DEBUG_LOCK_RANK), so these drive the checking logic
// directly with dummy addresses and the real rank table.

TEST(LockRank, AscendingAcquisitionIsClean) {
  int a = 0, b = 0, c = 0;
  lock_rank::on_acquire(&a, lock_rank::kTuningService);
  lock_rank::on_acquire(&b, lock_rank::kTrialExecutor);
  lock_rank::on_acquire(&c, lock_rank::kEvalCacheShard);
  EXPECT_EQ(lock_rank::held_count(), 3u);
  EXPECT_EQ(lock_rank::max_held_rank(), lock_rank::kEvalCacheShard);
  lock_rank::on_release(&c);
  lock_rank::on_release(&b);
  lock_rank::on_release(&a);
  EXPECT_EQ(lock_rank::held_count(), 0u);
  EXPECT_EQ(lock_rank::max_held_rank(), lock_rank::kUnranked);
}

TEST(LockRank, ServingTierChainIsAscending) {
  // The serving tier's nesting order: a tenant shard's main mutex, then its
  // control-plane mutex, then the shared knowledge base, then the trial
  // executor. The ranks must encode that order outright.
  static_assert(lock_rank::kServiceShard < lock_rank::kServiceShardControl);
  static_assert(lock_rank::kServiceShardControl < lock_rank::kKnowledgeBase);
  static_assert(lock_rank::kKnowledgeBase < lock_rank::kTrialExecutor);
  static_assert(lock_rank::kTuningService == lock_rank::kServiceShard);
  int shard = 0, ctl = 0, kb = 0, exec = 0;
  lock_rank::on_acquire(&shard, lock_rank::kServiceShard);
  lock_rank::on_acquire(&ctl, lock_rank::kServiceShardControl);
  lock_rank::on_acquire(&kb, lock_rank::kKnowledgeBase);
  lock_rank::on_acquire(&exec, lock_rank::kTrialExecutor);
  EXPECT_EQ(lock_rank::held_count(), 4u);
  lock_rank::on_release(&exec);
  lock_rank::on_release(&kb);
  lock_rank::on_release(&ctl);
  lock_rank::on_release(&shard);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, ShardAfterKnowledgeBaseThrows) {
  // record/query paths take the knowledge base while a shard is held —
  // never the reverse.
  int kb = 0, shard = 0;
  lock_rank::on_acquire(&kb, lock_rank::kKnowledgeBase);
  EXPECT_THROW(lock_rank::on_acquire(&shard, lock_rank::kServiceShard), CheckError);
  EXPECT_THROW(lock_rank::on_acquire(&shard, lock_rank::kServiceShardControl), CheckError);
  lock_rank::on_release(&kb);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, OutOfOrderAcquisitionThrows) {
  int pool = 0, service = 0;
  lock_rank::on_acquire(&pool, lock_rank::kThreadPool);
  // ThreadPool (40) is held; TuningService (10) must never be taken now.
  EXPECT_THROW(lock_rank::on_acquire(&service, lock_rank::kTuningService),
               CheckError);
  // The failed acquisition recorded nothing, so unwinding stays balanced.
  EXPECT_EQ(lock_rank::held_count(), 1u);
  lock_rank::on_release(&pool);
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, EqualRankAcquisitionThrows) {
  // Two distinct mutexes of the same rank can deadlock against each other,
  // so the order must be strictly increasing.
  int a = 0, b = 0;
  lock_rank::on_acquire(&a, lock_rank::kTrialExecutor);
  EXPECT_THROW(lock_rank::on_acquire(&b, lock_rank::kTrialExecutor), CheckError);
  lock_rank::on_release(&a);
}

TEST(LockRank, ReacquiringAHeldMutexThrowsEvenUnranked) {
  int mu = 0;
  lock_rank::on_acquire(&mu, lock_rank::kUnranked);
  EXPECT_THROW(lock_rank::on_acquire(&mu, lock_rank::kUnranked), CheckError);
  lock_rank::on_release(&mu);
}

TEST(LockRank, UnrankedMutexesSkipTheOrderCheck) {
  int ranked = 0, scratch = 0;
  lock_rank::on_acquire(&ranked, lock_rank::kEvalCacheShard);
  // An unranked (test-local) mutex may be taken under any held ranks.
  lock_rank::on_acquire(&scratch, lock_rank::kUnranked);
  EXPECT_EQ(lock_rank::held_count(), 2u);
  EXPECT_EQ(lock_rank::max_held_rank(), lock_rank::kEvalCacheShard);
  lock_rank::on_release(&scratch);
  lock_rank::on_release(&ranked);
}

TEST(LockRank, TryAcquireRecordsWithoutChecking) {
  int pool = 0, service = 0;
  lock_rank::on_acquire(&pool, lock_rank::kThreadPool);
  // try_lock cannot block, so recording a lower rank is fine...
  lock_rank::on_try_acquire(&service, lock_rank::kTuningService);
  EXPECT_EQ(lock_rank::held_count(), 2u);
  // ...but blocking acquisitions afterwards still see everything held.
  int shard = 0;
  EXPECT_THROW(lock_rank::on_acquire(&shard, lock_rank::kThreadPool), CheckError);
  lock_rank::on_release(&service);
  lock_rank::on_release(&pool);
}

TEST(LockRank, ReleaseOfUnknownMutexIsANoOp) {
  int stranger = 0;
  lock_rank::on_release(&stranger);  // locked before the validator existed
  EXPECT_EQ(lock_rank::held_count(), 0u);
}

TEST(LockRank, HeldStateIsPerThread) {
  int mu = 0;
  lock_rank::on_acquire(&mu, lock_rank::kThreadPool);
  std::size_t other_thread_held = 99;
  std::thread peer([&] { other_thread_held = lock_rank::held_count(); });
  peer.join();
  EXPECT_EQ(other_thread_held, 0u);
  lock_rank::on_release(&mu);
}

// Under STUNE_DEBUG_LOCK_RANK the Mutex wiring itself is live: a plain
// MutexLock taken out of declared order must fail the check (with the
// native mutex left unlocked, so the test keeps running).
TEST(LockRank, MutexWiringCatchesOutOfOrderMutexLock) {
#if defined(STUNE_DEBUG_LOCK_RANK)
  Mutex low(lock_rank::kTuningService);
  Mutex high(lock_rank::kThreadPool);
  {
    MutexLock outer(high);
    EXPECT_THROW({ MutexLock inner(low); }, CheckError);
  }
  {  // The declared order is clean, including after the failure above.
    MutexLock outer(low);
    MutexLock inner(high);
  }
#else
  GTEST_SKIP() << "Mutex wiring requires -DSTUNE_DEBUG_LOCK_RANK=ON";
#endif
}

}  // namespace
}  // namespace stune::simcore
