#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "model/gp.hpp"
#include "simcore/rng.hpp"

namespace stune::model {
namespace {

Dataset smooth_1d(std::size_t n, simcore::Rng& rng) {
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform();
    d.add({x}, std::sin(4.0 * x));
  }
  return d;
}

TEST(GaussianProcess, InterpolatesTrainingPoints) {
  simcore::Rng rng(1);
  const auto d = smooth_1d(30, rng);
  GaussianProcess gp;
  gp.fit(d);
  for (std::size_t i = 0; i < d.size(); i += 5) {
    const auto p = gp.predict(d.row(i));
    EXPECT_NEAR(p.mean, d.target(i), 0.08);
  }
}

TEST(GaussianProcess, PredictsSmoothFunctionBetweenPoints) {
  simcore::Rng rng(2);
  const auto d = smooth_1d(60, rng);
  GaussianProcess gp;
  gp.fit(d);
  for (int i = 1; i < 10; ++i) {
    const double x = i / 10.0;
    EXPECT_NEAR(gp.predict({x}).mean, std::sin(4.0 * x), 0.1);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  Dataset d;
  simcore::Rng rng(3);
  for (int i = 0; i < 25; ++i) {
    const double x = rng.uniform(0.0, 0.3);
    d.add({x}, x);
  }
  GaussianProcess gp;
  gp.fit(d);
  EXPECT_GT(gp.predict({0.95}).variance, gp.predict({0.15}).variance * 1.5);
}

TEST(GaussianProcess, VarianceIsNonNegative) {
  simcore::Rng rng(4);
  const auto d = smooth_1d(40, rng);
  GaussianProcess gp;
  gp.fit(d);
  for (int i = 0; i <= 20; ++i) {
    EXPECT_GE(gp.predict({i / 20.0}).variance, 0.0);
  }
}

TEST(GaussianProcess, HandlesConstantTargets) {
  Dataset d;
  for (int i = 0; i < 10; ++i) d.add({i / 10.0}, 5.0);
  GaussianProcess gp;
  gp.fit(d);
  EXPECT_NEAR(gp.predict({0.5}).mean, 5.0, 0.2);
}

TEST(GaussianProcess, SelectsLengthscaleByLml) {
  simcore::Rng rng(5);
  const auto d = smooth_1d(50, rng);
  GaussianProcess gp;
  gp.fit(d);
  EXPECT_GT(gp.lengthscale(), 0.0);
  EXPECT_TRUE(std::isfinite(gp.log_marginal_likelihood()));
}

TEST(GaussianProcess, PriorVarianceIsConstantFarFromData) {
  // matern52(0) is exactly 1, so the self-kernel k(x, x) is exactly the
  // signal variance — the predictor uses that constant instead of
  // re-evaluating the kernel per candidate. Far from all data the k* vector
  // underflows to exactly zero, exposing the prior directly: any two such
  // points must get bitwise-identical predictions.
  simcore::Rng rng(6);
  const auto d = smooth_1d(30, rng);
  GaussianProcess gp;
  gp.fit(d);
  const auto far_a = gp.predict({1e7});
  const auto far_b = gp.predict({-1e7});
  EXPECT_EQ(far_a.variance, far_b.variance);
  EXPECT_EQ(far_a.mean, far_b.mean);
  // And the prior ceiling bounds every in-domain predictive variance.
  for (int i = 0; i <= 10; ++i) {
    EXPECT_LE(gp.predict({i / 10.0}).variance, far_a.variance * (1.0 + 1e-12));
  }
}

TEST(GaussianProcess, MisuseThrows) {
  GaussianProcess gp;
  EXPECT_THROW(gp.predict({0.5}), std::logic_error);
  EXPECT_THROW(gp.fit(Dataset{}), std::invalid_argument);
}

TEST(ExpectedImprovement, ZeroVarianceNoImprovement) {
  // Prediction equals the incumbent with no uncertainty: EI ~ 0.
  EXPECT_NEAR(expected_improvement(10.0, 0.0, 10.0), 0.0, 1e-6);
  // Worse mean, no variance: still ~0.
  EXPECT_NEAR(expected_improvement(15.0, 0.0, 10.0), 0.0, 1e-6);
}

TEST(ExpectedImprovement, BetterMeanGivesPositiveEi) {
  EXPECT_GT(expected_improvement(5.0, 1.0, 10.0), 4.0);
}

TEST(ExpectedImprovement, MoreUncertaintyMoreEiAtSameMean) {
  const double lo = expected_improvement(10.0, 0.01, 10.0);
  const double hi = expected_improvement(10.0, 4.0, 10.0);
  EXPECT_GT(hi, lo);
}

TEST(ExpectedImprovement, IsNonNegative) {
  for (double mean : {0.0, 5.0, 20.0}) {
    for (double var : {0.0, 0.5, 10.0}) {
      EXPECT_GE(expected_improvement(mean, var, 8.0), 0.0);
    }
  }
}

}  // namespace
}  // namespace stune::model
