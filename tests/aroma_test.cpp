#include <gtest/gtest.h>

#include <vector>

#include "config/spark_space.hpp"
#include "transfer/aroma.hpp"

namespace stune::transfer {
namespace {

Signature cpu_sig(double tweak = 0.0) {
  Signature s;
  s.cpu_fraction = 0.8 + tweak;
  s.disk_fraction = 0.1;
  s.shuffle_per_input = 0.05;
  return s;
}

Signature shuffle_sig(double tweak = 0.0) {
  Signature s;
  s.cpu_fraction = 0.2;
  s.net_fraction = 0.5 + tweak;
  s.shuffle_per_input = 1.2;
  return s;
}

DonorObservation donor(const Signature& sig, double runtime, double memory) {
  DonorObservation d;
  auto c = config::spark_space()->default_config();
  c.set(config::spark::kExecutorMemoryGiB, memory);
  d.observation.config = c;
  d.observation.runtime = runtime;
  d.observation.objective = runtime;
  d.signature = sig;
  return d;
}

std::vector<DonorObservation> two_family_history() {
  std::vector<DonorObservation> h;
  for (int i = 0; i < 10; ++i) {
    h.push_back(donor(cpu_sig(0.01 * i), 100.0 + i, 2.0 + i));      // cpu family
    h.push_back(donor(shuffle_sig(0.01 * i), 50.0 + i, 20.0 + i));  // shuffle family
  }
  return h;
}

TEST(Aroma, SeparatesResourceFamilies) {
  AromaAdvisor advisor(AromaAdvisor::Options{.clusters = 2, .suggestions = 3, .seed = 1});
  advisor.fit(two_family_history());
  EXPECT_EQ(advisor.cluster_count(), 2u);
  EXPECT_NE(advisor.assign(cpu_sig()), advisor.assign(shuffle_sig()));
}

TEST(Aroma, SuggestsTheClustersBestConfigs) {
  AromaAdvisor advisor(AromaAdvisor::Options{.clusters = 2, .suggestions = 3, .seed = 1});
  advisor.fit(two_family_history());
  const auto suggestions = advisor.suggest(shuffle_sig(0.005));
  ASSERT_EQ(suggestions.size(), 3u);
  // Shuffle-family donors have runtimes 50..59; best three come first.
  EXPECT_DOUBLE_EQ(suggestions[0].runtime, 50.0);
  EXPECT_LE(suggestions[0].runtime, suggestions[1].runtime);
  EXPECT_LE(suggestions[1].runtime, suggestions[2].runtime);
  // And their configurations belong to that family (large memory in our
  // synthetic setup).
  EXPECT_GE(suggestions[0].config.get(config::spark::kExecutorMemoryGiB), 19.0);
}

TEST(Aroma, IgnoresFailedExecutions) {
  auto history = two_family_history();
  auto failed = donor(shuffle_sig(), 1.0, 48.0);  // suspiciously fast... and failed
  failed.observation.failed = true;
  history.push_back(failed);
  AromaAdvisor advisor(AromaAdvisor::Options{.clusters = 2, .suggestions = 2, .seed = 1});
  advisor.fit(history);
  EXPECT_DOUBLE_EQ(advisor.suggest(shuffle_sig())[0].runtime, 50.0);
}

TEST(Aroma, DeduplicatesConfigs) {
  std::vector<DonorObservation> history;
  for (int i = 0; i < 6; ++i) history.push_back(donor(cpu_sig(), 10.0 + i, 4.0));  // same config
  AromaAdvisor advisor(AromaAdvisor::Options{.clusters = 1, .suggestions = 5, .seed = 1});
  advisor.fit(history);
  EXPECT_EQ(advisor.suggest(cpu_sig()).size(), 1u);
}

TEST(Aroma, ClampsClusterCountToHistory) {
  std::vector<DonorObservation> history = {donor(cpu_sig(), 10.0, 4.0),
                                           donor(shuffle_sig(), 20.0, 8.0)};
  AromaAdvisor advisor(AromaAdvisor::Options{.clusters = 8, .suggestions = 2, .seed = 1});
  advisor.fit(history);
  EXPECT_LE(advisor.cluster_count(), 2u);
}

TEST(Aroma, MisuseThrows) {
  AromaAdvisor advisor;
  EXPECT_THROW(advisor.fit({}), std::invalid_argument);
  EXPECT_THROW(advisor.assign(cpu_sig()), std::logic_error);
}

TEST(Aroma, DeterministicGivenSeed) {
  AromaAdvisor a(AromaAdvisor::Options{.clusters = 2, .suggestions = 3, .seed = 9});
  AromaAdvisor b(AromaAdvisor::Options{.clusters = 2, .suggestions = 3, .seed = 9});
  a.fit(two_family_history());
  b.fit(two_family_history());
  EXPECT_EQ(a.assign(cpu_sig()), b.assign(cpu_sig()));
  EXPECT_EQ(a.suggest(cpu_sig()).size(), b.suggest(cpu_sig()).size());
}

}  // namespace
}  // namespace stune::transfer
