// Golden-numeric tests for the incremental surrogate hot path: the blocked
// Cholesky kernels against naive references, the rank-1 append against full
// refactorization, the batched predictors against their scalar loops
// (bitwise), and the incremental observe() path against full refits — up to
// the end-to-end claim that a Bayesian-optimization run picks the same
// incumbent either way.
#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.hpp"
#include "model/additive_gp.hpp"
#include "model/gp.hpp"
#include "model/tree.hpp"
#include "simcore/rng.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/tuner.hpp"
#include "tuning/tuners.hpp"

namespace stune {
namespace {

/// Random SPD matrix: B Bᵀ + n·I with B entries in [-1, 1].
linalg::Matrix random_spd(std::size_t n, simcore::Rng& rng) {
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

// -- Blocked Cholesky -------------------------------------------------------

TEST(BlockedCholesky, ReconstructsAcrossBlockBoundaries) {
  simcore::Rng rng(11);
  // Sizes straddling the 32-wide panel: single partial panel, exact panels,
  // panels plus remainder.
  for (const std::size_t n : {1u, 2u, 31u, 32u, 33u, 64u, 65u, 100u}) {
    const auto a = random_spd(n, rng);
    const auto l = linalg::cholesky(a);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (j > i) {
          EXPECT_EQ(l(i, j), 0.0) << "upper triangle not cleared at " << i << "," << j;
          continue;
        }
        double acc = 0.0;
        for (std::size_t k = 0; k <= j; ++k) acc += l(i, k) * l(j, k);
        EXPECT_NEAR(acc, a(i, j), 1e-9) << "n=" << n << " at " << i << "," << j;
      }
    }
  }
}

TEST(BlockedCholesky, RejectsIndefiniteAtBlockedSizes) {
  simcore::Rng rng(12);
  auto a = random_spd(48, rng);
  a(40, 40) = -5.0;
  EXPECT_THROW(linalg::cholesky(a), std::runtime_error);
}

TEST(SyrkSubLower, MatchesNaiveRankKUpdate) {
  simcore::Rng rng(13);
  const std::size_t n = 17, k = 9;
  linalg::Matrix a(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) a(i, j) = rng.uniform(-2.0, 2.0);
  }
  auto c = random_spd(n, rng);
  const auto reference = c;
  linalg::syrk_sub_lower(a, c);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += a(i, p) * a(j, p);
      EXPECT_NEAR(c(i, j), reference(i, j) - acc, 1e-12);
    }
  }
}

// -- Rank-1 append ----------------------------------------------------------

TEST(CholeskyAppend, MatchesFullFactorizationOver100SeededMatrices) {
  simcore::Rng rng(21);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 2 + static_cast<std::size_t>(trial % 37);
    const auto a = random_spd(n + 1, rng);

    // Factor of the leading n×n block, extended by A's last row.
    linalg::Matrix lead(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) lead(i, j) = a(i, j);
    }
    linalg::Vector last_row(n + 1);
    for (std::size_t j = 0; j <= n; ++j) last_row[j] = a(n, j);

    const auto extended = linalg::cholesky_append(linalg::cholesky(lead), last_row);
    const auto full = linalg::cholesky(a);
    ASSERT_EQ(extended.rows(), n + 1);
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t j = 0; j <= n; ++j) {
        EXPECT_NEAR(extended(i, j), full(i, j), 1e-9)
            << "trial " << trial << " at " << i << "," << j;
      }
    }
  }
}

TEST(CholeskyAppend, ThrowsOnIndefiniteExtensionAndLeavesFactorUsable) {
  simcore::Rng rng(22);
  const std::size_t n = 8;
  const auto a = random_spd(n, rng);
  const auto l = linalg::cholesky(a);
  // Extend by (almost) a duplicate of row 0 but with a smaller diagonal:
  // x = e_0 - e_n certifies the extension is indefinite.
  linalg::Vector bad(n + 1);
  for (std::size_t j = 0; j < n; ++j) bad[j] = a(0, j);
  bad[n] = a(0, 0) - 1.0;
  EXPECT_THROW(linalg::cholesky_append(l, bad), std::runtime_error);
  // The call is functional: the original factor still extends cleanly.
  linalg::Vector good(n + 1);
  for (std::size_t j = 0; j < n; ++j) good[j] = a(0, j) * 0.5;
  good[n] = a(0, 0) + static_cast<double>(n);
  EXPECT_NO_THROW(linalg::cholesky_append(l, good));
}

// -- Multi-RHS solve --------------------------------------------------------

TEST(MultiRhsSolve, BitwiseMatchesVectorSolvePerColumn) {
  simcore::Rng rng(31);
  const std::size_t n = 23, m = 7;
  const auto l = linalg::cholesky(random_spd(n, rng));
  linalg::Matrix b(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) b(i, j) = rng.uniform(-3.0, 3.0);
  }
  const auto y = linalg::solve_lower(l, b);
  for (std::size_t j = 0; j < m; ++j) {
    linalg::Vector col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = b(i, j);
    const auto ref = linalg::solve_lower(l, col);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(y(i, j), ref[i]) << "column " << j << " row " << i;
    }
  }
}

// -- GP batched prediction --------------------------------------------------

model::Dataset smooth_2d(std::size_t n, simcore::Rng& rng) {
  model::Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(), x1 = rng.uniform();
    d.add({x0, x1}, std::sin(3.0 * x0) + 0.5 * std::cos(5.0 * x1));
  }
  return d;
}

linalg::Matrix random_candidates(std::size_t m, std::size_t dim, simcore::Rng& rng) {
  linalg::Matrix c(m, dim);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < dim; ++j) c(i, j) = rng.uniform();
  }
  return c;
}

TEST(GpPredictBatch, BitwiseMatchesLoopedScalarPredict) {
  simcore::Rng rng(41);
  model::GaussianProcess gp;
  gp.fit(smooth_2d(40, rng));
  const auto candidates = random_candidates(100, 2, rng);
  const auto batch = gp.predict_batch(candidates);
  ASSERT_EQ(batch.size(), 100u);
  for (std::size_t i = 0; i < candidates.rows(); ++i) {
    const auto scalar = gp.predict(candidates.row(i));
    EXPECT_EQ(batch[i].mean, scalar.mean) << "candidate " << i;
    EXPECT_EQ(batch[i].variance, scalar.variance) << "candidate " << i;
  }
}

TEST(GpPredictBatch, PoolShardingIsBitwiseIdenticalToSerial) {
  simcore::Rng rng(42);
  model::GaussianProcess gp;
  gp.fit(smooth_2d(50, rng));
  const auto candidates = random_candidates(257, 2, rng);  // odd: ragged last shard
  const auto serial = gp.predict_batch(candidates);
  simcore::ThreadPool pool(4);
  const auto sharded = gp.predict_batch(candidates, &pool);
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mean, sharded[i].mean) << "candidate " << i;
    EXPECT_EQ(serial[i].variance, sharded[i].variance) << "candidate " << i;
  }
}

// -- Incremental observe ----------------------------------------------------

TEST(GpObserve, IncrementalMatchesFullRebuildBetweenRefreshes) {
  // Same refresh schedule, same frozen hyperparameters: the only difference
  // is rank-1 extension vs refactorization from scratch. Predictions must
  // agree to factorization round-off.
  simcore::Rng rng(51);
  const auto initial = smooth_2d(12, rng);
  model::GaussianProcess::Options inc;
  inc.incremental = true;
  model::GaussianProcess::Options full = inc;
  full.incremental = false;
  model::GaussianProcess gp_inc(inc), gp_full(full);
  gp_inc.fit(initial);
  gp_full.fit(initial);

  const auto probes = random_candidates(16, 2, rng);
  for (int step = 0; step < 30; ++step) {
    const double x0 = rng.uniform(), x1 = rng.uniform();
    const double y = std::sin(3.0 * x0) + 0.5 * std::cos(5.0 * x1);
    gp_inc.observe({x0, x1}, y);
    gp_full.observe({x0, x1}, y);
    ASSERT_EQ(gp_inc.fitted(), gp_full.fitted());
    ASSERT_EQ(gp_inc.refreshes(), gp_full.refreshes());
    EXPECT_NEAR(gp_inc.log_marginal_likelihood(), gp_full.log_marginal_likelihood(), 1e-8);
    const auto pi = gp_inc.predict_batch(probes);
    const auto pf = gp_full.predict_batch(probes);
    for (std::size_t i = 0; i < pi.size(); ++i) {
      EXPECT_NEAR(pi[i].mean, pf[i].mean, 1e-9) << "step " << step << " probe " << i;
      EXPECT_NEAR(pi[i].variance, pf[i].variance, 1e-9) << "step " << step << " probe " << i;
    }
  }
}

TEST(GpObserve, StateAtRefreshBoundaryMatchesFreshFit) {
  // Disable the LML early trigger so refreshes land exactly on multiples of
  // refresh_interval; at such a boundary the streamed model just re-ran the
  // full hyperparameter search and must match a cold fit() on all data.
  simcore::Rng rng(52);
  model::GaussianProcess::Options o;
  o.refresh_interval = 4;
  o.lml_drop_per_point = 1e18;
  model::GaussianProcess streamed(o);

  model::Dataset all;
  simcore::Rng data_rng(53);
  for (int i = 0; i < 8; ++i) {
    const double x0 = data_rng.uniform(), x1 = data_rng.uniform();
    all.add({x0, x1}, std::sin(3.0 * x0) + 0.5 * std::cos(5.0 * x1));
  }
  streamed.fit(all);
  for (int i = 0; i < 8; ++i) {
    const double x0 = data_rng.uniform(), x1 = data_rng.uniform();
    const double y = std::sin(3.0 * x0) + 0.5 * std::cos(5.0 * x1);
    all.add({x0, x1}, y);
    streamed.observe({x0, x1}, y);
  }
  ASSERT_EQ(streamed.size(), 16u);
  ASSERT_EQ(streamed.refreshes(), 3u);  // fit + observations 4 and 8

  model::GaussianProcess cold(o);
  cold.fit(all);
  EXPECT_EQ(streamed.lengthscale(), cold.lengthscale());
  EXPECT_NEAR(streamed.log_marginal_likelihood(), cold.log_marginal_likelihood(), 1e-9);
  const auto probes = random_candidates(8, 2, rng);
  const auto ps = streamed.predict_batch(probes);
  const auto pc = cold.predict_batch(probes);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_NEAR(ps[i].mean, pc[i].mean, 1e-9);
    EXPECT_NEAR(ps[i].variance, pc[i].variance, 1e-9);
  }
}

TEST(GpObserve, MisuseAndDegenerateInputsThrowCleanly) {
  model::GaussianProcess gp;
  EXPECT_THROW(gp.fit(model::Dataset{}), std::invalid_argument);
  gp.observe({0.5, 0.5}, 1.0);
  EXPECT_THROW(gp.observe({0.5}, 1.0), std::invalid_argument);  // dim mismatch
  model::Dataset d;
  d.add({0.1, 0.2}, 1.0);
  d.add({0.3, 0.4}, 2.0);
  gp = model::GaussianProcess();
  gp.fit(d);
  EXPECT_THROW(gp.predict({0.5}), std::invalid_argument);
  EXPECT_THROW(gp.predict_batch(linalg::Matrix(3, 5)), std::logic_error);
  model::Dataset bad;
  bad.add({0.1}, 1.0);
  EXPECT_THROW(bad.add({0.1, 0.2}, 1.0), std::invalid_argument);
}

// -- Additive GP ------------------------------------------------------------

TEST(AdditiveGpObserve, IncrementalMatchesFullRebuildBetweenRefreshes) {
  simcore::Rng rng(61);
  const auto initial = smooth_2d(10, rng);
  model::AdditiveGaussianProcess::Options inc;
  inc.incremental = true;
  model::AdditiveGaussianProcess::Options full = inc;
  full.incremental = false;
  model::AdditiveGaussianProcess agp_inc(inc), agp_full(full);
  agp_inc.fit(initial);
  agp_full.fit(initial);

  const auto probes = random_candidates(8, 2, rng);
  for (int step = 0; step < 20; ++step) {
    const double x0 = rng.uniform(), x1 = rng.uniform();
    const double y = std::sin(3.0 * x0) + 0.5 * std::cos(5.0 * x1);
    agp_inc.observe({x0, x1}, y);
    agp_full.observe({x0, x1}, y);
    ASSERT_EQ(agp_inc.fitted(), agp_full.fitted());
    ASSERT_EQ(agp_inc.refreshes(), agp_full.refreshes());
    const auto pi = agp_inc.predict_batch(probes);
    const auto pf = agp_full.predict_batch(probes);
    for (std::size_t i = 0; i < pi.size(); ++i) {
      EXPECT_NEAR(pi[i].mean, pf[i].mean, 1e-9) << "step " << step << " probe " << i;
      EXPECT_NEAR(pi[i].variance, pf[i].variance, 1e-9) << "step " << step << " probe " << i;
    }
  }
}

TEST(AdditiveGpPredictBatch, BitwiseMatchesLoopedScalarPredict) {
  simcore::Rng rng(62);
  model::AdditiveGaussianProcess agp;
  agp.fit(smooth_2d(25, rng));
  const auto candidates = random_candidates(40, 2, rng);
  const auto batch = agp.predict_batch(candidates);
  for (std::size_t i = 0; i < candidates.rows(); ++i) {
    const auto scalar = agp.predict(candidates.row(i));
    EXPECT_EQ(batch[i].mean, scalar.mean) << "candidate " << i;
    EXPECT_EQ(batch[i].variance, scalar.variance) << "candidate " << i;
  }
}

// -- Regression tree --------------------------------------------------------

TEST(TreePredictBatch, BitwiseMatchesLoopedPredictAtAnyJobCount) {
  simcore::Rng rng(71);
  model::Dataset d = smooth_2d(80, rng);
  model::RegressionTree tree;
  tree.fit(d, simcore::Rng(7));
  const auto candidates = random_candidates(301, 2, rng);
  const auto serial = tree.predict_batch(candidates);
  ASSERT_EQ(serial.size(), 301u);
  for (std::size_t i = 0; i < candidates.rows(); ++i) {
    const auto row = candidates.row(i);
    EXPECT_EQ(serial[i], tree.predict(std::vector<double>(row.begin(), row.end())));
  }
  simcore::ThreadPool pool(3);
  const auto sharded = tree.predict_batch(candidates, &pool);
  EXPECT_EQ(serial, sharded);
}

// -- End-to-end Bayesian optimization ---------------------------------------

std::shared_ptr<const config::ConfigSpace> bo_space() {
  static const auto space = [] {
    std::vector<config::ParamDef> params;
    params.push_back(config::ParamDef::real("a", 0.0, 1.0, 0.1));
    params.push_back(config::ParamDef::real("b", 0.0, 1.0, 0.9));
    params.push_back(config::ParamDef::integer("c", 0, 100, 0));
    return config::ConfigSpace::create(std::move(params));
  }();
  return space;
}

tuning::Objective bo_bowl() {
  return [](const config::Configuration& c) -> tuning::EvalOutcome {
    const double a = c.get("a"), b = c.get("b");
    const double cc = c.get("c") / 100.0;
    return {1.0 + 30.0 * ((a - 0.6) * (a - 0.6) + (b - 0.4) * (b - 0.4) +
                          (cc - 0.5) * (cc - 0.5)),
            false};
  };
}

tuning::TuneResult run_bo(tuning::BayesOptTuner::Params params) {
  tuning::BayesOptTuner tuner(std::move(params));
  tuning::TuneOptions opts;
  opts.budget = 45;
  opts.seed = 17;
  return tuner.tune(bo_space(), bo_bowl(), opts);
}

TEST(BayesOptEndToEnd, IncrementalObserveAndFullRefitPickTheSameIncumbent) {
  tuning::BayesOptTuner::Params inc;
  inc.gp.incremental = true;
  tuning::BayesOptTuner::Params full = inc;
  full.gp.incremental = false;
  const auto r_inc = run_bo(inc);
  const auto r_full = run_bo(full);
  ASSERT_EQ(r_inc.history.size(), r_full.history.size());
  EXPECT_EQ(bo_space()->encode(r_inc.best), bo_space()->encode(r_full.best));
  EXPECT_DOUBLE_EQ(r_inc.best_runtime, r_full.best_runtime);
}

TEST(BayesOptEndToEnd, PredictJobsDoesNotChangeSuggestions) {
  tuning::BayesOptTuner::Params serial;
  serial.predict_jobs = 1;
  tuning::BayesOptTuner::Params parallel = serial;
  parallel.predict_jobs = 4;
  const auto r1 = run_bo(serial);
  const auto r4 = run_bo(parallel);
  ASSERT_EQ(r1.history.size(), r4.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(bo_space()->encode(r1.history[i].config), bo_space()->encode(r4.history[i].config))
        << "suggestion " << i << " diverged";
    EXPECT_EQ(r1.history[i].runtime, r4.history[i].runtime);
  }
  EXPECT_EQ(r1.best_runtime, r4.best_runtime);
}

TEST(RtreeEndToEnd, PredictJobsDoesNotChangeSuggestions) {
  auto run = [](std::size_t jobs) {
    tuning::RegressionTreeTuner::Params p;
    p.predict_jobs = jobs;
    tuning::RegressionTreeTuner tuner(p);
    tuning::TuneOptions opts;
    opts.budget = 40;
    opts.seed = 23;
    return tuner.tune(bo_space(), bo_bowl(), opts);
  };
  const auto r1 = run(1);
  const auto r4 = run(4);
  ASSERT_EQ(r1.history.size(), r4.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(bo_space()->encode(r1.history[i].config), bo_space()->encode(r4.history[i].config))
        << "suggestion " << i << " diverged";
  }
  EXPECT_EQ(r1.best_runtime, r4.best_runtime);
}

}  // namespace
}  // namespace stune
