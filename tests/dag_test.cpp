#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "dag/plan.hpp"
#include "dag/rdd.hpp"
#include "simcore/units.hpp"

namespace stune::dag {
namespace {

using simcore::gib;

LogicalPlan simple_mapreduce() {
  LogicalPlan p("mr");
  const int src = p.source("in", 1.0, 1.0, 100.0);
  const int mapped = p.narrow(TransformKind::kMap, "mapped", src, 0.5, 2.0);
  p.wide(TransformKind::kReduceByKey, "reduced", {mapped}, 0.1, 1.0, 0.2, 0.3);
  p.action(ActionKind::kSave);
  return p;
}

// -- LogicalPlan validation -------------------------------------------------------

TEST(LogicalPlan, RejectsForwardParentReferences) {
  LogicalPlan p("bad");
  RddNode n;
  n.name = "m";
  n.kind = TransformKind::kMap;
  n.parents = {5};
  EXPECT_THROW(p.add(std::move(n)), std::invalid_argument);
}

TEST(LogicalPlan, SourceCannotHaveParents) {
  LogicalPlan p("bad");
  p.source("a");
  RddNode n;
  n.name = "b";
  n.kind = TransformKind::kSource;
  n.parents = {0};
  EXPECT_THROW(p.add(std::move(n)), std::invalid_argument);
}

TEST(LogicalPlan, JoinNeedsTwoParents) {
  LogicalPlan p("bad");
  const int a = p.source("a");
  RddNode n;
  n.name = "j";
  n.kind = TransformKind::kJoin;
  n.parents = {a};
  EXPECT_THROW(p.add(std::move(n)), std::invalid_argument);
}

TEST(LogicalPlan, NarrowBuilderRejectsWideKinds) {
  LogicalPlan p("bad");
  const int a = p.source("a");
  EXPECT_THROW(p.narrow(TransformKind::kJoin, "x", a, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.wide(TransformKind::kMap, "y", {a}, 1.0, 1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(LogicalPlan, ChildrenIndex) {
  const auto p = simple_mapreduce();
  const auto ch = p.children();
  EXPECT_EQ(ch[0], std::vector<int>{1});
  EXPECT_EQ(ch[1], std::vector<int>{2});
  EXPECT_TRUE(ch[2].empty());
}

TEST(IsWide, ClassifiesKinds) {
  EXPECT_TRUE(is_wide(TransformKind::kReduceByKey));
  EXPECT_TRUE(is_wide(TransformKind::kJoin));
  EXPECT_TRUE(is_wide(TransformKind::kSortByKey));
  EXPECT_FALSE(is_wide(TransformKind::kMap));
  EXPECT_FALSE(is_wide(TransformKind::kBroadcastJoin));
  EXPECT_FALSE(is_wide(TransformKind::kSource));
}

// -- physical planning ----------------------------------------------------------------

TEST(PhysicalPlan, MapReduceSplitsIntoTwoStages) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  ASSERT_EQ(phys.stages.size(), 2u);
  const auto& map_stage = phys.stages[0];
  const auto& reduce_stage = phys.stages[1];
  EXPECT_TRUE(map_stage.reads_source());
  EXPECT_FALSE(map_stage.reads_shuffle());
  EXPECT_GT(map_stage.shuffle_write_bytes, 0u);
  EXPECT_TRUE(reduce_stage.reads_shuffle());
  EXPECT_EQ(reduce_stage.parent_stages, std::vector<int>{0});
  EXPECT_GT(reduce_stage.result_bytes, 0u);
}

TEST(PhysicalPlan, BytesPropagateThroughSelectivities) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  // Source reads the full input.
  EXPECT_EQ(phys.stages[0].source_read_bytes, gib(8));
  // Shuffle write = input * map selectivity (0.5) * map_side_factor (0.2).
  const double expected = static_cast<double>(gib(8)) * 0.5 * 0.2;
  EXPECT_NEAR(static_cast<double>(phys.stages[0].shuffle_write_bytes), expected, expected * 0.01);
  // The reduce stage reads what was written.
  EXPECT_EQ(phys.stages[1].shuffle_read_bytes(), phys.stages[0].shuffle_write_bytes);
}

TEST(PhysicalPlan, ShuffleVolumeScalesLinearlyWithInput) {
  const auto small = build_physical_plan(simple_mapreduce(), gib(4));
  const auto large = build_physical_plan(simple_mapreduce(), gib(16));
  EXPECT_NEAR(static_cast<double>(large.total_shuffle_bytes()),
              4.0 * static_cast<double>(small.total_shuffle_bytes()),
              0.01 * static_cast<double>(large.total_shuffle_bytes()));
}

TEST(PhysicalPlan, CachedRddConsumedTwiceCreatesResendStages) {
  LogicalPlan p("iter");
  const int src = p.source("in");
  const int base = p.wide(TransformKind::kGroupByKey, "base", {src}, 1.0, 1.0, 1.0, 1.0);
  p.cache(base);
  // Two joins against the cached RDD (two iterations).
  const int r0 = p.narrow(TransformKind::kMap, "r0", base, 0.1, 1.0);
  const int j1 = p.wide(TransformKind::kJoin, "j1", {base, r0}, 0.5, 1.0, 1.0, 0.5);
  p.wide(TransformKind::kJoin, "j2", {base, j1}, 0.5, 1.0, 1.0, 0.5);
  p.action(ActionKind::kSave);

  const auto phys = build_physical_plan(p, gib(4));
  int resend_stages = 0;
  int cached_reads = 0;
  for (const auto& s : phys.stages) {
    if (s.label.find("resend") != std::string::npos) {
      ++resend_stages;
      EXPECT_TRUE(s.materialized_parent_cached);
      EXPECT_GT(s.shuffle_write_bytes, 0u);
    }
    if (s.materialized_read_bytes > 0) ++cached_reads;
  }
  // base feeds j1 and j2 via synthesized resend stages; r0's stage reads
  // the cache directly (3 cached reads total).
  EXPECT_EQ(resend_stages, 2);
  EXPECT_EQ(cached_reads, 3);
  EXPECT_EQ(phys.total_cache_bytes(), gib(4));
}

TEST(PhysicalPlan, UncachedReusedRddMarksRecompute) {
  LogicalPlan p("recompute");
  const int src = p.source("in");
  const int shared = p.narrow(TransformKind::kMap, "shared", src, 1.0, 1.0);
  // Two consumers of an uncached RDD.
  const int a = p.wide(TransformKind::kReduceByKey, "a", {shared}, 0.1, 1.0, 0.5, 0.2);
  p.wide(TransformKind::kJoin, "b", {shared, a}, 0.5, 1.0, 1.0, 0.5);
  p.action(ActionKind::kSave);
  const auto phys = build_physical_plan(p, gib(2));
  bool found_uncached_read = false;
  for (const auto& s : phys.stages) {
    if (s.materialized_read_bytes > 0) {
      EXPECT_FALSE(s.materialized_parent_cached);
      EXPECT_GT(s.recompute_cpu_per_gib, 0.0);
      found_uncached_read = true;
    }
  }
  EXPECT_TRUE(found_uncached_read);
}

TEST(PhysicalPlan, BroadcastJoinAvoidsShuffleOfBigSide) {
  LogicalPlan p("bjoin");
  const int big = p.source("big", 0.95);
  const int small = p.source("small", 0.05);
  RddNode j;
  j.name = "joined";
  j.kind = TransformKind::kBroadcastJoin;
  j.parents = {big, small};
  j.selectivity = 1.0;
  p.add(std::move(j));
  p.action(ActionKind::kSave);

  const auto phys = build_physical_plan(p, gib(10));
  // No shuffle at all; the big-side stage carries the broadcast.
  EXPECT_EQ(phys.total_shuffle_bytes(), 0u);
  bool found_broadcast = false;
  for (const auto& s : phys.stages) {
    if (s.broadcast_bytes > 0) {
      found_broadcast = true;
      EXPECT_NEAR(static_cast<double>(s.broadcast_bytes),
                  static_cast<double>(gib(10)) * 0.05,
                  static_cast<double>(gib(10)) * 0.001);
      // Depends on the small side's stage without a shuffle edge.
      EXPECT_FALSE(s.parent_stages.empty());
    }
  }
  EXPECT_TRUE(found_broadcast);
}

TEST(PhysicalPlan, JoinShufflesBothParents) {
  LogicalPlan p("sjoin");
  const int a = p.source("a", 0.5);
  const int b = p.source("b", 0.5);
  p.wide(TransformKind::kJoin, "j", {a, b}, 1.0, 1.0, 1.0, 0.5);
  p.action(ActionKind::kSave);
  const auto phys = build_physical_plan(p, gib(4));
  const auto& join_stage = phys.stages.back();
  EXPECT_EQ(join_stage.shuffle_inputs.size(), 2u);
  EXPECT_EQ(join_stage.parent_stages.size(), 2u);
}

TEST(PhysicalPlan, ActionSizesResultBytes) {
  LogicalPlan p("act");
  p.source("in");
  p.action(ActionKind::kCollect, 0.01);
  const auto phys = build_physical_plan(p, gib(1));
  EXPECT_EQ(phys.action, ActionKind::kCollect);
  EXPECT_NEAR(static_cast<double>(phys.stages.back().result_bytes),
              static_cast<double>(gib(1)) * 0.01, 1e4);
}

TEST(PhysicalPlan, RejectsEmptyPlanAndZeroInput) {
  LogicalPlan empty("empty");
  EXPECT_THROW(build_physical_plan(empty, gib(1)), std::invalid_argument);
  EXPECT_THROW(build_physical_plan(simple_mapreduce(), 0), std::invalid_argument);
}

TEST(PhysicalPlan, DescribeListsAllStages) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  const auto text = phys.describe();
  for (const auto& s : phys.stages) {
    EXPECT_NE(text.find(s.label), std::string::npos) << s.label;
  }
}

TEST(PhysicalPlan, StagesAreTopologicallyOrdered) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  for (const auto& s : phys.stages) {
    for (const int parent : s.parent_stages) EXPECT_LT(parent, s.id);
  }
}

TEST(PhysicalPlan, CpuCostAccumulatesAlongPipeline) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  // Stage 0: source (1 s/GiB over 8 GiB) + map (2 s/GiB over 8 GiB) plus the
  // reduce's map-side combine share (40% of 1 s/GiB over the 4 GiB mapped
  // output) = 25.6 s.
  EXPECT_NEAR(phys.stages[0].cpu_ref_seconds, 8.0 * 1.0 + 8.0 * 2.0 + 0.4 * 4.0 * 1.0, 0.5);
  // Stage 1: the reduce side runs over the shuffled volume only.
  EXPECT_LT(phys.stages[1].cpu_ref_seconds, 1.0);
}

// -- PlanTopology -----------------------------------------------------------

TEST(PlanTopology, MatchesParentListsOnRealPlans) {
  const auto phys = build_physical_plan(simple_mapreduce(), gib(8));
  const auto topo = build_topology(phys);
  ASSERT_EQ(topo.stage_count(), phys.stages.size());
  // Indegrees mirror the (forward) parent lists exactly.
  for (const auto& s : phys.stages) {
    int forward_parents = 0;
    for (const int p : s.parent_stages) forward_parents += (p < s.id) ? 1 : 0;
    EXPECT_EQ(topo.indegree[static_cast<std::size_t>(s.id)], forward_parents) << s.label;
  }
  // Every CSR child edge corresponds to a declared parent edge, and the
  // totals agree.
  int edges = 0;
  for (std::size_t parent = 0; parent < topo.stage_count(); ++parent) {
    for (int k = topo.child_offsets[parent]; k < topo.child_offsets[parent + 1]; ++k) {
      const int child = topo.children[static_cast<std::size_t>(k)];
      const auto& ps = phys.stages[static_cast<std::size_t>(child)].parent_stages;
      EXPECT_NE(std::find(ps.begin(), ps.end(), static_cast<int>(parent)), ps.end());
      ++edges;
    }
  }
  EXPECT_EQ(edges, topo.edge_count);
  EXPECT_EQ(topo.fingerprint, topology_fingerprint(phys));
}

TEST(PlanTopology, ToleratesBroadcastJoinBackEdges) {
  // The broadcast-join planner creates the dimension-table stage after its
  // consumer, so the consumer's parent list can point at an id >= its own.
  // Those are not scheduling edges and must be skipped, not rejected.
  PhysicalPlan plan;
  plan.stages.resize(2);
  plan.stages[0].id = 0;
  plan.stages[0].parent_stages = {1};  // back edge
  plan.stages[1].id = 1;
  const auto topo = build_topology(plan);
  EXPECT_EQ(topo.indegree[0], 0);
  EXPECT_EQ(topo.indegree[1], 0);
  EXPECT_EQ(topo.edge_count, 0);
  EXPECT_TRUE(topo.children.empty());
}

TEST(PlanTopology, RejectsMalformedPlans) {
  PhysicalPlan shifted;
  shifted.stages.resize(1);
  shifted.stages[0].id = 3;  // id != position
  EXPECT_THROW(build_topology(shifted), std::invalid_argument);

  PhysicalPlan dangling;
  dangling.stages.resize(1);
  dangling.stages[0].id = 0;
  dangling.stages[0].parent_stages = {-2};
  EXPECT_THROW(build_topology(dangling), std::invalid_argument);
}

TEST(PlanTopology, FingerprintSeparatesEdgeChangesAndIgnoresVolumes) {
  const auto base = build_physical_plan(simple_mapreduce(), gib(8));
  EXPECT_EQ(topology_fingerprint(base), topology_fingerprint(base));

  auto rewired = base;
  rewired.stages[1].parent_stages.clear();
  EXPECT_NE(topology_fingerprint(rewired), topology_fingerprint(base));

  // Data volumes don't change the schedule shape, so the topology
  // fingerprint (unlike PhysicalPlan::fingerprint) is stable across them
  // and the cached topology survives input-size sweeps.
  auto heavier = base;
  heavier.stages[0].shuffle_write_bytes += 12345;
  EXPECT_EQ(topology_fingerprint(heavier), topology_fingerprint(base));
  EXPECT_NE(heavier.fingerprint(), base.fingerprint());
}

}  // namespace
}  // namespace stune::dag
