// The execution cache is only sound because the engine is a pure function
// of (context, plan, config, seed): these tests pin the replay guarantee
// (bitwise-identical reports on a hit), the key's sensitivity to every
// component, and thread safety under concurrent lookups.
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "config/spark_space.hpp"
#include "workload/eval_cache.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::workload {
namespace {

disc::SparkSimulator testbed_simulator(std::uint64_t seed = 42,
                                       const std::string& instance = "h1.4xlarge") {
  disc::EngineOptions opts;
  opts.seed = seed;
  return disc::SparkSimulator(cluster::Cluster::from_spec({instance, 4}), opts);
}

void expect_identical(const disc::ExecutionReport& a, const disc::ExecutionReport& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.executors, b.executors);
  EXPECT_EQ(a.total_slots, b.total_slots);
  EXPECT_EQ(a.execution_memory_per_task, b.execution_memory_per_task);
  EXPECT_EQ(a.storage_memory_total, b.storage_memory_total);
  EXPECT_EQ(a.cache_hit_fraction, b.cache_hit_fraction);
  EXPECT_EQ(a.total_cpu, b.total_cpu);
  EXPECT_EQ(a.total_gc, b.total_gc);
  EXPECT_EQ(a.total_disk, b.total_disk);
  EXPECT_EQ(a.total_net, b.total_net);
  EXPECT_EQ(a.total_spill, b.total_spill);
  EXPECT_EQ(a.total_overhead, b.total_overhead);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].stage_id, b.stages[i].stage_id);
    EXPECT_EQ(a.stages[i].tasks, b.stages[i].tasks);
    EXPECT_EQ(a.stages[i].start, b.stages[i].start);
    EXPECT_EQ(a.stages[i].duration, b.stages[i].duration);
    EXPECT_EQ(a.stages[i].cpu_seconds, b.stages[i].cpu_seconds);
    EXPECT_EQ(a.stages[i].spilled_bytes, b.stages[i].spilled_bytes);
    EXPECT_EQ(a.stages[i].failed_tasks, b.stages[i].failed_tasks);
  }
}

TEST(EvalCache, SecondExecutionIsAHitAndReplaysBitwise) {
  EvalCache cache;
  const auto w = make_workload("sort");
  const auto sim = testbed_simulator();
  const auto conf = config::spark_space()->default_config();
  const simcore::Bytes input = 8ULL << 30;

  const auto first = execute(*w, input, sim, conf, cache);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);

  const auto second = execute(*w, input, sim, conf, cache);
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  expect_identical(first, second);

  // And the cached overload agrees with the uncached one.
  expect_identical(first, execute(*w, input, sim, conf));
}

TEST(EvalCache, KeyIsSensitiveToEveryComponent) {
  EvalCache cache;
  const auto w = make_workload("sort");
  const auto space = config::spark_space();
  const auto conf = space->default_config();
  const simcore::Bytes input = 8ULL << 30;

  execute(*w, input, testbed_simulator(), conf, cache);  // seed the cache

  // Different engine seed -> different key.
  execute(*w, input, testbed_simulator(43), conf, cache);
  // Different cluster (context fingerprint) -> different key.
  execute(*w, input, testbed_simulator(42, "m5.2xlarge"), conf, cache);
  // Different input size (plan fingerprint) -> different key.
  execute(*w, input * 2, testbed_simulator(), conf, cache);
  // Different configuration -> different key.
  simcore::Rng rng(1);
  execute(*w, input, testbed_simulator(), space->sample(rng), cache);
  // Different workload (plan fingerprint) -> different key.
  execute(*make_workload("pagerank"), input, testbed_simulator(), conf, cache);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_EQ(stats.entries, 6u);
}

TEST(EvalCache, ClearResetsEntriesAndCounters) {
  EvalCache cache;
  const auto w = make_workload("sort");
  const auto sim = testbed_simulator();
  const auto conf = config::spark_space()->default_config();
  execute(*w, 8ULL << 30, sim, conf, cache);
  execute(*w, 8ULL << 30, sim, conf, cache);
  cache.clear();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hit_rate(), 0.0);
}

TEST(EvalCache, ConcurrentLookupsAccountEveryRequest) {
  EvalCache cache;
  const auto w = make_workload("sort");
  const auto space = config::spark_space();
  const simcore::Bytes input = 4ULL << 30;

  // A small pool of distinct configurations hammered from many threads.
  std::vector<config::Configuration> confs;
  simcore::Rng rng(9);
  for (int i = 0; i < 4; ++i) confs.push_back(space->sample(rng));

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto sim = testbed_simulator();
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto& conf = confs[static_cast<std::size_t>((t + i) % 4)];
        const auto report = execute(*w, input, sim, conf, cache);
        (void)report;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kItersPerThread);
  // Every distinct key was computed at least once; racing threads may both
  // miss the same key before either inserts, so misses can exceed 4 but
  // never the request count.
  EXPECT_GE(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

// With every key pre-warmed, the hit count under concurrency is exact, not
// merely bounded: N threads x M lookups of cached keys must report exactly
// N*M hits and zero new misses. Concurrent stats() readers ride along to
// check the counters are safe to sample mid-flight.
TEST(EvalCache, WarmedCacheCountsHitsExactlyUnderConcurrency) {
  EvalCache cache;
  const auto w = make_workload("sort");
  const auto space = config::spark_space();
  const simcore::Bytes input = 4ULL << 30;

  std::vector<config::Configuration> confs;
  simcore::Rng rng(9);
  for (int i = 0; i < 4; ++i) confs.push_back(space->sample(rng));

  // Warm serially: one miss per key, no racing double-computes possible.
  {
    const auto sim = testbed_simulator();
    for (const auto& conf : confs) (void)execute(*w, input, sim, conf, cache);
  }
  const auto warmed = cache.stats();
  ASSERT_EQ(warmed.misses, 4u);
  ASSERT_EQ(warmed.hits, 0u);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 16;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto sim = testbed_simulator();
      for (int i = 0; i < kItersPerThread; ++i) {
        const auto& conf = confs[static_cast<std::size_t>((t + i) % 4)];
        (void)execute(*w, input, sim, conf, cache);
      }
    });
  }
  // A reader sampling stats() while the lookups run: totals only grow and
  // never exceed the request count.
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      const auto s = cache.stats();
      EXPECT_LE(s.hits, static_cast<std::uint64_t>(kThreads * kItersPerThread));
      EXPECT_EQ(s.misses, 4u);
    }
  });
  for (auto& thread : threads) thread.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads * kItersPerThread));
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 4u);
}

TEST(EvalKey, FullVectorEqualityNotJustHash) {
  EvalKey a{1, 2, 3, {0.5, 1.0}};
  EvalKey b{1, 2, 3, {0.5, 1.0}};
  EvalKey c{1, 2, 3, {0.5, 1.0000000001}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace stune::workload
