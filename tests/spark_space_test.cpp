#include <gtest/gtest.h>

#include "config/spark_space.hpp"

namespace stune::config {
namespace {

TEST(SparkSpace, IsASingleton) {
  EXPECT_EQ(spark_space().get(), spark_space().get());
}

TEST(SparkSpace, HasTheDocumentedDimensionality) {
  // 29 knobs, matching the DESIGN.md inventory (the surveyed tuners handle
  // 16-41 parameters; the paper quotes ~200 total in Spark).
  EXPECT_EQ(spark_space()->size(), 29u);
}

TEST(SparkSpace, DefaultsMatchSparkDocumentation) {
  const auto c = spark_space()->default_config();
  EXPECT_EQ(c.get_int(spark::kExecutorInstances), 2);
  EXPECT_EQ(c.get_int(spark::kExecutorCores), 1);
  EXPECT_DOUBLE_EQ(c.get(spark::kExecutorMemoryGiB), 1.0);
  EXPECT_DOUBLE_EQ(c.get(spark::kMemoryFraction), 0.6);
  EXPECT_DOUBLE_EQ(c.get(spark::kMemoryStorageFraction), 0.5);
  EXPECT_EQ(c.get_int(spark::kSqlShufflePartitions), 200);
  EXPECT_TRUE(c.get_bool(spark::kShuffleCompress));
  EXPECT_FALSE(c.get_bool(spark::kRddCompress));
  EXPECT_EQ(c.get_label(spark::kIoCompressionCodec), "lz4");
  EXPECT_EQ(c.get_label(spark::kSerializer), "java");
  EXPECT_DOUBLE_EQ(c.get(spark::kShuffleFileBufferKiB), 32.0);
  EXPECT_DOUBLE_EQ(c.get(spark::kReducerMaxSizeInFlightMiB), 48.0);
  EXPECT_FALSE(c.get_bool(spark::kSpeculation));
  EXPECT_DOUBLE_EQ(c.get(spark::kLocalityWait), 3.0);
  EXPECT_EQ(c.get_int(spark::kTaskMaxFailures), 4);
}

TEST(SparkSpace, EveryParamHasDescription) {
  for (const auto& p : spark_space()->params()) {
    EXPECT_FALSE(p.description.empty()) << p.name;
  }
}

TEST(SparkConf, ParsesDefaultsConsistently) {
  const SparkConf conf(spark_space()->default_config());
  EXPECT_EQ(conf.executor_instances, 2);
  EXPECT_EQ(conf.executor_cores, 1);
  EXPECT_EQ(conf.codec, Codec::kLz4);
  EXPECT_EQ(conf.serializer, Serializer::kJava);
  EXPECT_TRUE(conf.shuffle_compress);
  EXPECT_FALSE(conf.dynamic_allocation);
  EXPECT_EQ(conf.task_cpus, 1);
}

TEST(SparkConf, ReflectsOverrides) {
  auto c = spark_space()->default_config();
  c.set(spark::kSerializer, 1.0);
  c.set(spark::kIoCompressionCodec, 2.0);
  c.set(spark::kExecutorMemoryGiB, 16.0);
  const SparkConf conf(c);
  EXPECT_EQ(conf.serializer, Serializer::kKryo);
  EXPECT_EQ(conf.codec, Codec::kZstd);
  EXPECT_DOUBLE_EQ(conf.executor_memory_gib, 16.0);
}

TEST(CodecProfile, ZstdIsDensestLz4IsCheapest) {
  const auto lz4 = codec_profile(Codec::kLz4, 3);
  const auto snappy = codec_profile(Codec::kSnappy, 3);
  const auto zstd = codec_profile(Codec::kZstd, 3);
  EXPECT_LT(zstd.ratio, lz4.ratio);
  EXPECT_LT(zstd.ratio, snappy.ratio);
  EXPECT_LT(lz4.compress_cpb, zstd.compress_cpb);
  EXPECT_LT(lz4.decompress_cpb, zstd.decompress_cpb);
}

TEST(CodecProfile, ZstdLevelTradesCpuForRatio) {
  const auto low = codec_profile(Codec::kZstd, 1);
  const auto high = codec_profile(Codec::kZstd, 9);
  EXPECT_LT(high.ratio, low.ratio);
  EXPECT_GT(high.compress_cpb, low.compress_cpb);
}

TEST(CodecProfile, RatiosAreCompressive) {
  for (const auto codec : {Codec::kLz4, Codec::kSnappy, Codec::kZstd}) {
    const auto p = codec_profile(codec, 5);
    EXPECT_GT(p.ratio, 0.2);
    EXPECT_LT(p.ratio, 1.0);
  }
}

TEST(SparkSpace, FeasibilityRangesAreWide) {
  // The search space must include both crash-prone and viable settings —
  // tuners are expected to meet failures (paper: "crashes when choosing
  // incorrectly").
  const auto space = spark_space();
  const auto& mem = space->param(space->require_index(spark::kExecutorMemoryGiB));
  EXPECT_LE(mem.min_value, 1.0);
  EXPECT_GE(mem.max_value, 48.0);
  const auto& par = space->param(space->require_index(spark::kDefaultParallelism));
  EXPECT_GE(par.max_value / par.min_value, 100.0);
}

}  // namespace
}  // namespace stune::config
