#include <gtest/gtest.h>

#include <string>

#include "config/spark_space.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::workload {
namespace {

namespace k = config::spark;
using simcore::gib;

TEST(Registry, AllNamesConstruct) {
  for (const auto& name : workload_names()) {
    const auto w = make_workload(name);
    ASSERT_NE(w, nullptr);
    EXPECT_EQ(w->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("matrixfactorization"), std::invalid_argument);
}

TEST(Registry, EvolvingSizesGrow) {
  const auto sizes = evolving_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_LT(sizes[0], sizes[1]);
  EXPECT_LT(sizes[1], sizes[2]);
}

// Every workload must produce a plannable, runnable lineage at every size.
class WorkloadPlanning : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadPlanning, PlansAtAllEvolvingSizes) {
  const auto w = make_workload(GetParam());
  for (const auto size : evolving_sizes()) {
    const auto plan = w->plan(size);
    EXPECT_FALSE(plan.stages.empty());
    EXPECT_EQ(plan.input_bytes, size);
    // First stage reads the source; exactly one stage carries the action
    // result.
    int result_stages = 0;
    for (const auto& s : plan.stages) result_stages += (s.result_bytes > 0) ? 1 : 0;
    EXPECT_EQ(result_stages, 1);
  }
}

TEST_P(WorkloadPlanning, ExecutesSuccessfullyOnAReasonableConfig) {
  const auto w = make_workload(GetParam());
  auto conf = config::spark_space()->default_config();
  conf.set(k::kExecutorInstances, 16);
  conf.set(k::kExecutorCores, 4);
  conf.set(k::kExecutorMemoryGiB, 13.0);
  conf.set(k::kDefaultParallelism, 256);
  conf.set(k::kSqlShufflePartitions, 256);
  conf.set(k::kDriverMemoryGiB, 8.0);
  const disc::SparkSimulator sim(cluster::Cluster::from_spec({"h1.4xlarge", 4}));
  const auto r = execute(*w, gib(8), sim, conf);
  EXPECT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.runtime, 1.0);
  EXPECT_LT(r.runtime, 3600.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadPlanning,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(WordCount, HasTinyShuffleAndNoCache) {
  const auto plan = WordCount().plan(gib(8));
  EXPECT_EQ(plan.total_cache_bytes(), 0u);
  EXPECT_LT(static_cast<double>(plan.total_shuffle_bytes()),
            0.1 * static_cast<double>(plan.input_bytes));
}

TEST(Sort, ShufflesEverything) {
  const auto plan = Sort().plan(gib(8));
  EXPECT_GE(static_cast<double>(plan.total_shuffle_bytes()),
            0.9 * static_cast<double>(plan.input_bytes));
}

TEST(PageRank, IsIterativeCacheAndShuffleHeavy) {
  const PageRank w(5);
  const auto plan = w.plan(gib(8));
  // 5 iterations x (resend + join + reduce) + preamble stages.
  EXPECT_GE(plan.stages.size(), 3u * 5u);
  EXPECT_GT(plan.total_cache_bytes(), 0u);
  // Each iteration re-shuffles the adjacency lists: aggregate shuffle far
  // exceeds the input.
  EXPECT_GT(plan.total_shuffle_bytes(), plan.input_bytes);
}

TEST(PageRank, StageCountScalesWithIterations) {
  EXPECT_GT(PageRank(8).plan(gib(1)).stages.size(), PageRank(3).plan(gib(1)).stages.size());
}

TEST(KMeans, CachesThePoints) {
  const auto plan = KMeans(4).plan(gib(8));
  EXPECT_NEAR(static_cast<double>(plan.total_cache_bytes()),
              static_cast<double>(plan.input_bytes), 0.05 * static_cast<double>(plan.input_bytes));
}

TEST(SqlJoin, BroadcastThresholdSwitchesJoinStrategy) {
  const SqlJoin w;
  auto base = config::spark_space()->default_config();

  base.set(k::kAutoBroadcastJoinThresholdMiB, 0.0);  // broadcast disabled
  const config::SparkConf shuffle_conf(base);
  const auto shuffle_plan = w.plan(EvolvingSizes::kDS1, &shuffle_conf);

  base.set(k::kAutoBroadcastJoinThresholdMiB, 256.0);
  const config::SparkConf bcast_conf(base);
  const auto bcast_plan = w.plan(EvolvingSizes::kDS1, &bcast_conf);

  EXPECT_GT(shuffle_plan.total_shuffle_bytes(), bcast_plan.total_shuffle_bytes());
  bool has_broadcast = false;
  for (const auto& s : bcast_plan.stages) has_broadcast |= s.broadcast_bytes > 0;
  EXPECT_TRUE(has_broadcast);
}

TEST(SqlJoin, UsesSqlShufflePartitions) {
  const auto plan = SqlJoin().plan(gib(4));
  EXPECT_TRUE(plan.is_sql);
}

TEST(Scan, IsASingleStageNoShuffleJob) {
  const auto plan = Scan().plan(gib(8));
  EXPECT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.total_shuffle_bytes(), 0u);
  EXPECT_EQ(plan.total_cache_bytes(), 0u);
  // Output is tiny: a grep keeps ~1% of its input.
  EXPECT_LT(static_cast<double>(plan.stages[0].result_bytes),
            0.02 * static_cast<double>(plan.input_bytes));
}

TEST(SqlAggregation, UsesSqlPartitionsAndCombinesHard) {
  const auto plan = SqlAggregation().plan(gib(8));
  EXPECT_TRUE(plan.is_sql);
  EXPECT_LT(static_cast<double>(plan.total_shuffle_bytes()),
            0.12 * static_cast<double>(plan.input_bytes));
  EXPECT_EQ(plan.action, dag::ActionKind::kCollect);
}

TEST(Workloads, ResourceProfilesDiffer) {
  // The characterization premise: wordcount is CPU/scan bound, sort is
  // shuffle bound. Their plans must reflect that.
  const auto wc = WordCount().plan(gib(8));
  const auto so = Sort().plan(gib(8));
  const double wc_shuffle_ratio =
      static_cast<double>(wc.total_shuffle_bytes()) / static_cast<double>(wc.input_bytes);
  const double so_shuffle_ratio =
      static_cast<double>(so.total_shuffle_bytes()) / static_cast<double>(so.input_bytes);
  EXPECT_LT(wc_shuffle_ratio, so_shuffle_ratio / 5.0);
}

}  // namespace
}  // namespace stune::workload
