#include <gtest/gtest.h>

#include <vector>

#include "model/kmedoids.hpp"
#include "simcore/rng.hpp"

namespace stune::model {
namespace {

std::vector<std::vector<double>> two_blobs(simcore::Rng& rng) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({rng.normal(0.0, 0.1), rng.normal(0.0, 0.1)});
  for (int i = 0; i < 20; ++i) pts.push_back({rng.normal(5.0, 0.1), rng.normal(5.0, 0.1)});
  return pts;
}

TEST(KMedoids, SeparatesWellSeparatedBlobs) {
  simcore::Rng rng(1);
  const auto pts = two_blobs(rng);
  const auto r = kmedoids(pts, 2, simcore::Rng(2));
  // All of the first 20 share a cluster; all of the last 20 share the other.
  for (int i = 1; i < 20; ++i) EXPECT_EQ(r.assignment[i], r.assignment[0]);
  for (int i = 21; i < 40; ++i) EXPECT_EQ(r.assignment[i], r.assignment[20]);
  EXPECT_NE(r.assignment[0], r.assignment[20]);
}

TEST(KMedoids, MedoidsAreInputPoints) {
  simcore::Rng rng(3);
  const auto pts = two_blobs(rng);
  const auto r = kmedoids(pts, 2, simcore::Rng(4));
  for (const auto m : r.medoids) EXPECT_LT(m, pts.size());
}

TEST(KMedoids, CostDecreasesWithMoreClusters) {
  simcore::Rng rng(5);
  const auto pts = two_blobs(rng);
  const auto r1 = kmedoids(pts, 1, simcore::Rng(6));
  const auto r4 = kmedoids(pts, 4, simcore::Rng(6));
  EXPECT_LT(r4.total_cost, r1.total_cost);
}

TEST(KMedoids, DeterministicGivenRng) {
  simcore::Rng rng(7);
  const auto pts = two_blobs(rng);
  const auto a = kmedoids(pts, 2, simcore::Rng(8));
  const auto b = kmedoids(pts, 2, simcore::Rng(8));
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMedoids, ValidatesK) {
  const std::vector<std::vector<double>> pts = {{0.0}, {1.0}};
  EXPECT_THROW(kmedoids(pts, 0, simcore::Rng(1)), std::invalid_argument);
  EXPECT_THROW(kmedoids(pts, 3, simcore::Rng(1)), std::invalid_argument);
}

TEST(Distances, EuclideanAndCosine) {
  EXPECT_DOUBLE_EQ(euclidean({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_NEAR(cosine_similarity({1.0, 0.0}, {1.0, 0.0}), 1.0, 1e-12);
  EXPECT_NEAR(cosine_similarity({1.0, 0.0}, {0.0, 1.0}), 0.0, 1e-12);
  EXPECT_EQ(cosine_similarity({0.0, 0.0}, {1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace stune::model
