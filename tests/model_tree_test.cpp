#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "model/tree.hpp"
#include "simcore/rng.hpp"
#include "simcore/stats.hpp"

namespace stune::model {
namespace {

Dataset step_function_data(std::size_t n, simcore::Rng& rng) {
  // y = 10 if x0 > 0.5 else 2; x1 is pure noise.
  Dataset d;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform();
    const double x1 = rng.uniform();
    d.add({x0, x1}, x0 > 0.5 ? 10.0 : 2.0);
  }
  return d;
}

TEST(RegressionTree, LearnsAStepFunction) {
  simcore::Rng rng(1);
  const auto d = step_function_data(200, rng);
  RegressionTree tree;
  tree.fit(d);
  EXPECT_NEAR(tree.predict({0.9, 0.5}), 10.0, 0.5);
  EXPECT_NEAR(tree.predict({0.1, 0.5}), 2.0, 0.5);
}

TEST(RegressionTree, SplitsOnTheInformativeFeature) {
  simcore::Rng rng(2);
  const auto d = step_function_data(300, rng);
  RegressionTree tree;
  tree.fit(d);
  const auto imp = tree.feature_importance();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], imp[1] * 10.0);
}

TEST(RegressionTree, RespectsMaxDepth) {
  simcore::Rng rng(3);
  Dataset d;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform();
    d.add({x}, std::sin(12.0 * x));
  }
  RegressionTree shallow(TreeOptions{.max_depth = 2});
  shallow.fit(d);
  EXPECT_LE(shallow.depth(), 2u);
  RegressionTree deep(TreeOptions{.max_depth = 9});
  deep.fit(d);
  EXPECT_GT(deep.node_count(), shallow.node_count());
}

TEST(RegressionTree, MinSamplesLeafBoundsLeafSize) {
  simcore::Rng rng(4);
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform();
    d.add({x}, x);
  }
  RegressionTree coarse(TreeOptions{.max_depth = 20, .min_samples_leaf = 15,
                                    .min_samples_split = 30});
  coarse.fit(d);
  // 40 samples with >=15 per leaf allows at most one split level.
  EXPECT_LE(coarse.node_count(), 3u);
}

TEST(RegressionTree, PureTargetsYieldALeaf) {
  Dataset d;
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 7.0);
  RegressionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({3.0}), 7.0);
}

TEST(RegressionTree, DeterministicGivenSameRng) {
  simcore::Rng rng(5);
  const auto d = step_function_data(150, rng);
  RegressionTree a, b;
  a.fit(d, simcore::Rng(9));
  b.fit(d, simcore::Rng(9));
  for (int i = 0; i < 20; ++i) {
    const double x = i / 20.0;
    EXPECT_DOUBLE_EQ(a.predict({x, 0.5}), b.predict({x, 0.5}));
  }
}

TEST(RegressionTree, MisuseThrows) {
  RegressionTree tree;
  EXPECT_THROW(tree.predict({1.0}), std::logic_error);
  EXPECT_THROW(tree.fit(Dataset{}), std::invalid_argument);
}

TEST(RandomForest, SmoothsAndFitsQuadratic) {
  simcore::Rng rng(6);
  Dataset d;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform();
    d.add({x}, (x - 0.5) * (x - 0.5) + rng.normal(0.0, 0.01));
  }
  RandomForest forest;
  forest.fit(d, simcore::Rng(1));
  simcore::RunningStats err;
  for (int i = 0; i <= 50; ++i) {
    const double x = i / 50.0;
    err.add(std::abs(forest.predict({x}) - (x - 0.5) * (x - 0.5)));
  }
  EXPECT_LT(err.mean(), 0.02);
}

TEST(RandomForest, PredictDistIsConsistentWithPredict) {
  simcore::Rng rng(7);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform();
    d.add({x}, 3.0 * x + rng.normal(0.0, 0.2));
  }
  RandomForest forest;
  forest.fit(d, simcore::Rng(2));
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0;
    double mean = 0.0, var = 0.0;
    forest.predict_dist({x}, &mean, &var);
    EXPECT_DOUBLE_EQ(mean, forest.predict({x}));
    EXPECT_GE(var, 0.0);
  }
}

TEST(RandomForest, ImportanceFindsSignal) {
  simcore::Rng rng(8);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    const double c = rng.uniform();
    d.add({a, b, c}, 5.0 * b);
  }
  RandomForest forest(ForestOptions{
      .trees = 20, .tree = TreeOptions{.feature_subsample = 0.67}, .bootstrap_fraction = 1.0});
  forest.fit(d, simcore::Rng(3));
  const auto imp = forest.feature_importance();
  EXPECT_GT(imp[1], imp[0]);
  EXPECT_GT(imp[1], imp[2]);
}

TEST(RandomForest, RejectsZeroTrees) {
  EXPECT_THROW(RandomForest(ForestOptions{.trees = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace stune::model
