// End-to-end coverage of the fault-injection and resilience stack:
//   - simcore::FaultInjector / FaultPlan determinism and purity,
//   - every FaultKind driven through the engine (recovery, metrics,
//     eventlog round trip),
//   - the trial retry pipeline (classification, backoff, deadlines,
//     neutral scoring of infra faults, the penalty floor),
//   - the per-tenant circuit breaker state machine,
//   - TuningService under chaos: graceful degradation and health().
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "disc/eventlog.hpp"
#include "service/circuit_breaker.hpp"
#include "service/tuning_service.hpp"
#include "simcore/fault.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune {
namespace {

namespace k = config::spark;
using simcore::FaultPlan;
using simcore::FaultProfile;
using simcore::gib;

config::Configuration tuned_config() {
  auto c = config::spark_space()->default_config();
  c.set(k::kExecutorInstances, 16);
  c.set(k::kExecutorCores, 4);
  c.set(k::kExecutorMemoryGiB, 13.0);
  c.set(k::kDefaultParallelism, 256);
  c.set(k::kSerializer, 1.0);  // kryo
  c.set(k::kDriverMemoryGiB, 4.0);
  return c;
}

disc::ExecutionReport run_with_plan(const FaultPlan& plan,
                                    const cluster::ClusterSpec& spec = {"h1.4xlarge", 4},
                                    const config::Configuration& conf = tuned_config(),
                                    const std::string& workload = "sort") {
  disc::EngineOptions opts;
  opts.faults = plan;
  const disc::SparkSimulator sim(cluster::Cluster::from_spec(spec), opts);
  return workload::execute(*workload::make_workload(workload), gib(16), sim, conf);
}

// ---------------------------------------------------------------------------
// FaultInjector / FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedReproducesFaultsBitwise) {
  const FaultProfile profile = FaultProfile::chaos(0.4);
  const simcore::FaultInjector a(profile, 99);
  const simcore::FaultInjector b(profile, 99);
  for (const std::uint64_t trial : {1ULL, 77ULL, 123456789ULL}) {
    for (const int attempt : {0, 1, 2}) {
      const FaultPlan pa = a.plan(trial, attempt);
      const FaultPlan pb = b.plan(trial, attempt);
      EXPECT_EQ(pa.transient_error(), pb.transient_error());
      EXPECT_DOUBLE_EQ(pa.error_position(), pb.error_position());
      EXPECT_EQ(pa.timeout(), pb.timeout());
      EXPECT_EQ(pa.fingerprint(), pb.fingerprint());
      for (int stage = 0; stage < 20; ++stage) {
        const auto fa = pa.stage_faults(stage, 16, 4, 1.0);
        const auto fb = pb.stage_faults(stage, 16, 4, 1.0);
        EXPECT_EQ(fa.lost_executors, fb.lost_executors);
        EXPECT_EQ(fa.lost_vms, fb.lost_vms);
        EXPECT_DOUBLE_EQ(fa.straggler_factor, fb.straggler_factor);
      }
    }
  }
}

TEST(FaultPlan, StageFaultsArePureAndOrderIndependent) {
  const FaultPlan plan(FaultProfile::chaos(0.6), 1234);
  const auto forward = plan.stage_faults(3, 16, 4, 1.0);
  // Query other stages in between; stage 3 must not care.
  plan.stage_faults(9, 16, 4, 1.0);
  plan.stage_faults(0, 16, 4, 1.0);
  const auto again = plan.stage_faults(3, 16, 4, 1.0);
  EXPECT_EQ(forward.lost_executors, again.lost_executors);
  EXPECT_EQ(forward.lost_vms, again.lost_vms);
  EXPECT_DOUBLE_EQ(forward.straggler_factor, again.straggler_factor);
}

TEST(FaultPlan, AttemptsRerollTheSchedule) {
  // Retrying an infra fault only helps if attempt 2 sees different weather.
  FaultProfile profile;
  profile.transient_error_rate = 0.5;
  const simcore::FaultInjector injector(profile, 7);
  bool any_differs = false;
  for (std::uint64_t trial = 0; trial < 32 && !any_differs; ++trial) {
    any_differs = injector.plan(trial, 0).transient_error() !=
                  injector.plan(trial, 1).transient_error();
  }
  EXPECT_TRUE(any_differs);
}

TEST(FaultPlan, InactivePlanInjectsNothingAndFingerprintsToZero) {
  const FaultPlan inactive;
  EXPECT_FALSE(inactive.active());
  EXPECT_EQ(inactive.fingerprint(), 0u);
  EXPECT_FALSE(inactive.transient_error());
  EXPECT_FALSE(inactive.timeout());
  const auto f = inactive.stage_faults(0, 16, 4, 1.0);
  EXPECT_EQ(f.lost_executors, 0);
  EXPECT_EQ(f.lost_vms, 0);
  EXPECT_DOUBLE_EQ(f.straggler_factor, 1.0);
  EXPECT_FALSE(FaultProfile::none().active());
  EXPECT_TRUE(FaultProfile::chaos(0.1).active());
}

TEST(FaultProfile, FingerprintSeparatesProfilesAndLevels) {
  EXPECT_NE(FaultProfile::chaos(0.1).fingerprint(), FaultProfile::chaos(0.2).fingerprint());
  FaultProfile a = FaultProfile::chaos(0.3);
  FaultProfile b = a;
  b.straggler_slowdown *= 2.0;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// ---------------------------------------------------------------------------
// Engine under each fault kind
// ---------------------------------------------------------------------------

TEST(EngineFaults, TransientErrorAbortsTheTrialAsInfraFault) {
  FaultProfile profile;
  profile.transient_error_rate = 1.0;
  const auto r = run_with_plan(FaultPlan(profile, 5));
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.infra_fault);
  EXPECT_NE(r.failure_reason.find("transient"), std::string::npos);
  EXPECT_GT(r.runtime, 0.0);  // aborted runs still burn time
}

TEST(EngineFaults, TimeoutHangsFarPastTheNominalRuntime) {
  FaultProfile profile;
  profile.timeout_rate = 1.0;
  profile.timeout_hang_factor = 8.0;
  const auto hung = run_with_plan(FaultPlan(profile, 5));
  const auto clean = run_with_plan(FaultPlan());
  ASSERT_TRUE(clean.success);
  EXPECT_FALSE(hung.success);
  EXPECT_TRUE(hung.infra_fault);
  EXPECT_NE(hung.failure_reason.find("timeout"), std::string::npos);
  EXPECT_GT(hung.runtime, 4.0 * clean.runtime);
}

TEST(EngineFaults, ExecutorLossIsSurvivedAndRecoveryIsRecorded) {
  FaultProfile profile;
  profile.executor_loss_rate = 0.4;
  const auto r = run_with_plan(FaultPlan(profile, 11));
  const auto clean = run_with_plan(FaultPlan());
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.total_lost_executors, 0);
  EXPECT_GT(r.total_recovery, 0.0);
  EXPECT_GT(r.runtime, clean.runtime);  // recovery is not free
  // Recovery only appears on stages that actually lost executors.
  for (const auto& s : r.stages) {
    if (s.recovery_seconds > 0.0) {
      EXPECT_TRUE(s.lost_executors > 0 || s.lost_vms > 0);
    }
  }
}

TEST(EngineFaults, SpotRevocationKillsTheFleetButSparesOnDemand) {
  FaultProfile profile;
  profile.spot_revocation_rate = 1.0;
  // Every VM of a spot fleet is revoked in stage one: an infra fault.
  const auto spot = run_with_plan(FaultPlan(profile, 3), {"m5.2xlarge", 4, true});
  EXPECT_FALSE(spot.success);
  EXPECT_TRUE(spot.infra_fault);
  EXPECT_NE(spot.failure_reason.find("revoked"), std::string::npos);
  EXPECT_GT(spot.total_lost_vms, 0);
  // The same profile cannot touch an on-demand fleet (hazard weight 0), so
  // the run is bitwise identical to a fault-free one.
  const auto on_demand = run_with_plan(FaultPlan(profile, 3), {"m5.2xlarge", 4});
  const auto clean = run_with_plan(FaultPlan(), {"m5.2xlarge", 4});
  ASSERT_TRUE(on_demand.success);
  EXPECT_DOUBLE_EQ(on_demand.runtime, clean.runtime);
  EXPECT_EQ(on_demand.total_lost_vms, 0);
}

TEST(EngineFaults, PartialRevocationShrinksTheFleetAndRunsOn) {
  // A milder hazard: some VMs go, the run reschedules onto survivors.
  FaultProfile profile;
  profile.spot_revocation_rate = 0.12;
  bool survived_a_loss = false;
  for (std::uint64_t stream = 1; stream <= 12 && !survived_a_loss; ++stream) {
    const auto r = run_with_plan(FaultPlan(profile, stream), {"m5.2xlarge", 8, true});
    if (r.success && r.total_lost_vms > 0) {
      survived_a_loss = true;
      EXPECT_GT(r.total_recovery, 0.0);
    }
  }
  EXPECT_TRUE(survived_a_loss)
      << "no stream produced a survivable partial revocation";
}

TEST(EngineFaults, SpeculationTamesInjectedStragglersViaTheQuantileKnob) {
  FaultProfile profile;
  profile.straggler_rate = 1.0;
  profile.straggler_slowdown = 6.0;
  profile.straggler_victim_fraction = 0.4;
  const FaultPlan plan(profile, 17);

  auto base = tuned_config();
  base.set(k::kSpeculationMultiplier, 1.2);
  auto off = base;
  off.set(k::kSpeculation, 0.0);
  auto tight = base;
  tight.set(k::kSpeculation, 1.0);
  tight.set(k::kSpeculationQuantile, 0.5);
  auto loose = base;
  loose.set(k::kSpeculation, 1.0);
  loose.set(k::kSpeculationQuantile, 0.95);

  const auto r_off = run_with_plan(plan, {"h1.4xlarge", 4}, off);
  const auto r_tight = run_with_plan(plan, {"h1.4xlarge", 4}, tight);
  const auto r_loose = run_with_plan(plan, {"h1.4xlarge", 4}, loose);
  ASSERT_TRUE(r_off.success);
  ASSERT_TRUE(r_tight.success);
  ASSERT_TRUE(r_loose.success);
  EXPECT_GT(r_tight.total_speculative_tasks, 0);
  // Speculation bounds straggler damage; a tighter quantile bounds it more.
  EXPECT_LT(r_tight.runtime, r_off.runtime);
  EXPECT_LE(r_tight.runtime, r_loose.runtime);
}

TEST(EngineFaults, SamePlanReproducesTheRunBitwise) {
  const FaultPlan plan(FaultProfile::chaos(0.5), 21);
  const auto a = run_with_plan(plan);
  const auto b = run_with_plan(plan);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.infra_fault, b.infra_fault);
  EXPECT_DOUBLE_EQ(a.runtime, b.runtime);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.stages[i].duration, b.stages[i].duration);
    EXPECT_EQ(a.stages[i].lost_executors, b.stages[i].lost_executors);
    EXPECT_EQ(a.stages[i].lost_vms, b.stages[i].lost_vms);
    EXPECT_DOUBLE_EQ(a.stages[i].recovery_seconds, b.stages[i].recovery_seconds);
  }
}

TEST(EngineFaults, EventLogRoundTripsFaultTelemetry) {
  FaultProfile profile;
  profile.executor_loss_rate = 0.4;
  const auto r = run_with_plan(FaultPlan(profile, 11));
  ASSERT_TRUE(r.success);
  ASSERT_GT(r.total_lost_executors, 0);
  const auto parsed = disc::from_event_log(disc::to_event_log(r));
  EXPECT_EQ(parsed.total_lost_executors, r.total_lost_executors);
  EXPECT_EQ(parsed.total_lost_vms, r.total_lost_vms);
  EXPECT_EQ(parsed.total_speculative_tasks, r.total_speculative_tasks);
  EXPECT_NEAR(parsed.total_recovery, r.total_recovery, 1e-3 * (1.0 + r.total_recovery));
  // And the infra-fault flag survives on a failed run.
  FaultProfile fatal;
  fatal.timeout_rate = 1.0;
  const auto hung = run_with_plan(FaultPlan(fatal, 5));
  ASSERT_FALSE(hung.success);
  const auto hung_parsed = disc::from_event_log(disc::to_event_log(hung));
  EXPECT_TRUE(hung_parsed.infra_fault);
  EXPECT_FALSE(hung_parsed.success);
}

// ---------------------------------------------------------------------------
// Retry pipeline
// ---------------------------------------------------------------------------

using tuning::EvalOutcome;
using tuning::FaultClass;
using tuning::TrialObjective;
using tuning::TuneOptions;

config::Configuration any_config() { return config::spark_space()->default_config(); }

TEST(RetryPipeline, InfraFaultsRetryUntilSuccess) {
  const TrialObjective flaky = [](const config::Configuration&, int attempt) -> EvalOutcome {
    EvalOutcome out{100.0, attempt < 2};
    if (out.failed) out.fault = FaultClass::kInfra;
    return out;
  };
  TuneOptions opts;
  opts.retry.max_attempts = 4;
  const auto trial = tuning::evaluate_with_retry(flaky, any_config(), opts);
  EXPECT_FALSE(trial.outcome.failed);
  EXPECT_EQ(trial.attempts, 3);
  EXPECT_GT(trial.backoff_seconds, 0.0);
  // Deterministic: the identical call produces the identical trial.
  const auto again = tuning::evaluate_with_retry(flaky, any_config(), opts);
  EXPECT_EQ(again.attempts, trial.attempts);
  EXPECT_DOUBLE_EQ(again.backoff_seconds, trial.backoff_seconds);
}

TEST(RetryPipeline, ConfigFaultsAreNeverRetried) {
  int calls = 0;
  const TrialObjective crash = [&calls](const config::Configuration&, int) -> EvalOutcome {
    ++calls;
    return {5.0, true};  // failed without blame: classified as config fault
  };
  TuneOptions opts;
  opts.retry.max_attempts = 5;
  const auto trial = tuning::evaluate_with_retry(crash, any_config(), opts);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(trial.attempts, 1);
  EXPECT_EQ(trial.outcome.fault, FaultClass::kConfig);
  EXPECT_DOUBLE_EQ(trial.backoff_seconds, 0.0);
}

TEST(RetryPipeline, ExhaustedRetriesStayClassifiedAsInfra) {
  const TrialObjective storm = [](const config::Configuration&, int) -> EvalOutcome {
    EvalOutcome out{50.0, true};
    out.fault = FaultClass::kInfra;
    return out;
  };
  TuneOptions opts;
  opts.retry.max_attempts = 3;
  const auto trial = tuning::evaluate_with_retry(storm, any_config(), opts);
  EXPECT_TRUE(trial.outcome.failed);
  EXPECT_EQ(trial.outcome.fault, FaultClass::kInfra);
  EXPECT_EQ(trial.attempts, 3);
}

TEST(RetryPipeline, BackoffIsCappedExponentialWithBoundedJitter) {
  const TrialObjective storm = [](const config::Configuration&, int) -> EvalOutcome {
    EvalOutcome out{50.0, true};
    out.fault = FaultClass::kInfra;
    return out;
  };
  TuneOptions opts;
  opts.retry.max_attempts = 6;
  opts.retry.base_backoff_s = 10.0;
  opts.retry.backoff_multiplier = 2.0;
  opts.retry.max_backoff_s = 40.0;
  opts.retry.jitter_fraction = 0.25;
  const auto trial = tuning::evaluate_with_retry(storm, any_config(), opts);
  // Five waits: 10+20+40+40+40 = 150 nominal, jitter within ±25%.
  EXPECT_GE(trial.backoff_seconds, 150.0 * 0.75);
  EXPECT_LE(trial.backoff_seconds, 150.0 * 1.25);
}

TEST(RetryPipeline, DeadlineConvertsSlowSuccessToConfigFault) {
  const TrialObjective slow = [](const config::Configuration&, int) -> EvalOutcome {
    return {1000.0, false};
  };
  TuneOptions opts;
  opts.retry.trial_deadline_s = 400.0;
  const auto trial = tuning::evaluate_with_retry(slow, any_config(), opts);
  EXPECT_TRUE(trial.deadline_hit);
  EXPECT_TRUE(trial.outcome.failed);
  EXPECT_EQ(trial.outcome.fault, FaultClass::kConfig);
  EXPECT_DOUBLE_EQ(trial.outcome.runtime, 400.0);  // only the deadline is charged
}

TEST(RetryPipeline, DeadlineKeepsInfraHangsRetryable) {
  const TrialObjective hang = [](const config::Configuration&, int attempt) -> EvalOutcome {
    if (attempt == 0) {
      EvalOutcome out{1e9, true};  // hung well past any deadline
      out.fault = FaultClass::kInfra;
      return out;
    }
    return {120.0, false};
  };
  TuneOptions opts;
  opts.retry.trial_deadline_s = 500.0;
  opts.retry.max_attempts = 3;
  const auto trial = tuning::evaluate_with_retry(hang, any_config(), opts);
  EXPECT_TRUE(trial.deadline_hit);
  EXPECT_FALSE(trial.outcome.failed);  // the retry succeeded
  EXPECT_EQ(trial.attempts, 2);
}

TEST(SessionLedger, PenaltyFloorStopsInstantCrashesFromScoringWell) {
  // Regression: before the floor, a trial that crashed at t=0.1 scored
  // 0.1 * factor — the *best* objective of an all-failure session, so the
  // least-penalized fallback crowned the worst configuration.
  TuneOptions opts;
  opts.budget = 4;
  opts.failure_penalty_floor = 600.0;
  opts.failure_penalty_factor = 3.0;
  tuning::SessionLedger ledger(opts);
  EXPECT_GE(ledger.penalize(0.1, true), 600.0 * 3.0);
  // Crashing fast earns nothing: every sub-floor failure scores the same.
  EXPECT_DOUBLE_EQ(ledger.penalize(0.1, true), ledger.penalize(500.0, true));
  // Slower-than-floor failures score worse, successes score their runtime.
  EXPECT_GT(ledger.penalize(900.0, true), ledger.penalize(500.0, true));
  EXPECT_DOUBLE_EQ(ledger.penalize(123.0, false), 123.0);
}

TEST(SessionLedger, InfraFaultsScoreNeutralNotPenalized) {
  TuneOptions opts;
  opts.budget = 6;
  opts.failure_penalty_floor = 600.0;
  opts.failure_penalty_factor = 3.0;
  tuning::SessionLedger ledger(opts);
  const auto space = config::spark_space();

  tuning::TrialResult infra;
  infra.outcome = {50.0, true};
  infra.outcome.fault = FaultClass::kInfra;
  infra.attempts = 3;
  infra.backoff_seconds = 12.0;

  // Before any success the neutral objective is the floor — not the
  // penalty, and not the suspiciously-fast failed runtime.
  const auto& first = ledger.commit(space->default_config(), infra);
  EXPECT_DOUBLE_EQ(first.objective, 600.0);
  // After successes it is their mean.
  ledger.commit(space->default_config(), tuning::EvalOutcome{100.0, false});
  ledger.commit(space->default_config(), tuning::EvalOutcome{200.0, false});
  const auto& later = ledger.commit(space->default_config(), infra);
  EXPECT_DOUBLE_EQ(later.objective, 150.0);
  // Config faults still get the full penalty treatment.
  const auto& config_fault =
      ledger.commit(space->default_config(), tuning::EvalOutcome{1.0, true});
  EXPECT_GT(config_fault.objective, 599.0);

  const auto& stats = ledger.resilience();
  EXPECT_EQ(stats.infra_faults, 2u);
  EXPECT_EQ(stats.config_faults, 1u);
  EXPECT_EQ(stats.retries, 4u);
  EXPECT_DOUBLE_EQ(stats.backoff_seconds, 24.0);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

using service::BreakerState;
using service::CircuitBreaker;
using service::CircuitBreakerOptions;

TEST(CircuitBreaker, OpensAfterConsecutiveInfraFaultsOnly) {
  CircuitBreaker cb(CircuitBreakerOptions{.open_after = 3, .cooldown_runs = 2});
  cb.record_infra_fault();
  cb.record_infra_fault();
  cb.record_success();  // the streak resets
  cb.record_infra_fault();
  cb.record_infra_fault();
  EXPECT_EQ(cb.state(), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow_request());
  cb.record_infra_fault();
  EXPECT_EQ(cb.state(), BreakerState::kOpen);
  EXPECT_EQ(cb.trips(), 1);
}

TEST(CircuitBreaker, CooldownThenHalfOpenProbe) {
  CircuitBreaker cb(CircuitBreakerOptions{.open_after = 1, .cooldown_runs = 2});
  cb.record_infra_fault();
  ASSERT_EQ(cb.state(), BreakerState::kOpen);
  EXPECT_FALSE(cb.allow_request());
  EXPECT_FALSE(cb.allow_request());
  EXPECT_TRUE(cb.allow_request());  // cooldown elapsed: half-open probe
  EXPECT_EQ(cb.state(), BreakerState::kHalfOpen);
  cb.record_success();
  EXPECT_EQ(cb.state(), BreakerState::kClosed);
  EXPECT_TRUE(cb.allow_request());
}

TEST(CircuitBreaker, FailedProbeReopensAndRestartsCooldown) {
  CircuitBreaker cb(CircuitBreakerOptions{.open_after = 1, .cooldown_runs = 1});
  cb.record_infra_fault();
  EXPECT_FALSE(cb.allow_request());
  EXPECT_TRUE(cb.allow_request());  // probe
  cb.record_infra_fault();          // probe fails
  EXPECT_EQ(cb.state(), BreakerState::kOpen);
  EXPECT_EQ(cb.trips(), 2);
  EXPECT_FALSE(cb.allow_request());  // cooldown restarted
}

// ---------------------------------------------------------------------------
// TuningService under chaos
// ---------------------------------------------------------------------------

service::ServiceOptions chaos_service_options(double level) {
  service::ServiceOptions opts;
  opts.tune_cloud = false;
  opts.default_cluster = {"h1.4xlarge", 4};
  opts.tuning_budget = 12;
  opts.retuning_budget = 6;
  opts.faults = FaultProfile::chaos(level);
  return opts;
}

TEST(ServiceChaos, ModerateFaultRateDegradesGracefully) {
  // The acceptance bar: at a 15% infra-fault rate the service still tunes,
  // still finds a feasible configuration, and lands within 2x of its own
  // fault-free result.
  service::TuningService clean(chaos_service_options(0.0));
  const int hc = clean.submit("acme", workload::make_workload("pagerank"), gib(8));
  clean.run_once(hc);
  const double clean_best = clean.status(hc).best_runtime;
  ASSERT_GT(clean_best, 0.0);

  service::TuningService stormy(chaos_service_options(0.15));
  const int hs = stormy.submit("acme", workload::make_workload("pagerank"), gib(8));
  for (int i = 0; i < 3; ++i) stormy.run_once(hs);
  const auto status = stormy.status(hs);
  EXPECT_TRUE(status.tuned);
  ASSERT_GT(status.best_runtime, 0.0) << "no feasible configuration under 15% faults";
  EXPECT_LE(status.best_runtime, 2.0 * clean_best);
}

TEST(ServiceChaos, HeavyWeatherTripsTheBreakerAndHealthReportsIt) {
  auto opts = chaos_service_options(0.95);
  opts.retry.max_attempts = 2;
  opts.breaker.open_after = 2;
  opts.breaker.cooldown_runs = 1;
  service::TuningService svc(opts);
  const int h = svc.submit("acme", workload::make_workload("wordcount"), gib(4));
  for (int i = 0; i < 6; ++i) svc.run_once(h);

  const auto health = svc.health();
  ASSERT_EQ(health.tenants, 1u);
  ASSERT_EQ(health.per_tenant.size(), 1u);
  EXPECT_EQ(health.per_tenant[0].tenant, "acme");
  EXPECT_EQ(health.per_tenant[0].workloads, 1u);
  EXPECT_GE(health.per_tenant[0].trips, 1) << "a 95% fault rate must trip the breaker";
  EXPECT_GE(health.total_degraded_runs, 1u);
  EXPECT_EQ(svc.status(h).degraded_runs, health.total_degraded_runs);
}

TEST(ServiceChaos, FaultFreeServiceReportsHealthyBreakers) {
  service::TuningService svc(chaos_service_options(0.0));
  const int h = svc.submit("acme", workload::make_workload("sort"), gib(4));
  svc.run_once(h);
  const auto health = svc.health();
  EXPECT_EQ(health.open_breakers, 0u);
  EXPECT_EQ(health.total_degraded_runs, 0u);
  ASSERT_EQ(health.per_tenant.size(), 1u);
  EXPECT_EQ(health.per_tenant[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(health.per_tenant[0].trips, 0);
}

TEST(ServiceChaos, ChaosRunsAreDeterministic) {
  auto make = [] {
    return service::TuningService(chaos_service_options(0.3));
  };
  auto run = [](service::TuningService& svc) {
    const int h = svc.submit("acme", workload::make_workload("join"), gib(8));
    for (int i = 0; i < 3; ++i) svc.run_once(h);
    return svc.status(h);
  };
  auto a = make();
  auto b = make();
  const auto sa = run(a);
  const auto sb = run(b);
  EXPECT_DOUBLE_EQ(sa.best_runtime, sb.best_runtime);
  EXPECT_DOUBLE_EQ(sa.last_runtime, sb.last_runtime);
  EXPECT_EQ(sa.tunings, sb.tunings);
  EXPECT_EQ(sa.degraded_runs, sb.degraded_runs);
  EXPECT_EQ(sa.config.values(), sb.config.values());
}

}  // namespace
}  // namespace stune
