// Reproduces the paper's §II survey quantitatively: how sample-efficient is
// each tuning strategy on the same workload and budget?
//
// Referenced claims: BestConfig needs ~500 samples for ~80% improvement over
// defaults on 30 Spark knobs; CherryPick's BO is data-efficient; DAC's
// model-assisted GA reaches 30-89x over defaults; Wang's regression trees
// +36%; MROnline's hill climbing works on few knobs. We run every strategy
// implemented in stune::tuning under equal budgets and print best-found
// runtime at budget checkpoints, plus the improvement over the default
// configuration.
#include <algorithm>

#include "tuning/tuner.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr std::size_t kBudget = 100;
const std::vector<std::size_t> kCheckpoints = {10, 25, 50, 100};

}  // namespace

int main() {
  const auto cluster = paper_testbed();
  const auto space = config::spark_space();

  for (const std::string workload_name : {"pagerank", "sort"}) {
    const auto w = workload::make_workload(workload_name);
    const simcore::Bytes input = 16ULL << 30;

    const auto def = averaged_runtime(*w, input, space->default_config(), cluster, 1);

    section("tuner comparison on " + workload_name + " (" +
            std::string(simcore::format_bytes(input)) + ", default config: " +
            (def.success ? fmt("%.1f", def.runtime) + "s" : "crash") + ")");

    Table t({"tuner", "best@10", "best@25", "best@50", "best@100", "vs default", "crashes hit"});
    for (const auto& tuner_name : tuning::tuner_names()) {
      // Average convergence over 3 tuner seeds for stability.
      std::vector<double> at_checkpoint(kCheckpoints.size(), 0.0);
      double crashes = 0.0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
          const auto r = averaged_runtime(*w, input, c, cluster, 1);
          return {r.runtime, !r.success};
        };
        tuning::TuneOptions opts;
        opts.budget = kBudget;
        opts.seed = seed;
        const auto result = tuning::make_tuner(tuner_name)->tune(space, obj, opts);
        const auto curve = result.best_curve();
        for (std::size_t k = 0; k < kCheckpoints.size(); ++k) {
          at_checkpoint[k] += curve[std::min(kCheckpoints[k], curve.size()) - 1] / 3.0;
        }
        for (const auto& o : result.history) crashes += o.failed ? 1.0 / 3.0 : 0.0;
      }
      const double final_best = at_checkpoint.back();
      t.add_row({tuner_name, fmt("%.1f", at_checkpoint[0]), fmt("%.1f", at_checkpoint[1]),
                 fmt("%.1f", at_checkpoint[2]), fmt("%.1f", at_checkpoint[3]),
                 def.success ? fmt("%.1fx", def.runtime / final_best) : "recovers crash",
                 fmt("%.0f", crashes)});
    }
    t.print();
  }
  std::printf(
      "\nreading: model-based strategies (bayesopt/dac/rtree) should dominate at small\n"
      "budgets; random/sweep need many more samples — the paper's core cost argument\n"
      "for offloading tuning to a provider who amortizes it across tenants.\n");
  return 0;
}
