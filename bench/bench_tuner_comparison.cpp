// Reproduces the paper's §II survey quantitatively: how sample-efficient is
// each tuning strategy on the same workload and budget?
//
// Referenced claims: BestConfig needs ~500 samples for ~80% improvement over
// defaults on 30 Spark knobs; CherryPick's BO is data-efficient; DAC's
// model-assisted GA reaches 30-89x over defaults; Wang's regression trees
// +36%; MROnline's hill climbing works on few knobs. We run every strategy
// implemented in stune::tuning under equal budgets and print best-found
// runtime at budget checkpoints, plus the improvement over the default
// configuration.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/thread_pool.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/eval_cache.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

JsonReport g_report("bench_tuner_comparison");

constexpr std::size_t kBudget = 100;
const std::vector<std::size_t> kCheckpoints = {10, 25, 50, 100};

/// Parallel trial execution + cached re-tuning on the batch-capable
/// tuners. Trials use the real measurement protocol (several engine-seed
/// repetitions per configuration), which is what makes each trial heavy
/// enough for worker threads to pay off.
void bench_parallel_and_cache(const stune::cluster::Cluster& cluster, std::size_t jobs_n) {
  using Clock = std::chrono::steady_clock;
  const auto space = config::spark_space();
  const auto w = workload::make_workload("pagerank");
  const simcore::Bytes input = 64ULL << 30;
  constexpr int kReps = 32;            // engine-seed repetitions per trial
  constexpr std::size_t kParBudget = 96;

  auto timed_tune = [&](const std::string& tuner_name, std::size_t jobs,
                        workload::EvalCache& cache, double& wall_s) {
    tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
      double runtime = 0.0;
      bool ok = true;
      for (int s = 0; s < kReps; ++s) {
        disc::EngineOptions eopts;
        eopts.seed = 42 + static_cast<std::uint64_t>(s);
        const disc::SparkSimulator sim(cluster, eopts);
        const auto r = workload::execute(*w, input, sim, c, cache);
        runtime += r.runtime / kReps;
        ok &= r.success;
      }
      return {runtime, !ok};
    };
    tuning::TuneOptions opts;
    opts.budget = kParBudget;
    opts.seed = 1;
    tuning::TrialExecutor executor(tuning::ExecutorOptions{.jobs = jobs});
    const auto t0 = Clock::now();
    auto result = executor.run(*tuning::make_tuner(tuner_name), space, obj, opts);
    wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
    return result;
  };

  section("parallel trial execution + cached re-tuning (" + fmt("%.0f", double(kParBudget)) +
          " trials x " + fmt("%.0f", double(kReps)) + " reps, jobs=" +
          fmt("%.0f", double(jobs_n)) + ")");
  Table t({"tuner", "wall jobs=1", "wall jobs=N", "speedup", "identical", "retune hit rate"});
  for (const std::string tuner_name : {"random", "grid"}) {
    workload::EvalCache cold1, coldn;
    double wall1 = 0.0, walln = 0.0, wall_retune = 0.0;
    const auto r1 = timed_tune(tuner_name, 1, cold1, wall1);
    const auto rn = timed_tune(tuner_name, jobs_n, coldn, walln);

    bool identical = r1.history.size() == rn.history.size();
    for (std::size_t i = 0; identical && i < r1.history.size(); ++i) {
      identical = r1.history[i].config.values() == rn.history[i].config.values() &&
                  r1.history[i].runtime == rn.history[i].runtime &&
                  r1.history[i].objective == rn.history[i].objective;
    }

    // Re-tune against the warm cache — the provider's recurring-workload
    // scenario: the deterministic engine lets every probe replay.
    const auto before = coldn.stats();
    const auto rr = timed_tune(tuner_name, jobs_n, coldn, wall_retune);
    (void)rr;
    const auto after = coldn.stats();
    const double retune_lookups =
        static_cast<double>((after.hits - before.hits) + (after.misses - before.misses));
    const double retune_hit_rate =
        retune_lookups > 0.0 ? static_cast<double>(after.hits - before.hits) / retune_lookups
                             : 0.0;

    t.add_row({tuner_name, fmt("%.2fs", wall1), fmt("%.2fs", walln),
               fmt("%.1fx", wall1 / walln), identical ? "yes" : "NO", pct(retune_hit_rate)});
    // Machine-readable record for tracking executor scaling over time.
    g_report.record(
        "\"bench\": \"parallel_tuning\", \"workload\": \"%s\", \"tuner\": \"%s\", "
        "\"budget\": %zu, \"reps\": %d, \"jobs\": %zu, \"wall_s_jobs1\": %.3f, "
        "\"wall_s_jobsN\": %.3f, \"speedup\": %.2f, \"identical\": %s, "
        "\"retune_hit_rate\": %.3f, \"retune_wall_s\": %.3f",
        w->name().c_str(), tuner_name.c_str(), kParBudget, kReps, jobs_n, wall1, walln,
        wall1 / walln, identical ? "true" : "false", retune_hit_rate, wall_retune);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto cluster = paper_testbed();
  const auto space = config::spark_space();
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
  }
  const std::size_t jobs_n =
      parse_jobs(argc, argv, simcore::ThreadPool::hardware_threads());

  for (const std::string workload_name : {"pagerank", "sort"}) {
    const auto w = workload::make_workload(workload_name);
    const simcore::Bytes input = 16ULL << 30;

    const auto def = averaged_runtime(*w, input, space->default_config(), cluster, 1);

    section("tuner comparison on " + workload_name + " (" +
            std::string(simcore::format_bytes(input)) + ", default config: " +
            (def.success ? fmt("%.1f", def.runtime) + "s" : "crash") + ")");

    Table t({"tuner", "best@10", "best@25", "best@50", "best@100", "vs default", "crashes hit"});
    for (const auto& tuner_name : tuning::tuner_names()) {
      // Average convergence over 3 tuner seeds for stability.
      std::vector<double> at_checkpoint(kCheckpoints.size(), 0.0);
      double crashes = 0.0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
          const auto r = averaged_runtime(*w, input, c, cluster, 1);
          return {r.runtime, !r.success};
        };
        tuning::TuneOptions opts;
        opts.budget = kBudget;
        opts.seed = seed;
        const auto result = tuning::make_tuner(tuner_name)->tune(space, obj, opts);
        const auto curve = result.best_curve();
        for (std::size_t k = 0; k < kCheckpoints.size(); ++k) {
          at_checkpoint[k] += curve[std::min(kCheckpoints[k], curve.size()) - 1] / 3.0;
        }
        for (const auto& o : result.history) crashes += o.failed ? 1.0 / 3.0 : 0.0;
      }
      const double final_best = at_checkpoint.back();
      t.add_row({tuner_name, fmt("%.1f", at_checkpoint[0]), fmt("%.1f", at_checkpoint[1]),
                 fmt("%.1f", at_checkpoint[2]), fmt("%.1f", at_checkpoint[3]),
                 def.success ? fmt("%.1fx", def.runtime / final_best) : "recovers crash",
                 fmt("%.0f", crashes)});
      // Machine-readable record for tracking tuner convergence over time.
      g_report.record(
          "\"bench\": \"tuner_comparison\", \"workload\": \"%s\", \"tuner\": \"%s\", "
          "\"budget\": %zu, \"best_at_10\": %.3f, \"best_at_25\": %.3f, \"best_at_50\": %.3f, "
          "\"best_at_100\": %.3f, \"default_runtime\": %.3f, \"crashes\": %.2f",
          workload_name.c_str(), tuner_name.c_str(), kBudget, at_checkpoint[0],
          at_checkpoint[1], at_checkpoint[2], at_checkpoint[3],
          def.success ? def.runtime : -1.0, crashes);
    }
    t.print();
  }
  std::printf(
      "\nreading: model-based strategies (bayesopt/dac/rtree) should dominate at small\n"
      "budgets; random/sweep need many more samples — the paper's core cost argument\n"
      "for offloading tuning to a provider who amortizes it across tenants.\n");

  bench_parallel_and_cache(cluster, jobs_n == 0 ? simcore::ThreadPool::hardware_threads()
                                                : jobs_n);
  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}
