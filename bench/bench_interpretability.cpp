// Reproduces the paper's §V-A challenge: "develop models that can transfer
// their tuning knowledge ... it is challenging to extract this information
// from complex machine learning models, which usually work as a black-box".
// The paper points at Duvenaud et al.'s additive Gaussian processes as a
// path to interpretability.
//
// We fit (a) an additive GP and (b) a random forest on the same tuning
// samples of each workload and print the parameter-relevance rankings both
// models extract — the "which knobs matter for this workload" knowledge a
// provider would transfer. The expected shape: resource knobs (executors,
// cores, memory, parallelism) dominate everywhere; shuffle/serializer knobs
// matter for shuffle-heavy workloads; SQL knobs only for SQL workloads.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "model/additive_gp.hpp"
#include "model/tree.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr int kSamples = 110;
constexpr simcore::Bytes kInput = 16ULL << 30;

std::vector<std::size_t> top_k(const std::vector<double>& scores, std::size_t k) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  order.resize(std::min(k, order.size()));
  return order;
}

}  // namespace

int main() {
  const auto cluster = paper_testbed();
  const auto space = config::spark_space();

  section("interpretable tuning models (paper §V-A): what drives each workload?");
  std::printf("%d tuning samples per workload @ %s; additive-GP kernel relevance vs\n"
              "random-forest split importance, aggregated per parameter\n\n",
              kSamples, simcore::format_bytes(kInput).c_str());

  Table t({"workload", "additive GP: top parameters (relevance)",
           "random forest: top parameters"});

  for (const std::string name : {"wordcount", "sort", "pagerank", "join"}) {
    const auto w = workload::make_workload(name);
    const disc::SparkSimulator sim(cluster);

    // Collect tuning samples (failures included, with a penalty — the model
    // must learn the crash region too).
    model::Dataset data;
    simcore::Rng rng(29);
    double worst = 0.0;
    std::vector<std::pair<std::vector<double>, double>> raw;
    for (int i = 0; i < kSamples; ++i) {
      const auto c = space->sample(rng);
      const auto r = workload::execute(*w, kInput, sim, c);
      if (r.success) worst = std::max(worst, r.runtime);
      raw.emplace_back(space->encode(c), r.success ? r.runtime : -1.0);
    }
    // Log targets: runtime spans orders of magnitude; failures score as
    // twice the worst observed success.
    for (auto& [x, y] : raw) data.add(std::move(x), std::log(y < 0.0 ? worst * 2.0 : y));

    model::AdditiveGaussianProcess gp;
    gp.fit(data, space->encoded_feature_owners());
    const auto gp_rel = gp.relevance();

    model::RandomForest forest(model::ForestOptions{
        .trees = 40,
        .tree = model::TreeOptions{.max_depth = 10, .feature_subsample = 0.5},
        .bootstrap_fraction = 1.0});
    forest.fit(data, simcore::Rng(31));
    const auto feature_imp = forest.feature_importance();
    // Aggregate one-hot feature importances back to parameters.
    std::vector<double> forest_rel(space->size(), 0.0);
    const auto owners = space->encoded_feature_owners();
    for (std::size_t f = 0; f < feature_imp.size(); ++f) {
      forest_rel[owners[f]] += feature_imp[f];
    }

    auto render = [&](const std::vector<double>& rel, bool with_share) {
      std::string out;
      for (const auto idx : top_k(rel, 3)) {
        if (!out.empty()) out += ", ";
        // Strip the "spark." prefix for readability.
        std::string pname = space->param(idx).name;
        if (pname.rfind("spark.", 0) == 0) pname = pname.substr(6);
        out += pname;
        if (with_share) out += " (" + pct(rel[idx] / std::max(1e-12, std::accumulate(rel.begin(), rel.end(), 0.0))) + ")";
      }
      return out;
    };
    t.add_row({name, render(gp_rel, true), render(forest_rel, false)});
  }
  t.print();

  std::printf(
      "\nreading: both model families surface the same physical story — resource sizing\n"
      "(executors/cores/memory) dominates, parallelism matters for shuffle stages, and\n"
      "the additive GP exposes it as a proper variance decomposition, the §V-A property\n"
      "that lets a provider *transfer* tuning knowledge instead of raw samples.\n");
  return 0;
}
