// Load harness for the sharded serving tier: drives a TuningService with up
// to 100k tenants and ~1M serve() operations from concurrent closed-loop
// workers (ghz-style), reporting wall-clock latency percentiles
// (p50/p99/p99.9), throughput, and the overload-control counters
// (served / degraded / shed by reason) the admission plane exposes.
//
// Modes:
//   quick     smaller fleet for a fast local signal
//   standard  the committed configuration: 100k tenants, ~1M ops
//   stress    tight per-shard in-flight budgets + a tiny tuning-capacity
//             stock + finite deadlines: the service must shed and degrade,
//             not stall — watch ops/s stay high while shed counters climb
//   soak      fewer tenants, many recurring ops: steady-state behaviour
//             (eval-cache hits, knowledge-base retention under its cap)
//
// `--smoke` shrinks everything for CI; `--json PATH` writes the
// machine-readable report (the committed BENCH_service_load.json).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/tuning_service.hpp"
#include "simcore/units.hpp"
#include "workload/workload.hpp"

#include "bench_util.hpp"

namespace stune::bench {
namespace {

JsonReport g_report("bench_service_load");

struct ModeSpec {
  std::string name;
  std::size_t tenants = 0;
  std::size_t ops = 0;
  std::size_t threads = 0;
  std::size_t shards = 0;
  // Overload knobs: 0 max_inflight = unlimited; tuning_burst is the fixed
  // per-shard stock of full tuning sessions (tokens_per_s stays 0).
  std::size_t max_inflight = 0;
  double tuning_burst = 0.0;
  double deadline_s = 0.0;  // 0 = unlimited
};

ModeSpec spec_for(const std::string& mode, bool smoke) {
  if (smoke) return {"smoke", 500, 5000, 4, 8, 4, 8.0, 0.0};
  if (mode == "quick") return {"quick", 10000, 100000, 8, 32, 4, 16.0, 0.0};
  if (mode == "stress") return {"stress", 100000, 300000, 16, 32, 1, 2.0, 600.0};
  if (mode == "soak") return {"soak", 20000, 2000000, 8, 32, 4, 16.0, 0.0};
  return {"standard", 100000, 1000000, 8, 64, 4, 32.0, 0.0};
}

service::ServiceOptions service_options(const ModeSpec& m) {
  service::ServiceOptions opts;
  opts.shards = m.shards;
  opts.jobs = 1;  // tuning parallelism off: the serve path is under test
  opts.tune_cloud = false;
  opts.tuning_budget = 10;
  opts.retuning_budget = 6;
  // The ledger's counterfactual baseline re-simulates every production run;
  // that doubles the serve cost and measures nothing about serving.
  opts.ledger_counterfactual = false;
  opts.admission.max_inflight = m.max_inflight;
  opts.admission.tuning_tokens_per_s = 0.0;  // fixed stock per shard
  opts.admission.tuning_burst = m.tuning_burst;
  // Retention keeps the shared history bounded over million-op runs.
  opts.knowledge.max_records = 50000;
  // The zero-execution retrieval tier: degraded tenants answer their next
  // serve from the index instead of waiting for tuning capacity.
  opts.retrieval.enabled = true;
  return opts;
}

struct Percentiles {
  double p50 = 0.0, p99 = 0.0, p999 = 0.0, max = 0.0;
};

Percentiles percentiles_us(std::vector<double>& lat_us) {
  Percentiles p;
  if (lat_us.empty()) return p;
  std::sort(lat_us.begin(), lat_us.end());
  const auto at = [&](double q) {
    const std::size_t i = static_cast<std::size_t>(q * static_cast<double>(lat_us.size() - 1));
    return lat_us[i];
  };
  p.p50 = at(0.50);
  p.p99 = at(0.99);
  p.p999 = at(0.999);
  p.max = lat_us.back();
  return p;
}

struct LoadResult {
  double submit_s = 0.0;
  double wall_s = 0.0;
  double ops_per_s = 0.0;
  Percentiles lat;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_saturated = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t tuning_sessions = 0;
  std::uint64_t retrieved = 0;
  std::uint64_t retrieval_misses = 0;
  std::uint64_t retrieval_fallbacks = 0;
  std::uint64_t retrieval_epoch = 0;
  std::size_t retrieval_entries = 0;
  std::size_t peak_inflight = 0;
  std::size_t kb_total = 0;
  std::size_t kb_retained = 0;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

LoadResult run_mode(const ModeSpec& m) {
  service::TuningService svc(service_options(m));

  // A handful of shared workload shapes: tenants are distinct principals,
  // not distinct computations — exactly the multi-tenant recurring-job fleet
  // the serving tier exists for.
  const auto names = workload::workload_names();
  std::vector<std::shared_ptr<const workload::Workload>> shapes;
  shapes.reserve(names.size());
  for (const auto& n : names) shapes.push_back(workload::make_workload(n));

  LoadResult out;
  const auto t_submit = std::chrono::steady_clock::now();
  std::vector<int> handles(m.tenants);
  for (std::size_t t = 0; t < m.tenants; ++t) {
    handles[t] = svc.submit("tenant-" + std::to_string(t), shapes[t % shapes.size()],
                            simcore::gib(static_cast<double>(1 + t % 8)));
  }
  out.submit_s = seconds_since(t_submit);

  // Closed-loop workers: thread k owns ops k, k+T, k+2T, ... and issues them
  // back-to-back; op i targets tenant i % tenants, so every tenant sees
  // ops/tenants recurring runs. A short untimed warmup absorbs first-touch
  // costs (provisioning, first simulations) before the measured window.
  const std::size_t warmup = std::min<std::size_t>(m.ops / 20, 10000);
  service::ServeRequest req;
  if (m.deadline_s > 0.0) req.deadline_s = m.deadline_s;
  const auto drive = [&](std::size_t begin, std::size_t end, std::size_t thread_id,
                         std::vector<double>* lat_us) {
    for (std::size_t i = begin + thread_id; i < end; i += m.threads) {
      const auto t0 = std::chrono::steady_clock::now();
      (void)svc.serve(handles[i % m.tenants], req);
      if (lat_us != nullptr) lat_us->push_back(seconds_since(t0) * 1e6);
    }
  };
  const auto fan_out = [&](std::size_t begin, std::size_t end,
                           std::vector<std::vector<double>>* lat) {
    std::vector<std::thread> workers;
    workers.reserve(m.threads);
    for (std::size_t k = 0; k < m.threads; ++k) {
      workers.emplace_back(drive, begin, end, k, lat != nullptr ? &(*lat)[k] : nullptr);
    }
    for (auto& w : workers) w.join();
  };

  fan_out(0, warmup, nullptr);

  std::vector<std::vector<double>> lat(m.threads);
  for (auto& v : lat) v.reserve(m.ops / m.threads + 1);
  const auto t_run = std::chrono::steady_clock::now();
  fan_out(warmup, warmup + m.ops, &lat);
  out.wall_s = seconds_since(t_run);
  out.ops_per_s = static_cast<double>(m.ops) / out.wall_s;

  std::vector<double> merged;
  merged.reserve(m.ops);
  for (auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  out.lat = percentiles_us(merged);

  const auto health = svc.health(false);
  for (const auto& s : health.per_shard) {
    out.shed_rate_limited += s.shed_rate_limited;
    out.shed_saturated += s.shed_saturated;
    out.shed_deadline += s.shed_deadline;
    out.deadline_exceeded += s.deadline_exceeded;
    out.tuning_sessions += s.tuning_sessions;
    out.peak_inflight = std::max(out.peak_inflight, s.peak_inflight);
  }
  out.served = health.served;
  out.degraded = health.degraded;
  out.retrieved = health.retrieved;
  out.retrieval_misses = health.retrieval_misses;
  out.retrieval_fallbacks = health.retrieval_fallbacks;
  out.retrieval_epoch = health.retrieval_epoch;
  out.retrieval_entries = health.retrieval_entries;
  out.kb_total = svc.knowledge_size();
  out.kb_retained = svc.knowledge_base().size();
  return out;
}

/// Deterministic single-thread pass against one shard's token bucket with a
/// synthetic virtual arrival clock: offered rate 2x the refill rate, so
/// roughly half the requests beyond the burst must shed kRateLimited.
void run_rate_limit_probe(std::size_t ops) {
  service::ServiceOptions opts;
  opts.shards = 1;
  opts.jobs = 1;
  opts.tune_cloud = false;
  opts.tuning_budget = 10;
  opts.ledger_counterfactual = false;
  opts.admission.tokens_per_s = 1000.0;
  opts.admission.burst = 100.0;
  service::TuningService svc(opts);
  const int h = svc.submit("rated", workload::make_workload("wordcount"), simcore::gib(1));
  std::uint64_t shed = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    service::ServeRequest req;
    req.arrival_s = static_cast<double>(i) * 0.0005;  // 2000 req/s offered
    shed += svc.serve(h, req).outcome == service::ServeOutcome::kShed ? 1 : 0;
  }
  const double frac = static_cast<double>(shed) / static_cast<double>(ops);
  std::printf("rate-limit probe: offered 2000/s against 1000/s + burst 100 over %zu ops: "
              "%.0f%% shed (expect ~50%%)\n",
              ops, frac * 100.0);
  g_report.record("\"mode\": \"ratelimit\", \"ops\": %zu, \"shed_fraction\": %.4f", ops, frac);
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string mode = "all";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") smoke = true;
    if (a == "--mode" && i + 1 < argc) mode = argv[i + 1];
    if (a == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }

  std::vector<ModeSpec> specs;
  if (smoke) {
    specs.push_back(spec_for("", true));
  } else if (mode == "all") {
    specs.push_back(spec_for("standard", false));
    specs.push_back(spec_for("stress", false));
  } else {
    specs.push_back(spec_for(mode, false));
  }

  section("serving-tier load: latency, throughput and overload counters");
  Table table({"mode", "tenants", "ops", "thr", "shards", "ops/s", "p50 us", "p99 us",
               "p99.9 us", "served", "degraded", "retrieved", "shed", "tunes"});
  for (const auto& m : specs) {
    std::printf("running %s: %zu tenants, %zu ops, %zu threads, %zu shards...\n",
                m.name.c_str(), m.tenants, m.ops, m.threads, m.shards);
    const auto r = run_mode(m);
    const std::uint64_t shed = r.shed_rate_limited + r.shed_saturated + r.shed_deadline;
    table.add_row({m.name, std::to_string(m.tenants), std::to_string(m.ops),
                   std::to_string(m.threads), std::to_string(m.shards), fmt("%.0f", r.ops_per_s),
                   fmt("%.1f", r.lat.p50), fmt("%.1f", r.lat.p99), fmt("%.1f", r.lat.p999),
                   std::to_string(r.served), std::to_string(r.degraded),
                   std::to_string(r.retrieved), std::to_string(shed),
                   std::to_string(r.tuning_sessions)});
    g_report.record(
        "\"mode\": \"%s\", \"tenants\": %zu, \"ops\": %zu, \"threads\": %zu, \"shards\": %zu, "
        "\"submit_s\": %.2f, \"wall_s\": %.2f, \"ops_per_s\": %.0f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, \"max_us\": %.1f, "
        "\"served\": %llu, \"degraded\": %llu, \"shed_rate_limited\": %llu, "
        "\"shed_saturated\": %llu, \"shed_deadline\": %llu, \"deadline_exceeded\": %llu, "
        "\"tuning_sessions\": %llu, \"retrieved\": %llu, \"retrieval_misses\": %llu, "
        "\"retrieval_fallbacks\": %llu, \"retrieval_epoch\": %llu, "
        "\"retrieval_entries\": %zu, \"peak_inflight\": %zu, "
        "\"kb_total\": %zu, \"kb_retained\": %zu",
        m.name.c_str(), m.tenants, m.ops, m.threads, m.shards, r.submit_s, r.wall_s, r.ops_per_s,
        r.lat.p50, r.lat.p99, r.lat.p999, r.lat.max,
        static_cast<unsigned long long>(r.served), static_cast<unsigned long long>(r.degraded),
        static_cast<unsigned long long>(r.shed_rate_limited),
        static_cast<unsigned long long>(r.shed_saturated),
        static_cast<unsigned long long>(r.shed_deadline),
        static_cast<unsigned long long>(r.deadline_exceeded),
        static_cast<unsigned long long>(r.tuning_sessions),
        static_cast<unsigned long long>(r.retrieved),
        static_cast<unsigned long long>(r.retrieval_misses),
        static_cast<unsigned long long>(r.retrieval_fallbacks),
        static_cast<unsigned long long>(r.retrieval_epoch), r.retrieval_entries,
        r.peak_inflight, r.kb_total, r.kb_retained);
  }
  table.print();

  run_rate_limit_probe(smoke ? 2000 : 50000);

  std::printf("\nreading: every operation completes — under stress the tier answers degraded\n"
              "(best-known-good config, no tuning session) or sheds with an explicit reason;\n"
              "nothing queues behind a busy shard, so p99.9 stays bounded while shed counters\n"
              "absorb the excess load.\n");
  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}

}  // namespace
}  // namespace stune::bench

int main(int argc, char** argv) { return stune::bench::run(argc, argv); }
