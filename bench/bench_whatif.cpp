// Reproduces the paper's Starfish discussion (§II-B): a What-If engine
// predicts job runtime under configuration B from a profile measured under
// configuration A — "finding good configurations hinges on the accuracy of
// the what-if engine itself; it showed less accuracy when tried with
// heterogeneous applications".
//
// We measure: (1) prediction error vs. distance from the profiled
// configuration, per workload; (2) rank correlation between predicted and
// actual runtimes (what a what-if-driven tuner really needs); (3) the
// payoff: a Starfish-style tuner (profile once, search predictions, validate
// the top few) against BO at the same *real-execution* budget.
#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "disc/whatif.hpp"
#include "simcore/stats.hpp"
#include "tuning/tuners.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr simcore::Bytes kInput = 16ULL << 30;

config::Configuration profile_config() {
  auto c = config::spark_space()->default_config();
  c.set(config::spark::kExecutorInstances, 16);
  c.set(config::spark::kExecutorCores, 4);
  c.set(config::spark::kExecutorMemoryGiB, 13.0);
  c.set(config::spark::kDefaultParallelism, 256);
  c.set(config::spark::kSerializer, 1.0);
  c.set(config::spark::kDriverMemoryGiB, 8.0);
  return c;
}

}  // namespace

int main() {
  const auto cluster = paper_testbed();
  const disc::WhatIfEngine engine(cluster);
  const auto space = config::spark_space();

  section("what-if prediction accuracy (paper §II-B, Starfish)");
  Table t({"workload", "near configs: MAPE", "random configs: MAPE", "rank corr (random)",
           "feasibility calls right"});

  for (const std::string name : {"wordcount", "sort", "pagerank", "bayes", "join"}) {
    const auto w = workload::make_workload(name);
    const disc::SparkSimulator sim(cluster);
    const auto base = profile_config();
    const auto profile = workload::execute(*w, kInput, sim, base);
    if (!profile.success) continue;
    const config::SparkConf profiled(base);

    simcore::Rng rng(11);
    auto evaluate_set = [&](bool near, double* mape, std::vector<double>* preds,
                            std::vector<double>* actuals, int* feasibility_right) {
      double err = 0.0;
      int n = 0;
      for (int i = 0; i < 60; ++i) {
        const auto c = near ? space->neighbor(base, 0.08, 2, rng) : space->sample(rng);
        const config::SparkConf target(c);
        const auto pred = engine.predict(profile, profiled, target, name == "join");
        const auto actual = workload::execute(*w, kInput, sim, c);
        const bool predicted_bad = !pred.feasible || pred.predicted_oom;
        if (feasibility_right != nullptr && (predicted_bad == !actual.success)) {
          ++*feasibility_right;
        }
        if (predicted_bad || !actual.success) continue;
        err += std::abs(pred.runtime - actual.runtime) / actual.runtime;
        if (preds != nullptr) {
          preds->push_back(pred.runtime);
          actuals->push_back(actual.runtime);
        }
        ++n;
      }
      *mape = n > 0 ? err / n : -1.0;
    };

    double near_mape = 0.0, far_mape = 0.0;
    std::vector<double> preds, actuals;
    int feasibility_right = 0;
    evaluate_set(true, &near_mape, nullptr, nullptr, nullptr);
    evaluate_set(false, &far_mape, &preds, &actuals, &feasibility_right);
    t.add_row({name, pct(near_mape), pct(far_mape),
               fmt("%.2f", simcore::pearson(preds, actuals)),
               fmt("%.0f/60", static_cast<double>(feasibility_right))});
  }
  t.print();
  std::printf(
      "\nreading: near the profiled configuration the what-if engine is decent; across\n"
      "heterogeneous random configurations its error grows — Starfish's documented\n"
      "weakness. Rank correlation stays useful, which is why a what-if tuner still works:\n");

  section("Starfish-style tuner vs BO at equal real-execution budgets (sort)");
  const auto w = workload::make_workload("sort");
  const disc::SparkSimulator sim(cluster);
  Table t2({"real executions", "starfish: profile+validate (s)", "bayesopt (s)", "random (s)"});
  for (const std::size_t budget : {4ul, 8ul, 16ul}) {
    // Starfish: 1 profiled run + (budget-1) validations of the what-if's
    // favourite candidates from a large predicted pool.
    const auto base = profile_config();
    const auto profile = workload::execute(*w, kInput, sim, base);
    const config::SparkConf profiled(base);
    simcore::Rng rng(5);
    std::vector<std::pair<double, config::Configuration>> scored;
    for (int i = 0; i < 1500; ++i) {
      const auto c = space->sample(rng);
      const auto pred = engine.predict(profile, profiled, config::SparkConf(c));
      if (!pred.feasible || pred.predicted_oom) continue;
      scored.emplace_back(pred.runtime, c);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    double starfish_best = profile.runtime;
    for (std::size_t i = 0; i + 1 < budget && i < scored.size(); ++i) {
      const auto r = workload::execute(*w, kInput, sim, scored[i].second);
      if (r.success) starfish_best = std::min(starfish_best, r.runtime);
    }

    tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
      const auto r = workload::execute(*w, kInput, sim, c);
      return {r.runtime, !r.success};
    };
    tuning::TuneOptions topts;
    topts.budget = budget;
    topts.seed = 5;
    const double bo = tuning::BayesOptTuner().tune(space, obj, topts).best_runtime;
    const double rnd = tuning::RandomSearchTuner().tune(space, obj, topts).best_runtime;
    t2.add_row({fmt("%.0f", static_cast<double>(budget)), fmt("%.1f", starfish_best),
                fmt("%.1f", bo), fmt("%.1f", rnd)});
  }
  t2.print();
  std::printf("\nreading: one profile plus model-ranked validations is extremely sample-\n"
              "efficient when the what-if model ranks well — and silently wrong when it\n"
              "doesn't, which is the paper's 'limited accuracy' caveat.\n");
  return 0;
}
