// Engine throughput benchmark: the event-driven, arena-backed execution
// core against a verbatim copy of the seed engine it replaced.
//
// Four paths over the same (plan, configuration), per workload x cluster
// size:
//
//   seed   - the original engine, transcribed verbatim below: index-order
//            stage walk, fresh std::vector and std::priority_queue per
//            stage, every lognormal/bernoulli drawn live;
//   wave   - SparkSimulator::run_wave_rescan(), the retained golden path
//            (same orchestration, reused buffers);
//   cold   - the event-driven path through a freshly constructed
//            TrialContext each run (topology + draws rebuilt every time);
//   warm   - the event-driven path through one persistent TrialContext,
//            the steady state of a tuning batch (topology, contention
//            samples and per-stage draws all replay from cache).
//
// Every cell first asserts the four paths' reports are bitwise identical -
// the refactor's contract - then reports executions/second and the
// warm-vs-seed speedup. `--smoke` shrinks the grid for CI;
// `--json BENCH_engine.json` writes the machine-readable report.
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

// Seed-baseline transcription dependencies (mirrors the original engine TU).
#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <utility>

#include "bench_util.hpp"
#include "cluster/audit.hpp"
#include "cluster/cluster.hpp"
#include "config/audit.hpp"
#include "config/spark_space.hpp"
#include "dag/audit.hpp"
#include "disc/audit.hpp"
#include "disc/engine.hpp"
#include "disc/metrics.hpp"
#include "disc/trial_context.hpp"
#include "simcore/check.hpp"
#include "simcore/rng.hpp"
#include "workload/workload.hpp"

namespace stune::bench {
namespace {

JsonReport g_report("bench_engine");

// ---------------------------------------------------------------------------
// The seed engine, verbatim (modulo member -> free function): the pre-
// refactor SparkSimulator::run() with its file-local helpers. This is the
// baseline the 10x target is measured against, and the third voice in the
// bitwise-parity assertion.
// ---------------------------------------------------------------------------
namespace seedeng {

using namespace stune::disc;  // the body is transcribed unqualified

constexpr double kGiBf = 1024.0 * 1024.0 * 1024.0;
constexpr double kMiBf = 1024.0 * 1024.0;

double flush_seek(const CostModel& cm, cluster::StorageKind kind) {
  switch (kind) {
    case cluster::StorageKind::kHdd: return cm.flush_seek_hdd;
    case cluster::StorageKind::kEbs: return cm.flush_seek_ebs;
    case cluster::StorageKind::kNvme: return cm.flush_seek_nvme;
  }
  return cm.flush_seek_ebs;
}

/// Greedy list scheduling of task durations onto `slots` identical slots.
/// Returns the makespan; `waves` gets ceil(tasks/slots).
double schedule_tasks(const std::vector<double>& durations, int slots, int* waves) {
  *waves = static_cast<int>(
      (durations.size() + static_cast<std::size_t>(slots) - 1) / static_cast<std::size_t>(slots));
  if (durations.empty()) return 0.0;
  if (static_cast<std::size_t>(slots) >= durations.size()) {
    return *std::max_element(durations.begin(), durations.end());
  }
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (int i = 0; i < slots; ++i) free_at.push(0.0);
  double makespan = 0.0;
  for (const double t : durations) {
    const double start = free_at.top();
    free_at.pop();
    const double finish = start + t;
    makespan = std::max(makespan, finish);
    free_at.push(finish);
  }
  return makespan;
}

/// GC time as a fraction of CPU time, given heap pressure in [0, 1.25].
double gc_overhead(const CostModel& cm, double pressure) {
  const double p = std::clamp(pressure, 0.0, 1.25);
  return cm.gc_base + cm.gc_coef * p * p * p * p / std::max(0.08, 1.3 - p);
}

struct SerializerCosts {
  double ser;    // seconds per raw byte, reference core
  double deser;
};

SerializerCosts serializer_costs(const CostModel& cm, config::Serializer s) {
  if (s == config::Serializer::kKryo) return {cm.kryo_ser, cm.kryo_deser};
  return {cm.java_ser, cm.java_deser};
}

disc::ExecutionReport run(const cluster::Cluster& cluster_, const disc::EngineOptions& options_,
                          const dag::PhysicalPlan& plan, const config::SparkConf& conf) {
  const CostModel& cm = options_.cost;
  ExecutionReport report;

  // When auditing is on, every report leaves through this gate; the
  // conservation laws are re-checked on failure reports too.
  const bool auditing = simcore::audit_enabled();
  auto finish = [auditing](ExecutionReport r) {
    r.finalize_aggregates();
    if (auditing) simcore::enforce_invariants(audit(r), "execution report");
    return r;
  };
  if (auditing) {
    simcore::enforce_invariants(dag::audit(plan), "physical plan");
    simcore::enforce_invariants(cluster::audit(cluster_), "cluster");
  }

  const Deployment dep = resolve_deployment(conf, cluster_);
  if (auditing) simcore::enforce_invariants(audit(dep, conf, cluster_), "deployment");
  if (!dep.viable) {
    // The cluster manager rejects the request after a short negotiation.
    report.failure_reason = dep.failure;
    report.runtime = 45.0;
    report.cost = cluster_.cost_of(report.runtime);
    return finish(std::move(report));
  }
  report.executors = dep.executors;
  report.total_slots = dep.total_slots;

  // -- memory & cache accounting -------------------------------------------------
  const auto codec = config::codec_profile(conf.codec, conf.compression_level);
  const auto ser = serializer_costs(cm, conf.serializer);
  const double heap = static_cast<double>(dep.heap_per_executor);

  const double cache_raw = static_cast<double>(plan.total_cache_bytes());
  const double cache_stored = cache_raw * (conf.rdd_compress ? codec.ratio : cm.deser_expansion);
  const double storage_capacity =
      static_cast<double>(dep.storage_target_per_executor) * dep.executors;
  double cache_hit = cache_raw > 0.0 ? std::min(1.0, storage_capacity / cache_stored) : 1.0;
  const double storage_used_pe =
      std::min(cache_stored / dep.executors, static_cast<double>(dep.storage_target_per_executor));
  const double exec_mem_pe = static_cast<double>(dep.unified_per_executor) - storage_used_pe;
  const double exec_mem_per_task = std::max(1.0, exec_mem_pe / dep.slots_per_executor);

  report.execution_memory_per_task = static_cast<Bytes>(exec_mem_per_task);
  report.storage_memory_total = static_cast<Bytes>(storage_capacity);
  report.cache_hit_fraction = cache_hit;

  // -- deterministic randomness -----------------------------------------------------
  simcore::Rng rng(simcore::hash_combine(
      options_.seed,
      simcore::hash_combine(simcore::hash_string(plan.workload), plan.input_bytes)));
  cluster::ContentionProcess contention(options_.contention, rng.fork("contention"));

  const int vms = cluster_.vm_count();
  const double core_speed = cluster_.type().core_speed;
  const int reducers = plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
  const double seek = flush_seek(cm, cluster_.type().storage);

  // -- injected faults ---------------------------------------------------------------
  // All fault logic is gated on `chaos`; with an inactive plan the run is
  // bitwise identical to a faultless build (no extra draws, same fleet).
  const simcore::FaultPlan& fplan = options_.faults;
  const bool chaos = fplan.active();
  const double vm_hazard = cluster_.revocation_hazard();
  int vms_alive = vms;
  int executors_alive = dep.executors;
  int slots_alive = dep.total_slots;
  const int abort_stage =
      chaos && fplan.transient_error()
          ? static_cast<int>(fplan.error_position() * static_cast<double>(plan.stages.size()))
          : -1;

  std::vector<double> stage_finish(plan.stages.size(), 0.0);
  double clock = cm.job_overhead;

  int stage_index = -1;
  for (const auto& s : plan.stages) {
    ++stage_index;
    if (stage_index == abort_stage) {
      // The cluster manager drops the stage submission (network partition,
      // control-plane hiccup): nothing the configuration did, so the
      // failure is blamed on the infrastructure.
      report.failure_reason = "transient infrastructure error during stage submission";
      report.infra_fault = true;
      report.runtime = clock + 2.0;
      report.cost = cluster_.cost_of(report.runtime);
      return finish(std::move(report));
    }

    StageMetrics m;
    m.stage_id = s.id;
    m.label = s.label;

    simcore::StageFaults sfaults;
    if (chaos) {
      sfaults = fplan.stage_faults(s.id, executors_alive, vms_alive, vm_hazard);
      if (sfaults.lost_vms > 0) {
        // Spot revocation: permanent for the rest of the run. The fleet
        // shrinks before this stage schedules; shuffle and cached blocks on
        // the reclaimed VMs are recovered below with the executor-loss work.
        m.lost_vms = std::min(sfaults.lost_vms, vms_alive);
        vms_alive -= m.lost_vms;
        if (vms_alive == 0) {
          report.failure_reason = "all spot capacity revoked mid-run";
          report.infra_fault = true;
          report.runtime = clock + 30.0;  // drain + surrender
          report.cost = cluster_.cost_of(report.runtime);
          report.stages.push_back(m);
          return finish(std::move(report));
        }
        executors_alive = std::max(1, std::min(executors_alive, dep.executors_per_vm * vms_alive));
        slots_alive = executors_alive * dep.slots_per_executor;
      }
      if (sfaults.lost_executors > 0) {
        // Executor processes crash mid-wave; the driver respawns them after
        // the stage, so the loss is transient but the in-flight work is not.
        m.lost_executors = std::min(sfaults.lost_executors, executors_alive);
      }
    }
    // Slots this stage actually schedules on: the surviving fleet minus the
    // executors that die mid-wave (at least one executor keeps going).
    const int sched_slots =
        std::max(dep.slots_per_executor,
                 slots_alive - m.lost_executors * dep.slots_per_executor);

    simcore::Rng srng = rng.fork(static_cast<std::uint64_t>(s.id) + 1);
    const auto cont = contention.next();
    const double speed = core_speed * cont.cpu_factor;

    // Partitions of this stage.
    int tasks;
    if (s.reads_shuffle()) {
      tasks = plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
    } else if (s.reads_source()) {
      tasks = static_cast<int>((s.source_read_bytes + cm.input_split - 1) / cm.input_split);
    } else {
      tasks = plan.is_sql ? conf.sql_shuffle_partitions : conf.default_parallelism;
    }
    tasks = std::max(1, tasks);
    m.tasks = tasks;
    m.input_bytes = s.total_input_bytes();
    m.shuffle_read_bytes = s.shuffle_read_bytes();
    m.shuffle_write_bytes = s.shuffle_write_bytes;
    m.cache_hit_fraction = s.materialized_parent_cached ? cache_hit : 0.0;

    // Bandwidth shares: tasks running concurrently on one VM divide its
    // disk and NIC.
    const int concurrent_per_vm = std::max(
        1, std::min(dep.slots_per_vm, static_cast<int>((tasks + vms_alive - 1) / vms_alive)));
    const double disk_share =
        cluster_.disk_bw_per_vm() * cont.disk_factor / concurrent_per_vm;
    const double net_share = cluster_.net_bw_per_vm() * cont.net_factor / concurrent_per_vm;

    // Stage-level start: parents done + driver bookkeeping.
    double start = clock;
    for (const int p : s.parent_stages) {
      start = std::max(start, stage_finish[static_cast<std::size_t>(p)]);
    }
    start += cm.stage_overhead + tasks * cm.per_task_driver;
    m.start = start;

    // Broadcast distribution before tasks launch.
    if (s.broadcast_bytes > 0) {
      const double b = static_cast<double>(s.broadcast_bytes);
      if (b * cm.deser_expansion > 0.7 * static_cast<double>(dep.driver_heap)) {
        report.failure_reason = "driver OOM while building broadcast variable";
        report.runtime = start + 5.0;
        report.cost = cluster_.cost_of(report.runtime);
        report.stages.push_back(m);
        return finish(std::move(report));
      }
      const double block = conf.broadcast_block_size_mib * kMiBf;
      const double blocks = std::max(1.0, b / block);
      const double vm_net = cluster_.net_bw_per_vm() * cont.net_factor;
      const double torrent_rounds = 1.0 + std::log2(std::max(2.0, static_cast<double>(vms_alive)));
      const double xfer = b / vm_net * torrent_rounds;
      const double control = blocks * cm.broadcast_block_overhead +
                             block / vm_net * cm.broadcast_pipeline_stall;
      start += xfer + control;
      m.net_seconds += xfer + control;
    }

    // -- per-task durations -------------------------------------------------------------
    const double remote_frac =
        cm.remote_read_base * std::exp(-conf.locality_wait_s / cm.locality_decay);
    const double inflight_mib = conf.reducer_max_inflight_mib;
    const double fetch_eff = inflight_mib / (inflight_mib + cm.fetch_overhead_mib);
    const double conn_eff =
        1.0 - cm.conn_penalty / static_cast<double>(conf.shuffle_connections_per_peer);
    const double net_eff = std::max(0.05, fetch_eff * conn_eff);

    const double src_per_task = static_cast<double>(s.source_read_bytes) / tasks;
    const double mat_per_task = static_cast<double>(s.materialized_read_bytes) / tasks;
    const double sread_per_task = static_cast<double>(s.shuffle_read_bytes()) / tasks;
    const double swrite_per_task = static_cast<double>(s.shuffle_write_bytes) / tasks;
    const double cpu_per_task = s.cpu_ref_seconds / tasks;
    const double records_per_task = s.records / tasks;
    const double save_per_task = (s.result_bytes > 0 && plan.action == dag::ActionKind::kSave)
                                     ? static_cast<double>(s.result_bytes) / tasks
                                     : 0.0;

    std::vector<double> durations(static_cast<std::size_t>(tasks));
    const double mu = -0.5 * s.skew_sigma * s.skew_sigma;
    int oom_tasks = 0;
    double oom_nominal_time = 0.0;

    for (int i = 0; i < tasks; ++i) {
      const double skew = srng.lognormal(mu, s.skew_sigma);
      double t_cpu = 0.0, t_disk = 0.0, t_net = 0.0, t_spill = 0.0, t_over = 0.0;

      // Pipeline compute.
      t_cpu += cpu_per_task * skew / speed;
      t_cpu += records_per_task * skew * cm.per_record_cpu / speed;

      // Source reads (with locality).
      if (src_per_task > 0.0) {
        const double b = src_per_task * skew;
        t_disk += b * (1.0 - remote_frac) / disk_share;
        t_net += b * remote_frac / net_share;
        t_over += conf.locality_wait_s * cm.locality_wait_cost;
      }

      // Materialized parent reads (cache hit / lineage recompute).
      if (mat_per_task > 0.0) {
        const double b = mat_per_task * skew;
        const double hit = s.materialized_parent_cached ? cache_hit : 0.0;
        const double b_hit = b * hit;
        const double b_miss = b - b_hit;
        t_cpu += b_hit / cm.cached_read_bw;
        if (conf.rdd_compress && b_hit > 0.0) {
          t_cpu += b_hit * (codec.decompress_cpb + ser.deser) / speed;
        }
        if (b_miss > 0.0 && cm.enable_recompute_penalty) {
          t_cpu += b_miss * (s.recompute_cpu_per_gib / kGiBf) / speed;
          t_disk += b_miss * 0.8 / disk_share;
        }
      }

      // Shuffle read + aggregation memory behaviour.
      double in_mem_ws = 0.0;
      if (sread_per_task > 0.0) {
        const double b = sread_per_task * skew;
        const double wire = b * (conf.shuffle_compress ? codec.ratio : 1.0);
        t_net += wire / (net_share * net_eff);
        if (conf.shuffle_compress) t_cpu += b * codec.decompress_cpb / speed;
        t_cpu += b * ser.deser / speed;

        const double ws = b * s.agg_memory_factor * cm.deser_expansion;
        if (cm.enable_oom && ws > exec_mem_per_task * cm.spill_oom_headroom) {
          ++oom_tasks;
        } else if (cm.enable_spill && ws > exec_mem_per_task) {
          const double spill_raw = (ws - exec_mem_per_task) / cm.deser_expansion;
          const double passes = 1.0 + cm.spill_pass_cost * std::log2(ws / exec_mem_per_task);
          const double spill_wire = spill_raw * (conf.shuffle_spill_compress ? codec.ratio : 1.0);
          double t = passes * spill_wire * 2.0 / disk_share;
          t += passes * spill_raw * (ser.ser + ser.deser) / speed;
          if (conf.shuffle_spill_compress) {
            t += passes * spill_raw * (codec.compress_cpb + codec.decompress_cpb) / speed;
          }
          t_spill += t;
          m.spilled_bytes += static_cast<Bytes>(spill_raw);
          in_mem_ws = exec_mem_per_task;
        } else {
          in_mem_ws = ws;
        }
      }

      // Shuffle write (sort, serialize, compress, flush).
      if (swrite_per_task > 0.0) {
        const double b = swrite_per_task * skew;
        if (reducers > conf.sort_bypass_merge_threshold) {
          t_cpu += b * cm.shuffle_sort_cpu / speed;
        }
        t_cpu += b * ser.ser / speed;
        double wire = b;
        if (conf.shuffle_compress) {
          t_cpu += b * codec.compress_cpb / speed;
          wire = b * codec.ratio;
        }
        t_disk += wire / disk_share;
        const double flushes = wire / (conf.shuffle_file_buffer_kib * 1024.0);
        t_disk += flushes * seek;
      }

      // Saving final output.
      if (save_per_task > 0.0) {
        const double b = save_per_task * skew;
        t_cpu += b * ser.ser / speed;
        t_disk += b / disk_share;
      }

      // GC pressure from cached data, aggregation buffers and broadcasts.
      double t_gc = 0.0;
      if (cm.enable_gc) {
        const double bcast = static_cast<double>(s.broadcast_bytes) * cm.deser_expansion;
        const double pressure =
            (storage_used_pe + in_mem_ws * dep.slots_per_executor + bcast + 0.10 * heap) / heap;
        double factor = gc_overhead(cm, pressure);
        if (conf.serializer == config::Serializer::kJava) factor *= cm.java_gc_penalty;
        t_gc = t_cpu * factor;
      }

      double total = t_cpu + t_gc + t_disk + t_net + t_spill + t_over + cm.task_overhead;

      // Environmental stragglers; speculation re-launches bound the damage.
      if (srng.bernoulli(cm.straggler_prob)) {
        double slow = cm.straggler_slowdown;
        if (conf.speculation) slow = std::min(slow, conf.speculation_multiplier + 0.3);
        total *= slow;
      }
      if (conf.speculation) total *= 1.0 + cm.speculation_tax;

      if (cm.enable_oom && sread_per_task > 0.0 &&
          sread_per_task * skew * s.agg_memory_factor * cm.deser_expansion >
              exec_mem_per_task * cm.spill_oom_headroom) {
        oom_nominal_time += total;
      }

      durations[static_cast<std::size_t>(i)] = total;
      m.cpu_seconds += t_cpu;
      m.gc_seconds += t_gc;
      m.disk_seconds += t_disk;
      m.net_seconds += t_net;
      m.spill_seconds += t_spill;
      m.overhead_seconds += t_over + cm.task_overhead;
    }

    if (oom_tasks > 0) {
      // Retries land on executors with the same memory budget: determinedly
      // fatal. The job burns the configured number of attempts first.
      m.failed_tasks = oom_tasks;
      const double mean_failing = oom_nominal_time / oom_tasks;
      const double elapsed =
          conf.task_max_failures * mean_failing * cm.oom_attempt_fraction;
      m.duration = elapsed;
      report.stages.push_back(m);
      report.failure_reason = "task OOM: aggregation working set exceeds execution memory";
      report.runtime = start + elapsed;
      report.cost = cluster_.cost_of(report.runtime);
      return finish(std::move(report));
    }

    // Injected straggler burst: a deterministic subset of tasks runs slower.
    // With speculation on, a backup attempt launches once the configured
    // quantile of the wave has finished, bounding the damage — an earlier
    // quantile gives a tighter bound (and is what the new knob tunes).
    if (chaos && sfaults.straggler_factor > 1.0) {
      simcore::Rng vrng = fplan.stage_stream(s.id, 0x76696374696dULL);  // victims
      const double cap = conf.speculation_multiplier +
                         conf.speculation_quantile * (sfaults.straggler_factor - 1.0);
      for (double& d : durations) {
        if (!vrng.bernoulli(fplan.profile().straggler_victim_fraction)) continue;
        if (conf.speculation && cap < sfaults.straggler_factor) {
          d *= cap;
          ++m.speculative_tasks;
        } else {
          d *= sfaults.straggler_factor;
        }
      }
    }

    int waves = 0;
    double makespan = schedule_tasks(durations, sched_slots, &waves);
    m.waves = waves;

    // Recover work lost to executor crashes and revoked VMs: lost in-flight
    // tasks reschedule onto the surviving slots and lost shuffle partitions
    // recompute through lineage. The recovery is charged as extra makespan
    // plus a resubmit round-trip, and the cached blocks that died with the
    // fleet degrade the hit rate of later stages.
    if (chaos && (m.lost_executors > 0 || m.lost_vms > 0)) {
      const int lost_units = m.lost_executors + m.lost_vms * dep.executors_per_vm;
      const double lost_fraction =
          std::min(1.0, static_cast<double>(lost_units) / static_cast<double>(dep.executors));
      double task_seconds = 0.0;
      for (const double t : durations) task_seconds += t;
      const double redo = task_seconds * lost_fraction * cm.failure_rerun_fraction / sched_slots;
      makespan += redo + cm.stage_overhead;
      m.recovery_seconds = redo * sched_slots;
      m.failed_tasks = std::min(
          m.tasks, m.failed_tasks +
                       static_cast<int>(lost_fraction * tasks * cm.failure_rerun_fraction));
      cache_hit *= 1.0 - lost_fraction;
      report.cache_hit_fraction = cache_hit;
    }

    // Executor failures mid-stage: lost in-flight work re-runs (lineage
    // makes this transparent but not free), and cached partitions held by
    // the dead executor degrade the hit rate of later stages until
    // recomputed.
    if (cm.executor_failure_rate > 0.0) {
      int died = 0;
      for (int ex = 0; ex < dep.executors; ++ex) {
        if (srng.bernoulli(cm.executor_failure_rate)) ++died;
      }
      if (died > 0) {
        const double lost_fraction =
            static_cast<double>(died) / static_cast<double>(dep.executors);
        double task_seconds = 0.0;
        for (const double t : durations) task_seconds += t;
        const double redo =
            task_seconds * lost_fraction * cm.failure_rerun_fraction / dep.total_slots;
        makespan += redo + cm.stage_overhead;  // resubmit + rerun
        m.overhead_seconds += redo * dep.total_slots;
        m.failed_tasks +=
            static_cast<int>(lost_fraction * tasks * cm.failure_rerun_fraction);
        // Cached blocks on the dead executors are gone; later stages pay
        // recompute until (in a real system) they are re-cached.
        cache_hit *= 1.0 - lost_fraction;
        report.cache_hit_fraction = cache_hit;
      }
    }

    // Collect action: ship results to the driver and hold them there.
    if (s.result_bytes > 0 && plan.action == dag::ActionKind::kCollect) {
      const double b = static_cast<double>(s.result_bytes);
      if (b * cm.deser_expansion > 0.7 * static_cast<double>(dep.driver_heap)) {
        report.failure_reason = "driver OOM while collecting results";
        report.runtime = start + makespan;
        report.cost = cluster_.cost_of(report.runtime);
        report.stages.push_back(m);
        return finish(std::move(report));
      }
      const double xfer = b / (cluster_.net_bw_per_vm() * cont.net_factor);
      makespan += xfer;
      m.net_seconds += xfer;
    }

    m.duration = makespan;
    stage_finish[static_cast<std::size_t>(s.id)] = start + makespan;
    clock = std::max(clock, start + makespan);
    if (auditing) simcore::enforce_invariants(audit_stage(m, sched_slots), "stage metrics");
    report.stages.push_back(m);
  }

  if (chaos && fplan.timeout()) {
    // The run hangs near the end (executors stop heartbeating); the driver
    // burns a multiple of the nominal runtime before giving up. Another
    // infrastructure fault: the configuration did its work.
    report.failure_reason = "trial timeout: executors stopped heartbeating";
    report.infra_fault = true;
    report.runtime = clock * fplan.profile().timeout_hang_factor;
    report.cost = cluster_.cost_of(report.runtime);
    return finish(std::move(report));
  }

  report.success = true;
  report.runtime = clock;
  report.cost = cluster_.cost_of(report.runtime);
  return finish(std::move(report));
}

}  // namespace seedeng

// Bitwise report equality: the refactor's contract is *identical* doubles,
// not close ones, so compare bit patterns rather than values (and catch
// -0.0 vs 0.0 or NaN-payload drift that == would hide).
bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool reports_identical(const disc::ExecutionReport& a, const disc::ExecutionReport& b) {
  if (a.success != b.success || a.failure_reason != b.failure_reason ||
      a.infra_fault != b.infra_fault || !bits_equal(a.runtime, b.runtime) ||
      !bits_equal(a.cost, b.cost) || a.executors != b.executors ||
      a.total_slots != b.total_slots ||
      a.execution_memory_per_task != b.execution_memory_per_task ||
      a.storage_memory_total != b.storage_memory_total ||
      !bits_equal(a.cache_hit_fraction, b.cache_hit_fraction) ||
      a.stages.size() != b.stages.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    const auto& x = a.stages[i];
    const auto& y = b.stages[i];
    if (x.stage_id != y.stage_id || x.label != y.label || x.tasks != y.tasks ||
        x.waves != y.waves || !bits_equal(x.start, y.start) ||
        !bits_equal(x.duration, y.duration) || !bits_equal(x.cpu_seconds, y.cpu_seconds) ||
        !bits_equal(x.gc_seconds, y.gc_seconds) || !bits_equal(x.disk_seconds, y.disk_seconds) ||
        !bits_equal(x.net_seconds, y.net_seconds) ||
        !bits_equal(x.spill_seconds, y.spill_seconds) ||
        !bits_equal(x.overhead_seconds, y.overhead_seconds) ||
        x.input_bytes != y.input_bytes || x.shuffle_read_bytes != y.shuffle_read_bytes ||
        x.shuffle_write_bytes != y.shuffle_write_bytes || x.spilled_bytes != y.spilled_bytes ||
        !bits_equal(x.cache_hit_fraction, y.cache_hit_fraction) ||
        x.failed_tasks != y.failed_tasks || x.lost_executors != y.lost_executors ||
        x.lost_vms != y.lost_vms || x.speculative_tasks != y.speculative_tasks ||
        !bits_equal(x.recovery_seconds, y.recovery_seconds)) {
      return false;
    }
  }
  return true;
}

template <typename Fn>
double execs_per_sec(std::size_t reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  const auto stop = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(reps) / secs;
}

struct Cell {
  std::string workload;
  int vms = 0;
  std::size_t stages = 0;
  int tasks = 0;
  double seed_eps = 0.0;
  double wave_eps = 0.0;
  double cold_eps = 0.0;
  double warm_eps = 0.0;
};

bool run_cell(const std::string& wl_name, int vms, simcore::Bytes input, std::size_t reps,
              Cell* out) {
  const auto wl = workload::make_workload(wl_name);
  const cluster::Cluster cluster = cluster::Cluster::from_spec({"m5.2xlarge", vms});
  disc::EngineOptions opts;
  const disc::SparkSimulator sim(cluster, opts);
  const config::SparkConf conf(config::spark_space()->default_config());
  const dag::PhysicalPlan plan = wl->plan(input, &conf);

  // Parity gate: seed == wave == event(cold ctx) == event(warm ctx),
  // bit for bit. A benchmark of a wrong answer is worthless.
  const auto r_seed = seedeng::run(cluster, opts, plan, conf);
  const auto r_wave = sim.run_wave_rescan(plan, conf);
  disc::TrialContext ctx;
  const auto r_cold = sim.run(plan, conf, ctx);
  const auto r_warm = sim.run(plan, conf, ctx);
  if (!reports_identical(r_seed, r_wave) || !reports_identical(r_seed, r_cold) ||
      !reports_identical(r_seed, r_warm)) {
    std::fprintf(stderr, "PARITY FAILURE: %s on %d VMs diverges from the seed engine\n",
                 wl_name.c_str(), vms);
    return false;
  }

  out->workload = wl_name;
  out->vms = vms;
  out->stages = r_seed.stages.size();
  out->tasks = 0;
  for (const auto& s : r_seed.stages) out->tasks += s.tasks;

  out->seed_eps = execs_per_sec(reps, [&] { (void)seedeng::run(cluster, opts, plan, conf); });
  out->wave_eps = execs_per_sec(reps, [&] { (void)sim.run_wave_rescan(plan, conf); });
  out->cold_eps = execs_per_sec(reps, [&] {
    disc::TrialContext fresh;
    (void)sim.run(plan, conf, fresh);
  });
  out->warm_eps = execs_per_sec(reps, [&] { (void)sim.run(plan, conf, ctx); });
  return true;
}

}  // namespace
}  // namespace stune::bench

int main(int argc, char** argv) {
  using namespace stune::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }

  const std::vector<std::string> workloads =
      smoke ? std::vector<std::string>{"scan", "join"}
            : std::vector<std::string>{"scan", "wordcount", "join", "pagerank"};
  const std::vector<int> cluster_sizes = smoke ? std::vector<int>{4} : std::vector<int>{4, 16, 64};
  const stune::simcore::Bytes input = smoke ? (1ULL << 30) : (8ULL << 30);
  const std::size_t reps = smoke ? 60 : 400;

  section("engine throughput: executions/second, seed engine vs event-driven");
  Table t({"workload", "vms", "stages", "tasks", "seed /s", "wave /s", "cold /s", "warm /s",
           "warm/seed"});
  bool all_ok = true;
  double best_speedup = 0.0;
  for (const auto& wl : workloads) {
    for (const int vms : cluster_sizes) {
      Cell c;
      if (!run_cell(wl, vms, input, reps, &c)) {
        all_ok = false;
        continue;
      }
      const double speedup = c.warm_eps / c.seed_eps;
      best_speedup = std::max(best_speedup, speedup);
      t.add_row({c.workload, fmt("%.0f", static_cast<double>(c.vms)),
                 fmt("%.0f", static_cast<double>(c.stages)),
                 fmt("%.0f", static_cast<double>(c.tasks)), fmt("%.0f", c.seed_eps),
                 fmt("%.0f", c.wave_eps), fmt("%.0f", c.cold_eps), fmt("%.0f", c.warm_eps),
                 fmt("%.2fx", speedup)});
      g_report.record(
          "\"workload\": \"%s\", \"vms\": %d, \"stages\": %zu, \"tasks\": %d, "
          "\"seed_eps\": %.1f, \"wave_eps\": %.1f, \"cold_eps\": %.1f, \"warm_eps\": %.1f, "
          "\"speedup_warm_vs_seed\": %.3f",
          c.workload.c_str(), c.vms, c.stages, c.tasks, c.seed_eps, c.wave_eps, c.cold_eps,
          c.warm_eps, speedup);
    }
  }
  t.print();

  std::printf(
      "\nreading: every cell passed the bitwise parity gate before timing. 'warm' is the\n"
      "steady state of a tuning batch - topology, contention samples and task draws all\n"
      "replay from the TrialContext - so warm/seed is the headline; 'cold' bounds the\n"
      "first-trial overhead of building those caches. best warm/seed: %.2fx\n",
      best_speedup);

  if (!json_path.empty()) g_report.write(json_path);
  return all_ok ? 0 : 1;
}
