// Reproduces paper Fig. 2: Spark's internal architecture — program ->
// driver -> RDD lineage -> DAG of stages -> task sets on executors. The
// engine *is* the reproduction; this bench makes the decomposition visible
// for the paper's running example (an iterative PageRank job) and prints
// the per-stage, per-resource timing the driver's UI would show.
#include "dag/plan.hpp"

#include <cstddef>

#include "bench_util.hpp"

int main() {
  using namespace stune;
  using namespace stune::bench;

  const auto cluster = paper_testbed();
  const workload::PageRank w(3);
  constexpr simcore::Bytes kInput = 8ULL << 30;

  section("Fig. 2 reproduction: driver-side job decomposition");

  // 1. Logical plan: the RDD lineage the user program implies.
  const auto logical = w.logical(nullptr);
  std::printf("RDD lineage (%zu RDDs):\n", logical.nodes().size());
  for (const auto& n : logical.nodes()) {
    std::printf("  #%-2d %-14s %-13s", n.id, n.name.c_str(), dag::to_string(n.kind).c_str());
    if (!n.parents.empty()) {
      std::printf(" <- {");
      for (std::size_t i = 0; i < n.parents.size(); ++i) {
        std::printf("%s%d", i ? "," : "", n.parents[i]);
      }
      std::printf("}");
    }
    if (n.cached) std::printf("  [cached]");
    std::printf("\n");
  }

  // 2. Physical plan: stages split at shuffle boundaries, volumes sized.
  const auto plan = w.plan(kInput);
  std::printf("\n%s", plan.describe().c_str());

  // 3. Execution: tasks scheduled onto executor slots.
  auto conf = config::spark_space()->default_config();
  conf.set(config::spark::kExecutorInstances, 16);
  conf.set(config::spark::kExecutorCores, 4);
  conf.set(config::spark::kExecutorMemoryGiB, 13.0);
  conf.set(config::spark::kDefaultParallelism, 256);
  conf.set(config::spark::kSerializer, 1.0);
  const disc::SparkSimulator sim(cluster);
  const auto r = sim.run(plan, conf);

  section("per-stage execution (driver timeline)");
  Table t({"stage", "tasks", "waves", "start (s)", "duration (s)", "cpu", "gc", "disk", "net",
           "spill", "shuffle r/w", "cache hit"});
  for (const auto& s : r.stages) {
    t.add_row({s.label, fmt("%.0f", s.tasks), fmt("%.0f", s.waves), fmt("%.1f", s.start),
               fmt("%.2f", s.duration), fmt("%.0fs", s.cpu_seconds), fmt("%.0fs", s.gc_seconds),
               fmt("%.0fs", s.disk_seconds), fmt("%.0fs", s.net_seconds),
               fmt("%.0fs", s.spill_seconds),
               simcore::format_bytes(s.shuffle_read_bytes) + "/" +
                   simcore::format_bytes(s.shuffle_write_bytes),
               pct(s.cache_hit_fraction)});
  }
  t.print();
  std::printf("\njob: %s\n", r.summary().c_str());
  std::printf("resource shares of task time: cpu %s, gc %s, disk %s, net %s, spill %s\n",
              pct(r.cpu_fraction()).c_str(), pct(r.gc_fraction()).c_str(),
              pct(r.disk_fraction()).c_str(), pct(r.net_fraction()).c_str(),
              pct(r.spill_fraction()).c_str());
  return 0;
}
