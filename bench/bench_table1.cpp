// Reproduces paper Table I: "Potential execution time saving of re-tuning
// configuration over evolving input sizes."
//
// Protocol (paper §IV-B): three HiBench workloads (Pagerank, Bayes
// classifier, Wordcount) at three evolving input sizes DS1 < DS2 < DS3 on
// an EMR cluster of four h1.4xlarge; for each (workload, size), run 100
// random configurations and keep the best. The table reports how much
// execution time re-tuning saves over re-using DS1's best configuration:
//   saving(DSk) = (runtime(best@DS1 at DSk) - runtime(best@DSk)) / former.
//
// Paper's numbers:   DS1->DS2: Pagerank 8%, Bayes 17%, Wordcount 0%
//                    DS1->DS3: Pagerank 56%, Bayes 25%, Wordcount 3%
// Expected shape here: savings grow with input size, largest for the
// iterative cache/shuffle-heavy Pagerank, negligible for Wordcount. A
// reused configuration that crashes at scale counts as 100% saving.
#include "bench_util.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace {

using namespace stune;
using namespace stune::bench;

JsonReport g_report("bench_table1");

constexpr int kRandomConfigs = 100;  // the paper's sample count

struct CellResult {
  double best = 0.0;
  double reused = 0.0;  // best@DS1 applied at this size
  bool reused_crashed = false;
  double saving() const {
    if (reused_crashed) return 1.0;
    return reused > 0.0 ? (reused - best) / reused : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }
  const int configs = smoke ? 10 : kRandomConfigs;

  const auto cluster = paper_testbed();
  const auto sizes = workload::evolving_sizes();

  section("Table I reproduction: potential saving of re-tuning over evolving input sizes");
  std::printf("protocol: %d random configurations per (workload, size), 3 seeds each,\n"
              "testbed %s (the paper's EMR cluster)\n\n",
              configs, cluster.spec().to_string().c_str());

  Table table({"Potential savings", "Pagerank", "Bayes Classifier", "Wordcount"});
  Table detail({"workload", "size", "best (s)", "reused best@DS1 (s)", "saving"});

  std::vector<std::string> ds2_row = {"DS1_best - DS2_best"};
  std::vector<std::string> ds3_row = {"DS1_best - DS3_best"};

  for (const std::string name : {"pagerank", "bayes", "wordcount"}) {
    const auto w = workload::make_workload(name);
    // Tune once per size (the paper's protocol).
    std::vector<BestOfRandom> tuned;
    for (const auto size : sizes) {
      tuned.push_back(best_of_random(*w, size, configs, 17, cluster));
    }
    for (std::size_t k = 1; k < sizes.size(); ++k) {
      CellResult cell;
      cell.best = tuned[k].runtime;
      const auto reused = averaged_runtime(*w, sizes[k], tuned[0].config, cluster);
      cell.reused = reused.runtime;
      cell.reused_crashed = !reused.success;
      const std::string saving =
          pct(cell.saving()) + (cell.reused_crashed ? " (reused config crashed)" : "");
      (k == 1 ? ds2_row : ds3_row).push_back(saving);
      detail.add_row({name, k == 1 ? "DS2" : "DS3", fmt("%.1f", cell.best),
                      cell.reused_crashed ? "crash" : fmt("%.1f", cell.reused), saving});
      g_report.record(
          "\"workload\": \"%s\", \"size\": \"%s\", \"configs\": %d, \"best_s\": %.2f, "
          "\"reused_ds1_s\": %.2f, \"reused_crashed\": %s, \"saving\": %.4f",
          name.c_str(), k == 1 ? "DS2" : "DS3", configs, cell.best, cell.reused,
          cell.reused_crashed ? "true" : "false", cell.saving());
    }
  }
  table.add_row(ds2_row);
  table.add_row(ds3_row);
  table.print();

  std::printf("\npaper Table I:      DS1-DS2:  8%% / 17%% / 0%%    DS1-DS3: 56%% / 25%% / 3%%\n");

  section("detail");
  detail.print();

  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}
