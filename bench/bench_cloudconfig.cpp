// Reproduces the paper's §II-A cloud-configuration stage in isolation:
// CherryPick-style Bayesian optimization over (instance family, type, VM
// count) against random search and the exhaustive optimum, per workload and
// objective. The claim under test: BO finds near-optimal cloud configs with
// ~10 trials where exhaustive search needs the whole catalog.
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

#include "service/cloud_tuner.hpp"
#include "tuning/tuners.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr simcore::Bytes kInput = 16ULL << 30;
constexpr int kMinVms = 2, kMaxVms = 10;

struct CloudEval {
  double runtime = 0.0;
  double cost = 0.0;
  bool failed = false;
};

CloudEval evaluate(const workload::Workload& w, const cluster::ClusterSpec& spec) {
  const auto cl = cluster::Cluster::from_spec(spec);
  const auto r = averaged_runtime(w, kInput, service::provider_auto_config(cl), cl, 1);
  return {r.runtime, cl.cost_of(r.runtime), !r.success};
}

double score(const CloudEval& e, service::CloudObjective obj) {
  switch (obj) {
    case service::CloudObjective::kRuntime: return e.runtime;
    case service::CloudObjective::kCost: return e.cost * 3600.0;
    case service::CloudObjective::kBalanced: return std::sqrt(e.runtime * e.cost * 3600.0);
  }
  return e.runtime;
}

}  // namespace

int main() {
  section("cloud configuration search (paper §II-A, CherryPick territory)");
  std::printf("space: %zu instance types x %d-%d VMs; every cluster runs the provider\n"
              "auto-config; input %s\n\n",
              cluster::instance_catalog().size(), kMinVms, kMaxVms,
              simcore::format_bytes(kInput).c_str());

  for (const std::string name : {"pagerank", "wordcount", "kmeans"}) {
    const auto w = workload::make_workload(name);

    for (const auto obj :
         {service::CloudObjective::kRuntime, service::CloudObjective::kCost}) {
      // Exhaustive optimum for reference.
      double best_score = std::numeric_limits<double>::infinity();
      cluster::ClusterSpec best_spec;
      int evaluated = 0;
      for (const auto& type : cluster::instance_catalog()) {
        for (int vms = kMinVms; vms <= kMaxVms; ++vms) {
          const auto e = evaluate(*w, {type.name, vms});
          ++evaluated;
          if (e.failed) continue;
          const double s = score(e, obj);
          if (s < best_score) {
            best_score = s;
            best_spec = {type.name, vms};
          }
        }
      }

      Table t({"strategy", "trials", "chosen cluster", "runtime (s)", "cost ($)",
               "score vs optimal"});
      const auto opt_eval = evaluate(*w, best_spec);
      t.add_row({"exhaustive", fmt("%.0f", static_cast<double>(evaluated)),
                 best_spec.to_string(), fmt("%.1f", opt_eval.runtime),
                 fmt("%.3f", opt_eval.cost), "1.00x"});

      for (const std::size_t budget : {6ul, 10ul, 16ul}) {
        for (const auto strategy : {service::CloudStrategy::kBayesOpt,
                                    service::CloudStrategy::kErnest,
                                    service::CloudStrategy::kRandom}) {
          service::CloudTunerOptions copts;
          copts.strategy = strategy;
          copts.budget = budget;
          copts.objective = obj;
          copts.min_vms = kMinVms;
          copts.max_vms = kMaxVms;
          copts.seed = 3;
          const auto choice = service::CloudTuner(copts).choose(*w, kInput);
          const auto eval = evaluate(*w, choice.spec);
          t.add_row({to_string(strategy),
                     fmt("%.0f", static_cast<double>(choice.trials)),
                     choice.spec.to_string(), fmt("%.1f", eval.runtime),
                     fmt("%.3f", eval.cost), fmt("%.2fx", score(eval, obj) / best_score)});
        }
      }
      section(name + " / objective=" + service::to_string(obj));
      t.print();
    }
  }
  return 0;
}
