// Reproduces the paper's §IV-D trade-off vision: "the tuning service could
// let users make trade-off decisions which impact things like cost: do I
// need the results quickly no matter the cost, or am I willing to wait?"
// and its rhetorical question "Who can tell me if scaling vertically,
// horizontally or both gives me the best benefit vs cost ratio?"
//
// We map the (runtime, cost) Pareto frontier per workload and answer the
// tenant-level queries the new SLO language implies: fastest under a
// budget, cheapest under a deadline.
#include "service/tradeoff.hpp"

#include <string>

#include "bench_util.hpp"

int main() {
  using namespace stune;
  using namespace stune::bench;

  constexpr simcore::Bytes kInput = 16ULL << 30;

  section("cost/runtime trade-off frontiers (paper §IV-D)");
  std::printf("explorer budget: 60 executions per workload (cloud diversity + DISC refinement)\n");

  for (const std::string name : {"pagerank", "wordcount", "bayes"}) {
    const auto w = workload::make_workload(name);
    service::TradeoffExplorerOptions opts;
    opts.budget = 60;
    const auto frontier = service::explore_tradeoff(*w, kInput, opts);

    section(name + ": Pareto frontier (" + fmt("%.0f", static_cast<double>(frontier.size())) +
            " non-dominated points)");
    Table t({"cluster", "runtime (s)", "cost per run ($)"});
    for (const auto& p : frontier.points()) {
      t.add_row({p.cluster.to_string(), fmt("%.1f", p.runtime), fmt("%.4f", p.cost)});
    }
    t.print();

    // The tenant-level queries.
    const auto& fastest = frontier.points().front();
    const auto& cheapest = frontier.points().back();
    std::printf("\n  'results ASAP, cost no object'  -> %-16s %.1fs  $%.4f\n",
                fastest.cluster.to_string().c_str(), fastest.runtime, fastest.cost);
    std::printf("  'cheapest possible'             -> %-16s %.1fs  $%.4f\n",
                cheapest.cluster.to_string().c_str(), cheapest.runtime, cheapest.cost);
    const double mid_budget = 0.5 * (fastest.cost + cheapest.cost);
    if (const auto mid = frontier.fastest_under_cost(mid_budget)) {
      std::printf("  'fastest under $%.4f'          -> %-16s %.1fs  $%.4f\n", mid_budget,
                  mid->cluster.to_string().c_str(), mid->runtime, mid->cost);
    }
    const double deadline = 2.0 * fastest.runtime;
    if (const auto dl = frontier.cheapest_under_runtime(deadline)) {
      std::printf("  'cheapest within %.0fs'          -> %-16s %.1fs  $%.4f\n", deadline,
                  dl->cluster.to_string().c_str(), dl->runtime, dl->cost);
    }
    std::printf("\n");
  }
  std::printf(
      "reading: the frontier spans several x in both dimensions, and its shape is\n"
      "workload-specific — exactly why the paper says the vertical-vs-horizontal question\n"
      "has no static answer and should be resolved by the provider per workload.\n");
  return 0;
}
