// Scaling behaviour of the workload suite — the curves every model-based
// cloud tuner (Ernest, §II-A) implicitly assumes it can fit:
//   runtime vs. input size   (fixed cluster, provider auto-config)
//   runtime vs. cluster size (fixed input), with the Ernest basis's fit
//   quality per workload — quantifying when analytic extrapolation is safe
//   (clean scale-out) and when it is not (cache cliffs, §II-A's criticism).
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "model/linear.hpp"
#include "service/cloud_tuner.hpp"
#include "simcore/stats.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

double runtime_on(const workload::Workload& w, const cluster::ClusterSpec& spec,
                  simcore::Bytes input) {
  const auto cl = cluster::Cluster::from_spec(spec);
  const auto r = averaged_runtime(w, input, service::provider_auto_config(cl), cl, 2);
  return r.success ? r.runtime : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }
  JsonReport report("bench_scaling");

  section("runtime vs input size (4x h1.4xlarge, provider auto-config)");
  {
    Table t({"workload", "4 GiB", "8 GiB", "16 GiB", "32 GiB", "64 GiB", "64/4 ratio"});
    for (const auto& name : workload::workload_names()) {
      const auto w = workload::make_workload(name);
      std::vector<std::string> row = {name};
      double first = 0.0, last = 0.0;
      for (const simcore::Bytes size :
           {4ULL << 30, 8ULL << 30, 16ULL << 30, 32ULL << 30, 64ULL << 30}) {
        const double rt = runtime_on(*w, {"h1.4xlarge", 4}, size);
        row.push_back(rt < 0 ? "crash" : fmt("%.1f", rt));
        report.record("\"axis\": \"input\", \"workload\": \"%s\", \"gib\": %llu, "
                      "\"runtime_s\": %.2f",
                      name.c_str(), static_cast<unsigned long long>(size >> 30), rt);
        if (size == 4ULL << 30) first = rt;
        if (size == 64ULL << 30) last = rt;
      }
      row.push_back(first > 0 && last > 0 ? fmt("%.1fx", last / first) : "-");
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nreading: a 16x input costs well under 16x runtime for scan-dominated jobs\n"
                "(single-wave slack absorbs growth) and over 16x for cache-bound ones (the\n"
                "working set stops fitting) — the §IV-B re-tuning motive in curve form.\n");
  }

  section("runtime vs cluster size (m5.2xlarge, 16 GiB) and the Ernest fit");
  {
    const std::vector<int> vms = {2, 3, 4, 6, 8, 12, 16};
    Table t({"workload", "2", "3", "4", "6", "8", "12", "16",
             "Ernest fit error (trained on 2-4)"});
    for (const std::string name : {"kmeans", "wordcount", "pagerank", "sort"}) {
      const auto w = workload::make_workload(name);
      std::vector<double> runtimes;
      std::vector<std::string> row = {name};
      for (const int m : vms) {
        const double rt = runtime_on(*w, {"m5.2xlarge", m}, 16ULL << 30);
        runtimes.push_back(rt);
        row.push_back(rt < 0 ? "crash" : fmt("%.1f", rt));
        report.record("\"axis\": \"cluster\", \"workload\": \"%s\", \"vms\": %d, "
                      "\"runtime_s\": %.2f",
                      name.c_str(), m, rt);
      }
      // Ernest: train on the small clusters, extrapolate to the big ones.
      model::ErnestModel ernest;
      bool usable = true;
      for (std::size_t i = 0; i < 3; ++i) {
        if (runtimes[i] < 0) usable = false;
        ernest.add_observation(16.0, vms[i], runtimes[i]);
      }
      if (usable) {
        ernest.fit();
        simcore::RunningStats err;
        for (std::size_t i = 3; i < vms.size(); ++i) {
          if (runtimes[i] < 0) continue;
          err.add(std::abs(ernest.predict(16.0, vms[i]) - runtimes[i]) / runtimes[i]);
        }
        row.push_back(pct(err.mean()));
        report.record("\"axis\": \"ernest_fit\", \"workload\": \"%s\", \"mean_error\": %.4f",
                      name.c_str(), err.mean());
      } else {
        row.push_back("profile crashed");
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\nreading: the Ernest basis extrapolates compute-bound kmeans within a few\n"
                "percent but misses where memory effects bend the curve — quantifying §II-A's\n"
                "'poor adaptivity to other types of workloads'.\n");
  }
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
