// Reproduces the paper's §IV-D proposal: "jobs should run within X% of the
// optimal runtime" as a *tuning-effectiveness SLO*, with the optimum
// operationalized as the best known runtime of similar workloads in the
// provider's knowledge base (the paper's own suggested substitute).
//
// We run the seamless service over a multi-tenant trace (every workload in
// the suite, several tenants, recurring runs) and report the SLO attainment
// distribution at several X, plus the provider-side bookkeeping the new SLO
// needs (references available, mean excess).
#include "service/tuning_service.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace stune;
  using namespace stune::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }
  JsonReport report("bench_slo");

  const int kRunsPerTenant = smoke ? 4 : 15;

  section("tuning-effectiveness SLO over a multi-tenant trace (paper §IV-D, §V-C)");

  service::ServiceOptions opts;
  opts.tuning_budget = 25;
  opts.cloud.budget = 8;
  opts.ledger_baseline = service::ServiceOptions::Baseline::kSparkDefault;
  service::TuningService svc(opts);

  struct Tenant {
    std::string name;
    std::string workload;
    int handle = 0;
  };
  std::vector<Tenant> tenants;
  int idx = 0;
  for (const auto& w : workload::workload_names()) {
    tenants.push_back({"tenant-" + std::to_string(idx++), w, 0});
  }
  for (auto& t : tenants) {
    t.handle = svc.submit(t.name, workload::make_workload(t.workload), 8ULL << 30);
  }
  for (int run = 0; run < kRunsPerTenant; ++run) {
    for (auto& t : tenants) svc.run_once(t.handle);
  }

  Table table({"tenant workload", "runs", "mean excess over best-known", "within 10%",
               "within 25%", "within 50%", "savings vs untuned ($)"});
  double overall10 = 0.0, overall25 = 0.0, overall50 = 0.0;
  for (const auto& t : tenants) {
    const auto& tracker = svc.slo_tracker(t.handle);
    auto attainment_at = [&](double x) {
      std::size_t referenced = 0, ok = 0;
      for (const auto& e : tracker.evaluations()) {
        if (!e.had_reference) continue;
        ++referenced;
        ok += (e.excess_fraction <= x) ? 1 : 0;
      }
      return referenced ? static_cast<double>(ok) / static_cast<double>(referenced) : 1.0;
    };
    const double a10 = attainment_at(0.10), a25 = attainment_at(0.25), a50 = attainment_at(0.50);
    overall10 += a10 / static_cast<double>(tenants.size());
    overall25 += a25 / static_cast<double>(tenants.size());
    overall50 += a50 / static_cast<double>(tenants.size());
    table.add_row({t.workload, fmt("%.0f", static_cast<double>(tracker.runs())),
                   pct(tracker.mean_excess_fraction()), pct(a10), pct(a25), pct(a50),
                   fmt("%.2f", svc.ledger(t.handle).cumulative_savings())});
    report.record("\"workload\": \"%s\", \"runs\": %zu, \"mean_excess\": %.4f, "
                  "\"within_10\": %.4f, \"within_25\": %.4f, \"within_50\": %.4f, "
                  "\"savings\": %.2f",
                  t.workload.c_str(), tracker.runs(), tracker.mean_excess_fraction(), a10, a25,
                  a50, svc.ledger(t.handle).cumulative_savings());
  }
  table.print();

  std::printf("\nfleet attainment: within 10%%: %s   within 25%%: %s   within 50%%: %s\n",
              pct(overall10).c_str(), pct(overall25).c_str(), pct(overall50).c_str());
  report.record("\"workload\": \"fleet\", \"within_10\": %.4f, \"within_25\": %.4f, "
                "\"within_50\": %.4f",
                overall10, overall25, overall50);
  std::printf("knowledge base: %zu records across %zu tenants\n", svc.knowledge_base().size(),
              svc.knowledge_base().tenant_count());
  std::printf(
      "\nreading: per the paper, the achievable X depends on knowing the optimum — here the\n"
      "reference is the luckiest similar run ever seen, so tight X is noisy by construction;\n"
      "the distribution above is exactly the measurement a provider would publish.\n");
  if (!json_path.empty()) report.write(json_path);
  return 0;
}
