// Reproduces the paper's §V-A/§V-B transfer argument: tuning knowledge
// gathered on one workload accelerates tuning a *similar* one ("inject the
// acquired knowledge from one tuning workload to a similar one ... faster
// convergence of the tuning process"), while transferring from a
// *dissimilar* workload risks negative transfer unless guarded.
//
// Protocol: a donor workload is tuned with a generous budget; a recipient
// is then tuned with small budgets, cold vs. warm-started via the
// characterization-similarity pipeline. We report best-found runtime per
// budget and the executions needed to get within 10% of the known best.
#include "transfer/aroma.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"
#include "tuning/tuners.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

JsonReport g_report("bench_transfer");

tuning::Objective make_objective(const workload::Workload& w, simcore::Bytes input,
                                 const cluster::Cluster& cl) {
  return [&w, input, &cl](const config::Configuration& c) -> tuning::EvalOutcome {
    const auto r = averaged_runtime(w, input, c, cl, 1);
    return {r.runtime, !r.success};
  };
}

/// Donor tuning history -> DonorObservation list with the donor's signature.
std::vector<transfer::DonorObservation> donate(const tuning::TuneResult& result,
                                               const transfer::Signature& sig) {
  std::vector<transfer::DonorObservation> donors;
  for (const auto& o : result.history) {
    donors.push_back(transfer::DonorObservation{o, sig});
  }
  return donors;
}

transfer::Signature signature_of(const workload::Workload& w, simcore::Bytes input,
                                 const cluster::Cluster& cl,
                                 const config::Configuration& conf) {
  const disc::SparkSimulator sim(cl);
  return transfer::characterize(workload::execute(w, input, sim, conf));
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }
  const std::size_t donor_budget = smoke ? 15 : 60;
  const std::vector<std::size_t> budgets = smoke ? std::vector<std::size_t>{5}
                                                 : std::vector<std::size_t>{5, 10, 20};
  const std::uint64_t seeds = smoke ? 1 : 3;

  const auto cluster = paper_testbed();
  const auto space = config::spark_space();

  // Donor: sort at 4 GiB, tuned generously. Recipients: the same workload
  // at 4x the size (the evolving-input case) and terasort (a sibling).
  const auto donor_w = workload::make_workload("sort");
  const simcore::Bytes donor_size = 4ULL << 30;
  tuning::TuneOptions donor_opts;
  donor_opts.budget = donor_budget;
  donor_opts.seed = 5;
  auto donor_obj = make_objective(*donor_w, donor_size, cluster);
  const auto donor_result = tuning::BayesOptTuner().tune(space, donor_obj, donor_opts);
  const auto donor_sig = signature_of(*donor_w, donor_size, cluster, donor_result.best);

  // A dissimilar donor for the negative-transfer arm: kmeans history.
  const auto far_w = workload::make_workload("kmeans");
  tuning::TuneOptions far_opts;
  far_opts.budget = donor_budget;
  far_opts.seed = 6;
  auto far_obj = make_objective(*far_w, donor_size, cluster);
  const auto far_result = tuning::BayesOptTuner().tune(space, far_obj, far_opts);
  const auto far_sig = signature_of(*far_w, donor_size, cluster, far_result.best);

  section("knowledge transfer across workloads (paper §V-B)");
  std::printf("donor: sort @ 4 GiB tuned with %zu executions (best %.1fs)\n\n",
              donor_budget, donor_result.best_runtime);

  for (const std::string recipient_name : {"sort", "terasort"}) {
    const auto rec_w = workload::make_workload(recipient_name);
    const simcore::Bytes rec_size = 16ULL << 30;
    const auto rec_sig = signature_of(*rec_w, rec_size, cluster,
                                      space->default_config());

    std::printf("recipient: %s @ %s   similarity(donor)=%.2f similarity(kmeans)=%.2f\n",
                recipient_name.c_str(), simcore::format_bytes(rec_size).c_str(),
                transfer::similarity(rec_sig, donor_sig),
                transfer::similarity(rec_sig, far_sig));

    // AROMA: cluster the pooled history (both donors) and suggest from the
    // recipient's cluster — §II-B's "cluster the executed jobs ... then
    // leverage [a model] for tuning".
    transfer::AromaAdvisor aroma(transfer::AromaAdvisor::Options{.clusters = 2,
                                                                 .suggestions = 5,
                                                                 .seed = 13});
    {
      std::vector<transfer::DonorObservation> pooled = donate(donor_result, donor_sig);
      const auto far_pool = donate(far_result, far_sig);
      pooled.insert(pooled.end(), far_pool.begin(), far_pool.end());
      aroma.fit(pooled);
    }

    Table t({"budget", "cold BO (s)", "warm BO, similar donor (s)",
             "warm, dissimilar donor + guard (s)", "warm, dissimilar, NO guard (s)",
             "warm, AROMA clusters (s)"});
    for (const std::size_t budget : budgets) {
      const double div = static_cast<double>(seeds);
      double cold = 0.0, warm = 0.0, guarded = 0.0, unguarded = 0.0, aroma_warm = 0.0;
      for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
        auto obj = make_objective(*rec_w, rec_size, cluster);
        tuning::TuneOptions base;
        base.budget = budget;
        base.seed = seed;

        cold += tuning::BayesOptTuner().tune(space, obj, base).best_runtime / div;

        auto warm_opts = base;
        warm_opts.warm_start =
            transfer::select_warm_start(rec_sig, donate(donor_result, donor_sig));
        warm += tuning::BayesOptTuner().tune(space, obj, warm_opts).best_runtime / div;

        auto guard_opts = base;
        guard_opts.warm_start =
            transfer::select_warm_start(rec_sig, donate(far_result, far_sig));
        guarded += tuning::BayesOptTuner().tune(space, obj, guard_opts).best_runtime / div;

        auto no_guard_opts = base;
        transfer::TransferPolicy promiscuous;
        promiscuous.min_similarity = 0.0;  // ablation: accept any donor
        no_guard_opts.warm_start =
            transfer::select_warm_start(rec_sig, donate(far_result, far_sig), promiscuous);
        unguarded += tuning::BayesOptTuner().tune(space, obj, no_guard_opts).best_runtime / div;

        auto aroma_opts = base;
        aroma_opts.warm_start = aroma.suggest(rec_sig);
        aroma_warm += tuning::BayesOptTuner().tune(space, obj, aroma_opts).best_runtime / div;
      }
      t.add_row({fmt("%.0f", static_cast<double>(budget)), fmt("%.1f", cold),
                 fmt("%.1f", warm), fmt("%.1f", guarded), fmt("%.1f", unguarded),
                 fmt("%.1f", aroma_warm)});
      g_report.record(
          "\"recipient\": \"%s\", \"budget\": %zu, \"seeds\": %llu, "
          "\"similarity_donor\": %.4f, \"similarity_dissimilar\": %.4f, "
          "\"cold_s\": %.2f, \"warm_similar_s\": %.2f, \"warm_dissimilar_guarded_s\": %.2f, "
          "\"warm_dissimilar_unguarded_s\": %.2f, \"aroma_s\": %.2f",
          recipient_name.c_str(), budget, static_cast<unsigned long long>(seeds),
          transfer::similarity(rec_sig, donor_sig), transfer::similarity(rec_sig, far_sig),
          cold, warm, guarded, unguarded, aroma_warm);
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "reading: a similar donor makes tiny budgets competitive (faster convergence). The\n"
      "similarity guard turns a dissimilar donor into a no-op; without it, transfer\n"
      "gambles on the donor's knobs generalizing — sometimes a mild win (general resource\n"
      "knobs do transfer), but unbounded downside on truly mismatched workloads.\n");

  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}
