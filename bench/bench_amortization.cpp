// Reproduces the paper's §IV-C cost-amortization argument: "the BestConfig
// system requires 500 execution samples to identify a good Spark
// configuration, and this would consume more resources than the 90 'normal'
// runs of our exemplar workload during a 3 months period."
//
// We run the seamless service on a recurring workload and track its ledger:
// tuning spend (cloud search + DISC search) vs. cumulative savings against
// an untuned user, reporting the break-even production run for several
// tuning budgets — including a BestConfig-style 500-sample budget that
// indeed fails to amortize within the 90-run lifetime.
#include "service/tuning_service.hpp"

#include <cstddef>
#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr std::size_t kLifetimeRuns = 90;  // the paper's 3-month exemplar

}  // namespace

int main() {
  section("tuning-cost amortization over a 90-run workload lifetime (paper §IV-C)");
  std::printf("workload pagerank @ %s, recurring %zu times; baseline = untuned defaults\n\n",
              simcore::format_bytes(16ULL << 30).c_str(), kLifetimeRuns);

  Table t({"tuning strategy", "tuning runs", "tuning cost ($)", "savings after 90 runs ($)",
           "break-even run", "amortized?"});

  struct Scenario {
    std::string label;
    std::string tuner;
    std::size_t budget;
  };
  const std::vector<Scenario> scenarios = {
      {"provider BO (CherryPick-style), budget 15", "bayesopt", 15},
      {"provider BO, budget 30", "bayesopt", 30},
      {"random search, budget 100 (Table I protocol)", "random", 100},
      {"BestConfig-style, budget 500", "bestconfig", 500},
  };

  auto run_scenario = [&](const Scenario& s, service::ServiceOptions::Baseline baseline,
                          Table& out) {
    service::ServiceOptions opts;
    opts.tuner = s.tuner;
    opts.tuning_budget = s.budget;
    opts.cloud.budget = 8;
    opts.ledger_baseline = baseline;
    service::TuningService svc(opts);
    const int h = svc.submit("acme", workload::make_workload("pagerank"), 16ULL << 30);
    for (std::size_t i = 0; i < kLifetimeRuns; ++i) svc.run_once(h);
    const auto& ledger = svc.ledger(h);
    const auto be = ledger.break_even_run();
    out.add_row({s.label, fmt("%.0f", static_cast<double>(ledger.tuning_runs())),
                 fmt("%.2f", ledger.tuning_cost()), fmt("%.2f", ledger.cumulative_savings()),
                 be ? fmt("%.0f", static_cast<double>(*be)) : "never (within lifetime)",
                 ledger.amortized() ? "yes" : "no"});
  };

  std::printf("baseline: raw framework defaults (what an untuned novice runs)\n\n");
  for (const auto& s : scenarios) {
    run_scenario(s, service::ServiceOptions::Baseline::kSparkDefault, t);
  }
  t.print();

  // The paper's sharper point (§IV-C): when the counterfactual is already
  // reasonable — the user has a sane heuristic config and tuning chases the
  // last tens of percent — a 500-sample search cannot pay for itself within
  // the workload's lifetime.
  std::printf("\nbaseline: provider auto-config (a competent user; tuning chases the last %%)\n\n");
  Table t2({"tuning strategy", "tuning runs", "tuning cost ($)", "savings after 90 runs ($)",
            "break-even run", "amortized?"});
  for (const auto& s : scenarios) {
    run_scenario(s, service::ServiceOptions::Baseline::kProviderAuto, t2);
  }
  t2.print();

  std::printf(
      "\nreading: against a novice baseline any tuning amortizes quickly, but exploration\n"
      "breadth still costs real break-even time (run 3 vs run 43). Against a competent\n"
      "baseline, heavyweight 500-sample searches (the paper's BestConfig example) cannot\n"
      "repay themselves within the lifetime — the argument for offloading tuning to the\n"
      "cloud provider, who amortizes exploration across tenants.\n");
  return 0;
}
