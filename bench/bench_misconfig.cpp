// Reproduces the paper's §I/§III-B misconfiguration claims:
//   "plausible but under-provisioned cluster setups can slow the analytics
//    pipelines by up to 12X [CherryPick] while suboptimal framework
//    configurations can lead to 89X performance degradation [DAC]"
// and "crashes when choosing incorrectly" (§IV).
//
// For each workload we sample many framework configurations on the paper's
// testbed and report the spread: best, default, median, worst and crash
// rate. A second table ablates the engine mechanisms (spill, GC, OOM) that
// DESIGN.md credits for the heavy tail, showing each one's contribution.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr int kSamples = 150;
constexpr simcore::Bytes kInput = 16ULL << 30;

struct Spread {
  double best = 0.0, median = 0.0, worst = 0.0, def = 0.0;
  int crashes = 0;
  bool default_crashed = false;
};

Spread measure(const workload::Workload& w, const cluster::Cluster& cl,
               const disc::CostModel& cm) {
  const auto space = config::spark_space();
  simcore::Rng rng(23);
  std::vector<double> runtimes;
  Spread s;
  for (int i = 0; i < kSamples; ++i) {
    const auto r = averaged_runtime(w, kInput, space->sample(rng), cl, 1, cm);
    if (r.success) {
      runtimes.push_back(r.runtime);
    } else {
      ++s.crashes;
    }
  }
  std::sort(runtimes.begin(), runtimes.end());
  s.best = runtimes.front();
  s.median = runtimes[runtimes.size() / 2];
  s.worst = runtimes.back();
  const auto def = averaged_runtime(w, kInput, space->default_config(), cl, 1, cm);
  s.def = def.runtime;
  s.default_crashed = !def.success;
  return s;
}

}  // namespace

int main() {
  const auto cluster = paper_testbed();

  section("misconfiguration cost across the workload suite");
  std::printf("%d random framework configurations per workload, input %s, testbed %s\n\n",
              kSamples, simcore::format_bytes(kInput).c_str(),
              cluster.spec().to_string().c_str());

  Table t({"workload", "best (s)", "default (s)", "default/best", "median/best", "worst/best",
           "crash rate"});
  for (const auto& name : workload::workload_names()) {
    const auto w = workload::make_workload(name);
    const auto s = measure(*w, cluster, disc::CostModel{});
    t.add_row({name, fmt("%.1f", s.best),
               s.default_crashed ? "crash" : fmt("%.1f", s.def),
               s.default_crashed ? "-" : fmt("%.1fx", s.def / s.best),
               fmt("%.1fx", s.median / s.best), fmt("%.1fx", s.worst / s.best),
               pct(static_cast<double>(s.crashes) / kSamples)});
  }
  t.print();
  std::printf("\npaper claims: default/suboptimal configs up to 89x slower (DAC), cluster\n"
              "misconfiguration up to 12x (CherryPick); misconfigured jobs may crash.\n");

  section("ablation: which engine mechanisms create the heavy tail (pagerank)");
  const auto w = workload::make_workload("pagerank");
  Table a({"engine variant", "default/best", "worst/best", "crash rate"});
  struct Variant {
    const char* name;
    disc::CostModel cm;
  };
  disc::CostModel no_spill;
  no_spill.enable_spill = false;
  disc::CostModel no_gc;
  no_gc.enable_gc = false;
  disc::CostModel no_oom;
  no_oom.enable_oom = false;
  disc::CostModel none = no_oom;
  none.enable_spill = false;
  none.enable_gc = false;
  for (const auto& v : {Variant{"full model", {}}, Variant{"no spill", no_spill},
                        Variant{"no gc", no_gc}, Variant{"no oom", no_oom},
                        Variant{"none of the three", none}}) {
    const auto s = measure(*w, cluster, v.cm);
    a.add_row({v.name, s.default_crashed ? "crash" : fmt("%.1fx", s.def / s.best),
               fmt("%.1fx", s.worst / s.best),
               pct(static_cast<double>(s.crashes) / kSamples)});
  }
  a.print();
  return 0;
}
