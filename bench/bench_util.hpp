// Shared helpers for the reproduction benchmarks: the paper's testbed, the
// multi-seed execution protocol and simple table rendering.
#pragma once

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "simcore/rng.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::bench {

/// The paper's Table I testbed: an EMR cluster of four h1.4xlarge.
inline cluster::Cluster paper_testbed() {
  return cluster::Cluster::from_spec({"h1.4xlarge", 4});
}

struct AvgOutcome {
  double runtime = 0.0;
  bool success = true;
};

/// Mean runtime over `seeds` engine seeds (environmental run-to-run noise);
/// marked failed if any seed fails. This mirrors measuring a config with a
/// few repetitions on a real cluster.
inline AvgOutcome averaged_runtime(const workload::Workload& w, simcore::Bytes size,
                                   const config::Configuration& c,
                                   const cluster::Cluster& cluster, int seeds = 3,
                                   const disc::CostModel& cm = {}) {
  AvgOutcome out;
  for (int s = 0; s < seeds; ++s) {
    disc::EngineOptions opts;
    opts.seed = 42 + static_cast<std::uint64_t>(s);
    opts.cost = cm;
    const disc::SparkSimulator sim(cluster, opts);
    const auto r = workload::execute(w, size, sim, c);
    out.runtime += r.runtime / seeds;
    out.success &= r.success;
  }
  return out;
}

struct BestOfRandom {
  double runtime = std::numeric_limits<double>::infinity();
  config::Configuration config;
  int failures = 0;
};

/// The paper's Table I protocol: best configuration among n random samples.
inline BestOfRandom best_of_random(const workload::Workload& w, simcore::Bytes size, int n,
                                   std::uint64_t seed, const cluster::Cluster& cluster,
                                   int seeds_per_config = 3) {
  const auto space = config::spark_space();
  simcore::Rng rng(seed);
  BestOfRandom best;
  best.config = space->default_config();
  for (int i = 0; i < n; ++i) {
    const auto c = space->sample(rng);
    const auto r = averaged_runtime(w, size, c, cluster, seeds_per_config);
    if (!r.success) {
      ++best.failures;
      continue;
    }
    if (r.runtime < best.runtime) {
      best.runtime = r.runtime;
      best.config = c;
    }
  }
  return best;
}

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < cells.size() ? cells[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (const auto w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse `--jobs N` from a bench's argv; returns `fallback` when absent.
/// 0 means hardware concurrency (the TrialExecutor convention).
inline std::size_t parse_jobs(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

inline std::string fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

inline std::string pct(double fraction) { return fmt("%.0f%%", fraction * 100.0); }

inline void section(const std::string& title) {
  std::printf("\n== %s ==\n\n", title.c_str());
}

/// Machine-readable bench output: flat records accumulated with printf-style
/// bodies and written as `{"bench": "<name>", "records": [ {...}, ... ]}` —
/// the shape the committed BENCH_*.json files and the README tables consume.
/// Each bench used to carry a private copy of this boilerplate.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) : name_(std::move(bench_name)) {}

  /// Append one record; `format` renders the key/value pairs without the
  /// surrounding braces, e.g. `"\"n\": %zu, \"ms\": %.3f"`.
  __attribute__((format(printf, 2, 3))) void record(const char* format, ...) {
    char buf[1024];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buf, sizeof(buf), format, args);
    va_end(args);
    records_.emplace_back(buf);
  }

  std::size_t size() const { return records_.size(); }

  /// Write the report; no-op (with a stderr note) if the file can't open.
  void write(const std::string& path) const {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n", name_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "    { %s }%s\n", records_[i].c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string name_;
  std::vector<std::string> records_;
};

}  // namespace stune::bench
