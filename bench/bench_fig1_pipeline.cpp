// Reproduces paper Fig. 1: the two-stage workload-configuration-tuning
// pipeline. Stage 1 selects the virtual cluster (instance family/type and
// VM count — CherryPick territory); stage 2 tunes the DISC framework
// configuration on the chosen cluster. For every workload we report each
// stage's outcome and the end-to-end gain over a naive deployment (a fixed
// general-purpose cluster running framework defaults).
#include "service/cloud_tuner.hpp"

#include <cstddef>
#include <limits>
#include <string>
#include "tuning/tuners.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr simcore::Bytes kInput = 16ULL << 30;  // DS2

double tuned_runtime(const workload::Workload& w, const cluster::Cluster& cl,
                     std::size_t budget) {
  tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
    const auto r = averaged_runtime(w, kInput, c, cl, 1);
    return {r.runtime, !r.success};
  };
  tuning::TuneOptions opts;
  opts.budget = budget;
  opts.seed = 11;
  const auto result = tuning::BayesOptTuner().tune(config::spark_space(), obj, opts);
  return result.best_runtime;
}

}  // namespace

int main() {
  section("Fig. 1 reproduction: two-stage tuning pipeline (cloud config -> DISC config)");
  std::printf("input %s; naive deployment = 4x m5.2xlarge with framework defaults\n\n",
              simcore::format_bytes(kInput).c_str());

  const cluster::Cluster naive_cluster = cluster::Cluster::from_spec({"m5.2xlarge", 4});

  Table t({"workload", "naive (s)", "stage1: chosen cluster", "auto-config (s)",
           "stage2: tuned (s)", "end-to-end gain"});

  for (const auto& name : workload::workload_names()) {
    const auto w = workload::make_workload(name);

    const auto naive = averaged_runtime(*w, kInput, config::spark_space()->default_config(),
                                        naive_cluster);
    const std::string naive_str = naive.success ? fmt("%.1f", naive.runtime) : "crash";

    // Stage 1: CherryPick-style cloud configuration search.
    service::CloudTunerOptions copts;
    copts.budget = 10;
    copts.objective = service::CloudObjective::kBalanced;
    copts.seed = 7;
    const service::CloudTuner cloud(copts);
    const auto choice = cloud.choose(*w, kInput);
    const cluster::Cluster chosen = cluster::Cluster::from_spec(choice.spec);

    // Stage 2: DISC configuration tuning on the chosen cluster.
    const double stage2 = tuned_runtime(*w, chosen, 30);

    const double gain = naive.success ? naive.runtime / stage2
                                      : std::numeric_limits<double>::infinity();
    t.add_row({name, naive_str, choice.spec.to_string(), fmt("%.1f", choice.runtime),
               fmt("%.1f", stage2),
               naive.success ? fmt("%.1fx", gain) : "recovers from crash"});
  }
  t.print();
  std::printf(
      "\nreading: stage 1 picks a family/size suited to the workload's resource profile;\n"
      "stage 2's framework tuning compounds on top. The naive column is what the paper's\n"
      "untuned end-user gets.\n");
  return 0;
}
