// Chaos benchmark: how the resilient trial pipeline behaves as the
// environmental fault rate climbs. Two sections:
//
//   1. Tuner resilience — every tuner runs the same budget on a faulty
//      testbed at increasing chaos levels (0%, 5%, 15%, 30% per-trial
//      infra-fault probability, plus proportional executor loss, spot
//      revocations and stragglers). Reported per tuner: best-found
//      runtime, its ratio to the fault-free best, and the retry-pipeline
//      accounting (infra vs config faults, retries, simulated backoff).
//      The headline claim — infra faults are retried and scored neutrally,
//      never charged as configuration penalties — shows up as best-found
//      runtimes that degrade gently with the weather instead of collapsing.
//
//   2. Service degradation — a TuningService with per-tenant circuit
//      breakers runs recurring workloads through the same storm levels.
//      Reported per level: breaker trips, degraded (breaker-open) runs,
//      and whether tenants still end up tuned and feasible.
//
// `--smoke` shrinks budgets and levels for CI; `--json PATH` writes the
// machine-readable records that feed BENCH_chaos.json.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "config/config_space.hpp"
#include "config/spark_space.hpp"
#include "disc/engine.hpp"
#include "disc/metrics.hpp"
#include "service/tuning_service.hpp"
#include "simcore/fault.hpp"
#include "simcore/rng.hpp"
#include "simcore/units.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/execute.hpp"
#include "workload/workload.hpp"

namespace stune::bench {
namespace {

constexpr std::uint64_t kBenchSeed = 42;

JsonReport g_report("bench_chaos");

struct TunerChaosOutcome {
  double best = 0.0;
  bool feasible = false;
  tuning::ResilienceStats stats;
};

/// One full tuning session against a faulty engine. The fault plan is a
/// pure function of (config fingerprint, attempt), so the session is
/// deterministic and jobs-invariant like every other pipeline in the repo.
TunerChaosOutcome tune_under_chaos(const std::string& tuner_name, const workload::Workload& w,
                                   simcore::Bytes input, const cluster::Cluster& cluster,
                                   double level, std::size_t budget, std::size_t jobs) {
  const auto space = config::spark_space();
  const simcore::FaultProfile profile = simcore::FaultProfile::chaos(level);
  const simcore::FaultInjector injector(profile, kBenchSeed);
  const std::uint64_t workload_fp = simcore::hash_string(w.name());

  tuning::TrialObjective objective = [&](const config::Configuration& c,
                                         int attempt) -> tuning::EvalOutcome {
    disc::EngineOptions eopts;
    eopts.seed = kBenchSeed;
    if (profile.active()) {
      eopts.faults = injector.plan(simcore::hash_combine(workload_fp, c.fingerprint()), attempt);
    }
    const disc::SparkSimulator sim(cluster, eopts);
    const auto r = workload::execute(w, input, sim, c);
    tuning::EvalOutcome out{r.runtime, !r.success};
    out.fault = r.success                ? tuning::FaultClass::kNone
                : r.infra_fault          ? tuning::FaultClass::kInfra
                                         : tuning::FaultClass::kConfig;
    return out;
  };

  tuning::TuneOptions topts;
  topts.budget = budget;
  topts.seed = 7;
  topts.retry.max_attempts = 3;
  tuning::TrialExecutor executor({jobs});
  const auto tuner = tuning::make_tuner(tuner_name);
  const auto result = executor.run(*tuner, space, objective, topts);

  TunerChaosOutcome out;
  out.best = result.best_runtime;
  out.feasible = result.found_feasible;
  out.stats = result.resilience;
  return out;
}

void bench_tuner_resilience(const std::vector<double>& levels, std::size_t budget,
                            std::size_t jobs) {
  const auto cluster = paper_testbed();
  const auto w = workload::make_workload("sort");
  const simcore::Bytes input = 16ULL << 30;

  // Fault-free reference per tuner, so each storm level reports a ratio
  // against the same tuner's own calm-weather result. Doubles as the 0%
  // row of the sweep.
  std::vector<TunerChaosOutcome> calm;
  for (const auto& tuner_name : tuning::tuner_names()) {
    calm.push_back(tune_under_chaos(tuner_name, *w, input, cluster, 0.0, budget, jobs));
  }

  for (const double level : levels) {
    section("tuner resilience on sort (16 GiB), chaos level " + pct(level) +
            ", budget " + std::to_string(budget));
    Table t({"tuner", "best", "vs calm", "feasible", "infra", "config", "retries",
             "backoff"});
    std::size_t i = 0;
    for (const auto& tuner_name : tuning::tuner_names()) {
      const auto r =
          level == 0.0 ? calm[i]
                       : tune_under_chaos(tuner_name, *w, input, cluster, level, budget, jobs);
      const double calm_best = calm[i++].best;
      t.add_row({tuner_name, r.feasible ? fmt("%.1fs", r.best) : "none",
                 r.feasible && calm_best > 0.0 ? fmt("%.2fx", r.best / calm_best) : "-",
                 r.feasible ? "yes" : "NO", fmt("%.0f", static_cast<double>(r.stats.infra_faults)),
                 fmt("%.0f", static_cast<double>(r.stats.config_faults)),
                 fmt("%.0f", static_cast<double>(r.stats.retries)),
                 fmt("%.0fs", r.stats.backoff_seconds)});
      // Machine-readable record for tracking resilience over time.
      g_report.record(
          "\"bench\": \"chaos_tuning\", \"workload\": \"sort\", \"tuner\": \"%s\", "
          "\"level\": %.2f, \"budget\": %zu, \"best\": %.3f, \"feasible\": %s, "
          "\"vs_calm\": %.3f, \"infra_faults\": %zu, \"config_faults\": %zu, "
          "\"retries\": %zu, \"deadline_hits\": %zu, \"backoff_s\": %.1f",
          tuner_name.c_str(), level, budget, r.feasible ? r.best : -1.0,
          r.feasible ? "true" : "false",
          r.feasible && calm_best > 0.0 ? r.best / calm_best : -1.0, r.stats.infra_faults,
          r.stats.config_faults, r.stats.retries, r.stats.deadline_hits,
          r.stats.backoff_seconds);
    }
    t.print();
  }
}

void bench_service_degradation(const std::vector<double>& levels, std::size_t runs,
                               std::size_t jobs) {
  for (const double level : levels) {
    section("service under chaos level " + pct(level) + " (" + std::to_string(runs) +
            " runs per tenant)");
    service::ServiceOptions opts;
    opts.tune_cloud = false;
    opts.default_cluster = {"h1.4xlarge", 4};
    opts.tuning_budget = 12;
    opts.retuning_budget = 6;
    opts.jobs = jobs;
    opts.faults = simcore::FaultProfile::chaos(level);
    opts.retry.max_attempts = 3;
    service::TuningService svc(opts);

    struct Tenant {
      const char* name;
      const char* wl;
      int handle = 0;
    };
    std::vector<Tenant> tenants = {{"acme", "sort"}, {"globex", "pagerank"}};
    for (auto& tn : tenants) {
      tn.handle = svc.submit(tn.name, workload::make_workload(tn.wl), 8ULL << 30);
    }
    for (std::size_t i = 0; i < runs; ++i) {
      for (const auto& tn : tenants) svc.run_once(tn.handle);
    }

    const auto health = svc.health();
    Table t({"tenant", "workload", "tuned", "best", "breaker", "trips", "degraded runs"});
    for (const auto& tn : tenants) {
      const auto st = svc.status(tn.handle);
      const service::TenantHealth* th = nullptr;
      for (const auto& cand : health.per_tenant) {
        if (cand.tenant == tn.name) th = &cand;
      }
      const char* breaker = !th                                               ? "?"
                            : th->breaker == service::BreakerState::kOpen     ? "open"
                            : th->breaker == service::BreakerState::kHalfOpen ? "half-open"
                                                                              : "closed";
      t.add_row({tn.name, tn.wl, st.tuned ? "yes" : "NO",
                 st.best_runtime > 0.0 ? fmt("%.1fs", st.best_runtime) : "none", breaker,
                 th ? fmt("%.0f", static_cast<double>(th->trips)) : "?",
                 fmt("%.0f", static_cast<double>(st.degraded_runs))});
      // Machine-readable record for tracking degradation over time.
      g_report.record(
          "\"bench\": \"chaos_service\", \"tenant\": \"%s\", \"workload\": \"%s\", "
          "\"level\": %.2f, \"runs\": %zu, \"tuned\": %s, \"best\": %.3f, "
          "\"breaker\": \"%s\", \"trips\": %d, \"degraded_runs\": %zu, "
          "\"open_breakers\": %zu, \"total_degraded_runs\": %zu",
          tn.name, tn.wl, level, runs, st.tuned ? "true" : "false",
          st.best_runtime > 0.0 ? st.best_runtime : -1.0, breaker, th ? th->trips : -1,
          st.degraded_runs, health.open_breakers, health.total_degraded_runs);
    }
    t.print();
  }
}

}  // namespace
}  // namespace stune::bench

int main(int argc, char** argv) {
  using namespace stune;
  using namespace stune::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }
  const std::size_t jobs = parse_jobs(argc, argv, 1);

  // The issue's sweep: calm, light, the acceptance bar (15%) and heavy.
  const std::vector<double> levels =
      smoke ? std::vector<double>{0.0, 0.15} : std::vector<double>{0.0, 0.05, 0.15, 0.30};
  const std::size_t budget = smoke ? 8 : 40;
  const std::size_t service_runs = smoke ? 2 : 4;

  bench_tuner_resilience(levels, budget, jobs);
  // The service sweep adds a storm level past the acceptance bar so the
  // circuit breaker actually trips on record.
  auto service_levels = levels;
  service_levels.push_back(0.85);
  bench_service_degradation(service_levels, service_runs, jobs);

  std::printf(
      "\nreading: best-found runtimes should degrade gently with the fault rate —\n"
      "infra faults are retried with backoff and scored neutrally, so the tuner\n"
      "never learns to avoid a configuration because a spot instance vanished.\n"
      "Breaker trips and degraded runs should stay at zero through 15%% and only\n"
      "appear in genuinely heavy weather.\n");
  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}
