// Surrogate hot-path microbenchmarks (DESIGN.md §10): how the incremental
// Gaussian-process pipeline — rank-1 Cholesky appends, the cached distance
// matrix and batched acquisition scoring — compares against the seed
// implementation it replaced, which refactorized the kernel matrix from
// scratch under a full lengthscale-grid search on every observation and
// scored acquisition candidates one scalar predict() at a time.
//
// Three sweeps over n ∈ {32, 64, 128, 256, 512} training points:
//   1. cholesky        — blocked vs unblocked factorization.
//   2. surrogate parts — fit, incremental observe vs frozen-hyperparameter
//                        rebuild, batched vs looped prediction.
//   3. suggest step    — the end-to-end BO inner loop (model update + EI
//                        scoring of the candidate pool): seed baseline vs
//                        incremental path. The n=256 row carries the
//                        acceptance bar (>= 5x).
//
// `--smoke` shrinks the sweep for CI; `--json PATH` writes
// BENCH_surrogate.json records.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "linalg/matrix.hpp"
#include "model/gp.hpp"
#include "simcore/rng.hpp"

namespace stune::bench {
namespace {

constexpr std::size_t kDim = 12;  // typical one-hot encoded config width

// -- The seed implementation, kept verbatim as the baseline -----------------
// (unblocked Cholesky; per-observation grid refit over vector-of-vectors
// features; one scalar predict per acquisition candidate.)
namespace seed {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double matern52(double r, double lengthscale) {
  const double s = std::sqrt(5.0) * r / lengthscale;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

linalg::Matrix cholesky(const linalg::Matrix& a) {
  const std::size_t n = a.rows();
  linalg::Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      throw std::runtime_error("cholesky: matrix is not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

struct Gp {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  double lengthscale = 1.0;
  double noise = 1e-2;
  linalg::Matrix chol;
  linalg::Vector alpha;

  double kernel(const std::vector<double>& a, const std::vector<double>& b) const {
    return matern52(std::sqrt(sq_dist(a, b)), lengthscale);
  }

  /// The seed's fit(): median heuristic, then a kernel build + full
  /// factorization per lengthscale-grid entry (distances recomputed each
  /// time — no cache).
  void fit() {
    const std::size_t n = x.size();
    std::vector<double> dists;
    const std::size_t stride = n > 64 ? n / 64 : 1;
    for (std::size_t i = 0; i < n; i += stride) {
      for (std::size_t j = i + stride; j < n; j += stride) {
        dists.push_back(std::sqrt(sq_dist(x[i], x[j])));
      }
    }
    double median = 1.0;
    if (!dists.empty()) {
      std::nth_element(dists.begin(), dists.begin() + static_cast<std::ptrdiff_t>(dists.size() / 2),
                       dists.end());
      median = std::max(1e-6, dists[dists.size() / 2]);
    }
    double best_lml = -std::numeric_limits<double>::infinity();
    double best_ls = median;
    linalg::Matrix best_chol;
    linalg::Vector best_alpha;
    for (const double mult : {0.3, 1.0, 3.0}) {
      lengthscale = median * mult;
      linalg::Matrix k(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
          const double v = kernel(x[i], x[j]);
          k(i, j) = v;
          k(j, i) = v;
        }
        k(i, i) += noise + 1e-8;
      }
      linalg::Matrix l;
      try {
        l = seed::cholesky(k);  // qualified: ADL would also find linalg::cholesky
      } catch (const std::runtime_error&) {
        continue;
      }
      const linalg::Vector a = linalg::cholesky_solve(l, y);
      double lml = -0.5 * linalg::dot(y, a);
      for (std::size_t i = 0; i < n; ++i) lml -= std::log(l(i, i));
      lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
      if (lml > best_lml) {
        best_lml = lml;
        best_ls = lengthscale;
        best_chol = l;
        best_alpha = a;
      }
    }
    lengthscale = best_ls;
    chol = std::move(best_chol);
    alpha = std::move(best_alpha);
  }

  model::GpPrediction predict(const std::vector<double>& q) const {
    const std::size_t n = x.size();
    linalg::Vector k_star(n);
    for (std::size_t i = 0; i < n; ++i) k_star[i] = kernel(q, x[i]);
    const double mean = linalg::dot(k_star, alpha);
    const linalg::Vector v = linalg::solve_lower(chol, k_star);
    return {mean, std::max(1e-10, kernel(q, q) + noise - linalg::dot(v, v))};
  }
};

}  // namespace seed

// -- Harness ----------------------------------------------------------------

double synthetic_target(const std::vector<double>& x) {
  double acc = 0.0;
  for (std::size_t d = 0; d < x.size(); ++d) {
    acc += std::sin(3.0 * x[d] + static_cast<double>(d));
  }
  return acc;
}

std::vector<std::vector<double>> make_points(std::size_t n, simcore::Rng& rng) {
  std::vector<std::vector<double>> pts(n, std::vector<double>(kDim));
  for (auto& p : pts) {
    for (auto& v : p) v = rng.uniform();
  }
  return pts;
}

linalg::Matrix to_matrix(const std::vector<std::vector<double>>& pts) {
  linalg::Matrix m(pts.size(), kDim);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = 0; j < kDim; ++j) m(i, j) = pts[i][j];
  }
  return m;
}

template <typename Fn>
double time_ms(std::size_t reps, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn(r);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count() /
         static_cast<double>(reps);
}

JsonReport g_report("bench_surrogate");

linalg::Matrix random_spd(std::size_t n, simcore::Rng& rng) {
  linalg::Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform(-1.0, 1.0);
  }
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * b(j, k);
      a(i, j) = acc;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

void bench_cholesky(const std::vector<std::size_t>& sizes, std::size_t reps) {
  section("blocked vs unblocked Cholesky factorization");
  Table t({"n", "unblocked (ms)", "blocked (ms)", "speedup"});
  simcore::Rng rng(42);
  for (const std::size_t n : sizes) {
    const auto a = random_spd(n, rng);
    const double naive_ms = time_ms(reps, [&](std::size_t) { seed::cholesky(a); });
    const double blocked_ms = time_ms(reps, [&](std::size_t) { linalg::cholesky(a); });
    const double speedup = naive_ms / blocked_ms;
    t.add_row({fmt("%.0f", static_cast<double>(n)), fmt("%.3f", naive_ms),
               fmt("%.3f", blocked_ms), fmt("%.2fx", speedup)});
    g_report.record("\"bench\": \"cholesky\", \"n\": %zu, \"unblocked_ms\": %.4f, "
           "\"blocked_ms\": %.4f, \"speedup\": %.3f",
           n, naive_ms, blocked_ms, speedup);
  }
  t.print();
}

void bench_surrogate_parts(const std::vector<std::size_t>& sizes, std::size_t candidates,
                           std::size_t reps) {
  section("surrogate parts: fit / observe / predict scaling");
  Table t({"n", "fit (ms)", "observe incr (ms)", "observe rebuild (ms)", "predict loop (ms)",
           "predict batch (ms)"});
  for (const std::size_t n : sizes) {
    simcore::Rng rng(42);
    const auto pts = make_points(n + reps, rng);
    model::Dataset data;
    for (std::size_t i = 0; i < n; ++i) data.add(pts[i], synthetic_target(pts[i]));

    const double fit_ms = time_ms(std::max<std::size_t>(reps / 2, 1), [&](std::size_t) {
      model::GaussianProcess gp;
      gp.fit(data);
    });

    // Isolate the factor-update cost: refreshes pushed out of the window so
    // each observe() is purely a rank-1 append (or a frozen-hyperparameter
    // refactorization for the rebuild baseline).
    model::GaussianProcess::Options frozen;
    frozen.refresh_interval = 1u << 20;
    frozen.lml_drop_per_point = 1e18;
    model::GaussianProcess inc(frozen);
    inc.fit(data);
    const double observe_inc_ms = time_ms(reps, [&](std::size_t r) {
      inc.observe(pts[n + r], synthetic_target(pts[n + r]));
    });

    auto rebuild_opts = frozen;
    rebuild_opts.incremental = false;
    model::GaussianProcess rebuild(rebuild_opts);
    rebuild.fit(data);
    const double observe_rebuild_ms = time_ms(reps, [&](std::size_t r) {
      rebuild.observe(pts[n + r], synthetic_target(pts[n + r]));
    });

    model::GaussianProcess gp;
    gp.fit(data);
    simcore::Rng crng(7);
    const auto cand = to_matrix(make_points(candidates, crng));
    const double loop_ms = time_ms(std::max<std::size_t>(reps / 2, 1), [&](std::size_t) {
      for (std::size_t i = 0; i < cand.rows(); ++i) gp.predict(cand.row(i));
    });
    const double batch_ms = time_ms(std::max<std::size_t>(reps / 2, 1),
                                    [&](std::size_t) { gp.predict_batch(cand); });

    t.add_row({fmt("%.0f", static_cast<double>(n)), fmt("%.3f", fit_ms),
               fmt("%.3f", observe_inc_ms), fmt("%.3f", observe_rebuild_ms), fmt("%.3f", loop_ms),
               fmt("%.3f", batch_ms)});
    g_report.record("\"bench\": \"surrogate_parts\", \"n\": %zu, \"fit_ms\": %.4f, "
           "\"observe_incremental_ms\": %.4f, \"observe_rebuild_ms\": %.4f, "
           "\"predict_loop_ms\": %.4f, \"predict_batch_ms\": %.4f",
           n, fit_ms, observe_inc_ms, observe_rebuild_ms, loop_ms, batch_ms);
  }
  t.print();
}

void bench_suggest_step(const std::vector<std::size_t>& sizes, std::size_t candidates,
                        std::size_t reps) {
  section("BO suggest step: seed full-refit baseline vs incremental path");
  std::printf("one step = model update with the newest observation + EI scoring of a %zu-"
              "candidate pool\n\n",
              candidates);
  Table t({"n", "seed baseline (ms)", "incremental (ms)", "speedup"});
  for (const std::size_t n : sizes) {
    simcore::Rng rng(42);
    const auto pts = make_points(n + reps, rng);
    simcore::Rng crng(7);
    const auto cand_rows = make_points(candidates, crng);
    const auto cand = to_matrix(cand_rows);

    // Seed path: every suggest refits the grid from scratch and scores the
    // pool one scalar predict at a time.
    seed::Gp baseline;
    for (std::size_t i = 0; i < n; ++i) {
      baseline.x.push_back(pts[i]);
      baseline.y.push_back(synthetic_target(pts[i]));
    }
    double sink = 0.0;
    const double baseline_ms = time_ms(reps, [&](std::size_t r) {
      baseline.x.push_back(pts[n + r]);
      baseline.y.push_back(synthetic_target(pts[n + r]));
      baseline.fit();
      double best_ei = -1.0;
      for (const auto& c : cand_rows) {
        const auto p = baseline.predict(c);
        best_ei = std::max(best_ei, model::expected_improvement(p.mean, p.variance, 0.0));
      }
      sink += best_ei;
    });

    // Incremental path under the production refresh policy (every 8th
    // observe pays a full refresh — the average is the honest cost).
    model::GaussianProcess gp;
    model::Dataset data;
    for (std::size_t i = 0; i < n; ++i) data.add(pts[i], synthetic_target(pts[i]));
    gp.fit(data);
    const double incremental_ms = time_ms(reps, [&](std::size_t r) {
      gp.observe(pts[n + r], synthetic_target(pts[n + r]));
      const auto preds = gp.predict_batch(cand);
      double best_ei = -1.0;
      for (const auto& p : preds) {
        best_ei = std::max(best_ei, model::expected_improvement(p.mean, p.variance, 0.0));
      }
      sink += best_ei;
    });
    if (!std::isfinite(sink)) std::printf("(unreachable: %f)\n", sink);

    const double speedup = baseline_ms / incremental_ms;
    t.add_row({fmt("%.0f", static_cast<double>(n)), fmt("%.3f", baseline_ms),
               fmt("%.3f", incremental_ms), fmt("%.2fx", speedup)});
    g_report.record("\"bench\": \"suggest_step\", \"n\": %zu, \"candidates\": %zu, "
           "\"baseline_ms\": %.4f, \"incremental_ms\": %.4f, \"speedup\": %.3f",
           n, candidates, baseline_ms, incremental_ms, speedup);
  }
  t.print();
}

}  // namespace
}  // namespace stune::bench

int main(int argc, char** argv) {
  using namespace stune::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{32, 64} : std::vector<std::size_t>{32, 64, 128, 256, 512};
  const std::size_t candidates = smoke ? 192 : 576;
  const std::size_t reps = smoke ? 4 : 8;

  bench_cholesky(sizes, reps);
  bench_surrogate_parts(sizes, candidates, reps);
  bench_suggest_step(sizes, candidates, reps);

  std::printf(
      "\nreading: observe-incremental should scale ~n^2 against the rebuild column's ~n^3,\n"
      "and the suggest-step speedup should clear 5x at n=256 — the rank-1 append removes\n"
      "the per-observation grid refit, and the batched EI scoring turns %zu scalar\n"
      "triangular solves into one cache-friendly multi-RHS sweep.\n",
      candidates);

  if (!json_path.empty()) g_report.write(json_path);
  return 0;
}
