// Retrieval-tier benchmark (DESIGN.md §15): the zero-execution answer path
// measured at fleet scale. A million-run knowledge base is populated through
// the real record pipeline — warm event-driven executions characterized and
// recorded into a SharedKnowledgeBase — and the retrieval index is then
// queried through every read path:
//
//   flat        - blocked SIMD flat scan (the exact reference);
//   flat_scalar - the same scan through the always-scalar kernel
//                 (SIMD-vs-scalar parity is asserted bitwise);
//   ivf         - the pruned tier in its default *exact* mode (BVH-guided
//                 unit scans; asserted bitwise against the flat scan);
//   ivf_probe8  - approximate mode, probe capped at 8 scan units (we
//                 report the recall it trades away);
//   ivf_serve   - the query TuningService::serve() issues (k=8, similarity
//                 floor 0.85, exact) — the zero-trial serving row;
//   cellmap     - SharedKnowledgeBase::best_similar_runtime(), the bounded
//                 §IV-D cell-map index, as the non-ANN baseline.
//
// Queries come in two sets. "repeat" perturbs a recorded signature by
// ~run-to-run noise — the serving pattern, where a workload the fleet has
// seen comes back and the answer is a dense historical neighborhood.
// "novel" perturbs ~10x further, past several cell widths — a shifted
// workload whose neighborhood must be discovered, the stress pattern.
// Per (N, mode, k, qset) cell we report per-query p50/p99/mean latency and
// recall@k against the flat scan, for N in {1e4, 1e5, 1e6} snapshots of the
// same index (immutable epochs captured mid-population — the blocks are
// shared, not copied) and k in {1, 4, 16}. `--smoke` stops at N=1e4 (the
// IVF tier still engages: 8192 indexed entries) for CI.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster.hpp"
#include "config/spark_space.hpp"
#include "dag/plan.hpp"
#include "disc/engine.hpp"
#include "disc/trial_context.hpp"
#include "service/retrieval_index.hpp"
#include "service/shared_kb.hpp"
#include "simcore/rng.hpp"
#include "transfer/characterization.hpp"
#include "workload/workload.hpp"

namespace stune::bench {
namespace {

JsonReport g_report("bench_retrieval");

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// One population stream: a (workload, input size) pair run warm — the plan
/// and trial context persist across every configuration the stream sees,
/// exactly like a tuning batch (bench_engine's steady state).
struct Stream {
  std::string workload;
  simcore::Bytes input = 0;
  std::shared_ptr<const workload::Workload> wl;
  dag::PhysicalPlan plan;
  disc::TrialContext ctx;
};

/// A stashed query seed: a real recorded signature plus its input size.
struct QuerySeed {
  transfer::Signature signature;
  simcore::Bytes input = 0;
};

/// Deterministic perturbation so recall is measured off the exact lattice
/// of stored points (self-queries are trivially recalled). At scale 1 the
/// offsets span ±0.026 per dimension — several cell widths, the "novel"
/// set; at scale 0.1 they approximate run-to-run noise, the "repeat" set.
transfer::Signature perturb(const transfer::Signature& s, std::size_t q, double scale) {
  transfer::Signature out = s;
  double* dims[transfer::Signature::kDims] = {
      &out.cpu_fraction,  &out.disk_fraction,    &out.net_fraction,  &out.gc_fraction,
      &out.shuffle_per_input, &out.spill_per_input, &out.stage_depth, &out.cache_pressure};
  for (std::size_t d = 0; d < transfer::Signature::kDims; ++d) {
    *dims[d] += scale * (0.013 * static_cast<double>((q * 7 + d) % 5) - 0.026);
  }
  return out;
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
};

LatencyStats summarize(std::vector<double>& micros) {
  LatencyStats out;
  if (micros.empty()) return out;
  std::sort(micros.begin(), micros.end());
  out.p50_us = micros[micros.size() / 2];
  out.p99_us = micros[(micros.size() * 99) / 100];
  for (const double m : micros) out.mean_us += m / static_cast<double>(micros.size());
  return out;
}

/// Overlap of `hits` with the flat-scan truth, as a fraction of the truth.
double recall_vs(const service::RetrievalHit* hits, std::size_t n,
                 const service::RetrievalHit* truth, std::size_t truth_n) {
  if (truth_n == 0) return 1.0;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < truth_n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (hits[j].entry == truth[i].entry) {
        ++matched;
        break;
      }
    }
  }
  return static_cast<double>(matched) / static_cast<double>(truth_n);
}

bool hits_identical(const service::RetrievalHit* a, std::size_t an,
                    const service::RetrievalHit* b, std::size_t bn) {
  if (an != bn) return false;
  for (std::size_t i = 0; i < an; ++i) {
    if (a[i].entry != b[i].entry || !bits_equal(a[i].dist2, b[i].dist2) ||
        !bits_equal(a[i].runtime, b[i].runtime) || a[i].input_bytes != b[i].input_bytes ||
        a[i].config != b[i].config) {
      return false;
    }
  }
  return true;
}

/// Measure one (snapshot, mode, k, query set) cell. `mode` picks the path:
/// 0 = flat SIMD, 1 = flat scalar, 2 = IVF exact, 3 = IVF probe-8,
/// 4 = the serve-shaped query (exact, similarity floor 0.85). Returns false
/// on a bitwise-parity failure (exact modes only).
bool measure_mode(const service::RetrievalSnapshot& snap,
                  const std::vector<QuerySeed>& queries, int mode, std::size_t k,
                  std::size_t n_label, const char* mode_name, const char* qset,
                  double qscale, bool* parity_ok) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> micros;
  micros.reserve(queries.size());
  double recall_sum = 0.0;
  *parity_ok = true;

  service::RetrievalHit hits[service::RetrievalSnapshot::kMaxK];
  service::RetrievalHit truth[service::RetrievalSnapshot::kMaxK];
  const auto make_query = [&](std::size_t qi) {
    service::RetrievalQuery q;
    q.signature = perturb(queries[qi].signature, qi, qscale);
    q.probe_cells = mode == 3 ? 8 : 0;
    if (mode == 4) q.min_similarity = 0.85;
    return q;
  };
  const auto run = [&](const service::RetrievalQuery& q) {
    switch (mode) {
      case 0: return snap.query_flat(q, k, hits);
      case 1: return snap.query_flat_scalar(q, k, hits);
      default: return snap.query(q, k, hits);
    }
  };

  // Timing passes: queries back-to-back, the first pass unmeasured to warm
  // the pruning structures. Interleaving the flat truth scan here would
  // stream the full column set (tens of MB at fleet scale) between every
  // measured query and measure its cache evictions instead of the path.
  for (int rep = 0; rep < 2; ++rep) {
    micros.clear();
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      const service::RetrievalQuery q = make_query(qi);
      const auto start = Clock::now();
      run(q);
      const auto stop = Clock::now();
      micros.push_back(std::chrono::duration<double, std::micro>(stop - start).count());
    }
  }

  // Verification pass: truth + parity + recall. The flat SIMD scan is the
  // reference for every mode (it honors the same filters, so the serve row
  // compares like to like).
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const service::RetrievalQuery q = make_query(qi);
    const std::size_t n = run(q);
    const std::size_t tn = snap.query_flat(q, k, truth);
    if (mode == 1 || mode == 2 || mode == 4) {
      if (!hits_identical(hits, n, truth, tn)) {
        std::fprintf(stderr,
                     "PARITY FAILURE: %s diverges from flat scan (n=%zu k=%zu query %zu)\n",
                     mode_name, n_label, k, qi);
        *parity_ok = false;
        return false;
      }
    }
    recall_sum += recall_vs(hits, n, truth, tn);
  }

  const LatencyStats s = summarize(micros);
  const double recall = recall_sum / static_cast<double>(queries.size());
  g_report.record(
      "\"n\": %zu, \"mode\": \"%s\", \"k\": %zu, \"qset\": \"%s\", \"queries\": %zu, "
      "\"p50_us\": %.3f, \"p99_us\": %.3f, \"mean_us\": %.3f, \"recall_at_k\": %.4f",
      n_label, mode_name, k, qset, queries.size(), s.p50_us, s.p99_us, s.mean_us, recall);
  std::printf("  %-12s k=%-2zu %-6s  p50 %9.2fus  p99 %9.2fus  recall@k %.4f\n", mode_name,
              k, qset, s.p50_us, s.p99_us, recall);
  return true;
}

/// The cell-map baseline: best_similar_runtime() on the live knowledge base
/// (bounded index — scans cells, not records — so N only enters through the
/// populated cell count).
void measure_cellmap(const service::SharedKnowledgeBase& kb,
                     const std::vector<QuerySeed>& queries, std::size_t n_label) {
  using Clock = std::chrono::steady_clock;
  std::vector<double> micros;
  micros.reserve(queries.size());
  std::size_t answered = 0;
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const auto sig = perturb(queries[qi].signature, qi, 1.0);
    const auto start = Clock::now();
    const auto best = kb.best_similar_runtime(sig, queries[qi].input, 0.6, 1.5);
    const auto stop = Clock::now();
    micros.push_back(std::chrono::duration<double, std::micro>(stop - start).count());
    answered += best.has_value() ? 1 : 0;
  }
  const LatencyStats s = summarize(micros);
  const double hit_rate = static_cast<double>(answered) / static_cast<double>(queries.size());
  g_report.record(
      "\"n\": %zu, \"mode\": \"cellmap\", \"k\": %zu, \"queries\": %zu, "
      "\"p50_us\": %.3f, \"p99_us\": %.3f, \"mean_us\": %.3f, \"answer_rate\": %.4f",
      n_label, std::size_t{1}, queries.size(), s.p50_us, s.p99_us, s.mean_us, hit_rate);
  std::printf("  %-12s k=1   p50 %9.2fus  p99 %9.2fus  answer rate %.4f\n", "cellmap",
              s.p50_us, s.p99_us, hit_rate);
}

}  // namespace
}  // namespace stune::bench

int main(int argc, char** argv) {
  using namespace stune;
  using namespace stune::bench;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
    if (std::string(argv[i]) == "--json" && i + 1 < argc) json_path = argv[i + 1];
  }

  const std::vector<std::size_t> thresholds =
      smoke ? std::vector<std::size_t>{10'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  const std::size_t config_pool_size = smoke ? 512 : 4096;
  const std::size_t query_count = smoke ? 64 : 256;
  const std::vector<std::size_t> ks = {1, 4, 16};

  const auto cluster = paper_testbed();
  const auto space = config::spark_space();

  // The configuration pool, reused cyclically: a fleet re-runs a bounded set
  // of configurations, which is what the index's dedup pool exploits.
  std::vector<config::Configuration> pool;
  std::vector<config::SparkConf> confs;
  {
    simcore::Rng rng(271828);
    pool.reserve(config_pool_size);
    confs.reserve(config_pool_size);
    for (std::size_t i = 0; i < config_pool_size; ++i) {
      pool.push_back(i == 0 ? space->default_config() : space->sample(rng));
      confs.emplace_back(pool.back());
    }
  }

  // Population streams: (workload x input size), each warm like a tuning
  // batch. Three engine seeds model run-to-run environmental noise.
  std::deque<Stream> streams;  // deque: TrialContext is neither copyable nor movable
  const config::SparkConf default_conf(space->default_config());
  for (const std::string name : {"scan", "wordcount", "join", "pagerank"}) {
    for (const simcore::Bytes gib : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL, 32ULL, 64ULL, 128ULL}) {
      Stream& s = streams.emplace_back();
      s.workload = name;
      s.input = gib << 30;
      s.wl = workload::make_workload(name);
      s.plan = s.wl->plan(s.input, &default_conf);
    }
  }
  std::vector<disc::SparkSimulator> sims;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    disc::EngineOptions opts;
    opts.seed = 42 + seed;
    sims.emplace_back(cluster, opts);
  }

  // The knowledge base under test: ring retention bounds the full-record
  // history (the retrieval tier keeps everything ever recorded regardless).
  // The quantizer grid is ~10x finer than the knowledge base's 0.25-wide
  // similarity cells: a million simulated runs concentrate on a few dozen
  // workload shapes, and fine cells keep the per-cell spatial splits (and
  // therefore the scan-unit boxes the BVH prunes on) local. The unit
  // decomposition carries most of the pruning, so latency is insensitive to
  // the exact width; exact-mode results are bitwise flat-identical at any.
  service::SharedKnowledgeBaseOptions kb_opts;
  kb_opts.max_records = 4096;
  kb_opts.retrieval.cell_width = 0.02;
  service::SharedKnowledgeBase kb(kb_opts);

  section("retrieval tier: SIMD flat scan vs IVF vs cell map");
  std::printf("populating through the record pipeline: %zu streams x %zu configs, testbed %s\n",
              streams.size(), pool.size(), cluster.spec().to_string().c_str());

  // Query seeds: stashed at a stride that doubles whenever the stash fills,
  // so coverage stays even over the whole append order at any N.
  std::vector<QuerySeed> seeds;
  std::size_t seed_stride = 31;
  constexpr std::size_t kSeedCap = 4096;
  bool all_ok = true;

  std::size_t iter = 0;
  std::size_t failures = 0;
  auto populate_start = std::chrono::steady_clock::now();
  for (const std::size_t target : thresholds) {
    while (kb.retrieval_snapshot()->size() < target) {
      Stream& s = streams[iter % streams.size()];
      const std::size_t ci = (iter / streams.size()) % pool.size();
      const auto& sim = sims[iter % sims.size()];
      const auto report = sim.run(s.plan, confs[ci], s.ctx);
      ++iter;
      if (!report.success) {
        ++failures;
        continue;  // failed runs never enter the index (tested elsewhere)
      }
      const auto sig = transfer::characterize(report);
      if (iter % seed_stride == 0) {
        if (seeds.size() == kSeedCap) {
          for (std::size_t i = 0; i < kSeedCap / 2; ++i) seeds[i] = seeds[2 * i];
          seeds.resize(kSeedCap / 2);
          seed_stride *= 2;
        }
        if (iter % seed_stride == 0) seeds.push_back({sig, s.input});
      }
      service::ExecutionRecord rec;
      rec.tenant = "tenant-" + std::to_string(iter % 64);
      rec.workload_label = s.workload;
      rec.cluster = cluster.spec();
      rec.config = pool[ci];
      rec.input_bytes = s.input;
      rec.runtime = report.runtime;
      rec.cost = report.cost;
      rec.signature = sig;
      kb.record_execution(std::move(rec));
    }
    const auto now = std::chrono::steady_clock::now();
    const double populate_secs = std::chrono::duration<double>(now - populate_start).count();

    // The immutable epoch at this size: later appends never touch it.
    const auto snap = kb.retrieval_snapshot();
    std::printf("\nN=%zu (epoch %llu, ivf %zu cells / %zu indexed, %zu distinct configs, "
                "%.1fs to populate, %zu failed runs)\n",
                snap->size(), static_cast<unsigned long long>(snap->epoch()),
                snap->ivf_cells(), snap->ivf_indexed(), kb.retrieval_distinct_configs(),
                populate_secs, failures);
    g_report.record(
        "\"n\": %zu, \"mode\": \"index\", \"epoch\": %llu, \"ivf_cells\": %zu, "
        "\"ivf_indexed\": %zu, \"distinct_configs\": %zu, \"retained_records\": %zu, "
        "\"total_records\": %zu, \"populate_secs\": %.2f, \"failed_runs\": %zu",
        snap->size(), static_cast<unsigned long long>(snap->epoch()), snap->ivf_cells(),
        snap->ivf_indexed(), kb.retrieval_distinct_configs(), kb.retained_records(),
        kb.total_records(), populate_secs, failures);

    // Query seeds: spread evenly over what has been stashed so far.
    std::vector<QuerySeed> queries;
    const std::size_t avail = seeds.size();
    for (std::size_t qi = 0; qi < query_count && qi < avail; ++qi) {
      queries.push_back(seeds[qi * avail / std::min(query_count, avail)]);
    }

    static const char* kModeNames[] = {"flat", "flat_scalar", "ivf", "ivf_probe8"};
    for (int mode = 0; mode < 4; ++mode) {
      for (const std::size_t k : ks) {
        bool parity_ok = true;
        if (!measure_mode(*snap, queries, mode, k, snap->size(), kModeNames[mode],
                          "novel", 1.0, &parity_ok)) {
          all_ok = false;
        }
      }
    }
    // The pruned paths again under the serving pattern (repeat workloads):
    // flat-scan latency is query-independent, so the flat rows above remain
    // the reference.
    for (int mode = 2; mode < 4; ++mode) {
      for (const std::size_t k : ks) {
        bool parity_ok = true;
        if (!measure_mode(*snap, queries, mode, k, snap->size(), kModeNames[mode],
                          "repeat", 0.1, &parity_ok)) {
          all_ok = false;
        }
      }
    }
    // The serving row itself: the exact query TuningService::serve() issues.
    {
      bool parity_ok = true;
      if (!measure_mode(*snap, queries, 4, 8, snap->size(), "ivf_serve", "repeat", 0.1,
                        &parity_ok)) {
        all_ok = false;
      }
    }
    measure_cellmap(kb, queries, snap->size());
  }

  std::printf(
      "\nreading: 'flat' streams every signature through the SIMD kernel; 'ivf' is the\n"
      "default exact mode (bitwise identical to flat, asserted above); 'ivf_serve' is\n"
      "the query the serving tier issues on a repeat workload and is where the <100us\n"
      "zero-trial answer comes from at fleet scale; 'ivf_probe8' caps the probe for\n"
      "the recall/latency trade; 'cellmap' is the bounded non-ANN baseline that\n"
      "returns one aggregate, not top-k neighbors.\n");

  if (!json_path.empty()) g_report.write(json_path);
  return all_ok ? 0 : 1;
}
