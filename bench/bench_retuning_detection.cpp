// Reproduces the paper's §V-D argument about *defining the need for
// re-tuning*: fixed percentual thresholds fire "either too frequently or
// too late", while sequential detectors that adapt to the stream's own
// variance separate transient noise from sustained drift.
//
// We generate runtime streams from the simulator itself:
//   stationary      — the same workload, run-to-run environmental noise only
//   spiky           — stationary plus occasional one-off straggler storms
//   input growth    — the input starts growing 6% per run at run 30 (§IV-B)
//   contention onset— co-located tenants arrive at run 30
// and score every detector on false alarms (streams with no real drift) and
// detection delay (runs after onset).
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adaptive/change_detector.hpp"

#include "bench_util.hpp"

namespace {

using namespace stune;
using namespace stune::bench;

constexpr int kOnset = 30;
constexpr int kLength = 70;

std::vector<double> runtime_stream(const std::function<void(int, simcore::Bytes*,
                                                            cluster::ContentionParams*)>& shape) {
  const auto w = workload::make_workload("pagerank");
  const auto conf = [] {
    auto c = config::spark_space()->default_config();
    c.set(config::spark::kExecutorInstances, 16);
    c.set(config::spark::kExecutorCores, 4);
    c.set(config::spark::kExecutorMemoryGiB, 13.0);
    c.set(config::spark::kDefaultParallelism, 256);
    c.set(config::spark::kSerializer, 1.0);
    return c;
  }();
  const auto cluster = paper_testbed();
  std::vector<double> stream;
  for (int i = 0; i < kLength; ++i) {
    simcore::Bytes size = 8ULL << 30;
    cluster::ContentionParams contention{};
    shape(i, &size, &contention);
    disc::EngineOptions opts;
    opts.seed = 1000 + static_cast<std::uint64_t>(i);
    opts.contention = contention;
    const disc::SparkSimulator sim(cluster, opts);
    stream.push_back(workload::execute(*w, size, sim, conf).runtime);
  }
  return stream;
}

struct Score {
  int false_alarms = 0;   // trigger count on no-drift streams
  int delay = -1;         // runs after onset until trigger; -1 = missed
};

Score score_detector(adaptive::ChangeDetector& d, const std::vector<double>& stream, int onset) {
  Score s;
  for (int i = 0; i < static_cast<int>(stream.size()); ++i) {
    const bool fired = d.add(stream[i]);
    if (fired) {
      if (onset < 0 || i < onset) {
        ++s.false_alarms;
        d.reset();  // re-arm, as the controller would after a futile re-tune
      } else if (s.delay < 0) {
        s.delay = i - onset + 1;
      }
    }
  }
  return s;
}

}  // namespace

int main() {
  section("re-tuning detection (paper §V-D)");

  const auto stationary = runtime_stream([](int, simcore::Bytes*, cluster::ContentionParams*) {});
  const auto spiky = runtime_stream([](int i, simcore::Bytes*, cluster::ContentionParams* c) {
    // Transient co-location storms at isolated runs: noise, not drift.
    if (i % 17 == 9) *c = cluster::ContentionParams::heavy();
  });
  const auto growth = runtime_stream([](int i, simcore::Bytes* size, cluster::ContentionParams*) {
    if (i >= kOnset) {
      *size = static_cast<simcore::Bytes>(static_cast<double>(*size) *
                                          std::pow(1.06, i - kOnset + 1));
    }
  });
  const auto contention =
      runtime_stream([](int i, simcore::Bytes*, cluster::ContentionParams* c) {
        if (i >= kOnset) *c = cluster::ContentionParams::moderate();
      });

  Table t({"detector", "false alarms (stationary)", "false alarms (spiky)",
           "delay: input growth", "delay: contention onset"});
  for (const auto& name : adaptive::detector_names()) {
    const auto s1 = score_detector(*adaptive::make_detector(name), stationary, -1);
    const auto s2 = score_detector(*adaptive::make_detector(name), spiky, -1);
    const auto s3 = score_detector(*adaptive::make_detector(name), growth, kOnset);
    const auto s4 = score_detector(*adaptive::make_detector(name), contention, kOnset);
    auto delay_str = [](int delay) {
      return delay < 0 ? std::string("missed") : fmt("%.0f runs", delay);
    };
    t.add_row({name, fmt("%.0f", s1.false_alarms), fmt("%.0f", s2.false_alarms),
               delay_str(s3.delay), delay_str(s4.delay)});
  }
  t.print();

  std::printf(
      "\nreading: the fixed threshold (the paper's criticized baseline) confuses transient\n"
      "spikes with drift (false re-tunes cost real money), while CUSUM/Page-Hinkley absorb\n"
      "them and still catch sustained change within a few runs.\n");
  return 0;
}
