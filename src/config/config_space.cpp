#include "config/config_space.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/rng.hpp"

namespace stune::config {

// -- Configuration -----------------------------------------------------------

Configuration::Configuration(std::shared_ptr<const ConfigSpace> space, std::vector<double> values)
    : space_(std::move(space)), values_(std::move(values)) {
  if (space_ == nullptr) throw std::invalid_argument("Configuration: null space");
  if (values_.size() != space_->size()) {
    throw std::invalid_argument("Configuration: value count does not match space");
  }
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] = space_->param(i).sanitize(values_[i]);
}

double Configuration::get(std::string_view name) const {
  return values_[space_->require_index(name)];
}

std::string Configuration::get_label(std::string_view name) const {
  const std::size_t i = space_->require_index(name);
  return space_->param(i).format_value(values_[i]);
}

void Configuration::set(std::string_view name, double value) {
  set(space_->require_index(name), value);
}

void Configuration::set(std::size_t index, double value) {
  values_.at(index) = space_->param(index).sanitize(value);
}

std::string Configuration::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const auto& def = space_->param(i);
    out << "  " << def.name << " = " << def.format_value(values_[i]) << '\n';
  }
  return out.str();
}

std::uint64_t Configuration::fingerprint() const {
  std::uint64_t h = 0x5bd1e995u;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    // Quantize so that configurations that sanitize identically hash
    // identically across platforms.
    const double unit = space_->param(i).to_unit(values_[i]);
    const auto q = static_cast<std::uint64_t>(unit * 1e9);
    h = simcore::hash_combine(h, q);
  }
  return h;
}

bool Configuration::operator==(const Configuration& other) const {
  return space_ == other.space_ && values_ == other.values_;
}

// -- ConfigSpace --------------------------------------------------------------

ConfigSpace::ConfigSpace(std::vector<ParamDef> params) : params_(std::move(params)) {
  for (const auto& p : params_) {
    encoded_size_ += (p.type == ParamType::kCategorical) ? p.categories.size() : 1;
  }
}

std::shared_ptr<const ConfigSpace> ConfigSpace::create(std::vector<ParamDef> params) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = i + 1; j < params.size(); ++j) {
      if (params[i].name == params[j].name) {
        throw std::invalid_argument("duplicate parameter name: " + params[i].name);
      }
    }
  }
  // make_shared needs a public constructor; use new with the private one.
  return std::shared_ptr<const ConfigSpace>(new ConfigSpace(std::move(params)));
}

std::optional<std::size_t> ConfigSpace::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return i;
  }
  return std::nullopt;
}

std::size_t ConfigSpace::require_index(std::string_view name) const {
  const auto idx = index_of(name);
  if (!idx) throw std::out_of_range("unknown parameter: " + std::string(name));
  return *idx;
}

Configuration ConfigSpace::default_config() const {
  std::vector<double> values(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) values[i] = params_[i].default_value;
  return Configuration(shared_from_this(), std::move(values));
}

Configuration ConfigSpace::sample(simcore::Rng& rng) const {
  std::vector<double> values(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    values[i] = params_[i].from_unit(rng.uniform());
  }
  return Configuration(shared_from_this(), std::move(values));
}

std::vector<Configuration> ConfigSpace::latin_hypercube(std::size_t n, simcore::Rng& rng) const {
  if (n == 0) return {};
  // One permutation of n strata per dimension; sample uniformly within the
  // assigned stratum.
  std::vector<std::vector<std::size_t>> strata(params_.size());
  for (auto& perm : strata) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }
  std::vector<Configuration> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> values(params_.size());
    for (std::size_t d = 0; d < params_.size(); ++d) {
      const double u = (static_cast<double>(strata[d][s]) + rng.uniform()) / static_cast<double>(n);
      values[d] = params_[d].from_unit(u);
    }
    out.emplace_back(shared_from_this(), std::move(values));
  }
  return out;
}

std::vector<Configuration> ConfigSpace::divide_and_diverge(std::size_t n,
                                                           simcore::Rng& rng) const {
  // BestConfig's DDS: divide each dimension into n intervals; permute
  // interval assignment per dimension so any two samples differ ("diverge")
  // in every dimension; take the interval midpoint rather than a random
  // point, which is what makes DDS distinct from LHS and keeps the first
  // round coarse. Discrete parameters cycle through their categories.
  if (n == 0) return {};
  std::vector<std::vector<std::size_t>> strata(params_.size());
  for (auto& perm : strata) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }
  std::vector<Configuration> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> values(params_.size());
    for (std::size_t d = 0; d < params_.size(); ++d) {
      const double u = (static_cast<double>(strata[d][s]) + 0.5) / static_cast<double>(n);
      values[d] = params_[d].from_unit(u);
    }
    out.emplace_back(shared_from_this(), std::move(values));
  }
  return out;
}

std::vector<double> ConfigSpace::encode(const Configuration& c) const {
  STUNE_CHECK(&c.space() == this) << " configuration belongs to a different space";
  std::vector<double> features;
  features.reserve(encoded_size_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const auto& def = params_[i];
    if (def.type == ParamType::kCategorical) {
      const auto idx = static_cast<std::size_t>(def.sanitize(c[i]));
      for (std::size_t k = 0; k < def.categories.size(); ++k) {
        features.push_back(k == idx ? 1.0 : 0.0);
      }
    } else {
      features.push_back(def.to_unit(c[i]));
    }
  }
  return features;
}

std::vector<std::size_t> ConfigSpace::encoded_feature_owners() const {
  std::vector<std::size_t> owners;
  owners.reserve(encoded_size_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    const std::size_t copies =
        params_[i].type == ParamType::kCategorical ? params_[i].categories.size() : 1;
    for (std::size_t k = 0; k < copies; ++k) owners.push_back(i);
  }
  return owners;
}

Configuration ConfigSpace::from_unit(const std::vector<double>& unit) const {
  if (unit.size() != params_.size()) {
    throw std::invalid_argument("from_unit: coordinate count does not match space");
  }
  std::vector<double> values(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) values[i] = params_[i].from_unit(unit[i]);
  return Configuration(shared_from_this(), std::move(values));
}

std::vector<double> ConfigSpace::to_unit(const Configuration& c) const {
  STUNE_CHECK(&c.space() == this) << " configuration belongs to a different space";
  std::vector<double> unit(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) unit[i] = params_[i].to_unit(c[i]);
  return unit;
}

Configuration ConfigSpace::neighbor(const Configuration& c, double step_frac,
                                    std::size_t mutations, simcore::Rng& rng) const {
  STUNE_CHECK(&c.space() == this) << " configuration belongs to a different space";
  mutations = std::max<std::size_t>(1, std::min(mutations, params_.size()));
  std::vector<std::size_t> dims(params_.size());
  std::iota(dims.begin(), dims.end(), std::size_t{0});
  rng.shuffle(dims);

  std::vector<double> values = c.values();
  for (std::size_t m = 0; m < mutations; ++m) {
    const std::size_t d = dims[m];
    const auto& def = params_[d];
    switch (def.type) {
      case ParamType::kBool:
        values[d] = values[d] >= 0.5 ? 0.0 : 1.0;
        break;
      case ParamType::kCategorical: {
        // Resample to a different category when there is one.
        if (def.categories.size() > 1) {
          const auto cur = static_cast<std::int64_t>(def.sanitize(values[d]));
          std::int64_t pick =
              rng.uniform_int(0, static_cast<std::int64_t>(def.categories.size()) - 2);
          if (pick >= cur) ++pick;
          values[d] = static_cast<double>(pick);
        }
        break;
      }
      case ParamType::kInt:
      case ParamType::kFloat: {
        const double u = def.to_unit(values[d]);
        double moved = u + rng.uniform(-step_frac, step_frac);
        moved = std::clamp(moved, 0.0, 1.0);
        double v = def.from_unit(moved);
        // Make sure integer parameters actually move even on tiny steps.
        if (def.type == ParamType::kInt && simcore::bits_equal(v, def.sanitize(values[d])) &&
            def.cardinality() > 1) {
          v = def.sanitize(values[d] + (rng.bernoulli(0.5) ? 1.0 : -1.0));
        }
        values[d] = v;
        break;
      }
    }
  }
  return Configuration(shared_from_this(), std::move(values));
}

Configuration ConfigSpace::clamp(Configuration c) const {
  std::vector<double> values = c.values();
  for (std::size_t i = 0; i < params_.size(); ++i) values[i] = params_[i].sanitize(values[i]);
  return Configuration(shared_from_this(), std::move(values));
}

}  // namespace stune::config
