// Typed configuration parameter definitions.
//
// A parameter is one knob of a system (DISC framework or cloud). Values are
// stored uniformly as doubles — integers rounded, booleans 0/1, categorical
// values as a category index — so tuners and models can treat a
// configuration as a numeric vector, while ParamDef keeps enough metadata to
// round-trip to the human-readable form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stune::config {

enum class ParamType { kInt, kFloat, kBool, kCategorical };

std::string to_string(ParamType t);

struct ParamDef {
  std::string name;
  ParamType type = ParamType::kFloat;
  /// Range for kInt/kFloat (inclusive). Unused for kBool/kCategorical.
  double min_value = 0.0;
  double max_value = 0.0;
  /// If set, the parameter is explored on a log scale (ranges spanning
  /// orders of magnitude: memory sizes, partition counts, buffers).
  bool log_scale = false;
  /// Category labels for kCategorical, in index order.
  std::vector<std::string> categories;
  /// Default as stored value (index for categorical, 0/1 for bool).
  double default_value = 0.0;
  /// Documentation: unit of the stored value ("GiB", "KiB", "s", ...).
  std::string unit;
  std::string description;

  // -- convenience constructors ---------------------------------------------
  static ParamDef integer(std::string name, long min_value, long max_value, long def,
                          bool log_scale = false, std::string description = {});
  static ParamDef real(std::string name, double min_value, double max_value, double def,
                       bool log_scale = false, std::string unit = {},
                       std::string description = {});
  static ParamDef boolean(std::string name, bool def, std::string description = {});
  static ParamDef categorical(std::string name, std::vector<std::string> categories,
                              std::size_t default_index, std::string description = {});

  /// Number of distinct values (for bool/categorical); 0 means continuous.
  std::size_t cardinality() const;

  /// Clamp/round a raw double into this parameter's valid stored domain.
  double sanitize(double raw) const;

  /// Map a stored value to [0, 1] for model features (log-aware).
  double to_unit(double value) const;
  /// Inverse of to_unit (then sanitized).
  double from_unit(double unit_value) const;

  /// Render a stored value ("true", "zstd", "12", "3.25 GiB").
  std::string format_value(double value) const;
};

}  // namespace stune::config
