#include "config/param.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "simcore/check.hpp"

namespace stune::config {

std::string to_string(ParamType t) {
  switch (t) {
    case ParamType::kInt: return "int";
    case ParamType::kFloat: return "float";
    case ParamType::kBool: return "bool";
    case ParamType::kCategorical: return "categorical";
  }
  return "unknown";
}

ParamDef ParamDef::integer(std::string name, long min_value, long max_value, long def,
                           bool log_scale, std::string description) {
  if (min_value > max_value) throw std::invalid_argument("integer param: min > max: " + name);
  ParamDef d;
  d.name = std::move(name);
  d.type = ParamType::kInt;
  d.min_value = static_cast<double>(min_value);
  d.max_value = static_cast<double>(max_value);
  d.log_scale = log_scale;
  d.default_value = static_cast<double>(def);
  d.description = std::move(description);
  return d;
}

ParamDef ParamDef::real(std::string name, double min_value, double max_value, double def,
                        bool log_scale, std::string unit, std::string description) {
  if (min_value > max_value) throw std::invalid_argument("real param: min > max: " + name);
  ParamDef d;
  d.name = std::move(name);
  d.type = ParamType::kFloat;
  d.min_value = min_value;
  d.max_value = max_value;
  d.log_scale = log_scale;
  d.default_value = def;
  d.unit = std::move(unit);
  d.description = std::move(description);
  return d;
}

ParamDef ParamDef::boolean(std::string name, bool def, std::string description) {
  ParamDef d;
  d.name = std::move(name);
  d.type = ParamType::kBool;
  d.min_value = 0.0;
  d.max_value = 1.0;
  d.default_value = def ? 1.0 : 0.0;
  d.description = std::move(description);
  return d;
}

ParamDef ParamDef::categorical(std::string name, std::vector<std::string> categories,
                               std::size_t default_index, std::string description) {
  if (categories.empty()) throw std::invalid_argument("categorical param with no categories");
  if (default_index >= categories.size()) {
    throw std::invalid_argument("categorical default index out of range: " + name);
  }
  ParamDef d;
  d.name = std::move(name);
  d.type = ParamType::kCategorical;
  d.min_value = 0.0;
  d.max_value = static_cast<double>(categories.size() - 1);
  d.categories = std::move(categories);
  d.default_value = static_cast<double>(default_index);
  d.description = std::move(description);
  return d;
}

std::size_t ParamDef::cardinality() const {
  switch (type) {
    case ParamType::kBool: return 2;
    case ParamType::kCategorical: return categories.size();
    case ParamType::kInt:
      return static_cast<std::size_t>(max_value - min_value) + 1;
    case ParamType::kFloat: return 0;
  }
  return 0;
}

double ParamDef::sanitize(double raw) const {
  double v = std::clamp(raw, min_value, max_value);
  if (type != ParamType::kFloat) v = std::round(v);
  return std::clamp(v, min_value, max_value);
}

double ParamDef::to_unit(double value) const {
  const double v = sanitize(value);
  if (max_value <= min_value) return 0.0;
  if (log_scale && min_value > 0.0) {
    return (std::log(v) - std::log(min_value)) / (std::log(max_value) - std::log(min_value));
  }
  return (v - min_value) / (max_value - min_value);
}

double ParamDef::from_unit(double unit_value) const {
  const double u = std::clamp(unit_value, 0.0, 1.0);
  double v;
  if (log_scale && min_value > 0.0) {
    v = std::exp(std::log(min_value) + u * (std::log(max_value) - std::log(min_value)));
  } else {
    v = min_value + u * (max_value - min_value);
  }
  return sanitize(v);
}

std::string ParamDef::format_value(double value) const {
  const double v = sanitize(value);
  switch (type) {
    case ParamType::kBool: return v >= 0.5 ? "true" : "false";
    case ParamType::kCategorical: {
      const auto idx = static_cast<std::size_t>(v);
      STUNE_CHECK_LT(idx, categories.size());
      return categories[idx];
    }
    case ParamType::kInt: return std::to_string(static_cast<long>(v));
    case ParamType::kFloat: {
      char buf[48];
      if (unit.empty()) {
        std::snprintf(buf, sizeof(buf), "%.4g", v);
      } else {
        std::snprintf(buf, sizeof(buf), "%.4g %s", v, unit.c_str());
      }
      return buf;
    }
  }
  return {};
}

}  // namespace stune::config
