// Configuration space: an ordered set of ParamDefs with sampling, encoding
// and neighbourhood operations used by every tuner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/param.hpp"
#include "simcore/rng.hpp"

namespace stune::config {

class ConfigSpace;

/// A point in a ConfigSpace. Holds a shared reference to its space so it is
/// self-describing; value order matches the space's parameter order.
class Configuration {
 public:
  Configuration() = default;
  Configuration(std::shared_ptr<const ConfigSpace> space, std::vector<double> values);

  const ConfigSpace& space() const { return *space_; }
  std::shared_ptr<const ConfigSpace> space_ptr() const { return space_; }
  bool empty() const { return space_ == nullptr; }
  std::size_t size() const { return values_.size(); }

  double operator[](std::size_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  /// Access by parameter name; throws std::out_of_range if unknown.
  double get(std::string_view name) const;
  bool get_bool(std::string_view name) const { return get(name) >= 0.5; }
  long get_int(std::string_view name) const { return static_cast<long>(get(name)); }
  std::string get_label(std::string_view name) const;

  /// Set by name (value is sanitized into the parameter's domain).
  void set(std::string_view name, double value);
  void set(std::size_t index, double value);

  /// Multi-line human-readable rendering.
  std::string describe() const;
  /// Stable hash of the (sanitized) values — used for seeding simulations.
  std::uint64_t fingerprint() const;

  bool operator==(const Configuration& other) const;

 private:
  std::shared_ptr<const ConfigSpace> space_;
  std::vector<double> values_;
};

class ConfigSpace : public std::enable_shared_from_this<ConfigSpace> {
 public:
  /// Build an immutable space from its parameters.
  /// Throws std::invalid_argument on duplicate names.
  static std::shared_ptr<const ConfigSpace> create(std::vector<ParamDef> params);

  std::size_t size() const { return params_.size(); }
  const ParamDef& param(std::size_t i) const { return params_[i]; }
  const std::vector<ParamDef>& params() const { return params_; }
  std::optional<std::size_t> index_of(std::string_view name) const;
  /// Throws std::out_of_range if the name is unknown.
  std::size_t require_index(std::string_view name) const;

  Configuration default_config() const;
  /// Uniform sample (log-aware per parameter).
  Configuration sample(simcore::Rng& rng) const;
  /// Latin hypercube sample of n configurations.
  std::vector<Configuration> latin_hypercube(std::size_t n, simcore::Rng& rng) const;
  /// BestConfig-style divide-and-diverge sampling: each parameter's range is
  /// divided into n intervals and samples are combined so every pair of
  /// samples diverges in every dimension (a randomized LHS variant that also
  /// covers categorical parameters uniformly).
  std::vector<Configuration> divide_and_diverge(std::size_t n, simcore::Rng& rng) const;

  /// Encode to a numeric feature vector in [0,1]^d for models. Categorical
  /// parameters are one-hot expanded; bool/int/float map through
  /// ParamDef::to_unit.
  std::vector<double> encode(const Configuration& c) const;
  /// Dimension of encode()'s output.
  std::size_t encoded_size() const { return encoded_size_; }
  /// Parameter index owning each encoded feature (one-hot features of a
  /// categorical all map to its parameter) — lets models aggregate
  /// per-feature attributions back to parameters.
  std::vector<std::size_t> encoded_feature_owners() const;

  /// Build a configuration from unit-interval coordinates (one per
  /// parameter, NOT one-hot; categorical coordinate is a category fraction).
  Configuration from_unit(const std::vector<double>& unit) const;
  /// The inverse mapping of from_unit (one coordinate per parameter).
  std::vector<double> to_unit(const Configuration& c) const;

  /// Random neighbour for local search: perturbs `mutations` randomly chosen
  /// parameters by at most step_frac of their (log-aware) range; categorical
  /// and bool parameters are resampled.
  Configuration neighbor(const Configuration& c, double step_frac, std::size_t mutations,
                         simcore::Rng& rng) const;

  /// Sanitize every value into its parameter's domain.
  Configuration clamp(Configuration c) const;

 private:
  explicit ConfigSpace(std::vector<ParamDef> params);

  std::vector<ParamDef> params_;
  std::size_t encoded_size_ = 0;
};

}  // namespace stune::config
