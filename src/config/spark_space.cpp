#include "config/spark_space.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace stune::config {

namespace {

std::shared_ptr<const ConfigSpace> build_spark_space() {
  using P = ParamDef;
  namespace k = spark;
  std::vector<ParamDef> params;

  // -- resources --------------------------------------------------------------
  params.push_back(P::integer(k::kExecutorInstances, 1, 48, 2, true,
                              "requested executor processes (capped by cluster capacity)"));
  params.push_back(P::integer(k::kExecutorCores, 1, 16, 1, false,
                              "concurrent task slots per executor"));
  params.push_back(P::real(k::kExecutorMemoryGiB, 1.0, 48.0, 1.0, true, "GiB",
                           "JVM heap per executor"));
  params.push_back(P::real(k::kDriverMemoryGiB, 1.0, 8.0, 1.0, true, "GiB",
                           "JVM heap of the driver"));
  params.push_back(P::real(k::kMemoryOverheadFactor, 0.06, 0.25, 0.10, false, "",
                           "off-heap overhead per executor, fraction of heap"));
  params.push_back(P::integer(k::kTaskCpus, 1, 4, 1, false, "cores reserved per task"));
  params.push_back(P::boolean(k::kDynamicAllocation, false,
                              "let the scheduler size the executor fleet itself"));

  // -- memory management --------------------------------------------------------
  params.push_back(P::real(k::kMemoryFraction, 0.3, 0.9, 0.6, false, "",
                           "fraction of heap shared by execution and storage"));
  params.push_back(P::real(k::kMemoryStorageFraction, 0.1, 0.9, 0.5, false, "",
                           "fraction of unified memory immune to execution eviction"));

  // -- parallelism ---------------------------------------------------------------
  params.push_back(P::integer(k::kDefaultParallelism, 8, 2048, 64, true,
                              "partitions of shuffled RDDs"));
  params.push_back(P::integer(k::kSqlShufflePartitions, 8, 2048, 200, true,
                              "partitions of SQL exchange operators"));

  // -- shuffle & IO ---------------------------------------------------------------
  params.push_back(P::boolean(k::kShuffleCompress, true, "compress shuffle map outputs"));
  params.push_back(P::boolean(k::kShuffleSpillCompress, true, "compress spilled data"));
  params.push_back(P::categorical(k::kIoCompressionCodec, {"lz4", "snappy", "zstd"}, 0,
                                  "block compression codec"));
  params.push_back(P::integer(k::kCompressionLevel, 1, 9, 3, false,
                              "zstd compression level (higher = smaller, slower)"));
  params.push_back(
      P::categorical(k::kSerializer, {"java", "kryo"}, 0, "object serialization library"));
  params.push_back(P::boolean(k::kRddCompress, false, "compress cached RDD partitions"));
  params.push_back(P::real(k::kShuffleFileBufferKiB, 16.0, 1024.0, 32.0, true, "KiB",
                           "in-memory buffer per shuffle file writer"));
  params.push_back(P::real(k::kReducerMaxSizeInFlightMiB, 8.0, 256.0, 48.0, true, "MiB",
                           "simultaneous shuffle fetch budget per reducer"));
  params.push_back(P::integer(k::kShuffleSortBypassMergeThreshold, 50, 1000, 200, false,
                              "below this many reducers, skip map-side sort"));
  params.push_back(P::integer(k::kShuffleConnectionsPerPeer, 1, 8, 1, false,
                              "TCP connections per fetch peer"));
  params.push_back(P::real(k::kKryoBufferMaxMiB, 8.0, 256.0, 64.0, true, "MiB",
                           "largest serializable record under kryo"));

  // -- scheduling -------------------------------------------------------------------
  params.push_back(P::boolean(k::kSpeculation, false, "re-launch straggler tasks"));
  params.push_back(P::real(k::kSpeculationMultiplier, 1.1, 3.0, 1.5, false, "",
                           "how many times slower than median counts as straggling"));
  params.push_back(P::real(k::kLocalityWait, 0.0, 10.0, 3.0, false, "s",
                           "wait for a data-local slot before settling for remote"));
  params.push_back(P::integer(k::kTaskMaxFailures, 1, 8, 4, false,
                              "task attempts before failing the job"));

  // -- SQL / broadcast -----------------------------------------------------------------
  params.push_back(P::real(k::kBroadcastBlockSizeMiB, 1.0, 16.0, 4.0, true, "MiB",
                           "block size used when torrent-broadcasting variables"));
  params.push_back(P::real(k::kAutoBroadcastJoinThresholdMiB, 0.0, 256.0, 10.0, false, "MiB",
                           "broadcast-join a table smaller than this"));

  // Appended after the original 28 parameters: Configuration values are
  // positional, so new knobs must extend the space at the end.
  params.push_back(P::real(k::kSpeculationQuantile, 0.5, 0.95, 0.75, false, "",
                           "fraction of tasks that must finish before speculating"));

  return ConfigSpace::create(std::move(params));
}

}  // namespace

std::shared_ptr<const ConfigSpace> spark_space() {
  static const std::shared_ptr<const ConfigSpace> space = build_spark_space();
  return space;
}

CodecProfile codec_profile(Codec codec, int zstd_level) {
  // CPU costs are seconds per GiB on a reference core (divide by 2^30).
  // Ratios/speeds follow the lz4/snappy/zstd public benchmarks: lz4 fastest,
  // zstd densest with level-dependent cost.
  constexpr double kPerGiB = 1.0 / (1024.0 * 1024.0 * 1024.0);
  switch (codec) {
    case Codec::kLz4:
      return CodecProfile{.ratio = 0.62, .compress_cpb = 1.4 * kPerGiB, .decompress_cpb = 0.35 * kPerGiB};
    case Codec::kSnappy:
      return CodecProfile{.ratio = 0.65, .compress_cpb = 1.7 * kPerGiB, .decompress_cpb = 0.5 * kPerGiB};
    case Codec::kZstd: {
      const double level = static_cast<double>(zstd_level);
      return CodecProfile{.ratio = 0.52 - 0.008 * level,
                          .compress_cpb = (3.0 + 1.2 * level) * kPerGiB,
                          .decompress_cpb = 0.8 * kPerGiB};
    }
  }
  throw std::logic_error("unreachable codec");
}

SparkConf::SparkConf(const Configuration& c)
    : executor_instances(static_cast<int>(c.get_int(spark::kExecutorInstances))),
      executor_cores(static_cast<int>(c.get_int(spark::kExecutorCores))),
      executor_memory_gib(c.get(spark::kExecutorMemoryGiB)),
      driver_memory_gib(c.get(spark::kDriverMemoryGiB)),
      memory_fraction(c.get(spark::kMemoryFraction)),
      memory_storage_fraction(c.get(spark::kMemoryStorageFraction)),
      default_parallelism(static_cast<int>(c.get_int(spark::kDefaultParallelism))),
      sql_shuffle_partitions(static_cast<int>(c.get_int(spark::kSqlShufflePartitions))),
      shuffle_compress(c.get_bool(spark::kShuffleCompress)),
      shuffle_spill_compress(c.get_bool(spark::kShuffleSpillCompress)),
      codec(static_cast<Codec>(c.get_int(spark::kIoCompressionCodec))),
      compression_level(static_cast<int>(c.get_int(spark::kCompressionLevel))),
      serializer(static_cast<Serializer>(c.get_int(spark::kSerializer))),
      rdd_compress(c.get_bool(spark::kRddCompress)),
      shuffle_file_buffer_kib(c.get(spark::kShuffleFileBufferKiB)),
      reducer_max_inflight_mib(c.get(spark::kReducerMaxSizeInFlightMiB)),
      sort_bypass_merge_threshold(
          static_cast<int>(c.get_int(spark::kShuffleSortBypassMergeThreshold))),
      speculation(c.get_bool(spark::kSpeculation)),
      speculation_multiplier(c.get(spark::kSpeculationMultiplier)),
      speculation_quantile(c.get(spark::kSpeculationQuantile)),
      locality_wait_s(c.get(spark::kLocalityWait)),
      broadcast_block_size_mib(c.get(spark::kBroadcastBlockSizeMiB)),
      auto_broadcast_join_threshold_mib(c.get(spark::kAutoBroadcastJoinThresholdMiB)),
      memory_overhead_factor(c.get(spark::kMemoryOverheadFactor)),
      task_cpus(static_cast<int>(c.get_int(spark::kTaskCpus))),
      task_max_failures(static_cast<int>(c.get_int(spark::kTaskMaxFailures))),
      shuffle_connections_per_peer(static_cast<int>(c.get_int(spark::kShuffleConnectionsPerPeer))),
      kryo_buffer_max_mib(c.get(spark::kKryoBufferMaxMiB)),
      dynamic_allocation(c.get_bool(spark::kDynamicAllocation)) {}

}  // namespace stune::config
