// The concrete DISC (Spark-like) configuration space.
//
// 29 parameters modeled on real spark.* knobs: names, types, ranges and
// defaults follow the Spark 2.x documentation the paper cites ("Spark has
// 200 configuration parameters", of which the surveyed tuners tune 16-41).
// SparkConf is the typed, engine-facing view of a Configuration — parsed
// once per simulated execution.
#pragma once

#include <memory>
#include <string>

#include "config/config_space.hpp"

namespace stune::config {

/// Names of all parameters in the Spark space, for use with
/// Configuration::get/set. Centralized so call sites cannot typo.
namespace spark {
inline constexpr const char* kExecutorInstances = "spark.executor.instances";
inline constexpr const char* kExecutorCores = "spark.executor.cores";
inline constexpr const char* kExecutorMemoryGiB = "spark.executor.memory";
inline constexpr const char* kDriverMemoryGiB = "spark.driver.memory";
inline constexpr const char* kMemoryFraction = "spark.memory.fraction";
inline constexpr const char* kMemoryStorageFraction = "spark.memory.storageFraction";
inline constexpr const char* kDefaultParallelism = "spark.default.parallelism";
inline constexpr const char* kSqlShufflePartitions = "spark.sql.shuffle.partitions";
inline constexpr const char* kShuffleCompress = "spark.shuffle.compress";
inline constexpr const char* kShuffleSpillCompress = "spark.shuffle.spill.compress";
inline constexpr const char* kIoCompressionCodec = "spark.io.compression.codec";
inline constexpr const char* kCompressionLevel = "spark.io.compression.zstd.level";
inline constexpr const char* kSerializer = "spark.serializer";
inline constexpr const char* kRddCompress = "spark.rdd.compress";
inline constexpr const char* kShuffleFileBufferKiB = "spark.shuffle.file.buffer";
inline constexpr const char* kReducerMaxSizeInFlightMiB = "spark.reducer.maxSizeInFlight";
inline constexpr const char* kShuffleSortBypassMergeThreshold =
    "spark.shuffle.sort.bypassMergeThreshold";
inline constexpr const char* kSpeculation = "spark.speculation";
inline constexpr const char* kSpeculationMultiplier = "spark.speculation.multiplier";
inline constexpr const char* kSpeculationQuantile = "spark.speculation.quantile";
inline constexpr const char* kLocalityWait = "spark.locality.wait";
inline constexpr const char* kBroadcastBlockSizeMiB = "spark.broadcast.blockSize";
inline constexpr const char* kAutoBroadcastJoinThresholdMiB =
    "spark.sql.autoBroadcastJoinThreshold";
inline constexpr const char* kMemoryOverheadFactor = "spark.executor.memoryOverheadFactor";
inline constexpr const char* kTaskCpus = "spark.task.cpus";
inline constexpr const char* kTaskMaxFailures = "spark.task.maxFailures";
inline constexpr const char* kShuffleConnectionsPerPeer =
    "spark.shuffle.io.numConnectionsPerPeer";
inline constexpr const char* kKryoBufferMaxMiB = "spark.kryoserializer.buffer.max";
inline constexpr const char* kDynamicAllocation = "spark.dynamicAllocation.enabled";
}  // namespace spark

/// The shared, immutable Spark-like configuration space (singleton).
std::shared_ptr<const ConfigSpace> spark_space();

enum class Codec { kLz4, kSnappy, kZstd };
enum class Serializer { kJava, kKryo };

/// Per-codec compression behaviour used by the execution engine.
struct CodecProfile {
  double ratio;           // compressed size / raw size, typical shuffle data
  double compress_cpb;    // CPU seconds per raw byte to compress (relative units)
  double decompress_cpb;  // CPU seconds per raw byte to decompress
};

CodecProfile codec_profile(Codec codec, int zstd_level);

/// Typed view of a Configuration drawn from spark_space(). All values are
/// sanitized; construction is the single place configuration parsing
/// happens, so the engine never string-compares parameter names in its hot
/// path.
struct SparkConf {
  explicit SparkConf(const Configuration& c);

  int executor_instances;
  int executor_cores;
  double executor_memory_gib;
  double driver_memory_gib;
  double memory_fraction;
  double memory_storage_fraction;
  int default_parallelism;
  int sql_shuffle_partitions;
  bool shuffle_compress;
  bool shuffle_spill_compress;
  Codec codec;
  int compression_level;
  Serializer serializer;
  bool rdd_compress;
  double shuffle_file_buffer_kib;
  double reducer_max_inflight_mib;
  int sort_bypass_merge_threshold;
  bool speculation;
  double speculation_multiplier;
  double speculation_quantile;
  double locality_wait_s;
  double broadcast_block_size_mib;
  double auto_broadcast_join_threshold_mib;
  double memory_overhead_factor;
  int task_cpus;
  int task_max_failures;
  int shuffle_connections_per_peer;
  double kryo_buffer_max_mib;
  bool dynamic_allocation;
};

}  // namespace stune::config
