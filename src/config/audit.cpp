#include "config/audit.hpp"

#include <cmath>
#include <cstddef>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "simcore/rng.hpp"

namespace stune::config {

namespace {

template <typename... Args>
void report(std::vector<std::string>& out, Args&&... args) {
  std::ostringstream msg;
  (msg << ... << args);
  out.push_back(msg.str());
}

}  // namespace

std::vector<std::string> audit(const ParamDef& def) {
  std::vector<std::string> v;
  const std::string who = "param '" + def.name + "'";
  if (def.name.empty()) report(v, "parameter with empty name");

  switch (def.type) {
    case ParamType::kInt:
    case ParamType::kFloat:
      if (!(std::isfinite(def.min_value) && std::isfinite(def.max_value))) {
        report(v, who, " has non-finite bounds [", def.min_value, ", ", def.max_value, "]");
        break;
      }
      if (def.min_value > def.max_value) {
        report(v, who, " has inverted bounds [", def.min_value, ", ", def.max_value, "]");
      }
      if (def.log_scale && def.min_value <= 0.0) {
        report(v, who, " is log-scale but its range includes ", def.min_value, " <= 0");
      }
      if (def.default_value < def.min_value || def.default_value > def.max_value) {
        report(v, who, " default ", def.default_value, " lies outside [", def.min_value, ", ",
               def.max_value, "]");
      }
      break;
    case ParamType::kBool:
      if (def.default_value != 0.0 && def.default_value != 1.0) {
        report(v, who, " is boolean but defaults to ", def.default_value);
      }
      break;
    case ParamType::kCategorical: {
      if (def.categories.empty()) {
        report(v, who, " is categorical with no categories");
        break;
      }
      const auto idx = def.default_value;
      if (idx < 0.0 || idx >= static_cast<double>(def.categories.size()) ||
          idx != std::floor(idx)) {
        report(v, who, " categorical default index ", idx, " is not a valid index into ",
               def.categories.size(), " categories");
      }
      std::set<std::string> seen;
      for (const auto& c : def.categories) {
        if (c.empty()) report(v, who, " has an empty category label");
        if (!seen.insert(c).second) report(v, who, " repeats category label '", c, "'");
      }
      break;
    }
  }
  return v;
}

std::vector<std::string> audit(const ConfigSpace& space) {
  std::vector<std::string> v;
  if (space.size() == 0) report(v, "configuration space has no parameters");

  std::set<std::string> names;
  std::size_t encoded = 0;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const ParamDef& def = space.param(i);
    for (auto& violation : audit(def)) v.push_back(std::move(violation));
    if (!names.insert(def.name).second) report(v, "duplicate parameter name '", def.name, "'");
    encoded += def.type == ParamType::kCategorical ? def.categories.size() : 1;
  }
  if (encoded != space.encoded_size()) {
    report(v, "encoded_size ", space.encoded_size(), " does not match the ", encoded,
           " features implied by the parameter list");
  }
  return v;
}

std::vector<std::string> audit_values(const ConfigSpace& space, const std::vector<double>& values) {
  std::vector<std::string> v;
  if (values.size() != space.size()) {
    report(v, "value vector holds ", values.size(), " values for a space of ", space.size(),
           " parameters");
    return v;
  }
  for (std::size_t i = 0; i < space.size(); ++i) {
    const ParamDef& def = space.param(i);
    const double raw = values[i];
    if (!std::isfinite(raw)) {
      report(v, "param '", def.name, "' holds non-finite value ", raw);
      continue;
    }
    const double sane = def.sanitize(raw);
    if (!simcore::bits_equal(raw, sane)) {
      report(v, "param '", def.name, "' holds out-of-domain value ", raw, " (sanitizes to ",
             sane, ")");
    }
  }
  return v;
}

std::vector<std::string> audit(const Configuration& c) {
  std::vector<std::string> v;
  if (c.empty()) {
    report(v, "configuration has no space");
    return v;
  }
  return audit_values(c.space(), c.values());
}

}  // namespace stune::config
