// Invariant auditor for configuration spaces and configurations.
//
// Validates the bounds metadata every tuner's sampling, encoding and
// neighbourhood operations assume: well-ordered ranges, positive log-scale
// domains, in-range defaults, and — for concrete configurations — values
// that lie inside their parameter's domain. Returns violations instead of
// throwing; pass through simcore::enforce_invariants for fail-stop use.
#pragma once

#include <string>
#include <vector>

#include "config/config_space.hpp"
#include "config/param.hpp"

namespace stune::config {

/// Audit one parameter definition (used by the space audit; exposed for
/// tests that construct ParamDefs directly).
std::vector<std::string> audit(const ParamDef& def);

/// Audit a whole space: every parameter definition, plus cross-parameter
/// rules (unique non-empty names, encoded_size consistency).
std::vector<std::string> audit(const ConfigSpace& space);

/// Audit a raw value vector against a space: value count matches the
/// parameter count and every value is a fixed point of sanitize() (i.e. it
/// lies in the parameter's stored domain). This is the validation point for
/// values arriving from outside the process (event logs, service requests,
/// serialized observations) before a Configuration is constructed — the
/// Configuration constructor itself sanitizes, so corruption can only be
/// observed on the raw vector.
std::vector<std::string> audit_values(const ConfigSpace& space, const std::vector<double>& values);

/// Audit a configuration against its own space (delegates to audit_values).
std::vector<std::string> audit(const Configuration& c);

}  // namespace stune::config
