// Per-tenant circuit breaker over infrastructure faults.
//
// When a tenant's trials keep dying to the environment (revocations,
// transient errors, timeouts), spending tuning budget is throwing money
// into the weather: the breaker opens after N consecutive infra faults and
// the service degrades gracefully (runs the knowledge-base/default
// configuration, skips tuning) until a half-open probe succeeds.
//
// The state machine is the classic one:
//
//   closed --(N consecutive infra faults)--> open
//   open   --(cooldown elapses)-----------> half-open
//   half-open --(success)--> closed
//   half-open --(infra fault)--> open (cooldown restarts)
//
// Time is counted in allow_request() calls (i.e. run_once invocations),
// not wall clock — the simulator has no wall clock, and a recurring
// workload's natural cadence is its runs.
#pragma once

namespace stune::service {

struct CircuitBreakerOptions {
  /// Consecutive infra faults that open the breaker.
  int open_after = 3;
  /// Denied requests to sit out before a half-open probe is allowed.
  int cooldown_runs = 2;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  BreakerState state() const { return state_; }

  /// May the protected operation run now? Advances the cooldown clock when
  /// open; flips to half-open (and allows one probe) once the cooldown has
  /// elapsed.
  bool allow_request();

  /// Report the protected operation's outcome back.
  void record_success();
  void record_infra_fault();

  int consecutive_infra_faults() const { return consecutive_faults_; }
  /// Times the breaker has opened (including re-opens from half-open).
  int trips() const { return trips_; }

 private:
  void open();

  CircuitBreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_faults_ = 0;
  int cooldown_waited_ = 0;
  int trips_ = 0;
};

}  // namespace stune::service
