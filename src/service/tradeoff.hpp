// Cost/runtime trade-off exploration (paper §IV-D): "the tuning service
// could let users make trade-off decisions which impact things like cost:
// do I need the results quickly no matter the cost, or am I willing to
// wait a long time for the results?"
//
// The explorer searches the joint (cloud config x DISC config) space and
// keeps the Pareto frontier of (runtime, cost) outcomes, from which the
// service can answer high-level requests like "fastest under $X" or
// "cheapest under T seconds" — the new SLO language the paper proposes —
// without the tenant ever seeing a knob.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/config_space.hpp"
#include "disc/cost_model.hpp"
#include "simcore/units.hpp"
#include "workload/workload.hpp"

namespace stune::service {

struct TradeoffPoint {
  cluster::ClusterSpec cluster;
  config::Configuration config;
  double runtime = 0.0;   // seconds
  double cost = 0.0;      // dollars per run
};

/// Pareto frontier of (runtime, cost): no point is dominated by another
/// (strictly better in one dimension, no worse in the other).
class ParetoFrontier {
 public:
  /// Insert a point; returns true if it joined the frontier (and evicted
  /// whatever it dominates).
  bool insert(TradeoffPoint point);

  /// Frontier points ordered by runtime ascending (cost descending).
  const std::vector<TradeoffPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  /// Fastest point costing at most `budget` per run.
  std::optional<TradeoffPoint> fastest_under_cost(double budget) const;
  /// Cheapest point finishing within `deadline` seconds.
  std::optional<TradeoffPoint> cheapest_under_runtime(double deadline) const;

 private:
  std::vector<TradeoffPoint> points_;  // kept sorted by runtime
};

struct TradeoffExplorerOptions {
  /// Total workload executions spent mapping the frontier.
  std::size_t budget = 60;
  /// Fraction of the budget spent on cloud diversity (distinct clusters).
  double cloud_fraction = 0.4;
  int min_vms = 2;
  int max_vms = 12;
  std::uint64_t seed = 1;
  disc::CostModel cost_model{};
};

/// Map the (runtime, cost) frontier for a workload. Exploration: sample
/// clusters across families/sizes, run the provider auto-config plus
/// BO-refined DISC configs on the most promising clusters.
ParetoFrontier explore_tradeoff(const workload::Workload& workload, simcore::Bytes input_bytes,
                                const TradeoffExplorerOptions& options = {});

}  // namespace stune::service
