// The provider-side execution history (paper §IV-C): "the cloud is a
// centralized place that is able to keep a record of the different
// workloads' execution history under different cloud and DISC system
// configurations, across users. This data can only be leveraged by the
// cloud provider."
//
// Records are keyed by workload *signature* (not by name or tenant): the
// service recognizes similar workloads by what they do, which is what makes
// cross-tenant knowledge transfer possible without inspecting user code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "config/config_space.hpp"
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"

namespace stune::service {

struct ExecutionRecord {
  std::string tenant;
  std::string workload_label;  // informational only; matching uses signatures
  cluster::ClusterSpec cluster;
  config::Configuration config;
  simcore::Bytes input_bytes = 0;
  double runtime = 0.0;
  double cost = 0.0;
  bool failed = false;
  bool from_tuning = false;  // exploration run vs. production run
  transfer::Signature signature;
  std::uint64_t sequence = 0;  // assigned by the knowledge base
};

class KnowledgeBase {
 public:
  /// Store a record; assigns and returns its sequence number.
  std::uint64_t record(ExecutionRecord r);

  std::size_t size() const { return records_.size(); }
  const std::vector<ExecutionRecord>& records() const { return records_; }

  /// All successful records as transfer donors (the warm-start policy does
  /// the similarity filtering). `exclude_tenant_label` skips the submitting
  /// workload's own records when a bench wants strict cross-workload
  /// transfer.
  std::vector<transfer::DonorObservation> donors_for(
      const std::optional<std::string>& exclude_label = std::nullopt) const;

  /// Best known runtime among records whose signature is at least
  /// `min_similarity` similar to `target` and whose input size is within
  /// `size_tolerance` (multiplicative) of `input_bytes` — the paper's
  /// §IV-D reference: "the runtime of similar workloads ever run in the
  /// cloud". Empty when nothing similar has been seen.
  std::optional<double> best_similar_runtime(const transfer::Signature& target,
                                             simcore::Bytes input_bytes,
                                             double min_similarity = 0.6,
                                             double size_tolerance = 1.5) const;

  /// Number of distinct tenants seen.
  std::size_t tenant_count() const;

  /// Persist the history (text, one record per line) so the provider's
  /// accumulated knowledge survives restarts. Tenant/workload labels must
  /// not contain '|' or newlines (throws std::invalid_argument).
  void save(std::ostream& out) const;
  /// Load a history written by save(). All configurations are re-attached
  /// to `space` (they must have the same dimensionality; throws otherwise).
  static KnowledgeBase load(std::istream& in,
                            std::shared_ptr<const config::ConfigSpace> space);

 private:
  std::vector<ExecutionRecord> records_;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace stune::service
