#include "service/tradeoff.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "disc/engine.hpp"
#include "service/cloud_tuner.hpp"
#include "simcore/rng.hpp"
#include "tuning/tuners.hpp"
#include "workload/execute.hpp"

namespace stune::service {

bool ParetoFrontier::insert(TradeoffPoint point) {
  // Dominated by an existing point?
  for (const auto& p : points_) {
    if (p.runtime <= point.runtime && p.cost <= point.cost) return false;
  }
  // Evict everything the new point dominates.
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [&](const TradeoffPoint& p) {
                                 return point.runtime <= p.runtime && point.cost <= p.cost;
                               }),
                points_.end());
  const auto pos = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const TradeoffPoint& a, const TradeoffPoint& b) { return a.runtime < b.runtime; });
  points_.insert(pos, std::move(point));
  return true;
}

std::optional<TradeoffPoint> ParetoFrontier::fastest_under_cost(double budget) const {
  // Points are sorted by runtime ascending; the first affordable one wins.
  for (const auto& p : points_) {
    if (p.cost <= budget) return p;
  }
  return std::nullopt;
}

std::optional<TradeoffPoint> ParetoFrontier::cheapest_under_runtime(double deadline) const {
  // Cost decreases along the frontier, so the last point within the
  // deadline is the cheapest one.
  std::optional<TradeoffPoint> best;
  for (const auto& p : points_) {
    if (p.runtime <= deadline) best = p;
  }
  return best;
}

ParetoFrontier explore_tradeoff(const workload::Workload& workload, simcore::Bytes input_bytes,
                                const TradeoffExplorerOptions& options) {
  ParetoFrontier frontier;
  simcore::Rng rng(options.seed);

  auto run_on = [&](const cluster::ClusterSpec& spec,
                    const config::Configuration& conf) -> std::optional<TradeoffPoint> {
    const auto cl = cluster::Cluster::from_spec(spec);
    disc::EngineOptions eopts;
    eopts.cost = options.cost_model;
    eopts.seed = options.seed;
    const disc::SparkSimulator sim(cl, eopts);
    const auto r = workload::execute(workload, input_bytes, sim, conf);
    if (!r.success) return std::nullopt;
    return TradeoffPoint{spec, conf, r.runtime, r.cost};
  };

  // Phase 1: cloud diversity. Walk the catalog at several cluster sizes
  // under the provider auto-config; the frontier keeps what matters.
  const auto cloud_budget = static_cast<std::size_t>(
      options.cloud_fraction * static_cast<double>(options.budget));
  std::size_t spent = 0;
  const auto& catalog = cluster::instance_catalog();
  std::vector<cluster::ClusterSpec> cloud_samples;
  for (const auto& type : catalog) {
    for (const int vms : {options.min_vms, (options.min_vms + options.max_vms) / 2,
                          options.max_vms}) {
      cloud_samples.push_back({type.name, vms});
    }
  }
  rng.shuffle(cloud_samples);
  std::vector<TradeoffPoint> cloud_points;
  for (const auto& spec : cloud_samples) {
    if (spent >= cloud_budget) break;
    ++spent;
    const auto point = run_on(spec, provider_auto_config(cluster::Cluster::from_spec(spec)));
    if (point) {
      cloud_points.push_back(*point);
      frontier.insert(*point);
    }
  }

  // Phase 2: DISC refinement on the frontier's clusters — spread the rest
  // of the budget over the distinct clusters currently on the frontier.
  std::vector<cluster::ClusterSpec> refine;
  for (const auto& p : frontier.points()) {
    if (std::find(refine.begin(), refine.end(), p.cluster) == refine.end()) {
      refine.push_back(p.cluster);
    }
  }
  if (!refine.empty() && spent < options.budget) {
    const std::size_t per_cluster =
        std::max<std::size_t>(3, (options.budget - spent) / refine.size());
    for (const auto& spec : refine) {
      if (spent >= options.budget) break;
      const std::size_t budget = std::min(per_cluster, options.budget - spent);
      tuning::Objective obj = [&](const config::Configuration& c) -> tuning::EvalOutcome {
        ++spent;
        const auto point = run_on(spec, c);
        if (!point) return {3600.0, true};
        frontier.insert(*point);
        return {point->runtime, false};
      };
      tuning::TuneOptions topts;
      topts.budget = budget;
      topts.seed = rng.next();
      tuning::BayesOptTuner(tuning::BayesOptTuner::Params{.init_samples = 3,
                                                          .candidates = 128,
                                                          .local_candidates = 16})
          .tune(config::spark_space(), obj, topts);
    }
  }
  return frontier;
}

}  // namespace stune::service
