#include "service/tuning_service.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simcore/mutex.hpp"
#include "workload/execute.hpp"

namespace stune::service {

using simcore::MutexLock;

namespace {

// Domain tag separating the fault-injection seed from every other stream
// derived from ServiceOptions::seed.
constexpr std::uint64_t kFaultSeedTag = 0xFA171ULL;

// Entry::own_donors cap: enough for any warm-start policy (max_observations
// defaults to 10) without letting a long-lived tenant grow without bound.
constexpr std::size_t kMaxOwnDonors = 16;

}  // namespace

TuningService::TenantShard::TenantShard(const ServiceOptions& options, std::size_t shard_index)
    : index(shard_index),
      executor(tuning::ExecutorOptions{.jobs = options.jobs}),
      ctx_pool(executor.jobs() + 1),
      admission(options.admission) {}

TuningService::TuningService(ServiceOptions options)
    : options_(std::move(options)), kb_(options_.knowledge) {
  const std::size_t n = std::max<std::size_t>(1, options_.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<TenantShard>(options_, i));
  }
}

TuningService::~TuningService() = default;

std::size_t TuningService::shard_index_for_tenant(const std::string& tenant) const {
  return static_cast<std::size_t>(simcore::hash_string(tenant)) % shards_.size();
}

TuningService::TenantShard& TuningService::shard_for_handle(int handle) const {
  const auto n = static_cast<long long>(shards_.size());
  const long long idx = ((static_cast<long long>(handle) % n) + n) % n;
  return *shards_[static_cast<std::size_t>(idx)];
}

int TuningService::submit(std::string tenant, std::shared_ptr<const workload::Workload> workload,
                          simcore::Bytes initial_input) {
  if (workload == nullptr) throw std::invalid_argument("submit: null workload");
  if (initial_input == 0) throw std::invalid_argument("submit: input size must be positive");
  TenantShard& sh = *shards_[shard_index_for_tenant(tenant)];
  const MutexLock lock(sh.mu);
  // Handles encode their shard: handle % shards == shard index. With one
  // shard this degenerates to 1, 2, 3, ... (the pre-sharding numbering).
  const int handle =
      sh.next_seq++ * static_cast<int>(shards_.size()) + static_cast<int>(sh.index);
  auto [it, inserted] = sh.entries.emplace(handle, Entry(options_.slo));
  Entry& e = it->second;
  e.tenant = std::move(tenant);
  e.workload = std::move(workload);
  e.input_bytes = initial_input;
  e.controller = std::make_unique<adaptive::RetuningController>(
      adaptive::make_detector(options_.detector), options_.retuning);
  {
    const MutexLock ctl(sh.ctl_mu);
    TenantHealth& t = sh.tenant_view[e.tenant];
    t.tenant = e.tenant;
    ++t.workloads;
  }
  return handle;
}

TuningService::Entry& TuningService::entry(TenantShard& sh, int handle) {
  const auto it = sh.entries.find(handle);
  if (it == sh.entries.end()) throw std::out_of_range("unknown workload handle");
  return it->second;
}

const TuningService::Entry& TuningService::entry(const TenantShard& sh, int handle) {
  const auto it = sh.entries.find(handle);
  if (it == sh.entries.end()) throw std::out_of_range("unknown workload handle");
  return it->second;
}

disc::ExecutionReport TuningService::execute(const TenantShard& sh, const Entry& e,
                                             const config::Configuration& conf,
                                             std::uint64_t seed_salt, int attempt) const {
  disc::EngineOptions eopts;
  eopts.cost = options_.cost_model;
  eopts.contention = options_.contention;
  eopts.seed = simcore::hash_combine(options_.seed, seed_salt);
  if (options_.faults.active()) {
    // The fault plan is a pure function of (service seed, what runs): the
    // same trial replayed sees the same weather, a retry (attempt > 0)
    // re-rolls it, and the plan fingerprints into the engine context so the
    // shared cache never serves attempt A's outcome for attempt B.
    const std::uint64_t trial_fp = simcore::hash_combine(
        simcore::hash_combine(simcore::hash_string(e.workload->name()), conf.fingerprint()),
        simcore::hash_combine(static_cast<std::uint64_t>(e.input_bytes), seed_salt));
    const simcore::FaultInjector injector(options_.faults,
                                          simcore::hash_combine(options_.seed, kFaultSeedTag));
    eopts.faults = injector.plan(trial_fp, attempt);
  }
  const disc::SparkSimulator simulator(cluster::Cluster::from_spec(e.cluster), eopts);
  // Lease an engine context for the miss path; the lease is checkout-only
  // (rank 45) and no other ranked mutex is acquired while it is held —
  // workload::execute takes the cache shard lock (rank 50) only inside
  // lookup/insert, strictly after/before arena work, never around it.
  const auto ctx = sh.ctx_pool.acquire();
  return workload::execute(*e.workload, e.input_bytes, simulator, conf, cache_, *ctx);
}

std::vector<transfer::DonorObservation> TuningService::donor_pool(const Entry& e) const {
  if (options_.transfer_scope == ServiceOptions::TransferScope::kTenantLocal) {
    return e.own_donors;
  }
  return kb_.indexed_donors();
}

void TuningService::degrade(Entry& e) const {
  ++e.degraded_runs;
  if (!options_.enable_transfer || !e.signature.has_value()) return;
  // Best similar successful configuration in the donor pool — the same
  // donors warm starts draw from, but used directly instead of as a seed.
  const auto donors = donor_pool(e);
  if (donors.empty()) return;
  const auto picks = transfer::select_warm_start(*e.signature, donors, options_.transfer);
  const tuning::Observation* best = nullptr;
  for (const auto& o : picks) {
    if (o.failed) continue;
    if (best == nullptr || o.runtime < best->runtime) best = &o;
  }
  if (best != nullptr) e.config = best->config;
}

void TuningService::degraded_provision(Entry& e) const {
  // A degraded first run cannot afford stage-1 exploration: run on the
  // default cluster with the provider heuristic. `provisioned` stays false
  // so the first run with capacity provisions for real.
  e.cluster = options_.default_cluster;
  e.config = provider_auto_config(cluster::Cluster::from_spec(e.cluster));
}

CircuitBreaker& TuningService::breaker_for(TenantShard& sh, const std::string& tenant) {
  auto it = sh.breakers.find(tenant);
  if (it == sh.breakers.end()) {
    it = sh.breakers.emplace(tenant, CircuitBreaker(options_.breaker)).first;
  }
  return it->second;
}

bool TuningService::try_retrieve(TenantShard& sh, Entry& e) {
  const ServiceOptions::RetrievalPolicy& policy = options_.retrieval;
  if (!policy.enabled || !options_.enable_transfer ||
      options_.transfer_scope != ServiceOptions::TransferScope::kGlobal) {
    return false;
  }
  // A query needs a signature, and a workload's very first run has none —
  // the first serve always falls through to the tuning ladder. Likewise an
  // index nobody has populated yet. Both are fallbacks (retrieval wanted
  // but unable to query), not misses (queried, nothing qualified).
  const auto snap = kb_.retrieval_snapshot();
  if (!e.signature.has_value() || snap->size() == 0) {
    const MutexLock ctl(sh.ctl_mu);
    ++sh.counters.retrieval_fallbacks;
    return false;
  }

  RetrievalQuery q;
  q.signature = *e.signature;
  q.input_bytes = e.input_bytes;
  q.size_tolerance = policy.size_tolerance;
  q.min_similarity = policy.min_similarity;
  q.probe_cells = policy.probe_cells;
  RetrievalHit hits[RetrievalSnapshot::kMaxK];
  const std::size_t n = snap->query(q, policy.top_k, hits);

  // Adopt the *fastest* qualifying neighbor, not the nearest: the nearest
  // is usually this workload's own previous run, which would just hand the
  // incumbent configuration back.
  const RetrievalHit* best = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (hits[i].config == nullptr) continue;
    if (best == nullptr || hits[i].runtime < best->runtime) best = &hits[i];
  }
  {
    const MutexLock ctl(sh.ctl_mu);
    if (best != nullptr) {
      ++sh.counters.retrieval_hits;
    } else {
      ++sh.counters.retrieval_misses;
    }
  }
  if (best == nullptr) return false;

  // Zero-trial adoption: no stage-1 exploration either — a first-touch
  // entry gets the degraded-style default cluster (provisioned stays false,
  // so a later real tuning provisions properly).
  if (!e.provisioned) degraded_provision(e);
  e.config = *best->config;
  e.tuned = true;
  return true;
}

void TuningService::record_to_kb(Entry& e, const config::Configuration& conf,
                                 const disc::ExecutionReport& report, bool from_tuning) {
  ExecutionRecord r;
  r.tenant = e.tenant;
  r.workload_label = e.workload->name();
  r.cluster = e.cluster;
  r.config = conf;
  r.input_bytes = e.input_bytes;
  r.runtime = report.runtime;
  r.cost = report.cost;
  r.failed = !report.success;
  r.from_tuning = from_tuning;
  r.signature = transfer::characterize(report);
  if (report.success) {
    // Mirror into the entry's own donor list (the kTenantLocal pool):
    // runtime-ascending insert, capped, earlier records win ties.
    transfer::DonorObservation d;
    d.observation.config = conf;
    d.observation.runtime = report.runtime;
    d.observation.failed = false;
    d.observation.objective = report.runtime;
    d.signature = r.signature;
    auto pos = std::find_if(
        e.own_donors.begin(), e.own_donors.end(),
        [&](const transfer::DonorObservation& o) { return o.observation.runtime > report.runtime; });
    e.own_donors.insert(pos, std::move(d));
    if (e.own_donors.size() > kMaxOwnDonors) e.own_donors.resize(kMaxOwnDonors);
  }
  kb_.record_execution(std::move(r));
}

void TuningService::provision(TenantShard& sh, Entry& e) {
  if (options_.tune_cloud) {
    CloudTunerOptions copts = options_.cloud;
    copts.seed = simcore::hash_combine(options_.seed, simcore::hash_string(e.workload->name()));
    copts.contention = options_.contention;
    copts.cost_model = options_.cost_model;
    const CloudTuner cloud(copts);
    const CloudChoice choice = cloud.choose(*e.workload, e.input_bytes, cache_, sh.executor);
    e.cluster = choice.spec;
    // Stage-1 exploration is tuning spend too.
    e.ledger.add_tuning_run(choice.trial_time, choice.trial_cost);
  } else {
    e.cluster = options_.default_cluster;
  }
  e.provisioned = true;
  // Until stage 2 finishes, run with the provider's heuristic config.
  e.config = provider_auto_config(cluster::Cluster::from_spec(e.cluster));
}

void TuningService::tune_disc(TenantShard& sh, Entry& e, std::size_t budget, double deadline_s) {
  const auto space = config::spark_space();

  tuning::TuneOptions topts;
  topts.budget = budget;
  topts.retry = options_.retry;
  // The request deadline tightens the per-trial deadline: a trial that
  // cannot finish inside the caller's budget is not worth running longer.
  topts.retry.trial_deadline_s = std::min(topts.retry.trial_deadline_s, deadline_s);
  // The tuning seed is a pure function of (service seed, tenant, workload,
  // this entry's tuning ordinal): no global state, so one tenant's seeds
  // are identical whatever the rest of the fleet is doing.
  topts.seed = simcore::hash_combine(
      options_.seed,
      simcore::hash_combine(simcore::hash_string(e.tenant),
                            simcore::hash_combine(simcore::hash_string(e.workload->name()),
                                                  ++e.tune_counter)));
  // Probe the incumbent configuration: it yields the workload signature
  // (for transfer), and the bar any tuner result has to clear.
  const auto probe = execute(sh, e, e.config, /*seed_salt=*/0);
  e.ledger.add_tuning_run(probe.runtime, probe.cost);
  record_to_kb(e, e.config, probe, /*from_tuning=*/true);
  e.signature = transfer::characterize(probe);
  const double incumbent_runtime = probe.success
                                       ? probe.runtime
                                       : std::numeric_limits<double>::infinity();
  // Scale the failure-penalty floor to this workload: an instantly-crashing
  // trial must score no better than the incumbent actually runs.
  if (probe.success) {
    topts.failure_penalty_floor = std::max(topts.failure_penalty_floor, probe.runtime);
  }

  // Warm start: pull donors similar to this workload's signature (possibly
  // from other tenants, when the transfer scope allows).
  if (options_.enable_transfer) {
    const auto donors = donor_pool(e);
    if (options_.transfer_strategy == ServiceOptions::TransferStrategy::kAroma &&
        !donors.empty()) {
      transfer::AromaAdvisor advisor(transfer::AromaAdvisor::Options{
          .clusters = 4, .suggestions = options_.transfer.max_observations,
          .seed = options_.seed});
      advisor.fit(donors);
      topts.warm_start = advisor.suggest(*e.signature);
    } else if (!donors.empty()) {
      topts.warm_start = transfer::select_warm_start(*e.signature, donors, options_.transfer);
    }
  }

  // The objective is pure — execute() memoizes through the shared cache and
  // touches no per-entry state — so trials can run on executor worker
  // threads. The commit hook runs serially in suggestion order on this
  // thread; it only gathers the committed observations (lambdas are
  // analyzed as separate functions, so they cannot carry the shard mutex's
  // capability into record_to_kb). Ledger and knowledge-base bookkeeping
  // replay the gathered order right after the session — re-fetching each
  // report is a guaranteed cache hit of the run the objective just produced.
  tuning::TrialObjective objective = [&](const config::Configuration& c,
                                         int attempt) -> tuning::EvalOutcome {
    const auto report = execute(sh, e, c, /*seed_salt=*/0, attempt);
    tuning::EvalOutcome out{report.runtime, !report.success};
    out.fault = report.success ? tuning::FaultClass::kNone
                : report.infra_fault ? tuning::FaultClass::kInfra
                                     : tuning::FaultClass::kConfig;
    return out;
  };
  std::vector<tuning::Observation> committed;
  committed.reserve(budget);
  tuning::TrialExecutor::CommitHook hook = [&committed](const tuning::Observation& o) {
    committed.push_back(o);
  };

  const auto tuner = tuning::make_tuner(options_.tuner);
  const auto result = sh.executor.run(*tuner, space, objective, topts, hook);
  CircuitBreaker& breaker = breaker_for(sh, e.tenant);
  for (const auto& o : committed) {
    // Replay every attempt (guaranteed cache hits): retries burned real
    // cluster time and money even though only the final attempt scored.
    for (int attempt = 0; attempt < o.attempts; ++attempt) {
      const auto report = execute(sh, e, o.config, /*seed_salt=*/0, attempt);
      const double charged = std::min(report.runtime, topts.retry.trial_deadline_s);
      e.ledger.add_tuning_run(charged, report.cost);
      // The knowledge base keeps the settled outcome only, and never an
      // infra fault — a revoked VM says nothing about the configuration,
      // and a poisoned record would mislead every future warm start.
      if (attempt + 1 == o.attempts && o.fault != tuning::FaultClass::kInfra) {
        record_to_kb(e, o.config, report, /*from_tuning=*/true);
      }
    }
    // Health bookkeeping: only the environment moves the breaker. A config
    // fault means the infrastructure executed the trial faithfully.
    if (o.fault == tuning::FaultClass::kInfra) {
      breaker.record_infra_fault();
    } else {
      breaker.record_success();
    }
  }
  if (result.found_feasible && result.best_runtime < incumbent_runtime) {
    e.config = result.best;
    e.best_runtime = result.best_runtime;
  }
  e.tuned = true;
  ++e.tunings;
  e.controller->notify_retuned();
}

void TuningService::refresh_tenant_view(TenantShard& sh, const Entry& e,
                                        std::size_t degraded_delta) {
  // O(1) incremental update: the view accumulates degrade deltas (every
  // degrade happens inside run_locked) and re-reads the breaker, so it
  // stays exactly the aggregate the pre-sharding health() computed by
  // scanning all entries — without health() ever taking the shard mutex.
  BreakerState breaker = BreakerState::kClosed;
  int trips = 0;
  int consecutive = 0;
  const auto bit = sh.breakers.find(e.tenant);
  if (bit != sh.breakers.end()) {
    breaker = bit->second.state();
    trips = bit->second.trips();
    consecutive = bit->second.consecutive_infra_faults();
  }
  const MutexLock ctl(sh.ctl_mu);
  TenantHealth& t = sh.tenant_view[e.tenant];
  t.tenant = e.tenant;
  t.breaker = breaker;
  t.trips = trips;
  t.consecutive_infra_faults = consecutive;
  t.degraded_runs += degraded_delta;
}

disc::ExecutionReport TuningService::run_locked(TenantShard& sh, Entry& e,
                                                simcore::Bytes input_bytes, double deadline_s,
                                                bool admission_exempt, bool& degraded,
                                                bool& retrieved) {
  if (input_bytes != 0) e.input_bytes = input_bytes;
  const std::size_t degraded_before = e.degraded_runs;

  // Zero-execution first stop (DESIGN.md §15): before spending any tuning
  // capacity, ask the retrieval tier whether the fleet already knows a
  // configuration for this workload shape. A hit answers with zero trials.
  if (!e.tuned && try_retrieve(sh, e)) {
    retrieved = true;
  }

  if (!e.tuned) {
    // Tuning is the expensive part of a request: it needs both *capacity*
    // (the shard's tuning token bucket — always granted to the exempt
    // run_once path) and a closed *breaker* (tuning spends budget into the
    // environment; an open breaker means the environment is eating trials).
    // Capacity is checked first so a shed shard does not advance breaker
    // cooldowns as a side effect of being busy.
    bool capacity = admission_exempt;
    if (!capacity) {
      const MutexLock ctl(sh.ctl_mu);
      capacity = sh.admission.try_take_tuning();
    }
    if (!capacity) {
      if (!e.provisioned) degraded_provision(e);
      degrade(e);
      degraded = true;
    } else {
      if (!e.provisioned) provision(sh, e);
      if (breaker_for(sh, e.tenant).allow_request()) {
        tune_disc(sh, e, options_.tuning_budget, deadline_s);
        const MutexLock ctl(sh.ctl_mu);
        ++sh.counters.tuning_sessions;
      } else {
        degrade(e);
        degraded = true;
      }
    }
  }

  const auto report = execute(sh, e, e.config, /*seed_salt=*/1 + e.production_runs);
  ++e.production_runs;
  e.last_runtime = report.runtime;
  if (report.success && (e.best_runtime == 0.0 || report.runtime < e.best_runtime)) {
    e.best_runtime = report.runtime;
  }
  e.signature = transfer::characterize(report);

  // SLO bookkeeping against the best-known similar runtime (which may come
  // from other tenants running a similar workload at a similar scale).
  const auto reference = kb_.best_similar_runtime(*e.signature, e.input_bytes,
                                                  options_.slo_reference_similarity);
  e.slo.observe(report.runtime, report.cost, reference);

  record_to_kb(e, e.config, report, /*from_tuning=*/false);

  if (options_.ledger_counterfactual) {
    // Amortization: what would an untuned run have cost on the same input?
    // (An accounting counterfactual — not an actual execution.)
    const auto baseline_config =
        options_.ledger_baseline == ServiceOptions::Baseline::kSparkDefault
            ? config::spark_space()->default_config()
            : provider_auto_config(cluster::Cluster::from_spec(e.cluster));
    const auto baseline = execute(sh, e, baseline_config, /*seed_salt=*/1 + (e.production_runs - 1));
    double baseline_runtime = baseline.runtime;
    double baseline_cost = baseline.cost;
    if (!baseline.success) {
      // The untuned counterfactual crashes: that user burns the crash and
      // still has to produce the result (approximated by the tuned run).
      baseline_runtime += report.runtime;
      baseline_cost += report.cost;
    }
    e.ledger.add_production_run(report.runtime, report.cost, baseline_runtime, baseline_cost);
  } else {
    e.ledger.add_production_run(report.runtime, report.cost, report.runtime, report.cost);
  }

  // The production run's outcome is health evidence too: an infra fault
  // pushes the breaker toward open, a clean run heals it.
  CircuitBreaker& breaker = breaker_for(sh, e.tenant);
  if (!report.success && report.infra_fault) {
    breaker.record_infra_fault();
  } else {
    breaker.record_success();
  }

  // Drift watch: crashed runs demand re-tuning unconditionally.
  const bool drift = e.controller->observe(report.runtime);
  if (drift || !report.success) {
    bool capacity = admission_exempt;
    if (!capacity) {
      const MutexLock ctl(sh.ctl_mu);
      capacity = sh.admission.try_take_tuning();
    }
    if (!capacity) {
      degrade(e);
      degraded = true;
    } else {
      if (options_.reprovision_on_drift) {
        provision(sh, e);  // elastic response: rethink the cluster itself
      }
      if (breaker.allow_request()) {
        tune_disc(sh, e, options_.retuning_budget, deadline_s);
        const MutexLock ctl(sh.ctl_mu);
        ++sh.counters.tuning_sessions;
      } else {
        degrade(e);
        degraded = true;
      }
    }
  }

  refresh_tenant_view(sh, e, e.degraded_runs - degraded_before);
  return report;
}

ServeResult TuningService::serve(int handle, const ServeRequest& request) {
  TenantShard& sh = shard_for_handle(handle);
  ServeResult result;

  // Admission: decide on the control plane, release it, and only then queue
  // on the shard (ctl_mu is never held while waiting for mu).
  {
    const MutexLock ctl(sh.ctl_mu);
    if (request.deadline_s <= 0.0) {
      ++sh.counters.shed_deadline;
      result.outcome = ServeOutcome::kShed;
      result.shed_reason = ShedReason::kDeadlineInfeasible;
      return result;
    }
    switch (sh.admission.try_admit(request.arrival_s)) {
      case AdmitDecision::kAdmit:
        break;
      case AdmitDecision::kShedRateLimited:
        ++sh.counters.shed_rate_limited;
        result.outcome = ServeOutcome::kShed;
        result.shed_reason = ShedReason::kRateLimited;
        return result;
      case AdmitDecision::kShedSaturated:
        ++sh.counters.shed_saturated;
        result.outcome = ServeOutcome::kShed;
        result.shed_reason = ShedReason::kShardSaturated;
        return result;
    }
  }

  bool degraded = false;
  bool retrieved = false;
  try {
    const MutexLock lock(sh.mu);
    Entry& e = entry(sh, handle);
    result.report =
        run_locked(sh, e, request.input_bytes, request.deadline_s, /*admission_exempt=*/false,
                   degraded, retrieved);
  } catch (...) {
    const MutexLock ctl(sh.ctl_mu);
    sh.admission.release();
    throw;
  }

  // Degradation wins the label: a retrieved config whose run then drifted
  // into a shed re-tune was not fully served. Otherwise a retrieval-adopted
  // config makes this the zero-trial outcome.
  result.outcome = degraded    ? ServeOutcome::kDegraded
                   : retrieved ? ServeOutcome::kRetrieved
                               : ServeOutcome::kServed;
  if (result.report.runtime > request.deadline_s) result.deadline_exceeded = true;
  {
    const MutexLock ctl(sh.ctl_mu);
    sh.admission.release();
    if (degraded) {
      ++sh.counters.degraded;
    } else {
      ++sh.counters.served;
    }
    if (result.deadline_exceeded) ++sh.counters.deadline_exceeded;
  }
  return result;
}

disc::ExecutionReport TuningService::run_once(int handle, simcore::Bytes input_bytes) {
  TenantShard& sh = shard_for_handle(handle);
  const MutexLock lock(sh.mu);
  Entry& e = entry(sh, handle);
  bool degraded = false;
  bool retrieved = false;
  return run_locked(sh, e, input_bytes, std::numeric_limits<double>::infinity(),
                    /*admission_exempt=*/true, degraded, retrieved);
}

WorkloadStatus TuningService::status(int handle) const {
  TenantShard& sh = shard_for_handle(handle);
  const MutexLock lock(sh.mu);
  const Entry& e = entry(sh, handle);
  WorkloadStatus s;
  s.tenant = e.tenant;
  s.workload = e.workload->name();
  s.cluster = e.cluster;
  s.config = e.config;
  s.tuned = e.tuned;
  s.production_runs = e.production_runs;
  s.tunings = e.tunings;
  s.last_runtime = e.last_runtime;
  s.best_runtime = e.best_runtime;
  s.slo_attainment = e.slo.attainment();
  s.tuning_cost = e.ledger.tuning_cost();
  s.cumulative_savings = e.ledger.cumulative_savings();
  s.break_even_run = e.ledger.break_even_run();
  s.degraded_runs = e.degraded_runs;
  return s;
}

ServiceHealth TuningService::health(bool per_tenant_detail) const {
  ServiceHealth h;
  // One control-plane lock per shard, never a shard's main mutex: the
  // snapshot returns promptly even while every shard is mid-tuning.
  std::map<std::string, TenantHealth> by_tenant;
  for (const auto& shp : shards_) {
    const TenantShard& sh = *shp;
    ShardHealth s;
    s.shard = sh.index;
    const MutexLock ctl(sh.ctl_mu);
    s.inflight = sh.admission.inflight();
    s.peak_inflight = sh.admission.peak_inflight();
    s.served = sh.counters.served;
    s.degraded = sh.counters.degraded;
    s.shed_rate_limited = sh.counters.shed_rate_limited;
    s.shed_saturated = sh.counters.shed_saturated;
    s.shed_deadline = sh.counters.shed_deadline;
    s.deadline_exceeded = sh.counters.deadline_exceeded;
    s.tuning_sessions = sh.counters.tuning_sessions;
    s.retrieval_hits = sh.counters.retrieval_hits;
    s.retrieval_misses = sh.counters.retrieval_misses;
    s.retrieval_fallbacks = sh.counters.retrieval_fallbacks;
    s.tenants = sh.tenant_view.size();
    for (const auto& [tenant, t] : sh.tenant_view) {
      s.workloads += t.workloads;
      if (t.breaker == BreakerState::kOpen) ++s.open_breakers;
      h.total_degraded_runs += t.degraded_runs;
      if (per_tenant_detail) by_tenant.emplace(tenant, t);
    }
    h.tenants += s.tenants;
    h.open_breakers += s.open_breakers;
    h.served += s.served;
    h.degraded += s.degraded;
    h.shed += s.shed_rate_limited + s.shed_saturated + s.shed_deadline;
    h.retrieved += s.retrieval_hits;
    h.retrieval_misses += s.retrieval_misses;
    h.retrieval_fallbacks += s.retrieval_fallbacks;
    h.per_shard.push_back(std::move(s));
  }
  // The index view costs one lock-free snapshot load, not a KB lock.
  {
    const auto snap = kb_.retrieval_snapshot();
    h.retrieval_epoch = snap->epoch();
    h.retrieval_entries = snap->size();
  }
  if (per_tenant_detail) {
    h.per_tenant.reserve(by_tenant.size());
    for (auto& [tenant, t] : by_tenant) {
      (void)tenant;
      h.per_tenant.push_back(std::move(t));
    }
  }
  return h;
}

KnowledgeBase TuningService::knowledge_base() const { return kb_.snapshot(); }

const CostLedger& TuningService::ledger(int handle) const {
  TenantShard& sh = shard_for_handle(handle);
  const MutexLock lock(sh.mu);
  return entry(sh, handle).ledger;
}

const SloTracker& TuningService::slo_tracker(int handle) const {
  TenantShard& sh = shard_for_handle(handle);
  const MutexLock lock(sh.mu);
  return entry(sh, handle).slo;
}

}  // namespace stune::service
