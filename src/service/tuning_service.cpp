#include "service/tuning_service.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "simcore/mutex.hpp"
#include "workload/execute.hpp"

namespace stune::service {

using simcore::MutexLock;

namespace {

// Domain tag separating the fault-injection seed from every other stream
// derived from ServiceOptions::seed.
constexpr std::uint64_t kFaultSeedTag = 0xFA171ULL;

}  // namespace

TuningService::TuningService(ServiceOptions options)
    : options_(std::move(options)),
      executor_(tuning::ExecutorOptions{.jobs = options_.jobs}),
      ctx_pool_(executor_.jobs() + 1) {}

int TuningService::submit(std::string tenant, std::shared_ptr<const workload::Workload> workload,
                          simcore::Bytes initial_input) {
  if (workload == nullptr) throw std::invalid_argument("submit: null workload");
  if (initial_input == 0) throw std::invalid_argument("submit: input size must be positive");
  const MutexLock lock(mu_);
  const int handle = next_handle_++;
  auto [it, inserted] = entries_.emplace(handle, Entry(options_.slo));
  Entry& e = it->second;
  e.tenant = std::move(tenant);
  e.workload = std::move(workload);
  e.input_bytes = initial_input;
  e.controller = std::make_unique<adaptive::RetuningController>(
      adaptive::make_detector(options_.detector), options_.retuning);
  return handle;
}

TuningService::Entry& TuningService::entry(int handle) {
  const auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::out_of_range("unknown workload handle");
  return it->second;
}

const TuningService::Entry& TuningService::entry(int handle) const {
  const auto it = entries_.find(handle);
  if (it == entries_.end()) throw std::out_of_range("unknown workload handle");
  return it->second;
}

disc::ExecutionReport TuningService::execute(const Entry& e, const config::Configuration& conf,
                                             std::uint64_t seed_salt, int attempt) const {
  disc::EngineOptions eopts;
  eopts.cost = options_.cost_model;
  eopts.contention = options_.contention;
  eopts.seed = simcore::hash_combine(options_.seed, seed_salt);
  if (options_.faults.active()) {
    // The fault plan is a pure function of (service seed, what runs): the
    // same trial replayed sees the same weather, a retry (attempt > 0)
    // re-rolls it, and the plan fingerprints into the engine context so the
    // shared cache never serves attempt A's outcome for attempt B.
    const std::uint64_t trial_fp = simcore::hash_combine(
        simcore::hash_combine(simcore::hash_string(e.workload->name()), conf.fingerprint()),
        simcore::hash_combine(static_cast<std::uint64_t>(e.input_bytes), seed_salt));
    const simcore::FaultInjector injector(options_.faults,
                                          simcore::hash_combine(options_.seed, kFaultSeedTag));
    eopts.faults = injector.plan(trial_fp, attempt);
  }
  const disc::SparkSimulator simulator(cluster::Cluster::from_spec(e.cluster), eopts);
  // Lease an engine context for the miss path; the lease is checkout-only
  // (rank 45) and no other ranked mutex is acquired while it is held —
  // workload::execute takes the cache shard lock (rank 50) only inside
  // lookup/insert, strictly after/before arena work, never around it.
  const auto ctx = ctx_pool_.acquire();
  return workload::execute(*e.workload, e.input_bytes, simulator, conf, cache_, *ctx);
}

void TuningService::degrade(Entry& e) {
  ++e.degraded_runs;
  if (!options_.enable_transfer || kb_.size() == 0 || !e.signature.has_value()) return;
  // Best similar successful configuration anybody has run — the same donor
  // pool warm starts draw from, but used directly instead of as a seed.
  const auto donors = kb_.donors_for();
  const auto picks = transfer::select_warm_start(*e.signature, donors, options_.transfer);
  const tuning::Observation* best = nullptr;
  for (const auto& o : picks) {
    if (o.failed) continue;
    if (best == nullptr || o.runtime < best->runtime) best = &o;
  }
  if (best != nullptr) e.config = best->config;
}

CircuitBreaker& TuningService::breaker_for(const std::string& tenant) {
  auto it = breakers_.find(tenant);
  if (it == breakers_.end()) {
    it = breakers_.emplace(tenant, CircuitBreaker(options_.breaker)).first;
  }
  return it->second;
}

void TuningService::record_to_kb(const Entry& e, const config::Configuration& conf,
                                 const disc::ExecutionReport& report, bool from_tuning) {
  ExecutionRecord r;
  r.tenant = e.tenant;
  r.workload_label = e.workload->name();
  r.cluster = e.cluster;
  r.config = conf;
  r.input_bytes = e.input_bytes;
  r.runtime = report.runtime;
  r.cost = report.cost;
  r.failed = !report.success;
  r.from_tuning = from_tuning;
  r.signature = transfer::characterize(report);
  kb_.record(std::move(r));
}

void TuningService::provision(Entry& e) {
  if (options_.tune_cloud) {
    CloudTunerOptions copts = options_.cloud;
    copts.seed = simcore::hash_combine(options_.seed, simcore::hash_string(e.workload->name()));
    copts.contention = options_.contention;
    copts.cost_model = options_.cost_model;
    const CloudTuner cloud(copts);
    const CloudChoice choice = cloud.choose(*e.workload, e.input_bytes, cache_, executor_);
    e.cluster = choice.spec;
    // Stage-1 exploration is tuning spend too.
    e.ledger.add_tuning_run(choice.trial_time, choice.trial_cost);
  } else {
    e.cluster = options_.default_cluster;
  }
  e.provisioned = true;
  // Until stage 2 finishes, run with the provider's heuristic config.
  e.config = provider_auto_config(cluster::Cluster::from_spec(e.cluster));
}

void TuningService::tune_disc(Entry& e, std::size_t budget) {
  const auto space = config::spark_space();

  tuning::TuneOptions topts;
  topts.budget = budget;
  topts.retry = options_.retry;
  topts.seed = simcore::hash_combine(
      options_.seed, simcore::hash_combine(simcore::hash_string(e.workload->name()),
                                           ++tune_counter_));
  // Probe the incumbent configuration: it yields the workload signature
  // (for transfer), and the bar any tuner result has to clear.
  const auto probe = execute(e, e.config, /*seed_salt=*/0);
  e.ledger.add_tuning_run(probe.runtime, probe.cost);
  record_to_kb(e, e.config, probe, /*from_tuning=*/true);
  e.signature = transfer::characterize(probe);
  const double incumbent_runtime = probe.success
                                       ? probe.runtime
                                       : std::numeric_limits<double>::infinity();
  // Scale the failure-penalty floor to this workload: an instantly-crashing
  // trial must score no better than the incumbent actually runs.
  if (probe.success) {
    topts.failure_penalty_floor = std::max(topts.failure_penalty_floor, probe.runtime);
  }

  // Warm start from the knowledge base: pull donors similar to this
  // workload's signature (possibly from other tenants).
  if (options_.enable_transfer && kb_.size() > 0) {
    const auto donors = kb_.donors_for();
    if (options_.transfer_strategy == ServiceOptions::TransferStrategy::kAroma &&
        !donors.empty()) {
      transfer::AromaAdvisor advisor(transfer::AromaAdvisor::Options{
          .clusters = 4, .suggestions = options_.transfer.max_observations,
          .seed = options_.seed});
      advisor.fit(donors);
      topts.warm_start = advisor.suggest(*e.signature);
    } else {
      topts.warm_start = transfer::select_warm_start(*e.signature, donors, options_.transfer);
    }
  }

  // The objective is pure — execute() memoizes through the shared cache and
  // touches no per-entry state — so trials can run on executor worker
  // threads. The commit hook runs serially in suggestion order on this
  // thread; it only gathers the committed observations (lambdas are
  // analyzed as separate functions, so they cannot carry mu_'s capability
  // into record_to_kb). Ledger and knowledge-base bookkeeping replay the
  // gathered order right after the session — re-fetching each report is a
  // guaranteed cache hit of the run the objective just produced.
  tuning::TrialObjective objective = [&](const config::Configuration& c,
                                         int attempt) -> tuning::EvalOutcome {
    const auto report = execute(e, c, /*seed_salt=*/0, attempt);
    tuning::EvalOutcome out{report.runtime, !report.success};
    out.fault = report.success ? tuning::FaultClass::kNone
                : report.infra_fault ? tuning::FaultClass::kInfra
                                     : tuning::FaultClass::kConfig;
    return out;
  };
  std::vector<tuning::Observation> committed;
  committed.reserve(budget);
  tuning::TrialExecutor::CommitHook hook = [&committed](const tuning::Observation& o) {
    committed.push_back(o);
  };

  const auto tuner = tuning::make_tuner(options_.tuner);
  const auto result = executor_.run(*tuner, space, objective, topts, hook);
  CircuitBreaker& breaker = breaker_for(e.tenant);
  for (const auto& o : committed) {
    // Replay every attempt (guaranteed cache hits): retries burned real
    // cluster time and money even though only the final attempt scored.
    for (int attempt = 0; attempt < o.attempts; ++attempt) {
      const auto report = execute(e, o.config, /*seed_salt=*/0, attempt);
      const double charged = std::min(report.runtime, topts.retry.trial_deadline_s);
      e.ledger.add_tuning_run(charged, report.cost);
      // The knowledge base keeps the settled outcome only, and never an
      // infra fault — a revoked VM says nothing about the configuration,
      // and a poisoned record would mislead every future warm start.
      if (attempt + 1 == o.attempts && o.fault != tuning::FaultClass::kInfra) {
        record_to_kb(e, o.config, report, /*from_tuning=*/true);
      }
    }
    // Health bookkeeping: only the environment moves the breaker. A config
    // fault means the infrastructure executed the trial faithfully.
    if (o.fault == tuning::FaultClass::kInfra) {
      breaker.record_infra_fault();
    } else {
      breaker.record_success();
    }
  }
  if (result.found_feasible && result.best_runtime < incumbent_runtime) {
    e.config = result.best;
    e.best_runtime = result.best_runtime;
  }
  e.tuned = true;
  ++e.tunings;
  e.controller->notify_retuned();
}

disc::ExecutionReport TuningService::run_once(int handle, simcore::Bytes input_bytes) {
  const MutexLock lock(mu_);
  Entry& e = entry(handle);
  if (input_bytes != 0) e.input_bytes = input_bytes;

  if (!e.provisioned) provision(e);
  if (!e.tuned) {
    // Tuning spends budget into the environment; an open breaker means the
    // environment is eating trials, so degrade to a known-good config and
    // try again next run (the denied request advances the cooldown).
    if (breaker_for(e.tenant).allow_request()) {
      tune_disc(e, options_.tuning_budget);
    } else {
      degrade(e);
    }
  }

  const auto report = execute(e, e.config, /*seed_salt=*/1 + e.production_runs);
  ++e.production_runs;
  e.last_runtime = report.runtime;
  if (report.success && (e.best_runtime == 0.0 || report.runtime < e.best_runtime)) {
    e.best_runtime = report.runtime;
  }
  e.signature = transfer::characterize(report);

  // SLO bookkeeping against the best-known similar runtime (which may come
  // from other tenants running a similar workload at a similar scale).
  const auto reference = kb_.best_similar_runtime(*e.signature, e.input_bytes,
                                                  options_.slo_reference_similarity);
  e.slo.observe(report.runtime, report.cost, reference);

  record_to_kb(e, e.config, report, /*from_tuning=*/false);

  // Amortization: what would an untuned run have cost on the same input?
  // (An accounting counterfactual — not an actual execution.)
  const auto baseline_config =
      options_.ledger_baseline == ServiceOptions::Baseline::kSparkDefault
          ? config::spark_space()->default_config()
          : provider_auto_config(cluster::Cluster::from_spec(e.cluster));
  const auto baseline = execute(e, baseline_config, /*seed_salt=*/1 + (e.production_runs - 1));
  double baseline_runtime = baseline.runtime;
  double baseline_cost = baseline.cost;
  if (!baseline.success) {
    // The untuned counterfactual crashes: that user burns the crash and
    // still has to produce the result (approximated by the tuned run).
    baseline_runtime += report.runtime;
    baseline_cost += report.cost;
  }
  e.ledger.add_production_run(report.runtime, report.cost, baseline_runtime, baseline_cost);

  // The production run's outcome is health evidence too: an infra fault
  // pushes the breaker toward open, a clean run heals it.
  CircuitBreaker& breaker = breaker_for(e.tenant);
  if (!report.success && report.infra_fault) {
    breaker.record_infra_fault();
  } else {
    breaker.record_success();
  }

  // Drift watch: crashed runs demand re-tuning unconditionally.
  const bool drift = e.controller->observe(report.runtime);
  if (drift || !report.success) {
    if (options_.reprovision_on_drift) {
      provision(e);  // elastic response: rethink the cluster itself
    }
    if (breaker.allow_request()) {
      tune_disc(e, options_.retuning_budget);
    } else {
      degrade(e);
    }
  }
  return report;
}

WorkloadStatus TuningService::status(int handle) const {
  const MutexLock lock(mu_);
  const Entry& e = entry(handle);
  WorkloadStatus s;
  s.tenant = e.tenant;
  s.workload = e.workload->name();
  s.cluster = e.cluster;
  s.config = e.config;
  s.tuned = e.tuned;
  s.production_runs = e.production_runs;
  s.tunings = e.tunings;
  s.last_runtime = e.last_runtime;
  s.best_runtime = e.best_runtime;
  s.slo_attainment = e.slo.attainment();
  s.tuning_cost = e.ledger.tuning_cost();
  s.cumulative_savings = e.ledger.cumulative_savings();
  s.break_even_run = e.ledger.break_even_run();
  s.degraded_runs = e.degraded_runs;
  return s;
}

ServiceHealth TuningService::health() const {
  const MutexLock lock(mu_);
  // Group the per-entry counters by tenant; std::map iteration keeps the
  // snapshot sorted by tenant name.
  std::map<std::string, TenantHealth> by_tenant;
  for (const auto& [handle, e] : entries_) {
    TenantHealth& t = by_tenant[e.tenant];
    t.tenant = e.tenant;
    ++t.workloads;
    t.degraded_runs += e.degraded_runs;
  }
  for (const auto& [tenant, breaker] : breakers_) {
    TenantHealth& t = by_tenant[tenant];
    t.tenant = tenant;
    t.breaker = breaker.state();
    t.trips = breaker.trips();
    t.consecutive_infra_faults = breaker.consecutive_infra_faults();
  }
  ServiceHealth h;
  h.tenants = by_tenant.size();
  for (auto& [tenant, t] : by_tenant) {
    if (t.breaker == BreakerState::kOpen) ++h.open_breakers;
    h.total_degraded_runs += t.degraded_runs;
    h.per_tenant.push_back(std::move(t));
  }
  return h;
}

const KnowledgeBase& TuningService::knowledge_base() const {
  const MutexLock lock(mu_);
  return kb_;
}

const CostLedger& TuningService::ledger(int handle) const {
  const MutexLock lock(mu_);
  return entry(handle).ledger;
}

const SloTracker& TuningService::slo_tracker(int handle) const {
  const MutexLock lock(mu_);
  return entry(handle).slo;
}

}  // namespace stune::service
