// The retrieval tier's distance kernel (DESIGN.md §15): squared Euclidean
// distance from one query signature to a column of stored signatures laid
// out structure-of-arrays — eight dimension columns, lane-per-entry.
//
// Two exported paths with one contract:
//
//   dist2()        - the dispatching kernel. When this TU is compiled with
//                    AVX2+FMA (the STUNE_NATIVE_KERNELS probe, the same
//                    switch that arms matrix.cpp and gp.cpp), four entries
//                    ride one vector register; otherwise it is byte-for-byte
//                    the scalar loop.
//   dist2_scalar() - the always-scalar reference, exported so tests and the
//                    bench can assert SIMD == scalar *bitwise*.
//
// Why the two are bitwise identical by construction: with SoA columns each
// SIMD lane owns one entry, so the accumulation over the eight dimensions is
// the same sequential chain of fused multiply-adds the scalar loop performs
// — acc = fma(diff, diff, acc), dimension by dimension — with no cross-lane
// reduction anywhere. Both paths live in this one TU, compiled with
// -ffp-contract=off (see src/service/CMakeLists.txt and the fp-contract pin
// list in tools/analyze), and both spell the accumulation through the same
// fma_acc helper, so the rounding sequence per entry is identical whatever
// the register width.
#pragma once

#include <cstddef>

namespace stune::service::scan {

/// Signature dimensionality; mirrors transfer::Signature::kDims (asserted
/// equal where the two meet, in retrieval_index.cpp).
inline constexpr std::size_t kDims = 8;

/// out[i] = sum_d (cols[d][i] - query[d])^2 for i in [0, n). `cols` holds
/// kDims column pointers; all buffers may be unaligned. Allocation-free.
void dist2(const double* const* cols, std::size_t n, const double* query, double* out);

/// The scalar reference path (same TU, same flags, same fma_acc chain).
void dist2_scalar(const double* const* cols, std::size_t n, const double* query, double* out);

/// True when dist2() dispatches to the AVX2/FMA path in this build.
bool simd_active();

}  // namespace stune::service::scan
