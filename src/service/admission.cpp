#include "service/admission.hpp"

#include <algorithm>

namespace stune::service {

AdmissionController::AdmissionController(AdmissionOptions options) : options_(options) {
  options_.burst = std::max(0.0, options_.burst);
  options_.tuning_burst = std::max(0.0, options_.tuning_burst);
  tokens_ = options_.burst;
  tuning_tokens_ = options_.tuning_burst;
}

void AdmissionController::advance(double arrival_s) {
  // Virtual time is monotone per shard: an out-of-order (or absent, i.e.
  // negative) timestamp contributes no elapsed time, so concurrent virtual
  // users cannot wind the bucket backwards.
  if (arrival_s <= clock_s_) return;
  const double dt = arrival_s - clock_s_;
  clock_s_ = arrival_s;
  if (options_.tokens_per_s > 0.0) {
    tokens_ = std::min(options_.burst, tokens_ + dt * options_.tokens_per_s);
  }
  if (options_.tuning_tokens_per_s > 0.0) {
    tuning_tokens_ =
        std::min(options_.tuning_burst, tuning_tokens_ + dt * options_.tuning_tokens_per_s);
  }
}

AdmitDecision AdmissionController::try_admit(double arrival_s) {
  advance(arrival_s);
  // Saturation first: a full shard sheds regardless of token balance, and
  // the arrival's token is not burned (the request did no work).
  if (options_.max_inflight != 0 && inflight_ >= options_.max_inflight) {
    return AdmitDecision::kShedSaturated;
  }
  if (options_.tokens_per_s > 0.0) {
    if (tokens_ < 1.0) return AdmitDecision::kShedRateLimited;
    tokens_ -= 1.0;
  }
  ++inflight_;
  peak_inflight_ = std::max(peak_inflight_, inflight_);
  return AdmitDecision::kAdmit;
}

void AdmissionController::release() {
  if (inflight_ > 0) --inflight_;
}

bool AdmissionController::try_take_tuning() {
  if (options_.degrade_above_inflight != 0 && inflight_ > options_.degrade_above_inflight) {
    return false;
  }
  if (options_.tuning_tokens_per_s < 0.0) return true;
  if (tuning_tokens_ < 1.0) return false;
  tuning_tokens_ -= 1.0;
  return true;
}

}  // namespace stune::service
