// TuningService — the paper's vision made concrete (§IV): seamless,
// provider-side, end-to-end configuration tuning.
//
// A tenant submits a recurring workload with a high-level SLO and then just
// runs it. The service:
//   1. picks the cloud configuration (Fig. 1 stage 1, CloudTuner),
//   2. tunes the DISC configuration (Fig. 1 stage 2), warm-started from the
//      multi-tenant knowledge base when a similar workload is known (§V-B),
//   3. monitors every production run with a change detector and re-tunes
//      automatically when workload characteristics drift (§V-D),
//   4. accounts tuning spend vs. savings in a CostLedger (§IV-C) and tracks
//      the "within X% of best-known similar runtime" SLO metric (§IV-D).
//
// The tenant never sees a configuration parameter — that is the point.
//
// Serving tier (DESIGN.md §14): the service is sharded by tenant. A tenant
// hashes to one of `shards` shards; each shard owns its entries, breakers
// and counters under its own ranked mutex and runs its own TrialExecutor,
// so tenants on different shards tune concurrently and a slow tenant stalls
// only its shardmates. The cross-tenant history lives in an internally
// synchronized SharedKnowledgeBase all shards record into. On top sits an
// overload-control plane — per-shard admission (bounded in-flight budget +
// token-bucket arrival limiter over virtual time), explicit load shedding,
// per-request deadlines propagated into the trial executor's retry
// machinery, and graceful degradation to the best-known-good configuration
// when tuning capacity is shed. Determinism is per *tenant*: the same
// tenant with the same seed and submit order gets bitwise-identical results
// whatever the shard count (tuning seeds derive from tenant + per-entry
// counters, never from global state).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simcore/fault.hpp"
#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"

#include "adaptive/retuning_policy.hpp"
#include "cluster/contention.hpp"
#include "disc/engine.hpp"
#include "disc/trial_context.hpp"
#include "service/admission.hpp"
#include "service/circuit_breaker.hpp"
#include "service/cloud_tuner.hpp"
#include "service/cost_ledger.hpp"
#include "service/knowledge_base.hpp"
#include "service/shared_kb.hpp"
#include "service/slo.hpp"
#include "transfer/aroma.hpp"
#include "transfer/warm_start.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/eval_cache.hpp"
#include "workload/workload.hpp"

namespace stune::service {

struct ServiceOptions {
  /// Used when cloud tuning is disabled (or as its fallback).
  cluster::ClusterSpec default_cluster{"m5.2xlarge", 4};
  bool tune_cloud = true;
  CloudTunerOptions cloud{};

  std::string tuner = "bayesopt";
  std::size_t tuning_budget = 30;
  std::size_t retuning_budget = 15;
  /// Worker threads evaluating tuning trials, per shard; 0 = hardware
  /// concurrency. Results are identical for every value — batches commit in
  /// suggestion order — so this is purely a wall-clock knob.
  std::size_t jobs = 1;

  /// Tenant shards. Each shard owns its tenants' state under its own mutex
  /// and runs its own trial executor; a tenant's shard is a pure function
  /// of its name. 1 = the pre-sharding single-lane service.
  std::size_t shards = 1;
  /// Per-shard overload control. The defaults admit everything (the
  /// pre-sharding behavior); see AdmissionOptions.
  AdmissionOptions admission{};

  std::string detector = "cusum";
  adaptive::RetuningController::Options retuning{};
  /// Re-run stage 1 (cloud provisioning) when drift is detected — the
  /// elasticity half of the paper's vision. Off by default: re-provisioning
  /// costs extra exploration runs.
  bool reprovision_on_drift = false;

  bool enable_transfer = true;
  /// How warm starts are mined from the knowledge base: nearest-signature
  /// selection (§V-B, with negative-transfer guard) or AROMA-style
  /// clustering of the whole execution history (§II-B).
  enum class TransferStrategy { kNearest, kAroma };
  TransferStrategy transfer_strategy = TransferStrategy::kNearest;
  transfer::TransferPolicy transfer{};
  /// Where warm starts and degradation donors come from. kGlobal mines the
  /// shared knowledge base — maximum transfer, but a tenant's results then
  /// depend on what the whole fleet recorded first, so cross-tenant
  /// interleaving is visible. kTenantLocal restricts the donor pool to the
  /// entry's own history, making each tenant's results a pure function of
  /// its own request stream — bitwise reproducible under any contention.
  enum class TransferScope { kGlobal, kTenantLocal };
  TransferScope transfer_scope = TransferScope::kGlobal;
  /// Retention/indexing knobs of the shared knowledge base.
  SharedKnowledgeBaseOptions knowledge{};
  /// The zero-execution retrieval tier (DESIGN.md §15). When enabled, an
  /// untuned workload with a known signature first consults the lock-free
  /// retrieval index: a sufficiently similar historical run at a comparable
  /// input size answers the request with its configuration outright —
  /// ServeOutcome::kRetrieved, zero tuning trials — and only a miss falls
  /// through to the degraded/warm-start/tune ladder. Off by default: the
  /// pre-retrieval serving traces (and their pinned tests) stay bitwise
  /// unchanged unless a deployment opts in. Requires enable_transfer and
  /// TransferScope::kGlobal (the index is fleet-wide by construction).
  struct RetrievalPolicy {
    bool enabled = false;
    /// Similarity bar a hit must clear (exp(-distance) >= bar). Stricter
    /// than the warm-start guard: a retrieved config runs *unvalidated*.
    double min_similarity = 0.85;
    /// Multiplicative input-size window around the request.
    double size_tolerance = 1.5;
    /// Neighbors fetched per query; the adopted config is the *fastest*
    /// qualifying neighbor, not the nearest — the nearest is typically the
    /// workload's own previous run.
    std::size_t top_k = 8;
    /// 0 = exact bound-pruned search (flat-identical results); > 0 probes
    /// only that many IVF cells (approximate).
    std::size_t probe_cells = 0;
  };
  RetrievalPolicy retrieval{};
  /// Similarity bar for the SLO reference ("best-known runtime of similar
  /// workloads", §IV-D). Stricter than the transfer guard: a borderline
  /// donor can still seed a tuner, but holding this workload to a
  /// *different* workload's runtime would make the SLO meaningless.
  double slo_reference_similarity = 0.8;

  /// What the savings ledger compares production runs against: the raw
  /// framework defaults (what an untuned user gets — the paper's §IV-C
  /// framing) or the provider's capacity-proportional heuristic.
  enum class Baseline { kSparkDefault, kProviderAuto };
  Baseline ledger_baseline = Baseline::kSparkDefault;
  /// Execute the untuned counterfactual per production run for the savings
  /// ledger. Off, the ledger books the tuned run as its own baseline (no
  /// savings signal) but each serve() is one execution cheaper — the load
  /// harness turns this off to measure the serving tier, not the ledger.
  bool ledger_counterfactual = true;

  Slo slo{};
  std::uint64_t seed = 42;
  cluster::ContentionParams contention{};
  disc::CostModel cost_model{};

  /// Environmental fault model applied to every execution (tuning trials
  /// and production runs alike). Inactive by default; see
  /// simcore::FaultProfile::chaos() for a one-knob chaos level.
  simcore::FaultProfile faults{};
  /// Retry/backoff/deadline policy for tuning trials that die to the
  /// infrastructure.
  tuning::RetryPolicy retry{};
  /// Per-tenant circuit breaker over consecutive infra faults; while open,
  /// tuning is skipped and the tenant runs a known-good configuration.
  CircuitBreakerOptions breaker{};
};

/// Public per-workload status snapshot.
struct WorkloadStatus {
  std::string tenant;
  std::string workload;
  cluster::ClusterSpec cluster;
  config::Configuration config;
  bool tuned = false;
  std::size_t production_runs = 0;
  std::size_t tunings = 0;  // initial tune + re-tunes
  double last_runtime = 0.0;
  double best_runtime = 0.0;
  double slo_attainment = 1.0;
  simcore::Dollars tuning_cost = 0.0;
  simcore::Dollars cumulative_savings = 0.0;
  std::optional<std::size_t> break_even_run;
  /// Runs that wanted tuning but were degraded (breaker open, or tuning
  /// capacity shed by admission control).
  std::size_t degraded_runs = 0;
};

/// How one serve() request was answered (the degradation ladder).
enum class ServeOutcome {
  kServed,    ///< full service: tuned (or already-tuned) configuration ran
  kDegraded,  ///< ran, but tuning was skipped — best-known-good config
  kShed,      ///< rejected at admission; nothing ran
  kRetrieved  ///< zero-trial: configuration retrieved from the index, ran
};

/// Why a request was shed (ServeOutcome::kShed).
enum class ShedReason {
  kNone,
  kRateLimited,        ///< arrival token bucket empty
  kShardSaturated,     ///< shard's in-flight budget full
  kDeadlineInfeasible  ///< deadline already expired at admission
};

/// One serve() request. All fields optional; the defaults reproduce
/// run_once() semantics (no deadline, no arrival time, previous input size).
struct ServeRequest {
  /// 0 = reuse the previous size (recurring job with stable input).
  simcore::Bytes input_bytes = 0;
  /// Arrival timestamp in *virtual* seconds for the shard's token bucket;
  /// negative = unspecified (no virtual time passes). Must be monotone per
  /// shard to be meaningful.
  double arrival_s = -1.0;
  /// Per-request deadline budget (simulated seconds). Tuning trials run
  /// under min(deadline, retry.trial_deadline_s); a request whose deadline
  /// is already <= 0 is shed without running. The finished report is marked
  /// deadline_exceeded when the production run overran it.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// The result of one serve() request.
struct ServeResult {
  ServeOutcome outcome = ServeOutcome::kServed;
  ShedReason shed_reason = ShedReason::kNone;
  /// The production run overran the request deadline (it still completed —
  /// the simulated run is not preemptible — but the caller missed it).
  bool deadline_exceeded = false;
  /// Valid unless outcome == kShed.
  disc::ExecutionReport report;
};

/// Per-tenant slice of the service health snapshot.
struct TenantHealth {
  std::string tenant;
  BreakerState breaker = BreakerState::kClosed;
  int trips = 0;
  int consecutive_infra_faults = 0;
  std::size_t degraded_runs = 0;
  std::size_t workloads = 0;
};

/// Per-shard slice of the health snapshot: occupancy and overload counters.
struct ShardHealth {
  std::size_t shard = 0;
  std::size_t workloads = 0;
  std::size_t tenants = 0;
  std::size_t inflight = 0;
  std::size_t peak_inflight = 0;
  std::size_t open_breakers = 0;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed_rate_limited = 0;
  std::uint64_t shed_saturated = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t tuning_sessions = 0;
  /// Retrieval-tier counters (DESIGN.md §15): hits answered a request with
  /// a retrieved config (outcome kRetrieved); misses queried the index and
  /// found nothing qualifying; fallbacks wanted retrieval but could not
  /// query (no signature yet, or an empty index).
  std::uint64_t retrieval_hits = 0;
  std::uint64_t retrieval_misses = 0;
  std::uint64_t retrieval_fallbacks = 0;
};

/// Service-wide health snapshot (the operator's view of the weather).
struct ServiceHealth {
  std::size_t tenants = 0;
  std::size_t open_breakers = 0;
  std::size_t total_degraded_runs = 0;
  /// Overload totals across shards.
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  /// Retrieval totals across shards, plus the index's current view
  /// (epoch/entries read lock-free off the published snapshot).
  std::uint64_t retrieved = 0;
  std::uint64_t retrieval_misses = 0;
  std::uint64_t retrieval_fallbacks = 0;
  std::uint64_t retrieval_epoch = 0;
  std::size_t retrieval_entries = 0;
  std::vector<TenantHealth> per_tenant;  // sorted by tenant name
  std::vector<ShardHealth> per_shard;    // indexed by shard
};

/// Thread-safety: tenant state is sharded; every public entry point locks
/// only the target tenant's shard, so tenants on different shards submit,
/// serve and run concurrently. A shard's runs are coarse-grained — a serve()
/// holds the shard lock for its whole tuning — because the shard's
/// TrialExecutor serializes sessions anyway; admission decisions and health
/// counters live under a separate short-held control mutex per shard, so
/// health() and shedding never wait behind a tuning session. Accessors
/// returning references (ledger, slo_tracker) hand out storage-stable
/// references (entries are never erased; std::map does not relocate), but
/// reading them while another thread runs the same tenant's workloads is
/// the caller's race to avoid.
class TuningService {
 public:
  explicit TuningService(ServiceOptions options);
  ~TuningService();

  /// Register a recurring workload. `initial_input` sizes the first tuning.
  /// Returns a handle for serve/run_once/status.
  int submit(std::string tenant, std::shared_ptr<const workload::Workload> workload,
             simcore::Bytes initial_input);

  /// Execute the workload once through the full overload-control plane:
  /// admission (shed on saturation or rate limit), tuning-capacity gating
  /// (degrade to best-known-good when shed), deadline propagation. The
  /// default request admits unconditionally and reproduces run_once().
  ServeResult serve(int handle, const ServeRequest& request = {});

  /// Execute the workload once, bypassing admission (the pre-serving-tier
  /// entry point; equivalent to serve() with an always-admitted request).
  /// On the first call the service performs the full two-stage tuning;
  /// later calls execute the tuned configuration, watch for drift and
  /// re-tune when the detector fires. `input_bytes == 0` reuses the
  /// previous size (recurring job with stable input).
  disc::ExecutionReport run_once(int handle, simcore::Bytes input_bytes = 0);

  WorkloadStatus status(int handle) const;
  /// Resilience snapshot: per-shard occupancy/overload counters and
  /// per-tenant breaker states. Touches only the shards' control mutexes —
  /// never a shard's main mutex — so it returns promptly even while every
  /// shard is mid-tuning. `per_tenant_detail` = false skips the per-tenant
  /// vector (cheaper at 100k tenants).
  ServiceHealth health(bool per_tenant_detail = true) const;
  /// Snapshot of the shared cross-tenant knowledge base (copy; the live
  /// store is internally synchronized and shared by all shards).
  KnowledgeBase knowledge_base() const;
  std::size_t knowledge_size() const { return kb_.total_records(); }
  /// The bounded donor pool warm starts and degraded answers draw from
  /// under TransferScope::kGlobal (copy).
  std::vector<transfer::DonorObservation> knowledge_donors() const {
    return kb_.indexed_donors();
  }
  const CostLedger& ledger(int handle) const;
  const SloTracker& slo_tracker(int handle) const;
  const ServiceOptions& options() const { return options_; }
  std::size_t shard_count() const { return shards_.size(); }
  /// Hit/miss statistics of the shared execution cache (all tenants).
  workload::EvalCacheStats eval_cache_stats() const { return cache_.stats(); }

 private:
  struct Entry {
    std::string tenant;
    std::shared_ptr<const workload::Workload> workload;
    simcore::Bytes input_bytes = 0;
    cluster::ClusterSpec cluster;
    bool provisioned = false;
    config::Configuration config;
    bool tuned = false;
    std::size_t tunings = 0;
    std::size_t production_runs = 0;
    std::size_t degraded_runs = 0;
    double last_runtime = 0.0;
    double best_runtime = 0.0;
    std::optional<transfer::Signature> signature;
    std::unique_ptr<adaptive::RetuningController> controller;
    CostLedger ledger;
    SloTracker slo;
    /// Decorrelates successive tuning seeds. Per entry (not service-global)
    /// so a tenant's seeds are independent of other tenants' activity.
    std::uint64_t tune_counter = 0;
    /// The entry's own successful history, runtime-ascending and capped —
    /// the donor pool under TransferScope::kTenantLocal.
    std::vector<transfer::DonorObservation> own_donors;

    explicit Entry(Slo slo_spec) : slo(slo_spec) {}
  };

  /// Aggregate overload counters for one shard (guarded by ctl_mu).
  struct ShardCounters {
    std::uint64_t served = 0;
    std::uint64_t degraded = 0;
    std::uint64_t shed_rate_limited = 0;
    std::uint64_t shed_saturated = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t tuning_sessions = 0;
    std::uint64_t retrieval_hits = 0;
    std::uint64_t retrieval_misses = 0;
    std::uint64_t retrieval_fallbacks = 0;
  };

  /// One tenant shard: the unit of isolation. Data plane (entries,
  /// breakers, the shard's executor) under `mu`; control plane (admission,
  /// counters, health snapshots) under the short-held `ctl_mu`. The
  /// admission path takes ctl_mu and *releases it* before the request
  /// queues on mu; paths holding mu may take ctl_mu (10 < 12) to bump
  /// counters — never the other way around while ctl_mu is held.
  struct TenantShard {
    TenantShard(const ServiceOptions& options, std::size_t index);

    const std::size_t index;
    mutable simcore::Mutex mu{simcore::lock_rank::kServiceShard};
    std::map<int, Entry> entries STUNE_GUARDED_BY(mu);
    std::map<std::string, CircuitBreaker> breakers STUNE_GUARDED_BY(mu);
    int next_seq STUNE_GUARDED_BY(mu) = 1;
    /// Internally synchronized (ranks 20/45); per shard so tuning sessions
    /// on different shards run concurrently.
    tuning::TrialExecutor executor;
    mutable disc::TrialContextPool ctx_pool;

    mutable simcore::Mutex ctl_mu{simcore::lock_rank::kServiceShardControl};
    AdmissionController admission STUNE_GUARDED_BY(ctl_mu);
    ShardCounters counters STUNE_GUARDED_BY(ctl_mu);
    /// Last-known per-tenant health, refreshed whenever a run finishes on
    /// the data plane — what health() reads without touching mu.
    std::map<std::string, TenantHealth> tenant_view STUNE_GUARDED_BY(ctl_mu);
  };

  TenantShard& shard_for_handle(int handle) const;
  std::size_t shard_index_for_tenant(const std::string& tenant) const;

  static Entry& entry(TenantShard& sh, int handle) STUNE_REQUIRES(sh.mu);
  static const Entry& entry(const TenantShard& sh, int handle) STUNE_REQUIRES(sh.mu);

  void provision(TenantShard& sh, Entry& e) STUNE_REQUIRES(sh.mu);
  /// Stage-2 DISC tuning at the entry's current input size. `deadline_s`
  /// tightens the per-trial deadline (min with options().retry).
  void tune_disc(TenantShard& sh, Entry& e, std::size_t budget, double deadline_s)
      STUNE_REQUIRES(sh.mu);
  /// One raw execution on the entry's cluster. `seed_salt` decorrelates
  /// production runs (contention, stragglers); tuning uses salt 0 so a
  /// configuration's score is stable within a tuning round. `attempt`
  /// re-rolls the fault plan on retries (the weather changes; the
  /// configuration does not), and is folded into the engine context so the
  /// shared cache never aliases attempts.
  ///
  /// Touches no mu-guarded state (options_ is immutable, the cache has its
  /// own sharding, the context pool is internally synchronized) —
  /// deliberately, because tuning objectives call it from executor worker
  /// threads while the driver holds the shard mutex.
  disc::ExecutionReport execute(const TenantShard& sh, const Entry& e,
                                const config::Configuration& conf, std::uint64_t seed_salt,
                                int attempt = 0) const;
  /// Donor pool for warm starts and degradation, honoring transfer_scope.
  std::vector<transfer::DonorObservation> donor_pool(const Entry& e) const;
  /// Capacity-shed / breaker-open fallback: fall back to the best similar
  /// successful known configuration (or keep the current one) instead of
  /// spending tuning budget it has no capacity for. Caller holds the
  /// entry's shard mutex (invisible to the analysis once the Entry& is
  /// extracted from the guarded map).
  void degrade(Entry& e) const;
  /// Minimal provisioning for a degraded first run: default cluster +
  /// provider heuristic config, without spending stage-1 exploration.
  /// Leaves `provisioned` false so the first non-degraded run provisions
  /// properly.
  void degraded_provision(Entry& e) const;
  CircuitBreaker& breaker_for(TenantShard& sh, const std::string& tenant) STUNE_REQUIRES(sh.mu);
  /// The zero-trial first stop of an untuned request (RetrievalPolicy).
  /// Queries the lock-free retrieval snapshot — never the knowledge-base
  /// mutex — and on a qualifying hit adopts the fastest neighbor's
  /// configuration and marks the entry tuned. Returns true on a hit; bumps
  /// the shard's retrieval counters either way.
  bool try_retrieve(TenantShard& sh, Entry& e) STUNE_REQUIRES(sh.mu);
  void record_to_kb(Entry& e, const config::Configuration& conf,
                    const disc::ExecutionReport& report, bool from_tuning);
  /// The shared body of serve()/run_once(): provision/tune-or-degrade, the
  /// production run, SLO + ledger + breaker + drift bookkeeping.
  /// `admission_exempt` marks run_once() semantics: tuning capacity is
  /// never consulted. Returns the production report; sets `degraded` when
  /// this run skipped wanted tuning, `retrieved` when the configuration
  /// came from the retrieval tier (zero tuning trials).
  disc::ExecutionReport run_locked(TenantShard& sh, Entry& e, simcore::Bytes input_bytes,
                                   double deadline_s, bool admission_exempt, bool& degraded,
                                   bool& retrieved)
      STUNE_REQUIRES(sh.mu);
  /// Refresh the shard's control-plane view of one tenant after a run
  /// (called with the shard mutex held; takes ctl_mu inside). O(1):
  /// degrade counts accumulate as deltas, the breaker is re-read.
  void refresh_tenant_view(TenantShard& sh, const Entry& e, std::size_t degraded_delta)
      STUNE_REQUIRES(sh.mu);

  const ServiceOptions options_;  // immutable after construction
  /// One execution cache shared by every shard: it replays identical
  /// probes across re-tunes (and across tenants whose plans coincide).
  /// Internally synchronized. Mutable because a cache hit inside the
  /// logically-const execute() mutates only memoization state.
  mutable workload::EvalCache cache_;
  /// The cross-tenant execution history (paper §IV-C), shared by all
  /// shards; internally synchronized under rank kKnowledgeBase.
  SharedKnowledgeBase kb_;
  /// Tenant shards; the vector itself is immutable after construction
  /// (stable addresses via unique_ptr). Destroyed before cache_/kb_.
  std::vector<std::unique_ptr<TenantShard>> shards_;
};

}  // namespace stune::service
