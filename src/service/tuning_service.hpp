// TuningService — the paper's vision made concrete (§IV): seamless,
// provider-side, end-to-end configuration tuning.
//
// A tenant submits a recurring workload with a high-level SLO and then just
// runs it. The service:
//   1. picks the cloud configuration (Fig. 1 stage 1, CloudTuner),
//   2. tunes the DISC configuration (Fig. 1 stage 2), warm-started from the
//      multi-tenant KnowledgeBase when a similar workload is known (§V-B),
//   3. monitors every production run with a change detector and re-tunes
//      automatically when workload characteristics drift (§V-D),
//   4. accounts tuning spend vs. savings in a CostLedger (§IV-C) and tracks
//      the "within X% of best-known similar runtime" SLO metric (§IV-D).
//
// The tenant never sees a configuration parameter — that is the point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simcore/fault.hpp"
#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"

#include "adaptive/retuning_policy.hpp"
#include "cluster/contention.hpp"
#include "disc/engine.hpp"
#include "disc/trial_context.hpp"
#include "service/circuit_breaker.hpp"
#include "service/cloud_tuner.hpp"
#include "service/cost_ledger.hpp"
#include "service/knowledge_base.hpp"
#include "service/slo.hpp"
#include "transfer/aroma.hpp"
#include "transfer/warm_start.hpp"
#include "tuning/trial_executor.hpp"
#include "tuning/tuner.hpp"
#include "workload/eval_cache.hpp"
#include "workload/workload.hpp"

namespace stune::service {

struct ServiceOptions {
  /// Used when cloud tuning is disabled (or as its fallback).
  cluster::ClusterSpec default_cluster{"m5.2xlarge", 4};
  bool tune_cloud = true;
  CloudTunerOptions cloud{};

  std::string tuner = "bayesopt";
  std::size_t tuning_budget = 30;
  std::size_t retuning_budget = 15;
  /// Worker threads evaluating tuning trials; 0 = hardware concurrency.
  /// Results are identical for every value — batches commit in suggestion
  /// order — so this is purely a wall-clock knob.
  std::size_t jobs = 1;

  std::string detector = "cusum";
  adaptive::RetuningController::Options retuning{};
  /// Re-run stage 1 (cloud provisioning) when drift is detected — the
  /// elasticity half of the paper's vision. Off by default: re-provisioning
  /// costs extra exploration runs.
  bool reprovision_on_drift = false;

  bool enable_transfer = true;
  /// How warm starts are mined from the knowledge base: nearest-signature
  /// selection (§V-B, with negative-transfer guard) or AROMA-style
  /// clustering of the whole execution history (§II-B).
  enum class TransferStrategy { kNearest, kAroma };
  TransferStrategy transfer_strategy = TransferStrategy::kNearest;
  transfer::TransferPolicy transfer{};
  /// Similarity bar for the SLO reference ("best-known runtime of similar
  /// workloads", §IV-D). Stricter than the transfer guard: a borderline
  /// donor can still seed a tuner, but holding this workload to a
  /// *different* workload's runtime would make the SLO meaningless.
  double slo_reference_similarity = 0.8;

  /// What the savings ledger compares production runs against: the raw
  /// framework defaults (what an untuned user gets — the paper's §IV-C
  /// framing) or the provider's capacity-proportional heuristic.
  enum class Baseline { kSparkDefault, kProviderAuto };
  Baseline ledger_baseline = Baseline::kSparkDefault;

  Slo slo{};
  std::uint64_t seed = 42;
  cluster::ContentionParams contention{};
  disc::CostModel cost_model{};

  /// Environmental fault model applied to every execution (tuning trials
  /// and production runs alike). Inactive by default; see
  /// simcore::FaultProfile::chaos() for a one-knob chaos level.
  simcore::FaultProfile faults{};
  /// Retry/backoff/deadline policy for tuning trials that die to the
  /// infrastructure.
  tuning::RetryPolicy retry{};
  /// Per-tenant circuit breaker over consecutive infra faults; while open,
  /// tuning is skipped and the tenant runs a known-good configuration.
  CircuitBreakerOptions breaker{};
};

/// Public per-workload status snapshot.
struct WorkloadStatus {
  std::string tenant;
  std::string workload;
  cluster::ClusterSpec cluster;
  config::Configuration config;
  bool tuned = false;
  std::size_t production_runs = 0;
  std::size_t tunings = 0;  // initial tune + re-tunes
  double last_runtime = 0.0;
  double best_runtime = 0.0;
  double slo_attainment = 1.0;
  simcore::Dollars tuning_cost = 0.0;
  simcore::Dollars cumulative_savings = 0.0;
  std::optional<std::size_t> break_even_run;
  /// Runs that wanted tuning but were degraded because the tenant's
  /// circuit breaker was open.
  std::size_t degraded_runs = 0;
};

/// Per-tenant slice of the service health snapshot.
struct TenantHealth {
  std::string tenant;
  BreakerState breaker = BreakerState::kClosed;
  int trips = 0;
  int consecutive_infra_faults = 0;
  std::size_t degraded_runs = 0;
  std::size_t workloads = 0;
};

/// Service-wide health snapshot (the operator's view of the weather).
struct ServiceHealth {
  std::size_t tenants = 0;
  std::size_t open_breakers = 0;
  std::size_t total_degraded_runs = 0;
  std::vector<TenantHealth> per_tenant;  // sorted by tenant name
};

/// Thread-safety: every public entry point locks the service mutex, so
/// tenants may submit and run workloads from concurrent threads. Sessions
/// are coarse-grained — a run_once() holds the lock for its whole tuning —
/// because the shared TrialExecutor serializes sessions anyway; the win is
/// that concurrent callers are *correct*, not that they overlap. Accessors
/// returning references (knowledge_base, ledger, slo_tracker) hand out
/// storage-stable references (entries are never erased; std::map does not
/// relocate), but reading them while another thread runs workloads is the
/// caller's race to avoid.
class TuningService {
 public:
  explicit TuningService(ServiceOptions options);

  /// Register a recurring workload. `initial_input` sizes the first tuning.
  /// Returns a handle for run_once/status.
  int submit(std::string tenant, std::shared_ptr<const workload::Workload> workload,
             simcore::Bytes initial_input) STUNE_EXCLUDES(mu_);

  /// Execute the workload once. On the first call the service performs the
  /// full two-stage tuning; later calls execute the tuned configuration,
  /// watch for drift and re-tune when the detector fires. `input_bytes == 0`
  /// reuses the previous size (recurring job with stable input).
  disc::ExecutionReport run_once(int handle, simcore::Bytes input_bytes = 0) STUNE_EXCLUDES(mu_);

  WorkloadStatus status(int handle) const STUNE_EXCLUDES(mu_);
  /// Resilience snapshot: per-tenant breaker states, trips and degraded
  /// runs. The operator-facing half of the fault tolerance story.
  ServiceHealth health() const STUNE_EXCLUDES(mu_);
  const KnowledgeBase& knowledge_base() const STUNE_EXCLUDES(mu_);
  const CostLedger& ledger(int handle) const STUNE_EXCLUDES(mu_);
  const SloTracker& slo_tracker(int handle) const STUNE_EXCLUDES(mu_);
  const ServiceOptions& options() const { return options_; }
  /// Hit/miss statistics of the shared execution cache (all tenants).
  workload::EvalCacheStats eval_cache_stats() const { return cache_.stats(); }

 private:
  struct Entry {
    std::string tenant;
    std::shared_ptr<const workload::Workload> workload;
    simcore::Bytes input_bytes = 0;
    cluster::ClusterSpec cluster;
    bool provisioned = false;
    config::Configuration config;
    bool tuned = false;
    std::size_t tunings = 0;
    std::size_t production_runs = 0;
    std::size_t degraded_runs = 0;
    double last_runtime = 0.0;
    double best_runtime = 0.0;
    std::optional<transfer::Signature> signature;
    std::unique_ptr<adaptive::RetuningController> controller;
    CostLedger ledger;
    SloTracker slo;

    explicit Entry(Slo slo_spec) : slo(slo_spec) {}
  };

  Entry& entry(int handle) STUNE_REQUIRES(mu_);
  const Entry& entry(int handle) const STUNE_REQUIRES(mu_);

  void provision(Entry& e) STUNE_REQUIRES(mu_);
  /// Stage-2 DISC tuning at the entry's current input size.
  void tune_disc(Entry& e, std::size_t budget) STUNE_REQUIRES(mu_);
  /// One raw execution on the entry's cluster. `seed_salt` decorrelates
  /// production runs (contention, stragglers); tuning uses salt 0 so a
  /// configuration's score is stable within a tuning round. `attempt`
  /// re-rolls the fault plan on retries (the weather changes; the
  /// configuration does not), and is folded into the engine context so the
  /// shared cache never aliases attempts.
  ///
  /// Touches no guarded state (options_ is immutable, the cache has its own
  /// sharding) — deliberately, because tuning objectives call it from
  /// executor worker threads while the driver holds mu_.
  disc::ExecutionReport execute(const Entry& e, const config::Configuration& conf,
                                std::uint64_t seed_salt, int attempt = 0) const;
  /// Breaker-open fallback: fall back to the best similar successful
  /// configuration in the knowledge base (or keep the current one) instead
  /// of spending tuning budget into a storm.
  void degrade(Entry& e) STUNE_REQUIRES(mu_);
  CircuitBreaker& breaker_for(const std::string& tenant) STUNE_REQUIRES(mu_);
  void record_to_kb(const Entry& e, const config::Configuration& conf,
                    const disc::ExecutionReport& report, bool from_tuning) STUNE_REQUIRES(mu_);

  const ServiceOptions options_;  // immutable after construction
  /// One execution cache and one trial executor shared by every tenant:
  /// the cache replays identical probes across re-tunes (and across
  /// tenants whose plans coincide); the executor owns the worker pool.
  /// Both are internally synchronized, so they sit outside mu_. Mutable
  /// because a cache hit inside the logically-const execute() mutates only
  /// memoization state.
  mutable workload::EvalCache cache_;
  tuning::TrialExecutor executor_;
  /// One engine TrialContext per trial worker (plus one for the driver):
  /// cache-miss executions lease a context so plan topology, contention
  /// samples and per-stage draws amortize across a tuning batch. Leased
  /// under lock rank 45 — below the executor, above the cache shards — and
  /// never held while another ranked mutex is taken.
  mutable disc::TrialContextPool ctx_pool_;
  // The outermost lock in the system (rank table: simcore/lock_rank.hpp):
  // held across whole tuning sessions, so every other ranked mutex nests
  // inside it.
  mutable simcore::Mutex mu_{simcore::lock_rank::kTuningService};
  KnowledgeBase kb_ STUNE_GUARDED_BY(mu_);
  std::map<int, Entry> entries_ STUNE_GUARDED_BY(mu_);
  std::map<std::string, CircuitBreaker> breakers_ STUNE_GUARDED_BY(mu_);
  int next_handle_ STUNE_GUARDED_BY(mu_) = 1;
  std::uint64_t tune_counter_ STUNE_GUARDED_BY(mu_) = 0;  // decorrelates successive tuning seeds
};

}  // namespace stune::service
