// The serving tier's view of the cross-tenant execution history: the plain
// KnowledgeBase (service/knowledge_base.hpp) wrapped in its own ranked mutex
// and a bounded similarity index, so every shard can record and query it
// concurrently without serializing on a service-wide lock — and so the two
// per-request query paths stay O(index), not O(total history):
//
//   - donors(): the warm-start / best-known-good donor pool. The full
//     history would be copied per tuning session (and grows with every
//     production run); instead each *signature cell* — the 8-dim workload
//     signature quantized to a coarse grid — keeps its few best successful
//     configurations, and the pool is their union (≤ max_cells ×
//     donors_per_cell entries, freshest-best per cell).
//   - best_similar_runtime(): the §IV-D SLO reference. Each (cell,
//     log2-size-bucket) pair keeps the best successful runtime with its
//     exact signature and input size; the query scans cells, not records,
//     and re-checks the exact similarity/size-tolerance bar against the
//     stored representative. A similar-but-slower run can be masked by a
//     faster dissimilar run landing in the same cell and bucket — the
//     documented approximation a bounded index buys; cells are one
//     quantization step wide, so cellmates are near-similar by construction.
//
// Retention: full records optionally cap at max_records (oldest dropped,
// ring-style) so a 100k-tenant, million-operation load run cannot grow the
// history without bound; the index keeps aggregates for everything ever
// recorded and size() stays monotonic. snapshot() materializes the retained
// records as a plain KnowledgeBase for save()/offline analysis.
//
// Determinism: all index state lives in std::map (ordered, deterministic
// iteration — record() sits inside the determinism-analysis closure), and
// every update is a pure function of the record stream, so two services fed
// the same records in the same order hold bitwise-identical indexes
// whatever the shard count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "simcore/lock_rank.hpp"
#include "simcore/mutex.hpp"
#include "simcore/thread_annotations.hpp"
#include "simcore/units.hpp"

#include "service/knowledge_base.hpp"
#include "service/retrieval_index.hpp"
#include "transfer/characterization.hpp"
#include "transfer/warm_start.hpp"

namespace stune::service {

struct SharedKnowledgeBaseOptions {
  /// Full records retained for snapshot()/save; 0 = unlimited. The
  /// similarity index is unaffected by retention.
  std::size_t max_records = 0;
  /// Best successful configurations kept per signature cell (the donor
  /// hall of fame).
  std::size_t donors_per_cell = 4;
  /// Distinct signature cells before new signatures fold into their
  /// nearest existing cell. A deployment sees a few dozen workload shapes;
  /// the cap is a safety net, not a working limit.
  std::size_t max_cells = 256;
  /// Quantization step per signature dimension.
  double cell_width = 0.25;
  /// The zero-execution retrieval tier layered over the same record stream
  /// (service/retrieval_index.hpp). Every successful record is appended
  /// under the knowledge-base mutex; reads go through lock-free snapshots.
  RetrievalOptions retrieval;
};

/// Thread-safety: fully internally synchronized under a single mutex of
/// rank kKnowledgeBase — acquired *while a shard mutex (rank 10/12) is
/// held* by record/query paths, and a leaf otherwise. Every method returns
/// values (never references into guarded state).
class SharedKnowledgeBase {
 public:
  explicit SharedKnowledgeBase(SharedKnowledgeBaseOptions options = {});

  /// Store one record; assigns and returns its monotone sequence number.
  std::uint64_t record_execution(ExecutionRecord r) STUNE_EXCLUDES(mu_);

  /// Records ever recorded (monotone, unaffected by retention).
  std::size_t total_records() const STUNE_EXCLUDES(mu_);
  /// Full records currently retained.
  std::size_t retained_records() const STUNE_EXCLUDES(mu_);
  std::size_t distinct_tenants() const STUNE_EXCLUDES(mu_);

  /// The bounded donor pool (see header comment), cell-major, best-first
  /// within a cell.
  std::vector<transfer::DonorObservation> indexed_donors() const STUNE_EXCLUDES(mu_);

  /// Indexed §IV-D reference: best successful runtime among indexed runs
  /// whose representative signature is at least min_similarity similar and
  /// whose input size is within size_tolerance (multiplicative).
  std::optional<double> best_similar_runtime(const transfer::Signature& target,
                                             simcore::Bytes input_bytes,
                                             double min_similarity = 0.6,
                                             double size_tolerance = 1.5) const
      STUNE_EXCLUDES(mu_);

  /// Copy of the retained records as a plain KnowledgeBase (for save()).
  KnowledgeBase snapshot() const STUNE_EXCLUDES(mu_);

  /// The retrieval tier's current immutable view. Lock-free: an atomic
  /// shared_ptr acquire, never the knowledge-base mutex — this is the
  /// serving tier's zero-trial read path and must not serialize on mu_.
  /// Unaffected by ring retention (the retrieval tier, like the similarity
  /// index, keeps everything ever recorded).
  std::shared_ptr<const RetrievalSnapshot> retrieval_snapshot() const {
    return retrieval_.retrieval_snapshot();
  }

  /// Distinct configurations in the retrieval tier's dedup pool.
  std::size_t retrieval_distinct_configs() const STUNE_EXCLUDES(mu_);

 private:
  using CellKey = std::array<int, transfer::Signature::kDims>;

  /// Best successful run seen for one (cell, size-bucket): enough to
  /// re-check the exact SLO-reference bar at query time.
  struct SizeBest {
    double runtime = 0.0;
    simcore::Bytes input_bytes = 0;
    transfer::Signature signature;
  };
  struct Donor {
    double runtime = 0.0;
    config::Configuration config;
    transfer::Signature signature;
  };
  struct Cell {
    std::vector<Donor> donors;           // runtime-ascending, capped
    std::map<int, SizeBest> best_by_size;  // log2(input) bucket -> best
    std::uint64_t records = 0;
  };

  CellKey key_for(const transfer::Signature& sig) const;
  Cell& cell_for(const transfer::Signature& sig) STUNE_REQUIRES(mu_);

  const SharedKnowledgeBaseOptions options_;
  mutable simcore::Mutex mu_{simcore::lock_rank::kKnowledgeBase};
  /// Appends are serialized under mu_ (record_execution); snapshot reads
  /// are internally synchronized (atomic epoch pointer), so retrieval_ is
  /// deliberately not GUARDED_BY — retrieval_snapshot() must stay lock-free.
  RetrievalIndex retrieval_;
  std::deque<ExecutionRecord> records_ STUNE_GUARDED_BY(mu_);
  std::map<CellKey, Cell> cells_ STUNE_GUARDED_BY(mu_);
  std::set<std::string> tenants_ STUNE_GUARDED_BY(mu_);
  std::uint64_t next_sequence_ STUNE_GUARDED_BY(mu_) = 1;
  std::uint64_t recorded_ STUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace stune::service
