// Tuning-cost amortization accounting (paper §IV-C): "the cost of workload
// tuning should not outweigh the runtime cost of the workload before it
// requires re-tuning". The ledger tracks what tuning spent and what the
// tuned configuration saves per production run versus a baseline (the
// default configuration), and reports the break-even point.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "simcore/units.hpp"

namespace stune::service {

class CostLedger {
 public:
  /// One exploration execution paid during (re-)tuning.
  void add_tuning_run(simcore::Seconds runtime, simcore::Dollars cost);

  /// One production run, with what the baseline configuration would have
  /// cost on the same input (the savings source).
  void add_production_run(simcore::Seconds runtime, simcore::Dollars cost,
                          simcore::Seconds baseline_runtime, simcore::Dollars baseline_cost);

  std::size_t tuning_runs() const { return tuning_runs_; }
  std::size_t production_runs() const { return static_cast<std::size_t>(savings_.size()); }
  simcore::Dollars tuning_cost() const { return tuning_cost_; }
  simcore::Seconds tuning_time() const { return tuning_time_; }
  simcore::Dollars cumulative_savings() const { return cumulative_savings_; }

  /// True once savings cover tuning spend.
  bool amortized() const { return cumulative_savings_ >= tuning_cost_; }

  /// 1-based index of the first production run at which cumulative savings
  /// reached the tuning cost; empty if not amortized yet.
  std::optional<std::size_t> break_even_run() const;

  /// Per-production-run dollar savings, in order.
  const std::vector<simcore::Dollars>& savings_per_run() const { return savings_; }

 private:
  std::size_t tuning_runs_ = 0;
  simcore::Dollars tuning_cost_ = 0.0;
  simcore::Seconds tuning_time_ = 0.0;
  simcore::Dollars cumulative_savings_ = 0.0;
  std::vector<simcore::Dollars> savings_;
};

}  // namespace stune::service
