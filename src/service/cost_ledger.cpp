#include "service/cost_ledger.hpp"

#include <cstddef>
#include <optional>

namespace stune::service {

void CostLedger::add_tuning_run(simcore::Seconds runtime, simcore::Dollars cost) {
  ++tuning_runs_;
  tuning_time_ += runtime;
  tuning_cost_ += cost;
}

void CostLedger::add_production_run(simcore::Seconds, simcore::Dollars cost,
                                    simcore::Seconds, simcore::Dollars baseline_cost) {
  const simcore::Dollars saved = baseline_cost - cost;
  savings_.push_back(saved);
  cumulative_savings_ += saved;
}

std::optional<std::size_t> CostLedger::break_even_run() const {
  simcore::Dollars acc = 0.0;
  for (std::size_t i = 0; i < savings_.size(); ++i) {
    acc += savings_[i];
    if (acc >= tuning_cost_) return i + 1;
  }
  return std::nullopt;
}

}  // namespace stune::service
