#include "service/slo.hpp"

#include <cstddef>
#include <optional>

namespace stune::service {

SloEvaluation evaluate_slo(const Slo& slo, double runtime, double cost,
                           std::optional<double> reference) {
  SloEvaluation e;
  e.runtime = runtime;
  if (reference && *reference > 0.0) {
    e.had_reference = true;
    e.reference = *reference;
    e.excess_fraction = (runtime - *reference) / *reference;
    e.attained = runtime <= (1.0 + slo.within_fraction) * *reference;
  } else {
    e.attained = true;  // vacuous: no similar workload known yet
  }
  if (slo.max_runtime_s && runtime > *slo.max_runtime_s) e.attained = false;
  if (slo.max_cost_dollars && cost > *slo.max_cost_dollars) e.attained = false;
  return e;
}

const SloEvaluation& SloTracker::observe(double runtime, double cost,
                                         std::optional<double> reference) {
  evaluations_.push_back(evaluate_slo(slo_, runtime, cost, reference));
  return evaluations_.back();
}

std::size_t SloTracker::attained_runs() const {
  std::size_t n = 0;
  for (const auto& e : evaluations_) n += e.attained ? 1 : 0;
  return n;
}

std::size_t SloTracker::runs_with_reference() const {
  std::size_t n = 0;
  for (const auto& e : evaluations_) n += e.had_reference ? 1 : 0;
  return n;
}

double SloTracker::attainment() const {
  std::size_t referenced = 0, attained = 0;
  for (const auto& e : evaluations_) {
    if (!e.had_reference) continue;
    ++referenced;
    attained += e.attained ? 1 : 0;
  }
  return referenced > 0 ? static_cast<double>(attained) / static_cast<double>(referenced) : 1.0;
}

double SloTracker::mean_excess_fraction() const {
  std::size_t referenced = 0;
  double total = 0.0;
  for (const auto& e : evaluations_) {
    if (!e.had_reference) continue;
    ++referenced;
    total += e.excess_fraction;
  }
  return referenced > 0 ? total / static_cast<double>(referenced) : 0.0;
}

}  // namespace stune::service
