// Per-shard admission control for the serving tier: the overload-control
// plane that turns "a burst of arrivals" into bounded queueing plus explicit
// load shedding instead of an unbounded pile-up behind the shard mutex.
//
// Two budgets, both deterministic functions of the request stream:
//
//   - a pending-work budget: at most max_inflight requests may be admitted
//     and unfinished at once. An admitted request may still *queue* briefly
//     behind the shard's current run, but the queue depth is bounded by the
//     admission cap — saturation beyond it is shed with an explicit reason.
//   - a token-bucket arrival limiter over *virtual* time: callers supply
//     monotone arrival timestamps (the load harness derives them from its
//     open-loop schedule); tokens refill at tokens_per_s up to burst. The
//     service has no wall clock — simulated systems must not — so when no
//     arrival time is supplied the bucket simply never refills past its
//     initial burst, and rate limiting is effectively off unless driven.
//
// A third bucket meters *tuning sessions* — the expensive part of a request.
// When it runs dry the request is still served, but degraded: the service
// answers from the best-known-good / knowledge-base configuration instead of
// spending a tuning session it has no capacity for (the graceful-degradation
// ladder; see DESIGN.md §14).
//
// Not thread-safe: the owner (TuningService::Shard) guards it with the
// shard's control-plane mutex (lock rank kServiceShardControl).
#pragma once

#include <cstddef>
#include <cstdint>

namespace stune::service {

struct AdmissionOptions {
  /// Admitted-but-unfinished requests per shard; 0 = unlimited (admission
  /// effectively off, the pre-sharding behavior).
  std::size_t max_inflight = 0;
  /// Arrival token bucket: sustained requests/second of virtual time.
  /// 0 = no rate limiting.
  double tokens_per_s = 0.0;
  /// Arrival bucket capacity (initial fill and refill ceiling).
  double burst = 32.0;
  /// Tuning-session token bucket: sustained tuning sessions/second of
  /// virtual time. Negative = unlimited tuning capacity (the default);
  /// 0 = a fixed stock of tuning_burst sessions that never refills.
  double tuning_tokens_per_s = -1.0;
  double tuning_burst = 4.0;
  /// Skip tuning (degrade) whenever more than this many requests are
  /// in flight on the shard, even if tuning tokens remain — drain first,
  /// improve later. 0 = off.
  std::size_t degrade_above_inflight = 0;
};

enum class AdmitDecision { kAdmit, kShedRateLimited, kShedSaturated };

/// Deterministic admission state machine for one shard. All time is virtual
/// (caller-supplied seconds); negative arrival timestamps mean "no time has
/// passed", so replaying the same request stream replays the same decisions.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Decide one arrival. On kAdmit the in-flight count is incremented; the
  /// caller must pair it with release() when the request finishes (shed
  /// requests must NOT be released).
  AdmitDecision try_admit(double arrival_s);

  /// An admitted request finished (served or degraded).
  void release();

  /// Consume one tuning-session token if the shard has tuning capacity
  /// right now; false means the caller should degrade instead of tune.
  bool try_take_tuning();

  std::size_t inflight() const { return inflight_; }
  std::size_t peak_inflight() const { return peak_inflight_; }
  double tokens() const { return tokens_; }
  double tuning_tokens() const { return tuning_tokens_; }
  double clock_s() const { return clock_s_; }

 private:
  void advance(double arrival_s);

  AdmissionOptions options_;
  double clock_s_ = 0.0;
  double tokens_ = 0.0;
  double tuning_tokens_ = 0.0;
  std::size_t inflight_ = 0;
  std::size_t peak_inflight_ = 0;
};

}  // namespace stune::service
