#include "service/shared_kb.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

namespace stune::service {
namespace {

/// log2 bucket of an input size; bucket 0 covers [0, 2).
int size_bucket(simcore::Bytes bytes) {
  int b = 0;
  for (simcore::Bytes v = bytes; v >= 2; v /= 2) ++b;
  return b;
}

bool within_size_tolerance(simcore::Bytes a, simcore::Bytes b, double tolerance) {
  if (a == 0 || b == 0) return a == b;
  const double ratio =
      static_cast<double>(std::max(a, b)) / static_cast<double>(std::min(a, b));
  return ratio <= tolerance;
}

}  // namespace

SharedKnowledgeBase::SharedKnowledgeBase(SharedKnowledgeBaseOptions options)
    : options_(options), retrieval_(options.retrieval) {}

SharedKnowledgeBase::CellKey SharedKnowledgeBase::key_for(
    const transfer::Signature& sig) const {
  CellKey key{};
  const double width = options_.cell_width > 0.0 ? options_.cell_width : 0.25;
  const auto dims = sig.as_array();
  for (std::size_t d = 0; d < transfer::Signature::kDims; ++d) {
    key[d] = static_cast<int>(std::floor(dims[d] / width));
  }
  return key;
}

SharedKnowledgeBase::Cell& SharedKnowledgeBase::cell_for(
    const transfer::Signature& sig) {
  const CellKey key = key_for(sig);
  auto it = cells_.find(key);
  if (it != cells_.end()) return it->second;
  if (options_.max_cells == 0 || cells_.size() < options_.max_cells) {
    return cells_[key];
  }
  // At the cell cap, fold into the nearest existing cell (L1 distance on the
  // quantized grid; ties break to the first cell in map order, which is
  // deterministic because std::map iterates in key order).
  auto best = cells_.begin();
  long best_dist = -1;
  for (auto c = cells_.begin(); c != cells_.end(); ++c) {
    long dist = 0;
    for (std::size_t d = 0; d < transfer::Signature::kDims; ++d) {
      dist += std::labs(static_cast<long>(key[d]) - static_cast<long>(c->first[d]));
    }
    if (best_dist < 0 || dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best->second;
}

std::uint64_t SharedKnowledgeBase::record_execution(ExecutionRecord r) {
  const simcore::MutexLock lock(mu_);
  r.sequence = next_sequence_++;
  ++recorded_;
  tenants_.insert(r.tenant);

  Cell& cell = cell_for(r.signature);
  ++cell.records;
  if (!r.failed) {
    // Donor hall of fame: runtime-ascending, capped. Insert before the first
    // strictly-slower donor so earlier records win ties (stable across
    // re-feeds of the same stream).
    auto pos = std::find_if(cell.donors.begin(), cell.donors.end(),
                            [&](const Donor& d) { return d.runtime > r.runtime; });
    cell.donors.insert(pos, Donor{r.runtime, r.config, r.signature});
    if (options_.donors_per_cell > 0 && cell.donors.size() > options_.donors_per_cell) {
      cell.donors.resize(options_.donors_per_cell);
    }
    auto [slot, inserted] = cell.best_by_size.try_emplace(size_bucket(r.input_bytes));
    if (inserted || r.runtime < slot->second.runtime) {
      slot->second = SizeBest{r.runtime, r.input_bytes, r.signature};
    }
    // Feed the retrieval tier (successful runs only — a retrieved config is
    // adopted without a trial, so failures must never be candidates). The
    // append publishes a new lock-free snapshot epoch.
    retrieval_.append(r.signature, r.input_bytes, r.runtime, r.config);
  }

  const std::uint64_t seq = r.sequence;
  records_.push_back(std::move(r));
  if (options_.max_records != 0) {
    while (records_.size() > options_.max_records) records_.pop_front();
  }
  return seq;
}

std::size_t SharedKnowledgeBase::total_records() const {
  const simcore::MutexLock lock(mu_);
  return static_cast<std::size_t>(recorded_);
}

std::size_t SharedKnowledgeBase::retained_records() const {
  const simcore::MutexLock lock(mu_);
  return records_.size();
}

std::size_t SharedKnowledgeBase::distinct_tenants() const {
  const simcore::MutexLock lock(mu_);
  return tenants_.size();
}

std::vector<transfer::DonorObservation> SharedKnowledgeBase::indexed_donors() const {
  const simcore::MutexLock lock(mu_);
  std::vector<transfer::DonorObservation> out;
  for (const auto& [key, cell] : cells_) {
    (void)key;
    for (const Donor& d : cell.donors) {
      transfer::DonorObservation obs;
      obs.observation.config = d.config;
      obs.observation.runtime = d.runtime;
      obs.observation.failed = false;
      obs.observation.objective = d.runtime;
      obs.signature = d.signature;
      out.push_back(std::move(obs));
    }
  }
  return out;
}

std::optional<double> SharedKnowledgeBase::best_similar_runtime(
    const transfer::Signature& target, simcore::Bytes input_bytes,
    double min_similarity, double size_tolerance) const {
  const simcore::MutexLock lock(mu_);
  std::optional<double> best;
  for (const auto& [key, cell] : cells_) {
    (void)key;
    for (const auto& [bucket, sb] : cell.best_by_size) {
      (void)bucket;
      if (!within_size_tolerance(sb.input_bytes, input_bytes, size_tolerance)) continue;
      if (transfer::similarity(sb.signature, target) < min_similarity) continue;
      if (!best || sb.runtime < *best) best = sb.runtime;
    }
  }
  return best;
}

std::size_t SharedKnowledgeBase::retrieval_distinct_configs() const {
  const simcore::MutexLock lock(mu_);
  return retrieval_.distinct_configs();
}

KnowledgeBase SharedKnowledgeBase::snapshot() const {
  const simcore::MutexLock lock(mu_);
  KnowledgeBase kb;
  for (const ExecutionRecord& r : records_) kb.record(r);
  return kb;
}

}  // namespace stune::service
