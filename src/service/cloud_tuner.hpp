// Stage 1 of the paper's Fig. 1 pipeline: cloud configuration tuning —
// pick the instance family, type and VM count for a workload before the
// DISC-level knobs are touched (CherryPick/PARIS territory, §II-A).
//
// The search runs Bayesian optimization over a small cloud configuration
// space; every candidate cluster is evaluated by executing the workload
// under the provider's heuristic auto-configuration, so stage 1 isolates
// the infrastructure choice from DISC tuning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/contention.hpp"
#include "config/config_space.hpp"
#include "disc/cost_model.hpp"
#include "tuning/trial_executor.hpp"
#include "workload/eval_cache.hpp"
#include "workload/workload.hpp"

namespace stune::service {

/// What stage 1 optimizes for.
enum class CloudObjective {
  kRuntime,  // fastest, cost-blind
  kCost,     // cheapest total $ for the run (CherryPick's default)
  kBalanced, // minimize runtime * cost
};

std::string to_string(CloudObjective objective);

/// How stage 1 searches the cloud space.
enum class CloudStrategy {
  kBayesOpt,  // CherryPick: GP + expected improvement over the whole space
  kErnest,    // Ernest: profile small clusters per family, extrapolate the
              // scaling curve, pick analytically (cheap, but only as good
              // as the t(d, m) basis fits the workload)
  kRandom,    // uniform sampling baseline
};

std::string to_string(CloudStrategy strategy);

/// A sane, capacity-proportional DISC configuration for a cluster — what a
/// managed service would deploy before any tuning. Used as the stage-1
/// evaluation config and as the service's pre-tuning default.
config::Configuration provider_auto_config(const cluster::Cluster& cluster);

struct CloudTunerOptions {
  CloudObjective objective = CloudObjective::kBalanced;
  CloudStrategy strategy = CloudStrategy::kBayesOpt;
  std::size_t budget = 12;  // cluster trials (CherryPick uses ~10)
  /// kErnest: small-cluster profile points per family.
  std::vector<int> ernest_profile_counts = {2, 3, 4};
  int min_vms = 2;
  int max_vms = 12;
  std::uint64_t seed = 1;
  cluster::ContentionParams contention{};
  disc::CostModel cost_model{};
};

struct CloudChoice {
  cluster::ClusterSpec spec;
  double runtime = 0.0;
  double cost = 0.0;
  std::size_t trials = 0;        // executions spent searching
  double trial_time = 0.0;       // total simulated seconds burned
  double trial_cost = 0.0;       // total dollars burned
};

/// The cloud configuration space itself (instance type x VM count), shared
/// with benches that want to sweep it exhaustively.
std::shared_ptr<const config::ConfigSpace> cloud_space(int min_vms, int max_vms);

/// Resolve a point of cloud_space() to a ClusterSpec.
cluster::ClusterSpec to_cluster_spec(const config::Configuration& c);

/// Thread-safety: const and stateless after construction — both choose()
/// overloads only read options_ and work through their arguments, so a
/// CloudTuner needs no mutex of its own. The shared-state overload inherits
/// its safety from the EvalCache's sharded locks and the TrialExecutor's
/// session serialization (both annotated; see thread_annotations.hpp).
class CloudTuner {
 public:
  explicit CloudTuner(CloudTunerOptions options) : options_(options) {}
  CloudTuner() : CloudTuner(CloudTunerOptions{}) {}

  CloudChoice choose(const workload::Workload& workload, simcore::Bytes input_bytes) const;

  /// Same search, but trial evaluations go through a shared executor and
  /// execution cache (the service passes its own, so stage-1 probes are
  /// batched across configurations and replayed across tenants).
  CloudChoice choose(const workload::Workload& workload, simcore::Bytes input_bytes,
                     workload::EvalCache& cache, tuning::TrialExecutor& executor) const;

 private:
  CloudTunerOptions options_;
};

}  // namespace stune::service
