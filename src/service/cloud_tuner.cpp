#include "service/cloud_tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "config/spark_space.hpp"
#include "disc/deployment.hpp"
#include "disc/engine.hpp"
#include "disc/trial_context.hpp"
#include "model/linear.hpp"
#include "tuning/tuners.hpp"
#include "workload/execute.hpp"

namespace stune::service {

std::string to_string(CloudObjective objective) {
  switch (objective) {
    case CloudObjective::kRuntime: return "runtime";
    case CloudObjective::kCost: return "cost";
    case CloudObjective::kBalanced: return "balanced";
  }
  return "unknown";
}

std::string to_string(CloudStrategy strategy) {
  switch (strategy) {
    case CloudStrategy::kBayesOpt: return "bayesopt";
    case CloudStrategy::kErnest: return "ernest";
    case CloudStrategy::kRandom: return "random";
  }
  return "unknown";
}

config::Configuration provider_auto_config(const cluster::Cluster& cluster) {
  namespace k = config::spark;
  auto conf = config::spark_space()->default_config();
  const int vcpus = cluster.type().vcpus;
  const int cores = std::min(4, vcpus);
  const int epv = std::max(1, vcpus / cores);
  const double overhead = 0.10;
  const double usable_gib =
      static_cast<double>(cluster.usable_memory_per_vm()) / (1024.0 * 1024.0 * 1024.0);
  const double heap = std::clamp(usable_gib / epv / (1.0 + overhead) * 0.95, 1.0, 48.0);
  const int slots = epv * cluster.vm_count() * cores;

  conf.set(k::kExecutorCores, cores);
  conf.set(k::kExecutorMemoryGiB, heap);
  conf.set(k::kExecutorInstances, epv * cluster.vm_count());
  conf.set(k::kDynamicAllocation, 1.0);
  conf.set(k::kDriverMemoryGiB, 4.0);
  conf.set(k::kMemoryOverheadFactor, overhead);
  conf.set(k::kDefaultParallelism, std::clamp(3 * slots, 8, 2048));
  conf.set(k::kSqlShufflePartitions, std::clamp(3 * slots, 8, 2048));
  conf.set(k::kSerializer, 1.0);  // kryo
  conf.set(k::kMemoryFraction, 0.75);
  return conf;
}

std::shared_ptr<const config::ConfigSpace> cloud_space(int min_vms, int max_vms) {
  if (min_vms <= 0 || max_vms < min_vms) {
    throw std::invalid_argument("cloud_space: bad VM count range");
  }
  std::vector<std::string> types;
  for (const auto& t : cluster::instance_catalog()) types.push_back(t.name);
  std::vector<config::ParamDef> params;
  params.push_back(config::ParamDef::categorical("cloud.instance.type", std::move(types), 2,
                                                 "EC2-style instance type"));
  params.push_back(config::ParamDef::integer("cloud.vm.count", min_vms, max_vms,
                                             std::min(4, max_vms), false, "cluster size"));
  return config::ConfigSpace::create(std::move(params));
}

cluster::ClusterSpec to_cluster_spec(const config::Configuration& c) {
  cluster::ClusterSpec spec;
  spec.instance = c.get_label("cloud.instance.type");
  spec.vm_count = static_cast<int>(c.get_int("cloud.vm.count"));
  return spec;
}

namespace {

struct Outcome {
  double runtime;
  double cost;
  bool failed;
};

}  // namespace

CloudChoice CloudTuner::choose(const workload::Workload& workload,
                               simcore::Bytes input_bytes) const {
  workload::EvalCache cache;
  tuning::TrialExecutor executor;
  return choose(workload, input_bytes, cache, executor);
}

CloudChoice CloudTuner::choose(const workload::Workload& workload, simcore::Bytes input_bytes,
                               workload::EvalCache& cache,
                               tuning::TrialExecutor& executor) const {
  double trial_time = 0.0;
  double trial_cost = 0.0;
  std::size_t trials = 0;
  // One engine context per worker plus the driver (commit hooks re-run
  // specs on the driver thread): stage-1 probes vary the cluster but not
  // the plan or seed, so the draw caches hit across the whole sweep.
  disc::TrialContextPool ctx_pool(executor.jobs() + 1);
  // Pure evaluation: safe to call from executor worker threads.
  auto run_spec = [&](const cluster::ClusterSpec& spec) -> disc::ExecutionReport {
    const cluster::Cluster cl = cluster::Cluster::from_spec(spec);
    disc::EngineOptions eopts;
    eopts.cost = options_.cost_model;
    eopts.contention = options_.contention;
    eopts.seed = options_.seed;
    const disc::SparkSimulator sim(cl, eopts);
    const auto ctx = ctx_pool.acquire();
    return workload::execute(workload, input_bytes, sim, provider_auto_config(cl), cache, *ctx);
  };
  auto count_trial = [&](const disc::ExecutionReport& report) {
    trial_time += report.runtime;
    trial_cost += report.cost;
    ++trials;
  };
  auto evaluate_spec = [&](const cluster::ClusterSpec& spec) -> Outcome {
    const auto report = run_spec(spec);
    count_trial(report);
    return Outcome{report.runtime, report.cost, !report.success};
  };
  auto score_of = [&](double runtime, double cost) {
    switch (options_.objective) {
      case CloudObjective::kRuntime: return runtime;
      case CloudObjective::kCost: return cost * 3600.0;  // scale to seconds-ish
      case CloudObjective::kBalanced: return std::sqrt(runtime * cost * 3600.0);
    }
    return runtime;
  };

  cluster::ClusterSpec picked;
  switch (options_.strategy) {
    case CloudStrategy::kBayesOpt: {
      const auto space = cloud_space(options_.min_vms, options_.max_vms);
      tuning::Objective objective = [&](const config::Configuration& c) -> tuning::EvalOutcome {
        const auto report = run_spec(to_cluster_spec(c));
        return tuning::EvalOutcome{score_of(report.runtime, report.cost), !report.success};
      };
      // Trial accounting happens at commit time on the driver thread; the
      // re-fetch is a guaranteed cache hit of the report the objective
      // just produced.
      tuning::TrialExecutor::CommitHook hook = [&](const tuning::Observation& o) {
        count_trial(run_spec(to_cluster_spec(o.config)));
      };
      tuning::BayesOptTuner tuner(tuning::BayesOptTuner::Params{
          .init_samples = std::max<std::size_t>(4, options_.budget / 3),
          .candidates = 256,
          .local_candidates = 32});
      tuning::TuneOptions topts;
      topts.budget = options_.budget;
      topts.seed = options_.seed;
      picked = to_cluster_spec(executor.run(tuner, space, objective, topts, hook).best);
      break;
    }
    case CloudStrategy::kRandom: {
      const auto space = cloud_space(options_.min_vms, options_.max_vms);
      simcore::Rng rng(options_.seed);
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < options_.budget; ++i) {
        const auto spec = to_cluster_spec(space->sample(rng));
        const Outcome o = evaluate_spec(spec);
        if (o.failed) continue;
        const double s = score_of(o.runtime, o.cost);
        if (s < best) {
          best = s;
          picked = spec;
        }
      }
      if (!std::isfinite(best)) picked = cluster::ClusterSpec{"m5.2xlarge", options_.min_vms};
      break;
    }
    case CloudStrategy::kErnest: {
      // Profile each family's mid-size type on a few small clusters, fit
      // the Ernest scaling basis t(m) = w0 + w1 d/m + w2 log m + w3 m per
      // family, and extrapolate across the whole count range analytically.
      const double data_units = static_cast<double>(input_bytes) / (1ULL << 30);
      double best = std::numeric_limits<double>::infinity();
      for (const auto& family : cluster::catalog_families()) {
        const auto types = cluster::family_types(family);
        const auto* type = types[types.size() / 2];
        model::ErnestModel ernest;
        bool usable = true;
        for (const int count : options_.ernest_profile_counts) {
          const int vms = std::clamp(count, options_.min_vms, options_.max_vms);
          const Outcome o = evaluate_spec({type->name, vms});
          if (o.failed) {
            usable = false;  // Ernest has no story for crashing profiles
            break;
          }
          ernest.add_observation(data_units, vms, o.runtime);
        }
        if (!usable) continue;
        ernest.fit();
        for (int vms = options_.min_vms; vms <= options_.max_vms; ++vms) {
          const double rt = ernest.predict(data_units, vms);
          const double cost =
              cluster::Cluster(*type, vms).cost_per_hour() * rt / 3600.0;
          const double s = score_of(rt, cost);
          if (s < best) {
            best = s;
            picked = cluster::ClusterSpec{type->name, vms};
          }
        }
      }
      if (!std::isfinite(best)) picked = cluster::ClusterSpec{"m5.2xlarge", options_.min_vms};
      break;
    }
  }

  CloudChoice choice;
  choice.spec = picked;
  const Outcome final_outcome = evaluate_spec(choice.spec);
  choice.trials = trials - 1;  // the confirmation run is reported separately
  choice.trial_time = trial_time;
  choice.trial_cost = trial_cost;
  choice.runtime = final_outcome.runtime;
  choice.cost = final_outcome.cost;
  return choice;
}

}  // namespace stune::service
