// The zero-execution retrieval tier (DESIGN.md §15): an append-only index
// over every successful execution the fleet has recorded, answering
// "the k most similar historical workloads to this signature" in
// microseconds — with no trial execution and, on the read side, no lock.
//
// Layout. Signatures live in flat structure-of-arrays blocks: eight
// dimension columns plus input-size, runtime and config-pointer columns,
// each a fixed-capacity array inside an immutable-once-published Block.
// Queries stream the dimension columns through the blocked SIMD kernel in
// service/signature_scan.* and keep a fixed-size top-k, so a query performs
// zero heap allocations (enforced by the analyzer's retrieval-alloc rule).
// Configurations are deduplicated by fingerprint into a side pool — a
// million records of a fleet reusing a few thousand configurations store
// each configuration once and an 8-byte pointer per record.
//
// Reads. The index publishes immutable snapshots through an atomic
// std::shared_ptr epoch: a writer appends into block cells *beyond* every
// published size (under whatever external serialization the owner provides;
// the SharedKnowledgeBase appends under its kKnowledgeBase mutex), builds a
// new Snapshot describing [0, size), and release-stores it. A reader
// acquire-loads the current snapshot and scans — it never takes the
// knowledge-base mutex, never blocks a writer, and holds a shared_ptr that
// keeps its blocks alive however far the writer has moved on. Cells at
// index >= a snapshot's size are invisible to its readers, so writer and
// readers never touch the same bytes.
//
// IVF. Past RetrievalOptions::ivf_min_entries the index layers a pruned
// tier on top of the flat columns, rebuilt (immutably, off to the side)
// every time a block fills. The rebuild *packs* the dimension columns in
// cluster order — signatures quantized to a cell grid, each cell's members
// contiguous — then carves the packed order into *scan units* of bounded
// size, splitting oversized cells spatially so even a clump of a million
// near-identical signatures decomposes into units with tight, separating
// bounding boxes. Over the units it builds a balanced bounding-box tree
// (positional median splits, so its depth is logarithmic and the query
// stack is a small fixed array). The default probe policy is *exact*: a
// depth-first walk descends the nearer child first, dives to the unit
// nearest the query, fills the top-k there, and then prunes every node and
// unit whose box lower-bound exceeds the shrinking kth-best; a surviving
// unit is a sequential SIMD sweep over its packed range, not a
// pointer-chasing gather. Results are bitwise identical to the flat scan
// (the total order (dist², entry) makes exact top-k unique); the pruning
// only skips candidates that cannot win. probe_cells > 0 instead collects
// the P best-bounded units and scans only those (approximate mode;
// bench_retrieval measures the recall it trades away). Entries appended
// since the last rebuild are scanned flat — at most one block's worth.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "config/config_space.hpp"
#include "simcore/units.hpp"
#include "transfer/characterization.hpp"

namespace stune::service {

struct RetrievalOptions {
  /// Entries per SoA block (rounded up to a power of two). Blocks are
  /// immutable once their cells are published; small values exist for tests.
  std::size_t block_capacity = 4096;
  /// Below this many entries queries always scan flat; at or above it the
  /// IVF lists are consulted (they are maintained either way).
  std::size_t ivf_min_entries = 8192;
  /// Quantization step of the IVF cell grid (the SharedKnowledgeBase's
  /// signature-cell width, so the two tiers agree on what "a workload
  /// shape" is).
  double cell_width = 0.25;
};

/// One top-k query. All filters are optional; the defaults rank every entry.
struct RetrievalQuery {
  transfer::Signature signature;
  /// 0 = no size filter; otherwise candidates must be within
  /// `size_tolerance` (multiplicative) of this input size.
  simcore::Bytes input_bytes = 0;
  double size_tolerance = 1.5;
  /// Similarity floor in [0, 1): candidates must satisfy
  /// exp(-distance) >= min_similarity (transfer::similarity at scale 1).
  /// Converted once to a squared-distance ceiling; the hot loop never
  /// evaluates exp.
  double min_similarity = 0.0;
  /// 0 = exact (bound-pruned scan, flat-identical results); > 0 caps the
  /// number of scan units probed — the P units nearest the query by
  /// bounding-box distance (approximate, clamped to kMaxProbe).
  std::size_t probe_cells = 0;
};

/// One retrieved neighbor. `config` points into the snapshot's config pool:
/// valid while the snapshot that produced it is alive.
struct RetrievalHit {
  double dist2 = std::numeric_limits<double>::infinity();
  double runtime = 0.0;
  simcore::Bytes input_bytes = 0;
  std::uint32_t entry = 0;  // global entry index (append order)
  const config::Configuration* config = nullptr;
};

class RetrievalIndex;

/// An immutable view of the index at one epoch. Copyable via shared_ptr;
/// query() is const, thread-safe, and allocation-free.
class RetrievalSnapshot {
 public:
  /// Top-k capacity of the fixed in-loop heap; k is clamped to this.
  static constexpr std::size_t kMaxK = 16;
  /// Cap on probe_cells in approximate mode.
  static constexpr std::size_t kMaxProbe = 64;

  std::size_t size() const { return size_; }
  std::uint64_t epoch() const { return epoch_; }
  /// Entries covered by the IVF lists (the tail [ivf_indexed, size) scans
  /// flat); 0 when the IVF tier is not engaged at this size.
  std::size_t ivf_indexed() const;
  std::size_t ivf_cells() const;

  /// The k nearest qualifying entries, ascending (dist², entry). Writes at
  /// most min(k, kMaxK) hits into `hits` and returns how many. Exact unless
  /// the query caps probe_cells. Performs no heap allocation.
  std::size_t query(const RetrievalQuery& q, std::size_t k, RetrievalHit* hits) const;

  /// Exact flat scan, ignoring the IVF tier — the reference answer
  /// bench_retrieval and the tests compare against.
  std::size_t query_flat(const RetrievalQuery& q, std::size_t k, RetrievalHit* hits) const;

  /// As query_flat, but through the always-scalar kernel (SIMD-vs-scalar
  /// parity checks).
  std::size_t query_flat_scalar(const RetrievalQuery& q, std::size_t k,
                                RetrievalHit* hits) const;

 private:
  friend class RetrievalIndex;

  /// One SoA block: column arrays sized by the index's block capacity.
  /// Cells below a published snapshot's size are immutable; the writer only
  /// ever touches cells beyond every published size.
  struct Block {
    explicit Block(std::size_t capacity);
    std::vector<double> dims[transfer::Signature::kDims];
    std::vector<double> runtime;
    std::vector<simcore::Bytes> bytes;
    std::vector<const config::Configuration*> config;
  };

  /// Shared backing storage: blocks and the deduplicated config pool.
  /// Deques so growth never moves an existing element; readers hold raw
  /// pointers to elements, never call deque methods.
  struct Store {
    std::deque<Block> blocks;
    std::deque<config::Configuration> configs;
  };

  using CellKey = std::array<int, transfer::Signature::kDims>;

  /// The immutable IVF tier: the scanned columns re-packed in cluster order
  /// — cell members contiguous, so a probe is a sequential SIMD sweep —
  /// carved into *scan units* of bounded size, each with a tight bounding
  /// box over its members' actual coordinates. A cell larger than the unit
  /// cap is split spatially (recursive median cuts along its widest spread),
  /// so even a dense clump of near-identical signatures decomposes into
  /// units whose boxes separate, letting queries prune most of the clump
  /// instead of streaming all of it. Rebuilt from the writer's live cell map
  /// each time a block fills; shared by snapshots until the next rebuild.
  struct Ivf {
    std::size_t indexed = 0;  // entries covered: [0, indexed)
    double cell_width = 0.25;
    std::vector<CellKey> keys;            // populated cells, ascending
    std::vector<std::uint32_t> entries;   // grouped by cell, units contiguous
    /// Dimension columns re-ordered to match `entries` (packed[d][p] is
    /// dimension d of entry entries[p]); bit-identical copies, so packed
    /// distances equal flat-scan distances.
    std::vector<double> packed[transfer::Signature::kDims];
    std::vector<double> packed_bytes;     // input sizes, same order
    std::vector<std::uint32_t> unit_off;  // units + 1, ranges into packed
    /// Boxes are float with outward rounding (lo down, hi up): the box can
    /// only grow, so a distance bound against it can only shrink — pruning
    /// stays conservative — while the pruning structures take half the
    /// cache traffic of double boxes.
    using Box = std::array<float, 2 * transfer::Signature::kDims>;
    /// Per-unit [lo, hi] per dimension, interleaved: [2d] and [2d + 1].
    std::vector<Box> unit_box;
    /// One node of the balanced bounding-box tree over scan units. Internal
    /// nodes store child node ids in {a, b}; leaves store a range [a, b)
    /// into `bvh_units`. Every node carries the merged box of its units, so
    /// dist²(query, box) lower-bounds every descendant entry.
    struct BvhNode {
      Box box;
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      bool leaf = false;
    };
    /// Balanced BVH over units (median split on box centers along the widest
    /// node dimension); bvh[0] is the root. Splits are positional, so depth
    /// is at most ceil(log2(units)).
    std::vector<BvhNode> bvh;
    std::vector<std::uint32_t> bvh_units;  // unit ids, leaf ranges contiguous
  };

  struct TopK;  // fixed-capacity top-k accumulator (defined in the .cpp)

  void scan_range(const double* query_dims, std::size_t begin, std::size_t end,
                  const RetrievalQuery& q, double limit, bool scalar, TopK& top) const;
  void scan_packed(const Ivf& ivf, const double* query_dims, std::size_t begin,
                   std::size_t end, const RetrievalQuery& q, double limit,
                   TopK& top) const;
  std::size_t run_query(const RetrievalQuery& q, std::size_t k, RetrievalHit* hits,
                        bool use_ivf, bool scalar) const;
  std::size_t emit(const TopK& top, RetrievalHit* hits) const;

  std::shared_ptr<const Store> store_;   // keeps blocks + configs alive
  std::vector<const Block*> blocks_;     // blocks covering [0, size_)
  std::shared_ptr<const Ivf> ivf_;       // may be null
  std::size_t size_ = 0;
  std::size_t block_shift_ = 12;         // log2(block capacity)
  std::size_t block_mask_ = 4095;
  std::size_t ivf_min_entries_ = 0;
  std::uint64_t epoch_ = 0;
};

/// The writer side. Appends are *externally* serialized (the
/// SharedKnowledgeBase calls append() under its kKnowledgeBase mutex);
/// snapshot() is safe from any thread at any time and never blocks.
class RetrievalIndex {
 public:
  explicit RetrievalIndex(RetrievalOptions options = {});

  /// Append one successful execution and publish a new snapshot epoch.
  void append(const transfer::Signature& signature, simcore::Bytes input_bytes,
              double runtime, const config::Configuration& config);

  /// The current immutable view (never null; empty at epoch 0). Named to
  /// match SharedKnowledgeBase::retrieval_snapshot(), and deliberately NOT
  /// `snapshot`: the whole-program analyzer resolves calls by name, and
  /// sharing a name with the mutex-taking SharedKnowledgeBase::snapshot()
  /// would make every lock-free read look like a knowledge-base lock.
  std::shared_ptr<const RetrievalSnapshot> retrieval_snapshot() const {
    return snap_.load(std::memory_order_acquire);
  }

  std::size_t size() const { return snap_.load(std::memory_order_acquire)->size(); }
  std::uint64_t epoch() const { return snap_.load(std::memory_order_acquire)->epoch(); }
  /// Distinct configurations in the dedup pool (storage diagnostics).
  std::size_t distinct_configs() const { return config_by_fp_.size(); }

 private:
  using CellKey = RetrievalSnapshot::CellKey;

  CellKey key_for(const transfer::Signature& sig) const;
  void publish(std::shared_ptr<const RetrievalSnapshot::Ivf> ivf);

  const std::size_t capacity_;   // power of two
  const std::size_t shift_;
  const RetrievalOptions options_;
  std::shared_ptr<RetrievalSnapshot::Store> store_;
  std::map<std::uint64_t, const config::Configuration*> config_by_fp_;
  /// Live inverted lists, appended per record; flattened into an immutable
  /// Ivf each time a block fills.
  std::map<CellKey, std::vector<std::uint32_t>> cells_;
  std::shared_ptr<const RetrievalSnapshot::Ivf> ivf_;  // last rebuild
  std::size_t size_ = 0;
  std::uint64_t epoch_ = 0;
  std::atomic<std::shared_ptr<const RetrievalSnapshot>> snap_;
};

}  // namespace stune::service
