#include "service/circuit_breaker.hpp"

#include <algorithm>

namespace stune::service {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options) : options_(options) {
  options_.open_after = std::max(1, options_.open_after);
  options_.cooldown_runs = std::max(0, options_.cooldown_runs);
}

void CircuitBreaker::open() {
  state_ = BreakerState::kOpen;
  cooldown_waited_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow_request() {
  switch (state_) {
    case BreakerState::kClosed: return true;
    case BreakerState::kHalfOpen:
      // The probe is in flight (the service is single-threaded per tenant);
      // keep allowing until its outcome is recorded.
      return true;
    case BreakerState::kOpen:
      if (++cooldown_waited_ > options_.cooldown_runs) {
        state_ = BreakerState::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  consecutive_faults_ = 0;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::record_infra_fault() {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    consecutive_faults_ = 0;
    open();
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // already tripped
  if (++consecutive_faults_ >= options_.open_after) {
    consecutive_faults_ = 0;
    open();
  }
}

}  // namespace stune::service
