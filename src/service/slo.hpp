// Tuning-effectiveness SLOs (paper §IV-D, §V-C): "jobs should run within X%
// of the optimal runtime", with "optimal" operationalized as the best known
// runtime of similar workloads in the knowledge base — the paper's own
// suggested substitute when the true optimum is unknowable.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace stune::service {

struct Slo {
  /// Attained when runtime <= (1 + within_fraction) * reference.
  double within_fraction = 0.10;
  /// Optional absolute ceilings a tenant can also set.
  std::optional<double> max_runtime_s;
  std::optional<double> max_cost_dollars;
};

struct SloEvaluation {
  bool attained = false;
  bool had_reference = false;  // false: nothing similar known yet (vacuous)
  double runtime = 0.0;
  double reference = 0.0;      // best-known similar runtime
  double excess_fraction = 0.0;  // (runtime - reference) / reference
};

/// Evaluate one production run against the SLO. When no reference exists
/// yet the run is counted as attained-by-default but flagged, so the
/// efficiency metric can report both interpretations.
SloEvaluation evaluate_slo(const Slo& slo, double runtime, double cost,
                           std::optional<double> reference);

/// Aggregates the per-run evaluations into the §V-C "metric for tuning
/// accuracy as part of SLOs".
class SloTracker {
 public:
  explicit SloTracker(Slo slo) : slo_(slo) {}

  const SloEvaluation& observe(double runtime, double cost, std::optional<double> reference);

  std::size_t runs() const { return evaluations_.size(); }
  std::size_t attained_runs() const;
  std::size_t runs_with_reference() const;
  /// Attainment over runs that had a reference (the strict reading).
  double attainment() const;
  /// Mean excess over the reference across referenced runs.
  double mean_excess_fraction() const;
  const Slo& slo() const { return slo_; }
  const std::vector<SloEvaluation>& evaluations() const { return evaluations_; }

 private:
  Slo slo_;
  std::vector<SloEvaluation> evaluations_;
};

}  // namespace stune::service
