#include "service/knowledge_base.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace stune::service {

namespace {

void check_label(const std::string& s) {
  if (s.find('|') != std::string::npos || s.find('\n') != std::string::npos) {
    throw std::invalid_argument("knowledge base labels must not contain '|' or newlines: " + s);
  }
}

template <typename Seq>
std::string join_numbers(const Seq& values) {
  std::ostringstream out;
  out.precision(17);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out << ',';
    out << values[i];
  }
  return out.str();
}

std::vector<double> split_numbers(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  std::string token;
  while (std::getline(in, token, ',')) out.push_back(std::stod(token));
  return out;
}

}  // namespace

std::uint64_t KnowledgeBase::record(ExecutionRecord r) {
  r.sequence = next_sequence_++;
  records_.push_back(std::move(r));
  return records_.back().sequence;
}

std::vector<transfer::DonorObservation> KnowledgeBase::donors_for(
    const std::optional<std::string>& exclude_label) const {
  std::vector<transfer::DonorObservation> donors;
  donors.reserve(records_.size());
  for (const auto& r : records_) {
    if (r.failed) continue;
    if (exclude_label && r.workload_label == *exclude_label) continue;
    transfer::DonorObservation d;
    d.observation.config = r.config;
    d.observation.runtime = r.runtime;
    d.observation.failed = r.failed;
    d.observation.objective = r.runtime;
    d.signature = r.signature;
    donors.push_back(std::move(d));
  }
  return donors;
}

std::optional<double> KnowledgeBase::best_similar_runtime(const transfer::Signature& target,
                                                          simcore::Bytes input_bytes,
                                                          double min_similarity,
                                                          double size_tolerance) const {
  std::optional<double> best;
  const auto size = static_cast<double>(input_bytes);
  for (const auto& r : records_) {
    if (r.failed) continue;
    const auto rsize = static_cast<double>(r.input_bytes);
    if (rsize > size * size_tolerance || size > rsize * size_tolerance) continue;
    if (transfer::similarity(target, r.signature) < min_similarity) continue;
    if (!best || r.runtime < *best) best = r.runtime;
  }
  return best;
}

void KnowledgeBase::save(std::ostream& out) const {
  for (const auto& r : records_) {
    check_label(r.tenant);
    check_label(r.workload_label);
    const auto sig = r.signature.as_array();
    out << r.tenant << '|' << r.workload_label << '|' << r.cluster.instance << '|'
        << r.cluster.vm_count << '|' << r.input_bytes << '|' << r.runtime << '|' << r.cost
        << '|' << (r.failed ? 1 : 0) << '|' << (r.from_tuning ? 1 : 0) << '|' << r.sequence
        << '|' << join_numbers(sig) << '|' << join_numbers(r.config.values()) << '\n';
  }
}

KnowledgeBase KnowledgeBase::load(std::istream& in,
                                  std::shared_ptr<const config::ConfigSpace> space) {
  if (space == nullptr) throw std::invalid_argument("KnowledgeBase::load: null space");
  KnowledgeBase kb;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::istringstream ls(line);
    std::string field;
    while (std::getline(ls, field, '|')) fields.push_back(field);
    if (fields.size() != 12) {
      throw std::invalid_argument("KnowledgeBase::load: malformed line " +
                                  std::to_string(line_no));
    }
    ExecutionRecord r;
    r.tenant = fields[0];
    r.workload_label = fields[1];
    r.cluster.instance = fields[2];
    r.cluster.vm_count = std::stoi(fields[3]);
    r.input_bytes = std::stoull(fields[4]);
    r.runtime = std::stod(fields[5]);
    r.cost = std::stod(fields[6]);
    r.failed = fields[7] == "1";
    r.from_tuning = fields[8] == "1";
    const auto sig = split_numbers(fields[10]);
    if (sig.size() != transfer::Signature::kDims) {
      throw std::invalid_argument("KnowledgeBase::load: bad signature on line " +
                                  std::to_string(line_no));
    }
    r.signature.cpu_fraction = sig[0];
    r.signature.disk_fraction = sig[1];
    r.signature.net_fraction = sig[2];
    r.signature.gc_fraction = sig[3];
    r.signature.shuffle_per_input = sig[4];
    r.signature.spill_per_input = sig[5];
    r.signature.stage_depth = sig[6];
    r.signature.cache_pressure = sig[7];
    auto values = split_numbers(fields[11]);
    if (values.size() != space->size()) {
      throw std::invalid_argument("KnowledgeBase::load: configuration dimensionality mismatch");
    }
    r.config = config::Configuration(space, std::move(values));
    kb.record(std::move(r));  // re-assigns sequences monotonically
  }
  return kb;
}

std::size_t KnowledgeBase::tenant_count() const {
  std::vector<std::string> tenants;
  for (const auto& r : records_) {
    if (std::find(tenants.begin(), tenants.end(), r.tenant) == tenants.end()) {
      tenants.push_back(r.tenant);
    }
  }
  return tenants.size();
}

}  // namespace stune::service
