#include "service/signature_scan.hpp"

#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace stune::service::scan {

namespace {

/// acc + a·b with pinned contraction: one hardware fused multiply-add when
/// this TU is built with FMA support, a plainly rounded multiply + add
/// otherwise — the same helper contract as model/gp.cpp and linalg/matrix.cpp.
/// Every accumulation in this TU goes through it, which (together with the
/// per-TU -ffp-contract=off pin) is what makes the scalar path bitwise
/// identical to the vector path: both execute the same per-entry chain of
/// fused operations, only the number of entries in flight differs.
inline double fma_acc(double acc, double a, double b) {
#ifdef __FMA__
  return __builtin_fma(a, b, acc);
#else
  return acc + a * b;
#endif
}

}  // namespace

void dist2_scalar(const double* const* cols, std::size_t n, const double* query,
                  double* out) {
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < kDims; ++d) {
      const double diff = cols[d][i] - query[d];
      acc = fma_acc(acc, diff, diff);
    }
    out[i] = acc;
  }
}

#if defined(__AVX2__) && defined(__FMA__)

void dist2(const double* const* cols, std::size_t n, const double* query, double* out) {
  // Lane-per-entry: each of the four lanes carries one entry's accumulator
  // through the eight-dimension chain — vfmadd per dimension, exactly the
  // scalar sequence. Two vectors in flight hide the FMA latency (the chains
  // are independent across entries).
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (std::size_t d = 0; d < kDims; ++d) {
      const __m256d q = _mm256_set1_pd(query[d]);
      const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(cols[d] + i), q);
      const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(cols[d] + i + 4), q);
      acc0 = _mm256_fmadd_pd(d0, d0, acc0);
      acc1 = _mm256_fmadd_pd(d1, d1, acc1);
    }
    _mm256_storeu_pd(out + i, acc0);
    _mm256_storeu_pd(out + i + 4, acc1);
  }
  for (; i + 4 <= n; i += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < kDims; ++d) {
      const __m256d diff =
          _mm256_sub_pd(_mm256_loadu_pd(cols[d] + i), _mm256_set1_pd(query[d]));
      acc = _mm256_fmadd_pd(diff, diff, acc);
    }
    _mm256_storeu_pd(out + i, acc);
  }
  // Tail entries run the scalar chain — __FMA__ is defined on this branch,
  // so fma_acc is the same vfmadd the lanes above executed.
  for (; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t d = 0; d < kDims; ++d) {
      const double diff = cols[d][i] - query[d];
      acc = fma_acc(acc, diff, diff);
    }
    out[i] = acc;
  }
}

bool simd_active() { return true; }

#else  // scalar fallback build: dispatch == reference

void dist2(const double* const* cols, std::size_t n, const double* query, double* out) {
  dist2_scalar(cols, n, query, out);
}

bool simd_active() { return false; }

#endif

}  // namespace stune::service::scan
