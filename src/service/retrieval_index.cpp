#include "service/retrieval_index.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "service/signature_scan.hpp"

namespace stune::service {

static_assert(scan::kDims == transfer::Signature::kDims,
              "scan kernel and characterization signature disagree on dimensionality");

namespace {

/// Entries fed to the distance kernel per batch: bounds the fixed stack
/// scratch (distance buffer) a query uses.
constexpr std::size_t kChunk = 256;

/// Total order over candidates: distance first, append order breaks ties.
/// This is what makes exact top-k unique — and therefore identical whether
/// candidates arrive in flat order or grouped by IVF cell. Spelled with
/// ordered comparisons only (a tie is "neither side less"), so no exact FP
/// equality appears in the determinism closure.
inline bool better(double d, std::uint32_t i, double d2, std::uint32_t i2) {
  if (d < d2) return true;
  if (d2 < d) return false;
  return i < i2;
}

/// Deflate a pruning bound by a few ulps. Cell bounds are computed in plain
/// double arithmetic from quantized corners; rounding there (or in the
/// floor() that produced the cell key) can overshoot the true minimum by an
/// ulp, and pruning on an overshot bound would drop an exact-tie candidate.
/// Slightly loosening the bound keeps pruning conservative, so the pruned
/// scan stays bitwise identical to the flat scan.
inline double conservative(double bound) { return bound - bound * 1e-9; }

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot storage

RetrievalSnapshot::Block::Block(std::size_t capacity) {
  for (auto& col : dims) col.resize(capacity);
  runtime.resize(capacity);
  bytes.resize(capacity);
  config.resize(capacity, nullptr);
}

std::size_t RetrievalSnapshot::ivf_indexed() const {
  if (!ivf_ || size_ < ivf_min_entries_) return 0;
  return ivf_->indexed;
}

std::size_t RetrievalSnapshot::ivf_cells() const {
  if (!ivf_ || size_ < ivf_min_entries_) return 0;
  return ivf_->keys.size();
}

// ---------------------------------------------------------------------------
// Fixed-capacity top-k accumulator

struct RetrievalSnapshot::TopK {
  std::size_t k = 0;
  std::size_t count = 0;
  double dist[kMaxK];
  std::uint32_t idx[kMaxK];

  explicit TopK(std::size_t want) : k(std::min(want, kMaxK)) {}

  /// The current kth-best distance: candidates at strictly greater distance
  /// cannot enter; equal distance still can (smaller index wins ties).
  double worst() const {
    return count < k ? std::numeric_limits<double>::infinity() : dist[count - 1];
  }

  void consider(double d, std::uint32_t i) {
    if (count == k && !better(d, i, dist[count - 1], idx[count - 1])) return;
    std::size_t pos = count < k ? count++ : count - 1;
    while (pos > 0 && better(d, i, dist[pos - 1], idx[pos - 1])) {
      dist[pos] = dist[pos - 1];
      idx[pos] = idx[pos - 1];
      --pos;
    }
    dist[pos] = d;
    idx[pos] = i;
  }
};

// ---------------------------------------------------------------------------
// Scanning

void RetrievalSnapshot::scan_range(const double* query_dims, std::size_t begin,
                                   std::size_t end, const RetrievalQuery& q,
                                   double limit, bool scalar, TopK& top) const {
  const bool sized = q.input_bytes > 0;
  const double lob = sized ? static_cast<double>(q.input_bytes) / q.size_tolerance : 0.0;
  const double hib = sized ? static_cast<double>(q.input_bytes) * q.size_tolerance : 0.0;

  double dbuf[kChunk];
  const double* cols[scan::kDims];

  std::size_t pos = begin;
  while (pos < end) {
    const Block* blk = blocks_[pos >> block_shift_];
    const std::size_t off = pos & block_mask_;
    const std::size_t cap = block_mask_ + 1;
    const std::size_t n = std::min({end - pos, cap - off, kChunk});
    for (std::size_t d = 0; d < scan::kDims; ++d) cols[d] = blk->dims[d].data() + off;
    if (scalar) {
      scan::dist2_scalar(cols, n, query_dims, dbuf);
    } else {
      scan::dist2(cols, n, query_dims, dbuf);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (dbuf[i] > limit) continue;
      if (sized) {
        const double b = static_cast<double>(blk->bytes[off + i]);
        if (b < lob || b > hib) continue;
      }
      top.consider(dbuf[i], static_cast<std::uint32_t>(pos + i));
    }
    pos += n;
  }
}

void RetrievalSnapshot::scan_packed(const Ivf& ivf, const double* query_dims,
                                    std::size_t begin, std::size_t end,
                                    const RetrievalQuery& q, double limit,
                                    TopK& top) const {
  const bool sized = q.input_bytes > 0;
  const double lob = sized ? static_cast<double>(q.input_bytes) / q.size_tolerance : 0.0;
  const double hib = sized ? static_cast<double>(q.input_bytes) * q.size_tolerance : 0.0;

  double dbuf[kChunk];
  const double* cols[scan::kDims];

  std::size_t pos = begin;
  while (pos < end) {
    const std::size_t n = std::min(end - pos, kChunk);
    for (std::size_t d = 0; d < scan::kDims; ++d) cols[d] = ivf.packed[d].data() + pos;
    scan::dist2(cols, n, query_dims, dbuf);
    for (std::size_t i = 0; i < n; ++i) {
      if (dbuf[i] > limit) continue;
      if (sized) {
        const double b = ivf.packed_bytes[pos + i];
        if (b < lob || b > hib) continue;
      }
      top.consider(dbuf[i], ivf.entries[pos + i]);
    }
    pos += n;
  }
}

// ---------------------------------------------------------------------------
// Queries

std::size_t RetrievalSnapshot::emit(const TopK& top, RetrievalHit* hits) const {
  for (std::size_t j = 0; j < top.count; ++j) {
    const std::uint32_t e = top.idx[j];
    const Block* blk = blocks_[e >> block_shift_];
    const std::size_t off = e & block_mask_;
    hits[j].dist2 = top.dist[j];
    hits[j].runtime = blk->runtime[off];
    hits[j].input_bytes = blk->bytes[off];
    hits[j].entry = e;
    hits[j].config = blk->config[off];
  }
  return top.count;
}

std::size_t RetrievalSnapshot::run_query(const RetrievalQuery& q, std::size_t k,
                                         RetrievalHit* hits, bool use_ivf,
                                         bool scalar) const {
  if (k == 0 || size_ == 0) return 0;
  const std::array<double, scan::kDims> qd = q.signature.as_array();

  // Similarity bar exp(-dist) >= s  <=>  dist^2 <= log(s)^2 — one log at
  // query setup, no exp/sqrt per candidate.
  double limit = std::numeric_limits<double>::infinity();
  if (q.min_similarity > 0.0) {
    const double l = -std::log(q.min_similarity);
    limit = l * l;
  }

  TopK top(k);
  const bool ivf_live = use_ivf && !scalar && ivf_ && size_ >= ivf_min_entries_ &&
                        ivf_->indexed > 0;
  if (!ivf_live) {
    scan_range(qd.data(), 0, size_, q, limit, scalar, top);
    return emit(top, hits);
  }

  const Ivf& ivf = *ivf_;
  const std::size_t nunits = ivf.unit_box.size();

  const auto scan_unit = [&](std::size_t u) {
    scan_packed(ivf, qd.data(), ivf.unit_off[u], ivf.unit_off[u + 1], q, limit, top);
  };

  /// Lower bound on any member's distance² (conservatively deflated; the
  /// float box is outward-rounded, so the bound can only undershoot).
  const auto box_bound = [&](const Ivf::Box& bb) {
    double acc = 0.0;
    for (std::size_t d = 0; d < scan::kDims; ++d) {
      const double lo = static_cast<double>(bb[2 * d]);
      const double hi = static_cast<double>(bb[2 * d + 1]);
      const double diff = std::max({lo - qd[d], qd[d] - hi, 0.0});
      acc += diff * diff;
    }
    return conservative(acc);
  };

  // DFS frames over the cell BVH. Positional median splits bound the tree
  // depth by ceil(log2(cells)) <= 32 for 32-bit cell ids, and the walk
  // leaves at most one deferred sibling per level on the stack, so 48 frames
  // can never overflow. Bounds are computed at push time; a frame is
  // re-checked against the *current* kth-best at pop time, after the nearer
  // subtree has had the chance to tighten it.
  struct Frame {
    double bound;
    std::uint32_t node;
  };
  constexpr std::size_t kBvhStack = 48;
  Frame stack[kBvhStack];
  std::size_t sp = 0;

  if (q.probe_cells == 0) {
    // Exact mode: best-first-leaning DFS. The nearer child is always
    // descended first, so the walk dives straight to the leaf nearest the
    // query, fills the accumulator there, and then prunes — a node (or unit)
    // whose box bound exceeds the kth-best cannot contain a winner, because
    // the box bound lower-bounds every member distance. Scanning nearest-
    // first collapses the kth-best immediately, so a dense clump costs a
    // few unit scans instead of tens of thousands of entries against a
    // stale bound. Pruning is conservative (deflated bounds, strict >), so
    // results stay bitwise identical to the flat scan — the total order
    // (dist², entry) makes exact top-k unique regardless of scan order.
    stack[sp++] = {box_bound(ivf.bvh[0].box), 0};
    while (sp > 0) {
      const Frame f = stack[--sp];
      if (f.bound > limit || f.bound > top.worst()) continue;
      const Ivf::BvhNode& nd = ivf.bvh[f.node];
      if (nd.leaf) {
        for (std::uint32_t i = nd.a; i < nd.b; ++i) {
          const std::uint32_t u = ivf.bvh_units[i];
          const double bound = box_bound(ivf.unit_box[u]);
          if (bound > limit || bound > top.worst()) continue;
          scan_unit(u);
        }
      } else {
        const double ba = box_bound(ivf.bvh[nd.a].box);
        const double bb = box_bound(ivf.bvh[nd.b].box);
        // Push the farther child first so the nearer one is popped first.
        if (ba <= bb) {
          stack[sp++] = {bb, nd.b};
          stack[sp++] = {ba, nd.a};
        } else {
          stack[sp++] = {ba, nd.a};
          stack[sp++] = {bb, nd.b};
        }
      }
    }
  } else {
    // Approximate mode: the same DFS collects the P best-bounded units
    // without scanning anything. A node's box bound lower-bounds every
    // descendant unit's bound, so once the budget is full a node at or
    // beyond the worst kept bound cannot improve the kept set and its whole
    // subtree is pruned. The kept set is therefore the exact top-P units by
    // (bound, visit order); only the unit cap is approximate. Kept units
    // are then scanned in ascending bound order — best first.
    const std::size_t probe = std::min({q.probe_cells, kMaxProbe, nunits});
    double pbound[kMaxProbe];
    std::uint32_t punit[kMaxProbe];
    std::size_t pcount = 0;
    stack[sp++] = {box_bound(ivf.bvh[0].box), 0};
    while (sp > 0) {
      const Frame f = stack[--sp];
      if (f.bound > limit) continue;
      if (pcount == probe && f.bound >= pbound[pcount - 1]) continue;
      const Ivf::BvhNode& nd = ivf.bvh[f.node];
      if (nd.leaf) {
        for (std::uint32_t i = nd.a; i < nd.b; ++i) {
          const std::uint32_t u = ivf.bvh_units[i];
          const double bound = box_bound(ivf.unit_box[u]);
          if (bound > limit) continue;
          if (pcount == probe && bound >= pbound[pcount - 1]) continue;
          std::size_t pos = pcount < probe ? pcount++ : pcount - 1;
          while (pos > 0 && bound < pbound[pos - 1]) {
            pbound[pos] = pbound[pos - 1];
            punit[pos] = punit[pos - 1];
            --pos;
          }
          pbound[pos] = bound;
          punit[pos] = u;
        }
      } else {
        const double ba = box_bound(ivf.bvh[nd.a].box);
        const double bb = box_bound(ivf.bvh[nd.b].box);
        if (ba <= bb) {
          stack[sp++] = {bb, nd.b};
          stack[sp++] = {ba, nd.a};
        } else {
          stack[sp++] = {ba, nd.a};
          stack[sp++] = {bb, nd.b};
        }
      }
    }
    for (std::size_t p = 0; p < pcount; ++p) scan_unit(punit[p]);
  }

  // Entries appended since the last IVF rebuild scan flat — at most one
  // block's worth.
  if (ivf.indexed < size_) scan_range(qd.data(), ivf.indexed, size_, q, limit, scalar, top);
  return emit(top, hits);
}

std::size_t RetrievalSnapshot::query(const RetrievalQuery& q, std::size_t k,
                                     RetrievalHit* hits) const {
  return run_query(q, k, hits, /*use_ivf=*/true, /*scalar=*/false);
}

std::size_t RetrievalSnapshot::query_flat(const RetrievalQuery& q, std::size_t k,
                                          RetrievalHit* hits) const {
  return run_query(q, k, hits, /*use_ivf=*/false, /*scalar=*/false);
}

std::size_t RetrievalSnapshot::query_flat_scalar(const RetrievalQuery& q, std::size_t k,
                                                 RetrievalHit* hits) const {
  return run_query(q, k, hits, /*use_ivf=*/false, /*scalar=*/true);
}

// ---------------------------------------------------------------------------
// Writer

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 8;
  while (p < n) p <<= 1;
  return p;
}

std::size_t log2_exact(std::size_t p) {
  std::size_t s = 0;
  while ((std::size_t{1} << s) < p) ++s;
  return s;
}

}  // namespace

RetrievalIndex::RetrievalIndex(RetrievalOptions options)
    : capacity_(round_up_pow2(options.block_capacity)),
      shift_(log2_exact(capacity_)),
      options_(options),
      store_(std::make_shared<RetrievalSnapshot::Store>()) {
  if (options_.cell_width <= 0.0)
    throw std::invalid_argument("RetrievalOptions.cell_width must be positive");
  publish(nullptr);
}

RetrievalIndex::CellKey RetrievalIndex::key_for(const transfer::Signature& sig) const {
  const auto dims = sig.as_array();
  CellKey key{};
  for (std::size_t d = 0; d < transfer::Signature::kDims; ++d)
    key[d] = static_cast<int>(std::floor(dims[d] / options_.cell_width));
  return key;
}

void RetrievalIndex::append(const transfer::Signature& signature,
                            simcore::Bytes input_bytes, double runtime,
                            const config::Configuration& config) {
  if (size_ == store_->blocks.size() * capacity_)
    store_->blocks.emplace_back(capacity_);

  // Deduplicate the configuration by fingerprint (values compared on a hash
  // hit, so a collision degrades to an extra pool entry, never a wrong
  // config).
  const std::uint64_t fp = config.fingerprint();
  const config::Configuration* cp = nullptr;
  const auto it = config_by_fp_.find(fp);
  if (it != config_by_fp_.end() && *it->second == config) {
    cp = it->second;
  } else {
    store_->configs.push_back(config);
    cp = &store_->configs.back();
    if (it == config_by_fp_.end()) config_by_fp_.emplace(fp, cp);
  }

  RetrievalSnapshot::Block& blk = store_->blocks.back();
  const std::size_t off = size_ & (capacity_ - 1);
  const auto dims = signature.as_array();
  for (std::size_t d = 0; d < transfer::Signature::kDims; ++d) blk.dims[d][off] = dims[d];
  blk.runtime[off] = runtime;
  blk.bytes[off] = input_bytes;
  blk.config[off] = cp;

  cells_[key_for(signature)].push_back(static_cast<std::uint32_t>(size_));
  ++size_;

  // Rebuild the immutable IVF tier at block boundaries: the cost of
  // flattening the live cell map — including the cluster-ordered copy of the
  // scanned columns and the per-cell tight bounding boxes — amortizes to
  // O(1/capacity) per append, and queries flat-scan at most one block's
  // worth of un-indexed tail.
  if ((size_ & (capacity_ - 1)) == 0) {
    auto ivf = std::make_shared<RetrievalSnapshot::Ivf>();
    ivf->indexed = size_;
    ivf->cell_width = options_.cell_width;
    ivf->keys.reserve(cells_.size());
    std::size_t total = 0;
    for (const auto& [key, list] : cells_) total += list.size();
    ivf->entries.reserve(total);
    for (auto& col : ivf->packed) col.reserve(total);
    ivf->packed_bytes.reserve(total);
    ivf->unit_off.push_back(0);
    constexpr std::size_t kDims = transfer::Signature::kDims;
    const auto dim_of = [&](std::uint32_t e, std::size_t d) {
      return store_->blocks[e >> shift_].dims[d][e & (capacity_ - 1)];
    };

    // Carve each cell into scan units of at most kUnitCap entries. Cells
    // over the cap are split by recursive positional median cuts along the
    // dimension of widest actual spread — a dense clump of repeat workloads
    // thereby decomposes into units whose tight boxes separate spatially,
    // and a query into the clump prunes all but the units its kth-best ball
    // touches. The cut comparator breaks value ties by entry id, so the
    // unit decomposition is a pure function of the cell's member set.
    constexpr std::size_t kUnitCap = 256;
    std::vector<std::uint32_t> order;
    const auto emit_unit = [&](std::size_t begin, std::size_t end) {
      std::array<double, 2 * kDims> ub;
      for (std::size_t d = 0; d < kDims; ++d) {
        ub[2 * d] = std::numeric_limits<double>::infinity();
        ub[2 * d + 1] = -std::numeric_limits<double>::infinity();
      }
      for (std::size_t i = begin; i < end; ++i) {
        const std::uint32_t e = order[i];
        const RetrievalSnapshot::Block& eb = store_->blocks[e >> shift_];
        const std::size_t eoff = e & (capacity_ - 1);
        for (std::size_t d = 0; d < kDims; ++d) {
          const double v = eb.dims[d][eoff];
          ivf->packed[d].push_back(v);
          ub[2 * d] = std::min(ub[2 * d], v);
          ub[2 * d + 1] = std::max(ub[2 * d + 1], v);
        }
        ivf->packed_bytes.push_back(static_cast<double>(eb.bytes[eoff]));
        ivf->entries.push_back(e);
      }
      // Outward-rounded float box: lo rounds down, hi rounds up, so the
      // float box contains the exact double box and bounds against it stay
      // conservative.
      RetrievalSnapshot::Ivf::Box fb;
      for (std::size_t d = 0; d < kDims; ++d) {
        float lo = static_cast<float>(ub[2 * d]);
        if (static_cast<double>(lo) > ub[2 * d])
          lo = std::nextafterf(lo, -std::numeric_limits<float>::infinity());
        float hi = static_cast<float>(ub[2 * d + 1]);
        if (static_cast<double>(hi) < ub[2 * d + 1])
          hi = std::nextafterf(hi, std::numeric_limits<float>::infinity());
        fb[2 * d] = lo;
        fb[2 * d + 1] = hi;
      }
      ivf->unit_box.push_back(fb);
      ivf->unit_off.push_back(static_cast<std::uint32_t>(ivf->entries.size()));
    };
    const auto split = [&](auto&& self, std::size_t begin, std::size_t end) -> void {
      if (end - begin <= kUnitCap) {
        emit_unit(begin, end);
        return;
      }
      std::array<double, 2 * kDims> rb;
      for (std::size_t d = 0; d < kDims; ++d) {
        rb[2 * d] = std::numeric_limits<double>::infinity();
        rb[2 * d + 1] = -std::numeric_limits<double>::infinity();
      }
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t d = 0; d < kDims; ++d) {
          const double v = dim_of(order[i], d);
          rb[2 * d] = std::min(rb[2 * d], v);
          rb[2 * d + 1] = std::max(rb[2 * d + 1], v);
        }
      }
      std::size_t dim = 0;
      double widest = -1.0;
      for (std::size_t d = 0; d < kDims; ++d) {
        const double span = rb[2 * d + 1] - rb[2 * d];
        if (span > widest) {
          widest = span;
          dim = d;
        }
      }
      const std::size_t mid = begin + (end - begin) / 2;
      std::nth_element(order.begin() + static_cast<std::ptrdiff_t>(begin),
                       order.begin() + static_cast<std::ptrdiff_t>(mid),
                       order.begin() + static_cast<std::ptrdiff_t>(end),
                       [&](std::uint32_t x, std::uint32_t y) {
                         const double vx = dim_of(x, dim);
                         const double vy = dim_of(y, dim);
                         if (vx < vy) return true;
                         if (vy < vx) return false;
                         return x < y;
                       });
      self(self, begin, mid);
      self(self, mid, end);
    };
    for (const auto& [key, list] : cells_) {
      ivf->keys.push_back(key);
      order.assign(list.begin(), list.end());
      split(split, 0, order.size());
    }

    // Balanced BVH over the units: positional median split on box centers
    // along the widest dimension of each node's merged box. Positional
    // splits guarantee depth <= ceil(log2(units)), which is what lets the
    // query walk the tree with a small fixed stack. The center comparator
    // breaks ties by unit id, so the tree is a pure function of the unit set.
    const std::size_t nunits = ivf->unit_box.size();
    ivf->bvh_units.resize(nunits);
    for (std::size_t u = 0; u < nunits; ++u)
      ivf->bvh_units[u] = static_cast<std::uint32_t>(u);
    ivf->bvh.reserve(2 * (nunits / 2) + 1);
    constexpr std::uint32_t kBvhLeaf = 8;
    const auto build = [&](auto&& self, std::uint32_t lo, std::uint32_t hi)
        -> std::uint32_t {
      const std::uint32_t id = static_cast<std::uint32_t>(ivf->bvh.size());
      ivf->bvh.emplace_back();
      RetrievalSnapshot::Ivf::Box nb;
      for (std::size_t d = 0; d < kDims; ++d) {
        nb[2 * d] = std::numeric_limits<float>::infinity();
        nb[2 * d + 1] = -std::numeric_limits<float>::infinity();
      }
      for (std::uint32_t i = lo; i < hi; ++i) {
        const auto& ub = ivf->unit_box[ivf->bvh_units[i]];
        for (std::size_t d = 0; d < kDims; ++d) {
          nb[2 * d] = std::min(nb[2 * d], ub[2 * d]);
          nb[2 * d + 1] = std::max(nb[2 * d + 1], ub[2 * d + 1]);
        }
      }
      ivf->bvh[id].box = nb;
      if (hi - lo <= kBvhLeaf) {
        ivf->bvh[id].leaf = true;
        ivf->bvh[id].a = lo;
        ivf->bvh[id].b = hi;
        return id;
      }
      std::size_t dim = 0;
      float widest = -1.0f;
      for (std::size_t d = 0; d < kDims; ++d) {
        const float span = nb[2 * d + 1] - nb[2 * d];
        if (span > widest) {
          widest = span;
          dim = d;
        }
      }
      const std::uint32_t mid = lo + (hi - lo) / 2;
      std::nth_element(
          ivf->bvh_units.begin() + lo, ivf->bvh_units.begin() + mid,
          ivf->bvh_units.begin() + hi,
          [&ivf, dim](std::uint32_t x, std::uint32_t y) {
            const float cx = ivf->unit_box[x][2 * dim] + ivf->unit_box[x][2 * dim + 1];
            const float cy = ivf->unit_box[y][2 * dim] + ivf->unit_box[y][2 * dim + 1];
            if (cx < cy) return true;
            if (cy < cx) return false;
            return x < y;
          });
      const std::uint32_t a = self(self, lo, mid);
      const std::uint32_t b = self(self, mid, hi);
      ivf->bvh[id].a = a;  // re-indexed: the recursion may have grown bvh
      ivf->bvh[id].b = b;
      return id;
    };
    if (nunits > 0) build(build, 0, static_cast<std::uint32_t>(nunits));
    ivf_ = std::move(ivf);
  }

  publish(ivf_);
}

void RetrievalIndex::publish(std::shared_ptr<const RetrievalSnapshot::Ivf> ivf) {
  auto snap = std::make_shared<RetrievalSnapshot>();
  snap->store_ = store_;
  snap->blocks_.reserve(store_->blocks.size());
  for (const auto& blk : store_->blocks) snap->blocks_.push_back(&blk);
  snap->ivf_ = std::move(ivf);
  snap->size_ = size_;
  snap->block_shift_ = shift_;
  snap->block_mask_ = capacity_ - 1;
  snap->ivf_min_entries_ = options_.ivf_min_entries;
  snap->epoch_ = epoch_++;
  snap_.store(std::move(snap), std::memory_order_release);
}

}  // namespace stune::service
