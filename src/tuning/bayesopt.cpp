// CherryPick-style Bayesian optimization: GP surrogate on the one-hot
// encoded configuration, expected-improvement acquisition maximized over a
// random candidate pool plus local perturbations of the incumbent.
//
// Staged shape: warm-start probe, then the LHS bootstrap as one parallel
// stage, then sequential model-guided probes (each fit needs the previous
// outcome, so the BO loop proper has batch size 1).
#include <algorithm>
#include <cstddef>

#include "model/gp.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

void BayesOptTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  data_ = model::Dataset();
  warm_.reset();
  did_warm_ = false;
  did_bootstrap_ = false;

  // Warm-start observations cost nothing; feed them straight to the
  // surrogate and remember the favourite for a real probe.
  const Observation* best_warm = nullptr;
  for (const auto& o : opts().warm_start) {
    data_.add(space().encode(o.config), penalize_warm(o.runtime, o.failed));
    if (!o.failed && (best_warm == nullptr || o.runtime < best_warm->runtime)) best_warm = &o;
  }
  if (best_warm != nullptr) warm_ = best_warm->config;
}

void BayesOptTuner::record(const Observation& observation) {
  data_.add(space().encode(observation.config), observation.objective);
}

void BayesOptTuner::plan() {
  // Validate the transferred favourite on *this* workload right away: if it
  // transfers well it becomes the incumbent the acquisition exploits.
  if (!did_warm_) {
    did_warm_ = true;
    if (warm_.has_value()) {
      propose(*warm_);
      return;
    }
  }
  // One Latin-hypercube stage so the surrogate sees the whole space; the
  // samples are mutually independent and evaluate in parallel.
  if (!did_bootstrap_) {
    did_bootstrap_ = true;
    const std::size_t bootstrap = std::min(
        opts().budget, opts().warm_start.empty()
                           ? params_.init_samples
                           : std::max<std::size_t>(3, params_.init_samples / 2));
    bool proposed = false;
    for (auto& c : space().latin_hypercube(bootstrap, rng_)) {
      propose(std::move(c));
      proposed = true;
    }
    if (proposed) return;
  }

  // Model-guided probe: fit, maximize EI, suggest one configuration.
  model::GaussianProcess gp;
  bool surrogate_ok = true;
  try {
    gp.fit(data_);
  } catch (const std::runtime_error&) {
    surrogate_ok = false;  // degenerate data (e.g. all targets equal)
  }
  config::Configuration next;
  if (surrogate_ok) {
    const double best = best_objective();
    double best_ei = -1.0;
    auto consider = [&](const config::Configuration& c) {
      const auto pred = gp.predict(space().encode(c));
      const double ei = model::expected_improvement(pred.mean, pred.variance, best);
      if (ei > best_ei) {
        best_ei = ei;
        next = c;
      }
    };
    for (std::size_t i = 0; i < params_.candidates; ++i) consider(space().sample(rng_));
    // Exploit around the incumbent.
    if (have_success()) {
      for (std::size_t i = 0; i < params_.local_candidates; ++i) {
        consider(space().neighbor(best_success().config, 0.1, 2, rng_));
      }
    }
  }
  if (next.empty()) next = space().sample(rng_);
  propose(std::move(next));
}

}  // namespace stune::tuning
