// CherryPick-style Bayesian optimization: GP surrogate on the one-hot
// encoded configuration, expected-improvement acquisition maximized over a
// random candidate pool plus local perturbations of the incumbent.
#include <algorithm>

#include "model/dataset.hpp"
#include "model/gp.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

TuneResult BayesOptTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                               const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  // Bootstrap: warm-start observations cost nothing; fill the rest with a
  // Latin hypercube so the surrogate sees the whole space.
  model::Dataset data;
  const Observation* best_warm = nullptr;
  for (const auto& o : options.warm_start) {
    data.add(space->encode(o.config), tracker.penalize(o.runtime, o.failed));
    if (!o.failed && (best_warm == nullptr || o.runtime < best_warm->runtime)) best_warm = &o;
  }
  // Validate the transferred favourite on *this* workload right away: if it
  // transfers well it becomes the incumbent the acquisition exploits.
  if (best_warm != nullptr && !tracker.exhausted()) {
    const auto& o = tracker.evaluate(best_warm->config);
    data.add(space->encode(o.config), o.objective);
  }
  const std::size_t bootstrap =
      std::min(options.budget, options.warm_start.empty() ? params_.init_samples
                                                          : std::max<std::size_t>(3, params_.init_samples / 2));
  for (const auto& c : space->latin_hypercube(bootstrap, rng)) {
    if (tracker.exhausted()) break;
    const auto& o = tracker.evaluate(c);
    data.add(space->encode(o.config), o.objective);
  }

  while (!tracker.exhausted()) {
    model::GaussianProcess gp;
    bool surrogate_ok = true;
    try {
      gp.fit(data);
    } catch (const std::runtime_error&) {
      surrogate_ok = false;  // degenerate data (e.g. all targets equal)
    }
    config::Configuration next;
    if (surrogate_ok) {
      const double best = tracker.best_objective();
      double best_ei = -1.0;
      auto consider = [&](const config::Configuration& c) {
        const auto pred = gp.predict(space->encode(c));
        const double ei = model::expected_improvement(pred.mean, pred.variance, best);
        if (ei > best_ei) {
          best_ei = ei;
          next = c;
        }
      };
      for (std::size_t i = 0; i < params_.candidates; ++i) consider(space->sample(rng));
      // Exploit around the incumbent.
      const TuneResult so_far = tracker.result();
      if (so_far.found_feasible) {
        for (std::size_t i = 0; i < params_.local_candidates; ++i) {
          consider(space->neighbor(so_far.best, 0.1, 2, rng));
        }
      }
    }
    if (next.empty()) next = space->sample(rng);
    const auto& o = tracker.evaluate(next);
    data.add(space->encode(o.config), o.objective);
  }
  return tracker.result();
}

}  // namespace stune::tuning
