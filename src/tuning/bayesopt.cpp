// CherryPick-style Bayesian optimization: GP surrogate on the one-hot
// encoded configuration, expected-improvement acquisition maximized over a
// random candidate pool plus local perturbations of the incumbent.
//
// Staged shape: warm-start probe, then the LHS bootstrap as one parallel
// stage, then sequential model-guided probes (each fit needs the previous
// outcome, so the BO loop proper has batch size 1).
//
// Surrogate hot path: the GP is persistent — record() feeds it each
// committed observation through observe(), which extends the Cholesky
// factor in O(n²) instead of refactorizing per round — and the acquisition
// pool is encoded into one flat matrix and scored through predict_batch
// (one kernel-block build + one multi-RHS solve), optionally sharded over a
// thread pool. Observations are committed in suggestion order by the
// StagedTuner protocol, so the surrogate state — and every suggestion — is
// a pure function of the observation sequence, invariant to both trial
// concurrency and predict_jobs.
#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "model/gp.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/encode.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

void BayesOptTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  gp_ = model::GaussianProcess(params_.gp);
  if (params_.predict_jobs > 1 && pool_ == nullptr) {
    pool_ = std::make_shared<simcore::ThreadPool>(params_.predict_jobs);
  }
  warm_.reset();
  did_warm_ = false;
  did_bootstrap_ = false;

  // Warm-start observations cost nothing; feed them straight to the
  // surrogate and remember the favourite for a real probe.
  const Observation* best_warm = nullptr;
  for (const auto& o : opts().warm_start) {
    gp_.observe(space().encode(o.config), penalize_warm(o.runtime, o.failed));
    if (!o.failed && (best_warm == nullptr || o.runtime < best_warm->runtime)) best_warm = &o;
  }
  if (best_warm != nullptr) warm_ = best_warm->config;
}

void BayesOptTuner::record(const Observation& observation) {
  gp_.observe(space().encode(observation.config), observation.objective);
}

void BayesOptTuner::plan() {
  // Validate the transferred favourite on *this* workload right away: if it
  // transfers well it becomes the incumbent the acquisition exploits.
  if (!did_warm_) {
    did_warm_ = true;
    if (warm_.has_value()) {
      propose(*warm_);
      return;
    }
  }
  // One Latin-hypercube stage so the surrogate sees the whole space; the
  // samples are mutually independent and evaluate in parallel.
  if (!did_bootstrap_) {
    did_bootstrap_ = true;
    const std::size_t bootstrap = std::min(
        opts().budget, opts().warm_start.empty()
                           ? params_.init_samples
                           : std::max<std::size_t>(3, params_.init_samples / 2));
    bool proposed = false;
    for (auto& c : space().latin_hypercube(bootstrap, rng_)) {
      propose(std::move(c));
      proposed = true;
    }
    if (proposed) return;
  }

  // Model-guided probe: maximize EI over the batch-scored pool, suggest one
  // configuration. gp_.fitted() is false while the data is degenerate (e.g.
  // all targets equal) — fall back to random until it recovers.
  config::Configuration next;
  if (gp_.fitted()) {
    std::vector<config::Configuration> candidates;
    candidates.reserve(params_.candidates + params_.local_candidates);
    for (std::size_t i = 0; i < params_.candidates; ++i) candidates.push_back(space().sample(rng_));
    // Exploit around the incumbent.
    if (have_success()) {
      for (std::size_t i = 0; i < params_.local_candidates; ++i) {
        candidates.push_back(space().neighbor(best_success().config, 0.1, 2, rng_));
      }
    }
    const linalg::Matrix encoded = encode_pool(space(), candidates);
    const auto preds = gp_.predict_batch(encoded, pool_.get());
    const double best = best_objective();
    double best_ei = -1.0;
    // Strict > keeps the first-seen argmax, matching the serial scan for
    // any predict_jobs.
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double ei = model::expected_improvement(preds[i].mean, preds[i].variance, best);
      if (ei > best_ei) {
        best_ei = ei;
        next = candidates[i];
      }
    }
  }
  if (next.empty()) next = space().sample(rng_);
  propose(std::move(next));
}

}  // namespace stune::tuning
