// Evolutionary tuners: a plain genetic algorithm on live executions, and
// the DAC-style variant that evolves against a random-forest surrogate and
// spends real executions only on validating the model's favourites.
//
// Both are naturally staged: a GA generation's children are bred from the
// *previous* generation's fitness, so a whole generation evaluates in
// parallel; DAC's bootstrap and per-round validation sets likewise.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "model/tree.hpp"
#include "simcore/check.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

/// Uniform crossover on stored values.
config::Configuration crossover(const config::ConfigSpace& space, const config::Configuration& a,
                                const config::Configuration& b, simcore::Rng& rng) {
  std::vector<double> values(space.size());
  for (std::size_t d = 0; d < space.size(); ++d) {
    values[d] = rng.bernoulli(0.5) ? a[d] : b[d];
  }
  return config::Configuration(a.space_ptr(), std::move(values));
}

std::size_t tournament_pick(const std::vector<double>& fitness, std::size_t k, simcore::Rng& rng) {
  std::size_t best = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(fitness.size()) - 1));
  for (std::size_t i = 1; i < k; ++i) {
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fitness.size()) - 1));
    if (fitness[c] < fitness[best]) best = c;
  }
  return best;
}

}  // namespace

// -- GeneticTuner -------------------------------------------------------------

void GeneticTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  population_.clear();
  fitness_.clear();
  pending_.clear();
  elite_fitness_.clear();
  stage_obj_.clear();
  initialized_ = false;
}

void GeneticTuner::record(const Observation& observation) {
  stage_obj_.push_back(observation.objective);
}

void GeneticTuner::plan() {
  const std::size_t pop_n = std::max<std::size_t>(4, std::min(params_.population, opts().budget));

  if (!initialized_) {
    initialized_ = true;
    // Seed the population: transferred configs first, then random.
    for (const auto& o : opts().warm_start) {
      if (population_.size() >= pop_n / 2) break;
      if (!o.failed) population_.push_back(o.config);
    }
    while (population_.size() < pop_n) population_.push_back(space().sample(rng_));
    stage_obj_.clear();
    for (const auto& c : population_) propose(c);
    return;
  }

  // Seal the previous stage: the current generation's fitness is the
  // carried elite scores plus this stage's observations, in order.
  fitness_ = elite_fitness_;
  fitness_.insert(fitness_.end(), stage_obj_.begin(), stage_obj_.end());
  if (!pending_.empty()) population_ = std::move(pending_);
  STUNE_DCHECK(fitness_.size() == population_.size());
  stage_obj_.clear();

  // Order by fitness to find the elites; breed the rest from the sealed
  // generation (selection reads only its fitness, so children are
  // independent of each other and evaluate in parallel).
  std::vector<std::size_t> order(population_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return fitness_[a] < fitness_[b]; });

  pending_.clear();
  elite_fitness_.clear();
  for (std::size_t e = 0; e < std::min(params_.elites, order.size()); ++e) {
    pending_.push_back(population_[order[e]]);
    elite_fitness_.push_back(fitness_[order[e]]);
  }
  while (pending_.size() < pop_n) {
    const auto& a = population_[tournament_pick(fitness_, params_.tournament, rng_)];
    const auto& b = population_[tournament_pick(fitness_, params_.tournament, rng_)];
    config::Configuration child =
        rng_.bernoulli(params_.crossover_rate) ? crossover(space(), a, b, rng_) : a;
    if (rng_.bernoulli(params_.mutation_rate)) {
      child = space().neighbor(child, 0.2, 2, rng_);
    }
    propose(child);
    pending_.push_back(std::move(child));
  }
}

// -- DacTuner -----------------------------------------------------------------

void DacTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  data_ = model::Dataset();
  warm_.reset();
  did_warm_ = false;
  did_bootstrap_ = false;

  const Observation* best_warm = nullptr;
  for (const auto& o : opts().warm_start) {
    data_.add(space().encode(o.config), penalize_warm(o.runtime, o.failed));
    if (!o.failed && (best_warm == nullptr || o.runtime < best_warm->runtime)) best_warm = &o;
  }
  if (best_warm != nullptr) warm_ = best_warm->config;
}

void DacTuner::record(const Observation& observation) {
  data_.add(space().encode(observation.config), observation.objective);
}

void DacTuner::plan() {
  // A transferred configuration is worth one validation up front.
  if (!did_warm_) {
    did_warm_ = true;
    if (warm_.has_value()) {
      propose(*warm_);
      return;
    }
  }

  // Phase 1: random training set for the surrogate (one parallel stage).
  if (!did_bootstrap_) {
    did_bootstrap_ = true;
    const auto bootstrap = std::max<std::size_t>(
        5,
        static_cast<std::size_t>(params_.bootstrap_fraction * static_cast<double>(opts().budget)));
    bool proposed = false;
    for (auto& c : space().latin_hypercube(std::min(bootstrap, opts().budget), rng_)) {
      propose(std::move(c));
      proposed = true;
    }
    if (proposed) return;
  }

  // Phase 2: fit forest; GA on the model; validate the winners.
  model::RandomForest forest(model::ForestOptions{
      .trees = 30,
      .tree = model::TreeOptions{.max_depth = 12, .min_samples_leaf = 2, .min_samples_split = 4,
                                 .feature_subsample = 0.5},
      .bootstrap_fraction = 1.0});
  forest.fit(data_, rng_.fork(used()));
  auto model_score = [&](const config::Configuration& c) {
    return forest.predict(space().encode(c));
  };

  // Model-driven GA (free: no real executions).
  std::vector<config::Configuration> pop;
  std::vector<double> fit;
  pop.reserve(params_.model_population);
  // Seed with the best observed configs plus randoms.
  std::vector<const Observation*> seen;
  for (const auto& o : history()) seen.push_back(&o);
  std::sort(seen.begin(), seen.end(),
            [](const Observation* a, const Observation* b) { return a->objective < b->objective; });
  for (std::size_t i = 0; i < std::min<std::size_t>(seen.size(), params_.model_population / 4);
       ++i) {
    pop.push_back(seen[i]->config);
  }
  while (pop.size() < params_.model_population) pop.push_back(space().sample(rng_));
  for (const auto& c : pop) fit.push_back(model_score(c));

  for (std::size_t g = 0; g < params_.model_generations; ++g) {
    std::vector<config::Configuration> next;
    std::vector<double> next_fit;
    // Keep the two best.
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fit[a] < fit[b]; });
    for (std::size_t e = 0; e < 2; ++e) {
      next.push_back(pop[order[e]]);
      next_fit.push_back(fit[order[e]]);
    }
    while (next.size() < pop.size()) {
      const auto& a = pop[tournament_pick(fit, 3, rng_)];
      const auto& b = pop[tournament_pick(fit, 3, rng_)];
      config::Configuration child = crossover(space(), a, b, rng_);
      if (rng_.bernoulli(0.2)) child = space().neighbor(child, 0.15, 2, rng_);
      next_fit.push_back(model_score(child));
      next.push_back(std::move(child));
    }
    pop = std::move(next);
    fit = std::move(next_fit);
  }

  // Validate the model's favourites on the real system (one parallel
  // stage); the observations grow the data via record().
  std::vector<std::size_t> order(pop.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return fit[a] < fit[b]; });
  for (std::size_t i = 0; i < std::min(params_.validations_per_round, pop.size()); ++i) {
    propose(pop[order[i]]);
  }
}

}  // namespace stune::tuning
