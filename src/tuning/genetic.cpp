// Evolutionary tuners: a plain genetic algorithm on live executions, and
// the DAC-style variant that evolves against a random-forest surrogate and
// spends real executions only on validating the model's favourites.
#include <algorithm>
#include <numeric>

#include "model/tree.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

/// Uniform crossover on stored values.
config::Configuration crossover(const config::ConfigSpace& space, const config::Configuration& a,
                                const config::Configuration& b, simcore::Rng& rng) {
  std::vector<double> values(space.size());
  for (std::size_t d = 0; d < space.size(); ++d) {
    values[d] = rng.bernoulli(0.5) ? a[d] : b[d];
  }
  return config::Configuration(a.space_ptr(), std::move(values));
}

std::size_t tournament_pick(const std::vector<double>& fitness, std::size_t k, simcore::Rng& rng) {
  std::size_t best = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(fitness.size()) - 1));
  for (std::size_t i = 1; i < k; ++i) {
    const auto c = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(fitness.size()) - 1));
    if (fitness[c] < fitness[best]) best = c;
  }
  return best;
}

}  // namespace

TuneResult GeneticTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                              const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  const std::size_t pop_n = std::max<std::size_t>(4, std::min(params_.population, options.budget));
  std::vector<config::Configuration> population;
  std::vector<double> fitness;

  // Seed the population: transferred configs first, then random.
  for (const auto& o : options.warm_start) {
    if (population.size() >= pop_n / 2) break;
    if (!o.failed) population.push_back(o.config);
  }
  while (population.size() < pop_n) population.push_back(space->sample(rng));
  for (const auto& c : population) {
    if (tracker.exhausted()) return tracker.result();
    fitness.push_back(tracker.evaluate(c).objective);
  }

  while (!tracker.exhausted()) {
    // Order by fitness to find the elites.
    std::vector<std::size_t> order(population.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fitness[a] < fitness[b]; });

    std::vector<config::Configuration> next;
    std::vector<double> next_fitness;
    for (std::size_t e = 0; e < std::min(params_.elites, order.size()); ++e) {
      next.push_back(population[order[e]]);
      next_fitness.push_back(fitness[order[e]]);
    }
    while (next.size() < pop_n && !tracker.exhausted()) {
      const auto& a = population[tournament_pick(fitness, params_.tournament, rng)];
      const auto& b = population[tournament_pick(fitness, params_.tournament, rng)];
      config::Configuration child = rng.bernoulli(params_.crossover_rate)
                                        ? crossover(*space, a, b, rng)
                                        : a;
      if (rng.bernoulli(params_.mutation_rate)) {
        child = space->neighbor(child, 0.2, 2, rng);
      }
      next_fitness.push_back(tracker.evaluate(child).objective);
      next.push_back(std::move(child));
    }
    population = std::move(next);
    fitness = std::move(next_fitness);
  }
  return tracker.result();
}

TuneResult DacTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                          const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  model::Dataset data;
  const Observation* best_warm = nullptr;
  for (const auto& o : options.warm_start) {
    data.add(space->encode(o.config), tracker.penalize(o.runtime, o.failed));
    if (!o.failed && (best_warm == nullptr || o.runtime < best_warm->runtime)) best_warm = &o;
  }
  // A transferred configuration is worth one validation up front.
  if (best_warm != nullptr && !tracker.exhausted()) {
    const auto& o = tracker.evaluate(best_warm->config);
    data.add(space->encode(o.config), o.objective);
  }

  // Phase 1: random training set for the surrogate.
  const auto bootstrap = std::max<std::size_t>(
      5, static_cast<std::size_t>(params_.bootstrap_fraction * static_cast<double>(options.budget)));
  for (const auto& c : space->latin_hypercube(std::min(bootstrap, options.budget), rng)) {
    if (tracker.exhausted()) break;
    const auto& o = tracker.evaluate(c);
    data.add(space->encode(o.config), o.objective);
  }

  // Phase 2: repeat { fit forest; GA on the model; validate the winners }.
  while (!tracker.exhausted()) {
    model::RandomForest forest(model::ForestOptions{
        .trees = 30,
        .tree = model::TreeOptions{.max_depth = 12, .min_samples_leaf = 2, .min_samples_split = 4,
                                   .feature_subsample = 0.5},
        .bootstrap_fraction = 1.0});
    forest.fit(data, rng.fork(tracker.used()));
    auto model_score = [&](const config::Configuration& c) {
      return forest.predict(space->encode(c));
    };

    // Model-driven GA (free: no real executions).
    std::vector<config::Configuration> pop;
    std::vector<double> fit;
    pop.reserve(params_.model_population);
    // Seed with the best observed configs plus randoms.
    std::vector<const Observation*> seen;
    for (const auto& o : tracker.history()) seen.push_back(&o);
    std::sort(seen.begin(), seen.end(),
              [](const Observation* a, const Observation* b) { return a->objective < b->objective; });
    for (std::size_t i = 0; i < std::min<std::size_t>(seen.size(), params_.model_population / 4); ++i) {
      pop.push_back(seen[i]->config);
    }
    while (pop.size() < params_.model_population) pop.push_back(space->sample(rng));
    for (const auto& c : pop) fit.push_back(model_score(c));

    for (std::size_t g = 0; g < params_.model_generations; ++g) {
      std::vector<config::Configuration> next;
      std::vector<double> next_fit;
      // Keep the two best.
      std::vector<std::size_t> order(pop.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) { return fit[a] < fit[b]; });
      for (std::size_t e = 0; e < 2; ++e) {
        next.push_back(pop[order[e]]);
        next_fit.push_back(fit[order[e]]);
      }
      while (next.size() < pop.size()) {
        const auto& a = pop[tournament_pick(fit, 3, rng)];
        const auto& b = pop[tournament_pick(fit, 3, rng)];
        config::Configuration child = crossover(*space, a, b, rng);
        if (rng.bernoulli(0.2)) child = space->neighbor(child, 0.15, 2, rng);
        next_fit.push_back(model_score(child));
        next.push_back(std::move(child));
      }
      pop = std::move(next);
      fit = std::move(next_fit);
    }

    // Validate the model's favourites on the real system and grow the data.
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fit[a] < fit[b]; });
    for (std::size_t i = 0; i < params_.validations_per_round && !tracker.exhausted(); ++i) {
      const auto& o = tracker.evaluate(pop[order[i]]);
      data.add(space->encode(o.config), o.objective);
    }
  }
  return tracker.result();
}

}  // namespace stune::tuning
