// BestConfig (Zhu et al., SoCC'17): divide-and-diverge sampling over the
// current bounds, then recursive bound-and-search — shrink the bounds
// around the incumbent and resample — until the budget is gone.
#include <algorithm>
#include <numeric>

#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

/// Per-dimension unit-interval bounds the search is currently confined to.
struct Bounds {
  std::vector<double> lo;
  std::vector<double> hi;

  explicit Bounds(std::size_t dims) : lo(dims, 0.0), hi(dims, 1.0) {}

  void shrink_around(const std::vector<double>& center, double factor) {
    for (std::size_t d = 0; d < lo.size(); ++d) {
      const double half = 0.5 * (hi[d] - lo[d]) * factor;
      lo[d] = std::clamp(center[d] - half, 0.0, 1.0);
      hi[d] = std::clamp(center[d] + half, lo[d] + 1e-9, 1.0);
    }
  }
};

/// Divide-and-diverge inside bounds: n strata per dimension, one sample per
/// stratum, stratum assignment permuted per dimension.
std::vector<config::Configuration> dds_in_bounds(const config::ConfigSpace& space,
                                                 std::shared_ptr<const config::ConfigSpace> sp,
                                                 const Bounds& b, std::size_t n,
                                                 simcore::Rng& rng) {
  std::vector<std::vector<std::size_t>> strata(space.size());
  for (auto& perm : strata) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }
  std::vector<config::Configuration> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> unit(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      const double frac =
          (static_cast<double>(strata[d][s]) + rng.uniform()) / static_cast<double>(n);
      unit[d] = b.lo[d] + frac * (b.hi[d] - b.lo[d]);
    }
    out.push_back(sp->from_unit(unit));
  }
  return out;
}

}  // namespace

TuneResult BestConfigTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                                 const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  Bounds bounds(space->size());
  const std::size_t rounds = std::max<std::size_t>(1, params_.rounds);
  const std::size_t per_round = std::max<std::size_t>(1, options.budget / rounds);

  double incumbent_obj = std::numeric_limits<double>::infinity();
  std::vector<double> incumbent_unit;

  // Warm start: evaluate the transferred configuration and search around it.
  const Observation* warm = nullptr;
  for (const auto& o : options.warm_start) {
    if (!o.failed && (warm == nullptr || o.runtime < warm->runtime)) warm = &o;
  }
  if (warm != nullptr && !tracker.exhausted()) {
    const auto& o = tracker.evaluate(warm->config);
    incumbent_obj = o.objective;
    incumbent_unit = space->to_unit(o.config);
    bounds.shrink_around(incumbent_unit, 0.8);
  }

  for (std::size_t round = 0; round < rounds && !tracker.exhausted(); ++round) {
    const std::size_t n = std::min(per_round, tracker.remaining());
    bool improved = false;
    for (const auto& c : dds_in_bounds(*space, space, bounds, n, rng)) {
      if (tracker.exhausted()) break;
      const auto& o = tracker.evaluate(c);
      if (o.objective < incumbent_obj) {
        incumbent_obj = o.objective;
        incumbent_unit = space->to_unit(o.config);
        improved = true;
      }
    }
    if (!incumbent_unit.empty()) {
      if (improved) {
        // Recursive bound-and-search: zoom into the promising region.
        bounds.shrink_around(incumbent_unit, params_.shrink);
      } else {
        // Diverge: restart from the full space to escape a local region.
        bounds = Bounds(space->size());
      }
    }
  }
  // Integer division can strand a remainder; spend it in the final bounds.
  while (!tracker.exhausted()) {
    for (const auto& c :
         dds_in_bounds(*space, space, bounds, std::min<std::size_t>(tracker.remaining(), 8), rng)) {
      if (tracker.exhausted()) break;
      tracker.evaluate(c);
    }
  }
  return tracker.result();
}

}  // namespace stune::tuning
