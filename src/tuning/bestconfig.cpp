// BestConfig (Zhu et al., SoCC'17): divide-and-diverge sampling over the
// current bounds, then recursive bound-and-search — shrink the bounds
// around the incumbent and resample — until the budget is gone.
//
// Staged shape: each DDS round is generated entirely from the bounds fixed
// before the round, so the whole round evaluates in parallel; bounds update
// at round boundaries.
#include <algorithm>
#include <cstddef>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

/// Divide-and-diverge inside bounds: n strata per dimension, one sample per
/// stratum, stratum assignment permuted per dimension.
std::vector<config::Configuration> dds_in_bounds(const config::ConfigSpace& space,
                                                 std::shared_ptr<const config::ConfigSpace> sp,
                                                 const std::vector<double>& lo,
                                                 const std::vector<double>& hi, std::size_t n,
                                                 simcore::Rng& rng) {
  std::vector<std::vector<std::size_t>> strata(space.size());
  for (auto& perm : strata) {
    perm.resize(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    rng.shuffle(perm);
  }
  std::vector<config::Configuration> out;
  out.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    std::vector<double> unit(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      const double frac =
          (static_cast<double>(strata[d][s]) + rng.uniform()) / static_cast<double>(n);
      unit[d] = lo[d] + frac * (hi[d] - lo[d]);
    }
    out.push_back(sp->from_unit(unit));
  }
  return out;
}

}  // namespace

void BestConfigTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  lo_.assign(space().size(), 0.0);
  hi_.assign(space().size(), 1.0);
  incumbent_obj_ = std::numeric_limits<double>::infinity();
  incumbent_unit_.clear();
  warm_.reset();
  round_count_ = 0;
  stage_start_ = 0;
  warm_stage_ = false;
  round_stage_ = false;
  did_warm_ = false;

  if (const Observation* warm = best_warm_start(opts())) warm_ = warm->config;
}

void BestConfigTuner::shrink_bounds(double factor) {
  for (std::size_t d = 0; d < lo_.size(); ++d) {
    const double half = 0.5 * (hi_[d] - lo_[d]) * factor;
    lo_[d] = std::clamp(incumbent_unit_[d] - half, 0.0, 1.0);
    hi_[d] = std::clamp(incumbent_unit_[d] + half, lo_[d] + 1e-9, 1.0);
  }
}

void BestConfigTuner::finalize_stage() {
  if (used() <= stage_start_) return;
  if (warm_stage_) {
    // Warm start: adopt the probe as incumbent and search around it.
    warm_stage_ = false;
    const Observation& o = history()[stage_start_];
    incumbent_obj_ = o.objective;
    incumbent_unit_ = space().to_unit(o.config);
    shrink_bounds(0.8);
    return;
  }
  if (!round_stage_) return;  // tail stages spend the remainder, no zooming
  round_stage_ = false;
  bool improved = false;
  for (std::size_t i = stage_start_; i < used(); ++i) {
    const Observation& o = history()[i];
    if (o.objective < incumbent_obj_) {
      incumbent_obj_ = o.objective;
      incumbent_unit_ = space().to_unit(o.config);
      improved = true;
    }
  }
  if (incumbent_unit_.empty()) return;
  if (improved) {
    // Recursive bound-and-search: zoom into the promising region.
    shrink_bounds(params_.shrink);
  } else {
    // Diverge: restart from the full space to escape a local region.
    lo_.assign(space().size(), 0.0);
    hi_.assign(space().size(), 1.0);
  }
}

void BestConfigTuner::plan() {
  finalize_stage();

  if (!did_warm_) {
    did_warm_ = true;
    if (warm_.has_value()) {
      warm_stage_ = true;
      stage_start_ = used();
      propose(*warm_);
      return;
    }
  }

  const std::size_t rounds = std::max<std::size_t>(1, params_.rounds);
  const std::size_t per_round = std::max<std::size_t>(1, opts().budget / rounds);
  std::size_t n;
  if (round_count_ < rounds) {
    ++round_count_;
    round_stage_ = true;
    n = std::min(per_round, std::max<std::size_t>(1, remaining()));
  } else {
    // Integer division can strand a remainder; spend it in the final bounds.
    n = std::min<std::size_t>(std::max<std::size_t>(1, remaining()), 8);
  }
  stage_start_ = used();
  for (auto& c : dds_in_bounds(space(), space_ptr(), lo_, hi_, n, rng_)) {
    propose(std::move(c));
  }
}

}  // namespace stune::tuning
