#include "tuning/trial_executor.hpp"

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/mutex.hpp"

namespace stune::tuning {

SessionLedger::SessionLedger(TuneOptions options) : options_(std::move(options)) {
  history_.reserve(options_.budget);
}

double SessionLedger::penalize(double runtime, bool failed) const {
  if (!failed) return runtime;
  const double base = worst_success_ > 0.0 ? worst_success_ : runtime;
  return std::max(base, runtime) * options_.failure_penalty_factor;
}

const Observation& SessionLedger::commit(const config::Configuration& c,
                                         const EvalOutcome& outcome) {
  STUNE_CHECK(!exhausted()) << "SessionLedger: budget exhausted";
  ++used_;
  Observation o;
  o.config = c;
  o.runtime = outcome.runtime;
  o.failed = outcome.failed;
  if (!outcome.failed && outcome.runtime > worst_success_) worst_success_ = outcome.runtime;
  o.objective = penalize(outcome.runtime, outcome.failed);
  history_.push_back(std::move(o));
  const auto& rec = history_.back();
  if (!rec.failed &&
      (best_index_ == static_cast<std::size_t>(-1) || rec.runtime < history_[best_index_].runtime)) {
    best_index_ = history_.size() - 1;
  }
  return rec;
}

TuneResult SessionLedger::result() const {
  TuneResult r;
  r.history = history_;
  if (best_index_ != static_cast<std::size_t>(-1)) {
    r.best = history_[best_index_].config;
    r.best_runtime = history_[best_index_].runtime;
    r.found_feasible = true;
  } else if (!history_.empty()) {
    // Nothing succeeded; surface the least-penalized configuration.
    std::size_t least = 0;
    for (std::size_t i = 1; i < history_.size(); ++i) {
      if (history_[i].objective < history_[least].objective) least = i;
    }
    r.best = history_[least].config;
    r.best_runtime = history_[least].runtime;
  }
  return r;
}

TrialExecutor::TrialExecutor(ExecutorOptions options)
    : jobs_(options.jobs == 0 ? simcore::ThreadPool::hardware_threads() : options.jobs) {}

TuneResult TrialExecutor::run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                              const Objective& objective, const TuneOptions& options,
                              const CommitHook& on_commit) {
  const simcore::MutexLock session_lock(mu_);
  SessionLedger ledger(options);
  tuner.begin(space, options);

  std::vector<Observation> batch_observations;
  while (!ledger.exhausted()) {
    const std::vector<config::Configuration> batch = tuner.suggest(ledger.remaining());
    STUNE_CHECK(!batch.empty()) << tuner.name() << ": suggest() returned no configurations";
    STUNE_CHECK_LE(batch.size(), ledger.remaining());

    std::vector<EvalOutcome> outcomes(batch.size());
    if (jobs_ <= 1 || batch.size() == 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) outcomes[i] = objective(batch[i]);
    } else {
      if (pool_ == nullptr) pool_ = std::make_unique<simcore::ThreadPool>(jobs_);
      std::vector<std::future<void>> futures;
      futures.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        futures.push_back(
            pool_->submit([&objective, &batch, &outcomes, i] { outcomes[i] = objective(batch[i]); }));
      }
      // Join every future before rethrowing so no task still references the
      // batch/outcome vectors when an exception unwinds this frame.
      std::exception_ptr first_error;
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (first_error == nullptr) first_error = std::current_exception();
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
    }

    // Serial commit, in suggestion order: penalties, best-so-far and any
    // caller side effects observe one deterministic interleaving.
    batch_observations.clear();
    batch_observations.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Observation& o = ledger.commit(batch[i], outcomes[i]);
      if (on_commit) on_commit(o);
      batch_observations.push_back(o);
    }
    tuner.observe(batch_observations);
  }
  return ledger.result();
}

}  // namespace stune::tuning
