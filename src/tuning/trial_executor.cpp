#include "tuning/trial_executor.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "simcore/check.hpp"
#include "simcore/mutex.hpp"
#include "simcore/rng.hpp"

namespace stune::tuning {

namespace {

// Domain tag for backoff-jitter streams (distinct from every engine seed).
constexpr std::uint64_t kBackoffTag = 0x6261636b6f6666ULL;  // "backoff"

}  // namespace

TrialResult evaluate_with_retry(const TrialObjective& objective, const config::Configuration& c,
                                const TuneOptions& options) {
  const RetryPolicy& rp = options.retry;
  TrialResult trial;
  for (int attempt = 0;; ++attempt) {
    EvalOutcome out = objective(c, attempt);
    // Normalize the classification: legacy objectives report failed without
    // blame, and that blame belongs to the configuration; successes carry
    // no fault by definition.
    if (out.failed && out.fault == FaultClass::kNone) out.fault = FaultClass::kConfig;
    if (!out.failed) out.fault = FaultClass::kNone;

    // Per-trial deadline: the harness kills any attempt running past it and
    // only charges the deadline's worth of time. A run that would have
    // *succeeded* past the deadline is useless-by-configuration (config
    // fault); an infra hang keeps its classification and stays retryable.
    if (out.runtime > rp.trial_deadline_s) {
      trial.deadline_hit = true;
      out.runtime = rp.trial_deadline_s;
      if (out.fault != FaultClass::kInfra) {
        out.failed = true;
        out.fault = FaultClass::kConfig;
      }
    }

    trial.outcome = out;
    trial.attempts = attempt + 1;
    if (!out.failed || out.fault != FaultClass::kInfra) return trial;
    if (attempt + 1 >= std::max(1, rp.max_attempts)) return trial;

    // Capped exponential backoff with deterministic jitter, in simulated
    // time. The jitter stream depends only on (seed, config, attempt), so
    // the same trial backs off identically at any jobs count.
    double backoff = std::min(
        rp.max_backoff_s, rp.base_backoff_s * std::pow(rp.backoff_multiplier, attempt));
    simcore::Rng jitter(simcore::hash_combine(
        simcore::hash_combine(options.seed, c.fingerprint()),
        simcore::hash_combine(kBackoffTag, static_cast<std::uint64_t>(attempt))));
    backoff *= 1.0 + rp.jitter_fraction * (2.0 * jitter.uniform() - 1.0);
    trial.backoff_seconds += std::max(0.0, backoff);
  }
}

SessionLedger::SessionLedger(TuneOptions options) : options_(std::move(options)) {
  history_.reserve(options_.budget);
}

double SessionLedger::penalize(double runtime, bool failed) const {
  if (!failed) return runtime;
  const double base =
      worst_success_ > 0.0 ? worst_success_ : options_.failure_penalty_floor;
  return std::max(base, runtime) * options_.failure_penalty_factor;
}

double SessionLedger::neutral_objective() const {
  return success_count_ > 0 ? success_sum_ / static_cast<double>(success_count_)
                            : options_.failure_penalty_floor;
}

const Observation& SessionLedger::commit(const config::Configuration& c,
                                         const TrialResult& trial) {
  STUNE_CHECK(!exhausted()) << "SessionLedger: budget exhausted";
  ++used_;
  const EvalOutcome& outcome = trial.outcome;
  Observation o;
  o.config = c;
  o.runtime = outcome.runtime;
  o.failed = outcome.failed;
  o.fault = outcome.failed ? outcome.fault : FaultClass::kNone;
  o.attempts = trial.attempts;
  o.backoff_seconds = trial.backoff_seconds;
  if (!outcome.failed) {
    if (outcome.runtime > worst_success_) worst_success_ = outcome.runtime;
    success_sum_ += outcome.runtime;
    ++success_count_;
  }
  // Scoring: successes score their runtime; config faults are penalized;
  // infra faults get a neutral score — the weather is not the
  // configuration's fault, and a penalty would teach the tuner to avoid
  // whatever it happened to be trying when the cloud hiccuped.
  if (o.fault == FaultClass::kInfra) {
    o.objective = neutral_objective();
  } else {
    o.objective = penalize(outcome.runtime, outcome.failed);
  }
  resilience_.retries += static_cast<std::size_t>(std::max(0, trial.attempts - 1));
  resilience_.backoff_seconds += trial.backoff_seconds;
  if (trial.deadline_hit) ++resilience_.deadline_hits;
  if (o.failed) {
    if (o.fault == FaultClass::kInfra) {
      ++resilience_.infra_faults;
    } else {
      ++resilience_.config_faults;
    }
  }
  history_.push_back(std::move(o));
  const auto& rec = history_.back();
  if (!rec.failed &&
      (best_index_ == static_cast<std::size_t>(-1) || rec.runtime < history_[best_index_].runtime)) {
    best_index_ = history_.size() - 1;
  }
  return rec;
}

const Observation& SessionLedger::commit(const config::Configuration& c,
                                         const EvalOutcome& outcome) {
  TrialResult trial;
  trial.outcome = outcome;
  if (trial.outcome.failed && trial.outcome.fault == FaultClass::kNone) {
    trial.outcome.fault = FaultClass::kConfig;
  }
  return commit(c, trial);
}

TuneResult SessionLedger::result() const {
  TuneResult r;
  r.history = history_;
  r.resilience = resilience_;
  if (best_index_ != static_cast<std::size_t>(-1)) {
    r.best = history_[best_index_].config;
    r.best_runtime = history_[best_index_].runtime;
    r.found_feasible = true;
  } else if (!history_.empty()) {
    // Nothing succeeded; surface the least-penalized configuration.
    std::size_t least = 0;
    for (std::size_t i = 1; i < history_.size(); ++i) {
      if (history_[i].objective < history_[least].objective) least = i;
    }
    r.best = history_[least].config;
    r.best_runtime = history_[least].runtime;
  }
  return r;
}

TrialExecutor::TrialExecutor(ExecutorOptions options)
    : jobs_(options.jobs == 0 ? simcore::ThreadPool::hardware_threads() : options.jobs) {}

TuneResult TrialExecutor::run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                              const TrialObjective& objective, const TuneOptions& options,
                              const CommitHook& on_commit) {
  const simcore::MutexLock session_lock(mu_);
  SessionLedger ledger(options);
  tuner.begin(space, options);

  std::vector<Observation> batch_observations;
  while (!ledger.exhausted()) {
    const std::vector<config::Configuration> batch = tuner.suggest(ledger.remaining());
    STUNE_CHECK(!batch.empty()) << tuner.name() << ": suggest() returned no configurations";
    STUNE_CHECK_LE(batch.size(), ledger.remaining());

    std::vector<TrialResult> trials(batch.size());
    if (jobs_ <= 1 || batch.size() == 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        trials[i] = evaluate_with_retry(objective, batch[i], options);
      }
    } else {
      if (pool_ == nullptr) pool_ = std::make_unique<simcore::ThreadPool>(jobs_);
      std::vector<std::future<void>> futures;
      futures.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        futures.push_back(pool_->submit([&objective, &batch, &trials, &options, i] {
          trials[i] = evaluate_with_retry(objective, batch[i], options);
        }));
      }
      // Join every future before rethrowing so no task still references the
      // batch/trial vectors when an exception unwinds this frame.
      std::exception_ptr first_error;
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (first_error == nullptr) first_error = std::current_exception();
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
    }

    // Serial commit, in suggestion order: penalties, best-so-far and any
    // caller side effects observe one deterministic interleaving.
    batch_observations.clear();
    batch_observations.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const Observation& o = ledger.commit(batch[i], trials[i]);
      if (on_commit) on_commit(o);
      batch_observations.push_back(o);
    }
    tuner.observe(batch_observations);
  }
  return ledger.result();
}

TuneResult TrialExecutor::run(Tuner& tuner, std::shared_ptr<const config::ConfigSpace> space,
                              const Objective& objective, const TuneOptions& options,
                              const CommitHook& on_commit) {
  const TrialObjective adapted = [&objective](const config::Configuration& c,
                                              int /*attempt*/) { return objective(c); };
  return run(tuner, std::move(space), adapted, options, on_commit);
}

}  // namespace stune::tuning
