// Random search (a staged, fully batchable stream) plus the serial
// coordinate-sweep and hill-climbing loops behind SequentialAdapter.
#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

#include "tuning/tuners.hpp"

namespace stune::tuning {

// -- random -------------------------------------------------------------------

void RandomSearchTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  first_plan_ = true;
}

void RandomSearchTuner::plan() {
  if (first_plan_) {
    first_plan_ = false;
    // A transferred configuration is worth trying first: it costs one sample
    // and often lands near-optimal for similar workloads.
    if (const Observation* warm = best_warm_start(opts())) propose(warm->config);
  }
  // One stage covering the whole remaining budget: pure random samples are
  // independent, so the entire stream can be evaluated concurrently.
  while (queued() < remaining()) propose(space().sample(rng_));
}

namespace {

constexpr std::size_t kSweepDefaultLevels = 4;

void sweep_serial(std::size_t levels_, std::shared_ptr<const config::ConfigSpace> space,
                  SerialSession& session, const TuneOptions& options) {
  simcore::Rng rng(options.seed);

  config::Configuration incumbent = space->default_config();
  if (const Observation* warm = best_warm_start(options)) incumbent = warm->config;
  if (session.exhausted()) return;
  double incumbent_obj = session.evaluate(incumbent).objective;

  // Repeated one-factor-at-a-time passes: for each parameter, probe a few
  // levels across its range holding everything else at the incumbent. When
  // a full pass stops improving, restart the sweep from a random point so
  // the whole budget is spent (like an expert trying a fresh baseline).
  while (!session.exhausted()) {
    bool improved_any = false;
    for (std::size_t d = 0; d < space->size() && !session.exhausted(); ++d) {
      const auto& def = space->param(d);
      const std::size_t levels =
          def.cardinality() > 0 ? std::min(levels_, def.cardinality()) : levels_;
      for (std::size_t l = 0; l < levels && !session.exhausted(); ++l) {
        const double u = levels == 1 ? 0.5
                                     : static_cast<double>(l) / static_cast<double>(levels - 1);
        config::Configuration trial = incumbent;
        trial.set(d, def.from_unit(u));
        if (trial.values()[d] == incumbent.values()[d]) continue;
        const auto& o = session.evaluate(trial);
        if (o.objective < incumbent_obj) {
          incumbent = o.config;
          incumbent_obj = o.objective;
          improved_any = true;
        }
      }
    }
    if (!improved_any && !session.exhausted()) {
      const auto& o = session.evaluate(space->sample(rng));
      incumbent = o.config;
      incumbent_obj = o.objective;
    }
  }
}

void hill_climb_serial(const HillClimbTuner::Params& params,
                       std::shared_ptr<const config::ConfigSpace> space, SerialSession& session,
                       const TuneOptions& options) {
  simcore::Rng rng(options.seed);

  config::Configuration current;
  if (const Observation* warm = best_warm_start(options)) {
    current = warm->config;
  } else {
    current = space->default_config();
  }
  if (session.exhausted()) return;
  double current_obj = session.evaluate(current).objective;
  double best_obj = current_obj;
  config::Configuration best = current;

  double step = params.initial_step;
  std::size_t stalls = 0;
  std::size_t hops = 0;
  while (!session.exhausted()) {
    // MROnline-style: perturb parameters, accept improvements, decay the
    // step while stuck. Near convergence (small step) mutate only one
    // parameter so good coordinates are not wrecked by a bad companion move.
    const std::size_t mutations =
        step > 0.1 ? static_cast<std::size_t>(rng.uniform_int(1, 2)) : 1;
    const config::Configuration neighbor = space->neighbor(current, step, mutations, rng);
    const auto& o = session.evaluate(neighbor);
    if (o.objective < current_obj) {
      current = o.config;
      current_obj = o.objective;
      stalls = 0;
      // 1/5-rule-style adaptation: success means the step is productive,
      // so grow it back; failures shrink it toward fine-grained search.
      step = std::min(2.0 * params.initial_step, step * 1.3);
      if (current_obj < best_obj) {
        best_obj = current_obj;
        best = current;
      }
    } else {
      ++stalls;
      step = std::max(params.min_step, step * params.step_decay);
    }
    if (stalls >= params.stall_limit) {
      // Basin hop: usually re-inflate the step around the global best;
      // periodically take a genuinely random restart for diversity.
      ++hops;
      if (hops % 3 == 0) {
        if (session.exhausted()) break;
        const auto& r = session.evaluate(space->sample(rng));
        current = r.config;
        current_obj = r.objective;
      } else {
        current = best;
        current_obj = best_obj;
      }
      step = params.initial_step;
      stalls = 0;
    }
  }
}

}  // namespace

CoordinateSweepTuner::CoordinateSweepTuner(std::size_t levels)
    : adapter_("sweep", [levels](std::shared_ptr<const config::ConfigSpace> space,
                                 SerialSession& session, const TuneOptions& options) {
        sweep_serial(levels == 0 ? kSweepDefaultLevels : levels, std::move(space), session,
                     options);
      }) {}

void CoordinateSweepTuner::begin(std::shared_ptr<const config::ConfigSpace> space,
                                 const TuneOptions& options) {
  adapter_.begin(std::move(space), options);
}
std::vector<config::Configuration> CoordinateSweepTuner::suggest(std::size_t max_batch) {
  return adapter_.suggest(max_batch);
}
void CoordinateSweepTuner::observe(const std::vector<Observation>& trials) {
  adapter_.observe(trials);
}

HillClimbTuner::HillClimbTuner(Params params)
    : adapter_("hillclimb", [params](std::shared_ptr<const config::ConfigSpace> space,
                                     SerialSession& session, const TuneOptions& options) {
        hill_climb_serial(params, std::move(space), session, options);
      }) {}

void HillClimbTuner::begin(std::shared_ptr<const config::ConfigSpace> space,
                           const TuneOptions& options) {
  adapter_.begin(std::move(space), options);
}
std::vector<config::Configuration> HillClimbTuner::suggest(std::size_t max_batch) {
  return adapter_.suggest(max_batch);
}
void HillClimbTuner::observe(const std::vector<Observation>& trials) { adapter_.observe(trials); }

}  // namespace stune::tuning
