// Random search, coordinate sweep and hill climbing.
#include <algorithm>

#include "tuning/tuners.hpp"

namespace stune::tuning {

namespace {

/// Best warm-start config (ignoring failures), or nullptr.
const Observation* best_warm_start(const TuneOptions& options) {
  const Observation* best = nullptr;
  for (const auto& o : options.warm_start) {
    if (o.failed) continue;
    if (best == nullptr || o.runtime < best->runtime) best = &o;
  }
  return best;
}

}  // namespace

TuneResult RandomSearchTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                                   const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);
  // A transferred configuration is worth trying first: it costs one sample
  // and often lands near-optimal for similar workloads.
  if (const Observation* warm = best_warm_start(options); warm != nullptr && !tracker.exhausted()) {
    tracker.evaluate(warm->config);
  }
  while (!tracker.exhausted()) tracker.evaluate(space->sample(rng));
  return tracker.result();
}

TuneResult CoordinateSweepTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                                      const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  config::Configuration incumbent = space->default_config();
  if (const Observation* warm = best_warm_start(options); warm != nullptr) {
    incumbent = warm->config;
  }
  if (tracker.exhausted()) return tracker.result();
  double incumbent_obj = tracker.evaluate(incumbent).objective;

  // Repeated one-factor-at-a-time passes: for each parameter, probe a few
  // levels across its range holding everything else at the incumbent. When
  // a full pass stops improving, restart the sweep from a random point so
  // the whole budget is spent (like an expert trying a fresh baseline).
  while (!tracker.exhausted()) {
    bool improved_any = false;
    for (std::size_t d = 0; d < space->size() && !tracker.exhausted(); ++d) {
      const auto& def = space->param(d);
      const std::size_t levels =
          def.cardinality() > 0 ? std::min(levels_, def.cardinality()) : levels_;
      for (std::size_t l = 0; l < levels && !tracker.exhausted(); ++l) {
        const double u = levels == 1 ? 0.5
                                     : static_cast<double>(l) / static_cast<double>(levels - 1);
        config::Configuration trial = incumbent;
        trial.set(d, def.from_unit(u));
        if (trial.values()[d] == incumbent.values()[d]) continue;
        const auto& o = tracker.evaluate(trial);
        if (o.objective < incumbent_obj) {
          incumbent = o.config;
          incumbent_obj = o.objective;
          improved_any = true;
        }
      }
    }
    if (!improved_any && !tracker.exhausted()) {
      const auto& o = tracker.evaluate(space->sample(rng));
      incumbent = o.config;
      incumbent_obj = o.objective;
    }
  }
  return tracker.result();
}

TuneResult HillClimbTuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                                const Objective& objective, const TuneOptions& options) {
  EvalTracker tracker(objective, options);
  simcore::Rng rng(options.seed);

  config::Configuration current;
  if (const Observation* warm = best_warm_start(options); warm != nullptr) {
    current = warm->config;
  } else {
    current = space->default_config();
  }
  if (tracker.exhausted()) return tracker.result();
  double current_obj = tracker.evaluate(current).objective;
  double best_obj = current_obj;
  config::Configuration best = current;

  double step = params_.initial_step;
  std::size_t stalls = 0;
  std::size_t hops = 0;
  while (!tracker.exhausted()) {
    // MROnline-style: perturb parameters, accept improvements, decay the
    // step while stuck. Near convergence (small step) mutate only one
    // parameter so good coordinates are not wrecked by a bad companion move.
    const std::size_t mutations =
        step > 0.1 ? static_cast<std::size_t>(rng.uniform_int(1, 2)) : 1;
    const config::Configuration neighbor = space->neighbor(current, step, mutations, rng);
    const auto& o = tracker.evaluate(neighbor);
    if (o.objective < current_obj) {
      current = o.config;
      current_obj = o.objective;
      stalls = 0;
      // 1/5-rule-style adaptation: success means the step is productive,
      // so grow it back; failures shrink it toward fine-grained search.
      step = std::min(2.0 * params_.initial_step, step * 1.3);
      if (current_obj < best_obj) {
        best_obj = current_obj;
        best = current;
      }
    } else {
      ++stalls;
      step = std::max(params_.min_step, step * params_.step_decay);
    }
    if (stalls >= params_.stall_limit) {
      // Basin hop: usually re-inflate the step around the global best;
      // periodically take a genuinely random restart for diversity.
      ++hops;
      if (hops % 3 == 0) {
        if (tracker.exhausted()) break;
        const auto& r = tracker.evaluate(space->sample(rng));
        current = r.config;
        current_obj = r.objective;
      } else {
        current = best;
        current_obj = best_obj;
      }
      step = params_.initial_step;
      stalls = 0;
    }
  }
  return tracker.result();
}

}  // namespace stune::tuning
