#include "tuning/tuner.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tuning/trial_executor.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

std::vector<double> TuneResult::best_curve() const {
  std::vector<double> curve;
  curve.reserve(history.size());
  double best_so_far = std::numeric_limits<double>::infinity();
  for (const auto& o : history) {
    if (!o.failed && o.runtime < best_so_far) best_so_far = o.runtime;
    curve.push_back(best_so_far);
  }
  return curve;
}

TuneResult Tuner::tune(std::shared_ptr<const config::ConfigSpace> space,
                       const Objective& objective, const TuneOptions& options) {
  TrialExecutor executor;  // serial: jobs = 1, no cache
  return executor.run(*this, std::move(space), objective, options);
}

double cold_penalty(const TuneOptions& options, double runtime, bool failed) {
  if (!failed) return runtime;
  return std::max(options.failure_penalty_floor, runtime) * options.failure_penalty_factor;
}

const Observation* best_warm_start(const TuneOptions& options) {
  const Observation* best = nullptr;
  for (const auto& o : options.warm_start) {
    if (o.failed) continue;
    if (best == nullptr || o.runtime < best->runtime) best = &o;
  }
  return best;
}

std::vector<std::string> tuner_names() {
  return {"random", "grid", "sweep",      "hillclimb", "bayesopt",
          "genetic", "dac", "bestconfig", "rtree",     "rl"};
}

std::unique_ptr<Tuner> make_tuner(std::string_view name) {
  if (name == "random") return std::make_unique<RandomSearchTuner>();
  if (name == "grid") return std::make_unique<GridSearchTuner>();
  if (name == "sweep") return std::make_unique<CoordinateSweepTuner>();
  if (name == "hillclimb") return std::make_unique<HillClimbTuner>();
  if (name == "bayesopt") return std::make_unique<BayesOptTuner>();
  if (name == "genetic") return std::make_unique<GeneticTuner>();
  if (name == "dac") return std::make_unique<DacTuner>();
  if (name == "bestconfig") return std::make_unique<BestConfigTuner>();
  if (name == "rtree") return std::make_unique<RegressionTreeTuner>();
  if (name == "rl") return std::make_unique<RlTuner>();
  throw std::invalid_argument("unknown tuner: " + std::string(name));
}

std::vector<std::unique_ptr<Tuner>> all_tuners() {
  std::vector<std::unique_ptr<Tuner>> out;
  for (const auto& n : tuner_names()) out.push_back(make_tuner(n));
  return out;
}

}  // namespace stune::tuning
