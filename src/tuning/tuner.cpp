#include "tuning/tuner.hpp"

#include <stdexcept>

#include "tuning/tuners.hpp"

namespace stune::tuning {

std::vector<double> TuneResult::best_curve() const {
  std::vector<double> curve;
  curve.reserve(history.size());
  double best_so_far = std::numeric_limits<double>::infinity();
  for (const auto& o : history) {
    if (!o.failed && o.runtime < best_so_far) best_so_far = o.runtime;
    curve.push_back(best_so_far);
  }
  return curve;
}

EvalTracker::EvalTracker(const Objective& objective, const TuneOptions& options)
    : objective_(objective), options_(options) {
  history_.reserve(options.budget);
}

double EvalTracker::penalize(double runtime, bool failed) const {
  if (!failed) return runtime;
  const double base = worst_success_ > 0.0 ? worst_success_ : runtime;
  return std::max(base, runtime) * options_.failure_penalty_factor;
}

const Observation& EvalTracker::evaluate(const config::Configuration& c) {
  if (exhausted()) throw std::logic_error("EvalTracker: budget exhausted");
  const EvalOutcome out = objective_(c);
  ++used_;
  Observation o;
  o.config = c;
  o.runtime = out.runtime;
  o.failed = out.failed;
  if (!out.failed && out.runtime > worst_success_) worst_success_ = out.runtime;
  o.objective = penalize(out.runtime, out.failed);
  history_.push_back(std::move(o));
  const auto& rec = history_.back();
  if (!rec.failed &&
      (best_index_ == static_cast<std::size_t>(-1) || rec.runtime < history_[best_index_].runtime)) {
    best_index_ = history_.size() - 1;
  }
  return rec;
}

double EvalTracker::best_objective() const {
  if (best_index_ == static_cast<std::size_t>(-1)) {
    // No success yet: the least-bad penalized score.
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : history_) best = std::min(best, o.objective);
    return best;
  }
  return history_[best_index_].runtime;
}

TuneResult EvalTracker::result() const {
  TuneResult r;
  r.history = history_;
  if (best_index_ != static_cast<std::size_t>(-1)) {
    r.best = history_[best_index_].config;
    r.best_runtime = history_[best_index_].runtime;
    r.found_feasible = true;
  } else if (!history_.empty()) {
    // Nothing succeeded; surface the least-penalized configuration.
    std::size_t least = 0;
    for (std::size_t i = 1; i < history_.size(); ++i) {
      if (history_[i].objective < history_[least].objective) least = i;
    }
    r.best = history_[least].config;
    r.best_runtime = history_[least].runtime;
  }
  return r;
}

std::vector<std::string> tuner_names() {
  return {"random", "sweep",      "hillclimb", "bayesopt", "genetic",
          "dac",    "bestconfig", "rtree",     "rl"};
}

std::unique_ptr<Tuner> make_tuner(std::string_view name) {
  if (name == "random") return std::make_unique<RandomSearchTuner>();
  if (name == "sweep") return std::make_unique<CoordinateSweepTuner>();
  if (name == "hillclimb") return std::make_unique<HillClimbTuner>();
  if (name == "bayesopt") return std::make_unique<BayesOptTuner>();
  if (name == "genetic") return std::make_unique<GeneticTuner>();
  if (name == "dac") return std::make_unique<DacTuner>();
  if (name == "bestconfig") return std::make_unique<BestConfigTuner>();
  if (name == "rtree") return std::make_unique<RegressionTreeTuner>();
  if (name == "rl") return std::make_unique<RlTuner>();
  throw std::invalid_argument("unknown tuner: " + std::string(name));
}

std::vector<std::unique_ptr<Tuner>> all_tuners() {
  std::vector<std::unique_ptr<Tuner>> out;
  for (const auto& n : tuner_names()) out.push_back(make_tuner(n));
  return out;
}

}  // namespace stune::tuning
