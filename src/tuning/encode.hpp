// Batched candidate encoding: the model-guided tuners score whole candidate
// pools through predict_batch, which wants one flat row-major matrix rather
// than a vector of per-candidate encodings.
#pragma once

#include <vector>

#include "config/config_space.hpp"
#include "linalg/matrix.hpp"

namespace stune::tuning {

/// Encode every configuration into one row of a pool.size() × encoded_size()
/// matrix, in pool order.
linalg::Matrix encode_pool(const config::ConfigSpace& space,
                           const std::vector<config::Configuration>& pool);

}  // namespace stune::tuning
