// Wang et al. (HPCC'16): fit a regression tree to observed (configuration,
// runtime) samples, score a large candidate pool through the tree, and
// spend real executions on the best-scored candidates; refit as data grows.
//
// Staged shape: the bootstrap is one parallel stage; each refit round
// proposes its probes together (they are scored by the same frozen tree).
//
// The candidate pool is encoded into one flat matrix and scored through
// RegressionTree::predict_batch, optionally sharded over a thread pool;
// shards write disjoint slices, so probes are identical at any job count.
#include <algorithm>
#include <cstddef>
#include <memory>
#include <numeric>
#include <vector>

#include "model/tree.hpp"
#include "simcore/thread_pool.hpp"
#include "tuning/encode.hpp"
#include "tuning/tuners.hpp"

namespace stune::tuning {

void RegressionTreeTuner::start() {
  rng_ = simcore::Rng(opts().seed);
  data_ = model::Dataset();
  if (params_.predict_jobs > 1 && pool_ == nullptr) {
    pool_ = std::make_shared<simcore::ThreadPool>(params_.predict_jobs);
  }
  did_bootstrap_ = false;
  for (const auto& o : opts().warm_start) {
    data_.add(space().encode(o.config), penalize_warm(o.runtime, o.failed));
  }
}

void RegressionTreeTuner::record(const Observation& observation) {
  data_.add(space().encode(observation.config), observation.objective);
}

void RegressionTreeTuner::plan() {
  if (!did_bootstrap_) {
    did_bootstrap_ = true;
    const auto bootstrap = std::max<std::size_t>(
        6,
        static_cast<std::size_t>(params_.bootstrap_fraction * static_cast<double>(opts().budget)));
    bool proposed = false;
    for (auto& c : space().latin_hypercube(std::min(bootstrap, opts().budget), rng_)) {
      propose(std::move(c));
      proposed = true;
    }
    if (proposed) return;
  }

  model::RegressionTree tree(
      model::TreeOptions{.max_depth = 10, .min_samples_leaf = 2, .min_samples_split = 4});
  tree.fit(data_, rng_.fork(used()));

  // Score a candidate pool; also explore around the best observation.
  std::vector<config::Configuration> pool;
  pool.reserve(params_.candidates + params_.candidates / 8);
  for (std::size_t i = 0; i < params_.candidates; ++i) pool.push_back(space().sample(rng_));
  if (have_success()) {
    for (std::size_t i = 0; i < params_.candidates / 8; ++i) {
      pool.push_back(space().neighbor(best_success().config, 0.15, 3, rng_));
    }
  }
  const std::vector<double> scores = tree.predict_batch(encode_pool(space(), pool), pool_.get());
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  for (std::size_t i = 0; i < std::min(params_.probes_per_round, pool.size()); ++i) {
    propose(pool[order[i]]);
  }
}

}  // namespace stune::tuning
